package mimir_test

// The skew determinism/property battery: WordCount over the seeded zipf
// corpus must produce byte-identical canonical output whichever partitioner
// routes the keys — FNV-1a hashing or the sampling partitioner (whose plan
// collectives, weighted ranges, and hot-key split+re-merge all sit on the
// data path) — at every skew, worker-pool size, and transport. quick.Check
// drives the corpus seed; set MIMIR_PROP_SEED to reproduce a failing draw.

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"
	"testing/quick"

	"mimir/internal/driver"
	"mimir/internal/mpi"
	"mimir/internal/simtime"

	mathrand "math/rand"
)

// propWorldSize is the battery's world size (4 ranks, like the conformance
// suite and the committed skew bench).
const propWorldSize = 4

// propSeed seeds the quick.Check draw: MIMIR_PROP_SEED when set (CI pins
// two values so the sweep is reproducible), else a fixed default.
func propSeed(t *testing.T) int64 {
	if v := os.Getenv("MIMIR_PROP_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad MIMIR_PROP_SEED %q: %v", v, err)
		}
		return n
	}
	return 1
}

// runZipfWC runs one distributed zipf WordCount and returns rank 0's
// canonical gathered output. Local runs share one in-process world; tcp
// builds a fresh 4-process-shaped loopback mesh (one world per transport,
// every rank in this process).
func runZipfWC(t *testing.T, cfg driver.WordCountConfig, tcp bool) []byte {
	t.Helper()
	if !tcp {
		world := mpi.NewWorld(mpi.Config{Size: propWorldSize, Net: simtime.NetworkModel{Alpha: 1e-7, Beta: 1e9}})
		out, err := driver.WordCount(world, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	trs, err := shuffleMesh(propWorldSize, false)
	if err != nil {
		t.Fatal(err)
	}
	var out []byte
	errs := make([]error, propWorldSize)
	var wg sync.WaitGroup
	for r, tr := range trs {
		wg.Add(1)
		go func(r int, world *mpi.World) {
			defer wg.Done()
			defer world.Close()
			o, err := driver.WordCount(world, cfg, nil)
			errs[r] = err
			if r == 0 {
				out = o
			}
		}(r, mpi.NewWorld(mpi.Config{Transport: tr}))
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// zipfCase is one cell of the battery grid.
type zipfCase struct {
	skew    float64
	workers int
	tcp     bool
}

func (c zipfCase) name() string {
	transport := "local"
	if c.tcp {
		transport = "tcp"
	}
	return fmt.Sprintf("s=%.1f/workers=%d/%s", c.skew, c.workers, transport)
}

// TestZipfPartitionerEquivalence is the battery: for every grid cell,
// quick.Check draws corpus seeds and asserts the sample partitioner's
// gathered output is byte-identical to hash partitioning's. PR is on, so at
// high skew plus contention the hot key splits across ranks and re-merges —
// equivalence then also proves split+re-merge equals the unsplit reduce.
func TestZipfPartitionerEquivalence(t *testing.T) {
	cases := []zipfCase{
		{0, 1, false}, {0, 4, false}, {0, 8, false},
		{0.8, 1, false}, {0.8, 4, false}, {0.8, 8, false},
		{1.1, 1, false}, {1.1, 4, false}, {1.1, 8, false},
		{0, 1, true}, {0.8, 4, true}, {1.1, 8, true},
	}
	maxCount := 2
	if testing.Short() {
		cases = []zipfCase{{0, 1, false}, {1.1, 8, false}}
		maxCount = 1
	}
	for _, tc := range cases {
		t.Run(tc.name(), func(t *testing.T) {
			count := maxCount
			if tc.tcp {
				count = 1 // fresh loopback mesh per draw: one is plenty
			}
			qc := &quick.Config{
				MaxCount: count,
				Rand:     mathrand.New(mathrand.NewSource(propSeed(t))),
			}
			err := quick.Check(func(seed uint64) bool {
				base := driver.WordCountConfig{
					TotalBytes: 32 << 10, Seed: seed,
					Hint: true, PR: true, Workers: tc.workers,
					UseZipf: true, ZipfSkew: tc.skew, Contention: 0.25,
				}
				hash, sample := base, base
				hash.Partitioner = "hash"
				sample.Partitioner = "sample"
				h := runZipfWC(t, hash, tc.tcp)
				s := runZipfWC(t, sample, tc.tcp)
				if len(h) == 0 {
					t.Errorf("seed %d: empty output", seed)
					return false
				}
				if !bytes.Equal(h, s) {
					t.Errorf("seed %d: sample output diverges from hash (%d vs %d bytes)",
						seed, len(s), len(h))
					return false
				}
				return true
			}, qc)
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestZipfSplitMergeMatchesPlainReduce re-checks the split+re-merge path
// against a run where splitting cannot engage at all: with PR off the
// sample partitioner keeps every key whole, so any disagreement between the
// PR and no-PR sample runs (both canonical) is the split machinery's fault.
func TestZipfSplitMergeMatchesPlainReduce(t *testing.T) {
	base := driver.WordCountConfig{
		TotalBytes: 32 << 10, Seed: uint64(propSeed(t)),
		Hint: true, UseZipf: true, ZipfSkew: 1.1, Contention: 0.3,
		Partitioner: "sample",
	}
	split, plain := base, base
	split.PR = true
	got := runZipfWC(t, split, false)
	want := runZipfWC(t, plain, false)
	if len(want) == 0 {
		t.Fatal("empty output")
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("split+re-merge output diverges from plain reduce (%d vs %d bytes)",
			len(got), len(want))
	}
}
