// Package mimir is a Go reproduction of Mimir, the memory-efficient and
// scalable MapReduce framework for large supercomputing systems of Gao et
// al. (IPDPS 2017). It is a research system built from scratch on the Go
// standard library: an in-process MPI-like runtime stands in for MPICH,
// simulated platform models stand in for the Comet and Mira machines, and
// both the Mimir engine and the MR-MPI baseline are full implementations
// whose memory behavior is tracked byte-for-byte through a node memory
// arena.
//
// A minimal job looks like this:
//
//	world := mimir.NewWorld(4)
//	arena := mimir.NewArena(0) // unlimited node memory
//	err := world.Run(func(c *mimir.Comm) error {
//		job := mimir.NewJob(c, mimir.Config{Arena: arena})
//		out, err := job.Run(input, mapFn, reduceFn)
//		...
//	})
//
// See examples/ for complete programs, internal/expt for the harness that
// regenerates every figure of the paper, and DESIGN.md for the system
// inventory.
package mimir

import (
	"time"

	"mimir/internal/core"
	"mimir/internal/driver"
	"mimir/internal/faultinject"
	"mimir/internal/kvbuf"
	"mimir/internal/mem"
	"mimir/internal/mpi"
	"mimir/internal/partition"
	"mimir/internal/pfs"
	"mimir/internal/platform"
	"mimir/internal/simtime"
	"mimir/internal/spill"
	"mimir/internal/transport"
	"mimir/internal/workloads"
)

// Core MapReduce API (see internal/core).
type (
	// Job is one Mimir MapReduce execution on one rank.
	Job = core.Job
	// Config configures a job: node arena, buffer sizes, KV-hint, and the
	// optional partial-reduction and KV-compression callbacks.
	Config = core.Config
	// Record is one input record.
	Record = core.Record
	// Emitter receives KVs from map and reduce callbacks.
	Emitter = core.Emitter
	// MapFunc is the user-defined map callback.
	MapFunc = core.MapFunc
	// ReduceFunc is the user-defined reduce callback.
	ReduceFunc = core.ReduceFunc
	// CombineFunc merges two values of one key (KV compression / partial
	// reduction).
	CombineFunc = core.CombineFunc
	// Input feeds one rank's share of the job input.
	Input = core.Input
	// Output is a rank's share of the job result.
	Output = core.Output
	// Costs are simulated per-operation compute costs.
	Costs = core.Costs
	// Checkpoint enables post-shuffle checkpoint/restart (fault tolerance).
	Checkpoint = core.Checkpoint
	// PhaseTimes is the per-phase simulated time breakdown in Output.Stats.
	PhaseTimes = core.PhaseTimes
	// Stats is the per-rank counter block in Output.Stats (rounds, bytes,
	// overlap savings).
	Stats = core.Stats
	// OutOfCore selects the job's memory-pressure policy (see Config).
	OutOfCore = core.OutOfCore
	// SpillGroup coordinates page eviction across the ranks that share one
	// node arena (see Config.SpillGroup).
	SpillGroup = spill.Group
	// SpillStats counts a job's out-of-core activity (Output.Stats.Spill).
	SpillStats = spill.Stats
)

// Key partitioning (see internal/partition). Config.Partitioner selects the
// key→rank strategy; nil keeps the default FNV-1a hash.
type (
	// Partitioner maps keys to destination ranks; planning partitioners
	// (SamplePartitioner) run collectives before the job's first exchange.
	Partitioner = partition.Partitioner
	// HashPartitioner is the default FNV-1a modulo-size partitioner, made
	// explicit.
	HashPartitioner = partition.HashPartitioner
	// SamplePartitioner partitions by sampled weighted key ranges, splitting
	// hot keys across ranks when the job has a commutative PartialReduce.
	SamplePartitioner = partition.SamplePartitioner
	// PartitionFunc adapts a plain key→rank function to a Partitioner.
	PartitionFunc = partition.Func
)

// PartitionerByName resolves "", "hash", or "sample" (the CLI/job-spec
// spelling) to a Partitioner.
var PartitionerByName = partition.ByName

// Out-of-core policies (Config.OutOfCore).
const (
	// Error fails the job with mem.ErrNoMemory when the arena runs out —
	// the paper's behavior.
	Error = core.Error
	// SpillWhenNeeded evicts cold container pages to Config.SpillFS under
	// memory pressure.
	SpillWhenNeeded = core.SpillWhenNeeded
	// SpillAlways additionally writes every page out as soon as it is
	// sealed (write-behind, lowest resident footprint).
	SpillAlways = core.SpillAlways
)

// NewSpillGroup creates an eviction group for the ranks sharing one arena.
func NewSpillGroup() *SpillGroup { return spill.NewGroup() }

// Message passing (see internal/mpi).
type (
	// World is a set of communicating ranks (goroutines).
	World = mpi.World
	// Comm is one rank's communicator.
	Comm = mpi.Comm
	// TCPChildren tracks the worker processes SpawnTCPWorld launched.
	TCPChildren = transport.Children
)

// ErrAborted is the sentinel every rank's pending communication returns once
// any rank aborts the world — including, over the TCP transport, when a
// worker process dies.
var ErrAborted = mpi.ErrAborted

// Fault handling for the TCP transport (see internal/transport).
type (
	// FaultPolicy selects fail-stop (AbortOnFailure) or fail-recover
	// (RetryTransient) behavior when a TCP link faults.
	FaultPolicy = mpi.FaultPolicy
	// FaultStats counts link failures, reconnects, dial retries, and
	// replayed frames/bytes; read it from World.FaultStats.
	FaultStats = mpi.FaultStats
)

// Fault policies (TCPOptions.Policy).
const (
	// AbortOnFailure poisons the world on the first link fault (default).
	AbortOnFailure = mpi.AbortOnFailure
	// RetryTransient reconnects with capped exponential backoff and resumes
	// via sequence-numbered replay; a peer unreachable past the reconnect
	// window still aborts the world.
	RetryTransient = mpi.RetryTransient
)

// ParseFaultPolicy parses "abort" or "retry" (the -fault-policy flag values).
var ParseFaultPolicy = transport.ParseFaultPolicy

// TCPOptionsFromEnv decodes the TCPOptions a parent forwarded through the
// environment (the single decode shared with spawned workers); unset
// variables leave zero defaults. Commands use it to seed flag defaults so
// flags, environment, and spawn-forwarding cannot disagree.
var TCPOptionsFromEnv = transport.OptionsFromEnv

// TCPOptions configures a multi-process world: fault handling, deadlines,
// fault injection, wire compression, and the per-rank worker pool size. It
// is the transport's consolidated Options struct — one encode/decode
// (transport.Options.Env / transport.OptionsFromEnv) carries every field to
// spawned workers, so no launch path can silently drop a setting.
type TCPOptions = transport.Options

// faulted wires opts.Faults into cfg (the connection-level hook) and returns
// the injector, or nil when no faults are scheduled.
func faulted(opts TCPOptions, cfg *transport.TCPConfig) (*faultinject.Injector, error) {
	spec, err := faultinject.ParseSpec(opts.Faults)
	if err != nil {
		return nil, err
	}
	if spec.Empty() {
		return nil, nil
	}
	inj := faultinject.New(spec, cfg.Rank)
	cfg.WrapConn = inj.WrapConn
	return inj, nil
}

// SpawnTCPWorld makes this process rank 0 of a size-rank multi-process world
// and launches size-1 copies of this binary on the loopback interface as the
// other ranks. The copies must call TCPWorldFromEnv early and run the same
// job. Ranks run on wall-clock time; byte movement is real TCP. Close the
// world when done, then Wait the children.
func SpawnTCPWorld(size int) (*World, *TCPChildren, error) {
	return SpawnTCPWorldOpts(size, TCPOptions{})
}

// SpawnTCPWorldOpts is SpawnTCPWorld with fault handling configured. The
// policy, reconnect window, and fault spec travel to the workers through the
// environment, so the whole world — parent and children — shares one
// configuration.
func SpawnTCPWorldOpts(size int, opts TCPOptions) (*World, *TCPChildren, error) {
	cfg := transport.TCPConfig{Rank: 0}
	inj, err := faulted(opts, &cfg)
	if err != nil {
		return nil, nil, err
	}
	tr, children, err := transport.SpawnLocalOpts(size, transport.SpawnOptions{
		Options:  opts,
		WrapConn: cfg.WrapConn,
	})
	if err != nil {
		return nil, nil, err
	}
	var t transport.Transport = tr
	if inj != nil {
		t = inj.Wrap(tr)
	}
	return mpi.NewWorld(mpi.Config{Transport: t}), children, nil
}

// TCPWorldFromEnv joins the multi-process world a parent SpawnTCPWorld (or
// any launcher setting the MIMIR_TCP_* environment) created, including any
// fault policy and fault-injection spec the parent forwarded. The second
// return is false when this process was not launched as a worker.
func TCPWorldFromEnv() (*World, bool, error) {
	cfg, ok, err := transport.FromEnv()
	if !ok || err != nil {
		return nil, ok, err
	}
	inj, err := faulted(TCPOptions{Faults: transport.FaultsFromEnv()}, &cfg)
	if err != nil {
		return nil, true, err
	}
	tr, err := transport.NewTCP(cfg)
	if err != nil {
		return nil, true, err
	}
	var t transport.Transport = tr
	if inj != nil {
		t = inj.Wrap(tr)
	}
	return mpi.NewWorld(mpi.Config{Transport: t}), true, nil
}

// NewTCPWorld attaches this process to a multi-process world as the given
// rank: rank 0 listens on addr (e.g. ":9000") and blocks until the size-1
// workers dial in, every other rank dials addr — the explicit-rendezvous
// path for launches across machines or terminals. A successful return means
// the full mesh is up.
func NewTCPWorld(addr string, rank, size int, deadline time.Duration) (*World, error) {
	return NewTCPWorldOpts(addr, rank, size, TCPOptions{Deadline: deadline})
}

// NewTCPWorldOpts is NewTCPWorld with fault handling configured. Unlike the
// spawn path there is no environment forwarding: every process of an
// explicit rendezvous must be launched with the same options.
func NewTCPWorldOpts(addr string, rank, size int, opts TCPOptions) (*World, error) {
	cfg := opts.TCPConfig(addr, rank, size)
	inj, err := faulted(opts, &cfg)
	if err != nil {
		return nil, err
	}
	tr, err := transport.NewTCP(cfg)
	if err != nil {
		return nil, err
	}
	var t transport.Transport = tr
	if inj != nil {
		t = inj.Wrap(tr)
	}
	return mpi.NewWorld(mpi.Config{Transport: t}), nil
}

// KV encoding (see internal/kvbuf).
type (
	// Hint is the KV-hint encoding declaration for keys and values.
	Hint = kvbuf.Hint
	// LenMode describes one side's length encoding.
	LenMode = kvbuf.LenMode
	// ValueIter iterates the values of one key in a reduce callback.
	ValueIter = kvbuf.ValueIter
)

// Memory accounting (see internal/mem).
type (
	// Arena is one compute node's accounted memory pool.
	Arena = mem.Arena
)

// ErrNoMemory is the sentinel wrapped by every out-of-memory failure: a job
// on a full arena under the Error policy fails with an error satisfying
// errors.Is(err, ErrNoMemory).
var ErrNoMemory = mem.ErrNoMemory

// Simulated parallel file system (see internal/pfs): job inputs and the
// spill target for the out-of-core policies.
type (
	// FS is a simulated parallel file system.
	FS = pfs.FS
	// FSConfig sets its bandwidth, latency, and contention model.
	FSConfig = pfs.Config
)

// NewFS creates a simulated parallel file system.
func NewFS(cfg FSConfig) *FS { return pfs.New(cfg) }

// Platform models (see internal/platform).
type (
	// Platform describes a machine (node memory, network, file system,
	// compute costs).
	Platform = platform.Platform
)

// NewWorld creates an in-process world of n ranks with negligible network
// costs. For modeled platforms use NewWorldOn.
func NewWorld(n int) *World {
	return mpi.NewWorld(mpi.Config{Size: n, Net: simtime.NetworkModel{Alpha: 1e-7, Beta: 1e9}})
}

// NewWorldOn creates a world of n ranks whose communication is charged
// against the platform's network model.
func NewWorldOn(p *Platform, n int) *World {
	return mpi.NewWorld(mpi.Config{Size: n, Net: p.Net})
}

// NewArena returns a node memory pool with the given capacity in bytes
// (0 = unlimited).
func NewArena(capacity int64) *Arena { return mem.NewArena(capacity) }

// NewJob creates a Mimir job for this rank.
func NewJob(c *Comm, cfg Config) *Job { return core.NewJob(c, cfg) }

// SliceInput feeds a fixed record list (tests, small inputs, in-situ data).
func SliceInput(recs []Record) Input { return core.SliceInput(recs) }

// FileInput reads one rank's line-aligned split of a file on the simulated
// parallel file system (the paper's "files from disk" input source).
var FileInput = core.FileInput

// MultiFileInput reads the per-rank splits of several files in order.
var MultiFileInput = core.MultiFileInput

// Uint64Bytes encodes n as the conventional 8-byte little-endian value.
func Uint64Bytes(n uint64) []byte { return core.Uint64Bytes(n) }

// BytesUint64 decodes an 8-byte little-endian value.
func BytesUint64(b []byte) uint64 { return core.BytesUint64(b) }

// KV-hint constructors.
var (
	// Varlen stores an explicit 4-byte length (the default).
	Varlen = kvbuf.Varlen
	// Fixed declares a constant length; no header is stored.
	Fixed = kvbuf.Fixed
	// StrZ declares NUL-free string data, stored NUL-terminated (the
	// paper's reserved -1 length).
	StrZ = kvbuf.StrZ
	// DefaultHint is explicit lengths on both sides (8-byte header per KV).
	DefaultHint = kvbuf.DefaultHint
)

// Platform presets.
var (
	// Comet models SDSC's Comet cluster (24 cores, 128 GB/node, scaled).
	Comet = platform.Comet
	// Mira models Argonne's IBM BG/Q Mira (16 cores, 16 GB/node, scaled).
	Mira = platform.Mira
	// Laptop is an unconstrained platform for examples and tests.
	Laptop = platform.Laptop
)

// Distributed job workloads (internal/workloads) and the generic job driver
// (internal/driver): the multi-round jobs every entry point — examples,
// mimir-worker, the mimird service — runs over deterministic synthetic
// corpora.
type (
	// JobConfig describes one distributed job of any kind for RunJob.
	JobConfig = driver.JobConfig
	// TeraSortConfig parameterizes the distributed sample sort.
	TeraSortConfig = workloads.TeraSortConfig
	// PageRankConfig parameterizes fixed-point PageRank over the synthetic
	// power-law graph.
	PageRankConfig = workloads.PageRankConfig
	// KMeansConfig parameterizes integer k-means over the seeded point cloud.
	KMeansConfig = workloads.KMeansConfig
	// MultiRound controls an iterative job's rounds: caps, convergence
	// threshold, per-round checkpoints, and the round hook.
	MultiRound = workloads.MultiRound
)

// Job kinds RunJob dispatches on.
const (
	JobWordCount = driver.JobWordCount
	JobTeraSort  = driver.JobTeraSort
	JobPageRank  = driver.JobPageRank
	JobKMeans    = driver.JobKMeans
	JobBFS       = driver.JobBFS
)

var (
	// RunJob runs a JobConfig on every rank of a world and gathers the
	// canonical byte-identical result at rank 0.
	RunJob = driver.RunJob
	// JobKinds lists every kind RunJob accepts.
	JobKinds = driver.JobKinds
	// VerifyTeraSort is the linear-time oracle for sorted terasort output.
	VerifyTeraSort = workloads.VerifyTeraSort
)
