package mimir_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"mimir"
)

// TestPublicAPIWordCount exercises the facade exactly as the README's
// quickstart does.
func TestPublicAPIWordCount(t *testing.T) {
	corpus := []string{
		"to be or not to be",
		"that is the question",
	}
	const ranks = 3
	world := mimir.NewWorld(ranks)
	arena := mimir.NewArena(0)

	var mu sync.Mutex
	counts := map[string]uint64{}
	err := world.Run(func(c *mimir.Comm) error {
		var mine []mimir.Record
		for i, line := range corpus {
			if i%ranks == c.Rank() {
				mine = append(mine, mimir.Record{Val: []byte(line)})
			}
		}
		job := mimir.NewJob(c, mimir.Config{
			Arena: arena,
			Hint:  mimir.Hint{Key: mimir.StrZ(), Val: mimir.Fixed(8)},
		})
		mapFn := func(rec mimir.Record, emit mimir.Emitter) error {
			for _, w := range strings.Fields(string(rec.Val)) {
				if err := emit.Emit([]byte(w), mimir.Uint64Bytes(1)); err != nil {
					return err
				}
			}
			return nil
		}
		reduceFn := func(key []byte, vals *mimir.ValueIter, emit mimir.Emitter) error {
			var sum uint64
			for v, ok := vals.Next(); ok; v, ok = vals.Next() {
				sum += mimir.BytesUint64(v)
			}
			return emit.Emit(key, mimir.Uint64Bytes(sum))
		}
		out, err := job.Run(mimir.SliceInput(mine), mapFn, reduceFn)
		if err != nil {
			return err
		}
		defer out.Free()
		mu.Lock()
		defer mu.Unlock()
		return out.Scan(func(k, v []byte) error {
			counts[string(k)] += mimir.BytesUint64(v)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]uint64{"to": 2, "be": 2, "or": 1, "not": 1,
		"that": 1, "is": 1, "the": 1, "question": 1}
	if len(counts) != len(want) {
		t.Fatalf("counts = %v, want %v", counts, want)
	}
	for w, n := range want {
		if counts[w] != n {
			t.Errorf("count[%q] = %d, want %d", w, counts[w], n)
		}
	}
	if arena.Used() != 0 {
		t.Errorf("arena used %d after job", arena.Used())
	}
}

func TestPublicAPIPlatforms(t *testing.T) {
	for _, p := range []*mimir.Platform{mimir.Comet(), mimir.Mira(), mimir.Laptop()} {
		if p.CoresPerNode <= 0 || p.PageSize <= 0 {
			t.Errorf("%s: bad platform preset %+v", p.Name, p)
		}
	}
	w := mimir.NewWorldOn(mimir.Comet(), 4)
	err := w.Run(func(c *mimir.Comm) error { return c.Barrier() })
	if err != nil {
		t.Fatal(err)
	}
	if w.MaxTime() <= 0 {
		t.Error("barrier on a modeled platform charged no time")
	}
}

func TestPublicAPIEncodingHelpers(t *testing.T) {
	if got := mimir.BytesUint64(mimir.Uint64Bytes(123456789)); got != 123456789 {
		t.Errorf("Uint64Bytes round trip = %d", got)
	}
	h := mimir.DefaultHint()
	if h.EncodedSize([]byte("k"), []byte("v")) != 10 {
		t.Error("DefaultHint header size wrong")
	}
}

// TestPublicAPIMultiStage runs an iterative two-stage pipeline through the
// facade: count words, then bucket counts into powers of two.
func TestPublicAPIMultiStage(t *testing.T) {
	const ranks = 2
	world := mimir.NewWorld(ranks)
	arena := mimir.NewArena(0)
	lines := make([]string, 16)
	for i := range lines {
		lines[i] = fmt.Sprintf("a b c d%d", i%4)
	}
	var mu sync.Mutex
	total := uint64(0)
	err := world.Run(func(c *mimir.Comm) error {
		var mine []mimir.Record
		for i, line := range lines {
			if i%ranks == c.Rank() {
				mine = append(mine, mimir.Record{Val: []byte(line)})
			}
		}
		sum := func(key []byte, vals *mimir.ValueIter, emit mimir.Emitter) error {
			var s uint64
			for v, ok := vals.Next(); ok; v, ok = vals.Next() {
				s += mimir.BytesUint64(v)
			}
			return emit.Emit(key, mimir.Uint64Bytes(s))
		}
		wcMap := func(rec mimir.Record, emit mimir.Emitter) error {
			for _, w := range strings.Fields(string(rec.Val)) {
				if err := emit.Emit([]byte(w), mimir.Uint64Bytes(1)); err != nil {
					return err
				}
			}
			return nil
		}
		out1, err := mimir.NewJob(c, mimir.Config{Arena: arena}).Run(mimir.SliceInput(mine), wcMap, sum)
		if err != nil {
			return err
		}
		// Stage 2 consumes stage 1's output in place.
		histMap := func(rec mimir.Record, emit mimir.Emitter) error {
			return emit.Emit(rec.Val, mimir.Uint64Bytes(1))
		}
		out2, err := mimir.NewJob(c, mimir.Config{Arena: arena}).Run(out1.AsInput(), histMap, sum)
		if err != nil {
			return err
		}
		defer out2.Free()
		mu.Lock()
		defer mu.Unlock()
		return out2.Scan(func(k, v []byte) error {
			total += mimir.BytesUint64(v)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Stage 2's histogram totals the number of unique words: a, b, c, d0-d3.
	if total != 7 {
		t.Errorf("histogram total = %d, want 7 unique words", total)
	}
	if arena.Used() != 0 {
		t.Errorf("arena used %d after pipeline", arena.Used())
	}
}
