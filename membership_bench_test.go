package mimir_test

// BENCH_membership pins the cost of checkpoint-driven rank rebalancing (the
// storage half of elastic membership): a WordCount checkpoint written at one
// world size is repartitioned to another, and the committed baseline records
// how many bytes actually ship and how long the simulated PFS takes. All
// figures are simulated (simtime clock over the pfs cost model), so they are
// byte-identical on any host and drift only when the accounting changes.
//
// Regenerate the committed baseline with:
//
//	MIMIR_BENCH_OUT=BENCH_membership.json go test -run TestMembershipBenchBaseline .

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"mimir/internal/core"
	"mimir/internal/driver"
	"mimir/internal/mpi"
	"mimir/internal/pfs"
	"mimir/internal/simtime"
	"mimir/internal/workloads"
)

// membershipPoint is one rebalance of the benchmark checkpoint.
type membershipPoint struct {
	From    int   `json:"from"`
	To      int   `json:"to"`
	Records int64 `json:"records"`
	BytesIn int64 `json:"bytes_in"`
	// BytesMoved is the payload whose rank assignment changed — what the
	// rebalance actually ships; same-rank records cost nothing.
	BytesMoved int64 `json:"bytes_moved"`
	// MovedFrac is BytesMoved / BytesIn. Growing N -> M reshuffles roughly
	// 1 - gcd-ish fractions of the keyspace; the committed values make the
	// "only the moved fraction pays" claim concrete.
	MovedFrac float64 `json:"moved_frac"`
	// RebalanceSec is the simulated seconds the repartition spent on the
	// PFS (reads of the old layout + staged writes of the new one).
	RebalanceSec float64 `json:"rebalance_sim_sec"`
	// SecPerGB normalizes RebalanceSec to a checkpoint gigabyte.
	SecPerGB float64 `json:"rebalance_sim_sec_per_gb"`
}

// seedMembershipCkpt writes the benchmark checkpoint: the checkpointed
// WordCount (1 MiB uniform corpus, WC hint) on a size-rank in-process world
// over the given PFS.
func seedMembershipCkpt(tb testing.TB, fs *pfs.FS, name string, size int) {
	tb.Helper()
	world := mpi.NewWorld(mpi.Config{Size: size, Net: simtime.NetworkModel{Alpha: 1e-7, Beta: 1e9}})
	_, err := driver.WordCount(world, driver.WordCountConfig{
		Dist:       workloads.Uniform,
		TotalBytes: 1 << 20,
		Seed:       42,
		Hint:       true,
		PR:         true,
		Checkpoint: &core.Checkpoint{FS: fs, Name: name},
	}, nil)
	if err != nil {
		tb.Fatalf("seeding checkpoint at size %d: %v", size, err)
	}
}

// runMembershipRebalance seeds a fresh checkpoint at from ranks and
// repartitions it to to ranks under a dedicated simulated clock.
func runMembershipRebalance(tb testing.TB, from, to int) membershipPoint {
	tb.Helper()
	// Checkpoints live on the spill-class file system: Comet's Lustre spill
	// bandwidth (internal/platform), so the seconds mean something.
	fs := pfs.New(pfs.Config{Bandwidth: 2e5, Latency: 2e-3})
	name := fmt.Sprintf("bench-%d-%d", from, to)
	seedMembershipCkpt(tb, fs, name, from)

	clock := simtime.NewClock()
	st, err := core.RepartitionCheckpoint(fs, clock, core.Checkpoint{FS: fs, Name: name},
		workloads.WCHint(), from, to, nil)
	if err != nil {
		tb.Fatalf("repartition %d -> %d: %v", from, to, err)
	}
	pt := membershipPoint{
		From: from, To: to,
		Records: st.Records, BytesIn: st.BytesIn, BytesMoved: st.BytesMoved,
		RebalanceSec: clock.Now(),
	}
	if st.BytesIn > 0 {
		pt.MovedFrac = float64(st.BytesMoved) / float64(st.BytesIn)
		pt.SecPerGB = pt.RebalanceSec * float64(1<<30) / float64(st.BytesIn)
	}
	return pt
}

// membershipSweep is the committed set of resizes: the acceptance pair
// (4 -> 6 grow, 6 -> 3 shrink via 4), a doubling, and a halving.
var membershipSweep = []struct{ from, to int }{
	{4, 6},
	{6, 3},
	{4, 8},
	{8, 4},
}

// BenchmarkMembershipRebalance reports the simulated rebalance figures the
// same way the ablation benchmarks do; ns/op is host-side bookkeeping only.
func BenchmarkMembershipRebalance(b *testing.B) {
	for _, sw := range membershipSweep {
		b.Run(fmt.Sprintf("%dto%d", sw.from, sw.to), func(b *testing.B) {
			b.ReportAllocs()
			var pt membershipPoint
			for i := 0; i < b.N; i++ {
				pt = runMembershipRebalance(b, sw.from, sw.to)
			}
			b.ReportMetric(pt.RebalanceSec, "rebalance-sim-sec")
			b.ReportMetric(pt.MovedFrac, "moved-frac")
		})
	}
}

// benchMembershipBaseline is the committed shape of BENCH_membership.json.
type benchMembershipBaseline struct {
	Benchmark string            `json:"benchmark"`
	Workload  string            `json:"workload"`
	Note      string            `json:"note"`
	Points    []membershipPoint `json:"points"`
}

func benchMembershipRun(tb testing.TB) benchMembershipBaseline {
	base := benchMembershipBaseline{
		Benchmark: "BenchmarkMembershipRebalance",
		Workload:  "WordCount uniform 1 MiB checkpoint (WC hint, PR), repartitioned across world sizes",
		Note: "All figures are simulated seconds on the pfs cost model under a dedicated " +
			"clock, so they are byte-identical on any host. bytes_moved counts only " +
			"records whose rank assignment changed; moved_frac is the fraction of the " +
			"checkpoint a resize actually ships.",
	}
	for _, sw := range membershipSweep {
		base.Points = append(base.Points, runMembershipRebalance(tb, sw.from, sw.to))
	}
	return base
}

// TestMembershipBenchBaseline regenerates the sweep and holds it against the
// committed BENCH_membership.json. The figures are machine-independent, so
// any drift is a real change to the rebalance's data movement or the PFS
// cost accounting. It also pins the structural claims: records conserved
// across every resize and strictly partial movement (a rebalance never ships
// the whole checkpoint).
func TestMembershipBenchBaseline(t *testing.T) {
	got := benchMembershipRun(t)
	for _, pt := range got.Points {
		if pt.Records <= 0 {
			t.Errorf("%d -> %d: no records rebalanced", pt.From, pt.To)
		}
		if pt.BytesMoved <= 0 || pt.BytesMoved >= pt.BytesIn {
			t.Errorf("%d -> %d: moved %d of %d bytes, want strictly partial movement",
				pt.From, pt.To, pt.BytesMoved, pt.BytesIn)
		}
		if pt.RebalanceSec <= 0 {
			t.Errorf("%d -> %d: rebalance took no simulated time", pt.From, pt.To)
		}
	}
	if out := os.Getenv("MIMIR_BENCH_OUT"); out != "" {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", out)
		return
	}
	raw, err := os.ReadFile("BENCH_membership.json")
	if err != nil {
		t.Fatalf("read baseline (regenerate with MIMIR_BENCH_OUT): %v", err)
	}
	var want benchMembershipBaseline
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse BENCH_membership.json: %v", err)
	}
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("sweep drifted from committed BENCH_membership.json\n got: %s\nwant: %s", gotJSON, wantJSON)
	}
}
