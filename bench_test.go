package mimir_test

// One testing.B benchmark per table/figure of the paper's evaluation, plus
// micro-benchmarks of the load-bearing primitives. Figure benchmarks run a
// full deterministic sweep per iteration (they take seconds to minutes —
// the default -benchtime keeps them at one iteration); use
// `go test -bench 'Fig0?8' -benchmem` to select one.

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"mimir"
	"mimir/internal/expt"
	"mimir/internal/kvbuf"
	"mimir/internal/mem"
	"mimir/internal/mrmpi"
	"mimir/internal/pfs"
	"mimir/internal/workloads"
)

func benchFigure(b *testing.B, gen func() []*expt.Figure) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, f := range gen() {
			f.Render(io.Discard)
		}
	}
}

// BenchmarkFig01 regenerates Figure 1: the MR-MPI single-node WordCount
// performance cliff on Comet.
func BenchmarkFig01(b *testing.B) { benchFigure(b, expt.Fig1) }

// BenchmarkFig07 regenerates Figure 7: KV bytes with and without the
// KV-hint on the Wikipedia dataset.
func BenchmarkFig07(b *testing.B) { benchFigure(b, expt.Fig7) }

// BenchmarkFig08 regenerates Figure 8: peak memory and execution time on a
// Comet node, Mimir vs MR-MPI (64M/512M), four benchmarks.
func BenchmarkFig08(b *testing.B) { benchFigure(b, expt.Fig8) }

// BenchmarkFig09 regenerates Figure 9: the same comparison on a Mira node.
func BenchmarkFig09(b *testing.B) { benchFigure(b, expt.Fig9) }

// BenchmarkFig10 regenerates Figure 10: weak scalability of WordCount on
// Comet and Mira, 2-64 nodes.
func BenchmarkFig10(b *testing.B) { benchFigure(b, expt.Fig10) }

// BenchmarkFig11 regenerates Figure 11: KV compression on a Comet node.
func BenchmarkFig11(b *testing.B) { benchFigure(b, expt.Fig11) }

// BenchmarkFig12 regenerates Figure 12: KV compression on a Mira node.
func BenchmarkFig12(b *testing.B) { benchFigure(b, expt.Fig12) }

// BenchmarkFig13 regenerates Figure 13: the hint/pr/cps optimization ladder
// on a Mira node.
func BenchmarkFig13(b *testing.B) { benchFigure(b, expt.Fig13) }

// BenchmarkFig14 regenerates Figure 14: weak scalability of the ladder on
// Mira (the heaviest sweep; several minutes per iteration).
func BenchmarkFig14(b *testing.B) { benchFigure(b, expt.Fig14) }

// ---- Micro-benchmarks ----

// BenchmarkKVEncodeDefault measures the default 8-byte-header KV encoding.
func BenchmarkKVEncodeDefault(b *testing.B) {
	h := kvbuf.DefaultHint()
	k, v := []byte("benchmark"), mimir.Uint64Bytes(1)
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, _ = h.Encode(buf[:0], k, v)
	}
}

// BenchmarkKVEncodeHinted measures the KV-hint encoding (strz key, fixed
// value) that Figure 7 evaluates.
func BenchmarkKVEncodeHinted(b *testing.B) {
	h := kvbuf.Hint{Key: kvbuf.StrZ(), Val: kvbuf.Fixed(8)}
	k, v := []byte("benchmark"), mimir.Uint64Bytes(1)
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, _ = h.Encode(buf[:0], k, v)
	}
}

// BenchmarkKVDecode measures stream decoding of KVs.
func BenchmarkKVDecode(b *testing.B) {
	h := kvbuf.DefaultHint()
	enc, _ := h.Encode(nil, []byte("benchmark"), mimir.Uint64Bytes(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := h.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBucketUpsert measures the combiner hash bucket on a WordCount-
// like workload (8K distinct keys).
func BenchmarkBucketUpsert(b *testing.B) {
	arena := mem.NewArena(0)
	bkt, err := kvbuf.NewBucket(arena, 64<<10)
	if err != nil {
		b.Fatal(err)
	}
	defer bkt.Free()
	keys := make([][]byte, 8192)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("word-%04d", i))
	}
	one := mimir.Uint64Bytes(1)
	merge := func(existing, incoming []byte) ([]byte, error) {
		return mimir.Uint64Bytes(mimir.BytesUint64(existing) + 1), nil
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bkt.Upsert(keys[i&8191], one, merge); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvert measures the two-pass KV-to-KMV conversion.
func BenchmarkConvert(b *testing.B) {
	arena := mem.NewArena(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in := kvbuf.NewKVC(arena, 64<<10, kvbuf.DefaultHint())
		for j := 0; j < 10000; j++ {
			if err := in.Append([]byte(fmt.Sprintf("key-%03d", j%512)), mimir.Uint64Bytes(uint64(j))); err != nil {
				b.Fatal(err)
			}
		}
		out, err := kvbuf.Convert(in, arena, 64<<10, kvbuf.DefaultHint())
		if err != nil {
			b.Fatal(err)
		}
		out.Free()
	}
}

// BenchmarkAlltoallv measures one exchange round across 16 in-process ranks.
func BenchmarkAlltoallv(b *testing.B) {
	const p = 16
	payload := make([]byte, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	w := mimir.NewWorld(p)
	err := w.Run(func(c *mimir.Comm) error {
		send := make([][]byte, p)
		for i := range send {
			send[i] = payload
		}
		for i := 0; i < b.N; i++ {
			if _, err := c.Alltoallv(send); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWordCountMimir measures an end-to-end in-memory WordCount on the
// Mimir engine (8 ranks, 1 MiB of uniform text).
func BenchmarkWordCountMimir(b *testing.B) {
	benchWordCount(b, func(c *mimir.Comm, arena *mem.Arena) workloads.Engine {
		return workloads.NewMimirEngine(c, arena)
	})
}

// BenchmarkWordCountMRMPI measures the same job on the MR-MPI baseline.
func BenchmarkWordCountMRMPI(b *testing.B) {
	benchWordCount(b, func(c *mimir.Comm, arena *mem.Arena) workloads.Engine {
		return workloads.NewMRMPIEngine(c, arena, mimir.Laptop().SpillFSFor(1))
	})
}

func benchWordCount(b *testing.B, mk func(*mimir.Comm, *mem.Arena) workloads.Engine) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		const p = 8
		w := mimir.NewWorld(p)
		arena := mimir.NewArena(0)
		err := w.Run(func(c *mimir.Comm) error {
			_, err := workloads.RunWordCount(mk(c, arena), nil, workloads.WCConfig{
				Dist: workloads.Uniform, TotalBytes: 1 << 20, Seed: 42,
			}, workloads.StageOpts{})
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSortKeys measures MR-MPI's external run-merge sort.
func BenchmarkSortKeys(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := mimir.NewWorld(2)
		arena := mimir.NewArena(0)
		spill := mimir.Laptop().SpillFSFor(1)
		err := w.Run(func(c *mimir.Comm) error {
			mr := mrmpi.New(c, mrmpi.Config{Arena: arena, PageSize: 4 << 10, Spill: spill})
			defer mr.Free()
			input := workloads.TextInput(nil, nil, workloads.Uniform, 42, 1<<18, c.Rank(), 2)
			wrapped := func(emit func(mimir.Record) error) error { return input(emit) }
			if err := mr.Map(wrapped, workloads.WordCountMap); err != nil {
				return err
			}
			return mr.SortKeys(nil)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointSaveRestore measures the fault-tolerance round trip.
func BenchmarkCheckpointSaveRestore(b *testing.B) {
	b.ReportAllocs()
	fs := pfs.New(pfs.Config{Bandwidth: 1e9})
	for i := 0; i < b.N; i++ {
		ck := &mimir.Checkpoint{FS: fs, Name: fmt.Sprintf("bench-%d", i)}
		for attempt := 0; attempt < 2; attempt++ { // save, then restore
			w := mimir.NewWorld(4)
			arena := mimir.NewArena(0)
			err := w.Run(func(c *mimir.Comm) error {
				input := workloads.TextInput(nil, nil, workloads.Uniform, 42, 1<<18, c.Rank(), 4)
				wrapped := func(emit func(mimir.Record) error) error { return input(emit) }
				out, err := mimir.NewJob(c, mimir.Config{Arena: arena, Checkpoint: ck}).
					Run(wrapped, workloads.WordCountMap, workloads.WordCountReduce)
				if err != nil {
					return err
				}
				out.Free()
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		ck.Remove(4)
	}
}

// BenchmarkFileInput measures the line-aligned file splitter.
func BenchmarkFileInput(b *testing.B) {
	fs := pfs.New(pfs.Config{Bandwidth: 1e12})
	var data []byte
	for i := 0; i < 10000; i++ {
		data = append(data, fmt.Sprintf("line %d with some content here\n", i)...)
	}
	fs.Append(nil, "bench.txt", data)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for rank := 0; rank < 4; rank++ {
			err := mimir.FileInput(fs, nil, "bench.txt", rank, 4)(func(mimir.Record) error { return nil })
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkMapEmit measures the map-side fast path: emitting KVs into the
// partitioned send buffer with interleaved exchanges, on one rank.
func BenchmarkMapEmit(b *testing.B) {
	w := mimir.NewWorld(1)
	arena := mimir.NewArena(0)
	var line strings.Builder
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&line, "token%02d ", i)
	}
	rec := []byte(line.String())
	b.ReportAllocs()
	b.ResetTimer()
	err := w.Run(func(c *mimir.Comm) error {
		job := mimir.NewJob(c, mimir.Config{Arena: arena})
		input := func(emit func(mimir.Record) error) error {
			for i := 0; i < b.N; i++ {
				if err := emit(mimir.Record{Val: rec}); err != nil {
					return err
				}
			}
			return nil
		}
		out, err := job.Run(input, workloads.WordCountMap, workloads.WordCountReduce)
		if err != nil {
			return err
		}
		out.Free()
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTextGen measures the deterministic dataset generators.
func BenchmarkTextGen(b *testing.B) {
	for _, dist := range []workloads.Distribution{workloads.Uniform, workloads.Wikipedia} {
		b.Run(dist.String(), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(1 << 16)
			for i := 0; i < b.N; i++ {
				in := workloads.TextInput(nil, nil, dist, 42, 1<<16, 0, 1)
				if err := in(func(mimir.Record) error { return nil }); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkArena measures the node-memory accounting hot path under
// concurrency (every page allocation crosses it).
func BenchmarkArena(b *testing.B) {
	a := mimir.NewArena(0)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := a.Alloc(4096); err != nil {
				b.Fatal(err)
			}
			a.Free(4096)
		}
	})
	var wg sync.WaitGroup
	wg.Wait()
}
