package mimir_test

// BENCH_mrc pins the multi-round-computation suite's ablation: TeraSort,
// PageRank, and k-means on 4 Comet ranks (one per node, so every peak is an
// exact arena high-water mark), each swept over its optimization ladder.
// The committed claims: the KV-hint cuts every job's exchange traffic and
// the iterative jobs' arena peaks, and partial reduction further cuts the
// iterative jobs' peaks (Mimir's pr merges at the aggregate, so wire bytes
// stay put while container memory drops). Round counts and the per-round
// peak series are pinned exactly — all figures come from the simulated cost
// model, so they are byte-identical on any host and drift only when the
// engine's accounting changes.
//
// Regenerate the committed baseline with:
//
//	MIMIR_BENCH_OUT=BENCH_mrc.json go test -run TestMRCBenchBaseline .

import (
	"encoding/json"
	"os"
	"testing"

	"mimir/internal/expt"
)

// benchMRCSpec is the committed sweep: the default MRC matrix — jobs
// {terasort, pagerank, kmeans} x ladder {base, hint, hint;pr} at 4 ranks,
// 2^13 rows / 2^9 vertices / 2^12 points, seed 42.
func benchMRCSpec() expt.MRCSpec { return expt.MRCSpec{} }

// benchMRCBaseline is the committed shape of BENCH_mrc.json.
type benchMRCBaseline struct {
	Benchmark string         `json:"benchmark"`
	Workload  string         `json:"workload"`
	Note      string         `json:"note"`
	Points    []expt.MRCCell `json:"points"`
}

func benchMRCRun() benchMRCBaseline {
	return benchMRCBaseline{
		Benchmark: "TestMRCBenchBaseline",
		Workload:  "MRC suite (terasort 2^13 rows, pagerank 2^9 vertices, kmeans 2^12 points), Comet 4 nodes x 1 rank, optimization ladder per job",
		Note: "All figures are simulated (expt cost model), so they are byte-identical " +
			"on any host; drift means the engine's cost or memory accounting changed. " +
			"Pinned here: round counts, per-round arena peaks, and the ladder claims — " +
			"the KV-hint cuts exchange traffic, partial reduction cuts the iterative " +
			"jobs' arena peaks.",
		Points: expt.MRCMatrix(benchMRCSpec()),
	}
}

func (b *benchMRCBaseline) point(t *testing.T, job, variant string) expt.MRCCell {
	t.Helper()
	for _, p := range b.Points {
		if p.Job == job && p.Variant == variant {
			return p
		}
	}
	t.Fatalf("BENCH_mrc point (%s, %s) missing", job, variant)
	return expt.MRCCell{}
}

// TestMRCBenchBaseline regenerates the sweep and holds it against the
// committed BENCH_mrc.json (exact match — the figures are simulated), plus
// the structural claims the ablation exists to demonstrate.
func TestMRCBenchBaseline(t *testing.T) {
	got := benchMRCRun()
	for _, pt := range got.Points {
		if pt.Err != "" {
			t.Errorf("cell %s failed: %s", pt.Name(), pt.Err)
		}
		if pt.SpilledBytes != 0 {
			t.Errorf("cell %s spilled %d bytes; sweep must stay in memory", pt.Name(), pt.SpilledBytes)
		}
		if len(pt.RoundPeakBytes) != pt.Rounds {
			t.Errorf("cell %s: %d round peaks for %d rounds", pt.Name(), len(pt.RoundPeakBytes), pt.Rounds)
		}
		for i := 1; i < len(pt.RoundPeakBytes); i++ {
			if pt.RoundPeakBytes[i] < pt.RoundPeakBytes[i-1] {
				t.Errorf("cell %s: round peak series not monotone at round %d", pt.Name(), i)
			}
		}
	}
	// Round counts: the sort is one round; the iterative jobs actually
	// iterate and the ladder never changes how many rounds convergence takes
	// (the optimizations are representation changes, not numeric ones).
	for _, job := range []string{"terasort", "pagerank", "kmeans"} {
		base := got.point(t, job, "base")
		hint := got.point(t, job, "hint")
		switch job {
		case "terasort":
			if base.Rounds != 1 {
				t.Errorf("terasort ran %d rounds, want 1", base.Rounds)
			}
		default:
			if base.Rounds < 2 {
				t.Errorf("%s ran %d rounds; the suite must exercise the round loop", job, base.Rounds)
			}
			pr := got.point(t, job, "hint;pr")
			if pr.Rounds != base.Rounds || hint.Rounds != base.Rounds {
				t.Errorf("%s round count changed across the ladder: base %d, hint %d, pr %d",
					job, base.Rounds, hint.Rounds, pr.Rounds)
			}
			// Partial reduction merges at the aggregate: container memory
			// drops while wire traffic stays put.
			if pr.PeakPerRankBytes >= hint.PeakPerRankBytes {
				t.Errorf("%s: pr peak %d not below hint peak %d", job, pr.PeakPerRankBytes, hint.PeakPerRankBytes)
			}
			if hint.PeakPerRankBytes >= base.PeakPerRankBytes {
				t.Errorf("%s: hint peak %d not below base peak %d", job, hint.PeakPerRankBytes, base.PeakPerRankBytes)
			}
		}
		// The KV-hint drops per-record headers, so exchange traffic shrinks.
		if hint.ShuffledBytes >= base.ShuffledBytes {
			t.Errorf("%s: hint shuffled %d not below base %d", job, hint.ShuffledBytes, base.ShuffledBytes)
		}
	}

	if out := os.Getenv("MIMIR_BENCH_OUT"); out != "" {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", out)
		return
	}
	raw, err := os.ReadFile("BENCH_mrc.json")
	if err != nil {
		t.Fatalf("read baseline (regenerate with MIMIR_BENCH_OUT): %v", err)
	}
	var want benchMRCBaseline
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse BENCH_mrc.json: %v", err)
	}
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("sweep drifted from committed BENCH_mrc.json\n got: %s\nwant: %s", gotJSON, wantJSON)
	}
}
