package mimir_test

// TestShuffleAllocs pins the allocation behavior of the shuffle hot path
// with testing.AllocsPerRun:
//
//   - the codec fast paths (Encode into a reused buffer, Decode, Measure)
//     allocate NOTHING per KV — these run once per KV on the map and reduce
//     sides, so any per-call allocation multiplies by the dataset;
//   - container chunk ingestion (AppendChunk + Drain) amortizes to a small
//     constant per chunk (page-pool bookkeeping), not per KV;
//   - the TCP send path costs a small constant per FRAME (replay-ledger
//     append, pooled-buffer boxing, one Frame header on the receive side),
//     independent of payload size.
//
// The pins run only without the race detector: -race instruments every
// allocation and makes sync.Pool deliberately drop items, so AllocsPerRun
// measures the instrumentation, not the code (see raceEnabled).

import (
	"fmt"
	"testing"

	"mimir"
	"mimir/internal/kvbuf"
)

func TestShuffleAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun figures are meaningless under the race detector")
	}
	hint := shuffleHint()
	key := []byte("word00ffxxx")
	val := mimir.Uint64Bytes(1)
	enc, err := hint.Encode(nil, key, val)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("codec/encode", func(t *testing.T) {
		dst := make([]byte, 0, 64)
		if n := testing.AllocsPerRun(1000, func() {
			if _, err := hint.Encode(dst[:0], key, val); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("Encode into reused buffer: %v allocs/KV, want 0", n)
		}
	})

	t.Run("codec/decode", func(t *testing.T) {
		if n := testing.AllocsPerRun(1000, func() {
			if _, _, _, err := hint.Decode(enc); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("Decode: %v allocs/KV, want 0", n)
		}
	})

	t.Run("codec/measure", func(t *testing.T) {
		if n := testing.AllocsPerRun(1000, func() {
			if _, err := hint.Measure(enc); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("Measure: %v allocs/KV, want 0", n)
		}
	})

	t.Run("container/append-chunk", func(t *testing.T) {
		// A realistic receive chunk: several thousand KVs, a few pages worth.
		const chunkKVs = 4096
		var chunk []byte
		for i := 0; i < chunkKVs; i++ {
			chunk, err = hint.Encode(chunk, []byte(fmt.Sprintf("word%04x", i%shuffleVocab)), val)
			if err != nil {
				t.Fatal(err)
			}
		}
		arena := mimir.NewArena(0)
		kvc := kvbuf.NewKVC(arena, 64<<10, hint)
		sink := func(k, v []byte) error { return nil }
		// Warm the page pool so the measurement sees steady state.
		if _, err := kvc.AppendChunk(chunk); err != nil {
			t.Fatal(err)
		}
		if err := kvc.Drain(sink); err != nil {
			t.Fatal(err)
		}
		n := testing.AllocsPerRun(50, func() {
			if _, err := kvc.AppendChunk(chunk); err != nil {
				t.Fatal(err)
			}
			if err := kvc.Drain(sink); err != nil {
				t.Fatal(err)
			}
		})
		// Page-pool round trips cost ~1 boxing alloc per page put plus the
		// pages-slice growth; with ~70KB across 2 pages that's a handful per
		// CHUNK and ~0 per KV.
		if n > 16 {
			t.Errorf("AppendChunk+Drain cycle: %v allocs/chunk, want <= 16", n)
		}
		if perKV := n / chunkKVs; perKV > 0.01 {
			t.Errorf("AppendChunk+Drain: %v allocs/KV, want <= 0.01", perKV)
		}
		t.Logf("AppendChunk+Drain: %.1f allocs per %d-KV chunk (%.5f/KV)", n, chunkKVs, n/chunkKVs)
	})

	t.Run("tcp/send-frame", func(t *testing.T) {
		trs, err := shuffleMesh(2, false)
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			for _, tr := range trs {
				tr.Close()
			}
		}()
		ep0, ep1 := trs[0].Endpoint(0), trs[1].Endpoint(1)
		recycler, _ := ep1.(interface{ Recycle(b []byte) })
		payload := make([]byte, 64<<10) // 64 KiB frame: per-KV share vanishes
		for i := range payload {
			payload[i] = byte(i)
		}
		roundTrip := func() {
			if err := ep0.Send(1, 7, payload, 0); err != nil {
				t.Fatal(err)
			}
			m, err := ep1.Recv(0, 7)
			if err != nil {
				t.Fatal(err)
			}
			if len(m.Data) != len(payload) {
				t.Fatalf("got %d bytes, want %d", len(m.Data), len(payload))
			}
			if recycler != nil {
				recycler.Recycle(m.Data)
			}
		}
		roundTrip() // warm the frame pools and the replay ledger
		n := testing.AllocsPerRun(100, roundTrip)
		// One framed send costs: a pooled replay buffer (boxing on recycle),
		// the ledger append, the receive-side Frame header + pooled body, the
		// queue node, and the ack round — each a fixed cost per frame,
		// independent of the 64 KiB payload.
		const maxPerFrame = 24
		if n > maxPerFrame {
			t.Errorf("TCP send/recv round trip: %v allocs/frame, want <= %d", n, maxPerFrame)
		}
		t.Logf("TCP send/recv: %.1f allocs per 64KiB frame", n)
	})
}
