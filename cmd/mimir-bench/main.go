// Command mimir-bench regenerates the tables behind every figure of the
// paper's evaluation (Section IV), plus this implementation's extensions
// (the out-of-core spill ladder, "figspill").
//
// Usage:
//
//	mimir-bench            # run every figure (takes a while)
//	mimir-bench -fig 8     # run only Figure 8
//	mimir-bench -fig spill # the out-of-core ladder: spill policies vs MR-MPI modes
//	mimir-bench -list      # list available figures
//
// A single run with the per-rank distribution view (machine-readable, one
// sample per rank for each phase time and traffic counter):
//
//	mimir-bench -single wcu -nodes 4 -bytes 1048576 -perrank -
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mimir/internal/expt"
	"mimir/internal/metrics"
	"mimir/internal/platform"
)

func main() {
	fig := flag.String("fig", "", "figure to run (e.g. 1, 8, fig10); empty = all")
	list := flag.Bool("list", false, "list available figures")
	asJSON := flag.Bool("json", false, "emit JSON instead of tables")
	single := flag.String("single", "", "run one benchmark instead of figures: wcu, wcw, oc, or bfs")
	nodes := flag.Int("nodes", 4, "simulated nodes for -single")
	rpn := flag.Int("rpn", 4, "ranks per node for -single")
	sizeBytes := flag.Int64("bytes", 1<<20, "dataset bytes (wcu/wcw), points (oc), or scale (bfs) for -single")
	engineArg := flag.String("engine", "mimir", "engine for -single: mimir or mrmpi")
	perrank := flag.String("perrank", "", "with -single: write the per-rank distribution JSON to this file (- = stdout)")
	flag.Parse()

	if *single != "" {
		runSingle(*single, *nodes, *rpn, *sizeBytes, *engineArg, *perrank)
		return
	}

	if *list {
		for _, e := range expt.All {
			fmt.Printf("%-8s %s\n", e.ID, e.Note)
		}
		return
	}

	// -fig accepts a figure number ("8") or a single panel ("8c").
	want := strings.TrimPrefix(strings.ToLower(*fig), "fig")
	wantFig := strings.TrimRight(want, "abcd")
	wantPanel := strings.TrimPrefix(want, wantFig)
	ran := 0
	for _, e := range expt.All {
		id := strings.TrimPrefix(e.ID, "fig")
		if want != "" && id != wantFig {
			continue
		}
		start := time.Now()
		for _, f := range e.Gen() {
			if wantPanel != "" && !strings.HasSuffix(f.ID, wantPanel) {
				continue
			}
			if *asJSON {
				if err := f.WriteJSON(os.Stdout); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			} else {
				f.Render(os.Stdout)
			}
			ran++
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown figure %q; use -list\n", *fig)
		os.Exit(2)
	}
}

// runSingle executes one spec and reports its result plus, optionally, the
// per-rank distribution summary as JSON (satisfying harnesses that want
// machine-readable load-imbalance data without re-running a whole figure).
func runSingle(bench string, nodes, rpn int, size int64, engineArg, perrank string) {
	spec := expt.Spec{
		Plat:         platform.Comet(),
		Nodes:        nodes,
		RanksPerNode: rpn,
		Hint:         true,
		PR:           true,
		Seed:         42,
	}
	switch engineArg {
	case "mimir":
		spec.Engine = expt.Mimir
	case "mrmpi":
		spec.Engine = expt.MRMPI
		spec.Hint, spec.PR = false, false
	default:
		fmt.Fprintf(os.Stderr, "unknown engine %q (want mimir or mrmpi)\n", engineArg)
		os.Exit(2)
	}
	switch bench {
	case "wcu":
		spec.Bench, spec.SizeBytes = expt.WCUniform, size
	case "wcw":
		spec.Bench, spec.SizeBytes = expt.WCWikipedia, size
	case "oc":
		spec.Bench, spec.Points = expt.OC, size
	case "bfs":
		spec.Bench, spec.Scale = expt.BFS, int(size)
	default:
		fmt.Fprintf(os.Stderr, "unknown benchmark %q (want wcu, wcw, oc, or bfs)\n", bench)
		os.Exit(2)
	}
	if perrank != "" {
		spec.PerRank = metrics.NewSummary()
	}
	res := expt.Run(spec)
	if res.Err != nil {
		fmt.Fprintln(os.Stderr, res.Err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "time=%.4gs peak/proc=%d spilled=%d\n", res.Time, res.PeakPerProc, res.SpilledBytes)
	if spec.PerRank == nil {
		return
	}
	out := os.Stdout
	if perrank != "-" {
		f, err := os.Create(perrank)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if err := spec.PerRank.WriteJSON(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
