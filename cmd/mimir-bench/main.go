// Command mimir-bench regenerates the tables behind every figure of the
// paper's evaluation (Section IV), plus this implementation's extensions
// (the out-of-core spill ladder, "figspill").
//
// Usage:
//
//	mimir-bench            # run every figure (takes a while)
//	mimir-bench -fig 8     # run only Figure 8
//	mimir-bench -fig spill # the out-of-core ladder: spill policies vs MR-MPI modes
//	mimir-bench -list      # list available figures
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mimir/internal/expt"
)

func main() {
	fig := flag.String("fig", "", "figure to run (e.g. 1, 8, fig10); empty = all")
	list := flag.Bool("list", false, "list available figures")
	asJSON := flag.Bool("json", false, "emit JSON instead of tables")
	flag.Parse()

	if *list {
		for _, e := range expt.All {
			fmt.Printf("%-8s %s\n", e.ID, e.Note)
		}
		return
	}

	// -fig accepts a figure number ("8") or a single panel ("8c").
	want := strings.TrimPrefix(strings.ToLower(*fig), "fig")
	wantFig := strings.TrimRight(want, "abcd")
	wantPanel := strings.TrimPrefix(want, wantFig)
	ran := 0
	for _, e := range expt.All {
		id := strings.TrimPrefix(e.ID, "fig")
		if want != "" && id != wantFig {
			continue
		}
		start := time.Now()
		for _, f := range e.Gen() {
			if wantPanel != "" && !strings.HasSuffix(f.ID, wantPanel) {
				continue
			}
			if *asJSON {
				if err := f.WriteJSON(os.Stdout); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			} else {
				f.Render(os.Stdout)
			}
			ran++
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown figure %q; use -list\n", *fig)
		os.Exit(2)
	}
}
