// Command mimir-worker runs a distributed WordCount over the deterministic
// synthetic corpus, with each MPI rank in its own OS process connected by
// the TCP transport — the multi-process counterpart of the in-process
// worlds every other command uses.
//
// Launch modes:
//
//	mimir-worker -spawn 4              # become rank 0, fork 3 local workers
//	mimir-worker -join H:P -rank R -size N   # join an explicit rendezvous
//	mimir-worker -listen :9000 -size N       # be rank 0 of that rendezvous
//	mimir-worker -inproc 4             # in-process reference run (no TCP)
//
// Processes re-executed by -spawn find their world through the MIMIR_TCP_*
// environment automatically. The counted output (one "word count" line per
// distinct word, sorted) goes to rank 0's stdout and is byte-identical
// across launch modes for the same -size/-bytes/-dist/-seed, which is what
// the CI smoke test asserts.
//
// -metrics FILE writes the per-rank distribution summary (phase times,
// shuffle bytes, total time) as JSON; "-" means stdout. Worker processes
// append ".rankN" to the file name.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"mimir"
	"mimir/internal/driver"
	"mimir/internal/metrics"
	"mimir/internal/workloads"
)

// defaultWorkers resolves the -workers default from MIMIR_WORKERS: 0 lets
// the engine use all cores (GOMAXPROCS), 1 forces the serial path. The flag
// (like all flags) is copied to -spawn children via os.Args, so the whole
// world runs one pool size; output bytes are identical regardless.
func defaultWorkers() int {
	if v := os.Getenv("MIMIR_WORKERS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return 0
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mimir-worker: ")
	var (
		spawn   = flag.Int("spawn", 0, "become rank 0 of an n-process world, forking n-1 local workers")
		join    = flag.String("join", "", "address of rank 0's bootstrap listener to join")
		listen  = flag.String("listen", "", "listen address for rank 0 of an explicit rendezvous")
		rank    = flag.Int("rank", 0, "this process's rank (with -join)")
		size    = flag.Int("size", 0, "world size (with -join / -listen)")
		inproc  = flag.Int("inproc", 0, "run n in-process ranks instead of TCP (reference mode)")
		timeout = flag.Duration("timeout", 30*time.Second, "bootstrap rendezvous timeout")

		policyArg = flag.String("fault-policy", "abort", "link fault handling: abort (fail-stop) or retry (reconnect + replay)")
		faults    = flag.String("faults", "", "deterministic fault-injection spec, e.g. seed:42,kill:rank2@round3")
		window    = flag.Duration("reconnect-window", 0, "with -fault-policy retry: give up on an unreachable peer after this long (0 = default 10s)")
		compress  = flag.Bool("compress", false, "compress TCP wire frames (flate, per frame); trades CPU for bytes on the wire")

		bytes   = flag.Int64("bytes", 1<<20, "total corpus bytes across all ranks")
		distArg = flag.String("dist", "uniform", "corpus distribution: uniform or wikipedia")
		seed    = flag.Uint64("seed", 42, "corpus seed")
		hint    = flag.Bool("hint", true, "use the KV-hint")
		pr      = flag.Bool("pr", true, "use partial reduction")
		cps     = flag.Bool("cps", false, "use KV compression")
		workers = flag.Int("workers", defaultWorkers(), "per-rank worker pool size (0 = all cores, 1 = serial; default from MIMIR_WORKERS)")
		mpath   = flag.String("metrics", "", "write per-rank distribution JSON to this file (- = stdout)")
	)
	flag.Parse()

	cfg := driver.WordCountConfig{
		TotalBytes: *bytes,
		Seed:       *seed,
		Hint:       *hint,
		PR:         *pr,
		CPS:        *cps,
		Workers:    *workers,
	}
	switch *distArg {
	case "uniform":
		cfg.Dist = workloads.Uniform
	case "wikipedia":
		cfg.Dist = workloads.Wikipedia
	default:
		log.Fatalf("unknown -dist %q (want uniform or wikipedia)", *distArg)
	}

	policy, err := mimir.ParseFaultPolicy(*policyArg)
	if err != nil {
		log.Fatal(err)
	}
	opts := mimir.TCPOptions{
		Policy:          policy,
		ReconnectWindow: *window,
		Deadline:        *timeout,
		Faults:          *faults,
		Compress:        *compress,
	}

	// A process re-executed by -spawn joins the parent's world via the
	// environment, whatever flags it was copied with — including the
	// parent's fault policy and fault-injection spec.
	if world, ok, err := mimir.TCPWorldFromEnv(); ok {
		if err != nil {
			log.Fatal(err)
		}
		runJob(world, cfg, *mpath)
		return
	}

	switch {
	case *spawn > 0:
		world, children, err := mimir.SpawnTCPWorldOpts(*spawn, opts)
		if err != nil {
			log.Fatal(err)
		}
		runJob(world, cfg, *mpath)
		if err := children.Wait(); err != nil {
			log.Fatalf("worker failed: %v", err)
		}
	case *listen != "":
		if *size < 2 {
			log.Fatal("-listen needs -size >= 2")
		}
		world, err := mimir.NewTCPWorldOpts(*listen, 0, *size, opts)
		if err != nil {
			log.Fatal(err)
		}
		runJob(world, cfg, *mpath)
	case *join != "":
		if *size < 2 || *rank < 1 {
			log.Fatal("-join needs -rank >= 1 and -size >= 2")
		}
		world, err := mimir.NewTCPWorldOpts(*join, *rank, *size, opts)
		if err != nil {
			log.Fatal(err)
		}
		runJob(world, cfg, *mpath)
	case *inproc > 0:
		runJob(mimir.NewWorld(*inproc), cfg, *mpath)
	default:
		fmt.Fprintln(os.Stderr, "one of -spawn, -join, -listen, or -inproc is required")
		flag.Usage()
		os.Exit(2)
	}
}

// runJob executes the WordCount on world, prints the gathered result on the
// process hosting rank 0, and closes the world.
func runJob(world *mimir.World, cfg driver.WordCountConfig, mpath string) {
	sum := metrics.NewSummary()
	out, err := driver.WordCount(world, cfg, sum)
	if err != nil {
		world.Close()
		log.Fatal(err)
	}
	if out != nil {
		os.Stdout.Write(out)
	}
	if mpath != "" {
		writeMetrics(world, sum, mpath)
	}
	if err := world.Close(); err != nil {
		log.Fatal(err)
	}
}

func writeMetrics(world *mimir.World, sum *metrics.Summary, mpath string) {
	if mpath == "-" {
		if err := sum.WriteJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	// One file per process: workers suffix their rank so a shared working
	// directory (the -spawn case) is not a write race.
	if r := world.LocalRanks(); len(r) == 1 && r[0] != 0 {
		mpath = fmt.Sprintf("%s.rank%d", mpath, r[0])
	}
	f, err := os.Create(mpath)
	if err != nil {
		log.Fatal(err)
	}
	if err := sum.WriteJSON(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}
