// Command mimir-worker runs one distributed job — WordCount by default, or
// any -job kind (terasort, pagerank, kmeans, bfs) — over its deterministic
// synthetic corpus, with each MPI rank in its own OS process connected by
// the TCP transport — the multi-process counterpart of the in-process
// worlds every other command uses.
//
// Launch modes:
//
//	mimir-worker -spawn 4              # become rank 0, fork 3 local workers
//	mimir-worker -join H:P -rank R -size N   # join an explicit rendezvous
//	mimir-worker -listen :9000 -size N       # be rank 0 of that rendezvous
//	mimir-worker -inproc 4             # in-process reference run (no TCP)
//
// Processes re-executed by -spawn find their world through the MIMIR_TCP_*
// environment automatically. The canonical output (one sorted line per
// record; see driver.RunJob for the per-kind formats) goes to rank 0's
// stdout and is byte-identical across launch modes for the same job
// parameters, which is what the CI smoke tests assert.
//
// -metrics FILE writes the per-rank distribution summary (phase times,
// shuffle bytes, total time) as JSON; "-" means stdout. Worker processes
// append ".rankN" to the file name.
//
// Daemon mode (mimird) keeps the rank mesh standing across jobs instead of
// running one job and exiting:
//
//	mimir-worker -daemon -spawn 4 -admin 127.0.0.1:7077
//	mimir-worker -daemon -inproc 4 -admin 127.0.0.1:7077
//
// Rank 0 serves the JSON-over-TCP admin front door on -admin; submit jobs
// with cmd/mimirctl. -mem caps the node admission arena (the sum of the
// memory floors of concurrently running jobs). Spawned daemon workers run
// the jobsvc control loop instead of a single job and live until the daemon
// shuts down. SIGINT/SIGTERM drains: queued jobs still run, then the mesh
// comes down.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mimir"
	"mimir/internal/driver"
	"mimir/internal/jobsvc"
	"mimir/internal/metrics"
	"mimir/internal/transport"
	"mimir/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mimir-worker: ")
	// Environment-forwarded options seed the flag defaults (one decode,
	// shared with spawn-forwarding): a -spawn child or daemon worker gets
	// the parent's settings without every flag being copied, and an
	// explicit flag still wins.
	envOpts, envErr := mimir.TCPOptionsFromEnv()
	var (
		spawn   = flag.Int("spawn", 0, "become rank 0 of an n-process world, forking n-1 local workers")
		join    = flag.String("join", "", "address of rank 0's bootstrap listener to join")
		listen  = flag.String("listen", "", "listen address for rank 0 of an explicit rendezvous")
		rank    = flag.Int("rank", 0, "this process's rank (with -join)")
		size    = flag.Int("size", 0, "world size (with -join / -listen)")
		inproc  = flag.Int("inproc", 0, "run n in-process ranks instead of TCP (reference mode)")
		timeout = flag.Duration("timeout", 30*time.Second, "bootstrap rendezvous timeout")

		daemon     = flag.Bool("daemon", false, "run as the mimird job service: keep the mesh standing and accept job submissions")
		admin      = flag.String("admin", "127.0.0.1:7077", "with -daemon: admin front-door listen address for mimirctl")
		mem        = flag.Int64("mem", 0, "with -daemon: node admission arena capacity in bytes (0 = unlimited)")
		joinDaemon = flag.String("join-daemon", "", "with -daemon: join a running daemon at this admin address as an elastic worker instead of hosting one")
		joinToken  = flag.String("join-token", "", "with -join-daemon: the join token (mimirctl join-token)")

		policyArg = flag.String("fault-policy", "abort", "link fault handling: abort (fail-stop) or retry (reconnect + replay)")
		faults    = flag.String("faults", "", "deterministic fault-injection spec, e.g. seed:42,kill:rank2@round3")
		window    = flag.Duration("reconnect-window", 0, "with -fault-policy retry: give up on an unreachable peer after this long (0 = default 10s)")
		compress  = flag.Bool("compress", false, "compress TCP wire frames (flate, per frame); trades CPU for bytes on the wire")

		job        = flag.String("job", "", "job kind: wordcount (default), terasort, pagerank, kmeans, or bfs")
		rows       = flag.Int64("rows", 0, "terasort: total rows across all ranks (0 = default)")
		scale      = flag.Int("scale", 0, "pagerank/bfs: log2 of the vertex count (0 = default)")
		edgeFactor = flag.Int("edgefactor", 0, "pagerank/bfs: edges per vertex (0 = default)")
		points     = flag.Int64("points", 0, "kmeans: total points across all ranks (0 = default)")
		kArg       = flag.Int("k", 0, "kmeans: cluster count (0 = default)")
		dims       = flag.Int("dims", 0, "kmeans: point dimensionality (0 = default)")
		rounds     = flag.Int("rounds", 0, "iterative jobs: max rounds (0 = workload default)")

		bytes      = flag.Int64("bytes", 1<<20, "total corpus bytes across all ranks")
		distArg    = flag.String("dist", "uniform", "corpus distribution: uniform or wikipedia")
		zipf       = flag.Float64("zipf", -1, "use the zipf corpus with this exponent instead of -dist (>= 0 enables; 0 = uniform draw, 1.1 = heavy skew)")
		contention = flag.Float64("contention", 0, "with -zipf: probability mass diverted to the hottest word (0..1)")
		partArg    = flag.String("partitioner", "", "key->rank strategy: hash (default) or sample (sampled weighted ranges)")
		seed       = flag.Uint64("seed", 42, "corpus seed")
		hint       = flag.Bool("hint", true, "use the KV-hint")
		pr         = flag.Bool("pr", true, "use partial reduction")
		cps        = flag.Bool("cps", false, "use KV compression")
		workers    = flag.Int("workers", envOpts.Workers, "per-rank worker pool size (0 = all cores, 1 = serial; default from MIMIR_WORKERS)")
		mpath      = flag.String("metrics", "", "write per-rank distribution JSON to this file (- = stdout)")
	)
	flag.Parse()
	if envErr != nil {
		log.Fatal(envErr)
	}

	cfg := driver.JobConfig{
		Kind:        *job,
		TotalBytes:  *bytes,
		Seed:        *seed,
		Hint:        *hint,
		PR:          *pr,
		CPS:         *cps,
		Workers:     *workers,
		Partitioner: *partArg,
		Rows:        *rows,
		Scale:       *scale,
		EdgeFactor:  *edgeFactor,
		Points:      *points,
		K:           *kArg,
		Dims:        *dims,
		MaxRounds:   *rounds,
	}
	if *zipf >= 0 {
		cfg.UseZipf = true
		cfg.ZipfSkew = *zipf
		cfg.Contention = *contention
	}
	switch *distArg {
	case "uniform":
		cfg.Dist = workloads.Uniform
	case "wikipedia":
		cfg.Dist = workloads.Wikipedia
	default:
		log.Fatalf("unknown -dist %q (want uniform or wikipedia)", *distArg)
	}
	if *job != "" {
		known := false
		for _, k := range driver.JobKinds() {
			known = known || k == *job
		}
		if !known {
			log.Fatalf("unknown -job %q (want one of %v)", *job, driver.JobKinds())
		}
	}
	if _, err := mimir.PartitionerByName(*partArg); err != nil {
		log.Fatal(err)
	}

	policy, err := mimir.ParseFaultPolicy(*policyArg)
	if err != nil {
		log.Fatal(err)
	}
	opts := mimir.TCPOptions{
		Policy:          policy,
		ReconnectWindow: *window,
		Deadline:        *timeout,
		Faults:          *faults,
		Compress:        *compress,
		Workers:         *workers,
	}

	// Daemon workers come first: a -daemon -spawn child re-executes with the
	// same flags, so -daemon plus the MIMIR_TCP_* environment means "be a
	// standing worker rank", not "run one job".
	if *daemon {
		if cfg, ok, err := transport.FromEnv(); ok {
			if err != nil {
				log.Fatal(err)
			}
			runDaemonWorker(cfg)
			return
		}
		if *joinDaemon != "" {
			if err := jobsvc.JoinDaemon(*joinDaemon, *joinToken, opts,
				jobsvc.WorkerOptions{Exit: os.Exit, Logf: log.Printf}); err != nil {
				log.Fatal(err)
			}
			return
		}
		runDaemon(*admin, *mem, *spawn, *inproc, transport.SpawnOptions{Options: opts})
		return
	}

	// A process re-executed by -spawn joins the parent's world via the
	// environment, whatever flags it was copied with — including the
	// parent's fault policy and fault-injection spec.
	if world, ok, err := mimir.TCPWorldFromEnv(); ok {
		if err != nil {
			log.Fatal(err)
		}
		runJob(world, cfg, *mpath)
		return
	}

	switch {
	case *spawn > 0:
		world, children, err := mimir.SpawnTCPWorldOpts(*spawn, opts)
		if err != nil {
			log.Fatal(err)
		}
		runJob(world, cfg, *mpath)
		if err := children.Wait(); err != nil {
			log.Fatalf("worker failed: %v", err)
		}
	case *listen != "":
		if *size < 2 {
			log.Fatal("-listen needs -size >= 2")
		}
		world, err := mimir.NewTCPWorldOpts(*listen, 0, *size, opts)
		if err != nil {
			log.Fatal(err)
		}
		runJob(world, cfg, *mpath)
	case *join != "":
		if *size < 2 || *rank < 1 {
			log.Fatal("-join needs -rank >= 1 and -size >= 2")
		}
		world, err := mimir.NewTCPWorldOpts(*join, *rank, *size, opts)
		if err != nil {
			log.Fatal(err)
		}
		runJob(world, cfg, *mpath)
	case *inproc > 0:
		runJob(mimir.NewWorld(*inproc), cfg, *mpath)
	default:
		fmt.Fprintln(os.Stderr, "one of -spawn, -join, -listen, or -inproc is required")
		flag.Usage()
		os.Exit(2)
	}
}

// runJob executes the configured job on world, prints the gathered
// canonical result on the process hosting rank 0, and closes the world.
func runJob(world *mimir.World, cfg driver.JobConfig, mpath string) {
	sum := metrics.NewSummary()
	out, err := driver.RunJob(world, cfg, sum)
	if err != nil {
		world.Close()
		log.Fatal(err)
	}
	if out != nil {
		os.Stdout.Write(out)
	}
	if mpath != "" {
		writeMetrics(world, sum, mpath)
	}
	if err := world.Close(); err != nil {
		log.Fatal(err)
	}
}

// runDaemonWorker is the life of a spawned daemon worker rank: dial into the
// standing mesh and serve the jobsvc control loop, following the service
// across epochs (resizes, crash recoveries) until it is retired or the
// daemon shuts the mesh down. Spec.Crash terminates the process for real
// (os.Exit), which is the fault the daemon's crash-transition path exists
// for.
func runDaemonWorker(cfg transport.TCPConfig) {
	if err := jobsvc.RunWorkerLoop(cfg, jobsvc.WorkerOptions{Exit: os.Exit, Logf: log.Printf}); err != nil {
		log.Fatal(err)
	}
}

// runDaemon is rank 0's daemon life: build the standing mesh, serve the
// admin front door, drain on SIGINT/SIGTERM. The admin listener binds
// before the mesh comes up so spawned workers know where to rejoin after a
// fault.
func runDaemon(admin string, mem int64, spawn, inproc int, sopts transport.SpawnOptions) {
	ln, err := net.Listen("tcp", admin)
	if err != nil {
		log.Fatal(err)
	}
	var factory jobsvc.MeshFactory
	switch {
	case spawn > 0:
		factory = jobsvc.SpawnMesh(spawn, ln.Addr().String(), sopts)
	case inproc > 0:
		factory = jobsvc.LocalMesh(inproc)
	default:
		log.Fatal("-daemon needs -spawn n (process mesh) or -inproc n (in-process mesh)")
	}
	srv, err := jobsvc.NewServer(jobsvc.Config{Mesh: factory, MemBytes: mem, Logf: log.Printf})
	if err != nil {
		log.Fatal(err)
	}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		log.Print("draining (signal)")
		srv.Shutdown()
	}()
	log.Printf("mimird: %d ranks standing, admin on %s", srv.Size(), ln.Addr())
	if err := srv.Serve(ln); err != nil {
		srv.Shutdown()
		log.Fatal(err)
	}
	srv.Shutdown()
}

func writeMetrics(world *mimir.World, sum *metrics.Summary, mpath string) {
	if mpath == "-" {
		if err := sum.WriteJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	// One file per process: workers suffix their rank so a shared working
	// directory (the -spawn case) is not a write race.
	if r := world.LocalRanks(); len(r) == 1 && r[0] != 0 {
		mpath = fmt.Sprintf("%s.rank%d", mpath, r[0])
	}
	f, err := os.Create(mpath)
	if err != nil {
		log.Fatal(err)
	}
	if err := sum.WriteJSON(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}
