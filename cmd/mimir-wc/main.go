// Command mimir-wc counts words in real files with the Mimir engine,
// spreading the work over MPI ranks.
//
//	mimir-wc [-ranks 8] [-transport inproc|tcp] [-top 20] [-hint] [-pr] [-cps] [-partitioner sample] file...
//
// With no files it reads standard input. The default transport runs the
// ranks as goroutines in this process; -transport=tcp runs each rank as its
// own OS process (this process becomes rank 0 and forks the others), which
// requires file arguments — the forked workers cannot re-read stdin.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"mimir"
)

type wcOpts struct {
	hint, pr, cps bool
	workers       int
	partitioner   mimir.Partitioner
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mimir-wc: ")
	// Environment-forwarded options seed the flag defaults (the same decode
	// spawned workers use), so MIMIR_WORKERS / MIMIR_TCP_COMPRESS and the
	// flags cannot disagree; an explicit flag still wins.
	envOpts, envErr := mimir.TCPOptionsFromEnv()
	ranks := flag.Int("ranks", 8, "number of ranks")
	transportArg := flag.String("transport", "inproc", "rank placement: inproc (goroutines) or tcp (one OS process per rank)")
	top := flag.Int("top", 20, "how many of the most frequent words to print")
	hint := flag.Bool("hint", true, "use the KV-hint (strz keys, fixed 8-byte counts)")
	pr := flag.Bool("pr", true, "use partial reduction instead of convert+reduce")
	cps := flag.Bool("cps", false, "use KV compression before the shuffle")
	workers := flag.Int("workers", envOpts.Workers, "per-rank worker pool size (0 = all cores, 1 = serial; default from MIMIR_WORKERS)")
	compress := flag.Bool("compress", envOpts.Compress, "with -transport=tcp: compress wire frames (flate, per frame)")
	partArg := flag.String("partitioner", "", "key->rank strategy: hash (default) or sample (sampled weighted ranges)")
	flag.Parse()
	if envErr != nil {
		log.Fatal(envErr)
	}
	part, err := mimir.PartitionerByName(*partArg)
	if err != nil {
		log.Fatal(err)
	}
	opts := wcOpts{hint: *hint, pr: *pr, cps: *cps, workers: *workers, partitioner: part}

	// A copy of this binary forked by -transport=tcp joins the parent's
	// world via the environment; it reads the same files and exits quietly
	// (rank 0 holds the gathered result).
	if world, ok, err := mimir.TCPWorldFromEnv(); ok {
		if err != nil {
			log.Fatal(err)
		}
		lines, err := readLines(flag.Args())
		if err != nil {
			log.Fatal(err)
		}
		if _, err := runWC(world, lines, opts); err != nil {
			log.Fatal(err)
		}
		if err := world.Close(); err != nil {
			log.Fatal(err)
		}
		return
	}

	lines, err := readLines(flag.Args())
	if err != nil {
		log.Fatal(err)
	}

	var world *mimir.World
	var children *mimir.TCPChildren
	switch *transportArg {
	case "inproc":
		world = mimir.NewWorld(*ranks)
	case "tcp":
		if len(flag.Args()) == 0 {
			log.Fatal("-transport=tcp requires file arguments (forked workers cannot re-read stdin)")
		}
		world, children, err = mimir.SpawnTCPWorldOpts(*ranks, mimir.TCPOptions{Compress: *compress})
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -transport %q (want inproc or tcp)", *transportArg)
	}

	start := time.Now()
	counts, err := runWC(world, lines, opts)
	if err != nil {
		log.Fatal(err)
	}
	world.Close()
	if children != nil {
		if err := children.Wait(); err != nil {
			log.Fatalf("worker failed: %v", err)
		}
	}

	type wc struct {
		w string
		n uint64
	}
	list := make([]wc, 0, len(counts))
	var total uint64
	for w, n := range counts {
		list = append(list, wc{w, n})
		total += n
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].n != list[j].n {
			return list[i].n > list[j].n
		}
		return list[i].w < list[j].w
	})
	fmt.Printf("%d words, %d unique\n", total, len(list))
	for i, e := range list {
		if i == *top {
			break
		}
		fmt.Printf("%8d  %s\n", e.n, e.w)
	}
	if *transportArg == "tcp" {
		fmt.Fprintf(os.Stderr, "[%d ranks over tcp in %v]\n", *ranks, time.Since(start).Round(time.Millisecond))
	}
}

// runWC counts words across all ranks of world and gathers the totals at
// rank 0. The returned map is non-nil only on the process hosting rank 0.
func runWC(world *mimir.World, lines [][]byte, opts wcOpts) (map[string]uint64, error) {
	arena := mimir.NewArena(0)
	combine := func(_ []byte, existing, incoming []byte) ([]byte, error) {
		return mimir.Uint64Bytes(mimir.BytesUint64(existing) + mimir.BytesUint64(incoming)), nil
	}
	counts := map[string]uint64{}
	gotRankZero := false
	err := world.Run(func(c *mimir.Comm) error {
		cfg := mimir.Config{Arena: arena, Workers: opts.workers, Partitioner: opts.partitioner}
		if opts.hint {
			cfg.Hint = mimir.Hint{Key: mimir.StrZ(), Val: mimir.Fixed(8)}
		}
		if opts.pr {
			cfg.PartialReduce = combine
		}
		if opts.cps {
			cfg.Combiner = combine
		}
		var mine []mimir.Record
		for i := c.Rank(); i < len(lines); i += c.Size() {
			mine = append(mine, mimir.Record{Val: lines[i]})
		}
		mapFn := func(rec mimir.Record, emit mimir.Emitter) error {
			for _, w := range strings.Fields(string(rec.Val)) {
				w = strings.Trim(strings.ToLower(w), ".,;:!?\"'()[]{}")
				if w == "" || strings.ContainsRune(w, 0) {
					continue
				}
				if err := emit.Emit([]byte(w), mimir.Uint64Bytes(1)); err != nil {
					return err
				}
			}
			return nil
		}
		reduceFn := func(key []byte, vals *mimir.ValueIter, emit mimir.Emitter) error {
			var sum uint64
			for v, ok := vals.Next(); ok; v, ok = vals.Next() {
				sum += mimir.BytesUint64(v)
			}
			return emit.Emit(key, mimir.Uint64Bytes(sum))
		}
		out, err := mimir.NewJob(c, cfg).Run(mimir.SliceInput(mine), mapFn, reduceFn)
		if err != nil {
			return err
		}
		defer out.Free()
		// Serialize this rank's totals (ranks hold disjoint hash-partitioned
		// key sets) and gather them at rank 0, so the merge works whether
		// the other ranks share this process or not. Words cannot contain
		// whitespace, so "word count" lines are unambiguous.
		var sb strings.Builder
		err = out.Scan(func(k, v []byte) error {
			fmt.Fprintf(&sb, "%s %d\n", k, mimir.BytesUint64(v))
			return nil
		})
		if err != nil {
			return err
		}
		gathered, err := c.Gatherv([]byte(sb.String()), 0)
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			return nil
		}
		gotRankZero = true
		for _, buf := range gathered {
			sc := bufio.NewScanner(strings.NewReader(string(buf)))
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			for sc.Scan() {
				var w string
				var n uint64
				if _, err := fmt.Sscanf(sc.Text(), "%s %d", &w, &n); err == nil {
					counts[w] += n
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if !gotRankZero {
		return nil, nil
	}
	return counts, nil
}

func readLines(files []string) ([][]byte, error) {
	var lines [][]byte
	read := func(r io.Reader) error {
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			lines = append(lines, append([]byte(nil), sc.Bytes()...))
		}
		return sc.Err()
	}
	if len(files) == 0 {
		if err := read(os.Stdin); err != nil {
			return nil, err
		}
		return lines, nil
	}
	for _, name := range files {
		f, err := os.Open(name)
		if err != nil {
			return nil, err
		}
		err = read(f)
		f.Close()
		if err != nil {
			return nil, err
		}
	}
	return lines, nil
}
