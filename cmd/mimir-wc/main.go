// Command mimir-wc counts words in real files with the Mimir engine,
// spreading the work over in-process ranks.
//
//	mimir-wc [-ranks 8] [-top 20] [-hint] [-pr] [-cps] file...
//
// With no files it reads standard input.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"
	"sync"

	"mimir"
)

func main() {
	ranks := flag.Int("ranks", 8, "number of in-process ranks")
	top := flag.Int("top", 20, "how many of the most frequent words to print")
	hint := flag.Bool("hint", true, "use the KV-hint (strz keys, fixed 8-byte counts)")
	pr := flag.Bool("pr", true, "use partial reduction instead of convert+reduce")
	cps := flag.Bool("cps", false, "use KV compression before the shuffle")
	flag.Parse()

	lines, err := readLines(flag.Args())
	if err != nil {
		log.Fatal(err)
	}

	world := mimir.NewWorld(*ranks)
	arena := mimir.NewArena(0)

	combine := func(_ []byte, existing, incoming []byte) ([]byte, error) {
		return mimir.Uint64Bytes(mimir.BytesUint64(existing) + mimir.BytesUint64(incoming)), nil
	}

	var mu sync.Mutex
	counts := map[string]uint64{}
	err = world.Run(func(c *mimir.Comm) error {
		cfg := mimir.Config{Arena: arena}
		if *hint {
			cfg.Hint = mimir.Hint{Key: mimir.StrZ(), Val: mimir.Fixed(8)}
		}
		if *pr {
			cfg.PartialReduce = combine
		}
		if *cps {
			cfg.Combiner = combine
		}
		var mine []mimir.Record
		for i := c.Rank(); i < len(lines); i += c.Size() {
			mine = append(mine, mimir.Record{Val: lines[i]})
		}
		mapFn := func(rec mimir.Record, emit mimir.Emitter) error {
			for _, w := range strings.Fields(string(rec.Val)) {
				w = strings.Trim(strings.ToLower(w), ".,;:!?\"'()[]{}")
				if w == "" || strings.ContainsRune(w, 0) {
					continue
				}
				if err := emit.Emit([]byte(w), mimir.Uint64Bytes(1)); err != nil {
					return err
				}
			}
			return nil
		}
		reduceFn := func(key []byte, vals *mimir.ValueIter, emit mimir.Emitter) error {
			var sum uint64
			for v, ok := vals.Next(); ok; v, ok = vals.Next() {
				sum += mimir.BytesUint64(v)
			}
			return emit.Emit(key, mimir.Uint64Bytes(sum))
		}
		out, err := mimir.NewJob(c, cfg).Run(mimir.SliceInput(mine), mapFn, reduceFn)
		if err != nil {
			return err
		}
		defer out.Free()
		mu.Lock()
		defer mu.Unlock()
		return out.Scan(func(k, v []byte) error {
			counts[string(k)] += mimir.BytesUint64(v)
			return nil
		})
	})
	if err != nil {
		log.Fatal(err)
	}

	type wc struct {
		w string
		n uint64
	}
	list := make([]wc, 0, len(counts))
	var total uint64
	for w, n := range counts {
		list = append(list, wc{w, n})
		total += n
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].n != list[j].n {
			return list[i].n > list[j].n
		}
		return list[i].w < list[j].w
	})
	fmt.Printf("%d words, %d unique\n", total, len(list))
	for i, e := range list {
		if i == *top {
			break
		}
		fmt.Printf("%8d  %s\n", e.n, e.w)
	}
}

func readLines(files []string) ([][]byte, error) {
	var lines [][]byte
	read := func(r io.Reader) error {
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			lines = append(lines, append([]byte(nil), sc.Bytes()...))
		}
		return sc.Err()
	}
	if len(files) == 0 {
		if err := read(os.Stdin); err != nil {
			return nil, err
		}
		return lines, nil
	}
	for _, name := range files {
		f, err := os.Open(name)
		if err != nil {
			return nil, err
		}
		err = read(f)
		f.Close()
		if err != nil {
			return nil, err
		}
	}
	return lines, nil
}
