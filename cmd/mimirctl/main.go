// Command mimirctl is the thin client for a running mimird daemon
// (mimir-worker -daemon): it submits jobs to the standing rank mesh, streams
// their lifecycle, and fetches daemon status.
//
//	mimirctl -addr 127.0.0.1:7077 submit -bytes 1048576 -dist uniform -seed 42
//	mimirctl -addr 127.0.0.1:7077 submit -job pagerank -scale 10 -seed 7
//	mimirctl -addr 127.0.0.1:7077 submit -job terasort -rows 100000
//	mimirctl -addr 127.0.0.1:7077 status
//	mimirctl -addr 127.0.0.1:7077 shutdown
//
// Elastic membership verbs drive the daemon's resize path — the mesh grows
// or shrinks at the next epoch barrier, without a restart and without
// touching queued jobs:
//
//	mimirctl grow 6          # resize the standing mesh up to 6 ranks
//	mimirctl shrink 3        # resize it down to 3 ranks
//	mimirctl members         # committed view + full membership history
//	mimirctl join-token      # mint the token an external worker joins with
//	mimirctl leave 5         # retire member id 5 at the next barrier
//
// submit blocks until the job settles: lifecycle events (queued, running) go
// to stderr, the counted output goes to stdout (or -o FILE), and -metrics
// FILE saves the job's merged per-rank distribution JSON. The exit status is
// non-zero when the job fails — including when a worker rank dies mid-job —
// while the daemon itself stays up for the next submission.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"mimir/internal/jobsvc"
	"mimir/internal/membership"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mimirctl: ")
	addr := flag.String("addr", "127.0.0.1:7077", "mimird admin address")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mimirctl [-addr HOST:PORT] submit|status|grow|shrink|members|join-token|leave|shutdown [flags]")
		flag.PrintDefaults()
	}
	flag.Parse()
	cl := jobsvc.Dial(*addr)
	switch flag.Arg(0) {
	case "submit":
		submit(cl, flag.Args()[1:])
	case "status":
		status(cl)
	case "grow":
		resize(cl, flag.Arg(1), +1)
	case "shrink":
		resize(cl, flag.Arg(1), -1)
	case "members":
		members(cl)
	case "join-token":
		token, err := cl.JoinToken()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(token)
	case "leave":
		leave(cl, flag.Arg(1))
	case "shutdown":
		if err := cl.Shutdown(); err != nil {
			log.Fatal(err)
		}
		log.Print("daemon drained and shut down")
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// resize drives grow/shrink: both are the same admin op; dir only sanity-
// checks the direction against the daemon's current size so "grow 3" on a
// 6-rank mesh fails loudly instead of silently shrinking.
func resize(cl *jobsvc.Client, arg string, dir int) {
	target, err := strconv.Atoi(arg)
	if err != nil || target < 1 {
		log.Fatalf("grow/shrink need a target rank count, got %q", arg)
	}
	if st, err := cl.Status(); err == nil {
		if dir > 0 && target < st.Size {
			log.Fatalf("grow %d would shrink the %d-rank mesh; use shrink", target, st.Size)
		}
		if dir < 0 && target > st.Size {
			log.Fatalf("shrink %d would grow the %d-rank mesh; use grow", target, st.Size)
		}
	}
	view, err := cl.Resize(target)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("epoch %d committed: mesh is %d ranks", view.Epoch, view.Size())
	printView(view)
}

func members(cl *jobsvc.Client) {
	view, history, err := cl.Members()
	if err != nil {
		log.Fatal(err)
	}
	printView(view)
	for _, ev := range history {
		line := fmt.Sprintf("%4d  epoch %-3d %-14s", ev.Seq, ev.Epoch, ev.Kind)
		if ev.Member != 0 {
			line += fmt.Sprintf(" member %d", ev.Member)
		}
		if ev.Size != 0 {
			line += fmt.Sprintf(" size %d", ev.Size)
		}
		if ev.Detail != "" {
			line += "  " + ev.Detail
		}
		fmt.Println(line)
	}
}

func leave(cl *jobsvc.Client, arg string) {
	id, err := strconv.ParseUint(arg, 10, 64)
	if err != nil || id == 0 {
		log.Fatalf("leave needs a member id, got %q", arg)
	}
	view, err := cl.Leave(membership.MemberID(id))
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("member %d retired; epoch %d committed: mesh is %d ranks", id, view.Epoch, view.Size())
	printView(view)
}

func printView(view *membership.View) {
	for _, mb := range view.Members {
		kind := mb.Kind
		if kind == "" {
			kind = "?"
		}
		fmt.Printf("rank %-3d member %-4d %s\n", mb.Rank, mb.ID, kind)
	}
}

func submit(cl *jobsvc.Client, args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var spec jobsvc.Spec
	fs.StringVar(&spec.Job, "job", "", "job kind: wordcount (default), terasort, pagerank, kmeans, or bfs")
	fs.Int64Var(&spec.Bytes, "bytes", 1<<20, "total corpus bytes across all ranks (wordcount)")
	fs.StringVar(&spec.Dist, "dist", "uniform", "corpus distribution: uniform or wikipedia")
	fs.Uint64Var(&spec.Seed, "seed", 42, "corpus seed")
	fs.BoolVar(&spec.Hint, "hint", true, "use the KV-hint")
	fs.BoolVar(&spec.PR, "pr", true, "use partial reduction")
	fs.BoolVar(&spec.CPS, "cps", false, "use KV compression")
	fs.IntVar(&spec.Workers, "workers", 0, "per-rank worker pool size (0 = all cores)")
	fs.Int64Var(&spec.MemBytes, "mem", 0, "job memory floor in bytes: admitted only once the daemon can reserve this much (0 = no reservation)")
	fs.IntVar(&spec.Crash, "crash", 0, "fault-injection: this worker rank dies when the job starts (tests only)")
	fs.IntVar(&spec.CrashRound, "crash-round", 0, "fault-injection: with -crash, the rank dies at the top of this round of an iterative job instead of at job start")
	fs.Int64Var(&spec.Rows, "rows", 0, "terasort: total rows across all ranks (0 = default)")
	fs.IntVar(&spec.Scale, "scale", 0, "pagerank/bfs: log2 of the vertex count (0 = default)")
	fs.IntVar(&spec.EdgeFactor, "edgefactor", 0, "pagerank/bfs: edges per vertex (0 = default)")
	fs.Int64Var(&spec.Points, "points", 0, "kmeans: total points across all ranks (0 = default)")
	fs.IntVar(&spec.K, "k", 0, "kmeans: cluster count (0 = default)")
	fs.IntVar(&spec.Dims, "dims", 0, "kmeans: point dimensionality (0 = default)")
	fs.IntVar(&spec.Rounds, "rounds", 0, "iterative jobs: max rounds (0 = workload default)")
	opath := fs.String("o", "", "write the counted output to this file instead of stdout")
	mpath := fs.String("metrics", "", "write the job's merged per-rank metrics JSON to this file (- = stdout)")
	fs.Parse(args)

	res, err := cl.Submit(spec, func(ev jobsvc.Event) {
		if ev.Event == jobsvc.EvQueued || ev.Event == jobsvc.EvRunning {
			log.Printf("job %d %s", ev.Job, ev.Event)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("job %d done (%d output bytes)", res.Job, len(res.Output))
	if *opath != "" {
		if err := os.WriteFile(*opath, res.Output, 0o644); err != nil {
			log.Fatal(err)
		}
	} else {
		os.Stdout.Write(res.Output)
	}
	if *mpath != "" && len(res.Metrics) > 0 {
		if *mpath == "-" {
			os.Stdout.Write(append([]byte(nil), res.Metrics...))
			fmt.Println()
		} else if err := os.WriteFile(*mpath, res.Metrics, 0o644); err != nil {
			log.Fatal(err)
		}
	}
}

func status(cl *jobsvc.Client) {
	st, err := cl.Status()
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(st)
}
