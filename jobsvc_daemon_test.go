package mimir_test

// Multi-process acceptance test for the mimird job service: a standing
// 4-OS-process rank mesh (this test binary re-executed as the daemon's
// worker ranks) sustains 20 concurrent submissions from 4 clients over the
// real admin socket, every output byte-identical to a solo in-process run,
// with zero mesh respawns — then a scripted worker crash fails only its own
// job, the daemon rebuilds the mesh exactly once, and the next job runs
// clean on the new incarnation.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"mimir/internal/driver"
	"mimir/internal/jobsvc"
	"mimir/internal/mpi"
	"mimir/internal/simtime"
	"mimir/internal/transport"
	"mimir/internal/workloads"
)

const daemonRanks = 4

// runJobsvcWorker is the re-exec entry point for MIMIR_TEST_MODE=
// jobsvc-worker: join the daemon's mesh as the rank named by the
// environment and serve jobs — following the service across epochs via
// remesh directives and admin rejoins — until retired or shut down.
func runJobsvcWorker() {
	cfg, ok, err := transport.FromEnv()
	if !ok || err != nil {
		fmt.Fprintln(os.Stderr, "jobsvc worker bootstrap:", err)
		os.Exit(1)
	}
	if err := jobsvc.RunWorkerLoop(cfg, jobsvc.WorkerOptions{Exit: os.Exit}); err != nil {
		fmt.Fprintln(os.Stderr, "jobsvc worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// daemonSpec is the job every daemon-test submission runs, varied by seed.
func daemonSpec(seed uint64) jobsvc.Spec {
	return jobsvc.Spec{Bytes: 1 << 16, Dist: "uniform", Seed: seed, Hint: true, PR: true}
}

// daemonReference computes the solo ground truth for daemonSpec(seed) on a
// fresh in-process world of the daemon's size.
func daemonReference(t *testing.T, seed uint64) []byte {
	t.Helper()
	world := mpi.NewWorld(mpi.Config{
		Size: daemonRanks,
		Net:  simtime.NetworkModel{Alpha: 1e-7, Beta: 1e9},
	})
	out, err := driver.WordCount(world, driver.WordCountConfig{
		Dist:       workloads.Uniform,
		TotalBytes: 1 << 16,
		Seed:       seed,
		Hint:       true,
		PR:         true,
	}, nil)
	if err != nil {
		t.Fatalf("reference seed %d: %v", seed, err)
	}
	if len(out) == 0 {
		t.Fatalf("reference seed %d produced no output", seed)
	}
	return out
}

// TestDaemonMultiProcess is the acceptance test for mimird's service model
// over real OS processes.
func TestDaemonMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process daemon test skipped in -short mode")
	}
	t.Setenv(testModeEnv, "jobsvc-worker") // inherited by the spawned ranks

	// Admin listener first: spawned workers get its address as their rejoin
	// rendezvous, so it must exist before the mesh comes up.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	s, err := jobsvc.NewServer(jobsvc.Config{
		Mesh: jobsvc.SpawnMesh(daemonRanks, addr, transport.SpawnOptions{}),
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()

	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()

	// Phase 1: 20 submissions from 4 concurrent clients through the real
	// admin socket. Seeds repeat across clients on purpose — equal specs
	// must produce equal bytes no matter how the jobs interleave.
	const clients, jobsPerClient = 4, 5
	refs := make(map[uint64][]byte)
	for seed := uint64(0); seed < jobsPerClient; seed++ {
		refs[seed] = daemonReference(t, seed)
	}
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := jobsvc.Dial(addr)
			for i := 0; i < jobsPerClient; i++ {
				seed := uint64(i)
				res, err := cl.Submit(daemonSpec(seed), nil)
				if err != nil {
					errs[c] = fmt.Errorf("client %d job %d: %w", c, i, err)
					return
				}
				if !bytes.Equal(res.Output, refs[seed]) {
					errs[c] = fmt.Errorf("client %d job %d (id %d): output not byte-identical to solo reference (%d vs %d bytes)",
						c, i, res.Job, len(res.Output), len(refs[seed]))
					return
				}
				var doc struct {
					Series []struct {
						Name  string `json:"name"`
						Count int    `json:"count"`
					} `json:"series"`
				}
				if err := json.Unmarshal(res.Metrics, &doc); err != nil {
					errs[c] = fmt.Errorf("client %d job %d: bad metrics payload: %w", c, i, err)
					return
				}
				ranks := 0
				for _, se := range doc.Series {
					if se.Name == "rank-sec" {
						ranks = se.Count
					}
				}
				if ranks != daemonRanks {
					errs[c] = fmt.Errorf("client %d job %d: metrics cover %d ranks, want %d", c, i, ranks, daemonRanks)
					return
				}
			}
		}(c)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("daemon did not settle 20 concurrent submissions in time")
	}
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if n := s.Respawns(); n != 0 {
		t.Fatalf("healthy phase respawned the mesh %d times, want 0", n)
	}

	// Phase 2: kill worker rank 2 mid-job. The affected job fails with a
	// clean error, the daemon rebuilds the mesh exactly once, and the next
	// job is again byte-identical on the fresh incarnation.
	crash := daemonSpec(1)
	crash.Crash = 2
	if _, err := jobsvc.Dial(addr).Submit(crash, nil); err == nil {
		t.Fatal("crash job reported success; want a clean failure")
	} else {
		t.Logf("crash job failed as intended: %v", err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for s.Respawns() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("mesh not respawned after worker death (respawns = %d)", s.Respawns())
		}
		time.Sleep(20 * time.Millisecond)
	}
	res, err := jobsvc.Dial(addr).Submit(daemonSpec(3), nil)
	if err != nil {
		t.Fatalf("post-respawn job: %v", err)
	}
	if !bytes.Equal(res.Output, refs[3]) {
		t.Fatal("post-respawn job output not byte-identical to solo reference")
	}
	if n := s.Respawns(); n != 1 {
		t.Fatalf("respawns = %d after recovery, want exactly 1", n)
	}

	// Drain: a client-visible shutdown closes the admin loop cleanly.
	if err := jobsvc.Dial(addr).Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v after shutdown, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Serve did not return after shutdown")
	}
}

// TestDaemonMidIterationFault kills a worker OS process between PageRank
// rounds — after two rounds of rank exchanges have been shuffled and reduced
// on the standing mesh, not at job start. The crashed job fails with a clean
// error, the daemon rebuilds the process mesh exactly once, and resubmitting
// the same spec on the fresh incarnation reproduces the solo in-process run
// byte for byte: nothing the dead iteration half-did leaks into the answer.
func TestDaemonMidIterationFault(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process daemon test skipped in -short mode")
	}
	t.Setenv(testModeEnv, "jobsvc-worker")

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	s, err := jobsvc.NewServer(jobsvc.Config{
		Mesh: jobsvc.SpawnMesh(daemonRanks, addr, transport.SpawnOptions{}),
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()

	// The solo ground truth, and a clean daemon run to anchor it before any
	// fault: PageRank at scale 8 iterates to convergence (well past round 3).
	spec := jobsvc.Spec{Job: driver.JobPageRank, Scale: 8, Seed: 17, Hint: true, PR: true}
	world := mpi.NewWorld(mpi.Config{
		Size: daemonRanks,
		Net:  simtime.NetworkModel{Alpha: 1e-7, Beta: 1e9},
	})
	want, err := driver.RunJob(world, driver.JobConfig{
		Kind: driver.JobPageRank, Scale: 8, Seed: 17, Hint: true, PR: true,
	}, nil)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	res, err := jobsvc.Dial(addr).Submit(spec, nil)
	if err != nil {
		t.Fatalf("clean pagerank job: %v", err)
	}
	if !bytes.Equal(res.Output, want) {
		t.Fatalf("daemon pagerank output not byte-identical to solo reference (%d vs %d bytes)",
			len(res.Output), len(want))
	}

	// Kill worker rank 2 between rounds 2 and 3: the process exits at the
	// round barrier, mid-iteration, with earlier rounds' state live on the
	// mesh.
	crash := spec
	crash.Crash = 2
	crash.CrashRound = 3
	if _, err := jobsvc.Dial(addr).Submit(crash, nil); err == nil {
		t.Fatal("mid-iteration crash job reported success; want a clean failure")
	} else {
		t.Logf("mid-iteration crash failed as intended: %v", err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for s.Respawns() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("mesh not respawned after mid-iteration worker death (respawns = %d)", s.Respawns())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The fresh incarnation re-runs the same spec from scratch.
	res, err = jobsvc.Dial(addr).Submit(spec, nil)
	if err != nil {
		t.Fatalf("post-respawn pagerank job: %v", err)
	}
	if !bytes.Equal(res.Output, want) {
		t.Fatal("post-respawn pagerank output not byte-identical to solo reference")
	}
	if n := s.Respawns(); n != 1 {
		t.Fatalf("respawns = %d after recovery, want exactly 1", n)
	}

	if err := jobsvc.Dial(addr).Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v after shutdown, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Serve did not return after shutdown")
	}
}
