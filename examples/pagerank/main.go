// PageRank over the Graph500-style R-MAT graph: one map-only stage builds
// the adjacency partition (vertex state pinned to the hash partitioner so
// it never moves between rounds), then the shared multi-round driver runs
// one scatter stage per iteration — each vertex sends score/out-degree to
// its successors, a fixed-point integer update applies damping, and the
// global L1 residual (an allreduce vote) terminates the loop at
// convergence. Integer arithmetic makes the scores exactly reproducible
// whatever transport, worker count, or spill policy runs the job.
//
// Per-round checkpoints ("pr.r<N>") exercise the fault path the elastic
// service uses: a rerun restores mid-iteration instead of recomputing.
//
//	go run ./examples/pagerank
package main

import (
	"fmt"
	"log"

	"mimir"
	"mimir/internal/workloads"
)

func main() {
	plat := mimir.Comet()
	ranks := plat.CoresPerNode
	world := mimir.NewWorldOn(plat, ranks)
	arena := mimir.NewArena(plat.NodeMemory)
	ckFS := mimir.NewFS(mimir.FSConfig{Bandwidth: 1 << 30, Latency: 1e-4})

	cfg := mimir.PageRankConfig{
		Scale:      12, // 2^22 vertices at paper scale
		EdgeFactor: workloads.DefaultEdgeFactor,
		Seed:       7,
	}
	opts := workloads.StageOpts{
		Hint:          workloads.PageRankHint(),
		PartialReduce: workloads.Int64VecAdd,
	}
	mr := mimir.MultiRound{
		Checkpoint:      &mimir.Checkpoint{FS: ckFS, Name: "pr"},
		CheckpointEvery: 2,
	}

	results := make([]workloads.PageRankResult, ranks)
	err := world.Run(func(c *mimir.Comm) error {
		eng := workloads.NewMimirEngine(c, arena)
		eng.PageSize = plat.PageSize
		eng.CommBuf = plat.PageSize
		eng.Costs = plat.Costs()
		res, err := workloads.RunPageRank(eng, nil, cfg, opts, mr, nil)
		results[c.Rank()] = res
		return err
	})
	if err != nil {
		log.Fatal(err)
	}

	res := results[0]
	fmt.Printf("PageRank over an R-MAT graph: 2^%d vertices, %d edges\n",
		cfg.Scale, int64(cfg.EdgeFactor)<<uint(cfg.Scale))
	fmt.Printf("  converged=%v after %d rounds (L1 residual %d in fixed-point units of 1e-9)\n",
		res.Converged, res.Rounds, res.Residual)
	fmt.Printf("  checkpoint cadence 2: rounds 0,2,4,... persisted for mid-iteration restore\n")
	fmt.Printf("  simulated execution time: %.2f s\n", world.MaxTime())
	fmt.Printf("  peak memory per process: %.2f MB\n",
		float64(arena.Peak())/float64(ranks)/(1<<20))
}
