// Octree clustering (the paper's OC benchmark) end to end: the MapReduce
// algorithm of Estrada et al. classifies normally distributed 3D points by
// recursively refining octants that hold at least 1% of the points. One
// MapReduce stage runs per refinement level, using the full optimization
// ladder (KV-hint + partial reduction + KV compression).
//
//	go run ./examples/octree
package main

import (
	"fmt"
	"log"
	"os"

	"mimir"
	"mimir/internal/metrics"
	"mimir/internal/workloads"
)

func main() {
	plat := mimir.Comet()
	const nodes = 1
	ranks := plat.CoresPerNode
	world := mimir.NewWorldOn(plat, nodes*ranks)
	arena := mimir.NewArena(plat.NodeMemory)
	inputFS := plat.InputFSFor(nodes)

	cfg := workloads.OCConfig{
		TotalPoints: 1 << 18, // 2^28 in paper scale
		Seed:        7,
		Density:     0.01,
		MaxLevel:    8,
	}
	opts := workloads.StageOpts{
		Hint:          workloads.OCHint(),
		PartialReduce: workloads.WordCountCombine,
		Combiner:      workloads.WordCountCombine,
	}

	results := make([]workloads.OCResult, nodes*ranks)
	perRank := metrics.NewSummary()
	err := world.Run(func(c *mimir.Comm) error {
		eng := workloads.NewMimirEngine(c, arena)
		eng.PageSize = plat.PageSize
		eng.CommBuf = plat.PageSize
		eng.Costs = plat.Costs()
		res, err := workloads.RunOctree(eng, inputFS, cfg, opts)
		results[c.Rank()] = res
		if err == nil {
			perRank.Add("map (s)", res.Stats.MapTime)
			perRank.Add("aggregate (s)", res.Stats.AggrTime)
			perRank.Add("reduce (s)", res.Stats.ReduceTime)
			perRank.Add("shuffled (KB)", float64(res.Stats.ShuffledBytes)/1024)
			perRank.Add("overlap rounds", float64(res.Stats.OverlapRounds))
			perRank.Add("overlap saved (s)", res.Stats.OverlapSavedSec)
		}
		return err
	})
	if err != nil {
		log.Fatal(err)
	}

	res := results[0]
	fmt.Printf("octree clustering of %d points (paper scale: 2^28)\n", cfg.TotalPoints)
	fmt.Printf("  refined through level %d\n", res.Levels)
	fmt.Printf("  dense octants at deepest level: %d\n", res.DenseOctants)
	fmt.Printf("  dense octants across all levels: %d\n", res.TotalDense)
	fmt.Printf("  simulated execution time: %.2f s\n", world.MaxTime())
	fmt.Printf("  peak memory per process: %.2f GB (paper scale)\n",
		float64(arena.Peak())/float64(ranks)/(1<<20))
	fmt.Println("\nper-rank distribution (max/avg > 1 means load imbalance):")
	perRank.Render(os.Stdout)
}
