// Fault tolerance: checkpoint/restart in the style of FT-MRMPI (the
// authors' companion work the paper cites for MR-MPI's "inability to handle
// system faults"). The job checkpoints its post-shuffle state to the
// parallel file system; a fault injected during the reduce phase kills the
// first attempt, and the re-run resumes from the checkpoint — the input is
// never read and the map and aggregate phases never execute again.
//
//	go run ./examples/faulttolerance
package main

import (
	"errors"
	"fmt"
	"log"
	"strings"
	"sync"
	"sync/atomic"

	"mimir"
	"mimir/internal/pfs"
)

var corpus = []string{
	"checkpointing the aggregated state makes the expensive part durable",
	"a fault in the reduce phase no longer wastes the whole shuffle",
	"the restarted job resumes from the parallel file system",
}

var errInjected = errors.New("injected node fault during reduce")

func main() {
	const ranks = 4
	fs := pfs.New(pfs.Config{Bandwidth: 1e8, Latency: 1e-5})
	ckpt := &mimir.Checkpoint{FS: fs, Name: "wordcount-demo"}

	fmt.Println("attempt 1: fault injected in the reduce phase")
	_, err := attempt(fs, ckpt, ranks, true)
	if err == nil {
		log.Fatal("expected the injected fault to fail the job")
	}
	fmt.Printf("  job failed as expected: %v\n", err)
	fmt.Printf("  checkpoint present for all ranks: %v\n\n", ckpt.Exists(ranks))

	fmt.Println("attempt 2: restart with the same checkpoint name")
	counts, err := attempt(fs, ckpt, ranks, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  recovered %d unique words; 'the' appears %d times\n",
		len(counts), counts["the"])
}

func attempt(fs *pfs.FS, ckpt *mimir.Checkpoint, ranks int, inject bool) (map[string]uint64, error) {
	world := mimir.NewWorld(ranks)
	arena := mimir.NewArena(0)
	var mu sync.Mutex
	counts := map[string]uint64{}
	var mapCalls, restores int64

	err := world.Run(func(c *mimir.Comm) error {
		var mine []mimir.Record
		for i, line := range corpus {
			if i%ranks == c.Rank() {
				mine = append(mine, mimir.Record{Val: []byte(line)})
			}
		}
		job := mimir.NewJob(c, mimir.Config{Arena: arena, Checkpoint: ckpt})
		mapFn := func(rec mimir.Record, emit mimir.Emitter) error {
			atomic.AddInt64(&mapCalls, 1)
			for _, w := range strings.Fields(string(rec.Val)) {
				if err := emit.Emit([]byte(w), mimir.Uint64Bytes(1)); err != nil {
					return err
				}
			}
			return nil
		}
		reduceFn := func(key []byte, vals *mimir.ValueIter, emit mimir.Emitter) error {
			if inject {
				return errInjected
			}
			var sum uint64
			for v, ok := vals.Next(); ok; v, ok = vals.Next() {
				sum += mimir.BytesUint64(v)
			}
			return emit.Emit(key, mimir.Uint64Bytes(sum))
		}
		out, err := job.Run(mimir.SliceInput(mine), mapFn, reduceFn)
		if err != nil {
			return err
		}
		defer out.Free()
		if out.Stats.RestoredFromCheckpoint {
			atomic.AddInt64(&restores, 1)
		}
		mu.Lock()
		defer mu.Unlock()
		return out.Scan(func(k, v []byte) error {
			counts[string(k)] += mimir.BytesUint64(v)
			return nil
		})
	})
	fmt.Printf("  map callback invocations: %d, ranks restored from checkpoint: %d\n",
		atomic.LoadInt64(&mapCalls), atomic.LoadInt64(&restores))
	return counts, err
}
