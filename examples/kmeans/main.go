// k-means over a seeded synthetic point cloud: each round assigns every
// point to its nearest centroid (a map over the regenerated input — points
// are never materialized), reduces exact integer coordinate sums per
// cluster through the engine's commutative partial reduce (so hot-key
// split/re-merge is exercised: K keys carry all the data), and rebuilds the
// global centroid table on every rank with an allgather collective. The
// total centroid movement is the convergence vote. Integer grid coordinates
// make every run byte-identical however the sums were reassociated.
//
//	go run ./examples/kmeans
package main

import (
	"fmt"
	"log"

	"mimir"
	"mimir/internal/workloads"
)

func main() {
	plat := mimir.Comet()
	ranks := plat.CoresPerNode
	world := mimir.NewWorldOn(plat, ranks)
	arena := mimir.NewArena(plat.NodeMemory)

	cfg := mimir.KMeansConfig{
		Points: 1 << 16,
		K:      12,
		Dims:   3,
		Seed:   11,
	}
	opts := workloads.StageOpts{
		Hint:          workloads.KMeansHint(cfg),
		PartialReduce: workloads.Int64VecAdd,
	}

	results := make([]workloads.KMeansResult, ranks)
	err := world.Run(func(c *mimir.Comm) error {
		eng := workloads.NewMimirEngine(c, arena)
		eng.PageSize = plat.PageSize
		eng.CommBuf = plat.PageSize
		eng.Costs = plat.Costs()
		res, err := workloads.RunKMeans(eng, nil, cfg, opts, mimir.MultiRound{})
		results[c.Rank()] = res
		return err
	})
	if err != nil {
		log.Fatal(err)
	}

	res := results[0]
	fmt.Printf("k-means: %d points, k=%d, %d dims across %d ranks\n",
		cfg.Points, cfg.K, cfg.Dims, ranks)
	fmt.Printf("  converged=%v after %d rounds (final movement %d grid units)\n",
		res.Converged, res.Rounds, res.Movement)
	var n int64
	for ci, cent := range res.Centroids {
		n += res.Counts[ci]
		if ci < 3 {
			fmt.Printf("  centroid %2d: %v (n=%d)\n", ci, cent, res.Counts[ci])
		}
	}
	fmt.Printf("  ... %d clusters hold all %d points\n", cfg.K, n)
	fmt.Printf("  simulated execution time: %.2f s\n", world.MaxTime())
	fmt.Printf("  peak memory per process: %.2f MB\n",
		float64(arena.Peak())/float64(ranks)/(1<<20))
}
