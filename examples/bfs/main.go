// Breadth-first search on a Graph500-style R-MAT graph (the paper's BFS
// benchmark): one map-only MapReduce stage partitions the edge list, then
// the shared multi-round driver (workloads.RunRounds) runs one map-only
// stage per BFS level — the frontier size is the round's convergence vote —
// with KV-hints (fixed 8-byte vertices) and KV compression
// (candidate-parent deduplication).
//
//	go run ./examples/bfs
package main

import (
	"fmt"
	"log"

	"mimir"
	"mimir/internal/workloads"
)

func main() {
	plat := mimir.Mira()
	ranks := plat.CoresPerNode
	world := mimir.NewWorldOn(plat, ranks)
	arena := mimir.NewArena(plat.NodeMemory)
	inputFS := plat.InputFSFor(1)

	cfg := workloads.BFSConfig{
		Scale:      11, // 2^21 vertices in paper scale
		EdgeFactor: workloads.DefaultEdgeFactor,
		Seed:       5,
		Root:       1,
	}
	opts := workloads.StageOpts{
		Hint:     workloads.BFSHint(),
		Combiner: workloads.BFSCombine,
	}

	results := make([]workloads.BFSResult, ranks)
	err := world.Run(func(c *mimir.Comm) error {
		eng := workloads.NewMimirEngine(c, arena)
		eng.PageSize = plat.PageSize
		eng.CommBuf = plat.PageSize
		eng.Costs = plat.Costs()
		res, err := workloads.RunBFS(eng, inputFS, cfg, opts, workloads.MultiRound{})
		results[c.Rank()] = res
		return err
	})
	if err != nil {
		log.Fatal(err)
	}

	res := results[0]
	nVerts := int64(1) << uint(cfg.Scale)
	nEdges := int64(cfg.EdgeFactor) << uint(cfg.Scale)
	fmt.Printf("BFS over an R-MAT graph: 2^%d vertices, %d edges (paper scale: 2^%d vertices)\n",
		cfg.Scale, nEdges, cfg.Scale+10)
	fmt.Printf("  visited %d of %d vertices in %d levels from root %d\n",
		res.Visited, nVerts, res.Depth, cfg.Root)
	fmt.Printf("  traversed-edge rate: %.0f TEPS (simulated)\n",
		float64(nEdges)*2/world.MaxTime())
	fmt.Printf("  simulated execution time: %.2f s\n", world.MaxTime())
	fmt.Printf("  peak memory per process: %.2f GB (paper scale)\n",
		float64(arena.Peak())/float64(ranks)/(1<<20))
}
