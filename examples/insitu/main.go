// In-situ analytics: the paper's third input source — "sources other than
// MapReduce jobs (e.g., in situ analytics workflows)". A toy particle
// simulation runs on every rank; at each timestep its live state is fed
// straight into a Mimir job (no file system round trip) that histograms
// particle speeds, using partial reduction so the full KMV set never
// materializes.
//
//	go run ./examples/insitu
package main

import (
	"fmt"
	"log"
	"math"
	"sync"

	"mimir"
)

// sim is a minimal velocity-Verlet particle simulation fragment: particles
// in a box with a soft attractive center.
type sim struct {
	pos, vel [][3]float64
}

func newSim(n int, seed uint64) *sim {
	s := &sim{pos: make([][3]float64, n), vel: make([][3]float64, n)}
	state := seed
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	for i := range s.pos {
		s.pos[i] = [3]float64{next(), next(), next()}
		s.vel[i] = [3]float64{next() - 0.5, next() - 0.5, next() - 0.5}
	}
	return s
}

func (s *sim) step(dt float64) {
	for i := range s.pos {
		for d := 0; d < 3; d++ {
			// Pull toward the box center.
			s.vel[i][d] += dt * (0.5 - s.pos[i][d])
			s.pos[i][d] += dt * s.vel[i][d]
		}
	}
}

func (s *sim) speed(i int) float64 {
	v := s.vel[i]
	return math.Sqrt(v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
}

func main() {
	const (
		ranks     = 8
		particles = 20000 // per rank
		steps     = 5
		buckets   = 12
	)
	world := mimir.NewWorld(ranks)
	arena := mimir.NewArena(0)

	sumCounts := func(_ []byte, existing, incoming []byte) ([]byte, error) {
		return mimir.Uint64Bytes(mimir.BytesUint64(existing) + mimir.BytesUint64(incoming)), nil
	}

	var mu sync.Mutex
	histPerStep := make([][buckets]uint64, steps)

	err := world.Run(func(c *mimir.Comm) error {
		s := newSim(particles, uint64(c.Rank())+1)
		for t := 0; t < steps; t++ {
			s.step(0.1)

			// The in-situ input source: records come from the simulation's
			// live state, not from storage.
			input := func(emit func(mimir.Record) error) error {
				var rec [8]byte
				for i := 0; i < particles; i++ {
					b := int(s.speed(i) * 8)
					if b >= buckets {
						b = buckets - 1
					}
					rec[0] = byte(b)
					if err := emit(mimir.Record{Val: rec[:1]}); err != nil {
						return err
					}
				}
				return nil
			}
			job := mimir.NewJob(c, mimir.Config{
				Arena: arena,
				Hint:  mimir.Hint{Key: mimir.Fixed(1), Val: mimir.Fixed(8)},
				// Histogramming is partial-reduce invariant.
				PartialReduce: sumCounts,
				// And compresses perfectly: one KV per bucket per rank.
				Combiner: sumCounts,
			})
			mapFn := func(rec mimir.Record, emit mimir.Emitter) error {
				return emit.Emit(rec.Val, mimir.Uint64Bytes(1))
			}
			out, err := job.Run(input, mapFn, nil)
			if err != nil {
				return err
			}
			err = out.Scan(func(k, v []byte) error {
				mu.Lock()
				histPerStep[t][k[0]] += mimir.BytesUint64(v)
				mu.Unlock()
				return nil
			})
			out.Free()
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("in-situ speed histograms (%d particles x %d ranks per step)\n", particles, ranks)
	for t, hist := range histPerStep {
		var total, max uint64
		for _, n := range hist {
			total += n
			if n > max {
				max = n
			}
		}
		fmt.Printf("step %d: ", t+1)
		for _, n := range hist {
			bar := int(n * 8 / (max + 1))
			fmt.Print([]string{"·", "▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"}[bar])
		}
		fmt.Printf("  (%d samples)\n", total)
	}
}
