// Quickstart: WordCount on the Mimir public API.
//
// Four ranks (goroutines standing in for MPI processes) split a small
// corpus, map it to (word, 1) pairs that are shuffled with interleaved
// Alltoallv rounds, and reduce the counts per unique word.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"

	"mimir"
)

var corpus = []string{
	"in the beginning mimir inherited the core principles of mr mpi",
	"the execution model interleaves the map and aggregate phases",
	"kv containers grow page by page and shrink as data is consumed",
	"the reduce phase follows a two pass convert from kv to kmv",
}

func main() {
	const ranks = 4
	world := mimir.NewWorld(ranks)
	arena := mimir.NewArena(0) // one node, unlimited memory

	var mu sync.Mutex
	counts := map[string]uint64{}

	err := world.Run(func(c *mimir.Comm) error {
		// Each rank reads its stripe of the corpus.
		var mine []mimir.Record
		for i, line := range corpus {
			if i%ranks == c.Rank() {
				mine = append(mine, mimir.Record{Val: []byte(line)})
			}
		}

		job := mimir.NewJob(c, mimir.Config{
			Arena: arena,
			// WordCount's KV-hint: keys are words (NUL-free strings),
			// values are fixed 8-byte counts.
			Hint: mimir.Hint{Key: mimir.StrZ(), Val: mimir.Fixed(8)},
		})

		mapFn := func(rec mimir.Record, emit mimir.Emitter) error {
			for _, w := range strings.Fields(string(rec.Val)) {
				if err := emit.Emit([]byte(w), mimir.Uint64Bytes(1)); err != nil {
					return err
				}
			}
			return nil
		}
		reduceFn := func(key []byte, vals *mimir.ValueIter, emit mimir.Emitter) error {
			var sum uint64
			for v, ok := vals.Next(); ok; v, ok = vals.Next() {
				sum += mimir.BytesUint64(v)
			}
			return emit.Emit(key, mimir.Uint64Bytes(sum))
		}

		out, err := job.Run(mimir.SliceInput(mine), mapFn, reduceFn)
		if err != nil {
			return err
		}
		defer out.Free()

		mu.Lock()
		defer mu.Unlock()
		return out.Scan(func(k, v []byte) error {
			counts[string(k)] += mimir.BytesUint64(v)
			return nil
		})
	})
	if err != nil {
		log.Fatal(err)
	}

	type wc struct {
		w string
		n uint64
	}
	var list []wc
	for w, n := range counts {
		list = append(list, wc{w, n})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].n != list[j].n {
			return list[i].n > list[j].n
		}
		return list[i].w < list[j].w
	})
	fmt.Printf("%d unique words; top 10:\n", len(list))
	for i, e := range list {
		if i == 10 {
			break
		}
		fmt.Printf("  %-12s %d\n", e.w, e.n)
	}
}
