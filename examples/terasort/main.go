// TeraSort-style distributed sample sort (the paper's multi-round-capable
// engine running the classic one-round MRC sort): every rank samples its
// share of the deterministic row corpus, the sampling partitioner turns the
// gathered sample into weighted key ranges so rank order equals key order,
// one map-only exchange routes each row to its range owner, and a local
// sort finishes the job. Concatenating the per-rank outputs in rank order
// yields the globally sorted sequence — checked here by the linear-time
// oracle mimir.VerifyTeraSort (order, boundary, and multiset equality).
//
//	go run ./examples/terasort
package main

import (
	"fmt"
	"log"

	"mimir"
	"mimir/internal/workloads"
)

func main() {
	plat := mimir.Comet()
	ranks := plat.CoresPerNode
	world := mimir.NewWorldOn(plat, ranks)
	arena := mimir.NewArena(plat.NodeMemory)

	cfg := mimir.TeraSortConfig{
		Rows: 1 << 16, // paper runs sort at TB scale; simulated here
		Seed: 42,
	}
	opts := workloads.StageOpts{Hint: workloads.TeraSortHint(cfg)}

	// One output block per rank, in rank order: block boundaries are the
	// splitter boundaries the sample partitioner chose.
	blocks := make([][]byte, ranks)
	results := make([]workloads.TeraSortResult, ranks)
	err := world.Run(func(c *mimir.Comm) error {
		eng := workloads.NewMimirEngine(c, arena)
		eng.PageSize = plat.PageSize
		eng.CommBuf = plat.PageSize
		eng.Costs = plat.Costs()
		rank := c.Rank()
		res, err := workloads.RunTeraSort(eng, nil, cfg, opts, func(k, v []byte) error {
			blocks[rank] = append(blocks[rank], k...)
			blocks[rank] = append(blocks[rank], v...)
			return nil
		})
		results[rank] = res
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := mimir.VerifyTeraSort(cfg, blocks); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("TeraSort: %d rows of %d+%d bytes sorted across %d ranks\n",
		cfg.Rows, workloads.DefaultTeraKeyBytes, workloads.DefaultTeraValBytes, ranks)
	min, max := results[0].Rows, results[0].Rows
	for _, r := range results[1:] {
		if r.Rows < min {
			min = r.Rows
		}
		if r.Rows > max {
			max = r.Rows
		}
	}
	fmt.Printf("  sampled ranges balanced the exchange: %d..%d rows per rank\n", min, max)
	fmt.Println("  oracle: globally sorted, splitter-aligned, input multiset preserved")
	fmt.Printf("  simulated execution time: %.3f s\n", world.MaxTime())
	fmt.Printf("  peak memory per process: %.2f MB\n",
		float64(arena.Peak())/float64(ranks)/(1<<20))
}
