package mimir_test

// Multi-process chaos acceptance test for elastic membership: a standing
// 4-OS-process mimird mesh grows to 6 and shrinks to 3 via the admin socket
// without a restart, admits an external worker with a join token and drains
// it back out with a leave, and survives a scripted worker kill as an
// implicit leave — with every job's output byte-identical to a fixed-size
// run of the same world size, exactly one respawn, and the full membership
// history exported as an artifact (MIMIR_MEMBERSHIP_LOG).
//
// MIMIR_MEMBERSHIP_SEED varies which worker rank the kill targets; CI runs
// three fixed seeds.

import (
	"bytes"
	"encoding/json"
	"net"
	"os"
	"strconv"
	"testing"
	"time"

	"mimir/internal/driver"
	"mimir/internal/jobsvc"
	"mimir/internal/membership"
	"mimir/internal/mpi"
	"mimir/internal/simtime"
	"mimir/internal/transport"
	"mimir/internal/workloads"
)

func elasticSpec(seed uint64) jobsvc.Spec {
	return jobsvc.Spec{Bytes: 1 << 16, Dist: "uniform", Seed: seed, Hint: true, PR: true}
}

// elasticReference is the fixed-size ground truth: elasticSpec(seed) on a
// fresh in-process world of the given size.
func elasticReference(t *testing.T, seed uint64, size int) []byte {
	t.Helper()
	world := mpi.NewWorld(mpi.Config{
		Size: size,
		Net:  simtime.NetworkModel{Alpha: 1e-7, Beta: 1e9},
	})
	out, err := driver.WordCount(world, driver.WordCountConfig{
		Dist:       workloads.Uniform,
		TotalBytes: 1 << 16,
		Seed:       seed,
		Hint:       true,
		PR:         true,
	}, nil)
	if err != nil {
		t.Fatalf("reference seed %d size %d: %v", seed, size, err)
	}
	if len(out) == 0 {
		t.Fatalf("reference seed %d size %d produced no output", seed, size)
	}
	return out
}

func TestDaemonElasticChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process elastic chaos test skipped in -short mode")
	}
	t.Setenv(testModeEnv, "jobsvc-worker") // inherited by the forked ranks

	seed := uint64(42)
	if v := os.Getenv("MIMIR_MEMBERSHIP_SEED"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("MIMIR_MEMBERSHIP_SEED=%q: %v", v, err)
		}
		seed = n
	}
	// The kill always targets a forked worker that exists at every size this
	// test visits (the world never shrinks below 3 ranks).
	crashRank := 1 + int(seed%2)
	t.Logf("membership chaos seed %d: kill targets rank %d", seed, crashRank)

	// Admin listener first: forked workers rejoin through it after faults.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	s, err := jobsvc.NewServer(jobsvc.Config{
		Mesh: jobsvc.SpawnMesh(4, addr, transport.SpawnOptions{}),
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	cl := jobsvc.Dial(addr)

	submitAt := func(stage string, jobSeed uint64, wantSize int) {
		t.Helper()
		res, err := cl.Submit(elasticSpec(jobSeed), nil)
		if err != nil {
			t.Fatalf("%s: submit: %v", stage, err)
		}
		if res.Size != wantSize {
			t.Fatalf("%s: job ran at size %d, want %d", stage, res.Size, wantSize)
		}
		if !bytes.Equal(res.Output, elasticReference(t, jobSeed, wantSize)) {
			t.Fatalf("%s: output at size %d not byte-identical to the fixed-size run", stage, wantSize)
		}
	}
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(120 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// Stage 1: the bootstrap world works.
	submitAt("seed world", 1, 4)

	// Stage 2: grow 4 -> 6 without a restart; surviving workers carry over
	// via remesh directives, two fresh processes are forked.
	view, err := cl.Resize(6)
	if err != nil {
		t.Fatalf("grow to 6: %v", err)
	}
	if view.Size() != 6 {
		t.Fatalf("grow committed %d ranks, want 6", view.Size())
	}
	submitAt("grown to 6", 2, 6)

	// Stage 3: an external worker joins with a minted token -> 7 ranks.
	token, err := cl.JoinToken()
	if err != nil {
		t.Fatal(err)
	}
	joinErr := make(chan error, 1)
	go func() {
		joinErr <- jobsvc.JoinDaemon(addr, token, transport.Options{}, jobsvc.WorkerOptions{Logf: t.Logf})
	}()
	waitFor("external join to commit", func() bool { return s.Size() == 7 })
	submitAt("external worker joined", 3, 7)

	// Stage 4: drain the joined worker back out with a voluntary leave.
	view, _, err = cl.Members()
	if err != nil {
		t.Fatal(err)
	}
	var joined membership.MemberID
	for _, mb := range view.Members {
		if mb.Kind == membership.KindJoined {
			joined = mb.ID
		}
	}
	if joined == 0 {
		t.Fatalf("no joined member in the committed view: %+v", view.Members)
	}
	view, err = cl.Leave(joined)
	if err != nil {
		t.Fatalf("leave member %d: %v", joined, err)
	}
	if view.Size() != 6 {
		t.Fatalf("leave committed %d ranks, want 6", view.Size())
	}
	select {
	case err := <-joinErr:
		if err != nil {
			t.Fatalf("joined worker did not retire cleanly: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("joined worker still running after its leave committed")
	}
	submitAt("joined worker drained", 4, 6)

	// Stage 5: kill a forked worker mid-job. The job fails cleanly, the dead
	// member becomes an implicit leave, a replacement is forked (the size
	// holds), and exactly one respawn is counted.
	crash := elasticSpec(5)
	crash.Crash = crashRank
	if _, err := cl.Submit(crash, nil); err == nil {
		t.Fatal("crash job reported success; want a clean failure")
	} else {
		t.Logf("crash job failed as intended: %v", err)
	}
	waitFor("crash recovery", func() bool { return s.Respawns() == 1 })
	waitFor("mesh size restored", func() bool { return s.Size() == 6 })
	submitAt("respawned after kill", 6, 6)

	// Stage 6: shrink 6 -> 3.
	view, err = cl.Resize(3)
	if err != nil {
		t.Fatalf("shrink to 3: %v", err)
	}
	if view.Size() != 3 {
		t.Fatalf("shrink committed %d ranks, want 3", view.Size())
	}
	submitAt("shrunk to 3", 7, 3)

	// The ledger: six committed transitions (bootstrap, grow, join, leave,
	// crash, shrink) mean the epoch advanced at least to 6; exactly one
	// member was lost; the joined member both joined and left.
	view, hist, err := cl.Members()
	if err != nil {
		t.Fatal(err)
	}
	if view.Epoch < 6 {
		t.Fatalf("final epoch %d, want >= 6", view.Epoch)
	}
	implicit, joins, joinedLeft := 0, 0, false
	for _, ev := range hist {
		switch ev.Kind {
		case membership.EvImplicitLeave:
			implicit++
		case membership.EvLeave:
			// Shrinks retire members through the same leave path; the one we
			// must see by name is the drained external joiner.
			if ev.Member == joined {
				joinedLeft = true
			}
		case membership.EvPendingJoin:
			joins++
		}
	}
	if implicit != 1 {
		t.Fatalf("history records %d implicit leaves, want exactly 1 (the kill)", implicit)
	}
	if !joinedLeft {
		t.Fatalf("history has no leave for the drained external member %d", joined)
	}
	if joins != 1 {
		t.Fatalf("history records %d pending joins, want exactly 1", joins)
	}
	if n := s.Respawns(); n != 1 {
		t.Fatalf("respawns = %d at the end, want exactly 1", n)
	}

	// Event-log artifact for CI.
	if path := os.Getenv("MIMIR_MEMBERSHIP_LOG"); path != "" {
		doc := struct {
			Seed      uint64             `json:"seed"`
			CrashRank int                `json:"crash_rank"`
			Epoch     uint64             `json:"final_epoch"`
			Size      int                `json:"final_size"`
			Respawns  int                `json:"respawns"`
			History   []membership.Event `json:"history"`
		}{seed, crashRank, view.Epoch, view.Size(), s.Respawns(), hist}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("membership event log written to %s", path)
	}

	if err := cl.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v after shutdown, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Serve did not return after shutdown")
	}
}
