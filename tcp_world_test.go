package mimir_test

// Multi-process transport tests. TestMain doubles as the worker entry point:
// when the test binary finds the MIMIR_TCP_* environment it was re-executed
// by transport.SpawnLocal as a worker rank, joins the parent's world, runs
// the job named by MIMIR_TEST_MODE, and exits — so one `go test` process
// plus its forked copies form a real multi-OS-process world.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"mimir"
	"mimir/internal/driver"
	"mimir/internal/metrics"
	"mimir/internal/workloads"
)

const testModeEnv = "MIMIR_TEST_MODE"

// tcpTestConfig is the corpus every process of the wordcount tests runs;
// parent and workers must agree on it.
var tcpTestConfig = driver.WordCountConfig{
	Dist:       workloads.Wikipedia,
	TotalBytes: 1 << 18,
	Seed:       7,
	Hint:       true,
	PR:         true,
}

func TestMain(m *testing.M) {
	// The jobsvc daemon worker joins the mesh raw — no World, no job — and
	// runs the control loop until the daemon shuts it down, so it must be
	// dispatched before TCPWorldFromEnv claims the bootstrap connection.
	if os.Getenv(testModeEnv) == "jobsvc-worker" {
		runJobsvcWorker()
		return
	}
	world, ok, err := mimir.TCPWorldFromEnv()
	if !ok {
		os.Exit(m.Run())
	}
	// Worker mode: this process is one rank of a test's world.
	if err != nil {
		fmt.Fprintln(os.Stderr, "worker bootstrap:", err)
		os.Exit(1)
	}
	switch mode := os.Getenv(testModeEnv); mode {
	case "wordcount":
		if _, err := driver.WordCount(world, tcpTestConfig, nil); err != nil {
			fmt.Fprintln(os.Stderr, "worker wordcount:", err)
			os.Exit(1)
		}
		world.Close()
		os.Exit(0)
	case "wordcount-abort":
		// A scheduled fault kills one rank mid-job; every rank — the killed
		// one and the survivors — must come back with ErrAborted.
		if _, err := driver.WordCount(world, tcpTestConfig, nil); errors.Is(err, mimir.ErrAborted) {
			os.Exit(0)
		} else {
			fmt.Fprintf(os.Stderr, "worker wordcount-abort: err = %v, want ErrAborted\n", err)
			os.Exit(1)
		}
	case "die":
		err := world.Run(func(c *mimir.Comm) error {
			if err := c.Barrier(); err != nil {
				return err
			}
			if c.Rank() == 2 {
				// Simulate a crashed worker: no Bye, no connection teardown,
				// just gone — peers must detect it, not hang.
				os.Exit(3)
			}
			_, _, _, err := c.Recv(0, 999) // parked until the abort arrives
			return err
		})
		if errors.Is(err, mimir.ErrAborted) {
			os.Exit(0) // survivor saw the abort, as it should
		}
		fmt.Fprintln(os.Stderr, "worker die-mode:", err)
		os.Exit(1)
	default:
		fmt.Fprintf(os.Stderr, "unknown %s=%q\n", testModeEnv, mode)
		os.Exit(1)
	}
}

// TestTCPWordCountMatchesInProcess is the acceptance test for the TCP
// transport: the same WordCount over 4 OS processes must produce output
// byte-identical to the 4-rank in-process run.
func TestTCPWordCountMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("forks processes")
	}
	const ranks = 4
	want, err := driver.WordCount(mimir.NewWorld(ranks), tcpTestConfig, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("in-process run produced no output")
	}

	t.Setenv(testModeEnv, "wordcount")
	world, children, err := mimir.SpawnTCPWorld(ranks)
	if err != nil {
		t.Fatal(err)
	}
	got, err := driver.WordCount(world, tcpTestConfig, nil)
	if err != nil {
		children.Kill()
		t.Fatal(err)
	}
	if err := world.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if err := children.Wait(); err != nil {
		t.Fatalf("worker process failed: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("multi-process output differs from in-process output: %d vs %d bytes", len(got), len(want))
	}
}

// TestTCPWordCountSurvivesInjectedResets is the fail-recover acceptance
// test: a 4-process TCP WordCount with a connection reset injected on every
// rank's links must complete with output byte-identical to the fault-free
// in-process run, and the metrics summary must show the recovery happened
// (at least one reconnect).
func TestTCPWordCountSurvivesInjectedResets(t *testing.T) {
	if testing.Short() {
		t.Skip("forks processes")
	}
	const ranks = 4
	want, err := driver.WordCount(mimir.NewWorld(ranks), tcpTestConfig, nil)
	if err != nil {
		t.Fatal(err)
	}

	t.Setenv(testModeEnv, "wordcount")
	world, children, err := mimir.SpawnTCPWorldOpts(ranks, mimir.TCPOptions{
		Policy: mimir.RetryTransient,
		Faults: "seed:42,reset:all@frame1",
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := metrics.NewSummary()
	got, err := driver.WordCount(world, tcpTestConfig, sum)
	if err != nil {
		children.Kill()
		t.Fatal(err)
	}
	if err := world.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if err := children.Wait(); err != nil {
		t.Fatalf("worker process failed: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("faulted run output differs from fault-free run: %d vs %d bytes", len(got), len(want))
	}
	rec := sum.Get("net-reconnects")
	if rec == nil || rec.Max < 1 {
		t.Fatalf("metrics report no reconnects; the injected resets exercised nothing (series: %v)", sum.Names())
	}
	lf := sum.Get("net-link-failures")
	t.Logf("recovered: %v link failures, %v reconnects, replayed %v frames",
		lf.Max, rec.Max, sum.Get("net-replayed-frames").Max)
}

// TestTCPInjectedKillAbortsSurvivors schedules a permanent process death via
// the fault injector: rank 2 severs all links at its second collective round.
// The survivors must give up after the reconnect window and surface
// ErrAborted — quickly, not after the full bootstrap/I/O deadlines.
func TestTCPInjectedKillAbortsSurvivors(t *testing.T) {
	if testing.Short() {
		t.Skip("forks processes")
	}
	const ranks = 4
	t.Setenv(testModeEnv, "wordcount-abort")
	world, children, err := mimir.SpawnTCPWorldOpts(ranks, mimir.TCPOptions{
		Policy:          mimir.RetryTransient,
		ReconnectWindow: 500 * time.Millisecond,
		Faults:          "seed:42,kill:rank2@round1",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer children.Kill()

	start := time.Now()
	errc := make(chan error, 1)
	go func() {
		_, err := driver.WordCount(world, tcpTestConfig, nil)
		errc <- err
	}()
	select {
	case err := <-errc:
		if !errors.Is(err, mimir.ErrAborted) {
			t.Fatalf("rank 0 got %v, want ErrAborted", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("rank 0 still blocked 30s after the scheduled kill")
	}
	t.Logf("abort surfaced on rank 0 %v after launch", time.Since(start).Round(time.Millisecond))
	world.Close()
	// Every worker (the killed rank included) observed ErrAborted and
	// exited cleanly — the kill is injected, not an os.Exit.
	if err := children.Wait(); err != nil {
		t.Fatalf("worker did not see a clean abort: %v", err)
	}
}

// TestTCPWorkerDeathSurfacesErrAborted kills one worker process mid-job and
// asserts every surviving rank's pending communication fails with
// ErrAborted instead of hanging.
func TestTCPWorkerDeathSurfacesErrAborted(t *testing.T) {
	if testing.Short() {
		t.Skip("forks processes")
	}
	const ranks = 4
	t.Setenv(testModeEnv, "die")
	world, children, err := mimir.SpawnTCPWorld(ranks)
	if err != nil {
		t.Fatal(err)
	}
	defer children.Kill()

	start := time.Now()
	errc := make(chan error, 1)
	go func() {
		errc <- world.Run(func(c *mimir.Comm) error {
			if err := c.Barrier(); err != nil {
				return err
			}
			_, _, _, err := c.Recv(0, 999) // rank 2's death must release this
			return err
		})
	}()
	select {
	case err := <-errc:
		if !errors.Is(err, mimir.ErrAborted) {
			t.Fatalf("rank 0 got %v, want ErrAborted", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("rank 0 still blocked 30s after worker death")
	}
	t.Logf("abort surfaced on rank 0 %v after launch", time.Since(start).Round(time.Millisecond))

	// The dying rank exits 3; the survivors exit 0 having seen ErrAborted.
	err = children.Wait()
	if err == nil {
		t.Fatal("children.Wait: no error from the killed worker")
	}
}
