//go:build race

package mimir_test

// raceEnabled reports whether the race detector is on. TestShuffleAllocs
// skips under -race: the detector instruments every allocation site and
// sync.Pool behaves differently (it drops items to stress the detector), so
// AllocsPerRun figures are meaningless there.
const raceEnabled = true
