package mimir_test

// The MRC determinism battery: every multi-round job (terasort, pagerank,
// kmeans, bfs) must produce byte-identical canonical output whatever runs
// it — the in-process Local transport, a real loopback TCP mesh, or a
// fault-injected TCP mesh recovering from connection resets — at every
// worker-pool size and out-of-core policy. The invariants doing the work:
// integer fixed-point arithmetic (reassociation by worker pools and hot-key
// split/re-merge is exact), per-rank deterministic input regeneration, and
// canonical gather ordering. quick.Check drives the dataset seed; set
// MIMIR_PROP_SEED to reproduce a failing draw.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"mimir/internal/core"
	"mimir/internal/driver"
	"mimir/internal/faultinject"
	"mimir/internal/metrics"
	"mimir/internal/mpi"
	"mimir/internal/simtime"
	"mimir/internal/transport"

	mathrand "math/rand"
)

// mrcBatteryJobs are the per-kind base configs: modest sizes so the full
// grid stays fast, every optimization the kind supports switched on (the
// battery then also covers split/re-merge and the combiner paths).
func mrcBatteryJobs() []driver.JobConfig {
	return []driver.JobConfig{
		{Kind: driver.JobTeraSort, Rows: 1 << 12, Hint: true},
		{Kind: driver.JobPageRank, Scale: 8, Hint: true, PR: true},
		{Kind: driver.JobKMeans, Points: 1 << 11, K: 5, Dims: 2, Hint: true, PR: true},
		{Kind: driver.JobBFS, Scale: 8, Hint: true},
	}
}

// mrcSpillCap is each kind's per-rank arena cap for the SpillWhenNeeded
// cells: above the non-spillable floor (resident vertex state / centroid
// sums plus container indexes), below the shuffled working set, so eviction
// genuinely engages (TestMRCSpillEngages pins that). TeraSort is the
// exception: its non-spillable sort block dominates the floor while the
// engine containers never outgrow any cap the block fits under, so its
// spill cell only exercises the policy, not eviction.
var mrcSpillCap = map[string]int64{
	driver.JobTeraSort: 128 << 10,
	driver.JobPageRank: 44 << 10,
	driver.JobKMeans:   44 << 10,
	driver.JobBFS:      120 << 10,
}

// mrcSpillCfg applies a kind's spill cell to cfg. k-means additionally
// drops partial reduction: with pr on its shuffled working set is K keys
// (nothing to evict), without it the aggregate holds one record per point —
// and pr never changes the output bytes, so the reference still applies.
func mrcSpillCfg(cfg driver.JobConfig) driver.JobConfig {
	cfg.OutOfCore = core.SpillWhenNeeded
	cfg.MemBytes = mrcSpillCap[cfg.Kind]
	if cfg.Kind == driver.JobKMeans {
		cfg.PR = false
	}
	return cfg
}

// mrcMesh builds a fresh in-process loopback TCP mesh. A non-empty faults
// spec switches every rank to fail-recover link handling and wraps its
// connections with a deterministic fault injector, so the job completes by
// reconnecting and replaying — the transport conformance builder's pattern.
func mrcMesh(size int, faults string) ([]transport.Transport, error) {
	var spec faultinject.Spec
	if faults != "" {
		var err error
		spec, err = faultinject.ParseSpec(faults)
		if err != nil {
			return nil, err
		}
	}
	cfg := func(rank int, addr string) transport.TCPConfig {
		c := transport.TCPConfig{
			Addr: addr, Rank: rank, Size: size,
			BootstrapTimeout: 30 * time.Second,
		}
		if faults != "" {
			c.Policy = transport.RetryTransient
			c.ReconnectWindow = 10 * time.Second
			c.BackoffBase = 5 * time.Millisecond
			inj := faultinject.New(spec, rank)
			c.WrapConn = inj.WrapConn
		}
		return c
	}
	b, err := transport.ListenTCP(cfg(0, "127.0.0.1:0"))
	if err != nil {
		return nil, err
	}
	trs := make([]transport.Transport, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 1; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr, err := transport.NewTCP(cfg(r, b.Addr()))
			if err != nil {
				errs[r] = err
				return
			}
			trs[r] = tr
		}(r)
	}
	tr0, err := b.Accept()
	if err != nil {
		errs[0] = err
	} else {
		trs[0] = tr0
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return trs, nil
}

// runMRCJob runs one job and returns rank 0's canonical gathered output.
// mode is "local" (in-process world), "tcp" (fresh loopback mesh), or
// "tcp-fault" (loopback mesh with a reset injected on every rank's links,
// recovered under the fail-recover policy).
func runMRCJob(t *testing.T, cfg driver.JobConfig, mode string, sum *metrics.Summary) []byte {
	t.Helper()
	if mode == "local" {
		world := mpi.NewWorld(mpi.Config{Size: propWorldSize, Net: simtime.NetworkModel{Alpha: 1e-7, Beta: 1e9}})
		out, err := driver.RunJob(world, cfg, sum)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	faults := ""
	if mode == "tcp-fault" {
		faults = "seed:42,reset:all@frame2"
	}
	trs, err := mrcMesh(propWorldSize, faults)
	if err != nil {
		t.Fatal(err)
	}
	var out []byte
	errs := make([]error, propWorldSize)
	var wg sync.WaitGroup
	for r, tr := range trs {
		wg.Add(1)
		go func(r int, world *mpi.World) {
			defer wg.Done()
			defer world.Close()
			var s *metrics.Summary
			if r == 0 {
				s = sum
			}
			o, err := driver.RunJob(world, cfg, s)
			errs[r] = err
			if r == 0 {
				out = o
			}
		}(r, mpi.NewWorld(mpi.Config{Transport: tr}))
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// mrcCell is one grid cell: a worker-pool size, an out-of-core policy, and
// a transport mode.
type mrcCell struct {
	workers int
	spill   bool
	mode    string
}

func (c mrcCell) name() string {
	ooc := "off"
	if c.spill {
		ooc = "spill"
	}
	return fmt.Sprintf("workers=%d/ooc=%s/%s", c.workers, ooc, c.mode)
}

// TestMRCJobDeterminism is the battery: for every job kind and grid cell,
// quick.Check draws dataset seeds and asserts the cell's output is
// byte-identical to the reference run (Local, one worker, in-memory). The
// full worker x spill grid runs on Local; TCP and faulted-TCP cover the
// corner cells, like the zipf battery.
func TestMRCJobDeterminism(t *testing.T) {
	cells := []mrcCell{
		{1, false, "local"}, {4, false, "local"}, {8, false, "local"},
		{1, true, "local"}, {4, true, "local"}, {8, true, "local"},
		{1, false, "tcp"}, {8, true, "tcp"},
		{1, false, "tcp-fault"}, {8, false, "tcp-fault"},
	}
	maxCount := 2
	if testing.Short() {
		cells = []mrcCell{{1, false, "local"}, {8, true, "local"}}
		maxCount = 1
	}
	for _, base := range mrcBatteryJobs() {
		base := base
		t.Run(base.Kind, func(t *testing.T) {
			// The reference output per seed: every cell draws the same seed
			// sequence (same propSeed), so the cache saves re-running it.
			refs := map[uint64][]byte{}
			ref := func(seed uint64) []byte {
				if out, ok := refs[seed]; ok {
					return out
				}
				cfg := base
				cfg.Seed = seed
				cfg.Workers = 1
				cfg.PageSize = 1 << 10
				cfg.CommBuf = 8 << 10
				out := runMRCJob(t, cfg, "local", nil)
				if len(out) == 0 {
					t.Fatalf("seed %d: empty reference output", seed)
				}
				refs[seed] = out
				return out
			}
			for _, cl := range cells {
				cl := cl
				t.Run(cl.name(), func(t *testing.T) {
					count := maxCount
					if cl.mode != "local" {
						count = 1 // fresh loopback mesh per draw: one is plenty
					}
					qc := &quick.Config{
						MaxCount: count,
						Rand:     mathrand.New(mathrand.NewSource(propSeed(t))),
					}
					err := quick.Check(func(seed uint64) bool {
						want := ref(seed)
						cfg := base
						cfg.Seed = seed
						cfg.Workers = cl.workers
						cfg.PageSize = 1 << 10
						cfg.CommBuf = 8 << 10
						if cl.spill {
							cfg = mrcSpillCfg(cfg)
						}
						got := runMRCJob(t, cfg, cl.mode, nil)
						if !bytes.Equal(got, want) {
							t.Errorf("seed %d: %s output diverges from reference (%d vs %d bytes)",
								seed, cl.name(), len(got), len(want))
							return false
						}
						return true
					}, qc)
					if err != nil {
						t.Fatal(err)
					}
				})
			}
		})
	}
}

// TestMRCSpillEngages pins that the battery's spill cells actually spill:
// under each kind's tuned arena cap the SpillWhenNeeded run must report
// out-of-core traffic — otherwise the ooc=spill column is silently testing
// nothing. TeraSort is exempt (see mrcSpillCap): it still runs under the
// policy, but eviction structurally cannot engage at battery scale.
func TestMRCSpillEngages(t *testing.T) {
	for _, base := range mrcBatteryJobs() {
		cfg := base
		cfg.Seed = uint64(propSeed(t))
		cfg.Workers = 1
		cfg.PageSize = 1 << 10
		cfg.CommBuf = 8 << 10
		cfg = mrcSpillCfg(cfg)
		sum := metrics.NewSummary()
		out := runMRCJob(t, cfg, "local", sum)
		if len(out) == 0 {
			t.Errorf("%s: empty output", base.Kind)
			continue
		}
		sp := sum.Get("spilled-bytes")
		switch {
		case base.Kind == driver.JobTeraSort:
			// Policy-only cell: the run must succeed, spill traffic may be zero.
		case sp == nil || sp.Max == 0:
			t.Errorf("%s: no spill traffic under the %d-byte cap; tighten mrcSpillCap", base.Kind, cfg.MemBytes)
		default:
			t.Logf("%s: spilled up to %.0f bytes per rank", base.Kind, sp.Max)
		}
	}
}

// TestMRCFaultedRunRecovered pins that the tcp-fault cells genuinely
// recover from injected faults rather than never seeing one: the metrics
// must show at least one reconnect, and the output must still match the
// fault-free reference.
func TestMRCFaultedRunRecovered(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets")
	}
	base := mrcBatteryJobs()[1] // pagerank: many rounds, plenty of frames
	base.Seed = uint64(propSeed(t))
	base.Workers = 1
	base.PageSize = 1 << 10
	base.CommBuf = 8 << 10
	want := runMRCJob(t, base, "local", nil)
	sum := metrics.NewSummary()
	got := runMRCJob(t, base, "tcp-fault", sum)
	if !bytes.Equal(got, want) {
		t.Fatalf("faulted run diverges from reference (%d vs %d bytes)", len(got), len(want))
	}
	rec := sum.Get("net-reconnects")
	if rec == nil || rec.Max < 1 {
		t.Fatalf("metrics report no reconnects; the injected resets exercised nothing (series: %v)", sum.Names())
	}
	t.Logf("recovered: %v reconnects, replayed %v frames", rec.Max, sum.Get("net-replayed-frames").Max)
}
