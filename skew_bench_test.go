package mimir_test

// BENCH_skew pins the skew-aware partitioning claim: at zipf s=1.1 on 4
// Comet ranks, the sampling partitioner beats FNV-1a hashing on both
// simulated job time and the busiest rank's arena peak, while at s=0 the
// two stay comparable. All figures come from the simulated cost model
// (internal/expt), so they are byte-identical on any host and drift only
// when the engine's accounting changes.
//
// Regenerate the committed baseline with:
//
//	MIMIR_BENCH_OUT=BENCH_skew.json go test -run TestSkewBenchBaseline .

import (
	"encoding/json"
	"os"
	"testing"

	"mimir/internal/expt"
)

// benchSkewSpec is the committed sweep: skew {0, 1.1} x partitioner
// {hash, sample} at 4 ranks (one per node, so peak_per_rank_bytes is an
// exact arena peak), 1 MiB "1G" corpus, KV-hint on, PR off (container
// memory then tracks record traffic — the imbalance sampling fixes).
func benchSkewSpec() expt.SkewSpec {
	return expt.SkewSpec{
		Skews:        []float64{0, 1.1},
		Workers:      []int{1},
		Ranks:        []int{4},
		Partitioners: []string{"hash", "sample"},
		SizeBytes:    expt.PaperSize("1G"),
		Contention:   0.1,
		Seed:         expt.Seed,
	}
}

// benchSkewBaseline is the committed shape of BENCH_skew.json.
type benchSkewBaseline struct {
	Benchmark string          `json:"benchmark"`
	Workload  string          `json:"workload"`
	Note      string          `json:"note"`
	Points    []expt.SkewCell `json:"points"`
}

func benchSkewRun() benchSkewBaseline {
	return benchSkewBaseline{
		Benchmark: "TestSkewBenchBaseline",
		Workload:  "WordCount zipf {0, 1.1} contention 0.1, 1 MiB (\"1G\"), Comet 4 nodes x 1 rank, KV-hint, hash vs sample partitioner",
		Note: "All figures are simulated (expt cost model), so they are byte-identical " +
			"on any host; drift means the engine's cost or memory accounting changed. " +
			"The claim pinned here: under skew the sampled weighted ranges beat hash " +
			"partitioning on both job time and the busiest rank's arena peak.",
		Points: expt.SkewMatrix(benchSkewSpec()),
	}
}

func (b *benchSkewBaseline) point(t *testing.T, skew float64, part string) expt.SkewCell {
	t.Helper()
	for _, p := range b.Points {
		if p.Skew == skew && p.Partitioner == part {
			return p
		}
	}
	t.Fatalf("BENCH_skew point (skew %.1f, %s) missing", skew, part)
	return expt.SkewCell{}
}

// TestSkewBenchBaseline regenerates the sweep and holds it against the
// committed BENCH_skew.json (exact match — the figures are simulated), plus
// the structural claims: every cell in-memory, and sample strictly better
// than hash on time and peak at s=1.1 while within 25% on time at s=0.
func TestSkewBenchBaseline(t *testing.T) {
	got := benchSkewRun()
	for _, pt := range got.Points {
		if pt.Err != "" {
			t.Errorf("cell %s failed: %s", pt.Name(), pt.Err)
		}
		if pt.SpilledBytes != 0 {
			t.Errorf("cell %s spilled %d bytes; sweep must stay in memory", pt.Name(), pt.SpilledBytes)
		}
	}
	hash, sample := got.point(t, 1.1, "hash"), got.point(t, 1.1, "sample")
	if sample.TimeSec >= hash.TimeSec {
		t.Errorf("zipf 1.1: sample time %.4fs not below hash %.4fs", sample.TimeSec, hash.TimeSec)
	}
	if sample.PeakPerRankBytes >= hash.PeakPerRankBytes {
		t.Errorf("zipf 1.1: sample peak %d bytes not below hash %d", sample.PeakPerRankBytes, hash.PeakPerRankBytes)
	}
	h0, s0 := got.point(t, 0, "hash"), got.point(t, 0, "sample")
	if s0.TimeSec > 1.25*h0.TimeSec {
		t.Errorf("zipf 0: sample time %.4fs more than 25%% over hash %.4fs", s0.TimeSec, h0.TimeSec)
	}

	if out := os.Getenv("MIMIR_BENCH_OUT"); out != "" {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", out)
		return
	}
	raw, err := os.ReadFile("BENCH_skew.json")
	if err != nil {
		t.Fatalf("read baseline (regenerate with MIMIR_BENCH_OUT): %v", err)
	}
	var want benchSkewBaseline
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse BENCH_skew.json: %v", err)
	}
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("sweep drifted from committed BENCH_skew.json\n got: %s\nwant: %s", gotJSON, wantJSON)
	}
}
