module mimir

go 1.22
