package mimir_test

// BenchmarkShuffle pins the wall-clock cost of the wordcount-shaped shuffle
// hot path — map emit → partitioned send buffer → TCP exchange → receive
// container — over real loopback sockets, at 1 and 4 ranks and with frame
// compression off and on. BENCH_shuffle.json commits the measured points
// next to the pre-PR baseline (recorded on the tree before the
// zero-allocation shuffle work landed) and TestShuffleBenchBaseline holds
// the committed file to its claims, mirroring BENCH_workers.json.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"mimir"
	"mimir/internal/kvbuf"
	"mimir/internal/mpi"
	"mimir/internal/transport"
)

// shuffleKVsPerRank is the number of word KVs each rank emits per job run.
// At ~17 encoded bytes per KV this shuffles ~1 MiB per rank per op.
const shuffleKVsPerRank = 1 << 16

// shuffleVocab is the distinct-word count; like real text, keys repeat.
const shuffleVocab = 4096

// shuffleHint is the wordcount KV-hint: NUL-terminated string keys, fixed
// 8-byte counts.
func shuffleHint() kvbuf.Hint { return kvbuf.Hint{Key: kvbuf.StrZ(), Val: kvbuf.Fixed(8)} }

// shuffleWords deterministically generates one rank's pre-tokenized input:
// each record is one word, so the map is a bare emit and the measurement
// isolates the shuffle itself rather than text tokenization.
func shuffleWords(rank, n int) []mimir.Record {
	vocab := make([][]byte, shuffleVocab)
	for i := range vocab {
		// Variable-length, wordcount-shaped keys (8 to 16 bytes).
		w := fmt.Sprintf("word%04x", i)
		for len(w) < 8+i%9 {
			w += "x"
		}
		vocab[i] = []byte(w)
	}
	rng := uint64(rank)*0x9E3779B97F4A7C15 + 0x1234567
	next := func() uint64 {
		rng += 0x9E3779B97F4A7C15
		z := rng
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	recs := make([]mimir.Record, n)
	for i := range recs {
		recs[i] = mimir.Record{Val: vocab[next()%shuffleVocab]}
	}
	return recs
}

// shuffleMesh is an in-process TCP world: one transport per rank over real
// loopback sockets (the conformance builder, minus testing.TB).
func shuffleMesh(size int, compress bool) ([]transport.Transport, error) {
	cfg := func(rank int, addr string) transport.TCPConfig {
		return transport.TCPConfig{
			Addr: addr, Rank: rank, Size: size,
			BootstrapTimeout: 30 * time.Second,
			Compress:         compress,
		}
	}
	b, err := transport.ListenTCP(cfg(0, "127.0.0.1:0"))
	if err != nil {
		return nil, err
	}
	trs := make([]transport.Transport, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 1; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr, err := transport.NewTCP(cfg(r, b.Addr()))
			if err != nil {
				errs[r] = err
				return
			}
			trs[r] = tr
		}(r)
	}
	tr0, err := b.Accept()
	if err != nil {
		errs[0] = err
	} else {
		trs[0] = tr0
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return trs, nil
}

// shuffleRig holds a reusable mesh: worlds stay up across iterations so the
// measurement covers steady-state shuffling, not mesh bootstrap.
type shuffleRig struct {
	worlds []*mpi.World
	inputs [][]mimir.Record
	arena  *mimir.Arena
}

func newShuffleRig(size int, compress bool) (*shuffleRig, error) {
	trs, err := shuffleMesh(size, compress)
	if err != nil {
		return nil, err
	}
	rig := &shuffleRig{arena: mimir.NewArena(0)}
	for r, tr := range trs {
		rig.worlds = append(rig.worlds, mpi.NewWorld(mpi.Config{Transport: tr}))
		rig.inputs = append(rig.inputs, shuffleWords(r, shuffleKVsPerRank))
	}
	return rig, nil
}

func (rig *shuffleRig) close() {
	for _, w := range rig.worlds {
		w.Close()
	}
}

// runOnce executes one map-only wordcount shuffle across all ranks: every
// word is emitted, partitioned by key hash, exchanged over the mesh, and
// folded into the receive-side KV container. Returns the bytes shuffled.
func (rig *shuffleRig) runOnce() (int64, error) {
	one := mimir.Uint64Bytes(1)
	mapFn := func(rec mimir.Record, e mimir.Emitter) error {
		return e.Emit(rec.Val, one)
	}
	var mu sync.Mutex
	var shuffled int64
	errs := make([]error, len(rig.worlds))
	var wg sync.WaitGroup
	for r, w := range rig.worlds {
		wg.Add(1)
		go func(r int, w *mpi.World) {
			defer wg.Done()
			errs[r] = w.Run(func(c *mimir.Comm) error {
				job := mimir.NewJob(c, mimir.Config{
					Arena:   rig.arena,
					CommBuf: 3 << 20,
					Hint:    shuffleHint(),
				})
				out, err := job.Run(mimir.SliceInput(rig.inputs[r]), mapFn, nil)
				if err != nil {
					return err
				}
				mu.Lock()
				shuffled += out.Stats.ShuffledBytes
				mu.Unlock()
				out.Free()
				return nil
			})
		}(r, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return shuffled, nil
}

// shufflePoint is one measured configuration of the sweep.
type shufflePoint struct {
	Ranks    int  `json:"ranks"`
	Compress bool `json:"compress"`
	// KVs is the KV count per op (all ranks).
	KVs int64 `json:"kvs_per_op"`
	// BytesPerOp is the intermediate bytes shuffled per op (all ranks).
	BytesPerOp int64 `json:"shuffled_bytes_per_op"`
	// NsPerKV is wall-clock nanoseconds per shuffled KV.
	NsPerKV float64 `json:"ns_per_kv"`
	// AllocsPerKV is heap allocations per shuffled KV across the whole
	// process (all ranks, steady state).
	AllocsPerKV float64 `json:"allocs_per_kv"`
}

// measureShuffle runs the shuffle `iters` times on a fresh mesh (after one
// warmup op) and returns the averaged point.
func measureShuffle(tb testing.TB, ranks int, compress bool, iters int) shufflePoint {
	tb.Helper()
	rig, err := newShuffleRig(ranks, compress)
	if err != nil {
		tb.Fatal(err)
	}
	defer rig.close()
	bytes, err := rig.runOnce() // warmup: page the mesh and pools in
	if err != nil {
		tb.Fatal(err)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := rig.runOnce(); err != nil {
			tb.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	kvs := int64(ranks) * shuffleKVsPerRank
	return shufflePoint{
		Ranks:       ranks,
		Compress:    compress,
		KVs:         kvs,
		BytesPerOp:  bytes,
		NsPerKV:     float64(elapsed.Nanoseconds()) / float64(int64(iters)*kvs),
		AllocsPerKV: float64(after.Mallocs-before.Mallocs) / float64(int64(iters)*kvs),
	}
}

// BenchmarkShuffle: the TCP wordcount shuffle at 1 and 4 ranks, compression
// off and on. ns/KV is the headline metric (compare against the pre_pr
// block of BENCH_shuffle.json).
func BenchmarkShuffle(b *testing.B) {
	for _, ranks := range []int{1, 4} {
		for _, compress := range []bool{false, true} {
			b.Run(fmt.Sprintf("ranks=%d/compress=%v", ranks, compress), func(b *testing.B) {
				rig, err := newShuffleRig(ranks, compress)
				if err != nil {
					b.Fatal(err)
				}
				defer rig.close()
				shuffled, err := rig.runOnce() // warmup
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(shuffled)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := rig.runOnce(); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				kvs := int64(ranks) * shuffleKVsPerRank
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*kvs), "ns/KV")
			})
		}
	}
}

// benchShuffleBaseline is the committed shape of BENCH_shuffle.json.
type benchShuffleBaseline struct {
	Benchmark string `json:"benchmark"`
	Workload  string `json:"workload"`
	Note      string `json:"note"`
	// PrePR is the baseline measured on the tree before the zero-allocation
	// shuffle hot path landed (no pooling, per-KV decode/re-encode on the
	// receive path, copy-into-framed-buffer writes, no compression). It is
	// carried forward verbatim on regeneration.
	PrePR []shufflePoint `json:"pre_pr"`
	// Points is the current tree's sweep.
	Points []shufflePoint `json:"points"`
	// SpeedupTCP4 is pre-PR ns/KV over current ns/KV at ranks=4,
	// compress=off — the headline shuffle improvement.
	SpeedupTCP4 float64 `json:"speedup_tcp4_ns_per_kv"`
}

func (b *benchShuffleBaseline) point(ranks int, compress bool) *shufflePoint {
	for i := range b.Points {
		if b.Points[i].Ranks == ranks && b.Points[i].Compress == compress {
			return &b.Points[i]
		}
	}
	return nil
}

func (b *benchShuffleBaseline) prePoint(ranks int, compress bool) *shufflePoint {
	for i := range b.PrePR {
		if b.PrePR[i].Ranks == ranks && b.PrePR[i].Compress == compress {
			return &b.PrePR[i]
		}
	}
	return nil
}

// benchShuffleRun executes the sweep once and packages it as the baseline,
// carrying the pre-PR block forward from the committed file.
func benchShuffleRun(tb testing.TB, prePR []shufflePoint) benchShuffleBaseline {
	base := benchShuffleBaseline{
		Benchmark: "BenchmarkShuffle",
		Workload: fmt.Sprintf("map-only WordCount shuffle, %d pre-tokenized words/rank (%d distinct), strz/fixed8 hint, loopback TCP",
			shuffleKVsPerRank, shuffleVocab),
		Note: "ns_per_kv and allocs_per_kv are wall-clock figures and vary by host; " +
			"pre_pr was measured on the tree before the zero-allocation shuffle work " +
			"and is carried forward verbatim so speedup_tcp4_ns_per_kv compares like for like.",
		PrePR: prePR,
	}
	for _, ranks := range []int{1, 4} {
		for _, compress := range []bool{false, true} {
			base.Points = append(base.Points, measureShuffle(tb, ranks, compress, 4))
		}
	}
	if pre, post := base.prePoint(4, false), base.point(4, false); pre != nil && post != nil && post.NsPerKV > 0 {
		base.SpeedupTCP4 = pre.NsPerKV / post.NsPerKV
	}
	return base
}

// TestShuffleBenchBaseline holds the committed BENCH_shuffle.json to its
// claims. Wall-clock ns/KV is machine-dependent, so unlike the simulated
// BENCH_workers.json this pin does not demand exact equality; it asserts
// (a) the committed file's shape and internal consistency, (b) the
// committed >= 1.5x ns/KV improvement at 4 ranks against the pre-PR
// baseline recorded in the same file, and (c) that a fresh sweep on this
// host has not regressed allocations-per-KV by more than 2x the committed
// figure (allocation counts, unlike nanoseconds, are near-deterministic).
// Regenerate the file with:
//
//	MIMIR_BENCH_OUT=BENCH_shuffle.json go test -run TestShuffleBenchBaseline .
func TestShuffleBenchBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock sweep")
	}
	raw, err := os.ReadFile("BENCH_shuffle.json")
	if err != nil {
		t.Fatalf("read baseline (regenerate with MIMIR_BENCH_OUT): %v", err)
	}
	var want benchShuffleBaseline
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse BENCH_shuffle.json: %v", err)
	}

	if out := os.Getenv("MIMIR_BENCH_OUT"); out != "" {
		got := benchShuffleRun(t, want.PrePR)
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (GOMAXPROCS=%d)", out, runtime.GOMAXPROCS(0))
		return
	}

	// (a) Shape: every sweep point present, with its pre-PR counterpart for
	// the uncompressed configurations.
	for _, ranks := range []int{1, 4} {
		for _, compress := range []bool{false, true} {
			pt := want.point(ranks, compress)
			if pt == nil {
				t.Fatalf("BENCH_shuffle.json missing point ranks=%d compress=%v", ranks, compress)
			}
			if pt.NsPerKV <= 0 || pt.KVs != int64(ranks)*shuffleKVsPerRank {
				t.Errorf("point ranks=%d compress=%v inconsistent: %+v", ranks, compress, *pt)
			}
		}
		if want.prePoint(ranks, false) == nil {
			t.Fatalf("BENCH_shuffle.json missing pre_pr point ranks=%d", ranks)
		}
	}

	// (b) The committed improvement claim.
	pre, post := want.prePoint(4, false), want.point(4, false)
	speedup := pre.NsPerKV / post.NsPerKV
	if speedup < 1.5 {
		t.Errorf("committed ns/KV improvement at 4 ranks = %.2fx, want >= 1.5x (pre %.1f, post %.1f)",
			speedup, pre.NsPerKV, post.NsPerKV)
	}
	if want.SpeedupTCP4 < 1.5 {
		t.Errorf("committed speedup_tcp4_ns_per_kv = %.2f, want >= 1.5", want.SpeedupTCP4)
	}

	// (c) Allocation drift on this host: allocations per KV are
	// near-deterministic (unlike nanoseconds), so a fresh measurement more
	// than 2x the committed figure means the zero-allocation path regressed.
	fresh := measureShuffle(t, 4, false, 2)
	limit := post.AllocsPerKV * 2
	if floor := 0.05; limit < floor {
		limit = floor // absolute slack for sub-0.025/KV committed figures
	}
	if fresh.AllocsPerKV > limit {
		t.Errorf("allocs/KV drifted: fresh %.4f vs committed %.4f (limit %.4f)",
			fresh.AllocsPerKV, post.AllocsPerKV, limit)
	}
	t.Logf("committed speedup %.2fx; fresh allocs/KV %.4f (committed %.4f)", speedup, fresh.AllocsPerKV, post.AllocsPerKV)
}
