package mimir_test

// Ablation benchmarks for the design choices called out in DESIGN.md:
// the communication-buffer size behind the interleaved aggregate, the page
// granularity of the dynamic containers, and the delayed-vs-streaming KV
// compression drain. Each reports peak node memory and simulated job time
// as custom metrics alongside the usual ns/op.

import (
	"fmt"
	"sync"
	"testing"

	"mimir"
	"mimir/internal/workloads"
)

// ablationWC runs one in-memory WordCount and reports peak memory and
// simulated seconds.
func ablationWC(b *testing.B, dist workloads.Distribution, bytes int64,
	cfg func(*mimir.Config)) {
	b.ReportAllocs()
	var peak int64
	var simT float64
	for i := 0; i < b.N; i++ {
		const p = 8
		w := mimir.NewWorld(p)
		arena := mimir.NewArena(0)
		err := w.Run(func(c *mimir.Comm) error {
			jc := mimir.Config{Arena: arena}
			if cfg != nil {
				cfg(&jc)
			}
			job := mimir.NewJob(c, jc)
			input := workloads.TextInput(nil, c.Clock(), dist, 42, bytes, c.Rank(), p)
			out, err := job.Run(input, workloads.WordCountMap, workloads.WordCountReduce)
			if err != nil {
				return err
			}
			out.Free()
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		peak = arena.Peak()
		simT = w.MaxTime()
	}
	b.ReportMetric(float64(peak), "peak-bytes")
	b.ReportMetric(simT, "sim-sec")
}

// ablationWCOn is ablationWC with a platform's calibrated costs, so the
// simulated time includes real compute and network charges — required for
// the overlap ablation, where the win is hiding one behind the other.
func ablationWCOn(b *testing.B, plat *mimir.Platform, dist workloads.Distribution,
	bytes int64, cfg func(*mimir.Config)) {
	b.ReportAllocs()
	var peak int64
	var simT, aggr, saved float64
	for i := 0; i < b.N; i++ {
		const p = 8
		w := mimir.NewWorldOn(plat, p)
		arena := mimir.NewArena(0)
		var mu sync.Mutex
		aggr, saved = 0, 0
		err := w.Run(func(c *mimir.Comm) error {
			jc := mimir.Config{Arena: arena, Costs: plat.Costs()}
			if cfg != nil {
				cfg(&jc)
			}
			job := mimir.NewJob(c, jc)
			input := workloads.TextInput(nil, c.Clock(), dist, 42, bytes, c.Rank(), p)
			out, err := job.Run(input, workloads.WordCountMap, workloads.WordCountReduce)
			if err != nil {
				return err
			}
			mu.Lock()
			aggr += out.Stats.Phases.Aggregate
			saved += out.Stats.OverlapSavedSec
			mu.Unlock()
			out.Free()
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		peak = arena.Peak()
		simT = w.MaxTime()
	}
	b.ReportMetric(float64(peak), "peak-bytes")
	b.ReportMetric(simT, "sim-sec")
	b.ReportMetric(aggr, "aggr-sec")
	b.ReportMetric(saved, "saved-sec")
}

// BenchmarkAblationOverlap quantifies the overlapped aggregate: for each
// comm-buffer size, the same WordCount runs with the default nonblocking
// double-buffered exchange and with SerialAggregate (the paper's blocking
// design). Compare sim-sec between the overlap= pairs; saved-sec reports
// the per-rank sum of hidden communication.
func BenchmarkAblationOverlap(b *testing.B) {
	plat := mimir.Comet()
	for _, kb := range []int{16, 64, 256} {
		for _, serial := range []bool{false, true} {
			name := fmt.Sprintf("commbuf=%dKiB/overlap=%v", kb, !serial)
			b.Run(name, func(b *testing.B) {
				ablationWCOn(b, plat, workloads.Uniform, 1<<20, func(c *mimir.Config) {
					c.CommBuf = kb << 10
					c.SerialAggregate = serial
				})
			})
		}
	}
}

// BenchmarkAblationCommBuf sweeps the send/receive buffer size: larger
// buffers mean fewer, bigger Alltoallv rounds (less latency, more memory) —
// the trade-off behind Mimir's interleaved aggregate.
func BenchmarkAblationCommBuf(b *testing.B) {
	for _, kb := range []int{8, 32, 64, 256} {
		b.Run(fmt.Sprintf("commbuf=%dKiB", kb), func(b *testing.B) {
			ablationWC(b, workloads.Uniform, 1<<20, func(c *mimir.Config) {
				c.CommBuf = kb << 10
			})
		})
	}
}

// BenchmarkAblationPageSize sweeps the container page size: smaller pages
// track the live data more tightly (lower peak) at a higher allocation
// rate.
func BenchmarkAblationPageSize(b *testing.B) {
	for _, kb := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("page=%dKiB", kb), func(b *testing.B) {
			ablationWC(b, workloads.Uniform, 1<<20, func(c *mimir.Config) {
				c.PageSize = kb << 10
			})
		})
	}
}

// BenchmarkAblationCombinerDrain compares the paper's delayed KV compression
// (aggregate deferred until the whole map output is compressed — its
// acknowledged shortcoming) against the streaming variant added in this
// implementation (CombinerBudget), on skew-free data where the bucket grows
// largest.
func BenchmarkAblationCombinerDrain(b *testing.B) {
	cases := []struct {
		name   string
		budget int64
	}{
		{"delayed", 0},
		{"stream=256KiB", 256 << 10},
		{"stream=64KiB", 64 << 10},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			budget := c.budget
			ablationWC(b, workloads.Wikipedia, 1<<20, func(jc *mimir.Config) {
				jc.Combiner = workloads.WordCountCombine
				jc.CombinerBudget = budget
			})
		})
	}
}

// BenchmarkAblationHintEncoding isolates the KV-hint's effect on an
// end-to-end job (bytes moved, memory held).
func BenchmarkAblationHintEncoding(b *testing.B) {
	b.Run("varlen", func(b *testing.B) {
		ablationWC(b, workloads.Wikipedia, 1<<20, nil)
	})
	b.Run("hinted", func(b *testing.B) {
		ablationWC(b, workloads.Wikipedia, 1<<20, func(c *mimir.Config) {
			c.Hint = workloads.WCHint()
		})
	})
}
