package mimir_test

// Ablation benchmarks for the design choices called out in DESIGN.md:
// the communication-buffer size behind the interleaved aggregate, the page
// granularity of the dynamic containers, and the delayed-vs-streaming KV
// compression drain. Each reports peak node memory and simulated job time
// as custom metrics alongside the usual ns/op.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"mimir"
	"mimir/internal/mrmpi"
	"mimir/internal/workloads"
)

// ablationWC runs one in-memory WordCount and reports peak memory and
// simulated seconds.
func ablationWC(b *testing.B, dist workloads.Distribution, bytes int64,
	cfg func(*mimir.Config)) {
	b.ReportAllocs()
	var peak int64
	var simT float64
	for i := 0; i < b.N; i++ {
		const p = 8
		w := mimir.NewWorld(p)
		arena := mimir.NewArena(0)
		err := w.Run(func(c *mimir.Comm) error {
			jc := mimir.Config{Arena: arena}
			if cfg != nil {
				cfg(&jc)
			}
			job := mimir.NewJob(c, jc)
			input := workloads.TextInput(nil, c.Clock(), dist, 42, bytes, c.Rank(), p)
			out, err := job.Run(input, workloads.WordCountMap, workloads.WordCountReduce)
			if err != nil {
				return err
			}
			out.Free()
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		peak = arena.Peak()
		simT = w.MaxTime()
	}
	b.ReportMetric(float64(peak), "peak-bytes")
	b.ReportMetric(simT, "sim-sec")
}

// ablationWCOn is ablationWC with a platform's calibrated costs, so the
// simulated time includes real compute and network charges — required for
// the overlap ablation, where the win is hiding one behind the other.
func ablationWCOn(b *testing.B, plat *mimir.Platform, dist workloads.Distribution,
	bytes int64, cfg func(*mimir.Config)) {
	b.ReportAllocs()
	var peak int64
	var simT, aggr, saved float64
	for i := 0; i < b.N; i++ {
		const p = 8
		w := mimir.NewWorldOn(plat, p)
		arena := mimir.NewArena(0)
		var mu sync.Mutex
		aggr, saved = 0, 0
		err := w.Run(func(c *mimir.Comm) error {
			jc := mimir.Config{Arena: arena, Costs: plat.Costs()}
			if cfg != nil {
				cfg(&jc)
			}
			job := mimir.NewJob(c, jc)
			input := workloads.TextInput(nil, c.Clock(), dist, 42, bytes, c.Rank(), p)
			out, err := job.Run(input, workloads.WordCountMap, workloads.WordCountReduce)
			if err != nil {
				return err
			}
			mu.Lock()
			aggr += out.Stats.Phases.Aggregate
			saved += out.Stats.OverlapSavedSec
			mu.Unlock()
			out.Free()
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		peak = arena.Peak()
		simT = w.MaxTime()
	}
	b.ReportMetric(float64(peak), "peak-bytes")
	b.ReportMetric(simT, "sim-sec")
	b.ReportMetric(aggr, "aggr-sec")
	b.ReportMetric(saved, "saved-sec")
}

// BenchmarkAblationOverlap quantifies the overlapped aggregate: for each
// comm-buffer size, the same WordCount runs with the default nonblocking
// double-buffered exchange and with SerialAggregate (the paper's blocking
// design). Compare sim-sec between the overlap= pairs; saved-sec reports
// the per-rank sum of hidden communication.
func BenchmarkAblationOverlap(b *testing.B) {
	plat := mimir.Comet()
	for _, kb := range []int{16, 64, 256} {
		for _, serial := range []bool{false, true} {
			name := fmt.Sprintf("commbuf=%dKiB/overlap=%v", kb, !serial)
			b.Run(name, func(b *testing.B) {
				ablationWCOn(b, plat, workloads.Uniform, 1<<20, func(c *mimir.Config) {
					c.CommBuf = kb << 10
					c.SerialAggregate = serial
				})
			})
		}
	}
}

// BenchmarkAblationCommBuf sweeps the send/receive buffer size: larger
// buffers mean fewer, bigger Alltoallv rounds (less latency, more memory) —
// the trade-off behind Mimir's interleaved aggregate.
func BenchmarkAblationCommBuf(b *testing.B) {
	for _, kb := range []int{8, 32, 64, 256} {
		b.Run(fmt.Sprintf("commbuf=%dKiB", kb), func(b *testing.B) {
			ablationWC(b, workloads.Uniform, 1<<20, func(c *mimir.Config) {
				c.CommBuf = kb << 10
			})
		})
	}
}

// BenchmarkAblationPageSize sweeps the container page size: smaller pages
// track the live data more tightly (lower peak) at a higher allocation
// rate.
func BenchmarkAblationPageSize(b *testing.B) {
	for _, kb := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("page=%dKiB", kb), func(b *testing.B) {
			ablationWC(b, workloads.Uniform, 1<<20, func(c *mimir.Config) {
				c.PageSize = kb << 10
			})
		})
	}
}

// BenchmarkAblationCombinerDrain compares the paper's delayed KV compression
// (aggregate deferred until the whole map output is compressed — its
// acknowledged shortcoming) against the streaming variant added in this
// implementation (CombinerBudget), on skew-free data where the bucket grows
// largest.
func BenchmarkAblationCombinerDrain(b *testing.B) {
	cases := []struct {
		name   string
		budget int64
	}{
		{"delayed", 0},
		{"stream=256KiB", 256 << 10},
		{"stream=64KiB", 64 << 10},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			budget := c.budget
			ablationWC(b, workloads.Wikipedia, 1<<20, func(jc *mimir.Config) {
				jc.Combiner = workloads.WordCountCombine
				jc.CombinerBudget = budget
			})
		})
	}
}

// spillVariant is one engine/policy pair of the out-of-core ablation.
type spillVariant struct {
	name   string
	mimirP mimir.OutOfCore // used when mrmpiM < 0
	mrmpiM mrmpi.Mode      // -1 selects the Mimir engine
}

var spillVariants = []spillVariant{
	{"mimir/spill-when-needed", mimir.SpillWhenNeeded, -1},
	{"mimir/spill-always", mimir.SpillAlways, -1},
	{"mrmpi/spill-when-needed", 0, mrmpi.SpillWhenNeeded},
	{"mrmpi/spill-always", 0, mrmpi.SpillAlways},
	{"mrmpi/error", 0, mrmpi.ErrorIfExceeds},
}

// runSpillWC runs one WordCount on a bounded node arena shared by 4 ranks
// and returns the node peak, simulated seconds, and out-of-core write
// traffic. Costs and spill-FS characteristics are Comet's. Each framework
// runs at its own design point, as in the paper: Mimir with fine-grained
// dynamic pages (8 KiB), MR-MPI with the largest static page the node
// supports (64 KiB — its seven-page working set then fills 1.75 of the
// 2 MiB arena), mirroring the paper's best-performing "MR-MPI (512M)".
func runSpillWC(tb testing.TB, v spillVariant, totalBytes, capacity int64) (peak int64, simT float64, spilled int64, err error) {
	tb.Helper()
	const p = 4
	plat := mimir.Comet()
	w := mimir.NewWorldOn(plat, p)
	arena := mimir.NewArena(capacity)
	spillFS := mimir.NewFS(plat.SpillFS)
	group := mimir.NewSpillGroup()
	var mu sync.Mutex
	err = w.Run(func(c *mimir.Comm) error {
		var eng workloads.Engine
		if v.mrmpiM < 0 {
			me := workloads.NewMimirEngine(c, arena)
			me.PageSize = 8 << 10
			me.CommBuf = 16 << 10
			me.OutOfCore = v.mimirP
			me.SpillFS = spillFS
			me.SpillGroup = group
			me.Costs = plat.Costs()
			eng = me
		} else {
			mre := workloads.NewMRMPIEngine(c, arena, spillFS)
			mre.PageSize = 64 << 10
			mre.Mode = v.mrmpiM
			mre.Costs = plat.Costs()
			eng = mre
		}
		res, err := workloads.RunWordCount(eng, nil, workloads.WCConfig{
			Dist: workloads.Uniform, TotalBytes: totalBytes, Seed: 42,
		}, workloads.StageOpts{})
		if err != nil {
			return err
		}
		mu.Lock()
		spilled += res.Stats.SpilledBytes
		mu.Unlock()
		return nil
	})
	return arena.Peak(), w.MaxTime(), spilled, err
}

// spillLadder crosses the 2 MiB ("2 GB") node arena: the first point runs
// in memory for every mode (including MR-MPI's error mode), the rest are
// ever deeper out of core.
var spillLadder = []struct {
	name  string
	bytes int64
}{
	{"128K", 128 << 10},
	{"1M", 1 << 20},
	{"4M", 4 << 20},
}

const spillArena = 2 << 20

// BenchmarkAblationSpill compares Mimir's page-eviction subsystem against
// MR-MPI's three out-of-core modes on the same bounded node arena as the
// dataset crosses the memory wall. Compare peak-bytes and sim-sec between
// the engine pairs at each size; spilled-bytes shows the write traffic each
// policy generates. MR-MPI's error mode skips the sizes it cannot run.
func BenchmarkAblationSpill(b *testing.B) {
	for _, pt := range spillLadder {
		for _, v := range spillVariants {
			b.Run(fmt.Sprintf("size=%s/%s", pt.name, v.name), func(b *testing.B) {
				b.ReportAllocs()
				var peak, spilled int64
				var simT float64
				for i := 0; i < b.N; i++ {
					var err error
					peak, simT, spilled, err = runSpillWC(b, v, pt.bytes, spillArena)
					if err != nil {
						if v.mrmpiM == mrmpi.ErrorIfExceeds || v.mimirP == mimir.Error {
							b.Skipf("OOM at %s (expected for the error policy): %v", pt.name, err)
						}
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(peak), "peak-bytes")
				b.ReportMetric(simT, "sim-sec")
				b.ReportMetric(float64(spilled), "spilled-bytes")
			})
		}
	}
}

// TestSpillPeakBelowMRMPI pins the ablation's headline: at every ladder
// point, Mimir's spill-when-needed completes with a node peak no higher
// than MR-MPI's spill-when-needed — the dynamic containers plus watermark
// eviction never hold more than MR-MPI's static pages.
func TestSpillPeakBelowMRMPI(t *testing.T) {
	for _, pt := range spillLadder {
		mPeak, _, _, err := runSpillWC(t, spillVariants[0], pt.bytes, spillArena)
		if err != nil {
			t.Fatalf("%s: mimir spill-when-needed: %v", pt.name, err)
		}
		bPeak, _, _, err := runSpillWC(t, spillVariants[2], pt.bytes, spillArena)
		if err != nil {
			t.Fatalf("%s: mrmpi spill-when-needed: %v", pt.name, err)
		}
		if mPeak > bPeak {
			t.Errorf("%s: Mimir spill peak %d exceeds MR-MPI %d", pt.name, mPeak, bPeak)
		}
	}
}

// workersPoint is one point of the worker-pool ablation. All values are
// simulated seconds from the simtime max-rule, so they are identical on any
// host regardless of its core count — which is why the committed baseline in
// BENCH_workers.json can double as a regression fixture.
type workersPoint struct {
	Workers int `json:"workers"`
	// MapSec is the max over ranks of the simulated map-phase time.
	MapSec float64 `json:"map_sim_sec"`
	// SimSec is the simulated job time (max over ranks, all phases).
	SimSec float64 `json:"total_sim_sec"`
	// EffMap is the worst rank's map parallel efficiency, sum/(W*max).
	EffMap float64 `json:"par_eff_map"`
}

// runWorkersWC runs the map-heavy uniform WordCount (1 MiB over 8 ranks with
// Comet's calibrated costs) at one pool size and returns the simulated
// figures.
func runWorkersWC(tb testing.TB, workers int) workersPoint {
	tb.Helper()
	const p = 8
	plat := mimir.Comet()
	w := mimir.NewWorldOn(plat, p)
	arena := mimir.NewArena(0)
	var mu sync.Mutex
	pt := workersPoint{Workers: workers}
	err := w.Run(func(c *mimir.Comm) error {
		jc := mimir.Config{Arena: arena, Costs: plat.Costs(), Workers: workers}
		job := mimir.NewJob(c, jc)
		input := workloads.TextInput(nil, c.Clock(), workloads.Uniform, 42, 1<<20, c.Rank(), p)
		out, err := job.Run(input, workloads.WordCountMap, workloads.WordCountReduce)
		if err != nil {
			return err
		}
		mu.Lock()
		if out.Stats.Phases.Map > pt.MapSec {
			pt.MapSec = out.Stats.Phases.Map
		}
		if e := out.Stats.ParEff.Map; e > 0 && (pt.EffMap == 0 || e < pt.EffMap) {
			pt.EffMap = e
		}
		mu.Unlock()
		out.Free()
		return nil
	})
	if err != nil {
		tb.Fatal(err)
	}
	pt.SimSec = w.MaxTime()
	return pt
}

// BenchmarkAblationWorkers sweeps the per-rank worker pool on the map-heavy
// WordCount. The speedup lives in map-sim-sec (the simtime max-rule charges
// the slowest worker's share); ns/op shows the host-side cost of the pool,
// which on a single-core host stays flat — the simulated figures are the
// machine-independent result.
func BenchmarkAblationWorkers(b *testing.B) {
	for _, wk := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", wk), func(b *testing.B) {
			b.ReportAllocs()
			var pt workersPoint
			for i := 0; i < b.N; i++ {
				pt = runWorkersWC(b, wk)
			}
			b.ReportMetric(pt.MapSec, "map-sim-sec")
			b.ReportMetric(pt.SimSec, "sim-sec")
			b.ReportMetric(pt.EffMap, "par-eff-map")
		})
	}
}

// benchWorkersBaseline is the committed shape of BENCH_workers.json.
type benchWorkersBaseline struct {
	Benchmark   string         `json:"benchmark"`
	Workload    string         `json:"workload"`
	Note        string         `json:"note"`
	Points      []workersPoint `json:"points"`
	MapSpeedup8 float64        `json:"map_speedup_8_workers"`
}

// benchWorkersRun executes the sweep once and packages it as the baseline.
func benchWorkersRun(tb testing.TB) benchWorkersBaseline {
	base := benchWorkersBaseline{
		Benchmark: "BenchmarkAblationWorkers",
		Workload:  "WordCount uniform, 1 MiB over 8 ranks, Comet costs",
		Note: "All figures are simulated seconds under the simtime max-rule " +
			"(charge the slowest worker per fan-out), so they are byte-identical " +
			"on any host; wall-clock parallelism additionally needs GOMAXPROCS >= workers.",
	}
	for _, wk := range []int{1, 2, 4, 8} {
		base.Points = append(base.Points, runWorkersWC(tb, wk))
	}
	base.MapSpeedup8 = base.Points[0].MapSec / base.Points[3].MapSec
	return base
}

// TestWorkersBenchBaseline regenerates the sweep and holds it against the
// committed BENCH_workers.json, pinning both the >=2x map-phase speedup at 8
// workers and the exact simulated figures (they are machine-independent, so
// any drift is a real accounting change). Regenerate the file with:
//
//	MIMIR_BENCH_OUT=BENCH_workers.json go test -run TestWorkersBenchBaseline .
func TestWorkersBenchBaseline(t *testing.T) {
	got := benchWorkersRun(t)
	if got.MapSpeedup8 < 2 {
		t.Errorf("map-phase speedup at 8 workers = %.2fx, want >= 2x", got.MapSpeedup8)
	}
	if out := os.Getenv("MIMIR_BENCH_OUT"); out != "" {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (GOMAXPROCS=%d)", out, runtime.GOMAXPROCS(0))
		return
	}
	raw, err := os.ReadFile("BENCH_workers.json")
	if err != nil {
		t.Fatalf("read baseline (regenerate with MIMIR_BENCH_OUT): %v", err)
	}
	var want benchWorkersBaseline
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse BENCH_workers.json: %v", err)
	}
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("sweep drifted from committed BENCH_workers.json\n got: %s\nwant: %s", gotJSON, wantJSON)
	}
}

// BenchmarkAblationHintEncoding isolates the KV-hint's effect on an
// end-to-end job (bytes moved, memory held).
func BenchmarkAblationHintEncoding(b *testing.B) {
	b.Run("varlen", func(b *testing.B) {
		ablationWC(b, workloads.Wikipedia, 1<<20, nil)
	})
	b.Run("hinted", func(b *testing.B) {
		ablationWC(b, workloads.Wikipedia, 1<<20, func(c *mimir.Config) {
			c.Hint = workloads.WCHint()
		})
	})
}
