package driver

import (
	"bytes"
	"fmt"
	"sort"

	"mimir/internal/core"
	"mimir/internal/mem"
	"mimir/internal/metrics"
	"mimir/internal/mpi"
	"mimir/internal/partition"
	"mimir/internal/pfs"
	"mimir/internal/workloads"
)

// Job kinds RunJob dispatches on.
const (
	JobWordCount = "wordcount"
	JobTeraSort  = "terasort"
	JobPageRank  = "pagerank"
	JobKMeans    = "kmeans"
	JobBFS       = "bfs"
)

// JobKinds lists every kind RunJob accepts, in presentation order.
func JobKinds() []string {
	return []string{JobWordCount, JobTeraSort, JobPageRank, JobKMeans, JobBFS}
}

// JobConfig describes one distributed job of any kind. Like
// WordCountConfig, every input is regenerated per rank from the seed, so
// any two worlds of the same size and config process the same data and the
// gathered output is byte-identical whatever transport, process layout,
// worker count, or spill policy ran it.
type JobConfig struct {
	// Kind selects the job (see JobKinds; "" means wordcount).
	Kind string
	Seed uint64
	// Engine knobs, as in WordCountConfig.
	Hint, PR bool
	Workers  int
	MemBytes int64
	// PageSize / CommBuf override the engine's container page and exchange
	// buffer sizes (0 = engine defaults). Tests shrink them to create spill
	// pressure with small corpora; output bytes are identical either way.
	PageSize, CommBuf int
	// Partitioner names the key→rank strategy. TeraSort always sorts on the
	// sampling partitioner and the graph jobs always keep vertex state on
	// the hash, whatever is named here; k-means honors it fully.
	Partitioner string
	// OutOfCore selects the engines' memory-pressure policy. The spill
	// policies get a per-process simulated PFS as the spill target, so
	// multi-round jobs exercise evict/restore across round boundaries.
	OutOfCore core.OutOfCore
	// Checkpoint is the job's base checkpoint; multi-round jobs write one
	// checkpoint per round under "<Name>.r<N>" (see workloads.MultiRound).
	Checkpoint *core.Checkpoint
	// CheckpointEvery thins the round-checkpoint cadence (multi-round jobs).
	CheckpointEvery int
	// OnRound, when non-nil, runs on every rank at each round boundary of a
	// multi-round job — the job service's mid-iteration crash hook.
	OnRound func(rank, round int) error

	// WordCount corpus (see WordCountConfig).
	Dist       workloads.Distribution
	TotalBytes int64
	CPS        bool
	UseZipf    bool
	ZipfSkew   float64
	Contention float64

	// TeraSort: total rows (default 1<<13).
	Rows int64
	// Graph jobs: 2^Scale vertices (default 8), EdgeFactor edges per vertex.
	Scale      int
	EdgeFactor int
	// k-means: total points (default 1<<12) and geometry.
	Points  int64
	K, Dims int
	// MaxRounds caps iterative jobs (0 = workload default).
	MaxRounds int
}

func (c *JobConfig) normalize() {
	if c.Kind == "" {
		c.Kind = JobWordCount
	}
	if c.Rows <= 0 {
		c.Rows = 1 << 13
	}
	if c.Scale <= 0 {
		c.Scale = 8
	}
	if c.Points <= 0 {
		c.Points = 1 << 12
	}
}

// RunJob runs cfg on every rank of world and gathers the canonical result
// at rank 0, exactly like WordCount: the returned buffer is non-nil only on
// the process hosting rank 0 and is byte-identical for a given (cfg, world
// size). Canonical formats, one line per record, lexically sorted:
//
//	terasort: "<key hex> <payload hex>"  — one line per row; the lexical
//	          sort of fixed-width hex equals key order, so the output is
//	          the globally sorted row sequence
//	pagerank: "<vertex %016x> <score>"   — score in fixed-point units
//	kmeans:   "<cluster %04d> <coords> n=<count>" (rank 0 only: the
//	          all-gathered table is global)
//	bfs:      "<vertex %016x> <parent %016x>" over visited vertices
//	wordcount: as WordCount
func RunJob(world *mpi.World, cfg JobConfig, sum *metrics.Summary) ([]byte, error) {
	cfg.normalize()
	if cfg.Kind == JobWordCount {
		return WordCount(world, WordCountConfig{
			Dist: cfg.Dist, TotalBytes: cfg.TotalBytes, Seed: cfg.Seed,
			Hint: cfg.Hint, PR: cfg.PR, CPS: cfg.CPS, Workers: cfg.Workers,
			MemBytes: cfg.MemBytes, Checkpoint: cfg.Checkpoint,
			UseZipf: cfg.UseZipf, ZipfSkew: cfg.ZipfSkew, Contention: cfg.Contention,
			Partitioner: cfg.Partitioner,
		}, sum)
	}
	part, err := partition.ByName(cfg.Partitioner)
	if err != nil {
		return nil, err
	}
	// The spill policies need a spill target; each process simulates its
	// own PFS (what pages it writes never affects what the job computes).
	var spillFS *pfs.FS
	if cfg.OutOfCore != core.Error {
		spillFS = pfs.New(pfs.Config{Bandwidth: 1 << 30, Latency: 1e-4})
	}
	var out []byte
	err = world.Run(func(c *mpi.Comm) error {
		eng := workloads.NewMimirEngine(c, mem.NewArena(cfg.MemBytes))
		eng.PageSize = cfg.PageSize
		eng.CommBuf = cfg.CommBuf
		eng.Workers = cfg.Workers
		eng.Partitioner = part
		eng.OutOfCore = cfg.OutOfCore
		eng.SpillFS = spillFS
		mr := workloads.MultiRound{
			Checkpoint:      cfg.Checkpoint,
			CheckpointEvery: cfg.CheckpointEvery,
		}
		if cfg.OnRound != nil {
			rank := c.Rank()
			mr.OnRound = func(round int) error { return cfg.OnRound(rank, round) }
		}
		var mine bytes.Buffer
		var stats workloads.StageStats
		switch cfg.Kind {
		case JobTeraSort:
			tcfg := workloads.TeraSortConfig{Rows: cfg.Rows, Seed: cfg.Seed}
			opts := workloads.StageOpts{}
			if cfg.Hint {
				opts.Hint = workloads.TeraSortHint(tcfg)
			}
			res, err := workloads.RunTeraSort(eng, nil, tcfg, opts, func(k, v []byte) error {
				fmt.Fprintf(&mine, "%x %x\n", k, v)
				return nil
			})
			if err != nil {
				return err
			}
			stats = res.Stats
		case JobPageRank:
			pcfg := workloads.PageRankConfig{
				Scale: cfg.Scale, EdgeFactor: cfg.EdgeFactor,
				Seed: cfg.Seed, MaxRounds: cfg.MaxRounds,
			}
			opts := workloads.StageOpts{}
			if cfg.Hint {
				opts.Hint = workloads.PageRankHint()
			}
			if cfg.PR {
				opts.PartialReduce = workloads.Int64VecAdd
			}
			res, err := workloads.RunPageRank(eng, nil, pcfg, opts, mr, func(v uint64, s int64) error {
				fmt.Fprintf(&mine, "%016x %d\n", v, s)
				return nil
			})
			if err != nil {
				return err
			}
			stats = res.Stats
		case JobKMeans:
			kcfg := workloads.KMeansConfig{
				Points: cfg.Points, K: cfg.K, Dims: cfg.Dims,
				Seed: cfg.Seed, MaxRounds: cfg.MaxRounds,
			}
			opts := workloads.StageOpts{}
			if cfg.Hint {
				opts.Hint = workloads.KMeansHint(kcfg)
			}
			if cfg.PR {
				opts.PartialReduce = workloads.Int64VecAdd
			}
			res, err := workloads.RunKMeans(eng, nil, kcfg, opts, mr)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				for ci, cent := range res.Centroids {
					fmt.Fprintf(&mine, "%04d", ci)
					for _, x := range cent {
						fmt.Fprintf(&mine, " %d", x)
					}
					fmt.Fprintf(&mine, " n=%d\n", res.Counts[ci])
				}
			}
			stats = res.Stats
		case JobBFS:
			bcfg := workloads.BFSConfig{
				Scale: cfg.Scale, EdgeFactor: cfg.EdgeFactor,
				Seed: cfg.Seed, Validate: true,
			}
			opts := workloads.StageOpts{}
			if cfg.Hint {
				opts.Hint = workloads.BFSHint()
			}
			bmr := mr
			bmr.MaxRounds = cfg.MaxRounds
			res, err := workloads.RunBFS(eng, nil, bcfg, opts, bmr)
			if err != nil {
				return err
			}
			verts := make([]uint64, 0, len(res.Parents))
			for v := range res.Parents {
				verts = append(verts, v)
			}
			sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })
			for _, v := range verts {
				fmt.Fprintf(&mine, "%016x %016x\n", v, res.Parents[v])
			}
			stats = res.Stats
		default:
			return fmt.Errorf("driver: unknown job kind %q", cfg.Kind)
		}
		if sum != nil {
			stats.Record(sum)
			sum.Add("rank-sec", c.Clock().Now())
		}
		gathered, err := c.Gatherv(mine.Bytes(), 0)
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			return nil
		}
		out = canonicalize(gathered)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if sum != nil {
		recordFaultStats(world, sum)
	}
	if out == nil && len(world.LocalRanks()) > 0 && world.LocalRanks()[0] == 0 {
		out = []byte{}
	}
	return out, nil
}

// canonicalize splits gathered per-rank buffers into lines and sorts them
// into the one canonical global order.
func canonicalize(gathered [][]byte) []byte {
	var lines []string
	for _, buf := range gathered {
		for _, l := range bytes.Split(buf, []byte{'\n'}) {
			if len(l) > 0 {
				lines = append(lines, string(l))
			}
		}
	}
	sort.Strings(lines)
	var all bytes.Buffer
	for _, l := range lines {
		all.WriteString(l)
		all.WriteByte('\n')
	}
	return all.Bytes()
}

// recordFaultStats appends the world's fault-recovery counters to sum:
// a run that needed reconnects still produced byte-identical output, and
// these counters are the proof it wasn't free.
func recordFaultStats(world *mpi.World, sum *metrics.Summary) {
	if fs, ok := world.FaultStats(); ok {
		sum.Add("net-link-failures", float64(fs.LinkFailures))
		sum.Add("net-reconnects", float64(fs.Reconnects))
		sum.Add("net-dial-retries", float64(fs.DialRetries))
		sum.Add("net-replayed-frames", float64(fs.ReplayedFrames))
		sum.Add("net-replayed-bytes", float64(fs.ReplayedBytes))
	}
}
