package driver

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"mimir/internal/core"
	"mimir/internal/mpi"
	"mimir/internal/pfs"
	"mimir/internal/simtime"
	"mimir/internal/workloads"
)

func testWorld(size int) *mpi.World {
	return mpi.NewWorld(mpi.Config{Size: size, Net: simtime.NetworkModel{Alpha: 1e-7, Beta: 1e9}})
}

// TestRunJobSmoke: every kind produces non-empty, reproducible canonical
// output with the expected line count.
func TestRunJobSmoke(t *testing.T) {
	cases := []struct {
		cfg   JobConfig
		lines int
	}{
		{JobConfig{Kind: JobTeraSort, Rows: 500, Seed: 1, Hint: true}, 500},
		{JobConfig{Kind: JobPageRank, Scale: 7, Seed: 2, Hint: true, PR: true}, 128},
		{JobConfig{Kind: JobKMeans, Points: 600, K: 5, Dims: 2, Seed: 3, Hint: true, PR: true}, 5},
		{JobConfig{Kind: JobBFS, Scale: 7, Seed: 4, Hint: true}, -1},
		{JobConfig{Kind: JobWordCount, TotalBytes: 8 << 10, Seed: 5, Hint: true}, -1},
	}
	for _, tc := range cases {
		t.Run(tc.cfg.Kind, func(t *testing.T) {
			out, err := RunJob(testWorld(4), tc.cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(out) == 0 {
				t.Fatal("empty output")
			}
			n := strings.Count(string(out), "\n")
			if tc.lines >= 0 && n != tc.lines {
				t.Fatalf("%d output lines, want %d", n, tc.lines)
			}
			again, err := RunJob(testWorld(4), tc.cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out, again) {
				t.Fatal("output not reproducible")
			}
		})
	}
}

// TestRunJobUnknownKind rejects bad kinds cleanly.
func TestRunJobUnknownKind(t *testing.T) {
	_, err := RunJob(testWorld(2), JobConfig{Kind: "sort-of"}, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown job kind") {
		t.Fatalf("got %v", err)
	}
}

// TestPageRankRoundCheckpointRepartition is the mid-iteration elasticity
// check: a checkpointed PageRank writes one checkpoint per round (cadence
// 2: odd rounds recompute); core.RepartitionCheckpoint then rewrites every
// round's checkpoint for a smaller world, and a run at the new size
// restores the even rounds, recomputes the odd ones at the new ownership,
// and still produces byte-identical canonical output — per-vertex scores
// are independent of which rank hosts them.
func TestPageRankRoundCheckpointRepartition(t *testing.T) {
	fs := pfs.New(pfs.Config{Bandwidth: 1 << 30, Latency: 1e-4})
	base := JobConfig{
		Kind: JobPageRank, Scale: 7, Seed: 9, Hint: true, PR: true,
		Checkpoint:      &core.Checkpoint{FS: fs, Name: "prjob"},
		CheckpointEvery: 2,
	}
	const oldSize, newSize = 4, 3
	want, err := RunJob(testWorld(oldSize), base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("empty output")
	}

	// Repartition every checkpoint the run left behind: the adjacency stage
	// plus each checkpointed round.
	repartitioned := 0
	names := []string{"prjob.adj"}
	for r := 0; r < 64; r++ {
		names = append(names, fmt.Sprintf("prjob.r%d", r))
	}
	for _, name := range names {
		ck := core.Checkpoint{FS: fs, Name: name}
		if !ck.Exists(oldSize) {
			continue
		}
		if _, err := core.RepartitionCheckpoint(fs, nil, ck, workloads.PageRankHint(),
			oldSize, newSize, nil); err != nil {
			t.Fatalf("repartition %s: %v", name, err)
		}
		repartitioned++
	}
	if repartitioned < 3 {
		t.Fatalf("only %d checkpoints found; the cadence should have written several", repartitioned)
	}

	got, err := RunJob(testWorld(newSize), base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("restored %d-rank run diverges from the original %d-rank run (%d vs %d bytes)",
			newSize, oldSize, len(got), len(want))
	}
}

// TestRunJobOnRound: the round hook fires on every rank each round and its
// error fails the job.
func TestRunJobOnRound(t *testing.T) {
	fired := map[string]bool{}
	cfg := JobConfig{
		Kind: JobKMeans, Points: 400, K: 3, Dims: 2, Seed: 1,
		OnRound: func(rank, round int) error {
			fired[fmt.Sprintf("%d.%d", rank, round)] = true
			return nil
		},
	}
	if _, err := RunJob(testWorld(2), cfg, nil); err != nil {
		t.Fatal(err)
	}
	if !fired["0.0"] || !fired["1.0"] || !fired["0.1"] {
		t.Fatalf("round hook coverage: %v", fired)
	}
	boom := cfg
	boom.OnRound = func(rank, round int) error {
		if rank == 1 && round == 1 {
			return fmt.Errorf("scripted round failure")
		}
		return nil
	}
	if _, err := RunJob(testWorld(2), boom, nil); err == nil ||
		!strings.Contains(err.Error(), "scripted round failure") {
		t.Fatalf("got %v", err)
	}
}
