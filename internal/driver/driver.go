// Package driver runs complete distributed jobs against a world, whatever
// transport backs it — the same code path serves the in-process world and
// the multi-process TCP world, which is what makes the two directly
// comparable: one job definition, one deterministic corpus, byte-identical
// output.
package driver

import (
	"bytes"
	"fmt"

	"mimir/internal/core"
	"mimir/internal/mem"
	"mimir/internal/metrics"
	"mimir/internal/mpi"
	"mimir/internal/partition"
	"mimir/internal/workloads"
)

// WordCountConfig describes one distributed WordCount run over the
// deterministic synthetic corpus (workloads.TextInput): every rank
// regenerates its own share from (seed, rank, size), so no input
// distribution step is needed and any two worlds of the same size and seed
// process the same bytes.
type WordCountConfig struct {
	Dist       workloads.Distribution
	TotalBytes int64
	Seed       uint64
	// Optimizations (see workloads.StageOpts).
	Hint, PR, CPS bool
	// Workers is each rank's worker-pool size (see core.Config.Workers;
	// 0 defaults to GOMAXPROCS, 1 is serial). Output bytes are identical
	// either way.
	Workers int
	// MemBytes caps each rank's engine arena (0 = unlimited). The job
	// service sets it to the job's admitted memory floor divided by the
	// world size, so a job that outgrows its reservation fails itself
	// instead of eating into memory promised to other jobs.
	MemBytes int64
	// Checkpoint enables post-shuffle checkpoint/restore for the stage
	// (see core.Config.Checkpoint). A restored run produces output
	// byte-identical to a fresh one at the same world size; the elastic job
	// service repartitions checkpoints when the world resizes
	// (core.RepartitionCheckpoint) so restore works across sizes too.
	Checkpoint *core.Checkpoint
	// UseZipf switches the corpus from Dist to the parameterized zipf
	// generator with ZipfSkew and Contention (workloads.ZipfTextInput).
	UseZipf    bool
	ZipfSkew   float64
	Contention float64
	// Partitioner selects the key→rank strategy by name ("" or "hash" =
	// FNV-1a, "sample" = sampled weighted ranges; see partition.ByName).
	Partitioner string
}

// WordCount runs cfg on every rank of world and gathers the result at rank
// 0: one "word count\n" line per distinct word, sorted by word. The returned
// buffer is non-nil only on the process hosting rank 0 and is byte-identical
// for a given (cfg, world size) regardless of transport or process layout.
// When sum is non-nil, every local rank records its stage stats and total
// time into it (the per-rank distribution view).
func WordCount(world *mpi.World, cfg WordCountConfig, sum *metrics.Summary) ([]byte, error) {
	part, err := partition.ByName(cfg.Partitioner)
	if err != nil {
		return nil, err
	}
	var out []byte
	err = world.Run(func(c *mpi.Comm) error {
		eng := workloads.NewMimirEngine(c, mem.NewArena(cfg.MemBytes))
		eng.Workers = cfg.Workers
		eng.Partitioner = part
		opts := workloads.StageOpts{Checkpoint: cfg.Checkpoint}
		if cfg.Hint {
			opts.Hint = workloads.WCHint()
		}
		if cfg.PR {
			opts.PartialReduce = workloads.WordCountCombine
		}
		if cfg.CPS {
			opts.Combiner = workloads.WordCountCombine
		}
		var input core.Input
		if cfg.UseZipf {
			input = workloads.ZipfTextInput(nil, c.Clock(),
				workloads.ZipfConfig{Skew: cfg.ZipfSkew, Contention: cfg.Contention},
				cfg.Seed, cfg.TotalBytes, c.Rank(), c.Size())
		} else {
			input = workloads.TextInput(nil, c.Clock(), cfg.Dist, cfg.Seed, cfg.TotalBytes, c.Rank(), c.Size())
		}
		var mine bytes.Buffer
		stats, err := eng.RunStage(opts, input, workloads.WordCountMap, workloads.WordCountReduce,
			func(k, v []byte) error {
				fmt.Fprintf(&mine, "%s %d\n", k, core.BytesUint64(v))
				return nil
			})
		if err != nil {
			return err
		}
		if sum != nil {
			stats.Record(sum)
			sum.Add("rank-sec", c.Clock().Now())
		}
		gathered, err := c.Gatherv(mine.Bytes(), 0)
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			return nil
		}
		// Ranks hold disjoint partitioned key sets in engine order;
		// one global sort by word makes the output canonical.
		out = canonicalize(gathered)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if sum != nil {
		recordFaultStats(world, sum)
	}
	if out == nil && len(world.LocalRanks()) > 0 && world.LocalRanks()[0] == 0 {
		out = []byte{}
	}
	return out, nil
}
