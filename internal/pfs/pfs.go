// Package pfs simulates the globally shared parallel file system of a
// supercomputer (Lustre on Comet, GPFS behind 1:128 I/O forwarding nodes on
// Mira). Supercomputer nodes have no local disk, so both input data and
// MR-MPI's out-of-core page spills go through this file system — which is
// why spilling costs orders of magnitude more than memory and produces the
// performance cliff of Figure 1.
//
// Files are backed by process memory (this is a simulation of storage, so
// their bytes are deliberately NOT charged to any node's memory arena);
// every operation charges simulated I/O time to the calling rank's clock
// using a shared-bandwidth model.
package pfs

import (
	"fmt"
	"sync"

	"mimir/internal/simtime"
)

// Config describes the file system's performance.
type Config struct {
	// Bandwidth is the aggregate file-system bandwidth in (effective,
	// scale-calibrated) bytes per second.
	Bandwidth float64
	// Latency is the fixed per-operation cost in seconds (metadata, RPC).
	Latency float64
	// Sharers is the number of clients the aggregate bandwidth is divided
	// among: on Comet every rank of the job shares the Lustre pipes; on Mira
	// each group of 128 nodes funnels through one I/O forwarding node. The
	// experiment harness sets this to the number of ranks in the job
	// (capped by the forwarding ratio on Mira). Zero means 1.
	Sharers int
}

func (c Config) perClientSeconds(n int) float64 {
	sharers := c.Sharers
	if sharers < 1 {
		sharers = 1
	}
	if c.Bandwidth <= 0 {
		return c.Latency
	}
	return c.Latency + float64(n)*float64(sharers)/c.Bandwidth
}

// FS is a simulated parallel file system shared by all ranks.
type FS struct {
	cfg Config

	mu           sync.Mutex
	files        map[string][]byte
	bytesRead    int64
	bytesWritten int64
	ops          int64
}

// New creates an empty file system.
func New(cfg Config) *FS {
	return &FS{cfg: cfg, files: make(map[string][]byte)}
}

// Append adds data to the end of the named file (creating it if needed) and
// charges the write cost to clock.
func (fs *FS) Append(clock *simtime.Clock, name string, data []byte) {
	fs.mu.Lock()
	fs.files[name] = append(fs.files[name], data...)
	fs.bytesWritten += int64(len(data))
	fs.ops++
	fs.mu.Unlock()
	if clock != nil {
		clock.Advance(fs.cfg.perClientSeconds(len(data)), simtime.IO)
	}
}

// WriteAt overwrites len(data) bytes at offset off of the named file,
// charging the write cost to clock. The range must already exist: WriteAt
// rewrites a previously appended region in place (the spill store's dirty
// page rewrite), it does not extend the file.
func (fs *FS) WriteAt(clock *simtime.Clock, name string, off int64, data []byte) error {
	fs.mu.Lock()
	var err error
	file, ok := fs.files[name]
	switch {
	case !ok:
		err = fmt.Errorf("pfs: no such file %q", name)
	case off < 0 || off+int64(len(data)) > int64(len(file)):
		err = fmt.Errorf("pfs: write [%d,%d) out of range of %q (size %d)", off, off+int64(len(data)), name, len(file))
	default:
		copy(file[off:], data)
		fs.bytesWritten += int64(len(data))
		fs.ops++
	}
	fs.mu.Unlock()
	if err != nil {
		return err
	}
	if clock != nil {
		clock.Advance(fs.cfg.perClientSeconds(len(data)), simtime.IO)
	}
	return nil
}

// ReadAll returns a copy of the named file's contents, charging the read
// cost to clock. Reading a missing file is an error.
func (fs *FS) ReadAll(clock *simtime.Clock, name string) ([]byte, error) {
	fs.mu.Lock()
	data, ok := fs.files[name]
	if ok {
		fs.bytesRead += int64(len(data))
		fs.ops++
	}
	fs.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("pfs: no such file %q", name)
	}
	if clock != nil {
		clock.Advance(fs.cfg.perClientSeconds(len(data)), simtime.IO)
	}
	return append([]byte(nil), data...), nil
}

// ReadAt returns a copy of n bytes at offset off of the named file.
func (fs *FS) ReadAt(clock *simtime.Clock, name string, off, n int64) ([]byte, error) {
	fs.mu.Lock()
	data, ok := fs.files[name]
	if ok && off >= 0 && off+n <= int64(len(data)) {
		fs.bytesRead += n
		fs.ops++
	}
	fs.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("pfs: no such file %q", name)
	}
	if off < 0 || off+n > int64(len(data)) {
		return nil, fmt.Errorf("pfs: read [%d,%d) out of range of %q (size %d)", off, off+n, name, len(data))
	}
	if clock != nil {
		clock.Advance(fs.cfg.perClientSeconds(int(n)), simtime.IO)
	}
	return append([]byte(nil), data[off:off+n]...), nil
}

// Size returns the current size of the named file (0 if absent).
func (fs *FS) Size(name string) int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return int64(len(fs.files[name]))
}

// Remove deletes the named file; removing a missing file is a no-op.
func (fs *FS) Remove(name string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	delete(fs.files, name)
}

// ChargeRead charges clock for reading n bytes without transferring data.
// The workload generators use it to account for reading the (synthetic)
// input dataset from the parallel file system, which the paper includes in
// execution time.
func (fs *FS) ChargeRead(clock *simtime.Clock, n int64) {
	fs.mu.Lock()
	fs.bytesRead += n
	fs.ops++
	fs.mu.Unlock()
	if clock != nil {
		clock.Advance(fs.cfg.perClientSeconds(int(n)), simtime.IO)
	}
}

// Stats returns total bytes read, bytes written, and operation count.
func (fs *FS) Stats() (bytesRead, bytesWritten, ops int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.bytesRead, fs.bytesWritten, fs.ops
}
