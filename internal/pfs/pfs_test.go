package pfs

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"mimir/internal/simtime"
)

func TestAppendRead(t *testing.T) {
	fs := New(Config{Bandwidth: 1e6, Latency: 1e-3, Sharers: 1})
	c := simtime.NewClock()
	fs.Append(c, "spill.0", []byte("hello "))
	fs.Append(c, "spill.0", []byte("world"))
	got, err := fs.ReadAll(c, "spill.0")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello world" {
		t.Errorf("ReadAll = %q", got)
	}
	if fs.Size("spill.0") != 11 {
		t.Errorf("Size = %d, want 11", fs.Size("spill.0"))
	}
	r, w, ops := fs.Stats()
	if r != 11 || w != 11 || ops != 3 {
		t.Errorf("Stats = (%d,%d,%d), want (11,11,3)", r, w, ops)
	}
}

func TestReadMissing(t *testing.T) {
	fs := New(Config{})
	if _, err := fs.ReadAll(nil, "nope"); err == nil || !strings.Contains(err.Error(), "no such file") {
		t.Errorf("ReadAll(missing) = %v", err)
	}
}

func TestReadAt(t *testing.T) {
	fs := New(Config{Bandwidth: 1e9})
	c := simtime.NewClock()
	fs.Append(c, "f", []byte("0123456789"))
	got, err := fs.ReadAt(c, "f", 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("3456")) {
		t.Errorf("ReadAt = %q", got)
	}
	if _, err := fs.ReadAt(c, "f", 8, 5); err == nil {
		t.Error("out-of-range ReadAt succeeded")
	}
	if _, err := fs.ReadAt(c, "g", 0, 1); err == nil {
		t.Error("ReadAt on missing file succeeded")
	}
}

func TestWriteAt(t *testing.T) {
	fs := New(Config{Bandwidth: 1e9})
	c := simtime.NewClock()
	fs.Append(c, "f", []byte("0123456789"))
	if err := fs.WriteAt(c, "f", 3, []byte("abcd")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAll(c, "f")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "012abcd789" {
		t.Errorf("after WriteAt: %q", got)
	}
	if fs.Size("f") != 10 {
		t.Errorf("WriteAt changed size: %d", fs.Size("f"))
	}
	if err := fs.WriteAt(c, "f", 8, []byte("xyz")); err == nil {
		t.Error("out-of-range WriteAt succeeded")
	}
	if err := fs.WriteAt(c, "g", 0, []byte("x")); err == nil {
		t.Error("WriteAt on missing file succeeded")
	}
}

func TestTimeCharging(t *testing.T) {
	fs := New(Config{Bandwidth: 1000, Latency: 0.5, Sharers: 4})
	c := simtime.NewClock()
	fs.Append(c, "f", make([]byte, 1000))
	// 0.5 latency + 1000 bytes * 4 sharers / 1000 B/s = 4.5s
	want := 0.5 + 4.0
	if got := c.Spent(simtime.IO); got != want {
		t.Errorf("IO time = %v, want %v", got, want)
	}
}

func TestChargeRead(t *testing.T) {
	fs := New(Config{Bandwidth: 100, Latency: 0})
	c := simtime.NewClock()
	fs.ChargeRead(c, 200)
	if got := c.Spent(simtime.IO); got != 2.0 {
		t.Errorf("IO time = %v, want 2.0", got)
	}
	r, _, _ := fs.Stats()
	if r != 200 {
		t.Errorf("bytesRead = %d, want 200", r)
	}
}

func TestRemove(t *testing.T) {
	fs := New(Config{})
	fs.Append(nil, "f", []byte("x"))
	fs.Remove("f")
	fs.Remove("f") // idempotent
	if fs.Size("f") != 0 {
		t.Error("file survived Remove")
	}
}

func TestNilClockOK(t *testing.T) {
	fs := New(Config{Bandwidth: 1})
	fs.Append(nil, "f", []byte("x"))
	if _, err := fs.ReadAll(nil, "f"); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAppendDistinctFiles(t *testing.T) {
	fs := New(Config{Bandwidth: 1e9})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := simtime.NewClock()
			name := string(rune('a' + i))
			for j := 0; j < 100; j++ {
				fs.Append(c, name, []byte{byte(j)})
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < 8; i++ {
		if got := fs.Size(string(rune('a' + i))); got != 100 {
			t.Errorf("file %d size = %d, want 100", i, got)
		}
	}
}

func TestZeroBandwidthChargesLatencyOnly(t *testing.T) {
	fs := New(Config{Latency: 0.25})
	c := simtime.NewClock()
	fs.Append(c, "f", make([]byte, 1<<20))
	if got := c.Spent(simtime.IO); got != 0.25 {
		t.Errorf("IO time = %v, want latency only (0.25)", got)
	}
}
