package mem

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestArenaAllocFree(t *testing.T) {
	a := NewArena(100)
	if err := a.Alloc(60); err != nil {
		t.Fatalf("Alloc(60): %v", err)
	}
	if err := a.Alloc(50); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("Alloc(50) over capacity: got %v, want ErrNoMemory", err)
	}
	if got := a.Used(); got != 60 {
		t.Errorf("Used = %d, want 60 (failed alloc must not charge)", got)
	}
	a.Free(60)
	if got := a.Used(); got != 0 {
		t.Errorf("Used = %d, want 0", got)
	}
	if got := a.Peak(); got != 60 {
		t.Errorf("Peak = %d, want 60", got)
	}
}

func TestArenaUnlimited(t *testing.T) {
	a := NewArena(0)
	if err := a.Alloc(1 << 40); err != nil {
		t.Fatalf("unlimited arena refused allocation: %v", err)
	}
	a.Free(1 << 40)
}

func TestArenaPeakTracking(t *testing.T) {
	a := NewArena(1000)
	for _, n := range []int64{100, 300, 200} {
		if err := a.Alloc(n); err != nil {
			t.Fatal(err)
		}
	}
	a.Free(300)
	if err := a.Alloc(50); err != nil {
		t.Fatal(err)
	}
	if got := a.Peak(); got != 600 {
		t.Errorf("Peak = %d, want 600", got)
	}
	a.ResetPeak()
	if got := a.Peak(); got != a.Used() {
		t.Errorf("Peak after reset = %d, want Used = %d", got, a.Used())
	}
}

func TestArenaFreeBelowZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Free below zero did not panic")
		}
	}()
	NewArena(10).Free(1)
}

func TestArenaNegativeAllocPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative Alloc did not panic")
		}
	}()
	NewArena(10).Alloc(-1)
}

func TestArenaConcurrent(t *testing.T) {
	a := NewArena(0)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				if err := a.Alloc(7); err != nil {
					t.Error(err)
					return
				}
				a.Free(7)
			}
		}()
	}
	wg.Wait()
	if got := a.Used(); got != 0 {
		t.Errorf("Used = %d after balanced concurrent alloc/free, want 0", got)
	}
}

// Property: any sequence of allocations within capacity keeps
// used = sum(allocs) and peak >= used at all times.
func TestArenaAccountingProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		a := NewArena(0)
		var total int64
		var maxTotal int64
		for _, s := range sizes {
			n := int64(s)
			if err := a.Alloc(n); err != nil {
				return false
			}
			total += n
			if total > maxTotal {
				maxTotal = total
			}
			if a.Used() != total || a.Peak() != maxTotal {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestArenaTryGrab covers the non-erroring allocation path the spill
// store's watermark logic is built on: a refused grab charges nothing and
// moves neither Used nor Peak.
func TestArenaTryGrab(t *testing.T) {
	cases := []struct {
		name     string
		capacity int64
		grabs    []int64
		ok       []bool
		used     int64
		peak     int64
	}{
		{"fits", 100, []int64{40, 60}, []bool{true, true}, 100, 100},
		{"exact-then-refused", 100, []int64{100, 1}, []bool{true, false}, 100, 100},
		{"refused-then-fits", 50, []int64{60, 50}, []bool{false, true}, 50, 50},
		{"unlimited", 0, []int64{1 << 40, 1 << 40}, []bool{true, true}, 2 << 40, 2 << 40},
		{"zero-grab", 10, []int64{0, 10, 0}, []bool{true, true, true}, 10, 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := NewArena(tc.capacity)
			for i, n := range tc.grabs {
				if got := a.TryGrab(n); got != tc.ok[i] {
					t.Fatalf("TryGrab(%d) #%d = %v, want %v", n, i, got, tc.ok[i])
				}
			}
			if a.Used() != tc.used {
				t.Errorf("Used = %d, want %d", a.Used(), tc.used)
			}
			if a.Peak() != tc.peak {
				t.Errorf("Peak = %d, want %d", a.Peak(), tc.peak)
			}
		})
	}
}

func TestArenaWatermark(t *testing.T) {
	cases := []struct {
		name     string
		capacity int64
		frac     float64
		want     int64
	}{
		{"default", 1000, 0.85, 850},
		{"full", 1000, 1.0, 1000},
		{"clamped-high", 1000, 1.5, 1000},
		{"clamped-low", 1000, -0.5, 0},
		{"unlimited", 0, 0.85, 0},
		{"negative-capacity", -1, 0.85, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := NewArena(tc.capacity).Watermark(tc.frac); got != tc.want {
				t.Errorf("NewArena(%d).Watermark(%v) = %d, want %d",
					tc.capacity, tc.frac, got, tc.want)
			}
		})
	}
}

// TestArenaConcurrentTryGrab hammers a bounded arena from many goroutines:
// capacity must never be exceeded (checked via Peak, which is monotone),
// refused grabs must charge nothing, and a balanced grab/free sequence
// must end at zero.
func TestArenaConcurrentTryGrab(t *testing.T) {
	const capacity = 1000
	cases := []struct {
		name    string
		workers int
		grab    int64
	}{
		{"small-grabs", 16, 7},
		{"large-grabs", 8, 400},     // contended: at most 2 fit at once
		{"oversized-grabs", 4, 600}, // at most 1 fits at once
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := NewArena(capacity)
			var wg sync.WaitGroup
			for i := 0; i < tc.workers; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for j := 0; j < 500; j++ {
						if a.TryGrab(tc.grab) {
							a.Free(tc.grab)
						}
					}
				}()
			}
			wg.Wait()
			if got := a.Used(); got != 0 {
				t.Errorf("Used = %d after balanced concurrent TryGrab/Free, want 0", got)
			}
			if got := a.Peak(); got > capacity {
				t.Errorf("Peak = %d exceeds capacity %d", got, capacity)
			}
		})
	}
}

// TestPageEvictRestore exercises the spill subsystem's page primitives:
// Evict frees the reservation but keeps the logical length, Restore
// re-reserves and hands back a zeroed buffer of the same size.
func TestPageEvictRestore(t *testing.T) {
	a := NewArena(1024)
	p, err := a.NewPage(256)
	if err != nil {
		t.Fatal(err)
	}
	p.Append([]byte("payload"))
	if n := p.Evict(); n != 256 {
		t.Errorf("Evict returned %d, want 256", n)
	}
	if p.Resident() {
		t.Error("page still resident after Evict")
	}
	if got := a.Used(); got != 0 {
		t.Errorf("Used = %d after Evict, want 0", got)
	}
	if got := p.Used; got != 7 {
		t.Errorf("Used length = %d after Evict, want 7 (logical size must survive)", got)
	}
	if err := a.Alloc(1024); err != nil {
		t.Fatalf("arena did not regain evicted capacity: %v", err)
	}
	if err := p.Restore(256); err == nil {
		t.Error("Restore succeeded with the arena full")
	}
	a.Free(1024)
	if err := p.Restore(256); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if !p.Resident() || len(p.Buf) != 256 {
		t.Fatalf("page not resident at size 256 after Restore")
	}
	if err := p.Restore(256); err != nil {
		t.Errorf("Restore of a resident page should be a no-op, got %v", err)
	}
	if got := a.Used(); got != 256 {
		t.Errorf("Used = %d after Restore, want 256", got)
	}
	p.Release()
	if got := a.Used(); got != 0 {
		t.Errorf("Used = %d after Release, want 0", got)
	}
}

// TestAdoptPage: a page wrapped around an existing reservation releases
// that reservation exactly once.
func TestAdoptPage(t *testing.T) {
	a := NewArena(100)
	if !a.TryGrab(64) {
		t.Fatal("TryGrab(64) refused in an empty 100-byte arena")
	}
	p := a.AdoptPage(64)
	if got := a.Used(); got != 64 {
		t.Errorf("Used = %d after AdoptPage, want 64 (no double charge)", got)
	}
	p.Append([]byte("data"))
	p.Release()
	p.Release() // idempotent
	if got := a.Used(); got != 0 {
		t.Errorf("Used = %d after Release, want 0", got)
	}
}

func TestPageLifecycle(t *testing.T) {
	a := NewArena(1024)
	p, err := a.NewPage(256)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Used(); got != 256 {
		t.Errorf("Used = %d after NewPage(256), want 256", got)
	}
	p.Append([]byte("hello"))
	if got := string(p.Data()); got != "hello" {
		t.Errorf("Data = %q, want %q", got, "hello")
	}
	if got := p.Remaining(); got != 251 {
		t.Errorf("Remaining = %d, want 251", got)
	}
	p.Release()
	p.Release() // idempotent
	if got := a.Used(); got != 0 {
		t.Errorf("Used = %d after Release, want 0", got)
	}
}

func TestPageOverflowPanics(t *testing.T) {
	a := NewArena(0)
	p, err := a.NewPage(4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("page overflow did not panic")
		}
	}()
	p.Append([]byte("too long"))
}

func TestPageAllocFailure(t *testing.T) {
	a := NewArena(100)
	if _, err := a.NewPage(200); !errors.Is(err, ErrNoMemory) {
		t.Errorf("NewPage over capacity: got %v, want ErrNoMemory", err)
	}
	if got := a.Used(); got != 0 {
		t.Errorf("Used = %d after failed NewPage, want 0", got)
	}
}
