package mem

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestArenaAllocFree(t *testing.T) {
	a := NewArena(100)
	if err := a.Alloc(60); err != nil {
		t.Fatalf("Alloc(60): %v", err)
	}
	if err := a.Alloc(50); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("Alloc(50) over capacity: got %v, want ErrNoMemory", err)
	}
	if got := a.Used(); got != 60 {
		t.Errorf("Used = %d, want 60 (failed alloc must not charge)", got)
	}
	a.Free(60)
	if got := a.Used(); got != 0 {
		t.Errorf("Used = %d, want 0", got)
	}
	if got := a.Peak(); got != 60 {
		t.Errorf("Peak = %d, want 60", got)
	}
}

func TestArenaUnlimited(t *testing.T) {
	a := NewArena(0)
	if err := a.Alloc(1 << 40); err != nil {
		t.Fatalf("unlimited arena refused allocation: %v", err)
	}
	a.Free(1 << 40)
}

func TestArenaPeakTracking(t *testing.T) {
	a := NewArena(1000)
	for _, n := range []int64{100, 300, 200} {
		if err := a.Alloc(n); err != nil {
			t.Fatal(err)
		}
	}
	a.Free(300)
	if err := a.Alloc(50); err != nil {
		t.Fatal(err)
	}
	if got := a.Peak(); got != 600 {
		t.Errorf("Peak = %d, want 600", got)
	}
	a.ResetPeak()
	if got := a.Peak(); got != a.Used() {
		t.Errorf("Peak after reset = %d, want Used = %d", got, a.Used())
	}
}

func TestArenaFreeBelowZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Free below zero did not panic")
		}
	}()
	NewArena(10).Free(1)
}

func TestArenaNegativeAllocPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative Alloc did not panic")
		}
	}()
	NewArena(10).Alloc(-1)
}

func TestArenaConcurrent(t *testing.T) {
	a := NewArena(0)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				if err := a.Alloc(7); err != nil {
					t.Error(err)
					return
				}
				a.Free(7)
			}
		}()
	}
	wg.Wait()
	if got := a.Used(); got != 0 {
		t.Errorf("Used = %d after balanced concurrent alloc/free, want 0", got)
	}
}

// Property: any sequence of allocations within capacity keeps
// used = sum(allocs) and peak >= used at all times.
func TestArenaAccountingProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		a := NewArena(0)
		var total int64
		var maxTotal int64
		for _, s := range sizes {
			n := int64(s)
			if err := a.Alloc(n); err != nil {
				return false
			}
			total += n
			if total > maxTotal {
				maxTotal = total
			}
			if a.Used() != total || a.Peak() != maxTotal {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPageLifecycle(t *testing.T) {
	a := NewArena(1024)
	p, err := a.NewPage(256)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Used(); got != 256 {
		t.Errorf("Used = %d after NewPage(256), want 256", got)
	}
	p.Append([]byte("hello"))
	if got := string(p.Data()); got != "hello" {
		t.Errorf("Data = %q, want %q", got, "hello")
	}
	if got := p.Remaining(); got != 251 {
		t.Errorf("Remaining = %d, want 251", got)
	}
	p.Release()
	p.Release() // idempotent
	if got := a.Used(); got != 0 {
		t.Errorf("Used = %d after Release, want 0", got)
	}
}

func TestPageOverflowPanics(t *testing.T) {
	a := NewArena(0)
	p, err := a.NewPage(4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("page overflow did not panic")
		}
	}()
	p.Append([]byte("too long"))
}

func TestPageAllocFailure(t *testing.T) {
	a := NewArena(100)
	if _, err := a.NewPage(200); !errors.Is(err, ErrNoMemory) {
		t.Errorf("NewPage over capacity: got %v, want ErrNoMemory", err)
	}
	if got := a.Used(); got != 0 {
		t.Errorf("Used = %d after failed NewPage, want 0", got)
	}
}
