package mem

import (
	"math/bits"
	"sync"
)

// Page buffers cycle fast on the shuffle hot path — a Job allocates its send
// set and containers allocate receive pages every round, and all of it is
// dead a round later. Recycling the backing arrays through power-of-two size
// classes removes both the make() zeroing and the GC scan pressure of that
// churn. The arena still accounts every page at its requested size; the pool
// only reuses the underlying memory.
//
// Pooled buffers are NOT zeroed: a recycled page carries arbitrary stale
// bytes past Used. Every consumer in this repo writes a range before reading
// it (containers reserve-then-fill, spill restore copies the full spilled
// prefix, the core send set transmits only written partition prefixes), so
// nothing observes the stale bytes.
const (
	minPageBits = 10 // 1 KiB — smaller buffers are cheap to allocate
	maxPageBits = 26 // 64 MiB — bigger buffers are too rare to hoard
)

var pagePools [maxPageBits - minPageBits + 1]sync.Pool

// getPageBuf returns a slice of length n (cap possibly larger, rounded to
// the size class). Contents are arbitrary.
func getPageBuf(n int) []byte {
	if n <= 0 {
		return nil
	}
	if n > 1<<maxPageBits {
		return make([]byte, n)
	}
	c := bits.Len(uint(n-1)) - minPageBits
	if c < 0 {
		c = 0
	}
	if v := pagePools[c].Get(); v != nil {
		return v.([]byte)[:n]
	}
	return make([]byte, n, 1<<(minPageBits+c))
}

// putPageBuf recycles a buffer obtained from getPageBuf (or anywhere else).
// It is filed by capacity rounded DOWN, preserving the invariant that class
// c holds only buffers with cap >= 1<<(minPageBits+c).
func putPageBuf(b []byte) {
	n := cap(b)
	if n < 1<<minPageBits || n > 1<<maxPageBits {
		return
	}
	c := bits.Len(uint(n)) - 1 - minPageBits
	pagePools[c].Put(b[:0:n])
}
