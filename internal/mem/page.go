package mem

// Page is a fixed-size buffer charged to a node arena. Pages are the unit of
// allocation for both engines: MR-MPI statically allocates a handful of
// large pages per phase, while Mimir's KV containers allocate pages on
// demand and release them as data is consumed.
type Page struct {
	arena *Arena
	Buf   []byte
	// Used is the number of meaningful bytes at the front of Buf.
	Used int
}

// NewPage allocates a page of the given size from the arena. The returned
// page owns an arena reservation of exactly size bytes until Release.
func (a *Arena) NewPage(size int) (*Page, error) {
	if err := a.Alloc(int64(size)); err != nil {
		return nil, err
	}
	return &Page{arena: a, Buf: make([]byte, size)}, nil
}

// Remaining returns the unused capacity of the page.
func (p *Page) Remaining() int { return len(p.Buf) - p.Used }

// Append copies b into the page and advances Used. It panics if b does not
// fit; callers check Remaining first.
func (p *Page) Append(b []byte) {
	n := copy(p.Buf[p.Used:], b)
	if n != len(b) {
		panic("mem: page overflow")
	}
	p.Used += n
}

// Data returns the valid prefix of the page buffer.
func (p *Page) Data() []byte { return p.Buf[:p.Used] }

// Release returns the page's reservation to the arena. Release is
// idempotent.
func (p *Page) Release() {
	if p.arena != nil {
		p.arena.Free(int64(len(p.Buf)))
		p.arena = nil
		p.Buf = nil
		p.Used = 0
	}
}
