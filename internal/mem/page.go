package mem

// Page is a fixed-size buffer charged to a node arena. Pages are the unit of
// allocation for both engines: MR-MPI statically allocates a handful of
// large pages per phase, while Mimir's KV containers allocate pages on
// demand and release them as data is consumed.
type Page struct {
	arena *Arena
	Buf   []byte
	// Used is the number of meaningful bytes at the front of Buf.
	Used int
}

// NewPage allocates a page of the given size from the arena. The returned
// page owns an arena reservation of exactly size bytes until Release. The
// buffer may be recycled from an earlier page, so bytes past Used are
// arbitrary — write a range before reading it.
func (a *Arena) NewPage(size int) (*Page, error) {
	if err := a.Alloc(int64(size)); err != nil {
		return nil, err
	}
	return &Page{arena: a, Buf: getPageBuf(size)}, nil
}

// AdoptPage wraps size bytes the caller has already reserved on the arena
// (via Alloc/TryGrab, or a spill store's Reserve, which can evict for
// room) into a Page. The page owns the reservation from here on: its
// Release returns the bytes as usual. As with NewPage, the buffer is not
// zeroed.
func (a *Arena) AdoptPage(size int) *Page {
	return &Page{arena: a, Buf: getPageBuf(size)}
}

// Remaining returns the unused capacity of the page.
func (p *Page) Remaining() int { return len(p.Buf) - p.Used }

// Append copies b into the page and advances Used. It panics if b does not
// fit; callers check Remaining first.
func (p *Page) Append(b []byte) {
	n := copy(p.Buf[p.Used:], b)
	if n != len(b) {
		panic("mem: page overflow")
	}
	p.Used += n
}

// Data returns the valid prefix of the page buffer.
func (p *Page) Data() []byte { return p.Buf[:p.Used] }

// Release returns the page's reservation to the arena. Release is
// idempotent, and safe on an evicted (non-resident) page.
func (p *Page) Release() {
	if p.arena != nil {
		p.arena.Free(int64(len(p.Buf)))
		p.arena = nil
		putPageBuf(p.Buf)
		p.Buf = nil
		p.Used = 0
	}
}

// Evict drops the page's buffer and returns its reservation to the arena
// while keeping Used and the arena binding, so an out-of-core store can
// bring the page back with Restore at the same identity (pointers to the
// Page stay valid; only Buf goes away). It returns the bytes released;
// evicting a non-resident page is a no-op.
func (p *Page) Evict() int {
	if p.arena == nil || p.Buf == nil {
		return 0
	}
	n := len(p.Buf)
	p.arena.Free(int64(n))
	putPageBuf(p.Buf)
	p.Buf = nil
	return n
}

// Resident reports whether the page currently holds a buffer.
func (p *Page) Resident() bool { return p.Buf != nil }

// Restore re-reserves size bytes for an evicted page and installs a buffer
// of arbitrary contents; the caller refills it from the spill copy before
// any read (readers only see Buf[:Used], which the refill covers). It fails
// with ErrNoMemory when the arena has no room (the store evicts and
// retries).
func (p *Page) Restore(size int) error {
	if p.arena == nil {
		panic("mem: Restore on a released page")
	}
	if p.Buf != nil {
		return nil
	}
	if err := p.arena.Alloc(int64(size)); err != nil {
		return err
	}
	p.Buf = getPageBuf(size)
	return nil
}
