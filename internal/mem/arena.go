// Package mem provides the per-node memory accounting that drives every
// memory figure in the paper. A compute node (Comet: 128 GB, Mira: 16 GB;
// both scaled down 1024x in this reproduction) is modeled as an Arena with a
// hard capacity. All buffer pages used by every MPI rank placed on that node
// are charged to the node's arena, so peak usage and out-of-memory behavior
// reflect the node, not a single process — exactly how the paper reports
// "peak memory usage" per node.
package mem

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNoMemory is returned when an allocation would exceed the arena
// capacity. What happens next is a policy decision, not a law of the
// engine: under Mimir's default OutOfCore policy (core.Error) the job
// fails — the paper's missing data points — while the spill policies
// (core.SpillWhenNeeded, core.SpillAlways) evict cold container pages to
// the parallel file system through internal/spill and retry. MR-MPI
// treats a full page as a spill trigger instead and only fails when even
// the static page set itself cannot be allocated.
var ErrNoMemory = errors.New("mem: node out of memory")

// Arena is one compute node's memory pool. The zero value is unusable; use
// NewArena. An Arena with capacity <= 0 is unlimited.
type Arena struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	peak     int64
}

// NewArena returns an arena with the given capacity in bytes. A capacity of
// zero or less means unlimited (used for reference computations in tests).
func NewArena(capacity int64) *Arena {
	return &Arena{capacity: capacity}
}

// Alloc reserves n bytes, returning ErrNoMemory if the reservation would
// exceed capacity. n must be non-negative.
func (a *Arena) Alloc(n int64) error {
	if n < 0 {
		panic(fmt.Sprintf("mem: negative allocation %d", n))
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.capacity > 0 && a.used+n > a.capacity {
		return fmt.Errorf("%w: want %d bytes, used %d of %d", ErrNoMemory, n, a.used, a.capacity)
	}
	a.used += n
	if a.used > a.peak {
		a.peak = a.used
	}
	return nil
}

// Free releases n bytes previously reserved with Alloc.
func (a *Arena) Free(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("mem: negative free %d", n))
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.used -= n
	if a.used < 0 {
		panic(fmt.Sprintf("mem: arena freed below zero (%d)", a.used))
	}
}

// Used returns the currently reserved bytes.
func (a *Arena) Used() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}

// Peak returns the high-water mark of reserved bytes since creation or the
// last ResetPeak.
func (a *Arena) Peak() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

// Capacity returns the arena capacity in bytes (0 or less = unlimited).
func (a *Arena) Capacity() int64 { return a.capacity }

// TryGrab attempts to reserve n bytes and reports whether it succeeded.
// Unlike Alloc it never constructs an error value, so eviction retry
// loops (internal/spill) can probe for room cheaply.
func (a *Arena) TryGrab(n int64) bool {
	if n < 0 {
		panic(fmt.Sprintf("mem: negative allocation %d", n))
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.capacity > 0 && a.used+n > a.capacity {
		return false
	}
	a.used += n
	if a.used > a.peak {
		a.peak = a.used
	}
	return true
}

// Watermark returns the byte threshold at the given fraction of capacity,
// or 0 for an unlimited arena (no watermark). Out-of-core policies evict
// pages once usage passes this line, keeping the headroom above it free
// for buffers that cannot spill (send/receive sets, hash buckets).
func (a *Arena) Watermark(frac float64) int64 {
	if a.capacity <= 0 {
		return 0
	}
	w := int64(float64(a.capacity) * frac)
	if w < 0 {
		w = 0
	}
	if w > a.capacity {
		w = a.capacity
	}
	return w
}

// ResetPeak sets the high-water mark back to the current usage so a new
// measurement interval can begin (used between experiment repetitions).
func (a *Arena) ResetPeak() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.peak = a.used
}
