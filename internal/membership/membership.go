// Package membership is the control-plane brain of an elastic Mimir
// service: who the ranks are, which epoch of the world they belong to, and
// how the world transitions from one epoch to the next when workers join,
// leave, or die.
//
// The design is deliberately gossip-free. Rank 0 (the process hosting the
// jobsvc server) is the coordinator and the single writer of the membership
// view; workers interact with it over the existing control plane (the admin
// socket for join/rejoin requests, channel 0 of the transport mux for remesh
// directives). Every view carries a monotonically increasing epoch, the wire
// handshake is epoch-stamped (wire v5), and a peer whose epoch does not
// match is rejected at the handshake — so two incarnations of the world can
// never exchange frames, however badly a transition was interrupted.
//
// The package is pure bookkeeping: it owns no sockets and spawns no
// processes. The jobsvc server drives it — Plan computes the next epoch's
// rank assignment from the coordinator's current state and the set of
// members still alive, the server builds the mesh for that plan, and Commit
// (or Fail) records the outcome. Keeping the state machine free of I/O is
// what makes every transition — grow, shrink, crash-as-implicit-leave,
// interrupted resize — unit-testable without a single connection.
package membership

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// MemberID identifies one member for its whole life with the service,
// across any number of epochs and rank reassignments. IDs are assigned by
// the coordinator, start at 1 (the coordinator itself), and are never
// reused — a member that leaves and rejoins is a new member.
type MemberID uint64

// Member kinds.
const (
	// KindCoordinator is the rank-0 member hosting the job service.
	KindCoordinator = "coordinator"
	// KindSpawned is a worker process forked by the coordinator.
	KindSpawned = "spawned"
	// KindJoined is an external worker that dialed in with a Join request.
	KindJoined = "joined"
	// KindLocal is an in-process rank (goroutine worlds; no process).
	KindLocal = "local"
)

// Member is one participant of the world.
type Member struct {
	ID   MemberID `json:"id"`
	Rank int      `json:"rank"`
	Kind string   `json:"kind,omitempty"`
	// Addr is informational: the member's last known address (admin-visible
	// only; the transport's bootstrap handshake carries the live one).
	Addr string `json:"addr,omitempty"`
}

// View is one epoch's membership: a dense rank assignment. Members are
// ordered by rank, ranks run 0..len-1, and rank 0 is always the
// coordinator. Views are immutable once published.
type View struct {
	Epoch   uint64   `json:"epoch"`
	Members []Member `json:"members"`
}

// Size returns the world size of the view.
func (v View) Size() int { return len(v.Members) }

// Encode serializes the view for the control plane.
func (v View) Encode() []byte {
	b, err := json.Marshal(v)
	if err != nil { // a View of plain values cannot fail to marshal
		panic("membership: encoding view: " + err.Error())
	}
	return b
}

// DecodeView parses an encoded view and validates its shape: dense ranks,
// unique IDs, coordinator at rank 0.
func DecodeView(b []byte) (View, error) {
	var v View
	if err := json.Unmarshal(b, &v); err != nil {
		return View{}, fmt.Errorf("membership: decoding view: %w", err)
	}
	if err := v.validate(); err != nil {
		return View{}, err
	}
	return v, nil
}

func (v View) validate() error {
	seen := make(map[MemberID]bool, len(v.Members))
	for i, m := range v.Members {
		if m.Rank != i {
			return fmt.Errorf("membership: view epoch %d: member %d holds rank %d at position %d (ranks must be dense)",
				v.Epoch, m.ID, m.Rank, i)
		}
		if m.ID == 0 || seen[m.ID] {
			return fmt.Errorf("membership: view epoch %d: member id %d at rank %d is zero or duplicated", v.Epoch, m.ID, m.Rank)
		}
		seen[m.ID] = true
	}
	return nil
}

// EventKind classifies membership events.
type EventKind string

const (
	// EvBootstrap is the initial epoch coming up.
	EvBootstrap EventKind = "bootstrap"
	// EvJoin is a member entering the world (spawned or dialed in).
	EvJoin EventKind = "join"
	// EvPendingJoin is an external worker parked until the next transition.
	EvPendingJoin EventKind = "pending-join"
	// EvLeave is a voluntary, drained departure.
	EvLeave EventKind = "leave"
	// EvImplicitLeave is a member found dead during a transition — a crash
	// treated exactly like a Leave that skipped the courtesy of asking.
	EvImplicitLeave EventKind = "implicit-leave"
	// EvEpoch is a committed transition to a new epoch.
	EvEpoch EventKind = "epoch"
	// EvFailed is a transition attempt that did not produce a mesh; the
	// next attempt plans a fresh epoch, so the failed one is never live.
	EvFailed EventKind = "failed"
	// EvRebalance records a checkpoint repartition during a transition.
	EvRebalance EventKind = "rebalance"
)

// Event is one line of the membership history.
type Event struct {
	Seq    int       `json:"seq"`
	Epoch  uint64    `json:"epoch"`
	Kind   EventKind `json:"kind"`
	Member MemberID  `json:"member,omitempty"`
	Rank   int       `json:"rank,omitempty"`
	Size   int       `json:"size,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

// Plan is one prospective transition: the next epoch's view with every seat
// assigned, plus what changed relative to the committed view. A plan is
// advisory until Commit; a failed attempt is recorded with Fail and the next
// Plan allocates a fresh epoch, so no two mesh-build attempts ever share an
// epoch number (the wire-v5 stale-epoch rejection depends on that).
type Plan struct {
	View View
	// Retired members leave at this barrier: their rank is above the new
	// size or they asked to leave. They get a retire directive and exit.
	Retired []Member
	// Lost members were found dead while planning: implicit leaves.
	Lost []Member
	// Joined members enter the world at this epoch — pending external
	// joiners that were given a seat plus fresh seats the mesh manager must
	// fill (forked workers, whose IDs are assigned here).
	Joined []Member
}

// Coordinator is the epoch-versioned membership state machine. All methods
// are safe for concurrent use; Plan/Commit/Fail must be serialized by the
// caller's transition lock (the jobsvc server holds one transition at a
// time by construction).
type Coordinator struct {
	mu      sync.Mutex
	view    View     // last committed view; Epoch 0 = never bootstrapped
	planned uint64   // highest epoch ever handed to a Plan
	nextID  MemberID // next member ID to assign
	pending []Member // external joiners waiting for a seat (rank -1)
	leaving map[MemberID]bool
	events  []Event
}

// NewCoordinator returns an empty coordinator: no members, epoch 0.
func NewCoordinator() *Coordinator {
	return &Coordinator{nextID: 1, leaving: make(map[MemberID]bool)}
}

func (c *Coordinator) logLocked(ev Event) {
	ev.Seq = len(c.events)
	c.events = append(c.events, ev)
}

// Bootstrap plans the initial epoch: the coordinator at rank 0 plus size-1
// workers of the given kind. Like any plan it must be Commit-ed (or Fail-ed)
// once the mesh build settles.
func (c *Coordinator) Bootstrap(size int, kind string) Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	epoch := c.epochForNextPlanLocked()
	v := View{Epoch: epoch}
	var joined []Member
	for r := 0; r < size; r++ {
		k := kind
		if r == 0 {
			k = KindCoordinator
		}
		m := Member{ID: c.nextID, Rank: r, Kind: k}
		c.nextID++
		v.Members = append(v.Members, m)
		joined = append(joined, m)
	}
	return Plan{View: v, Joined: joined}
}

func (c *Coordinator) epochForNextPlanLocked() uint64 {
	e := c.view.Epoch
	if c.planned > e {
		e = c.planned
	}
	e++
	c.planned = e
	return e
}

// View returns the last committed view (Epoch 0 before bootstrap).
func (c *Coordinator) View() View {
	c.mu.Lock()
	defer c.mu.Unlock()
	v := c.view
	v.Members = append([]Member(nil), c.view.Members...)
	return v
}

// Epoch returns the committed epoch.
func (c *Coordinator) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.view.Epoch
}

// AddPending registers an external joiner: it holds no rank until a
// transition gives it a seat. Returns the assigned member ID.
func (c *Coordinator) AddPending(kind, addr string) MemberID {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := Member{ID: c.nextID, Rank: -1, Kind: kind, Addr: addr}
	c.nextID++
	c.pending = append(c.pending, m)
	c.logLocked(Event{Epoch: c.view.Epoch, Kind: EvPendingJoin, Member: m.ID, Detail: addr})
	return m.ID
}

// DropPending removes a parked joiner that gave up before getting a seat.
func (c *Coordinator) DropPending(id MemberID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, m := range c.pending {
		if m.ID == id {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			return
		}
	}
}

// PendingJoins returns the parked joiners, oldest first.
func (c *Coordinator) PendingJoins() []Member {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Member(nil), c.pending...)
}

// RequestLeave marks a member for retirement at the next barrier (drain
// semantics: its running work finishes first, because transitions only
// happen between jobs). Unknown IDs are an error.
func (c *Coordinator) RequestLeave(id MemberID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.view.Members {
		if m.ID == id {
			if m.Rank == 0 {
				return fmt.Errorf("membership: the coordinator (member %d) cannot leave", id)
			}
			c.leaving[id] = true
			return nil
		}
	}
	return fmt.Errorf("membership: no member %d in epoch %d", id, c.view.Epoch)
}

// LeaveRequests returns the members marked for retirement at the next
// barrier, in member-ID order.
func (c *Coordinator) LeaveRequests() []MemberID {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]MemberID, 0, len(c.leaving))
	for id := range c.leaving {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// HasMember reports whether id holds a seat in the committed view.
func (c *Coordinator) HasMember(id MemberID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.view.Members {
		if m.ID == id {
			return true
		}
	}
	return false
}

// Plan computes the next epoch's view for a target world size. alive
// reports whether a current member can still serve (a dead process is an
// implicit leave); the coordinator itself is always alive. Seat assignment
// is deterministic:
//
//  1. The coordinator keeps rank 0.
//  2. Surviving, non-leaving members keep their relative order (by old
//     rank) and fill ranks 1..; members beyond the target size retire.
//  3. Pending external joiners (oldest first) fill remaining seats.
//  4. Seats still empty are fresh members of newKind (the mesh manager
//     forks processes for them).
//
// Survivors therefore may shift DOWN in rank when members below them leave
// — ranks are epoch-scoped names, not identities; the member ID is the
// identity. Plan mutates no committed state: a failed build calls Fail and
// the next Plan starts from the same committed view (minus members that
// died in between).
func (c *Coordinator) Plan(target int, alive func(Member) bool, newKind string) (Plan, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if target < 1 {
		return Plan{}, fmt.Errorf("membership: target world size %d < 1", target)
	}
	if c.view.Epoch == 0 {
		return Plan{}, fmt.Errorf("membership: Plan before Bootstrap")
	}
	p := Plan{View: View{Epoch: c.epochForNextPlanLocked()}}

	// Coordinator first, then surviving workers in old-rank order.
	var survivors []Member
	for _, m := range c.view.Members {
		switch {
		case m.Rank == 0:
			survivors = append(survivors, m) // the coordinator cannot die: it is running this code
		case alive != nil && !alive(m):
			p.Lost = append(p.Lost, m)
		case c.leaving[m.ID]:
			p.Retired = append(p.Retired, m)
		default:
			survivors = append(survivors, m)
		}
	}
	// Seats above the target retire (highest old ranks first, so shrink
	// retires the newest seats and the coordinator's neighbors survive).
	if len(survivors) > target {
		p.Retired = append(p.Retired, survivors[target:]...)
		survivors = survivors[:target]
	}
	for r, m := range survivors {
		m.Rank = r
		p.View.Members = append(p.View.Members, m)
	}
	// Pending joiners fill seats next, oldest first.
	pend := append([]Member(nil), c.pending...)
	for len(p.View.Members) < target && len(pend) > 0 {
		m := pend[0]
		pend = pend[1:]
		m.Rank = len(p.View.Members)
		p.View.Members = append(p.View.Members, m)
		p.Joined = append(p.Joined, m)
	}
	// Fresh seats for the mesh manager to fill.
	for len(p.View.Members) < target {
		m := Member{ID: c.nextID, Rank: len(p.View.Members), Kind: newKind}
		c.nextID++
		p.View.Members = append(p.View.Members, m)
		p.Joined = append(p.Joined, m)
	}
	return p, nil
}

// Commit finalizes a planned transition whose mesh is up, making its view
// the committed one and logging the member movements.
func (c *Coordinator) Commit(p Plan) View {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range p.Lost {
		c.logLocked(Event{Epoch: p.View.Epoch, Kind: EvImplicitLeave, Member: m.ID, Rank: m.Rank, Detail: "found dead at transition"})
	}
	for _, m := range p.Retired {
		c.logLocked(Event{Epoch: p.View.Epoch, Kind: EvLeave, Member: m.ID, Rank: m.Rank})
		delete(c.leaving, m.ID)
	}
	for _, m := range p.Joined {
		c.logLocked(Event{Epoch: p.View.Epoch, Kind: EvJoin, Member: m.ID, Rank: m.Rank, Detail: m.Kind})
	}
	kind := EvEpoch
	if c.view.Epoch == 0 {
		kind = EvBootstrap
	}
	c.logLocked(Event{Epoch: p.View.Epoch, Kind: kind, Size: p.View.Size()})
	c.view = p.View
	// Joined pending members now hold seats; drop them from the parked set.
	seated := make(map[MemberID]bool, len(p.Joined))
	for _, m := range p.Joined {
		seated[m.ID] = true
	}
	kept := c.pending[:0]
	for _, m := range c.pending {
		if !seated[m.ID] {
			kept = append(kept, m)
		}
	}
	c.pending = kept
	// Members that vanished (lost or retired) cannot linger in leaving.
	for _, m := range p.Lost {
		delete(c.leaving, m.ID)
	}
	return c.view
}

// Fail records a transition attempt that never produced a live mesh. The
// planned epoch is burned — the next Plan allocates a higher one — so a
// straggler from the failed attempt can never handshake into a later world.
func (c *Coordinator) Fail(p Plan, reason string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.logLocked(Event{Epoch: p.View.Epoch, Kind: EvFailed, Size: p.View.Size(), Detail: reason})
}

// RecordRebalance logs a checkpoint repartition performed for a transition.
func (c *Coordinator) RecordRebalance(epoch uint64, detail string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.logLocked(Event{Epoch: epoch, Kind: EvRebalance, Detail: detail})
}

// Events returns the membership history, oldest first.
func (c *Coordinator) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// EpochCount returns how many epochs have been committed (bootstrap
// included) — the "expected epoch count" chaos assertions pin.
func (c *Coordinator) EpochCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, ev := range c.events {
		if ev.Kind == EvEpoch || ev.Kind == EvBootstrap {
			n++
		}
	}
	return n
}

// WriteEventsJSON writes the event log as one JSON document (the CI
// membership-chaos artifact).
func (c *Coordinator) WriteEventsJSON(w io.Writer) error {
	c.mu.Lock()
	evs := append([]Event(nil), c.events...)
	view := c.view
	c.mu.Unlock()
	doc := struct {
		View   View    `json:"view"`
		Events []Event `json:"events"`
	}{view, evs}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Summarize folds the event log into per-kind counts (test assertions).
func Summarize(evs []Event) map[EventKind]int {
	m := make(map[EventKind]int)
	for _, ev := range evs {
		m[ev.Kind]++
	}
	return m
}

// SortMembersByID orders a member slice by ID (stable reporting order for
// sets that are not rank-ordered, like pending joins).
func SortMembersByID(ms []Member) {
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
}
