package membership

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"strings"
)

// Join tokens let an external worker prove it was invited without the
// control plane trusting the network: the daemon holds a random secret and
// hands out HMAC-SHA256 tokens over it. Two flavors share one format:
//
//	mimir1.<member-id>.<base64url(hmac)>
//
// A generic join token carries member ID 0 ("any new worker may join");
// a rejoin token carries a specific member ID, so a crashed survivor can
// re-authenticate as itself but cannot hijack another member's seat.

const tokenPrefix = "mimir1"

// SecretLen is the size of a daemon join secret in bytes.
const SecretLen = 32

// NewSecret draws a fresh daemon secret from crypto/rand.
func NewSecret() ([]byte, error) {
	s := make([]byte, SecretLen)
	if _, err := rand.Read(s); err != nil {
		return nil, fmt.Errorf("membership: generating join secret: %w", err)
	}
	return s, nil
}

func tokenMAC(secret []byte, id MemberID) []byte {
	mac := hmac.New(sha256.New, secret)
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(id))
	mac.Write([]byte(tokenPrefix))
	mac.Write(buf[:])
	return mac.Sum(nil)
}

// Token mints a token binding the given member ID (0 = generic join).
func Token(secret []byte, id MemberID) string {
	return fmt.Sprintf("%s.%d.%s", tokenPrefix, id,
		base64.RawURLEncoding.EncodeToString(tokenMAC(secret, id)))
}

// VerifyToken checks a token against the secret and returns the member ID
// it is bound to (0 for a generic join token).
func VerifyToken(secret []byte, token string) (MemberID, error) {
	parts := strings.Split(token, ".")
	if len(parts) != 3 || parts[0] != tokenPrefix {
		return 0, fmt.Errorf("membership: malformed join token")
	}
	var id MemberID
	if _, err := fmt.Sscanf(parts[1], "%d", &id); err != nil {
		return 0, fmt.Errorf("membership: malformed join token member id")
	}
	got, err := base64.RawURLEncoding.DecodeString(parts[2])
	if err != nil {
		return 0, fmt.Errorf("membership: malformed join token mac")
	}
	if !hmac.Equal(got, tokenMAC(secret, id)) {
		return 0, fmt.Errorf("membership: join token rejected")
	}
	return id, nil
}
