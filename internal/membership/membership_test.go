package membership

import (
	"bytes"
	"strings"
	"testing"
)

func commitBootstrap(t *testing.T, c *Coordinator, size int) View {
	t.Helper()
	p := c.Bootstrap(size, KindSpawned)
	if p.View.Epoch != 1 {
		t.Fatalf("bootstrap epoch = %d, want 1", p.View.Epoch)
	}
	if got := p.View.Size(); got != size {
		t.Fatalf("bootstrap size = %d, want %d", got, size)
	}
	return c.Commit(p)
}

func ids(ms []Member) []MemberID {
	out := make([]MemberID, len(ms))
	for i, m := range ms {
		out[i] = m.ID
	}
	return out
}

func TestBootstrapAssignsDenseRanksAndKinds(t *testing.T) {
	c := NewCoordinator()
	v := commitBootstrap(t, c, 4)
	if v.Members[0].Kind != KindCoordinator {
		t.Fatalf("rank 0 kind = %q, want coordinator", v.Members[0].Kind)
	}
	for r, m := range v.Members {
		if m.Rank != r {
			t.Fatalf("member %d holds rank %d at position %d", m.ID, m.Rank, r)
		}
		if r > 0 && m.Kind != KindSpawned {
			t.Fatalf("rank %d kind = %q, want spawned", r, m.Kind)
		}
	}
	if c.Epoch() != 1 {
		t.Fatalf("committed epoch = %d, want 1", c.Epoch())
	}
	if err := v.validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGrowFillsFreshSeats(t *testing.T) {
	c := NewCoordinator()
	commitBootstrap(t, c, 4)
	p, err := c.Plan(6, nil, KindSpawned)
	if err != nil {
		t.Fatal(err)
	}
	if p.View.Epoch != 2 {
		t.Fatalf("grow epoch = %d, want 2", p.View.Epoch)
	}
	if p.View.Size() != 6 || len(p.Joined) != 2 || len(p.Retired) != 0 || len(p.Lost) != 0 {
		t.Fatalf("grow plan: size=%d joined=%d retired=%d lost=%d", p.View.Size(), len(p.Joined), len(p.Retired), len(p.Lost))
	}
	// Survivors keep their ranks on pure growth.
	for r := 0; r < 4; r++ {
		if p.View.Members[r].ID != MemberID(r+1) {
			t.Fatalf("rank %d now member %d, want %d", r, p.View.Members[r].ID, r+1)
		}
	}
	v := c.Commit(p)
	if v.Epoch != 2 || c.Epoch() != 2 {
		t.Fatalf("committed epoch = %d/%d, want 2", v.Epoch, c.Epoch())
	}
}

func TestShrinkRetiresHighestRanks(t *testing.T) {
	c := NewCoordinator()
	commitBootstrap(t, c, 6)
	p, err := c.Plan(3, nil, KindSpawned)
	if err != nil {
		t.Fatal(err)
	}
	if p.View.Size() != 3 || len(p.Joined) != 0 || len(p.Lost) != 0 {
		t.Fatalf("shrink plan: size=%d joined=%d lost=%d", p.View.Size(), len(p.Joined), len(p.Lost))
	}
	got := ids(p.Retired)
	if len(got) != 3 || got[0] != 4 || got[1] != 5 || got[2] != 6 {
		t.Fatalf("retired = %v, want [4 5 6]", got)
	}
	c.Commit(p)
	if c.View().Size() != 3 {
		t.Fatalf("committed size = %d, want 3", c.View().Size())
	}
}

func TestLeaveThenPlanRetiresAndCompactsRanks(t *testing.T) {
	c := NewCoordinator()
	v := commitBootstrap(t, c, 4)
	if err := c.RequestLeave(v.Members[1].ID); err != nil {
		t.Fatal(err)
	}
	// Same target size: the leaver's seat is backfilled with a fresh member
	// and survivors above it compact down.
	p, err := c.Plan(4, nil, KindSpawned)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Retired) != 1 || p.Retired[0].ID != v.Members[1].ID {
		t.Fatalf("retired = %v, want [%d]", ids(p.Retired), v.Members[1].ID)
	}
	want := []MemberID{1, 3, 4, 5} // old ranks 2,3 shift down; seat 3 is fresh
	for r, id := range want {
		if p.View.Members[r].ID != id {
			t.Fatalf("rank %d member = %d, want %d (view %v)", r, p.View.Members[r].ID, id, ids(p.View.Members))
		}
	}
	if len(p.Joined) != 1 || p.Joined[0].ID != 5 {
		t.Fatalf("joined = %v, want [5]", ids(p.Joined))
	}
}

func TestCoordinatorCannotLeave(t *testing.T) {
	c := NewCoordinator()
	commitBootstrap(t, c, 2)
	if err := c.RequestLeave(1); err == nil {
		t.Fatal("coordinator leave accepted; want error")
	}
	if err := c.RequestLeave(99); err == nil {
		t.Fatal("unknown member leave accepted; want error")
	}
}

func TestPendingJoinersSeatBeforeFreshForks(t *testing.T) {
	c := NewCoordinator()
	commitBootstrap(t, c, 3)
	j1 := c.AddPending(KindJoined, "10.0.0.1:9")
	j2 := c.AddPending(KindJoined, "10.0.0.2:9")
	p, err := c.Plan(6, nil, KindSpawned)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Joined) != 3 {
		t.Fatalf("joined %d members, want 3", len(p.Joined))
	}
	if p.View.Members[3].ID != j1 || p.View.Members[4].ID != j2 {
		t.Fatalf("pending joiners not seated first: view %v", ids(p.View.Members))
	}
	if p.View.Members[5].Kind != KindSpawned {
		t.Fatalf("last seat kind = %q, want spawned", p.View.Members[5].Kind)
	}
	c.Commit(p)
	if n := len(c.PendingJoins()); n != 0 {
		t.Fatalf("%d pending joiners after commit, want 0", n)
	}
}

func TestDeadMemberIsImplicitLeave(t *testing.T) {
	c := NewCoordinator()
	v := commitBootstrap(t, c, 4)
	dead := v.Members[2].ID
	p, err := c.Plan(4, func(m Member) bool { return m.ID != dead }, KindSpawned)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Lost) != 1 || p.Lost[0].ID != dead {
		t.Fatalf("lost = %v, want [%d]", ids(p.Lost), dead)
	}
	if p.View.Size() != 4 || len(p.Joined) != 1 {
		t.Fatalf("backfill: size=%d joined=%d", p.View.Size(), len(p.Joined))
	}
	c.Commit(p)
	sum := Summarize(c.Events())
	if sum[EvImplicitLeave] != 1 || sum[EvJoin] != 5 {
		t.Fatalf("event summary %v: want 1 implicit-leave, 5 joins", sum)
	}
}

func TestFailedPlanBurnsEpoch(t *testing.T) {
	c := NewCoordinator()
	commitBootstrap(t, c, 2)
	p1, err := c.Plan(4, nil, KindSpawned)
	if err != nil {
		t.Fatal(err)
	}
	c.Fail(p1, "bootstrap timeout")
	if c.Epoch() != 1 {
		t.Fatalf("failed plan moved committed epoch to %d", c.Epoch())
	}
	p2, err := c.Plan(4, nil, KindSpawned)
	if err != nil {
		t.Fatal(err)
	}
	if p2.View.Epoch <= p1.View.Epoch {
		t.Fatalf("retry epoch %d not above failed epoch %d", p2.View.Epoch, p1.View.Epoch)
	}
	c.Commit(p2)
	if c.Epoch() != p2.View.Epoch {
		t.Fatalf("committed epoch = %d, want %d", c.Epoch(), p2.View.Epoch)
	}
	if n := c.EpochCount(); n != 2 { // bootstrap + one committed resize
		t.Fatalf("epoch count = %d, want 2", n)
	}
}

func TestViewEncodeDecodeRoundTrip(t *testing.T) {
	c := NewCoordinator()
	v := commitBootstrap(t, c, 3)
	got, err := DecodeView(v.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != v.Epoch || got.Size() != v.Size() {
		t.Fatalf("round trip: %+v vs %+v", got, v)
	}
	for i := range v.Members {
		if got.Members[i] != v.Members[i] {
			t.Fatalf("member %d: %+v vs %+v", i, got.Members[i], v.Members[i])
		}
	}
	if _, err := DecodeView([]byte(`{"epoch":3,"members":[{"id":1,"rank":1}]}`)); err == nil {
		t.Fatal("sparse-rank view decoded; want error")
	}
	if _, err := DecodeView([]byte(`{"epoch":3,"members":[{"id":1,"rank":0},{"id":1,"rank":1}]}`)); err == nil {
		t.Fatal("duplicate-id view decoded; want error")
	}
}

func TestEventLogJSON(t *testing.T) {
	c := NewCoordinator()
	commitBootstrap(t, c, 2)
	p, _ := c.Plan(3, nil, KindSpawned)
	c.Commit(p)
	c.RecordRebalance(p.View.Epoch, "wc: 2->3 ranks, 1024 bytes moved")
	var buf bytes.Buffer
	if err := c.WriteEventsJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"bootstrap"`, `"epoch"`, `"rebalance"`, `"members"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("event JSON missing %s:\n%s", want, out)
		}
	}
}

func TestJoinTokens(t *testing.T) {
	secret, err := NewSecret()
	if err != nil {
		t.Fatal(err)
	}
	generic := Token(secret, 0)
	if id, err := VerifyToken(secret, generic); err != nil || id != 0 {
		t.Fatalf("generic token verify: id=%d err=%v", id, err)
	}
	rejoin := Token(secret, 7)
	if id, err := VerifyToken(secret, rejoin); err != nil || id != 7 {
		t.Fatalf("rejoin token verify: id=%d err=%v", id, err)
	}
	// A member-bound token is not a generic token and vice versa.
	if _, err := VerifyToken(secret, strings.Replace(rejoin, ".7.", ".8.", 1)); err == nil {
		t.Fatal("token with swapped member id verified; want rejection")
	}
	other, _ := NewSecret()
	if _, err := VerifyToken(other, generic); err == nil {
		t.Fatal("token verified under wrong secret")
	}
	for _, bad := range []string{"", "mimir1", "mimir1.x.y", "mimir0.0.aaaa", generic + "x"} {
		if _, err := VerifyToken(secret, bad); err == nil {
			t.Fatalf("malformed token %q verified", bad)
		}
	}
}

func TestPlanBeforeBootstrapErrors(t *testing.T) {
	c := NewCoordinator()
	if _, err := c.Plan(2, nil, KindSpawned); err == nil {
		t.Fatal("Plan before Bootstrap succeeded")
	}
	if _, err := c.Plan(0, nil, KindSpawned); err == nil {
		t.Fatal("Plan target 0 succeeded")
	}
}
