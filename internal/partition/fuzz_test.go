package partition

import (
	"bytes"
	"encoding/binary"
	"sort"
	"testing"
)

// FuzzRangeBoundaries feeds arbitrary sampled key multisets (with
// duplicates, empty keys, single-key and all-equal corpora) through
// computePlan and checks the boundary invariants the engine relies on:
// every key maps to exactly one in-range rank, boundaries are monotone,
// range ownership is order-consistent, and no rank comes up empty unless
// the sample has fewer distinct keys than ranks.
func FuzzRangeBoundaries(f *testing.F) {
	pack := func(keys ...string) []byte {
		var out []byte
		for _, k := range keys {
			out = binary.LittleEndian.AppendUint32(out, uint32(len(k)))
			out = append(out, k...)
		}
		return out
	}
	f.Add(uint8(4), pack("a", "b", "c", "d", "e", "f"), true)
	f.Add(uint8(4), pack(), false)
	f.Add(uint8(8), pack("solo"), true)
	f.Add(uint8(3), pack("x", "x", "x", "x", "x"), true)
	f.Add(uint8(2), pack("", "", "a"), false)
	f.Add(uint8(16), pack("hot", "hot", "hot", "hot", "hot", "hot", "cold"), true)
	f.Fuzz(func(t *testing.T, nranks uint8, raw []byte, split bool) {
		size := int(nranks%32) + 1
		keys, err := decodeSample(raw)
		if err != nil {
			t.Skip() // malformed sample encodings are not the target
		}
		// computePlan sorts its input in place; route against a copy.
		in := make([][]byte, len(keys))
		for i, k := range keys {
			in[i] = append([]byte(nil), k...)
		}
		a := computePlan(in, size, split)

		if a.size != size {
			t.Fatalf("assignment size %d, want %d", a.size, size)
		}
		if len(keys) == 0 {
			if !a.hash {
				t.Fatal("empty sample did not fall back to hash")
			}
		} else if size > 1 && a.hash {
			t.Fatal("non-empty sample fell back to hash")
		}

		// Monotone boundaries.
		for i := 1; i < len(a.uppers); i++ {
			if bytes.Compare(a.uppers[i-1], a.uppers[i]) > 0 {
				t.Fatalf("uppers[%d] > uppers[%d]", i-1, i)
			}
		}

		// Every key — sampled or not — maps to exactly one in-range rank,
		// for every split sequence number.
		probe := append([][]byte{[]byte(""), []byte("zz-unsampled")}, keys...)
		for _, k := range probe {
			d0 := a.Dest(k, 0)
			if d0 < 0 || d0 >= size {
				t.Fatalf("Dest(%q, 0) = %d out of [0,%d)", k, d0, size)
			}
			w := a.SplitWidth(k)
			if w < 1 || w > size {
				t.Fatalf("SplitWidth(%q) = %d", k, w)
			}
			if w == 1 && a.Dest(k, 7) != d0 {
				t.Fatalf("unsplit key %q moved with seq", k)
			}
			for seq := uint64(0); seq < uint64(w)+2; seq++ {
				if d := a.Dest(k, seq); d < 0 || d >= size {
					t.Fatalf("Dest(%q, %d) = %d out of range", k, seq, d)
				}
			}
			// Deterministic: same key+seq, same answer.
			if a.Dest(k, 3) != a.Dest(k, 3) {
				t.Fatalf("Dest(%q, 3) nondeterministic", k)
			}
		}

		// Range ownership respects key order (ignoring splits and the
		// hash fallback): sorted keys get nondecreasing range ranks.
		if !a.hash {
			sorted := make([][]byte, len(keys))
			copy(sorted, keys)
			sort.Slice(sorted, func(i, j int) bool { return bytes.Compare(sorted[i], sorted[j]) < 0 })
			prev := 0
			for _, k := range sorted {
				r := a.rangeRank(k)
				if r < prev {
					t.Fatalf("range rank decreased: %q at %d after %d", k, r, prev)
				}
				prev = r
			}
		}

		// No empty rank unless distinct keys < ranks.
		distinct := map[string]bool{}
		for _, k := range keys {
			distinct[string(k)] = true
		}
		if len(distinct) >= size && !a.hash {
			got := map[int]bool{}
			for _, k := range keys {
				got[a.rangeRank(k)] = true
			}
			if len(got) != size {
				t.Fatalf("%d distinct keys over %d ranks left %d rank(s) empty",
					len(distinct), size, size-len(got))
			}
		}

		// The broadcast wire format round-trips losslessly.
		dec, err := decodeAssignment(a.encode())
		if err != nil {
			t.Fatalf("decode(encode): %v", err)
		}
		for _, k := range probe {
			for seq := uint64(0); seq < 4; seq++ {
				if dec.Dest(k, seq) != a.Dest(k, seq) {
					t.Fatalf("decoded assignment routes %q differently", k)
				}
			}
		}
	})
}
