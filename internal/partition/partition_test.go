package partition

import (
	"bytes"
	"fmt"
	"testing"

	"mimir/internal/kvbuf"
)

// fakeComm drives Plan without a transport: Allgatherv hands back the
// pre-baked per-rank sample buffers, Bcast returns rank 0's buffer.
type fakeComm struct {
	rank, size int
	gathered   [][]byte // indexed by rank; nil means "use the caller's b"
	root       []byte   // captured by rank 0's Bcast
}

func (c *fakeComm) Rank() int { return c.rank }
func (c *fakeComm) Size() int { return c.size }

func (c *fakeComm) Allgatherv(b []byte) ([][]byte, error) {
	out := make([][]byte, c.size)
	copy(out, c.gathered)
	out[c.rank] = b
	return out, nil
}

func (c *fakeComm) Bcast(b []byte, root int) ([]byte, error) {
	if c.rank == root {
		c.root = b
		return b, nil
	}
	return c.root, nil
}

func keysOf(ss ...string) [][]byte {
	out := make([][]byte, len(ss))
	for i, s := range ss {
		out[i] = []byte(s)
	}
	return out
}

func TestHashPartitionerMatchesLegacyRouting(t *testing.T) {
	asn, err := HashPartitioner{}.Plan(&fakeComm{size: 4}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"", "a", "hello", "zipf-hot-key"} {
		want := int(kvbuf.HashKey([]byte(k)) % 4)
		if got := asn.Dest([]byte(k), 0); got != want {
			t.Fatalf("Dest(%q) = %d, want %d", k, got, want)
		}
		if asn.SplitWidth([]byte(k)) != 1 {
			t.Fatalf("hash SplitWidth(%q) != 1", k)
		}
	}
	if asn.Splits() {
		t.Fatal("hash assignment reports splits")
	}
}

func TestFuncPartitioner(t *testing.T) {
	f := Func(func(key []byte, nranks int) int { return len(key) % nranks })
	asn, err := f.Plan(&fakeComm{size: 3}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := asn.Dest([]byte("abcd"), 0); got != 1 {
		t.Fatalf("Dest = %d, want 1", got)
	}
}

func TestByName(t *testing.T) {
	for name, want := range map[string]string{"": "hash", "hash": "hash", "sample": "sample"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name() != want {
			t.Fatalf("ByName(%q).Name() = %q, want %q", name, p.Name(), want)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("ByName(bogus) succeeded")
	}
}

func TestComputePlanBalancesUniformSample(t *testing.T) {
	var keys [][]byte
	for i := 0; i < 100; i++ {
		keys = append(keys, []byte(fmt.Sprintf("key-%03d", i)))
	}
	a := computePlan(keys, 4, false)
	counts := make([]int, 4)
	for i := 0; i < 100; i++ {
		counts[a.Dest([]byte(fmt.Sprintf("key-%03d", i)), 0)]++
	}
	for r, n := range counts {
		if n != 25 {
			t.Fatalf("rank %d got %d of 100 uniform keys (counts %v)", r, n, counts)
		}
	}
}

func TestComputePlanSkewedSampleIsolatesHotKey(t *testing.T) {
	// One key carries half the sample; without splitting it must still own
	// a range alone-ish, i.e. no other rank is starved.
	var keys [][]byte
	for i := 0; i < 50; i++ {
		keys = append(keys, []byte("hot"))
	}
	for i := 0; i < 50; i++ {
		keys = append(keys, []byte(fmt.Sprintf("w%02d", i)))
	}
	a := computePlan(keys, 4, false)
	seen := make(map[int]bool)
	for i := 0; i < 50; i++ {
		seen[a.Dest([]byte(fmt.Sprintf("w%02d", i)), 0)] = true
	}
	seen[a.Dest([]byte("hot"), 0)] = true
	if len(seen) < 4 {
		t.Fatalf("only %d of 4 ranks receive keys", len(seen))
	}
}

func TestComputePlanHotKeySplit(t *testing.T) {
	var keys [][]byte
	for i := 0; i < 60; i++ {
		keys = append(keys, []byte("hot"))
	}
	for i := 0; i < 40; i++ {
		keys = append(keys, []byte(fmt.Sprintf("w%02d", i)))
	}
	a := computePlan(keys, 4, true)
	if !a.Splits() {
		t.Fatal("60% key not split")
	}
	w := a.SplitWidth([]byte("hot"))
	if w < 2 || w > 4 {
		t.Fatalf("SplitWidth = %d, want 2..4", w)
	}
	// Round-robin over exactly w distinct ranks, with seq 0 at the home.
	home := a.Dest([]byte("hot"), 0)
	dests := make(map[int]bool)
	for seq := uint64(0); seq < 16; seq++ {
		d := a.Dest([]byte("hot"), seq)
		if d < 0 || d >= 4 {
			t.Fatalf("split dest %d out of range", d)
		}
		dests[d] = true
	}
	if len(dests) != w {
		t.Fatalf("split fans to %d ranks, want %d", len(dests), w)
	}
	if !dests[home] {
		t.Fatal("home rank not in split set")
	}
	// Unsplit keys are untouched.
	if a.SplitWidth([]byte("w00")) != 1 {
		t.Fatal("cold key reports split")
	}
}

func TestComputePlanSplitNeverOnUniform(t *testing.T) {
	var keys [][]byte
	for i := 0; i < 100; i++ {
		keys = append(keys, []byte(fmt.Sprintf("key-%03d", i)))
	}
	if a := computePlan(keys, 4, true); a.Splits() {
		t.Fatal("uniform sample produced splits")
	}
}

func TestComputePlanFewerKeysThanRanks(t *testing.T) {
	a := computePlan(keysOf("a", "b"), 4, false)
	// Both keys route in range; the two extra ranks are empty by necessity.
	da, db := a.Dest([]byte("a"), 0), a.Dest([]byte("b"), 0)
	if da == db {
		t.Fatalf("2 distinct keys on 4 ranks share rank %d", da)
	}
	// Unsampled keys still map somewhere valid.
	if d := a.Dest([]byte("zzz"), 0); d < 0 || d >= 4 {
		t.Fatalf("tail key routes to %d", d)
	}
}

func TestComputePlanAllEqual(t *testing.T) {
	a := computePlan(keysOf("x", "x", "x", "x"), 4, false)
	if d := a.Dest([]byte("x"), 0); d < 0 || d >= 4 {
		t.Fatalf("Dest = %d", d)
	}
}

func TestSamplePlanRoundTrip(t *testing.T) {
	// Simulate 3 ranks planning: bake ranks 1-2's encoded samples, run rank
	// 0's Plan to produce the broadcast buffer, then decode on a follower
	// and check both route identically.
	s1 := encodeSample(keysOf("d", "e", "f"))
	s2 := encodeSample(keysOf("g", "h", "i", "g", "g", "g", "g", "g"))
	c0 := &fakeComm{rank: 0, size: 3, gathered: [][]byte{nil, s1, s2}}
	p := &SamplePartitioner{}
	a0, err := p.Plan(c0, keysOf("a", "b", "c"), true)
	if err != nil {
		t.Fatal(err)
	}
	cf := &fakeComm{rank: 1, size: 3, root: c0.root}
	af, err := p.Plan(cf, keysOf("d", "e", "f"), true)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "unseen"} {
		for seq := uint64(0); seq < 4; seq++ {
			if a0.Dest([]byte(k), seq) != af.Dest([]byte(k), seq) {
				t.Fatalf("rank 0 and follower disagree on %q seq %d", k, seq)
			}
		}
		if a0.SplitWidth([]byte(k)) != af.SplitWidth([]byte(k)) {
			t.Fatalf("SplitWidth disagrees on %q", k)
		}
	}
	if a0.Splits() != af.Splits() {
		t.Fatal("Splits() disagrees across ranks")
	}
}

func TestSamplePlanEmptySampleFallsBackToHash(t *testing.T) {
	c := &fakeComm{rank: 0, size: 4, gathered: make([][]byte, 4)}
	a, err := (&SamplePartitioner{}).Plan(c, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b", "zip"} {
		want := int(kvbuf.HashKey([]byte(k)) % 4)
		if got := a.Dest([]byte(k), 0); got != want {
			t.Fatalf("fallback Dest(%q) = %d, want hash %d", k, got, want)
		}
	}
}

func TestAssignmentEncodeDecodeRoundTrip(t *testing.T) {
	orig := computePlan(keysOf("a", "a", "a", "a", "b", "c", "d", "e"), 4, true)
	dec, err := decodeAssignment(orig.encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.size != orig.size || dec.hash != orig.hash {
		t.Fatalf("header mismatch: %+v vs %+v", dec, orig)
	}
	if len(dec.uppers) != len(orig.uppers) {
		t.Fatalf("uppers %d vs %d", len(dec.uppers), len(orig.uppers))
	}
	for i := range orig.uppers {
		if !bytes.Equal(dec.uppers[i], orig.uppers[i]) {
			t.Fatalf("upper %d mismatch", i)
		}
	}
	if len(dec.splits) != len(orig.splits) {
		t.Fatalf("splits %d vs %d", len(dec.splits), len(orig.splits))
	}
	for k, s := range orig.splits {
		if dec.splits[k] != s {
			t.Fatalf("split %q mismatch", k)
		}
	}
}

func TestDecodeAssignmentRejectsGarbage(t *testing.T) {
	for _, buf := range [][]byte{nil, {9, 9}, {asnVersion}, {asnVersion, 0, 1, 0}} {
		if _, err := decodeAssignment(buf); err == nil {
			t.Fatalf("decoded garbage %v", buf)
		}
	}
}
