// Package partition decides which rank owns each intermediate key. The
// engine's historical behavior — FNV-1a hash of the key modulo the world
// size — becomes HashPartitioner here; SamplePartitioner (sample.go) replaces
// it with sampled, weighted range boundaries so zipf-hot keys stop
// serializing one rank. The package depends only on kvbuf and a tiny Comm
// surface, so core, the workloads engines, and the job service all share one
// implementation.
package partition

import (
	"fmt"

	"mimir/internal/kvbuf"
)

// Comm is the collective surface a planning partitioner may use: the subset
// of *mpi.Comm the sample all-gather and assignment broadcast need. It is
// transport-agnostic — Local, TCP, and the job service's multiplexed job
// channels all satisfy it through the same mpi runtime.
type Comm interface {
	Rank() int
	Size() int
	Allgatherv(b []byte) ([][]byte, error)
	Bcast(b []byte, root int) ([]byte, error)
}

// Assignment is one job's planned key → rank routing. Implementations must
// be identical on every rank (they are either stateless or decoded from one
// broadcast buffer) and safe for concurrent readers.
type Assignment interface {
	// Dest returns the destination rank for key. seq is a per-key emission
	// ordinal the caller maintains for keys whose SplitWidth exceeds 1: the
	// n-th emission of a split key round-robins over the key's split set.
	// For unsplit keys seq is ignored (callers pass 0).
	Dest(key []byte, seq uint64) int
	// SplitWidth returns how many ranks key fans out to (1 = unsplit). The
	// first rank of the split set — Dest(key, 0) — is the key's home, where
	// partial results re-merge after the reduce.
	SplitWidth(key []byte) int
	// Splits reports whether any key is split at all, so callers can skip
	// the re-merge machinery (and its collective) entirely when not.
	Splits() bool
}

// Partitioner is the pluggable key → rank strategy of a job. A planning
// partitioner (NeedsPlan true) is handed a sample of map-side keys and may
// issue collectives on the Comm — the engine guarantees Plan runs at the
// same point in every rank's collective sequence, before the first exchange.
// A non-planning partitioner must not touch the Comm beyond Rank/Size.
type Partitioner interface {
	// Name identifies the strategy in specs, flags, and experiment output.
	Name() string
	// NeedsPlan reports whether Plan requires a key sample and collectives.
	// When false the engine plans immediately, before reading any input.
	NeedsPlan() bool
	// Plan computes the job's assignment. sample holds this rank's sampled
	// keys (nil for non-planning partitioners); split permits hot-key
	// splitting (the engine enables it only for commutative partial
	// reduction without checkpointing, where re-merge is possible).
	Plan(c Comm, sample [][]byte, split bool) (Assignment, error)
}

// HashPartitioner is the engine's default strategy made explicit: FNV-1a
// hash of the key bytes modulo the world size, no planning, no collectives.
type HashPartitioner struct{}

// Name returns "hash".
func (HashPartitioner) Name() string { return "hash" }

// NeedsPlan returns false; hashing needs no sample.
func (HashPartitioner) NeedsPlan() bool { return false }

// Plan returns the stateless hash assignment for the world size.
func (HashPartitioner) Plan(c Comm, _ [][]byte, _ bool) (Assignment, error) {
	return hashAssignment{size: c.Size()}, nil
}

type hashAssignment struct{ size int }

func (a hashAssignment) Dest(key []byte, _ uint64) int {
	return int(kvbuf.HashKey(key) % uint64(a.size))
}

func (hashAssignment) SplitWidth([]byte) int { return 1 }
func (hashAssignment) Splits() bool          { return false }

// Func adapts a plain partition function ("users can provide alternative
// hash functions that suit their needs") to the Partitioner interface. The
// function must be deterministic and identical on every rank; the engine
// validates its return is in [0, nranks).
type Func func(key []byte, nranks int) int

// Name returns "func".
func (Func) Name() string { return "func" }

// NeedsPlan returns false.
func (Func) NeedsPlan() bool { return false }

// Plan wraps the function for the world size.
func (f Func) Plan(c Comm, _ [][]byte, _ bool) (Assignment, error) {
	return funcAssignment{f: f, size: c.Size()}, nil
}

type funcAssignment struct {
	f    Func
	size int
}

func (a funcAssignment) Dest(key []byte, _ uint64) int { return a.f(key, a.size) }
func (funcAssignment) SplitWidth([]byte) int           { return 1 }
func (funcAssignment) Splits() bool                    { return false }

// ByName resolves the partitioner names used by job specs and CLI flags:
// "" or "hash" → HashPartitioner, "sample" → SamplePartitioner.
func ByName(name string) (Partitioner, error) {
	switch name {
	case "", "hash":
		return HashPartitioner{}, nil
	case "sample":
		return &SamplePartitioner{}, nil
	}
	return nil, fmt.Errorf("partition: unknown partitioner %q (want hash or sample)", name)
}
