// Sample-based weighted range partitioning: each rank samples its staged
// map output, the samples are all-gathered, rank 0 computes weighted range
// boundaries (hot keys optionally split over several ranks), and the
// assignment is broadcast before the first exchange — the sample-sort round
// structure of Goodrich et al.'s MRC simulations, applied to the shuffle.
package partition

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"mimir/internal/kvbuf"
)

// SampleKeysPerRank caps how many keys each rank contributes to the plan.
// 256 keys per rank resolve per-rank load to well under a percent of the
// total at the world sizes the experiments run.
const SampleKeysPerRank = 256

// SamplePartitioner draws a map-side key sample on every rank, all-gathers
// it, and routes by weighted range boundaries computed from the sampled key
// frequencies. Keys hotter than a full rank's share are split over several
// consecutive ranks when the job's reduce is commutative (the engine
// re-merges the partials via its partial-reduction callback).
type SamplePartitioner struct {
	// MaxSample overrides SampleKeysPerRank (0 = default). Tests use small
	// values to exercise coarse plans.
	MaxSample int
}

// Name returns "sample".
func (*SamplePartitioner) Name() string { return "sample" }

// SampleCap returns the per-rank sample key limit the engine should draw.
func (p *SamplePartitioner) SampleCap() int {
	if p.MaxSample > 0 {
		return p.MaxSample
	}
	return SampleKeysPerRank
}

// NeedsPlan returns true: the strategy is defined by its sample.
func (*SamplePartitioner) NeedsPlan() bool { return true }

// Plan all-gathers the per-rank samples, computes the weighted range
// assignment on rank 0, and broadcasts it. Every rank must call Plan at the
// same point of its collective sequence. An empty global sample (a job that
// emitted nothing before planning) falls back to hash routing.
func (p *SamplePartitioner) Plan(c Comm, sample [][]byte, split bool) (Assignment, error) {
	gathered, err := c.Allgatherv(encodeSample(sample))
	if err != nil {
		return nil, fmt.Errorf("partition: sample all-gather: %w", err)
	}
	var planBuf []byte
	if c.Rank() == 0 {
		var keys [][]byte
		for _, buf := range gathered {
			ks, err := decodeSample(buf)
			if err != nil {
				return nil, err
			}
			keys = append(keys, ks...)
		}
		planBuf = computePlan(keys, c.Size(), split).encode()
	}
	buf, err := c.Bcast(planBuf, 0)
	if err != nil {
		return nil, fmt.Errorf("partition: assignment broadcast: %w", err)
	}
	return decodeAssignment(buf)
}

// encodeSample length-prefixes each sampled key.
func encodeSample(keys [][]byte) []byte {
	n := 0
	for _, k := range keys {
		n += 4 + len(k)
	}
	out := make([]byte, 0, n)
	for _, k := range keys {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(k)))
		out = append(out, k...)
	}
	return out
}

func decodeSample(buf []byte) ([][]byte, error) {
	var keys [][]byte
	for pos := 0; pos < len(buf); {
		if pos+4 > len(buf) {
			return nil, fmt.Errorf("partition: truncated sample buffer")
		}
		n := int(binary.LittleEndian.Uint32(buf[pos:]))
		pos += 4
		if pos+n > len(buf) {
			return nil, fmt.Errorf("partition: sample key overruns buffer")
		}
		keys = append(keys, buf[pos:pos+n])
		pos += n
	}
	return keys, nil
}

// splitInfo is one hot key's fan-out: the range rank it would have landed on
// and the number of consecutive ranks (mod size) it spreads over.
type splitInfo struct{ home, width int }

// rangeAssignment routes by sorted upper-bound keys: rank r owns keys
// k <= uppers[r] (and above uppers[r-1]); the last rank owns the open tail.
// hash marks the empty-sample fallback.
type rangeAssignment struct {
	size   int
	uppers [][]byte
	splits map[string]splitInfo
	hash   bool
}

func (a *rangeAssignment) rangeRank(key []byte) int {
	lo, hi := 0, len(a.uppers)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(key, a.uppers[mid]) <= 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo // == len(uppers) means the open tail: rank size-1
}

// Dest implements Assignment.
func (a *rangeAssignment) Dest(key []byte, seq uint64) int {
	if a.hash {
		return int(kvbuf.HashKey(key) % uint64(a.size))
	}
	if len(a.splits) > 0 {
		if s, ok := a.splits[string(key)]; ok {
			return (s.home + int(seq%uint64(s.width))) % a.size
		}
	}
	return a.rangeRank(key)
}

// SplitWidth implements Assignment.
func (a *rangeAssignment) SplitWidth(key []byte) int {
	if s, ok := a.splits[string(key)]; ok {
		return s.width
	}
	return 1
}

// Splits implements Assignment.
func (a *rangeAssignment) Splits() bool { return len(a.splits) > 0 }

// computePlan turns the gathered sample into weighted range boundaries.
// Invariants (fuzzed by FuzzRangeBoundaries): boundaries are monotonically
// non-decreasing, every key maps to exactly one rank, and when the sample
// holds at least size distinct keys every rank is assigned a non-empty key
// range. With split set, keys whose sampled mass exceeds a full rank's
// average share fan out over proportionally many consecutive ranks.
func computePlan(keys [][]byte, size int, split bool) *rangeAssignment {
	a := &rangeAssignment{size: size}
	if len(keys) == 0 || size <= 1 {
		a.hash = len(keys) == 0
		return a
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	type group struct {
		key   []byte
		count int
	}
	var groups []group
	for _, k := range keys {
		if n := len(groups); n > 0 && bytes.Equal(groups[n-1].key, k) {
			groups[n-1].count++
			continue
		}
		groups = append(groups, group{key: k, count: 1})
	}
	S, G := len(keys), len(groups)

	// Greedy weighted cuts: each boundary closes a rank once it holds its
	// share of the remaining mass, always taking at least one group and
	// always leaving one group per remaining rank (so ranks only come up
	// empty when there are fewer distinct keys than ranks).
	a.uppers = make([][]byte, size-1)
	gi, acc := 0, 0
	for r := 0; r < size-1; r++ {
		remRanks := size - r
		remGroups := G - gi
		if remGroups <= 0 {
			a.uppers[r] = a.uppers[r-1] // exhausted: empty range
			continue
		}
		var end int
		if remGroups <= remRanks {
			end = gi + 1 // one group per remaining rank
		} else {
			target := acc + int(math.Ceil(float64(S-acc)/float64(remRanks)))
			end = gi + 1
			accR := groups[gi].count
			for end < G-(remRanks-1) && acc+accR < target {
				accR += groups[end].count
				end++
			}
		}
		for i := gi; i < end; i++ {
			acc += groups[i].count
		}
		key := make([]byte, len(groups[end-1].key))
		copy(key, groups[end-1].key)
		a.uppers[r] = key
		gi = end
	}

	if split {
		avg := float64(S) / float64(size)
		for _, g := range groups {
			width := int(float64(g.count)/avg + 0.5)
			if width < 2 {
				continue
			}
			if width > size {
				width = size
			}
			if a.splits == nil {
				a.splits = make(map[string]splitInfo)
			}
			a.splits[string(g.key)] = splitInfo{home: a.rangeRank(g.key), width: width}
		}
	}
	return a
}

// Assignment wire format (version 1):
//
//	u8 version | u8 flags (1 = hash fallback) | u32 size
//	u32 nUppers | nUppers x (u32 len, bytes)
//	u32 nSplits | nSplits x (u32 klen, key, u32 home, u32 width)
const asnVersion = 1

func (a *rangeAssignment) encode() []byte {
	out := []byte{asnVersion, 0}
	if a.hash {
		out[1] = 1
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(a.size))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(a.uppers)))
	for _, u := range a.uppers {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(u)))
		out = append(out, u...)
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(a.splits)))
	// Deterministic order so every rank decodes an identical table even if
	// re-encoded (maps do not iterate deterministically).
	splitKeys := make([]string, 0, len(a.splits))
	for k := range a.splits {
		splitKeys = append(splitKeys, k)
	}
	sort.Strings(splitKeys)
	for _, k := range splitKeys {
		s := a.splits[k]
		out = binary.LittleEndian.AppendUint32(out, uint32(len(k)))
		out = append(out, k...)
		out = binary.LittleEndian.AppendUint32(out, uint32(s.home))
		out = binary.LittleEndian.AppendUint32(out, uint32(s.width))
	}
	return out
}

func decodeAssignment(buf []byte) (*rangeAssignment, error) {
	pos := 0
	u32 := func() (uint32, error) {
		if pos+4 > len(buf) {
			return 0, fmt.Errorf("partition: truncated assignment")
		}
		v := binary.LittleEndian.Uint32(buf[pos:])
		pos += 4
		return v, nil
	}
	take := func(n int) ([]byte, error) {
		if pos+n > len(buf) {
			return nil, fmt.Errorf("partition: assignment field overruns buffer")
		}
		b := make([]byte, n)
		copy(b, buf[pos:pos+n])
		pos += n
		return b, nil
	}
	if len(buf) < 2 || buf[0] != asnVersion {
		return nil, fmt.Errorf("partition: bad assignment header")
	}
	a := &rangeAssignment{hash: buf[1]&1 != 0}
	pos = 2
	size, err := u32()
	if err != nil {
		return nil, err
	}
	a.size = int(size)
	if a.size <= 0 {
		return nil, fmt.Errorf("partition: assignment for %d ranks", a.size)
	}
	nUp, err := u32()
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(nUp); i++ {
		n, err := u32()
		if err != nil {
			return nil, err
		}
		u, err := take(int(n))
		if err != nil {
			return nil, err
		}
		a.uppers = append(a.uppers, u)
	}
	nSp, err := u32()
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(nSp); i++ {
		n, err := u32()
		if err != nil {
			return nil, err
		}
		k, err := take(int(n))
		if err != nil {
			return nil, err
		}
		home, err := u32()
		if err != nil {
			return nil, err
		}
		width, err := u32()
		if err != nil {
			return nil, err
		}
		if a.splits == nil {
			a.splits = make(map[string]splitInfo)
		}
		a.splits[string(k)] = splitInfo{home: int(home), width: int(width)}
	}
	return a, nil
}
