package spill

import (
	"bytes"
	"testing"

	"mimir/internal/kvbuf"
	"mimir/internal/mem"
	"mimir/internal/pfs"
)

// fuzzHint mirrors the helper of internal/kvbuf/fuzz_test.go (test helpers
// are not importable across packages): it maps a pair of mode bytes to a
// Hint, sanitizing (k, v) so they are legal under it. Covers all nine
// combinations of varlen, Fixed, and StrZ on each side.
func fuzzHint(keyMode, valMode uint8, k, v []byte) (kvbuf.Hint, []byte, []byte) {
	side := func(mode uint8, b []byte) (kvbuf.LenMode, []byte) {
		switch mode % 3 {
		case 1:
			n := int(mode/3)%15 + 1
			fixed := make([]byte, n)
			copy(fixed, b)
			return kvbuf.Fixed(n), fixed
		case 2:
			return kvbuf.StrZ(), bytes.ReplaceAll(b, []byte{0}, []byte{1})
		}
		return kvbuf.Varlen(), b
	}
	km, k2 := side(keyMode, k)
	vm, v2 := side(valMode, v)
	return kvbuf.Hint{Key: km, Val: vm}, k2, v2
}

// FuzzSpillRoundTrip drives a store-backed KVC with arbitrary interleavings
// of appends, forced evictions, and pinning scans under every hint mode
// and both policies: the KV multiset must survive any evict/restore/pin
// sequence, and Free must leave the arena empty and the spill file gone
// (mirror of kvbuf's FuzzConvert, with the out-of-core store in the loop).
func FuzzSpillRoundTrip(f *testing.F) {
	f.Add([]byte("the quick brown fox the lazy dog the end"), uint8(0), uint8(0), uint8(0))
	f.Add([]byte("aaaa bb c dddddd bb aaaa"), uint8(2), uint8(0), uint8(3))
	f.Add([]byte{1, 2, 3, 0, 255, 254, 0, 9, 17, 45, 0, 1, 2}, uint8(0), uint8(4), uint8(7))
	f.Add([]byte("spill always and everywhere"), uint8(1), uint8(2), uint8(1))
	f.Add([]byte(""), uint8(1), uint8(1), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, keyMode, valMode, ctl uint8) {
		hint, _, _ := fuzzHint(keyMode, valMode, nil, nil)
		const pageSize = 128
		// Tight but workable arena: room for the append head, a pinned page,
		// and prefetch slack. Odd ctl selects the eager write-behind policy.
		arena := mem.NewArena(8 * pageSize)
		fs := pfs.New(pfs.Config{})
		policy := WhenNeeded
		if ctl%2 == 1 {
			policy = Always
		}
		store := NewStore(Config{Arena: arena, FS: fs, Name: "fuzz", Policy: policy})
		kvc := kvbuf.NewKVCOn(store, arena, pageSize, hint)

		// Slice the fuzz input into KVs (sanitized per hint), interleaving
		// forced evictions and mid-build scans driven by the input bytes.
		type kv struct{ k, v string }
		var want []kv
		for pos := 0; pos+2 <= len(data) && len(want) < 64; {
			klen := int(data[pos]%8) + 1
			vlen := int(data[pos+1] % 8)
			op := data[pos] % 7
			pos += 2
			if pos+klen+vlen > len(data) {
				break
			}
			_, k, v := fuzzHint(keyMode, valMode, data[pos:pos+klen], data[pos+klen:pos+klen+vlen])
			pos += klen + vlen
			if err := kvc.Append(k, v); err != nil {
				t.Fatalf("Append(%q, %q): %v", k, v, err)
			}
			want = append(want, kv{string(k), string(v)})
			switch op {
			case 0:
				store.EvictAll()
			case 1:
				// Pin/unpin sweep mid-build: a scan touches every page.
				if err := kvc.Scan(func(k, v []byte) error { return nil }); err != nil {
					t.Fatalf("mid-build Scan: %v", err)
				}
			}
		}
		if arena.Capacity() > 0 && arena.Used() > arena.Capacity() {
			t.Fatalf("arena over capacity: %d > %d", arena.Used(), arena.Capacity())
		}

		// One more full eviction, then verify the multiset survived.
		store.EvictAll()
		got := map[kv]int{}
		total := 0
		err := kvc.Scan(func(k, v []byte) error {
			got[kv{string(k), string(v)}]++
			total++
			return nil
		})
		if err != nil {
			t.Fatalf("Scan: %v", err)
		}
		if total != len(want) {
			t.Fatalf("container holds %d KVs, appended %d", total, len(want))
		}
		for _, w := range want {
			if got[w] <= 0 {
				t.Fatalf("KV (%q, %q) lost through spill round trip", w.k, w.v)
			}
			got[w]--
		}

		kvc.Free()
		if arena.Used() != 0 {
			t.Fatalf("arena holds %d bytes after Free (leak)", arena.Used())
		}
		if fs.Size(store.Name()) != 0 {
			t.Fatalf("spill file not removed after last Free")
		}
	})
}
