package spill

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"mimir/internal/kvbuf"
	"mimir/internal/mem"
	"mimir/internal/pfs"
	"mimir/internal/simtime"
)

func newTestStore(t *testing.T, capacity int64, policy Policy) (*Store, *mem.Arena, *pfs.FS, *simtime.Clock) {
	t.Helper()
	arena := mem.NewArena(capacity)
	fs := pfs.New(pfs.Config{Bandwidth: 1 << 20, Latency: 1e-3})
	clock := simtime.NewClock()
	s := NewStore(Config{Arena: arena, FS: fs, Clock: clock, Name: t.Name(), Policy: policy})
	return s, arena, fs, clock
}

// TestKVCRoundTripUnderPressure fills a store-backed KVC far past the
// arena capacity and checks every KV scans back intact, that spilling
// actually happened, and that Free returns the arena to empty and removes
// the spill file.
func TestKVCRoundTripUnderPressure(t *testing.T) {
	const pageSize = 256
	s, arena, fs, clock := newTestStore(t, 4*pageSize, WhenNeeded)
	kvc := kvbuf.NewKVCOn(s, arena, pageSize, kvbuf.DefaultHint())

	var want []string
	for i := 0; i < 500; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		v := []byte(fmt.Sprintf("value-%d", i*i))
		if err := kvc.Append(k, v); err != nil {
			t.Fatalf("Append #%d: %v", i, err)
		}
		want = append(want, string(k)+"="+string(v))
	}
	if arena.Used() > arena.Capacity() {
		t.Fatalf("arena over capacity: %d > %d", arena.Used(), arena.Capacity())
	}
	if s.Stats().SpilledBytes == 0 {
		t.Fatalf("500 KVs in a %d-byte arena spilled nothing", arena.Capacity())
	}

	var got []string
	err := kvc.Scan(func(k, v []byte) error {
		got = append(got, string(k)+"="+string(v))
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("scanned %d KVs, appended %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("KV %d: got %q want %q", i, got[i], want[i])
		}
	}
	st := s.Stats()
	if st.Restores == 0 {
		t.Fatalf("scan over spilled data restored nothing: %+v", st)
	}
	if st.IOSec <= 0 {
		t.Fatalf("spill I/O charged no simulated time (clock now %v)", clock.Now())
	}

	kvc.Free()
	if arena.Used() != 0 {
		t.Fatalf("arena holds %d bytes after Free", arena.Used())
	}
	if fs.Size(s.Name()) != 0 {
		t.Fatalf("spill file %q not removed after last Free", s.Name())
	}
}

// TestDrainReleasesPressure checks Drain consumes a mostly-spilled
// container page by page without ever exceeding the arena capacity, and
// leaves nothing behind.
func TestDrainReleasesPressure(t *testing.T) {
	const pageSize = 256
	s, arena, fs, _ := newTestStore(t, 4*pageSize, WhenNeeded)
	kvc := kvbuf.NewKVCOn(s, arena, pageSize, kvbuf.DefaultHint())
	for i := 0; i < 300; i++ {
		if err := kvc.Append([]byte(fmt.Sprintf("k%05d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	err := kvc.Drain(func(k, v []byte) error {
		n++
		if u := arena.Used(); u > arena.Capacity() {
			return fmt.Errorf("arena over capacity mid-drain: %d", u)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if n != 300 {
		t.Fatalf("drained %d of 300 KVs", n)
	}
	if arena.Used() != 0 {
		t.Fatalf("arena holds %d bytes after Drain", arena.Used())
	}
	if fs.Size(s.Name()) != 0 {
		t.Fatalf("spill file survives a full Drain")
	}
}

// TestConvertUnderPressure runs the two-pass convert with both containers
// on a tight store and checks the grouped multiset is intact.
func TestConvertUnderPressure(t *testing.T) {
	// The arena must hold convert's non-spillable floor (index bucket +
	// record metadata + two append heads, ~2.5 KiB here) with the watermark
	// headroom, while input+output (~16 KiB) far exceed it — so the pass-1
	// scan, record reservation, and pass-2 scatter all run against spilled
	// pages.
	const pageSize = 256
	s, arena, _, _ := newTestStore(t, 24*pageSize, WhenNeeded)
	hint := kvbuf.DefaultHint()
	in := kvbuf.NewKVCOn(s, arena, pageSize, hint)
	want := map[string]int{}
	for i := 0; i < 800; i++ {
		k := fmt.Sprintf("key-%d", i%17)
		v := fmt.Sprintf("val-%08d", i)
		if err := in.Append([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[k+"="+v]++
	}
	kmv, err := kvbuf.ConvertOn(s, in, arena, pageSize, hint)
	if err != nil {
		t.Fatalf("ConvertOn: %v", err)
	}
	if s.Stats().SpilledBytes == 0 {
		t.Fatalf("convert of %d bytes in a %d-byte arena spilled nothing", 800*20, arena.Capacity())
	}
	got := map[string]int{}
	keys := 0
	err = kmv.Scan(func(key []byte, vals *kvbuf.ValueIter) error {
		keys++
		for v, ok := vals.Next(); ok; v, ok = vals.Next() {
			got[string(key)+"="+string(v)]++
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if keys != 17 {
		t.Fatalf("KMV has %d unique keys, want 17", keys)
	}
	for kv, n := range want {
		if got[kv] != n {
			t.Fatalf("KV %q: got %d copies, want %d", kv, got[kv], n)
		}
	}
	kmv.Free()
	if arena.Used() != 0 {
		t.Fatalf("arena holds %d bytes after Free", arena.Used())
	}
}

// TestSpillAlwaysWriteBehind: under the Always policy sealed pages go out
// eagerly even with a roomy arena, and re-evicting an untouched restored
// page skips the write (clean drop).
func TestSpillAlwaysWriteBehind(t *testing.T) {
	const pageSize = 256
	s, arena, _, _ := newTestStore(t, 64*pageSize, Always)
	kvc := kvbuf.NewKVCOn(s, arena, pageSize, kvbuf.DefaultHint())
	for i := 0; i < 200; i++ {
		if err := kvc.Append([]byte(fmt.Sprintf("k%05d", i)), []byte("vvvv")); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evictions == 0 || st.SpilledBytes == 0 {
		t.Fatalf("Always policy evicted nothing with sealed pages: %+v", st)
	}
	// Scan restores the pages; they come back clean.
	if err := kvc.Scan(func(k, v []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	spilledBefore := s.Stats().SpilledBytes
	s.EvictAll()
	st = s.Stats()
	if st.CleanDrops == 0 {
		t.Fatalf("re-evicting clean restored pages wrote them again: %+v", st)
	}
	if st.SpilledBytes != spilledBefore {
		t.Fatalf("clean drops still spilled bytes: %d -> %d", spilledBefore, st.SpilledBytes)
	}
	kvc.Free()
}

// TestSequentialPrefetch: a forced full eviction followed by an in-order
// scan should be served partly by readahead.
func TestSequentialPrefetch(t *testing.T) {
	const pageSize = 256
	s, arena, _, _ := newTestStore(t, 16*pageSize, WhenNeeded)
	kvc := kvbuf.NewKVCOn(s, arena, pageSize, kvbuf.DefaultHint())
	for i := 0; i < 400; i++ {
		if err := kvc.Append([]byte(fmt.Sprintf("k%05d", i)), []byte("vvvvvvvv")); err != nil {
			t.Fatal(err)
		}
	}
	s.EvictAll()
	if err := kvc.Scan(func(k, v []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.PrefetchHits == 0 {
		t.Fatalf("sequential scan over evicted pages had no prefetch hits: %+v", st)
	}
	kvc.Free()
}

// TestKMVCScatterDirty: values scattered into an already-spilled KMV record
// page must survive a later eviction (MarkDirty forces the rewrite).
func TestKMVCScatterDirty(t *testing.T) {
	const pageSize = 256
	s, arena, _, _ := newTestStore(t, 0, WhenNeeded) // unlimited; evict manually
	hint := kvbuf.DefaultHint()
	kmv := kvbuf.NewKMVCOn(s, arena, pageSize, hint)
	var ids []int
	for i := 0; i < 40; i++ {
		id, err := kmv.NewRecord([]byte(fmt.Sprintf("key-%02d", i)), 1, 8)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	s.EvictAll() // headers hit the file; records now spilled
	for i, id := range ids {
		if err := kmv.AppendValue(id, []byte(fmt.Sprintf("%08d", i))); err != nil {
			t.Fatalf("AppendValue into spilled record: %v", err)
		}
	}
	s.EvictAll() // dirty pages must be rewritten, not clean-dropped
	got := map[string]string{}
	err := kmv.Scan(func(key []byte, vals *kvbuf.ValueIter) error {
		v, _ := vals.Next()
		got[string(key)] = string(v)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		k := fmt.Sprintf("key-%02d", i)
		if got[k] != fmt.Sprintf("%08d", i) {
			t.Fatalf("record %q holds %q after dirty evict/restore", k, got[k])
		}
	}
	kmv.Free()
	if arena.Used() != 0 {
		t.Fatalf("arena holds %d bytes after Free", arena.Used())
	}
}

// TestWatermarkHeadroom: page allocations through the store keep usage at
// or under the watermark whenever there is anything left to evict.
func TestWatermarkHeadroom(t *testing.T) {
	const pageSize = 256
	arena := mem.NewArena(20 * pageSize)
	fs := pfs.New(pfs.Config{})
	s := NewStore(Config{Arena: arena, FS: fs, Name: t.Name(), Watermark: 0.5})
	kvc := kvbuf.NewKVCOn(s, arena, pageSize, kvbuf.DefaultHint())
	for i := 0; i < 1000; i++ {
		if err := kvc.Append([]byte(fmt.Sprintf("k%06d", i)), []byte("vv")); err != nil {
			t.Fatal(err)
		}
		// The append head may carry usage one page past the watermark, but
		// never beyond watermark + one page.
		if limit := arena.Watermark(0.5) + pageSize; arena.Used() > limit {
			t.Fatalf("usage %d exceeds watermark+page %d at append %d", arena.Used(), limit, i)
		}
	}
	kvc.Free()
}

// TestReserveEvicts: metadata reservations routed through the store evict
// pages instead of failing.
func TestReserveEvicts(t *testing.T) {
	const pageSize = 256
	s, arena, _, _ := newTestStore(t, 4*pageSize, WhenNeeded)
	kvc := kvbuf.NewKVCOn(s, arena, pageSize, kvbuf.DefaultHint())
	for i := 0; i < 64; i++ {
		if err := kvc.Append([]byte(fmt.Sprintf("k%05d", i)), []byte("vvvvvvvvvvvv")); err != nil {
			t.Fatal(err)
		}
	}
	// Fill the arena to the brim with sealed pages resident, then demand
	// metadata: the store must evict to satisfy it.
	if err := s.Reserve(3 * pageSize); err != nil {
		t.Fatalf("Reserve with evictable pages failed: %v", err)
	}
	arena.Free(3 * pageSize)
	kvc.Free()
}

// TestGroupCrossStoreEviction: a grouped store with no evictable pages of
// its own evicts the globally coldest page of a peer. The spill write goes
// to the victim's file, but the I/O and counters are charged to the
// initiator — its rank is the one doing the work.
func TestGroupCrossStoreEviction(t *testing.T) {
	const pageSize = 256
	arena := mem.NewArena(4 * pageSize)
	fs := pfs.New(pfs.Config{Bandwidth: 1 << 20, Latency: 1e-3})
	g := NewGroup()
	sa := NewStore(Config{Arena: arena, FS: fs, Name: "a", Group: g, Watermark: 1})
	sb := NewStore(Config{Arena: arena, FS: fs, Name: "b", Group: g, Watermark: 1})

	// Rank A: three cold sealed pages with known contents.
	var aIDs []kvbuf.PageID
	for i := 0; i < 3; i++ {
		id, p, err := sa.NewPage(pageSize)
		if err != nil {
			t.Fatal(err)
		}
		for j := range p.Buf {
			p.Buf[j] = byte('a' + i)
		}
		p.Used = pageSize
		sa.Seal(id)
		aIDs = append(aIDs, id)
	}

	// Rank B: fill the rest, keep it unsealed so B has nothing of its own to
	// evict, then allocate once more. The only way to make room is A's pages.
	_, _, err := sb.NewPage(pageSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sb.NewPage(pageSize); err != nil {
		t.Fatalf("grouped NewPage with a peer's cold pages available: %v", err)
	}
	if got := sb.Stats(); got.Evictions != 1 || got.SpilledBytes != pageSize {
		t.Fatalf("initiator stats = %+v, want 1 eviction of %d bytes", got, pageSize)
	}
	if got := sa.Stats(); got.Evictions != 0 || got.SpilledBytes != 0 {
		t.Fatalf("victim charged for a peer's eviction: %+v", got)
	}
	if fs.Size(sa.Name()) != pageSize {
		t.Fatalf("victim file holds %d bytes, want %d (cross-eviction must write to the owner's file)", fs.Size(sa.Name()), pageSize)
	}

	// The shared LRU clock must have picked A's oldest page.
	p, err := sa.Pin(aIDs[0])
	if err != nil {
		t.Fatalf("restoring the cross-evicted page: %v", err)
	}
	for j := range p.Data() {
		if p.Data()[j] != 'a' {
			t.Fatalf("page byte %d = %q after cross-eviction round trip", j, p.Data()[j])
		}
	}
	sa.Unpin(aIDs[0])
}

// TestGroupWaitsForUnpin: when nothing is evictable but a peer holds a
// pin, a grouped allocation blocks until the peer unpins instead of
// failing — the transient all-ranks-pinned spike that a shared node arena
// produces under concurrent reduce scans.
func TestGroupWaitsForUnpin(t *testing.T) {
	const pageSize = 256
	arena := mem.NewArena(2 * pageSize)
	fs := pfs.New(pfs.Config{})
	g := NewGroup()
	sa := NewStore(Config{Arena: arena, FS: fs, Name: "a", Group: g, Watermark: 1})
	sb := NewStore(Config{Arena: arena, FS: fs, Name: "b", Group: g, Watermark: 1})

	a0, _, err := sa.NewPage(pageSize)
	if err != nil {
		t.Fatal(err)
	}
	sa.Seal(a0)
	if _, err := sa.Pin(a0); err != nil {
		t.Fatal(err)
	}
	b0, _, err := sb.NewPage(pageSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sb.Pin(b0); err != nil {
		t.Fatal(err)
	}

	// The arena is full of pinned pages. B's next allocation must wait.
	done := make(chan error, 1)
	go func() {
		_, _, err := sb.NewPage(pageSize)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let B reach the wait
	// A second allocation while every other member is already waiting is
	// the mutual hold-and-wait: it must fail, not deadlock.
	if _, _, err := sa.NewPage(pageSize); !errors.Is(err, mem.ErrNoMemory) {
		t.Fatalf("all-members-waiting allocation: %v, want ErrNoMemory", err)
	}
	sa.Unpin(a0) // a0 becomes evictable; the waiter must pick it up
	if err := <-done; err != nil {
		t.Fatalf("allocation after peer unpin: %v", err)
	}
	if got := sb.Stats(); got.Evictions != 1 {
		t.Fatalf("waiter stats = %+v, want the unpinned peer page evicted", got)
	}
}

// TestGroupDeadStoresLeave: stores from earlier stages of an iterative
// workload (all pages freed) must leave the group. Regression test: dead
// members used to linger in Group.stores, inflating the peer count so the
// mutual hold-and-wait check could never fire and every live rank hung in
// cond.Wait instead of getting ErrNoMemory.
func TestGroupDeadStoresLeave(t *testing.T) {
	const pageSize = 256
	arena := mem.NewArena(2 * pageSize)
	fs := pfs.New(pfs.Config{})
	g := NewGroup()

	// Three finished "stages": each store joins, allocates, and frees all
	// its pages.
	for i := 0; i < 3; i++ {
		s := NewStore(Config{Arena: arena, FS: fs, Name: "old", Group: g, Watermark: 1})
		id, _, err := s.NewPage(pageSize)
		if err != nil {
			t.Fatal(err)
		}
		s.Free(id)
	}
	g.mu.Lock()
	n := len(g.stores)
	g.mu.Unlock()
	if n != 0 {
		t.Fatalf("group holds %d members after all their pages were freed, want 0", n)
	}

	// Current stage: replay the mutual hold-and-wait of TestGroupWaitsForUnpin.
	sa := NewStore(Config{Arena: arena, FS: fs, Name: "a", Group: g, Watermark: 1})
	sb := NewStore(Config{Arena: arena, FS: fs, Name: "b", Group: g, Watermark: 1})
	a0, _, err := sa.NewPage(pageSize)
	if err != nil {
		t.Fatal(err)
	}
	sa.Seal(a0)
	if _, err := sa.Pin(a0); err != nil {
		t.Fatal(err)
	}
	b0, _, err := sb.NewPage(pageSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sb.Pin(b0); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := sb.NewPage(pageSize)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let B reach the wait
	// Every live peer is now waiting; with dead stores still counted this
	// allocation would join the wait forever instead of failing.
	errc := make(chan error, 1)
	go func() {
		_, _, err := sa.NewPage(pageSize)
		errc <- err
	}()
	select {
	case err := <-errc:
		if !errors.Is(err, mem.ErrNoMemory) {
			t.Fatalf("all-live-members-waiting allocation: %v, want ErrNoMemory", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("allocation deadlocked: dead group members masked the mutual hold-and-wait")
	}
	sa.Unpin(a0)
	if err := <-done; err != nil {
		t.Fatalf("allocation after peer unpin: %v", err)
	}
}

// TestGroupRejoinAfterFree: a store that left the group on its last Free
// re-enrolls when it allocates again, so peers can once more evict its
// cold pages.
func TestGroupRejoinAfterFree(t *testing.T) {
	const pageSize = 256
	arena := mem.NewArena(2 * pageSize)
	fs := pfs.New(pfs.Config{})
	g := NewGroup()
	sa := NewStore(Config{Arena: arena, FS: fs, Name: "a", Group: g, Watermark: 1})
	sb := NewStore(Config{Arena: arena, FS: fs, Name: "b", Group: g, Watermark: 1})

	id, _, err := sa.NewPage(pageSize)
	if err != nil {
		t.Fatal(err)
	}
	sa.Free(id) // sa leaves the group

	// sa comes back with a cold sealed page...
	a0, _, err := sa.NewPage(pageSize)
	if err != nil {
		t.Fatal(err)
	}
	sa.Seal(a0)
	// ...which sb's allocations must be able to evict cross-store.
	if _, _, err := sb.NewPage(pageSize); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sb.NewPage(pageSize); err != nil {
		t.Fatalf("grouped NewPage with a re-joined peer's cold page available: %v", err)
	}
	if got := sb.Stats(); got.Evictions != 1 {
		t.Fatalf("initiator stats = %+v, want the re-joined peer's page evicted", got)
	}
}

// TestGroupNoPinFailsFast: with nothing evictable and no peer pin in
// flight there is no release to wait for (the peer may be blocked in a
// collective), so the allocation fails immediately.
func TestGroupNoPinFailsFast(t *testing.T) {
	const pageSize = 256
	arena := mem.NewArena(pageSize)
	fs := pfs.New(pfs.Config{})
	g := NewGroup()
	sa := NewStore(Config{Arena: arena, FS: fs, Name: "a", Group: g, Watermark: 1})
	sb := NewStore(Config{Arena: arena, FS: fs, Name: "b", Group: g, Watermark: 1})

	if _, _, err := sa.NewPage(pageSize); err != nil { // unsealed: not evictable
		t.Fatal(err)
	}
	if _, _, err := sb.NewPage(pageSize); !errors.Is(err, mem.ErrNoMemory) {
		t.Fatalf("allocation with no evictable and no pinned peer: %v, want ErrNoMemory", err)
	}
}

// TestOversizedRecord: a record larger than the page size gets a dedicated
// page that spills and restores like any other.
func TestOversizedRecord(t *testing.T) {
	const pageSize = 128
	s, arena, _, _ := newTestStore(t, 8*pageSize, WhenNeeded)
	kvc := kvbuf.NewKVCOn(s, arena, pageSize, kvbuf.DefaultHint())
	big := make([]byte, 4*pageSize)
	for i := range big {
		big[i] = byte('a' + i%26)
	}
	if err := kvc.Append([]byte("big"), big); err != nil {
		t.Fatalf("oversized append: %v", err)
	}
	for i := 0; i < 64; i++ {
		if err := kvc.Append([]byte(fmt.Sprintf("k%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	found := false
	err := kvc.Scan(func(k, v []byte) error {
		if string(k) == "big" {
			found = string(v) == string(big)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatalf("oversized record lost or corrupted through spill")
	}
	kvc.Free()
	if arena.Used() != 0 {
		t.Fatalf("arena holds %d bytes after Free", arena.Used())
	}
}
