// Package spill is Mimir's out-of-core store: page-granular eviction of
// the dynamic KV/KMV container pages to the simulated parallel file
// system. The paper deliberately ships no out-of-core path — when a
// dataset outgrows node memory the job fails with mem.ErrNoMemory (its
// missing data points) — and names one as future work. This package fills
// that gap while keeping the containers' dynamic-paged design: pages are
// still allocated on demand and sized exactly, but once a page is sealed
// (its container moved on to the next one) it becomes a candidate for
// eviction to the PFS, and container scans pin pages to stream them back.
//
// Because all spill traffic goes through internal/pfs, every evicted or
// restored byte is charged simulated I/O time under the shared-bandwidth
// model — so the Figure-1-style cliff appears honestly when Mimir goes
// out of core, just as it does for MR-MPI's static pages.
package spill

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mimir/internal/kvbuf"
	"mimir/internal/mem"
	"mimir/internal/pfs"
	"mimir/internal/simtime"
)

// Defaults for Config knobs left zero.
const (
	// DefaultWatermark is the fraction of arena capacity the store tries
	// to keep page usage under. The headroom above it is reserved for
	// allocations that cannot spill: send/receive buffers, hash buckets,
	// and container metadata.
	DefaultWatermark = 0.85
	// DefaultPrefetch is how many subsequent evicted pages a restore
	// brings back along with the requested one (sequential prefetch for
	// container scans).
	DefaultPrefetch = 2
)

// Policy selects when pages are written out.
type Policy int

const (
	// WhenNeeded evicts cold sealed pages only when an allocation would
	// push the arena past the watermark (MR-MPI's "spill when needed").
	WhenNeeded Policy = iota
	// Always additionally writes every page out the moment it is sealed
	// (MR-MPI's "spill always"): the write-behind happens eagerly, trading
	// I/O time for the lowest possible resident footprint.
	Always
)

// String returns the conventional name of the policy.
func (p Policy) String() string {
	if p == Always {
		return "spill-always"
	}
	return "spill-when-needed"
}

// Group coordinates the stores of the ranks that share one node arena.
// Memory pressure on a shared arena is a node-level condition: the rank
// that hits the watermark is rarely the rank holding the coldest pages, and
// a rank blocked in a collective still holds resident pages it will not
// touch for a while. A grouped store that runs out of its own evictable
// pages therefore evicts the globally coldest sealed page of any member,
// so one rank's allocation can push another rank's cold data out — exactly
// what a node-wide buffer pool would do.
//
// All methods of grouped stores serialize on the group's mutex, making
// them safe to call from the node's rank goroutines concurrently. The I/O
// time of a cross-store eviction is charged to the rank that needed the
// room (it is the one waiting), and so are its Stats counters.
//
// Grouped allocation also waits: when nothing is evictable but a peer rank
// holds pinned pages (it is mid-scan and will unpin), the allocating rank
// blocks until a peer releases memory rather than failing on a transient
// all-ranks-pinned spike. Only when waiting cannot help — no peer holds a
// pin, or every other member is asleep with no wake-up pending (mutual
// hold-and-wait) — does ErrNoMemory escape.
type Group struct {
	mu      sync.Mutex
	cond    *sync.Cond // signaled on Unpin/Seal/Free (memory may be available)
	tick    int64      // shared LRU clock, so lastUse is comparable across members
	seq     int64      // release-event counter; see waitForRoom
	waiters int
	stores  []*Store
}

// NewGroup creates an empty group; stores join via Config.Group.
func NewGroup() *Group {
	g := &Group{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// join adds s to the group's member list; idempotent. Callers hold g.mu.
func (g *Group) join(s *Store) {
	for _, m := range g.stores {
		if m == s {
			return
		}
	}
	g.stores = append(g.stores, s)
}

// remove drops s from the group's member list. Callers hold g.mu. A store
// leaves when its last page is freed: iterative workloads create one store
// per stage against a long-lived group, and dead members would both leak
// and — worse — inflate the peer count in waitForRoom until the mutual
// hold-and-wait detection could never fire.
func (g *Group) remove(s *Store) {
	for i, m := range g.stores {
		if m == s {
			g.stores = append(g.stores[:i], g.stores[i+1:]...)
			return
		}
	}
}

// Config configures a Store.
type Config struct {
	// Arena is the node memory pool the pages are charged to. Required.
	Arena *mem.Arena
	// FS is the parallel file system that receives evicted pages. Required.
	FS *pfs.FS
	// Clock is the owning rank's simulated clock, charged for all spill
	// I/O. May be nil in unit tests (no time is charged).
	Clock *simtime.Clock
	// Name prefixes the store's spill file (a unique suffix is always
	// appended, so concurrent and successive stores never collide).
	Name string
	// Policy selects eager (Always) or pressure-driven (WhenNeeded)
	// write-out.
	Policy Policy
	// Watermark overrides DefaultWatermark (fraction of arena capacity);
	// values outside (0, 1] use the default. Ignored for unlimited arenas,
	// which never spill under WhenNeeded.
	Watermark float64
	// Prefetch overrides DefaultPrefetch; negative disables prefetch.
	Prefetch int
	// Group, when set, enrolls the store in a node-level eviction group
	// (see Group). Stores of ranks sharing an Arena should share a Group.
	Group *Group
}

// Stats counts what a store did. All fields are cumulative.
type Stats struct {
	// SpilledBytes is the total bytes written to the spill file.
	SpilledBytes int64
	// RestoredBytes is the total bytes read back from the spill file.
	RestoredBytes int64
	// Evictions counts pages dropped from memory (whether or not a write
	// was needed).
	Evictions int64
	// CleanDrops counts evictions that skipped the write because the
	// page's spill copy was still valid (the write-behind dividend).
	CleanDrops int64
	// Restores counts pages brought back from the spill file.
	Restores int64
	// PrefetchHits counts pins satisfied by a page a previous restore
	// prefetched sequentially.
	PrefetchHits int64
	// IOSec is the simulated seconds charged for spill I/O.
	IOSec float64
}

// Add accumulates o into s (used to aggregate per-rank stores).
func (s *Stats) Add(o Stats) {
	s.SpilledBytes += o.SpilledBytes
	s.RestoredBytes += o.RestoredBytes
	s.Evictions += o.Evictions
	s.CleanDrops += o.CleanDrops
	s.Restores += o.Restores
	s.PrefetchHits += o.PrefetchHits
	s.IOSec += o.IOSec
}

// fileSeq makes every store's spill file unique even when stores share a
// FS and a Name (successive jobs of an iterative workload, many ranks).
var fileSeq atomic.Int64

// pstate is the store's bookkeeping for one registered page.
type pstate struct {
	page       *mem.Page
	size       int // allocation size (== len(Buf) when resident)
	off        int64
	spilledLen int
	pins       int
	lastUse    int64
	sealed     bool
	spilled    bool // a valid copy exists at off..off+spilledLen
	dirty      bool // resident bytes differ from the spill copy
	prefetched bool
	freed      bool
}

// Store owns one rank's out-of-core page set. It implements
// kvbuf.PageStore; see that interface for the calling contract. An
// ungrouped Store is confined to its rank's goroutine (like the rank's
// Clock); a grouped one may additionally have its cold pages evicted by
// peer stores under the group lock. A Store needs no explicit Close: when
// every registered page has been freed — including pages owned by a Job's
// Output, which can outlive the job — the spill file is removed.
type Store struct {
	cfg      Config
	name     string
	pages    []pstate
	live     int   // registered, not yet freed
	fileEnd  int64 // next append offset in the spill file
	tick     int64 // LRU clock
	waiting  bool  // parked in waitForRoom (grouped stores only)
	sleepSeq int64 // Group.seq observed when the store went to sleep
	stats    Stats
}

// NewStore creates a store over the given arena and file system.
func NewStore(cfg Config) *Store {
	if cfg.Arena == nil || cfg.FS == nil {
		panic("spill: Config.Arena and Config.FS are required")
	}
	if cfg.Watermark <= 0 || cfg.Watermark > 1 {
		cfg.Watermark = DefaultWatermark
	}
	if cfg.Prefetch == 0 {
		cfg.Prefetch = DefaultPrefetch
	}
	s := &Store{
		cfg:  cfg,
		name: fmt.Sprintf("%s.spill#%d", cfg.Name, fileSeq.Add(1)),
	}
	if g := cfg.Group; g != nil {
		g.mu.Lock()
		g.join(s)
		g.mu.Unlock()
	}
	return s
}

// lock serializes grouped stores on the group mutex; ungrouped stores are
// single-goroutine and need none. Returns the matching unlock.
func (s *Store) lock() func() {
	if g := s.cfg.Group; g != nil {
		g.mu.Lock()
		return g.mu.Unlock
	}
	return func() {}
}

// nextTick advances the LRU clock (the group's, when grouped, so that
// lastUse is comparable across member stores).
func (s *Store) nextTick() int64 {
	if g := s.cfg.Group; g != nil {
		g.tick++
		return g.tick
	}
	s.tick++
	return s.tick
}

// released wakes grouped waiters after an event that may have freed
// memory or made a page evictable. Every release advances the group's
// event counter, so waitForRoom can tell a waiter with a wake-up pending
// from one that will sleep forever. Callers hold the group mutex.
func (s *Store) released() {
	g := s.cfg.Group
	if g == nil {
		return
	}
	g.seq++
	if g.waiters > 0 {
		g.cond.Broadcast()
	}
}

// waitForRoom blocks a grouped store until a peer releases memory. It only
// waits when some peer currently holds a pinned page: pins are transient
// (a scan iteration, a record scatter), so a future Unpin or Free is
// guaranteed to broadcast. It reports false when waiting is futile — the
// store is ungrouped, no peer holds a pin, or every peer is hopelessly
// asleep (mutual hold-and-wait: each rank pins its record while
// allocating, so none will ever unpin) — in which case the node really is
// out of memory.
//
// "Hopelessly asleep" is exact, not a count: a peer parked in Wait with a
// release event pending (Group.seq advanced since it slept) will wake and
// make progress, so it is safe to sleep alongside it; only a peer whose
// sleepSeq still equals Group.seq can never be woken by anyone currently
// running. A bare waiter count would race with wake-ups in flight and
// declare OOM spuriously. The peer scan covers only the current member
// list — stores with registered pages (fully freed stores leave the
// group) — so dead generations of an iterative workload cannot mask the
// deadlock. Callers hold the group mutex, which Wait releases, so peer
// ranks keep running while this one sleeps.
func (s *Store) waitForRoom() bool {
	g := s.cfg.Group
	if g == nil {
		return false
	}
	peers, hopeless := 0, 0
	pinned := false
	for _, m := range g.stores {
		if m == s {
			continue
		}
		peers++
		if m.waiting && m.sleepSeq == g.seq {
			hopeless++
		}
		if pinned {
			continue
		}
		for i := range m.pages {
			if !m.pages[i].freed && m.pages[i].pins > 0 {
				pinned = true
				break
			}
		}
	}
	if !pinned || hopeless >= peers {
		return false
	}
	g.waiters++
	s.waiting = true
	s.sleepSeq = g.seq
	g.cond.Wait()
	s.waiting = false
	g.waiters--
	return true
}

// Name returns the store's spill file name on its FS.
func (s *Store) Name() string { return s.name }

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	defer s.lock()()
	return s.stats
}

// ResidentPages returns how many registered pages currently hold memory.
func (s *Store) ResidentPages() int {
	defer s.lock()()
	n := 0
	for i := range s.pages {
		if !s.pages[i].freed && s.pages[i].page.Resident() {
			n++
		}
	}
	return n
}

// NewPage allocates and registers a page, evicting cold pages as needed to
// respect the watermark and, failing that, to satisfy the allocation at
// all. Only when nothing evictable remains does ErrNoMemory escape.
func (s *Store) NewPage(size int) (kvbuf.PageID, *mem.Page, error) {
	defer s.lock()()
	s.makeRoom(int64(size))
	var p *mem.Page
	for {
		var err error
		p, err = s.cfg.Arena.NewPage(size)
		if err == nil {
			break
		}
		if !s.evictOne() && !s.waitForRoom() {
			return 0, nil, err
		}
	}
	s.pages = append(s.pages, pstate{page: p, size: size, lastUse: s.nextTick(), dirty: true})
	s.live++
	if g := s.cfg.Group; g != nil && s.live == 1 {
		g.join(s) // re-enroll a store that left when its last page was freed
	}
	return kvbuf.PageID(len(s.pages) - 1), p, nil
}

// Pin makes the page resident and protected from eviction.
func (s *Store) Pin(id kvbuf.PageID) (*mem.Page, error) {
	defer s.lock()()
	st := s.state(id)
	st.lastUse = s.nextTick()
	if !st.page.Resident() {
		if err := s.restore(st); err != nil {
			return nil, err
		}
		s.prefetchAfter(int(id))
	} else if st.prefetched {
		s.stats.PrefetchHits++
		st.prefetched = false
	}
	st.pins++
	return st.page, nil
}

// Unpin releases one pin.
func (s *Store) Unpin(id kvbuf.PageID) {
	defer s.lock()()
	st := s.state(id)
	if st.pins <= 0 {
		panic("spill: Unpin without matching Pin")
	}
	st.pins--
	if st.pins == 0 {
		s.released() // the page is evictable again; waiters can retry
	}
}

// Seal marks the page complete and evictable. Under the Always policy the
// page is written out (and dropped) immediately.
func (s *Store) Seal(id kvbuf.PageID) {
	defer s.lock()()
	st := s.state(id)
	st.sealed = true
	if s.cfg.Policy == Always && st.pins == 0 && st.page.Resident() {
		s.evict(st)
	}
	s.released() // a new eviction candidate (or, under Always, free memory)
}

// MarkDirty invalidates the page's spill copy.
func (s *Store) MarkDirty(id kvbuf.PageID) {
	defer s.lock()()
	s.state(id).dirty = true
}

// Free unregisters the page. When the last registered page is freed the
// spill file is removed and the store leaves its group (it re-joins on its
// next allocation), so iterative workloads don't accumulate dead members.
func (s *Store) Free(id kvbuf.PageID) {
	defer s.lock()()
	st := s.state(id)
	if st.freed {
		return
	}
	st.page.Release() // returns the reservation if resident; no-op if evicted
	st.freed = true
	st.pins = 0
	s.live--
	s.released()
	if s.live == 0 {
		s.cfg.FS.Remove(s.name)
		s.pages = nil
		s.fileEnd = 0
		if g := s.cfg.Group; g != nil {
			g.remove(s)
		}
	}
}

// Reserve charges n non-page bytes to the arena, evicting pages for room.
func (s *Store) Reserve(n int64) error {
	defer s.lock()()
	s.makeRoom(n)
	for !s.cfg.Arena.TryGrab(n) {
		if !s.evictOne() && !s.waitForRoom() {
			return fmt.Errorf("%w: want %d bytes with nothing left to spill", mem.ErrNoMemory, n)
		}
	}
	return nil
}

// EvictAll forces every evictable page out (tests and fault injection).
func (s *Store) EvictAll() {
	defer s.lock()()
	for i := range s.pages {
		st := &s.pages[i]
		if s.evictable(st) {
			s.evict(st)
		}
	}
}

func (s *Store) state(id kvbuf.PageID) *pstate {
	st := &s.pages[id]
	if st.freed {
		panic(fmt.Sprintf("spill: use of freed page %d", id))
	}
	return st
}

func (s *Store) evictable(st *pstate) bool {
	return !st.freed && st.sealed && st.pins == 0 && st.page.Resident()
}

// makeRoom evicts coldest-first until usage+n fits under the watermark (or
// nothing evictable remains). Under WhenNeeded with an unlimited arena the
// watermark is 0 and this is a no-op — the store never spills.
func (s *Store) makeRoom(n int64) {
	w := s.cfg.Arena.Watermark(s.cfg.Watermark)
	if w <= 0 {
		return
	}
	for s.cfg.Arena.Used()+n > w {
		if !s.evictOne() {
			return
		}
	}
}

// coldest returns the store's least-recently-used evictable page, or nil.
func (s *Store) coldest() *pstate {
	var pick *pstate
	for i := range s.pages {
		st := &s.pages[i]
		if s.evictable(st) && (pick == nil || st.lastUse < pick.lastUse) {
			pick = st
		}
	}
	return pick
}

// evictOne drops the least-recently-used evictable page of this store —
// or, when it has none and belongs to a group, of the coldest peer store.
// Reports whether a page was evicted.
func (s *Store) evictOne() bool {
	if st := s.coldest(); st != nil {
		s.evict(st)
		return true
	}
	g := s.cfg.Group
	if g == nil {
		return false
	}
	var victim *Store
	var vp *pstate
	for _, m := range g.stores {
		if m == s {
			continue
		}
		if st := m.coldest(); st != nil && (vp == nil || st.lastUse < vp.lastUse) {
			victim, vp = m, st
		}
	}
	if vp == nil {
		return false
	}
	victim.evictBy(vp, s)
	return true
}

// evict writes the page out if its spill copy is missing or stale
// (write-behind: a clean copy means the drop is free) and releases its
// memory. Used survives — see mem.Page.Evict.
func (s *Store) evict(st *pstate) { s.evictBy(st, s) }

// evictBy evicts s's page st on behalf of store `by` (s itself, or a group
// peer that needs the room). The spill write still goes to s's file at s's
// append offset, but the I/O time and the Stats counters are charged to
// `by`: its rank is the one doing — and waiting for — the work, and the
// owning rank may be blocked in a collective with its clock unsafe to
// touch.
func (s *Store) evictBy(st *pstate, by *Store) {
	if st.dirty || !st.spilled {
		data := st.page.Data()
		if st.spilled && len(data) == st.spilledLen {
			// A dirty rewrite of an unchanged-size page goes back to its
			// slot in place — convert's pass-2 scatter redirties sealed KMV
			// pages constantly, and appending a fresh copy each time would
			// grow the spill file without bound.
			by.charged(func() {
				if err := s.cfg.FS.WriteAt(by.cfg.Clock, s.name, st.off, data); err != nil {
					// The slot was appended when the page first spilled and the
					// file lives until the last page is freed, so this cannot
					// fail unless the store's bookkeeping is broken — and
					// marking the page clean anyway would serve stale bytes on
					// the next restore.
					panic(fmt.Sprintf("spill: in-place rewrite of spilled page: %v", err))
				}
			})
		} else {
			by.charged(func() { s.cfg.FS.Append(by.cfg.Clock, s.name, data) })
			st.off = s.fileEnd
			st.spilledLen = len(data)
			s.fileEnd += int64(len(data))
		}
		st.spilled = true
		st.dirty = false
		by.stats.SpilledBytes += int64(len(data))
	} else {
		by.stats.CleanDrops++
	}
	st.page.Evict()
	st.prefetched = false
	by.stats.Evictions++
}

// restore brings an evicted page back, evicting colder pages if the arena
// is full.
func (s *Store) restore(st *pstate) error {
	s.makeRoom(int64(st.size))
	for {
		err := st.page.Restore(st.size)
		if err == nil {
			break
		}
		if !s.evictOne() && !s.waitForRoom() {
			return fmt.Errorf("spill: restoring page: %w", err)
		}
	}
	var data []byte
	var err error
	s.charged(func() {
		data, err = s.cfg.FS.ReadAt(s.cfg.Clock, s.name, st.off, int64(st.spilledLen))
	})
	if err != nil {
		st.page.Evict()
		return fmt.Errorf("spill: reading back page: %w", err)
	}
	copy(st.page.Buf, data)
	st.page.Used = st.spilledLen
	s.stats.Restores++
	s.stats.RestoredBytes += int64(st.spilledLen)
	return nil
}

// prefetchAfter sequentially restores up to Prefetch evicted pages
// following page i, but only into free headroom under the watermark —
// prefetch never evicts, so scan readahead cannot double residency.
// Container pages are registered in append order, so id order is scan
// order.
func (s *Store) prefetchAfter(i int) {
	if s.cfg.Prefetch <= 0 {
		return
	}
	w := s.cfg.Arena.Watermark(s.cfg.Watermark)
	fetched := 0
	for j := i + 1; j < len(s.pages) && fetched < s.cfg.Prefetch; j++ {
		st := &s.pages[j]
		if st.freed || !st.sealed || st.page.Resident() {
			continue
		}
		if w > 0 && s.cfg.Arena.Used()+int64(st.size) > w {
			return
		}
		if err := st.page.Restore(st.size); err != nil {
			return
		}
		var data []byte
		var err error
		s.charged(func() {
			data, err = s.cfg.FS.ReadAt(s.cfg.Clock, s.name, st.off, int64(st.spilledLen))
		})
		if err != nil {
			st.page.Evict()
			return
		}
		copy(st.page.Buf, data)
		st.page.Used = st.spilledLen
		st.prefetched = true
		st.lastUse = s.nextTick()
		s.stats.Restores++
		s.stats.RestoredBytes += int64(st.spilledLen)
		fetched++
	}
}

// charged runs fn and attributes the simulated I/O time it advances to the
// store's IOSec counter.
func (s *Store) charged(fn func()) {
	if s.cfg.Clock == nil {
		fn()
		return
	}
	before := s.cfg.Clock.Spent(simtime.IO)
	fn()
	s.stats.IOSec += s.cfg.Clock.Spent(simtime.IO) - before
}

// Interface conformance.
var _ kvbuf.PageStore = (*Store)(nil)
