// Package transport is the rank-to-rank byte movement layer of the MPI-like
// runtime (internal/mpi). The runtime's semantics — tagged point-to-point
// matching, collective synchronization, abort propagation — are defined one
// layer up in terms of two primitives this package provides: a tagged
// mailbox send/recv pair and a collective byte exchange (an Alltoallv of
// byte buffers that doubles as the rendezvous all collectives are built on).
//
// Two implementations exist:
//
//   - Local: every rank is a goroutine in this process, messages move
//     through shared memory, and operations complete in simulated time
//     (internal/simtime). This is the default and what the experiment
//     harness uses to reproduce the paper's figures.
//   - TCP: every rank is its own OS process and byte movement is real —
//     a full mesh of TCP connections with a length-prefixed wire codec,
//     established by a bootstrap rendezvous at rank 0. Operations take
//     wall-clock time, which feeds the existing metrics.
package transport

import "errors"

// ErrAborted is the sentinel wrapped by every error that terminates a
// world's communication: a rank returning an error, an explicit Abort, or
// (TCP) a peer process dying. internal/mpi re-exports it as mpi.ErrAborted.
var ErrAborted = errors.New("mpi: world aborted")

// FaultPolicy selects how a transport responds to communication failures —
// connection resets, corrupted frames, stalled writes.
type FaultPolicy int

const (
	// AbortOnFailure is fail-stop: the first failed operation on any link
	// aborts the whole world (the default, and the only behavior the local
	// transport has — in-process "links" cannot fail).
	AbortOnFailure FaultPolicy = iota
	// RetryTransient is fail-recover: a failed link is reconnected with
	// capped exponential backoff and the frames the peer did not receive are
	// replayed in order, so a transient fault is invisible to the runtime. A
	// peer that stays unreachable past the reconnect window still aborts the
	// world with ErrAborted.
	RetryTransient
)

// String returns the policy name (the -fault-policy flag spelling).
func (p FaultPolicy) String() string {
	switch p {
	case AbortOnFailure:
		return "abort"
	case RetryTransient:
		return "retry"
	}
	return "unknown"
}

// ParseFaultPolicy parses the -fault-policy flag spelling.
func ParseFaultPolicy(s string) (FaultPolicy, error) {
	switch s {
	case "abort", "":
		return AbortOnFailure, nil
	case "retry":
		return RetryTransient, nil
	}
	return 0, errors.New("transport: unknown fault policy " + s + " (want abort or retry)")
}

// FaultStats counts a transport's failure and recovery activity.
type FaultStats struct {
	// LinkFailures is the number of times a connection was declared failed
	// (reset, corrupted frame, stalled write, EOF without a Bye).
	LinkFailures uint64
	// Reconnects is the number of links successfully re-established.
	Reconnects uint64
	// DialRetries is the number of failed reconnect dial attempts.
	DialRetries uint64
	// ReplayedFrames / ReplayedBytes count the data frames retransmitted
	// after reconnects because the peer had not received them.
	ReplayedFrames uint64
	ReplayedBytes  uint64
}

// FaultReporter is implemented by transports that track fault recovery.
type FaultReporter interface {
	FaultStats() FaultStats
}

// PolicyReporter is implemented by transports with a configurable fault
// policy; the runtime surfaces it through mpi.World.
type PolicyReporter interface {
	Policy() FaultPolicy
}

// FrameMarker is implemented by wrapped connections (fault injectors) that
// want to observe frame boundaries: the transport calls BeginFrame before
// writing each frame's bytes. Returning an error fails the write, which the
// transport treats exactly like a connection failure.
type FrameMarker interface {
	BeginFrame(op byte, size int) error
}

// Message is one delivered point-to-point payload.
type Message struct {
	Src, Tag int
	Data     []byte
	// Time is the sender's clock reading when the send completed. The local
	// transport uses it to order simulated clocks; the TCP transport carries
	// it for symmetry (receivers in wall-clock mode ignore it).
	Time float64
}

// Endpoint is one rank's attachment to a transport. An Endpoint is used by
// exactly one goroutine (the owning rank's) and is not safe for sharing.
type Endpoint interface {
	// Rank returns the rank this endpoint belongs to.
	Rank() int

	// Send delivers a copy of data to rank dst with the given tag. Send is
	// eager and buffered: it does not wait for a matching Recv, and data may
	// be reused as soon as it returns. now is the sender's clock reading,
	// carried to the receiver as Message.Time.
	Send(dst, tag int, data []byte, now float64) error

	// Recv blocks until a message matching (src, tag) arrives, in arrival
	// order, honoring the AnySource/AnyTag wildcards (-1).
	Recv(src, tag int) (Message, error)

	// TryRecv claims a matching message if one has already arrived.
	TryRecv(src, tag int) (Message, bool, error)

	// Exchange is the collective primitive: send[i] is delivered to rank i
	// and recv[i] holds what rank i sent here. All ranks must call Exchange
	// the same number of times in the same order (the SPMD contract). A nil
	// send means "contribute nothing" (a pure barrier). When Exchange
	// returns, every rank's send buffers have been copied out and may be
	// reused, and tmax is the maximum now across all participants.
	Exchange(send [][]byte, now float64) (recv [][]byte, tmax float64, err error)
}

// Mux is implemented by transports that can multiplex independent jobs over
// one standing world (wire v4): Open returns a Transport view bound to a
// channel — its own point-to-point matching, collective sequencing, and
// abort state over the shared links. Channel 0 is the transport's own
// default/control channel (the transport used directly IS that channel);
// opening the same non-zero channel twice returns the same view. Aborting a
// non-zero channel fails only that channel's operations on every rank — the
// underlying world and all other channels keep running — which is the
// job-failure isolation the long-lived job service (internal/jobsvc) builds
// on. Closing a channel view deregisters it locally and touches no peer.
// Both Local and TCP implement Mux.
type Mux interface {
	Open(job uint32) (Transport, error)
}

// EpochReporter is implemented by transports (and channel views) that
// belong to an epoch-versioned elastic world (internal/membership): Epoch
// returns the mesh incarnation this transport was built for. Transports
// without the method are epoch 0 — a fixed world that never resizes. The
// runtime surfaces it through mpi.World.Epoch so jobs can report which
// incarnation they ran on.
type EpochReporter interface {
	Epoch() uint64
}

// ErrReporter is implemented by transports and channel views that expose
// their abort cause without attempting an operation: nil while healthy. The
// job service uses it to tell a failed job (its channel poisoned) from a
// failed mesh (the transport itself poisoned).
type ErrReporter interface {
	Err() error
}

// Transport moves bytes between the ranks of one world. Implementations are
// safe for concurrent use by all local ranks.
type Transport interface {
	// Size returns the world size (total ranks across all processes).
	Size() int

	// LocalRanks returns the ranks hosted by this process, ascending. The
	// local transport hosts all of them; the TCP transport exactly one.
	LocalRanks() []int

	// Endpoint returns the endpoint of a local rank.
	Endpoint(rank int) Endpoint

	// Abort poisons the world with err: every pending and subsequent
	// operation on every rank — including, for the TCP transport, ranks in
	// other processes — fails with err (which should wrap ErrAborted).
	Abort(err error)

	// Wall reports whether operations take real time. The runtime charges
	// simulated alpha-beta costs when false and feeds wall-clock time to the
	// metrics when true.
	Wall() bool

	// Close releases the transport's resources. For the TCP transport this
	// announces a clean shutdown to peers (so closing the connections is not
	// mistaken for a crash) and must only be called after the local ranks
	// have finished communicating.
	Close() error
}
