package transport

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// Wire v5: the handshake is epoch-stamped and every connection between
// mismatched epochs is rejected, so frames from a stale mesh incarnation
// can never reach a newer world.

func TestHelloCarriesEpoch(t *testing.T) {
	var buf bytes.Buffer
	in := hello{Rank: 3, Size: 8, Epoch: 42, Addr: "127.0.0.1:9999"}
	if err := writeHello(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := readHello(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("hello round trip: got %+v, want %+v", out, in)
	}
}

func TestBootstrapRejectsStaleEpochSoftly(t *testing.T) {
	// A worker from epoch 6 dials a bootstrap serving epoch 7: the stale
	// dial must fail without poisoning the bootstrap, and a correct-epoch
	// worker joining afterwards completes the world.
	const epoch = 7
	b, err := ListenTCP(TCPConfig{Addr: "127.0.0.1:0", Rank: 0, Size: 2, Epoch: epoch,
		Deadline: 2 * time.Second, BootstrapTimeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	staleErr := make(chan error, 1)
	go func() {
		tr, err := NewTCP(TCPConfig{Addr: b.Addr(), Rank: 1, Size: 2, Epoch: epoch - 1,
			Deadline: 2 * time.Second, BootstrapTimeout: 4 * time.Second})
		if err == nil {
			tr.Close()
		}
		staleErr <- err
	}()

	freshUp := make(chan *TCP, 1)
	go func() {
		// Wait for the stale worker to be turned away before joining, so
		// the test proves the bootstrap survived the rejection.
		if err := <-staleErr; err == nil {
			t.Error("stale-epoch worker joined the mesh; want rejection")
			freshUp <- nil
			return
		} else if !strings.Contains(err.Error(), "handshake") && !strings.Contains(err.Error(), "EOF") {
			t.Logf("stale-epoch worker rejected with: %v", err)
		}
		tr, err := NewTCP(TCPConfig{Addr: b.Addr(), Rank: 1, Size: 2, Epoch: epoch,
			Deadline: 2 * time.Second, BootstrapTimeout: 10 * time.Second})
		if err != nil {
			t.Errorf("correct-epoch worker: %v", err)
			freshUp <- nil
			return
		}
		freshUp <- tr
	}()

	t0, err := b.Accept()
	if err != nil {
		t.Fatalf("bootstrap did not survive the stale-epoch dial: %v", err)
	}
	if got := t0.Epoch(); got != epoch {
		t.Fatalf("rank 0 Epoch() = %d, want %d", got, epoch)
	}
	t1 := <-freshUp
	if t1 == nil {
		t0.Close()
		t.Fatal("fresh worker never came up")
	}
	if got := t1.Epoch(); got != epoch {
		t.Fatalf("rank 1 Epoch() = %d, want %d", got, epoch)
	}
	// The epoch is visible on mux channels too.
	ch, err := t1.Open(3)
	if err != nil {
		t.Fatal(err)
	}
	if er, ok := ch.(EpochReporter); !ok || er.Epoch() != epoch {
		t.Fatalf("mux channel epoch: ok=%v", ok)
	}
	t1.Close()
	t0.Close()
}
