package transport

import (
	"os"
	"strings"
	"testing"
	"time"
)

// Options.Env and OptionsFromEnv are the single encode/decode pair for every
// world-wide setting a launcher forwards to its workers. These tests pin the
// round trip for every MIMIR_* variable and — just as important — that every
// invalid value is a hard error: a typo'd MIMIR_TCP_WINDOW must kill the
// launch, not silently fall back to the default and mask a misconfigured
// fault-tolerance window.

// allOptionEnvVars is every variable the codec owns. Keep in sync with the
// Env consts in spawn.go (EnvJoin/EnvRank/EnvSize/EnvEpoch belong to
// FromEnv's world-attachment layer, tested separately below).
var allOptionEnvVars = []string{EnvPolicy, EnvWindow, EnvDeadline, EnvFaults, EnvCompress, EnvWorkers}

func clearOptionEnv(t *testing.T) {
	t.Helper()
	for _, k := range allOptionEnvVars {
		t.Setenv(k, "")
		os.Unsetenv(k)
	}
}

func setEnvList(t *testing.T, kvs []string) {
	t.Helper()
	for _, kv := range kvs {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			t.Fatalf("Env produced entry without '=': %q", kv)
		}
		t.Setenv(k, v)
	}
}

func TestOptionsEnvRoundTrip(t *testing.T) {
	cases := []Options{
		{}, // zero options encode to nothing and decode to zero
		{Policy: RetryTransient},
		{ReconnectWindow: 1500 * time.Millisecond},
		{Deadline: 2 * time.Second},
		{Faults: "seed:42,kill:rank2@round3"},
		{Compress: true},
		{Workers: 8},
		{Workers: 1},
		{ // everything at once
			Policy:          RetryTransient,
			ReconnectWindow: 750 * time.Millisecond,
			Deadline:        3 * time.Second,
			Faults:          "seed:7,reset:rank1@frame5",
			Compress:        true,
			Workers:         4,
		},
	}
	for i, want := range cases {
		clearOptionEnv(t)
		env := want.Env()
		if i == 0 && len(env) != 0 {
			t.Fatalf("zero Options encoded to %v, want empty", env)
		}
		setEnvList(t, env)
		got, err := OptionsFromEnv()
		if err != nil {
			t.Fatalf("case %d: decode of %v: %v", i, env, err)
		}
		if got != want {
			t.Fatalf("case %d: round trip %v -> %+v, want %+v", i, env, got, want)
		}
	}
}

func TestOptionsFromEnvRejectsInvalidValues(t *testing.T) {
	cases := []struct{ key, val string }{
		{EnvPolicy, "bogus"},
		{EnvPolicy, "RETRY"}, // spelling is exact; a near-miss must not fall back to abort
		{EnvWindow, "nonsense"},
		{EnvWindow, "-5s"}, // negative window would disarm fault tolerance
		{EnvWindow, "0s"},
		{EnvWindow, "10"}, // bare number is not a Go duration
		{EnvDeadline, "soon"},
		{EnvDeadline, "-1s"},
		{EnvDeadline, "0"},
		{EnvCompress, "maybe"},
		{EnvCompress, "2"},
		{EnvWorkers, "many"},
		{EnvWorkers, "1.5"},
		{EnvWorkers, ""}, // set-but-empty numeric is a typo, not a default
	}
	for _, tc := range cases {
		clearOptionEnv(t)
		if tc.val == "" && tc.key == EnvWorkers {
			// t.Setenv("", "") unsets on some platforms; force the empty
			// string through os.Setenv under t.Setenv's cleanup.
			t.Setenv(tc.key, "x")
			os.Setenv(tc.key, "")
			if _, err := OptionsFromEnv(); err != nil {
				t.Errorf("%s set empty: got error %v; empty means unset for every variable", tc.key, err)
			}
			continue
		}
		t.Setenv(tc.key, tc.val)
		if _, err := OptionsFromEnv(); err == nil {
			t.Errorf("%s=%q decoded without error; want a hard failure, not a silent default", tc.key, tc.val)
		} else if !strings.Contains(err.Error(), tc.key) {
			t.Errorf("%s=%q error %q does not name the variable", tc.key, tc.val, err)
		}
	}
}

func TestFromEnvWorldAttachment(t *testing.T) {
	clearOptionEnv(t)
	for _, k := range []string{EnvJoin, EnvRank, EnvSize, EnvEpoch} {
		t.Setenv(k, "")
		os.Unsetenv(k)
	}
	// Not launched as a worker: ok=false, no error.
	if _, ok, err := FromEnv(); ok || err != nil {
		t.Fatalf("FromEnv with no environment: ok=%v err=%v, want false,nil", ok, err)
	}
	// Full attachment round-trips, epoch included.
	t.Setenv(EnvJoin, "127.0.0.1:7007")
	t.Setenv(EnvRank, "2")
	t.Setenv(EnvSize, "4")
	t.Setenv(EnvEpoch, "9")
	t.Setenv(EnvWindow, "2s")
	cfg, ok, err := FromEnv()
	if !ok || err != nil {
		t.Fatalf("FromEnv: ok=%v err=%v", ok, err)
	}
	if cfg.Addr != "127.0.0.1:7007" || cfg.Rank != 2 || cfg.Size != 4 || cfg.Epoch != 9 || cfg.ReconnectWindow != 2*time.Second {
		t.Fatalf("FromEnv decoded %+v", cfg)
	}
	// Invalid attachment values are hard errors with ok=true (the process
	// WAS launched as a worker; it must die loudly, not run standalone).
	for _, tc := range []struct{ key, val string }{
		{EnvRank, "two"},
		{EnvSize, ""},
		{EnvEpoch, "-1"},
		{EnvEpoch, "latest"},
		{EnvWindow, "bad"}, // Options errors propagate through FromEnv too
	} {
		t.Setenv(EnvRank, "2")
		t.Setenv(EnvSize, "4")
		t.Setenv(EnvEpoch, "9")
		t.Setenv(EnvWindow, "2s")
		t.Setenv(tc.key, tc.val)
		if tc.val == "" {
			os.Setenv(tc.key, "")
		}
		if _, ok, err := FromEnv(); !ok || err == nil {
			t.Errorf("%s=%q: ok=%v err=%v, want true,error", tc.key, tc.val, ok, err)
		}
	}
}
