package transport

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

func frameEqual(a, b *Frame) bool {
	return a.Op == b.Op && a.Src == b.Src && a.Tag == b.Tag && a.Seq == b.Seq &&
		math.Float64bits(a.Time) == math.Float64bits(b.Time) &&
		bytes.Equal(a.Data, b.Data)
}

func TestFrameRoundTrip(t *testing.T) {
	frames := []*Frame{
		{Op: OpP2P, Src: 3, Tag: -1, Seq: 9, Time: 1.25, Data: []byte("hello")},
		{Op: OpExchange, Src: 0, Tag: 0, Seq: 1 << 40, Time: 0},
		{Op: OpAbort, Src: 7, Tag: 42, Time: math.Inf(1), Data: []byte("cause")},
		{Op: OpBye, Src: 1},
		{Op: OpTable, Src: 0, Data: encodeTable([]string{"a:1", "b:2"})},
		{Op: OpResume, Src: 2, Seq: 1234},
		{Op: OpAck, Src: 3, Seq: 1 << 33},
	}
	var stream []byte
	for _, f := range frames {
		stream = AppendFrame(stream, f)
	}
	// Decode from the byte slice.
	rest := stream
	for i, want := range frames {
		got, n, err := DecodeFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !frameEqual(got, want) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	// Decode from a reader, via WriteFrame.
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read frame %d: %v", i, err)
		}
		if !frameEqual(got, want) {
			t.Fatalf("read frame %d: got %+v want %+v", i, got, want)
		}
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	valid := AppendFrame(nil, &Frame{Op: OpP2P, Src: 1, Data: []byte("xyz")})
	cases := map[string][]byte{
		"empty":        nil,
		"short prefix": valid[:3],
		"truncated":    valid[:len(valid)-1],
		"below header": {0, 0, 0, 1, OpP2P},
		"unknown op":   AppendFrame(nil, &Frame{Op: 99}),
		"zero op":      AppendFrame(nil, &Frame{Op: 0}),
		"huge length":  {0xFF, 0xFF, 0xFF, 0xFF},
	}
	for name, b := range cases {
		if _, _, err := DecodeFrame(b); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: err = %v, want ErrBadFrame", name, err)
		}
	}
	// ReadFrame on a truncated stream must error, not hang or panic.
	if _, err := ReadFrame(bytes.NewReader(valid[:len(valid)-1])); err == nil {
		t.Error("ReadFrame on truncated stream succeeded")
	}
	if _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("ReadFrame on empty stream: %v, want io.EOF", err)
	}
}

// TestCRCDetectsCorruption flips every post-length byte of a valid frame and
// asserts the CRC catches it: a single corrupted byte is a burst error of at
// most 8 bits, which CRC-32 is guaranteed to detect.
func TestCRCDetectsCorruption(t *testing.T) {
	enc := AppendFrame(nil, &Frame{Op: OpP2P, Src: 2, Tag: 5, Seq: 9, Time: 1.5, Data: []byte("payload!")})
	for off := 4; off < len(enc); off++ {
		for _, mask := range []byte{0x01, 0x80, 0xFF} {
			mut := append([]byte(nil), enc...)
			mut[off] ^= mask
			if _, _, err := DecodeFrame(mut); !errors.Is(err, ErrBadFrame) {
				t.Fatalf("corruption at offset %d mask %#x decoded: %v", off, mask, err)
			}
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := hello{Rank: 3, Size: 16, Addr: "127.0.0.1:4242"}
	if err := writeHello(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := readHello(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("got %+v want %+v", got, want)
	}
	// Bad magic and bad version must be rejected.
	raw := buf.Bytes()
	if err := writeHello(&buf, want); err != nil {
		t.Fatal(err)
	}
	raw = buf.Bytes()
	raw[0] ^= 0xFF
	if _, err := readHello(bytes.NewReader(raw)); err == nil {
		t.Error("bad magic accepted")
	}
	raw[0] ^= 0xFF
	raw[4]++
	if _, err := readHello(bytes.NewReader(raw)); err == nil {
		t.Error("bad version accepted")
	}
}

func TestTableRoundTrip(t *testing.T) {
	for _, addrs := range [][]string{nil, {}, {""}, {"a"}, {"127.0.0.1:1", "10.0.0.1:65535", ""}} {
		got, err := decodeTable(encodeTable(addrs))
		if err != nil {
			t.Fatalf("%v: %v", addrs, err)
		}
		if len(got) != len(addrs) {
			t.Fatalf("%v: got %v", addrs, got)
		}
		for i := range addrs {
			if got[i] != addrs[i] {
				t.Fatalf("%v: got %v", addrs, got)
			}
		}
	}
	for _, b := range [][]byte{nil, {0}, {0, 0, 0, 2, 0}, {0, 0, 0, 1, 0, 5, 'x'}} {
		if _, err := decodeTable(b); !errors.Is(err, ErrBadFrame) {
			t.Errorf("decodeTable(%v) err = %v, want ErrBadFrame", b, err)
		}
	}
}

// FuzzWireRoundTrip checks that any frame sequence encodes and decodes
// identically, and that arbitrary bytes fed to the decoders return errors
// rather than panicking.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(byte(OpP2P), uint32(0), int32(-1), uint64(0), 1.5, []byte("hi"), []byte{})
	f.Add(byte(OpExchange), uint32(7), int32(3), uint64(1<<50), math.NaN(), []byte{}, []byte{0, 0, 0, 0})
	f.Add(byte(OpTable), uint32(1), int32(0), uint64(2), math.Inf(-1), bytes.Repeat([]byte{0xAB}, 100), []byte{0xFF, 0xFF, 0xFF, 0xFF, 1})
	f.Fuzz(func(t *testing.T, op byte, src uint32, tag int32, seq uint64, tm float64, data, raw []byte) {
		// Clamp op into the valid range: round-tripping is only promised for
		// well-formed frames.
		validOp := op%opMax + 1
		want := &Frame{Op: validOp, Src: src, Tag: tag, Seq: seq, Time: tm, Data: data}
		enc := AppendFrame(nil, want)
		got, n, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("decode of valid frame failed: %v", err)
		}
		if n != len(enc) {
			t.Fatalf("consumed %d of %d bytes", n, len(enc))
		}
		if len(got.Data) == 0 && len(want.Data) == 0 {
			got.Data, want.Data = nil, nil
		}
		if !frameEqual(got, want) {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
		got2, err := ReadFrame(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("ReadFrame of valid frame failed: %v", err)
		}
		if len(got2.Data) == 0 {
			got2.Data = nil
		}
		if !frameEqual(got2, want) {
			t.Fatalf("reader round trip: got %+v want %+v", got2, want)
		}
		// A second frame appended to the first decodes from the remainder.
		two := AppendFrame(append([]byte(nil), enc...), want)
		_, n1, err := DecodeFrame(two)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := DecodeFrame(two[n1:]); err != nil {
			t.Fatalf("second frame: %v", err)
		}

		// Arbitrary input: must never panic; any error is acceptable.
		DecodeFrame(raw)
		ReadFrame(bytes.NewReader(raw))
		decodeTable(raw)
		readHello(bytes.NewReader(raw))
		// Corrupting any single byte of a valid frame must not panic either.
		if len(enc) > 0 {
			i := int(src) % len(enc)
			mut := append([]byte(nil), enc...)
			mut[i] ^= 0x80
			DecodeFrame(mut)
			ReadFrame(bytes.NewReader(mut))
		}
		// Truncations must error, never over-read.
		for _, cut := range []int{0, 1, 4, 4 + frameHeaderLen - 1, len(enc) - 1} {
			if cut >= len(enc) {
				continue
			}
			if _, _, err := DecodeFrame(enc[:cut]); err == nil {
				t.Fatalf("truncation to %d bytes decoded successfully", cut)
			}
		}
	})
}
