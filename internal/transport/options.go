package transport

import (
	"fmt"
	"os"
	"strconv"
	"time"
)

// Options is every world-wide setting of a multi-process TCP world that a
// launcher must hand to the processes it starts: fault handling, deadlines,
// fault injection, wire compression, and the per-rank worker pool size.
// There is exactly one encode (Env) and one decode (OptionsFromEnv), shared
// by spawn-forwarding, the worker commands, and the job-service daemon —
// adding a field here and to the two methods is the whole story, so no
// launch path can silently drop a setting.
//
// The zero Options is a valid default everywhere (fail-stop, transport
// default timings, no injection, no compression, all cores).
type Options struct {
	// Policy selects fail-stop (AbortOnFailure, the default) or
	// fail-recover (RetryTransient) link handling for every process.
	Policy FaultPolicy
	// ReconnectWindow bounds RetryTransient recovery per link; a peer that
	// stays unreachable longer aborts the world. 0 means the transport's
	// default (10s).
	ReconnectWindow time.Duration
	// Deadline is the per-I/O deadline (TCPConfig.Deadline). 0 means the
	// default (10s).
	Deadline time.Duration
	// Faults is a deterministic fault-injection spec in the
	// internal/faultinject grammar, e.g. "seed:42,kill:rank2@round3".
	// Empty means no injection. The transport only carries the string; the
	// facade layer parses it and wires the injector.
	Faults string
	// Compress turns on wire frame compression (deflate, per frame,
	// sender-side). Compression is a per-sender decision, so mixed settings
	// interoperate, but setting it world-wide is what makes both directions
	// of every link compress.
	Compress bool
	// Workers is the per-rank worker pool size (core.Config.Workers):
	// 0 = all cores (GOMAXPROCS), 1 = serial.
	Workers int
}

// Env encodes the non-default options as "KEY=VALUE" entries, ready to
// append to a child process environment. OptionsFromEnv inverts it.
func (o Options) Env() []string {
	var env []string
	if o.Policy != AbortOnFailure {
		env = append(env, EnvPolicy+"="+o.Policy.String())
	}
	if o.ReconnectWindow > 0 {
		env = append(env, EnvWindow+"="+o.ReconnectWindow.String())
	}
	if o.Deadline > 0 {
		env = append(env, EnvDeadline+"="+o.Deadline.String())
	}
	if o.Faults != "" {
		env = append(env, EnvFaults+"="+o.Faults)
	}
	if o.Compress {
		env = append(env, EnvCompress+"=1")
	}
	if o.Workers != 0 {
		env = append(env, fmt.Sprintf("%s=%d", EnvWorkers, o.Workers))
	}
	return env
}

// OptionsFromEnv decodes the options a parent forwarded through the
// environment (Env's inverse). Unset variables leave their zero defaults.
func OptionsFromEnv() (Options, error) {
	var o Options
	if s := os.Getenv(EnvPolicy); s != "" {
		p, err := ParseFaultPolicy(s)
		if err != nil {
			return Options{}, fmt.Errorf("transport: bad %s=%q: %v", EnvPolicy, s, err)
		}
		o.Policy = p
	}
	if s := os.Getenv(EnvWindow); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil || d <= 0 {
			return Options{}, fmt.Errorf("transport: bad %s=%q", EnvWindow, s)
		}
		o.ReconnectWindow = d
	}
	if s := os.Getenv(EnvDeadline); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil || d <= 0 {
			return Options{}, fmt.Errorf("transport: bad %s=%q", EnvDeadline, s)
		}
		o.Deadline = d
	}
	o.Faults = os.Getenv(EnvFaults)
	if s := os.Getenv(EnvCompress); s != "" {
		on, err := strconv.ParseBool(s)
		if err != nil {
			return Options{}, fmt.Errorf("transport: bad %s=%q: %v", EnvCompress, s, err)
		}
		o.Compress = on
	}
	if s := os.Getenv(EnvWorkers); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			return Options{}, fmt.Errorf("transport: bad %s=%q: %v", EnvWorkers, s, err)
		}
		o.Workers = n
	}
	return o, nil
}

// TCPConfig applies the options to one rank's world attachment. Faults and
// Workers have no TCPConfig field — the caller wires the injector
// (TCPConfig.WrapConn) and the engine pool itself.
func (o Options) TCPConfig(addr string, rank, size int) TCPConfig {
	return TCPConfig{
		Addr: addr, Rank: rank, Size: size,
		Deadline:        o.Deadline,
		Policy:          o.Policy,
		ReconnectWindow: o.ReconnectWindow,
		Compress:        o.Compress,
	}
}
