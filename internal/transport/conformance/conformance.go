// Package conformance is the cross-transport contract test: one table of
// point-to-point, collective, large-payload, and abort scenarios that every
// transport — Local, TCP, fault-injected TCP — must pass with byte-identical
// results. A transport that survives this suite is substitutable for any
// other as far as the runtime (internal/mpi) can observe, which is what lets
// the experiment harness validate on the local transport and deploy on TCP.
package conformance

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mimir/internal/transport"
)

// WorldSize is the rank count every scenario runs at.
const WorldSize = 4

// World is one rank's view of a scenario run.
type World struct {
	T    transport.Transport
	Ep   transport.Endpoint
	Rank int
	Size int
	// Workers is the rank's intra-rank pool size: payload construction and
	// verification fan out over this many goroutines (1 = serial). Transport
	// calls themselves stay on the rank goroutine — the endpoint contract
	// does not promise concurrent use — so Workers changes only who computes
	// the bytes, never what crosses the wire. Scenario digests must be
	// byte-identical at every pool size.
	Workers int
}

// pfor computes fn(0..n-1) over the world's worker pool and returns the
// results in index order; errors report the lowest failing index. The
// serial path (Workers <= 1) calls fn inline in order.
func (w *World) pfor(n int, fn func(i int) ([]byte, error)) ([][]byte, error) {
	outs := make([][]byte, n)
	workers := w.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			b, err := fn(i)
			if err != nil {
				return nil, err
			}
			outs[i] = b
		}
		return outs, nil
	}
	errs := make([]error, n)
	var next int64
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				outs[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}

// Scenario is one SPMD contract check: Run executes on every rank and
// returns that rank's observable result bytes. Unless ExpectAbort is set,
// every rank must succeed and the concatenated results are the scenario's
// digest — compared byte-for-byte across transports by Digests.
type Scenario struct {
	Name        string
	ExpectAbort bool
	Run         func(w *World) ([]byte, error)
}

// pattern derives a deterministic payload from its coordinates, so every
// rank can independently compute what every other rank must have sent.
func pattern(tag, src, dst, n int) []byte {
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	x := uint64(tag)<<48 | uint64(src)<<32 | uint64(dst)<<16 | uint64(n)
	for i := range out {
		x += 0x9E3779B97F4A7C15
		z := (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		out[i] = byte(z ^ (z >> 31))
	}
	return out
}

func checkPattern(got []byte, tag, src, dst, n int) error {
	if want := pattern(tag, src, dst, n); !bytes.Equal(got, want) {
		return fmt.Errorf("payload (tag %d, %d->%d): got %d bytes, want %d", tag, src, dst, len(got), n)
	}
	return nil
}

// Scenarios returns the conformance table.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "exchange-rounds", Run: scExchangeRounds},
		{Name: "exchange-barrier", Run: scExchangeBarrier},
		{Name: "exchange-ragged", Run: scExchangeRagged},
		{Name: "exchange-large", Run: scExchangeLarge},
		{Name: "p2p-ring", Run: scP2PRing},
		{Name: "p2p-gather-any", Run: scP2PGatherAny},
		{Name: "mux-jobs-interleaved", Run: scMuxInterleaved},
		{Name: "mux-abort-isolated", Run: scMuxAbortIsolated},
		{Name: "skewed-exchange", Run: scSkewedExchange},
		{Name: "abort-propagates", ExpectAbort: true, Run: scAbort},
	}
}

// jobStream is one job's worth of traffic on a transport channel: rounds of
// alltoall exchange plus ring point-to-point, every byte derived from the job
// id so two jobs sharing a mesh can never mistake each other's frames, ending
// in a barrier that drains the channel. Returns this rank's deterministic
// observable bytes.
func jobStream(w *World, ch transport.Transport, job int) ([]byte, error) {
	ep := ch.Endpoint(w.Rank)
	right := (w.Rank + 1) % w.Size
	left := (w.Rank + w.Size - 1) % w.Size
	var out []byte
	for round := 0; round < 3; round++ {
		round := round
		send, err := w.pfor(w.Size, func(dst int) ([]byte, error) {
			return pattern(job*1000+round, w.Rank, dst, 96+32*round), nil
		})
		if err != nil {
			return nil, err
		}
		recv, _, err := ep.Exchange(send, 0)
		if err != nil {
			return nil, err
		}
		checked, err := w.pfor(len(recv), func(src int) ([]byte, error) {
			if err := checkPattern(recv[src], job*1000+round, src, w.Rank, 96+32*round); err != nil {
				return nil, err
			}
			return recv[src], nil
		})
		if err != nil {
			return nil, err
		}
		for _, c := range checked {
			out = append(out, c...)
		}
		if err := ep.Send(right, round, pattern(job*2000+round, w.Rank, right, 56), 0); err != nil {
			return nil, err
		}
		m, err := ep.Recv(left, round)
		if err != nil {
			return nil, err
		}
		if err := checkPattern(m.Data, job*2000+round, left, w.Rank, 56); err != nil {
			return nil, err
		}
		out = append(out, m.Data...)
	}
	if _, _, err := ep.Exchange(nil, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// scMuxInterleaved is the concurrent-jobs contract: two independent job
// streams multiplex one mesh through per-job channels, running concurrently
// on every rank, and each stream's bytes are exactly what it would have seen
// alone. This is the scenario the mimird job service leans on.
func scMuxInterleaved(w *World) ([]byte, error) {
	mux, ok := w.T.(transport.Mux)
	if !ok {
		return nil, fmt.Errorf("transport %T cannot multiplex job channels", w.T)
	}
	chA, err := mux.Open(1)
	if err != nil {
		return nil, err
	}
	chB, err := mux.Open(2)
	if err != nil {
		return nil, err
	}
	var outA, outB []byte
	var errA, errB error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); outA, errA = jobStream(w, chA, 1) }()
	go func() { defer wg.Done(); outB, errB = jobStream(w, chB, 2) }()
	wg.Wait()
	if errA != nil {
		return nil, fmt.Errorf("job 1: %w", errA)
	}
	if errB != nil {
		return nil, fmt.Errorf("job 2: %w", errB)
	}
	// Channels are left for the transport's Close to reap: on shared
	// in-process meshes an early per-rank Close could race another rank's
	// traffic, and the contract under test is the streams' bytes, not
	// channel teardown.
	return append(outA, outB...), nil
}

// scMuxAbortIsolated is job-failure isolation: aborting one job's channel
// kills that job on every rank (ErrAborted, never a hang) while a concurrent
// job and the default channel sail through untouched. The abort fires before
// any job traffic so its control frames lead every connection — an abort is
// not replayed after a link fault, so this mirrors how the job service
// sequences a scripted crash.
func scMuxAbortIsolated(w *World) ([]byte, error) {
	mux, ok := w.T.(transport.Mux)
	if !ok {
		return nil, fmt.Errorf("transport %T cannot multiplex job channels", w.T)
	}
	chA, err := mux.Open(3)
	if err != nil {
		return nil, err
	}
	chB, err := mux.Open(4)
	if err != nil {
		return nil, err
	}
	if w.Rank == w.Size-1 {
		chB.Abort(fmt.Errorf("%w: conformance: scripted job failure", transport.ErrAborted))
	}
	if _, _, err := chB.Endpoint(w.Rank).Exchange(nil, 0); !errors.Is(err, transport.ErrAborted) {
		return nil, fmt.Errorf("aborted job channel: err = %v, want ErrAborted", err)
	}
	out, err := jobStream(w, chA, 3)
	if err != nil {
		return nil, fmt.Errorf("surviving job: %w", err)
	}
	if _, _, err := w.Ep.Exchange(nil, 0); err != nil {
		return nil, fmt.Errorf("default channel after job abort: %w", err)
	}
	return out, nil
}

// scExchangeRounds runs several full alltoall rounds, verifies every cell
// against the pattern the SPMD contract demands, and checks tmax is the
// maximum clock reading across participants.
func scExchangeRounds(w *World) ([]byte, error) {
	var out []byte
	for round := 0; round < 4; round++ {
		round := round
		send, err := w.pfor(w.Size, func(dst int) ([]byte, error) {
			return pattern(round, w.Rank, dst, 64+16*round), nil
		})
		if err != nil {
			return nil, err
		}
		now := float64(10*w.Rank + round)
		recv, tmax, err := w.Ep.Exchange(send, now)
		if err != nil {
			return nil, err
		}
		if want := float64(10*(w.Size-1) + round); tmax != want {
			return nil, fmt.Errorf("round %d: tmax %v, want %v", round, tmax, want)
		}
		checked, err := w.pfor(len(recv), func(src int) ([]byte, error) {
			if err := checkPattern(recv[src], round, src, w.Rank, 64+16*round); err != nil {
				return nil, err
			}
			return recv[src], nil
		})
		if err != nil {
			return nil, err
		}
		for _, c := range checked {
			out = append(out, c...)
		}
	}
	return out, nil
}

// scExchangeBarrier runs a burst of contribution-free exchanges (pure
// barriers); the result is empty on every rank.
func scExchangeBarrier(w *World) ([]byte, error) {
	for i := 0; i < 8; i++ {
		if _, _, err := w.Ep.Exchange(nil, 0); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

// scExchangeRagged mixes empty and non-empty cells in one exchange: empty
// contributions must arrive as empty, not shift or swallow neighbors.
func scExchangeRagged(w *World) ([]byte, error) {
	var out []byte
	for round := 0; round < 3; round++ {
		round := round
		send, err := w.pfor(w.Size, func(dst int) ([]byte, error) {
			n := 32 * ((w.Rank + dst + round) % 3) // 0, 32, or 64 bytes
			return pattern(100+round, w.Rank, dst, n), nil
		})
		if err != nil {
			return nil, err
		}
		recv, _, err := w.Ep.Exchange(send, 0)
		if err != nil {
			return nil, err
		}
		checked, err := w.pfor(len(recv), func(src int) ([]byte, error) {
			n := 32 * ((src + w.Rank + round) % 3)
			if err := checkPattern(recv[src], 100+round, src, w.Rank, n); err != nil {
				return nil, err
			}
			return recv[src], nil
		})
		if err != nil {
			return nil, err
		}
		for _, c := range checked {
			out = append(out, c...)
			out = append(out, '|')
		}
	}
	return out, nil
}

// scExchangeLarge moves payloads big enough to span many write chunks (and,
// under fault injection, to be cut mid-frame and replayed).
func scExchangeLarge(w *World) ([]byte, error) {
	const n = 384 << 10
	send, err := w.pfor(w.Size, func(dst int) ([]byte, error) {
		return pattern(7, w.Rank, dst, n), nil
	})
	if err != nil {
		return nil, err
	}
	recv, _, err := w.Ep.Exchange(send, 0)
	if err != nil {
		return nil, err
	}
	checked, err := w.pfor(len(recv), func(src int) ([]byte, error) {
		if err := checkPattern(recv[src], 7, src, w.Rank, n); err != nil {
			return nil, err
		}
		return recv[src], nil
	})
	if err != nil {
		return nil, err
	}
	sum := sha256.New()
	for _, c := range checked {
		sum.Write(c)
	}
	return sum.Sum(nil), nil
}

// scP2PRing circulates tagged messages around the rank ring and checks
// arrival order per (src, tag).
func scP2PRing(w *World) ([]byte, error) {
	right := (w.Rank + 1) % w.Size
	left := (w.Rank + w.Size - 1) % w.Size
	var out []byte
	payloads, err := w.pfor(4, func(i int) ([]byte, error) {
		return pattern(200+i, w.Rank, right, 48), nil
	})
	if err != nil {
		return nil, err
	}
	for i, p := range payloads {
		if err := w.Ep.Send(right, i, p, 0); err != nil {
			return nil, err
		}
	}
	got := make([]transport.Message, 4)
	for i := range got {
		m, err := w.Ep.Recv(left, i)
		if err != nil {
			return nil, err
		}
		got[i] = m
	}
	checked, err := w.pfor(len(got), func(i int) ([]byte, error) {
		m := got[i]
		if m.Src != left || m.Tag != i {
			return nil, fmt.Errorf("recv: got (src %d, tag %d), want (%d, %d)", m.Src, m.Tag, left, i)
		}
		if err := checkPattern(m.Data, 200+i, left, w.Rank, 48); err != nil {
			return nil, err
		}
		return m.Data, nil
	})
	if err != nil {
		return nil, err
	}
	for _, c := range checked {
		out = append(out, c...)
	}
	if _, _, err := w.Ep.Exchange(nil, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// scP2PGatherAny funnels one message per rank to rank 0 via the AnySource
// wildcard, then checks TryRecv reports an empty mailbox.
func scP2PGatherAny(w *World) ([]byte, error) {
	const tag = 9
	var out []byte
	if w.Rank != 0 {
		if err := w.Ep.Send(0, tag, pattern(300, w.Rank, 0, 40), 0); err != nil {
			return nil, err
		}
	} else {
		msgs := make([]transport.Message, 0, w.Size-1)
		for i := 1; i < w.Size; i++ {
			m, err := w.Ep.Recv(transport.AnySource, tag)
			if err != nil {
				return nil, err
			}
			msgs = append(msgs, m)
		}
		sort.Slice(msgs, func(i, j int) bool { return msgs[i].Src < msgs[j].Src })
		checked, err := w.pfor(len(msgs), func(i int) ([]byte, error) {
			if err := checkPattern(msgs[i].Data, 300, msgs[i].Src, 0, 40); err != nil {
				return nil, err
			}
			return msgs[i].Data, nil
		})
		if err != nil {
			return nil, err
		}
		for _, c := range checked {
			out = append(out, c...)
		}
		if _, ok, err := w.Ep.TryRecv(transport.AnySource, transport.AnyTag); err != nil {
			return nil, err
		} else if ok {
			return nil, errors.New("mailbox not empty after gather")
		}
	}
	if _, _, err := w.Ep.Exchange(nil, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// scSkewedExchange is the sampling partitioner's traffic shape as a wire
// contract: an all-gather-shaped round (every rank's key sample to every
// rank), a broadcast-shaped round (rank 0's plan to everyone, all other
// cells empty), then skewed data rounds where one rank receives an order of
// magnitude more than its peers — the load imbalance a skewed keyspace
// produces before the planned ranges rebalance it. On the default faulted
// TCP build these are the mesh's first frames, so the injected delay, reset,
// partial write, and corruption land mid-sample-gather and mid-plan; the
// digest must still match the local transport byte for byte.
func scSkewedExchange(w *World) ([]byte, error) {
	var out []byte
	// Round 1: the sample all-gather (equal small cells, tag 7001).
	send, err := w.pfor(w.Size, func(dst int) ([]byte, error) {
		return pattern(7001, w.Rank, dst, 48), nil
	})
	if err != nil {
		return nil, err
	}
	recv, _, err := w.Ep.Exchange(send, 0)
	if err != nil {
		return nil, err
	}
	for src := range recv {
		if err := checkPattern(recv[src], 7001, src, w.Rank, 48); err != nil {
			return nil, fmt.Errorf("sample gather: %w", err)
		}
		out = append(out, recv[src]...)
	}
	// Round 2: the plan broadcast — only rank 0 contributes (tag 7002).
	send, err = w.pfor(w.Size, func(dst int) ([]byte, error) {
		if w.Rank != 0 {
			return nil, nil
		}
		return pattern(7002, 0, dst, 160), nil
	})
	if err != nil {
		return nil, err
	}
	recv, _, err = w.Ep.Exchange(send, 0)
	if err != nil {
		return nil, err
	}
	for src := range recv {
		n := 0
		if src == 0 {
			n = 160
		}
		if err := checkPattern(recv[src], 7002, src, w.Rank, n); err != nil {
			return nil, fmt.Errorf("plan broadcast: %w", err)
		}
		out = append(out, recv[src]...)
	}
	// Rounds 3..5: skewed exchanges — rank 0 is the hot destination.
	for round := 0; round < 3; round++ {
		round := round
		send, err = w.pfor(w.Size, func(dst int) ([]byte, error) {
			n := 64
			if dst == 0 {
				n = 1024 + 256*round
			}
			return pattern(7100+round, w.Rank, dst, n), nil
		})
		if err != nil {
			return nil, err
		}
		recv, _, err = w.Ep.Exchange(send, 0)
		if err != nil {
			return nil, err
		}
		checked, err := w.pfor(len(recv), func(src int) ([]byte, error) {
			n := 64
			if w.Rank == 0 {
				n = 1024 + 256*round
			}
			if err := checkPattern(recv[src], 7100+round, src, w.Rank, n); err != nil {
				return nil, err
			}
			return recv[src], nil
		})
		if err != nil {
			return nil, fmt.Errorf("skewed round %d: %w", round, err)
		}
		for _, c := range checked {
			out = append(out, c...)
		}
	}
	if _, _, err := w.Ep.Exchange(nil, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// scAbort has the last rank poison the world while the others sit in a
// collective; every rank must come back with ErrAborted, never hang.
func scAbort(w *World) ([]byte, error) {
	if w.Rank == w.Size-1 {
		w.T.Abort(fmt.Errorf("%w: conformance: scripted failure", transport.ErrAborted))
	}
	_, _, err := w.Ep.Exchange(nil, 0)
	if err == nil {
		return nil, errors.New("exchange succeeded after abort")
	}
	return nil, err
}

// Builder creates a fresh world of the given size: one Transport per
// simulated process, together hosting exactly ranks 0..size-1. The runner
// closes them.
type Builder func(t testing.TB, size int) []transport.Transport

// Digests runs every scenario against the transports build produces and
// returns scenario → hex digest of the world's concatenated per-rank
// results. Two conforming transports return identical maps; Run compares
// them for you.
func Digests(t *testing.T, build Builder) map[string]string {
	return DigestsWorkers(t, build, 1)
}

// DigestsWorkers is Digests with every rank running an intra-rank worker
// pool of the given size. Digests are defined by the serial run; any pool
// size must reproduce them exactly.
func DigestsWorkers(t *testing.T, build Builder, workers int) map[string]string {
	t.Helper()
	out := make(map[string]string)
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			out[sc.Name] = runScenario(t, sc, build, workers)
		})
	}
	return out
}

func runScenario(t *testing.T, sc Scenario, build Builder, workers int) string {
	t.Helper()
	trs := build(t, WorldSize)
	defer func() {
		for _, tr := range trs {
			tr.Close()
		}
	}()
	results := make([][]byte, WorldSize)
	errs := make([]error, WorldSize)
	done := make(chan int, WorldSize)
	started := 0
	for _, tr := range trs {
		for _, rank := range tr.LocalRanks() {
			started++
			go func(tr transport.Transport, rank int) {
				w := &World{T: tr, Ep: tr.Endpoint(rank), Rank: rank, Size: WorldSize, Workers: workers}
				results[rank], errs[rank] = sc.Run(w)
				done <- rank
			}(tr, rank)
		}
	}
	if started != WorldSize {
		t.Fatalf("builder produced %d ranks, want %d", started, WorldSize)
	}
	watchdog := time.After(60 * time.Second)
	for i := 0; i < WorldSize; i++ {
		select {
		case <-done:
		case <-watchdog:
			t.Fatalf("scenario %s: world hung (ranks finished: %d of %d)", sc.Name, i, WorldSize)
		}
	}
	if sc.ExpectAbort {
		for rank, err := range errs {
			if !errors.Is(err, transport.ErrAborted) {
				t.Fatalf("rank %d: err = %v, want ErrAborted", rank, err)
			}
		}
		return "aborted"
	}
	sum := sha256.New()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
		binary.Write(sum, binary.BigEndian, uint64(len(results[rank])))
		sum.Write(results[rank])
	}
	return fmt.Sprintf("%x", sum.Sum(nil))
}

// Run executes the full suite for a transport and asserts its digests are
// byte-identical to the reference (the local transport's).
func Run(t *testing.T, build Builder) {
	t.Helper()
	RunWorkers(t, build, 1)
}

// RunWorkers executes the full suite at the given intra-rank pool size and
// asserts the digests are byte-identical to the serial golden run on the
// local transport — the cross-product contract: neither the transport nor
// the worker pool may change a single observable byte.
func RunWorkers(t *testing.T, build Builder, workers int) {
	t.Helper()
	ref := Digests(t, LocalBuilder)
	got := DigestsWorkers(t, build, workers)
	for name, want := range ref {
		if got[name] != want {
			t.Errorf("scenario %s: workers=%d digest %s, want %s (not byte-identical to the serial local run)",
				name, workers, got[name], want)
		}
	}
}

// LocalBuilder builds the reference world on the in-process transport.
func LocalBuilder(t testing.TB, size int) []transport.Transport {
	return []transport.Transport{transport.NewLocal(size)}
}

// ConcurrentJobs is the multi-tenancy conformance check: it runs job streams
// 11 and 12 interleaved on one mesh, then each alone on a fresh mesh, and
// asserts every rank's bytes for each job are identical in both worlds —
// a job cannot observe its neighbors. This is the property that lets the
// mimird job service promise solo-identical results for concurrent
// submissions.
func ConcurrentJobs(t *testing.T, build Builder) {
	t.Helper()
	const jobA, jobB = 11, 12
	interleaved := runJobStreams(t, build, []int{jobA, jobB})
	soloA := runJobStreams(t, build, []int{jobA})
	soloB := runJobStreams(t, build, []int{jobB})
	for rank := 0; rank < WorldSize; rank++ {
		if !bytes.Equal(interleaved[jobA][rank], soloA[jobA][rank]) {
			t.Errorf("job %d rank %d: interleaved bytes differ from the solo run", jobA, rank)
		}
		if !bytes.Equal(interleaved[jobB][rank], soloB[jobB][rank]) {
			t.Errorf("job %d rank %d: interleaved bytes differ from the solo run", jobB, rank)
		}
	}
}

// runJobStreams runs the given job streams concurrently on every rank of a
// fresh mesh and returns job → per-rank observable bytes.
func runJobStreams(t *testing.T, build Builder, jobs []int) map[int][][]byte {
	t.Helper()
	trs := build(t, WorldSize)
	defer func() {
		for _, tr := range trs {
			tr.Close()
		}
	}()
	results := make(map[int][][]byte, len(jobs))
	for _, job := range jobs {
		results[job] = make([][]byte, WorldSize)
	}
	errs := make([]error, WorldSize)
	done := make(chan struct{}, WorldSize)
	started := 0
	for _, tr := range trs {
		for _, rank := range tr.LocalRanks() {
			started++
			go func(tr transport.Transport, rank int) {
				defer func() { done <- struct{}{} }()
				w := &World{T: tr, Ep: tr.Endpoint(rank), Rank: rank, Size: WorldSize, Workers: 1}
				mux, ok := tr.(transport.Mux)
				if !ok {
					errs[rank] = fmt.Errorf("transport %T cannot multiplex job channels", tr)
					return
				}
				jerrs := make([]error, len(jobs))
				var wg sync.WaitGroup
				for ji, job := range jobs {
					ch, err := mux.Open(uint32(job))
					if err != nil {
						errs[rank] = err
						return
					}
					wg.Add(1)
					go func(ji, job int, ch transport.Transport) {
						defer wg.Done()
						results[job][rank], jerrs[ji] = jobStream(w, ch, job)
					}(ji, job, ch)
				}
				wg.Wait()
				for _, err := range jerrs {
					if err != nil {
						errs[rank] = err
						return
					}
				}
			}(tr, rank)
		}
	}
	if started != WorldSize {
		t.Fatalf("builder produced %d ranks, want %d", started, WorldSize)
	}
	watchdog := time.After(60 * time.Second)
	for i := 0; i < WorldSize; i++ {
		select {
		case <-done:
		case <-watchdog:
			t.Fatalf("concurrent jobs %v: world hung (ranks finished: %d of %d)", jobs, i, WorldSize)
		}
	}
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	return results
}
