package conformance

import (
	"flag"
	"sync"
	"testing"
	"time"

	"mimir/internal/faultinject"
	"mimir/internal/transport"
)

// faultSpec lets CI's chaos job sweep fixed seeds:
//
//	go test ./internal/transport/conformance -fault-spec seed:7,chaos:0.02
var faultSpec = flag.String("fault-spec", "seed:11,delay:all@frame0,reset:all@frame1,partial:rank2@frame2,corrupt:all@frame3",
	"faultinject spec for the faulted-tcp conformance run")

// tcpBuilder builds an in-process TCP mesh: one *TCP per rank, real
// sockets over loopback. wrap, when non-nil, decorates rank's config.
func tcpBuilder(policy transport.FaultPolicy, wrap func(rank int, cfg *transport.TCPConfig)) Builder {
	return func(t testing.TB, size int) []transport.Transport {
		cfg := func(rank int, addr string) transport.TCPConfig {
			c := transport.TCPConfig{
				Addr:             addr,
				Rank:             rank,
				Size:             size,
				Policy:           policy,
				BootstrapTimeout: 30 * time.Second,
				// Long enough for real recovery (a reconnect takes
				// milliseconds), short enough that the abort scenario —
				// where survivors must give up on the poisoned rank's
				// silent links — doesn't stall the suite.
				ReconnectWindow: 2 * time.Second,
			}
			if wrap != nil {
				wrap(rank, &c)
			}
			return c
		}
		b, err := transport.ListenTCP(cfg(0, "127.0.0.1:0"))
		if err != nil {
			t.Fatal(err)
		}
		trs := make([]transport.Transport, size)
		errs := make([]error, size)
		var wg sync.WaitGroup
		for r := 1; r < size; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				tr, err := transport.NewTCP(cfg(r, b.Addr()))
				if err != nil {
					errs[r] = err
					return
				}
				trs[r] = tr
			}(r)
		}
		tr0, err := b.Accept()
		if err != nil {
			errs[0] = err
		} else {
			trs[0] = tr0
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("rank %d bootstrap: %v", r, err)
			}
		}
		return trs
	}
}

// TestLocalConformance pins the reference transport itself to the table.
func TestLocalConformance(t *testing.T) {
	Digests(t, LocalBuilder)
}

// TestTCPConformance proves the plain TCP transport byte-identical to the
// local one across the whole scenario table.
func TestTCPConformance(t *testing.T) {
	Run(t, tcpBuilder(transport.AbortOnFailure, nil))
}

// TestFaultedTCPConformance proves the fail-recover TCP transport still
// byte-identical to the local one while a deterministic fault schedule
// resets, corrupts, delays, and cuts its connections.
func TestFaultedTCPConformance(t *testing.T) {
	spec, err := faultinject.ParseSpec(*faultSpec)
	if err != nil {
		t.Fatalf("bad -fault-spec: %v", err)
	}
	if len(spec.Kills) > 0 {
		t.Fatalf("-fault-spec %q kills ranks; conformance needs the world to survive", *faultSpec)
	}
	var injectors []*faultinject.Injector
	var mu sync.Mutex
	build := tcpBuilder(transport.RetryTransient, func(rank int, cfg *transport.TCPConfig) {
		// A fresh injector per world: scenario runs must not consume each
		// other's one-shot events.
		in := faultinject.New(spec, rank)
		mu.Lock()
		injectors = append(injectors, in)
		mu.Unlock()
		cfg.WrapConn = in.WrapConn
		cfg.BackoffBase = 5 * time.Millisecond
	})
	Run(t, build)
	mu.Lock()
	defer mu.Unlock()
	fired := faultinject.Stats{}
	for _, in := range injectors {
		s := in.Stats()
		fired.Resets += s.Resets
		fired.Corruptions += s.Corruptions
		fired.Partials += s.Partials
		fired.Delays += s.Delays
	}
	if fired == (faultinject.Stats{}) {
		t.Fatalf("fault schedule %q never fired; the faulted run exercised nothing", *faultSpec)
	}
	t.Logf("faults fired: %+v", fired)
}
