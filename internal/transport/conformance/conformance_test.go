package conformance

import (
	"bytes"
	"flag"
	"sync"
	"testing"
	"time"

	"mimir/internal/driver"
	"mimir/internal/faultinject"
	"mimir/internal/mpi"
	"mimir/internal/simtime"
	"mimir/internal/transport"
	"mimir/internal/workloads"
)

// faultSpec lets CI's chaos job sweep fixed seeds:
//
//	go test ./internal/transport/conformance -fault-spec seed:7,chaos:0.02
var faultSpec = flag.String("fault-spec", "seed:11,delay:all@frame0,reset:all@frame1,partial:rank2@frame2,corrupt:all@frame3",
	"faultinject spec for the faulted-tcp conformance run")

// tcpBuilder builds an in-process TCP mesh: one *TCP per rank, real
// sockets over loopback. wrap, when non-nil, decorates rank's config.
func tcpBuilder(policy transport.FaultPolicy, wrap func(rank int, cfg *transport.TCPConfig)) Builder {
	return func(t testing.TB, size int) []transport.Transport {
		cfg := func(rank int, addr string) transport.TCPConfig {
			c := transport.TCPConfig{
				Addr:             addr,
				Rank:             rank,
				Size:             size,
				Policy:           policy,
				BootstrapTimeout: 30 * time.Second,
				// Long enough for real recovery (a reconnect takes
				// milliseconds), short enough that the abort scenario —
				// where survivors must give up on the poisoned rank's
				// silent links — doesn't stall the suite.
				ReconnectWindow: 2 * time.Second,
			}
			if wrap != nil {
				wrap(rank, &c)
			}
			return c
		}
		b, err := transport.ListenTCP(cfg(0, "127.0.0.1:0"))
		if err != nil {
			t.Fatal(err)
		}
		trs := make([]transport.Transport, size)
		errs := make([]error, size)
		var wg sync.WaitGroup
		for r := 1; r < size; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				tr, err := transport.NewTCP(cfg(r, b.Addr()))
				if err != nil {
					errs[r] = err
					return
				}
				trs[r] = tr
			}(r)
		}
		tr0, err := b.Accept()
		if err != nil {
			errs[0] = err
		} else {
			trs[0] = tr0
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("rank %d bootstrap: %v", r, err)
			}
		}
		return trs
	}
}

// TestLocalConformance pins the reference transport itself to the table.
func TestLocalConformance(t *testing.T) {
	Digests(t, LocalBuilder)
}

// TestTCPConformance proves the plain TCP transport byte-identical to the
// local one across the whole scenario table.
func TestTCPConformance(t *testing.T) {
	Run(t, tcpBuilder(transport.AbortOnFailure, nil))
}

// TestFaultedTCPConformance proves the fail-recover TCP transport still
// byte-identical to the local one while a deterministic fault schedule
// resets, corrupts, delays, and cuts its connections.
func TestFaultedTCPConformance(t *testing.T) {
	spec, err := faultinject.ParseSpec(*faultSpec)
	if err != nil {
		t.Fatalf("bad -fault-spec: %v", err)
	}
	if len(spec.Kills) > 0 {
		t.Fatalf("-fault-spec %q kills ranks; conformance needs the world to survive", *faultSpec)
	}
	var injectors []*faultinject.Injector
	var mu sync.Mutex
	build := tcpBuilder(transport.RetryTransient, func(rank int, cfg *transport.TCPConfig) {
		// A fresh injector per world: scenario runs must not consume each
		// other's one-shot events.
		in := faultinject.New(spec, rank)
		mu.Lock()
		injectors = append(injectors, in)
		mu.Unlock()
		cfg.WrapConn = in.WrapConn
		cfg.BackoffBase = 5 * time.Millisecond
	})
	Run(t, build)
	mu.Lock()
	defer mu.Unlock()
	fired := faultinject.Stats{}
	for _, in := range injectors {
		s := in.Stats()
		fired.Resets += s.Resets
		fired.Corruptions += s.Corruptions
		fired.Partials += s.Partials
		fired.Delays += s.Delays
	}
	if fired == (faultinject.Stats{}) {
		t.Fatalf("fault schedule %q never fired; the faulted run exercised nothing", *faultSpec)
	}
	t.Logf("faults fired: %+v", fired)
}

// TestCompressedTCPConformance re-runs the whole scenario table with wire
// v3 frame compression on: outputs must stay byte-identical to the local
// transport, proving compression is invisible above the framing layer.
func TestCompressedTCPConformance(t *testing.T) {
	Run(t, tcpBuilder(transport.AbortOnFailure, func(rank int, cfg *transport.TCPConfig) {
		cfg.Compress = true
	}))
}

// TestCompressedFaultedTCPConformance stacks compression on top of the
// deterministic fault schedule: resets force reconnects whose replay ledger
// holds frames in their encoded (compressed) form, corruption must be caught
// by the CRC over the compressed bytes, and the digests must still match the
// local transport — replayed compressed frames resume exactly-once.
func TestCompressedFaultedTCPConformance(t *testing.T) {
	spec, err := faultinject.ParseSpec(*faultSpec)
	if err != nil {
		t.Fatalf("bad -fault-spec: %v", err)
	}
	if len(spec.Kills) > 0 {
		t.Fatalf("-fault-spec %q kills ranks; conformance needs the world to survive", *faultSpec)
	}
	var injectors []*faultinject.Injector
	var mu sync.Mutex
	build := tcpBuilder(transport.RetryTransient, func(rank int, cfg *transport.TCPConfig) {
		in := faultinject.New(spec, rank)
		mu.Lock()
		injectors = append(injectors, in)
		mu.Unlock()
		cfg.Compress = true
		cfg.WrapConn = in.WrapConn
		cfg.BackoffBase = 5 * time.Millisecond
	})
	Run(t, build)
	mu.Lock()
	defer mu.Unlock()
	fired := faultinject.Stats{}
	for _, in := range injectors {
		s := in.Stats()
		fired.Resets += s.Resets
		fired.Corruptions += s.Corruptions
		fired.Partials += s.Partials
		fired.Delays += s.Delays
	}
	if fired == (faultinject.Stats{}) {
		t.Fatalf("fault schedule %q never fired; the compressed faulted run exercised nothing", *faultSpec)
	}
	t.Logf("faults fired: %+v", fired)
}

// TestConcurrentJobsLocal: two interleaved job streams on the in-process
// mesh are byte-identical to each stream running alone.
func TestConcurrentJobsLocal(t *testing.T) {
	ConcurrentJobs(t, LocalBuilder)
}

// TestConcurrentJobsTCP: the same multi-tenancy contract over real sockets.
func TestConcurrentJobsTCP(t *testing.T) {
	ConcurrentJobs(t, tcpBuilder(transport.AbortOnFailure, nil))
}

// TestConcurrentJobsFaultedTCP: two interleaved jobs stay solo-identical
// while the deterministic fault schedule resets, corrupts, delays, and cuts
// the shared mesh's connections under both of them.
func TestConcurrentJobsFaultedTCP(t *testing.T) {
	spec, err := faultinject.ParseSpec(*faultSpec)
	if err != nil {
		t.Fatalf("bad -fault-spec: %v", err)
	}
	if len(spec.Kills) > 0 {
		t.Fatalf("-fault-spec %q kills ranks; conformance needs the world to survive", *faultSpec)
	}
	ConcurrentJobs(t, tcpBuilder(transport.RetryTransient, func(rank int, cfg *transport.TCPConfig) {
		cfg.WrapConn = faultinject.New(spec, rank).WrapConn
		cfg.BackoffBase = 5 * time.Millisecond
	}))
}

// confWorkers is the pool size the Workers conformance variants run at.
const confWorkers = 4

// TestLocalConformanceWorkers: the local transport at Workers=4 must
// reproduce the serial digests byte for byte.
func TestLocalConformanceWorkers(t *testing.T) {
	RunWorkers(t, LocalBuilder, confWorkers)
}

// TestTCPConformanceWorkers: real sockets with intra-rank worker pools —
// digests still byte-identical to the serial local golden run.
func TestTCPConformanceWorkers(t *testing.T) {
	RunWorkers(t, tcpBuilder(transport.AbortOnFailure, nil), confWorkers)
}

// TestFaultedTCPConformanceWorkers stacks all three axes: fault injection,
// TCP recovery, and intra-rank parallelism, against the serial golden.
func TestFaultedTCPConformanceWorkers(t *testing.T) {
	spec, err := faultinject.ParseSpec(*faultSpec)
	if err != nil {
		t.Fatalf("bad -fault-spec: %v", err)
	}
	if len(spec.Kills) > 0 {
		t.Fatalf("-fault-spec %q kills ranks; conformance needs the world to survive", *faultSpec)
	}
	build := tcpBuilder(transport.RetryTransient, func(rank int, cfg *transport.TCPConfig) {
		cfg.WrapConn = faultinject.New(spec, rank).WrapConn
		cfg.BackoffBase = 5 * time.Millisecond
	})
	RunWorkers(t, build, confWorkers)
}

// TestWordCountWorkersCrossTransport lifts the Workers=4 determinism claim
// from transport scenarios to a whole job: a distributed WordCount over real
// TCP sockets with 4-worker ranks must be byte-identical to the serial
// in-process reference run.
func TestWordCountWorkersCrossTransport(t *testing.T) {
	const size = 3
	cfg := driver.WordCountConfig{
		Dist:       workloads.Uniform,
		TotalBytes: 1 << 16,
		Seed:       5,
		Hint:       true,
		PR:         true,
		Workers:    1,
	}
	ref, err := driver.WordCount(mpi.NewWorld(mpi.Config{
		Size: size,
		Net:  simtime.NetworkModel{Alpha: 1e-7, Beta: 1e9},
	}), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) == 0 {
		t.Fatal("serial reference run produced no output")
	}

	trs := tcpBuilder(transport.AbortOnFailure, nil)(t, size)
	cfg.Workers = confWorkers
	outs := make([][]byte, size)
	errs := make([]error, size)
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for r := range trs {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				world := mpi.NewWorld(mpi.Config{Transport: trs[r]})
				outs[r], errs[r] = driver.WordCount(world, cfg, nil)
				world.Close()
			}(r)
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("cross-transport world hung")
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if !bytes.Equal(outs[0], ref) {
		t.Fatalf("Workers=%d TCP output not byte-identical to serial in-process reference: %d vs %d bytes",
			confWorkers, len(outs[0]), len(ref))
	}
}
