package transport

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Frame-level compression (wire v3). A sender with TCPConfig.Compress set
// deflates data-frame payloads that shrink: the op byte carries
// CompressedFlag and the payload becomes [u32 rawLen][deflate stream]. The
// decision is per frame — a payload that does not get smaller is sent plain
// — and purely sender-side: receivers always accept both forms, so ranks
// with different Compress settings interoperate. The frame CRC-32C is
// computed over the compressed bytes (compress-then-CRC), so CRC
// verification, the replay buffer, and fault injection all operate on the
// exact bytes that cross the wire, and a replayed frame is re-sent
// bit-identical to its first transmission.

// CompressedFlag marks a frame whose payload is deflate-compressed. It is a
// flag bit on the op byte; mask it off to recover the opcode. FrameMarker
// hooks always receive the base opcode, never the flagged byte.
const CompressedFlag byte = 0x80

// compressMinSize is the smallest payload worth attempting to compress:
// below it the [u32 rawLen] prefix and deflate framing overhead outweigh any
// plausible savings.
const compressMinSize = 128

// compressor pairs a pooled flate writer with its append sink so one pool
// Get covers both.
type compressor struct {
	fw  *flate.Writer
	dst appendWriter
}

type appendWriter struct{ buf []byte }

func (w *appendWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

var compressors = sync.Pool{New: func() any {
	fw, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
	return &compressor{fw: fw}
}}

// decompressor pairs a pooled flate reader with its source so the whole
// inflate path is allocation-free after warmup.
type decompressor struct {
	fr io.ReadCloser
	br bytes.Reader
}

var decompressors = sync.Pool{New: func() any {
	d := &decompressor{}
	d.fr = flate.NewReader(&d.br)
	return d
}}

// compressPayload appends [u32 rawLen][deflate(data)] to dst and reports
// whether the result is smaller than data itself. On ok=false (payload grew,
// or data is empty) the returned slice still carries whatever was appended —
// the caller recycles it either way.
func compressPayload(dst, data []byte) ([]byte, bool) {
	c := compressors.Get().(*compressor)
	c.dst.buf = binary.BigEndian.AppendUint32(dst, uint32(len(data)))
	c.fw.Reset(&c.dst)
	_, werr := c.fw.Write(data)
	cerr := c.fw.Close()
	out := c.dst.buf
	c.dst.buf = nil
	compressors.Put(c)
	if werr != nil || cerr != nil {
		return out, false // appendWriter cannot fail, but stay defensive
	}
	return out, len(out)-len(dst) < len(data)
}

// decompressPayload inflates a CompressedFlag payload. rawLen is
// attacker-controlled until the stream proves it has the bytes, so the
// output grows chunk by chunk (mirroring readBody) instead of trusting the
// prefix, and the stream must produce exactly rawLen bytes followed by EOF.
func decompressPayload(comp []byte) ([]byte, error) {
	if len(comp) < 4 {
		return nil, fmt.Errorf("%w: truncated compressed payload (%d bytes)", ErrBadFrame, len(comp))
	}
	rawLen := int(binary.BigEndian.Uint32(comp))
	if rawLen > MaxFrameSize {
		return nil, fmt.Errorf("%w: compressed payload claims %d raw bytes (limit %d)", ErrBadFrame, rawLen, MaxFrameSize)
	}
	d := decompressors.Get().(*decompressor)
	defer decompressors.Put(d)
	d.br.Reset(comp[4:])
	if err := d.fr.(flate.Resetter).Reset(&d.br, nil); err != nil {
		return nil, fmt.Errorf("%w: inflate reset: %v", ErrBadFrame, err)
	}
	const chunk = 1 << 20
	first := rawLen
	if first > chunk {
		first = chunk
	}
	out := make([]byte, first)
	if _, err := io.ReadFull(d.fr, out); err != nil {
		return nil, fmt.Errorf("%w: inflate: %v", ErrBadFrame, err)
	}
	for len(out) < rawLen {
		take := rawLen - len(out)
		if take > chunk {
			take = chunk
		}
		start := len(out)
		out = append(out, make([]byte, take)...)
		if _, err := io.ReadFull(d.fr, out[start:]); err != nil {
			return nil, fmt.Errorf("%w: inflate: %v", ErrBadFrame, err)
		}
	}
	var one [1]byte
	if _, err := io.ReadFull(d.fr, one[:]); err == nil {
		return nil, fmt.Errorf("%w: compressed payload longer than declared %d bytes", ErrBadFrame, rawLen)
	}
	return out, nil
}

// AppendFrameCompressed appends the wire-v3 encoding of f to dst, deflating
// the payload when that makes the frame smaller, and reports whether
// compression was applied. The TCP write path makes the same per-frame
// decision; this form is exported for tests and tooling that build frames
// offline.
func AppendFrameCompressed(dst []byte, f *Frame) ([]byte, bool) {
	if len(f.Data) >= compressMinSize {
		if comp, ok := compressPayload(nil, f.Data); ok {
			dst = appendFrameHeaderRaw(dst, f.Op|CompressedFlag, f.Src, f.Job, f.Tag, f.Seq, f.Time, comp)
			return append(dst, comp...), true
		}
	}
	return AppendFrame(dst, f), false
}
