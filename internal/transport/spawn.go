package transport

import (
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"time"
)

// Environment variables a spawned worker process reads to join its world.
// SpawnLocal sets them on the children it launches; any launcher (a cluster
// scheduler, a shell script) can set them instead of flags.
const (
	EnvJoin = "MIMIR_TCP_JOIN"
	EnvRank = "MIMIR_TCP_RANK"
	EnvSize = "MIMIR_TCP_SIZE"
)

// FromEnv reads a worker's TCP configuration from the environment. The
// second return is false when the process was not launched as a worker
// (EnvJoin unset).
func FromEnv() (TCPConfig, bool, error) {
	addr := os.Getenv(EnvJoin)
	if addr == "" {
		return TCPConfig{}, false, nil
	}
	rank, err := strconv.Atoi(os.Getenv(EnvRank))
	if err != nil {
		return TCPConfig{}, true, fmt.Errorf("transport: bad %s=%q: %v", EnvRank, os.Getenv(EnvRank), err)
	}
	size, err := strconv.Atoi(os.Getenv(EnvSize))
	if err != nil {
		return TCPConfig{}, true, fmt.Errorf("transport: bad %s=%q: %v", EnvSize, os.Getenv(EnvSize), err)
	}
	return TCPConfig{Addr: addr, Rank: rank, Size: size}, true, nil
}

// Children tracks the worker processes SpawnLocal launched.
type Children struct {
	procs []*exec.Cmd
}

// Wait reaps every child and returns the first failure (by rank order).
func (c *Children) Wait() error {
	var first error
	for _, p := range c.procs {
		if err := p.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Kill terminates every child still running.
func (c *Children) Kill() {
	for _, p := range c.procs {
		if p.Process != nil {
			p.Process.Kill()
		}
	}
}

// SpawnLocal turns this process into rank 0 of a size-rank world on the
// loopback interface and launches size-1 copies of this binary (same
// arguments) as the worker ranks, joining them via the MIMIR_TCP_*
// environment. The re-executed copies must detect the environment (FromEnv)
// before doing anything else and run as workers.
//
// Children write their stdout to stderr so rank 0's stdout stays the only
// place job output appears.
func SpawnLocal(size int, deadline time.Duration) (*TCP, *Children, error) {
	if size < 1 {
		return nil, nil, fmt.Errorf("transport: invalid world size %d", size)
	}
	b, err := ListenTCP(TCPConfig{Addr: "127.0.0.1:0", Rank: 0, Size: size, Deadline: deadline})
	if err != nil {
		return nil, nil, err
	}
	exe, err := os.Executable()
	if err != nil {
		exe = os.Args[0]
	}
	children := &Children{}
	for rank := 1; rank < size; rank++ {
		cmd := exec.Command(exe, os.Args[1:]...)
		cmd.Env = append(os.Environ(),
			EnvJoin+"="+b.Addr(),
			fmt.Sprintf("%s=%d", EnvRank, rank),
			fmt.Sprintf("%s=%d", EnvSize, size),
		)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			children.Kill()
			children.Wait()
			b.ln.Close()
			return nil, nil, fmt.Errorf("transport: spawning worker rank %d: %w", rank, err)
		}
		children.procs = append(children.procs, cmd)
	}
	t, err := b.Accept()
	if err != nil {
		children.Kill()
		children.Wait()
		return nil, nil, err
	}
	return t, children, nil
}
