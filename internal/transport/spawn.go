package transport

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"time"
)

// Environment variables a spawned worker process reads to join its world.
// SpawnLocal sets them on the children it launches; any launcher (a cluster
// scheduler, a shell script) can set them instead of flags.
const (
	EnvJoin = "MIMIR_TCP_JOIN"
	EnvRank = "MIMIR_TCP_RANK"
	EnvSize = "MIMIR_TCP_SIZE"
	// EnvPolicy carries the fault policy ("abort" or "retry") so every
	// process of a world reacts to link faults the same way.
	EnvPolicy = "MIMIR_TCP_POLICY"
	// EnvWindow carries the RetryTransient reconnect window as a Go
	// duration string.
	EnvWindow = "MIMIR_TCP_WINDOW"
	// EnvFaults carries a fault-injection spec (internal/faultinject
	// grammar). The transport only forwards it; the facade layer parses it
	// and wires the injector.
	EnvFaults = "MIMIR_TCP_FAULTS"
	// EnvCompress ("1"/"true") turns on wire v3 frame compression
	// (TCPConfig.Compress). Compression is per-frame and sender-side, so
	// mixed settings interoperate, but setting it world-wide is what makes
	// both directions of every link compress.
	EnvCompress = "MIMIR_TCP_COMPRESS"
)

// FromEnv reads a worker's TCP configuration from the environment. The
// second return is false when the process was not launched as a worker
// (EnvJoin unset).
func FromEnv() (TCPConfig, bool, error) {
	addr := os.Getenv(EnvJoin)
	if addr == "" {
		return TCPConfig{}, false, nil
	}
	rank, err := strconv.Atoi(os.Getenv(EnvRank))
	if err != nil {
		return TCPConfig{}, true, fmt.Errorf("transport: bad %s=%q: %v", EnvRank, os.Getenv(EnvRank), err)
	}
	size, err := strconv.Atoi(os.Getenv(EnvSize))
	if err != nil {
		return TCPConfig{}, true, fmt.Errorf("transport: bad %s=%q: %v", EnvSize, os.Getenv(EnvSize), err)
	}
	cfg := TCPConfig{Addr: addr, Rank: rank, Size: size}
	if s := os.Getenv(EnvPolicy); s != "" {
		p, err := ParseFaultPolicy(s)
		if err != nil {
			return TCPConfig{}, true, fmt.Errorf("transport: bad %s=%q: %v", EnvPolicy, s, err)
		}
		cfg.Policy = p
	}
	if s := os.Getenv(EnvWindow); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil || d <= 0 {
			return TCPConfig{}, true, fmt.Errorf("transport: bad %s=%q", EnvWindow, s)
		}
		cfg.ReconnectWindow = d
	}
	if s := os.Getenv(EnvCompress); s != "" {
		on, err := strconv.ParseBool(s)
		if err != nil {
			return TCPConfig{}, true, fmt.Errorf("transport: bad %s=%q: %v", EnvCompress, s, err)
		}
		cfg.Compress = on
	}
	return cfg, true, nil
}

// FaultsFromEnv returns the fault-injection spec string a parent forwarded
// through the environment ("" when none). The caller parses it — the
// transport has no dependency on the injector package.
func FaultsFromEnv() string { return os.Getenv(EnvFaults) }

// Children tracks the worker processes SpawnLocal launched.
type Children struct {
	procs []*exec.Cmd
}

// Wait reaps every child and returns the first failure (by rank order).
func (c *Children) Wait() error {
	var first error
	for _, p := range c.procs {
		if err := p.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Kill terminates every child still running.
func (c *Children) Kill() {
	for _, p := range c.procs {
		if p.Process != nil {
			p.Process.Kill()
		}
	}
}

// SpawnOptions configures SpawnLocalOpts beyond the world size: the fault
// policy and reconnect window (forwarded to every worker through the
// environment), a fault-injection spec string (forwarded verbatim; workers
// wire their own injectors), and rank 0's own connection hook.
type SpawnOptions struct {
	// Deadline is the per-I/O deadline (TCPConfig.Deadline).
	Deadline time.Duration
	// Policy selects fail-stop or fail-recover link handling for every
	// process of the world.
	Policy FaultPolicy
	// ReconnectWindow bounds RetryTransient recovery (TCPConfig.ReconnectWindow).
	ReconnectWindow time.Duration
	// Faults is a fault-injection spec forwarded to workers via EnvFaults.
	// It does not configure rank 0 — pass WrapConn for that.
	Faults string
	// Compress turns on wire v3 frame compression for rank 0 and, via
	// EnvCompress, every worker.
	Compress bool
	// WrapConn is rank 0's TCPConfig.WrapConn hook.
	WrapConn func(peer int, c net.Conn) net.Conn
}

// SpawnLocal turns this process into rank 0 of a size-rank world on the
// loopback interface and launches size-1 copies of this binary (same
// arguments) as the worker ranks, joining them via the MIMIR_TCP_*
// environment. The re-executed copies must detect the environment (FromEnv)
// before doing anything else and run as workers.
//
// Children write their stdout to stderr so rank 0's stdout stays the only
// place job output appears.
func SpawnLocal(size int, deadline time.Duration) (*TCP, *Children, error) {
	return SpawnLocalOpts(size, SpawnOptions{Deadline: deadline})
}

// SpawnLocalOpts is SpawnLocal with fault handling configured: the policy,
// reconnect window, and fault spec travel to every worker through the
// environment, so one flag string on the parent configures the whole world.
func SpawnLocalOpts(size int, opts SpawnOptions) (*TCP, *Children, error) {
	if size < 1 {
		return nil, nil, fmt.Errorf("transport: invalid world size %d", size)
	}
	b, err := ListenTCP(TCPConfig{
		Addr: "127.0.0.1:0", Rank: 0, Size: size,
		Deadline:        opts.Deadline,
		Policy:          opts.Policy,
		ReconnectWindow: opts.ReconnectWindow,
		Compress:        opts.Compress,
		WrapConn:        opts.WrapConn,
	})
	if err != nil {
		return nil, nil, err
	}
	exe, err := os.Executable()
	if err != nil {
		exe = os.Args[0]
	}
	children := &Children{}
	for rank := 1; rank < size; rank++ {
		cmd := exec.Command(exe, os.Args[1:]...)
		cmd.Env = append(os.Environ(),
			EnvJoin+"="+b.Addr(),
			fmt.Sprintf("%s=%d", EnvRank, rank),
			fmt.Sprintf("%s=%d", EnvSize, size),
		)
		if opts.Policy != AbortOnFailure {
			cmd.Env = append(cmd.Env, EnvPolicy+"="+opts.Policy.String())
		}
		if opts.ReconnectWindow > 0 {
			cmd.Env = append(cmd.Env, EnvWindow+"="+opts.ReconnectWindow.String())
		}
		if opts.Faults != "" {
			cmd.Env = append(cmd.Env, EnvFaults+"="+opts.Faults)
		}
		if opts.Compress {
			cmd.Env = append(cmd.Env, EnvCompress+"=1")
		}
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			children.Kill()
			children.Wait()
			b.ln.Close()
			return nil, nil, fmt.Errorf("transport: spawning worker rank %d: %w", rank, err)
		}
		children.procs = append(children.procs, cmd)
	}
	t, err := b.Accept()
	if err != nil {
		children.Kill()
		children.Wait()
		return nil, nil, err
	}
	return t, children, nil
}
