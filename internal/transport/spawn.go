package transport

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"time"
)

// Environment variables a spawned worker process reads to join its world.
// SpawnLocal sets them on the children it launches; any launcher (a cluster
// scheduler, a shell script) can set them instead of flags.
const (
	EnvJoin = "MIMIR_TCP_JOIN"
	EnvRank = "MIMIR_TCP_RANK"
	EnvSize = "MIMIR_TCP_SIZE"
	// EnvPolicy carries the fault policy ("abort" or "retry") so every
	// process of a world reacts to link faults the same way.
	EnvPolicy = "MIMIR_TCP_POLICY"
	// EnvWindow carries the RetryTransient reconnect window as a Go
	// duration string.
	EnvWindow = "MIMIR_TCP_WINDOW"
	// EnvFaults carries a fault-injection spec (internal/faultinject
	// grammar). The transport only forwards it; the facade layer parses it
	// and wires the injector.
	EnvFaults = "MIMIR_TCP_FAULTS"
	// EnvCompress ("1"/"true") turns on wire frame compression
	// (TCPConfig.Compress). Compression is per-frame and sender-side, so
	// mixed settings interoperate, but setting it world-wide is what makes
	// both directions of every link compress.
	EnvCompress = "MIMIR_TCP_COMPRESS"
	// EnvDeadline carries the per-I/O deadline as a Go duration string.
	EnvDeadline = "MIMIR_TCP_DEADLINE"
	// EnvWorkers carries the per-rank worker pool size (0 = all cores).
	// Unlike the MIMIR_TCP_* variables it also applies to in-process
	// worlds, which is why it keeps its own prefix.
	EnvWorkers = "MIMIR_WORKERS"
	// EnvEpoch carries the mesh epoch (TCPConfig.Epoch) so a worker forked
	// for an elastic world joins the right incarnation. Unset means 0.
	EnvEpoch = "MIMIR_TCP_EPOCH"
)

// FromEnv reads a worker's TCP configuration from the environment — the
// join address, rank, and size, plus everything Options carries. The second
// return is false when the process was not launched as a worker (EnvJoin
// unset).
func FromEnv() (TCPConfig, bool, error) {
	addr := os.Getenv(EnvJoin)
	if addr == "" {
		return TCPConfig{}, false, nil
	}
	rank, err := strconv.Atoi(os.Getenv(EnvRank))
	if err != nil {
		return TCPConfig{}, true, fmt.Errorf("transport: bad %s=%q: %v", EnvRank, os.Getenv(EnvRank), err)
	}
	size, err := strconv.Atoi(os.Getenv(EnvSize))
	if err != nil {
		return TCPConfig{}, true, fmt.Errorf("transport: bad %s=%q: %v", EnvSize, os.Getenv(EnvSize), err)
	}
	opts, err := OptionsFromEnv()
	if err != nil {
		return TCPConfig{}, true, err
	}
	cfg := opts.TCPConfig(addr, rank, size)
	if s := os.Getenv(EnvEpoch); s != "" {
		epoch, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return TCPConfig{}, true, fmt.Errorf("transport: bad %s=%q: %v", EnvEpoch, s, err)
		}
		cfg.Epoch = epoch
	}
	return cfg, true, nil
}

// FaultsFromEnv returns the fault-injection spec string a parent forwarded
// through the environment ("" when none). The caller parses it — the
// transport has no dependency on the injector package.
func FaultsFromEnv() string { return os.Getenv(EnvFaults) }

// Children tracks the worker processes SpawnLocal launched.
type Children struct {
	procs []*exec.Cmd
}

// Wait reaps every child and returns the first failure (by rank order).
func (c *Children) Wait() error {
	var first error
	for _, p := range c.procs {
		if err := p.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Kill terminates every child still running.
func (c *Children) Kill() {
	for _, p := range c.procs {
		if p.Process != nil {
			p.Process.Kill()
		}
	}
}

// SpawnOptions configures SpawnLocalOpts beyond the world size: the
// world-wide Options (forwarded to every worker through the environment via
// Options.Env — Faults configures the workers only, not rank 0) and rank
// 0's own connection hook.
type SpawnOptions struct {
	Options
	// WrapConn is rank 0's TCPConfig.WrapConn hook.
	WrapConn func(peer int, c net.Conn) net.Conn
}

// SpawnLocal turns this process into rank 0 of a size-rank world on the
// loopback interface and launches size-1 copies of this binary (same
// arguments) as the worker ranks, joining them via the MIMIR_TCP_*
// environment. The re-executed copies must detect the environment (FromEnv)
// before doing anything else and run as workers.
//
// Children write their stdout to stderr so rank 0's stdout stays the only
// place job output appears.
func SpawnLocal(size int, deadline time.Duration) (*TCP, *Children, error) {
	return SpawnLocalOpts(size, SpawnOptions{Options: Options{Deadline: deadline}})
}

// SpawnLocalOpts is SpawnLocal with fault handling configured: the policy,
// reconnect window, and fault spec travel to every worker through the
// environment, so one flag string on the parent configures the whole world.
func SpawnLocalOpts(size int, opts SpawnOptions) (*TCP, *Children, error) {
	if size < 1 {
		return nil, nil, fmt.Errorf("transport: invalid world size %d", size)
	}
	cfg := opts.Options.TCPConfig("127.0.0.1:0", 0, size)
	cfg.WrapConn = opts.WrapConn
	b, err := ListenTCP(cfg)
	if err != nil {
		return nil, nil, err
	}
	exe, err := os.Executable()
	if err != nil {
		exe = os.Args[0]
	}
	// One encode path for everything the workers must share: Options.Env.
	optEnv := opts.Options.Env()
	children := &Children{}
	for rank := 1; rank < size; rank++ {
		cmd := exec.Command(exe, os.Args[1:]...)
		cmd.Env = append(os.Environ(),
			EnvJoin+"="+b.Addr(),
			fmt.Sprintf("%s=%d", EnvRank, rank),
			fmt.Sprintf("%s=%d", EnvSize, size),
		)
		cmd.Env = append(cmd.Env, optEnv...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			children.Kill()
			children.Wait()
			b.ln.Close()
			return nil, nil, fmt.Errorf("transport: spawning worker rank %d: %w", rank, err)
		}
		children.procs = append(children.procs, cmd)
	}
	t, err := b.Accept()
	if err != nil {
		children.Kill()
		children.Wait()
		return nil, nil, err
	}
	return t, children, nil
}
