package transport

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Exchange, point-to-point, collective, and abort semantics shared with the
// local transport are covered by the cross-transport conformance suite
// (internal/transport/conformance); this file tests what is TCP-specific —
// bootstrap, configuration, clean shutdown, SPMD violation detection, and
// the fail-recover machinery (reconnect, replay, deadlines, peer death).

// startMeshCfg brings up a size-rank TCP world inside this one test
// process: rank 0 listens on loopback, the other ranks dial concurrently.
// mutate, when non-nil, customizes each rank's config. Transports are
// closed at test cleanup.
func startMeshCfg(t *testing.T, size int, mutate func(rank int, cfg *TCPConfig)) []*TCP {
	t.Helper()
	cfg := func(rank int, addr string) TCPConfig {
		c := TCPConfig{Addr: addr, Rank: rank, Size: size, BootstrapTimeout: 30 * time.Second}
		if mutate != nil {
			mutate(rank, &c)
		}
		return c
	}
	b, err := ListenTCP(cfg(0, "127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	trs := make([]*TCP, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 1; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			trs[r], errs[r] = NewTCP(cfg(r, b.Addr()))
		}(r)
	}
	trs[0], errs[0] = b.Accept()
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d bootstrap: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, tr := range trs {
			if tr != nil {
				tr.Close()
			}
		}
	})
	return trs
}

func startMesh(t *testing.T, size int) []*TCP {
	t.Helper()
	return startMeshCfg(t, size, nil)
}

func TestTCPBootstrapAndProperties(t *testing.T) {
	const size = 4
	trs := startMesh(t, size)
	for r, tr := range trs {
		if tr.Size() != size {
			t.Fatalf("rank %d: size %d", r, tr.Size())
		}
		if !tr.Wall() {
			t.Fatalf("rank %d: TCP transport must be wall-clock", r)
		}
		locals := tr.LocalRanks()
		if len(locals) != 1 || locals[0] != r {
			t.Fatalf("rank %d: local ranks %v", r, locals)
		}
		if got := tr.Endpoint(r).Rank(); got != r {
			t.Fatalf("endpoint rank %d, want %d", got, r)
		}
		if tr.Policy() != AbortOnFailure {
			t.Fatalf("rank %d: default policy %v", r, tr.Policy())
		}
	}
}

func TestTCPPeerDeathSurfacesErrAborted(t *testing.T) {
	const size = 3
	trs := startMesh(t, size)
	// Rank 0 parks in a recv that will never be matched.
	done := make(chan error, 1)
	go func() {
		_, err := trs[0].Endpoint(0).Recv(2, 1)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	// Rank 2 dies abruptly: connections drop with no Bye. In-process stand-in
	// for a killed worker process.
	trs[2].Sever(fmt.Errorf("%w: simulated death", ErrAborted))
	select {
	case err := <-done:
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("recv returned %v, want ErrAborted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer death did not release parked recv")
	}
}

// cutConn kills the connection in the middle of a frame write: on the
// trigger write it sends only half the bytes, closes the socket, and fails.
// The half-written frame can never have reached the peer, so recovery MUST
// replay it — this makes the replay path deterministic instead of hoping a
// racing close lands mid-flight.
type cutConn struct {
	net.Conn
	writes  int
	trigger int
	cuts    *int32 // shared budget across reconnects; 0 = passthrough
}

func (c *cutConn) Write(b []byte) (int, error) {
	c.writes++
	if c.writes == c.trigger && atomic.AddInt32(c.cuts, -1) >= 0 {
		half := len(b) / 2
		c.Conn.Write(b[:half])
		c.Conn.Close()
		return half, fmt.Errorf("cutConn: link cut mid-frame")
	}
	return c.Conn.Write(b)
}

// TestTCPReconnectReplaysFrames cuts the only link of a two-rank world in
// the middle of a frame. Under RetryTransient the transport must reconnect,
// replay what the peer missed, and deliver every round intact — and the
// fault counters must say it happened.
func TestTCPReconnectReplaysFrames(t *testing.T) {
	const size = 2
	cuts := int32(2)
	trs := startMeshCfg(t, size, func(rank int, cfg *TCPConfig) {
		cfg.Policy = RetryTransient
		cfg.ReconnectWindow = 5 * time.Second
		cfg.BackoffBase = 5 * time.Millisecond
		if rank == 0 {
			cfg.WrapConn = func(peer int, c net.Conn) net.Conn {
				return &cutConn{Conn: c, trigger: 10, cuts: &cuts}
			}
		}
	})
	const rounds = 40
	var wg sync.WaitGroup
	errs := make([]error, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep := trs[r].Endpoint(r)
			for round := 0; round < rounds; round++ {
				send := make([][]byte, size)
				for dst := range send {
					send[dst] = bytes.Repeat([]byte{byte(r), byte(round)}, 512)
				}
				recv, _, err := ep.Exchange(send, 0)
				if err != nil {
					errs[r] = fmt.Errorf("round %d: %w", round, err)
					return
				}
				for src := range recv {
					if want := bytes.Repeat([]byte{byte(src), byte(round)}, 512); !bytes.Equal(recv[src], want) {
						errs[r] = fmt.Errorf("round %d: bad payload from %d", round, src)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	total := FaultStats{}
	for _, tr := range trs {
		s := tr.FaultStats()
		total.LinkFailures += s.LinkFailures
		total.Reconnects += s.Reconnects
		total.ReplayedFrames += s.ReplayedFrames
	}
	if total.LinkFailures == 0 || total.Reconnects == 0 || total.ReplayedFrames == 0 {
		t.Fatalf("no recovery recorded: %+v", total)
	}
	t.Logf("fault stats: %+v", total)
}

// TestTCPKillUnderRetrySurfacesAbortFast severs one rank of a RetryTransient
// world for good: the survivors must give up after the reconnect window and
// surface ErrAborted — quickly, not after some compounding of timeouts.
func TestTCPKillUnderRetrySurfacesAbortFast(t *testing.T) {
	const size = 3
	trs := startMeshCfg(t, size, func(rank int, cfg *TCPConfig) {
		cfg.Policy = RetryTransient
		cfg.ReconnectWindow = 300 * time.Millisecond
		cfg.BackoffBase = 5 * time.Millisecond
	})
	start := time.Now()
	trs[2].Sever(fmt.Errorf("%w: killed", ErrAborted))
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				if _, _, err := trs[r].Endpoint(r).Exchange(nil, 0); err != nil {
					errs[r] = err
					return
				}
			}
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("survivors did not abort after permanent peer death")
	}
	elapsed := time.Since(start)
	for r, err := range errs {
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("rank %d: %v, want ErrAborted", r, err)
		}
	}
	if elapsed > time.Second {
		t.Fatalf("survivors took %v to abort, want < 1s", elapsed)
	}
}

// TestTCPReconnectResumeWaitsForDrainingReader pins down the resume
// snapshot race: a reconnect's resume snapshot must wait for the previous
// connection generation's reader to drain the frames already buffered in
// its bufio.Reader, or it advertises a stale receive count and the peer's
// replay delivers those frames a second time.
//
// The race window is staged deterministically from inside the package:
// rank 0's reader is parked mid-delivery by holding the mailbox lock while
// a burst from rank 1 fills its bufio buffer with undelivered frames, then
// the link is cut so rank 1 re-dials while the parked reader still owns
// that backlog. Messages on one link arrive in order, so any duplicate
// shifts the received sequence and shows up as a payload mismatch.
func TestTCPReconnectResumeWaitsForDrainingReader(t *testing.T) {
	const size = 2
	const pause = 150 * time.Millisecond
	trs := startMeshCfg(t, size, func(rank int, cfg *TCPConfig) {
		cfg.Policy = RetryTransient
		cfg.ReconnectWindow = 5 * time.Second
		cfg.BackoffBase = 5 * time.Millisecond
		if rank == 0 {
			// Each read sleeps first, then pulls up to a full bufio buffer:
			// the whole burst below lands in the kernel during one sleep and
			// arrives in rank 0's bufio in a single gulp.
			cfg.WrapConn = func(peer int, c net.Conn) net.Conn {
				return &slowReadConn{Conn: c, chunk: 64 << 10, pause: pause}
			}
		}
	})
	const msgs = 20
	payload := func(i int) []byte { return bytes.Repeat([]byte{byte(i)}, 4096) }

	// Park rank 0's reader: the first burst frame it delivers blocks in
	// mbox.put (its recvSeq increment already done), stranding the rest of
	// the bufio gulp undelivered — the reviewer's "old reader still
	// delivering buffered frames" state, held open for as long as needed.
	trs[0].ch0.mbox.mu.Lock()
	ep1 := trs[1].Endpoint(1)
	for i := 0; i < msgs; i++ {
		if err := ep1.Send(0, 9, payload(i), 0); err != nil {
			trs[0].ch0.mbox.mu.Unlock()
			t.Fatalf("send %d: %v", i, err)
		}
	}
	// Reader's gulp happens one pause after its previous read; add slack so
	// it has read the burst and parked on the mailbox lock.
	time.Sleep(2 * pause)

	// Cut the link from rank 1's side: rank 1 re-dials and the two sides
	// run the resume handshake while rank 0's old reader is still parked on
	// its backlog.
	p1 := trs[1].peers[0]
	p1.wmu.Lock()
	gen := p1.gen
	p1.wmu.Unlock()
	trs[1].linkDown(p1, gen, fmt.Errorf("test: injected cut"))
	time.Sleep(pause)

	// Release the parked reader only now, well after the reconnect started.
	trs[0].ch0.mbox.mu.Unlock()

	ep0 := trs[0].Endpoint(0)
	for i := 0; i < msgs; i++ {
		m, err := ep0.Recv(1, 9)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if !bytes.Equal(m.Data, payload(i)) {
			t.Fatalf("message %d: got payload %d (duplicate delivery from a stale resume snapshot?)", i, m.Data[0])
		}
	}
	// Nothing may trail the expected sequence: a duplicate of the last few
	// frames would otherwise go unnoticed.
	time.Sleep(2 * pause)
	if m, ok, _ := ep0.TryRecv(1, 9); ok {
		t.Fatalf("extra message with payload %d after the full sequence (duplicate delivery)", m.Data[0])
	}
	if trs[1].FaultStats().Reconnects == 0 {
		t.Fatal("no reconnect happened; the staged cut did not exercise the resume path")
	}
}

// TestTCPLargeFramesDoNotOverflowReplayCap is the regression test for the
// replay-cap false positive: frames large relative to MaxReplay used to
// blow the byte cap on a perfectly healthy link — ackEvery frames is far
// more than MaxReplay bytes — and abort the world. The receiver must ack on
// a byte threshold too, and a sender that still outruns the ack round-trip
// must flow-control itself instead of aborting.
func TestTCPLargeFramesDoNotOverflowReplayCap(t *testing.T) {
	const size = 2
	trs := startMeshCfg(t, size, func(rank int, cfg *TCPConfig) {
		cfg.Policy = RetryTransient
		cfg.MaxReplay = 256 << 10
	})
	// 24 frames of 64 KiB: six times the cap, but fewer than ackEvery, so
	// frame-count acks alone would never prune the replay buffer in time.
	payload := bytes.Repeat([]byte{0xAB}, 64<<10)
	const frames = 24
	done := make(chan error, 1)
	go func() {
		ep := trs[1].Endpoint(1)
		for i := 0; i < frames; i++ {
			m, err := ep.Recv(0, 7)
			if err != nil {
				done <- fmt.Errorf("recv %d: %w", i, err)
				return
			}
			if !bytes.Equal(m.Data, payload) {
				done <- fmt.Errorf("recv %d: corrupt payload", i)
				return
			}
		}
		done <- nil
	}()
	ep := trs[0].Endpoint(0)
	for i := 0; i < frames; i++ {
		if err := ep.Send(1, 7, payload, 0); err != nil {
			t.Fatalf("send %d: %v (healthy link hit the replay cap?)", i, err)
		}
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("receiver did not drain the burst")
	}
}

// markRecorder records the frame boundaries a fault injector would see, so
// tests can assert the transport announces true frame sizes.
type markRecorder struct {
	net.Conn
	mu    sync.Mutex
	ops   []byte
	sizes []int
}

func (c *markRecorder) BeginFrame(op byte, size int) error {
	c.mu.Lock()
	c.ops = append(c.ops, op)
	c.sizes = append(c.sizes, size)
	c.mu.Unlock()
	return nil
}

// TestTCPReplayAnnouncesTrueFrameSize: replayed frames only exist in encoded
// form, and the replay path used to announce them to FrameMarker with a
// bare-header size, confining injected faults on the replay path to the
// frame's first bytes. Every frame that can end up in the replay carries a
// 4 KiB payload here (the only empty data frame, the initial barrier, is
// acknowledged by the time the world is up), so no data frame on a
// post-reconnect connection may announce a header-only size.
func TestTCPReplayAnnouncesTrueFrameSize(t *testing.T) {
	const size = 2
	cuts := int32(1)
	var mu sync.Mutex
	var reconnRecs []*markRecorder // recorders on rank 0's post-initial conns
	wraps := 0
	trs := startMeshCfg(t, size, func(rank int, cfg *TCPConfig) {
		cfg.Policy = RetryTransient
		cfg.ReconnectWindow = 5 * time.Second
		cfg.BackoffBase = 5 * time.Millisecond
		if rank == 0 {
			cfg.WrapConn = func(peer int, c net.Conn) net.Conn {
				cut := &cutConn{Conn: c, trigger: 10, cuts: &cuts}
				rec := &markRecorder{Conn: cut}
				mu.Lock()
				wraps++
				if wraps > 1 {
					reconnRecs = append(reconnRecs, rec)
				}
				mu.Unlock()
				return rec
			}
		}
	})
	const rounds = 30
	var wg sync.WaitGroup
	errs := make([]error, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep := trs[r].Endpoint(r)
			for round := 0; round < rounds; round++ {
				send := make([][]byte, size)
				for dst := range send {
					send[dst] = bytes.Repeat([]byte{byte(r), byte(round)}, 2048)
				}
				if _, _, err := ep.Exchange(send, 0); err != nil {
					errs[r] = fmt.Errorf("round %d: %w", round, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if got := trs[0].FaultStats().ReplayedFrames; got < 1 {
		t.Fatalf("nothing replayed; the mid-frame cut must strand at least the cut frame")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(reconnRecs) == 0 {
		t.Fatal("no reconnect connection was wrapped")
	}
	headerOnly := 0
	for _, rec := range reconnRecs {
		rec.mu.Lock()
		for i, op := range rec.ops {
			if (op == OpP2P || op == OpExchange) && rec.sizes[i] <= HeaderLen {
				headerOnly++
			}
		}
		rec.mu.Unlock()
	}
	if headerOnly > 0 {
		t.Fatalf("%d data frames on reconnect conns announced header-only sizes; replay must report true frame lengths", headerOnly)
	}
}

// slowReadConn throttles reads: a peer that is alive but drains slowly.
type slowReadConn struct {
	net.Conn
	chunk int
	pause time.Duration
}

func (c *slowReadConn) Read(b []byte) (int, error) {
	if len(b) > c.chunk {
		b = b[:c.chunk]
	}
	time.Sleep(c.pause)
	return c.Conn.Read(b)
}

// TestTCPSlowPeerSurvivesLargeExchange is the regression test for the
// whole-frame write deadline bug: a large Exchange to a slow-but-alive peer
// took longer than Deadline end to end and was misdeclared dead, even
// though bytes were flowing the whole time. The per-chunk deadline re-arm
// must let the transfer finish.
func TestTCPSlowPeerSurvivesLargeExchange(t *testing.T) {
	const size = 2
	const deadline = 250 * time.Millisecond
	trs := startMeshCfg(t, size, func(rank int, cfg *TCPConfig) {
		cfg.Deadline = deadline
		if rank == 1 {
			// Rank 1 drains its link from rank 0 at roughly 4 MB/s: the
			// whole payload cannot arrive within one Deadline, but every
			// 128 KiB chunk can.
			cfg.WrapConn = func(peer int, c net.Conn) net.Conn {
				if peer != 0 {
					return c
				}
				return &slowReadConn{Conn: c, chunk: 16 << 10, pause: 2 * time.Millisecond}
			}
		}
	})
	payload := bytes.Repeat([]byte("slowly!!"), 2<<20/8) // 2 MiB
	var wg sync.WaitGroup
	errs := make([]error, size)
	start := time.Now()
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			send := make([][]byte, size)
			for dst := range send {
				send[dst] = payload
			}
			recv, _, err := trs[r].Endpoint(r).Exchange(send, 0)
			if err != nil {
				errs[r] = err
				return
			}
			for src := range recv {
				if !bytes.Equal(recv[src], payload) {
					errs[r] = fmt.Errorf("bad payload from %d", src)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v (slow-but-alive peer treated as dead?)", r, err)
		}
	}
	if elapsed := time.Since(start); elapsed < deadline {
		t.Skipf("transfer finished in %v, too fast to exercise the deadline re-arm", elapsed)
	}
}

func TestTCPSPMDSeqMismatch(t *testing.T) {
	const size = 2
	trs := startMesh(t, size)
	var wg sync.WaitGroup
	wg.Add(2)
	var err0, err1 error
	go func() {
		defer wg.Done()
		ep := trs[0].Endpoint(0)
		// Rank 0 runs two exchanges; rank 1 only one: the second must not
		// silently mismatch.
		_, _, err0 = ep.Exchange(nil, 0)
		if err0 == nil {
			_, _, err0 = ep.Exchange(nil, 1)
		}
	}()
	go func() {
		defer wg.Done()
		ep := trs[1].Endpoint(1)
		_, _, err1 = ep.Exchange(nil, 0)
		if err1 == nil {
			// Desynchronize: a p2p send consumed where a collective is due is
			// the classic SPMD violation.
			err1 = ep.Send(0, 3, []byte("oops"), 2)
		}
	}()
	// Give the mismatch a moment to surface, then abort so nothing hangs.
	time.Sleep(200 * time.Millisecond)
	trs[0].Abort(fmt.Errorf("%w: test cleanup", ErrAborted))
	wg.Wait()
	// The first exchange must have succeeded on both ranks.
	if err1 != nil {
		t.Fatalf("rank 1: %v", err1)
	}
}

func TestTCPConfigValidation(t *testing.T) {
	bad := []TCPConfig{
		{Addr: "", Rank: 0, Size: 2},
		{Addr: "x:1", Rank: -1, Size: 2},
		{Addr: "x:1", Rank: 2, Size: 2},
		{Addr: "x:1", Rank: 0, Size: 0},
	}
	for _, cfg := range bad {
		if err := cfg.withDefaults().validate(); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := NewTCP(TCPConfig{Addr: "127.0.0.1:1", Rank: 3, Size: 2}); err == nil {
		t.Error("out-of-range rank accepted")
	}
}

func TestParseFaultPolicy(t *testing.T) {
	for s, want := range map[string]FaultPolicy{"": AbortOnFailure, "abort": AbortOnFailure, "retry": RetryTransient} {
		got, err := ParseFaultPolicy(s)
		if err != nil || got != want {
			t.Errorf("ParseFaultPolicy(%q) = %v, %v", s, got, err)
		}
		if got.String() == "unknown" {
			t.Errorf("%v has no name", got)
		}
	}
	if _, err := ParseFaultPolicy("yolo"); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestTCPCleanCloseIsNotAbort(t *testing.T) {
	const size = 2
	trs := startMesh(t, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if _, _, err := trs[r].Endpoint(r).Exchange(nil, 0); err != nil {
				t.Errorf("rank %d: %v", r, err)
			}
			if err := trs[r].Close(); err != nil {
				t.Errorf("rank %d close: %v", r, err)
			}
		}(r)
	}
	wg.Wait()
}
