package transport

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// startMesh brings up a size-rank TCP world inside this one test process:
// rank 0 listens on loopback, the other ranks dial concurrently. Transports
// are closed at test cleanup.
func startMesh(t *testing.T, size int) []*TCP {
	t.Helper()
	b, err := ListenTCP(TCPConfig{Addr: "127.0.0.1:0", Rank: 0, Size: size, BootstrapTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	trs := make([]*TCP, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 1; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			trs[r], errs[r] = NewTCP(TCPConfig{Addr: b.Addr(), Rank: r, Size: size, BootstrapTimeout: 30 * time.Second})
		}(r)
	}
	trs[0], errs[0] = b.Accept()
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d bootstrap: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, tr := range trs {
			if tr != nil {
				tr.Close()
			}
		}
	})
	return trs
}

func TestTCPBootstrapAndProperties(t *testing.T) {
	const size = 4
	trs := startMesh(t, size)
	for r, tr := range trs {
		if tr.Size() != size {
			t.Fatalf("rank %d: size %d", r, tr.Size())
		}
		if !tr.Wall() {
			t.Fatalf("rank %d: TCP transport must be wall-clock", r)
		}
		locals := tr.LocalRanks()
		if len(locals) != 1 || locals[0] != r {
			t.Fatalf("rank %d: local ranks %v", r, locals)
		}
		if got := tr.Endpoint(r).Rank(); got != r {
			t.Fatalf("endpoint rank %d, want %d", got, r)
		}
	}
}

func TestTCPExchange(t *testing.T) {
	const size = 3
	trs := startMesh(t, size)
	var wg sync.WaitGroup
	fail := make(chan string, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep := trs[r].Endpoint(r)
			for round := 0; round < 10; round++ {
				send := make([][]byte, size)
				for dst := range send {
					send[dst] = []byte(fmt.Sprintf("r%d->%d#%d", r, dst, round))
				}
				recv, _, err := ep.Exchange(send, float64(round))
				if err != nil {
					fail <- fmt.Sprintf("rank %d round %d: %v", r, round, err)
					return
				}
				for src := range recv {
					want := fmt.Sprintf("r%d->%d#%d", src, r, round)
					if string(recv[src]) != want {
						fail <- fmt.Sprintf("rank %d round %d src %d: got %q want %q", r, round, src, recv[src], want)
						return
					}
				}
			}
			// A nil send is a pure barrier.
			if _, _, err := ep.Exchange(nil, 99); err != nil {
				fail <- fmt.Sprintf("rank %d barrier: %v", r, err)
			}
		}(r)
	}
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
}

func TestTCPExchangeReportsTmax(t *testing.T) {
	const size = 3
	trs := startMesh(t, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep := trs[r].Endpoint(r)
			_, tmax, err := ep.Exchange(nil, float64(10+r))
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			if tmax != float64(10+size-1) {
				t.Errorf("rank %d: tmax %v, want %v", r, tmax, float64(10+size-1))
			}
		}(r)
	}
	wg.Wait()
}

func TestTCPP2P(t *testing.T) {
	const size = 3
	trs := startMesh(t, size)
	payload := bytes.Repeat([]byte("abc"), 1000)
	// rank 1 -> rank 0 (remote), rank 2 -> rank 2 (self).
	if err := trs[1].Endpoint(1).Send(0, 7, payload, 1.0); err != nil {
		t.Fatal(err)
	}
	m, err := trs[0].Endpoint(0).Recv(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m.Src != 1 || m.Tag != 7 || !bytes.Equal(m.Data, payload) || m.Time != 1.0 {
		t.Fatalf("got %+v", m)
	}
	if err := trs[2].Endpoint(2).Send(2, 9, []byte("self"), 2.0); err != nil {
		t.Fatal(err)
	}
	m2, ok, err := trs[2].Endpoint(2).TryRecv(AnySource, AnyTag)
	if err != nil || !ok {
		t.Fatalf("TryRecv: %v %v", ok, err)
	}
	if m2.Src != 2 || m2.Tag != 9 || string(m2.Data) != "self" {
		t.Fatalf("got %+v", m2)
	}
	// Nothing else pending.
	if _, ok, _ := trs[0].Endpoint(0).TryRecv(AnySource, AnyTag); ok {
		t.Fatal("unexpected pending message")
	}
}

func TestTCPAbortPropagatesToPeers(t *testing.T) {
	const size = 3
	trs := startMesh(t, size)
	// Ranks 0 and 2 park in blocking operations that can never complete.
	results := make(chan error, 2)
	go func() {
		_, err := trs[0].Endpoint(0).Recv(1, 5)
		results <- err
	}()
	go func() {
		_, _, err := trs[2].Endpoint(2).Exchange(nil, 0)
		results <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cause := fmt.Errorf("%w: rank 1 gave up", ErrAborted)
	trs[1].Abort(cause)
	for i := 0; i < 2; i++ {
		select {
		case err := <-results:
			if !errors.Is(err, ErrAborted) {
				t.Fatalf("parked op returned %v, want ErrAborted", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("parked operation not released by remote abort")
		}
	}
	// Subsequent operations fail too, on every rank.
	for r, tr := range trs {
		if _, _, err := tr.Endpoint(r).Exchange(nil, 0); !errors.Is(err, ErrAborted) {
			t.Fatalf("rank %d post-abort exchange: %v", r, err)
		}
	}
}

func TestTCPPeerDeathSurfacesErrAborted(t *testing.T) {
	const size = 3
	trs := startMesh(t, size)
	// Rank 0 parks in a recv that will never be matched.
	done := make(chan error, 1)
	go func() {
		_, err := trs[0].Endpoint(0).Recv(2, 1)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	// Rank 2 dies abruptly: connections drop with no Bye. In-process stand-in
	// for a killed worker process.
	for _, p := range trs[2].peers {
		if p != nil {
			p.conn.Close()
		}
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("recv returned %v, want ErrAborted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer death did not release parked recv")
	}
	trs[2] = nil // already dead; Cleanup must not double-close
}

func TestTCPSPMDSeqMismatch(t *testing.T) {
	const size = 2
	trs := startMesh(t, size)
	var wg sync.WaitGroup
	wg.Add(2)
	var err0, err1 error
	go func() {
		defer wg.Done()
		ep := trs[0].Endpoint(0)
		// Rank 0 runs two exchanges; rank 1 only one: the second must not
		// silently mismatch.
		_, _, err0 = ep.Exchange(nil, 0)
		if err0 == nil {
			_, _, err0 = ep.Exchange(nil, 1)
		}
	}()
	go func() {
		defer wg.Done()
		ep := trs[1].Endpoint(1)
		_, _, err1 = ep.Exchange(nil, 0)
		if err1 == nil {
			// Desynchronize: a p2p send consumed where a collective is due is
			// the classic SPMD violation.
			err1 = ep.Send(0, 3, []byte("oops"), 2)
		}
	}()
	// Give the mismatch a moment to surface, then abort so nothing hangs.
	time.Sleep(200 * time.Millisecond)
	trs[0].Abort(fmt.Errorf("%w: test cleanup", ErrAborted))
	wg.Wait()
	// The first exchange must have succeeded on both ranks.
	if err1 != nil {
		t.Fatalf("rank 1: %v", err1)
	}
}

func TestTCPConfigValidation(t *testing.T) {
	bad := []TCPConfig{
		{Addr: "", Rank: 0, Size: 2},
		{Addr: "x:1", Rank: -1, Size: 2},
		{Addr: "x:1", Rank: 2, Size: 2},
		{Addr: "x:1", Rank: 0, Size: 0},
	}
	for _, cfg := range bad {
		if err := cfg.withDefaults().validate(); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := NewTCP(TCPConfig{Addr: "127.0.0.1:1", Rank: 3, Size: 2}); err == nil {
		t.Error("out-of-range rank accepted")
	}
}

func TestTCPCleanCloseIsNotAbort(t *testing.T) {
	const size = 2
	trs := startMesh(t, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if _, _, err := trs[r].Endpoint(r).Exchange(nil, 0); err != nil {
				t.Errorf("rank %d: %v", r, err)
			}
			if err := trs[r].Close(); err != nil {
				t.Errorf("rank %d close: %v", r, err)
			}
		}(r)
	}
	wg.Wait()
}
