package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPConfig describes one rank's attachment to a multi-process world.
type TCPConfig struct {
	// Addr is rank 0's bootstrap address: rank 0 listens on it, every other
	// rank dials it. For rank 0 a port of 0 picks a free port (read it back
	// with Bootstrap.Addr before starting the workers).
	Addr string
	// Rank is this process's rank in [0, Size).
	Rank int
	// Size is the world size (total processes).
	Size int
	// Epoch is the mesh incarnation this rank belongs to. Elastic
	// membership (internal/membership) rebuilds the mesh under a strictly
	// higher epoch on every world change; both sides of every connection —
	// bootstrap, mesh, and reconnect — must present the same epoch in the
	// wire-v5 handshake or the connection is rejected. Fixed-size worlds
	// that never resize leave it 0.
	Epoch uint64
	// Deadline bounds connection progress: the per-connection handshake and
	// every chunk of a frame write (a peer that cannot accept writeChunk
	// bytes for this long is treated as failed). 0 means 10 seconds.
	Deadline time.Duration
	// BootstrapTimeout bounds mesh establishment (dial retries, accepts,
	// the address table). 0 means 30 seconds.
	BootstrapTimeout time.Duration

	// Policy selects fail-stop (AbortOnFailure, the default) or
	// fail-recover (RetryTransient) behavior for link failures after the
	// mesh is up. Bootstrap failures are always fatal.
	Policy FaultPolicy
	// ReconnectWindow bounds how long a link may stay down under
	// RetryTransient before the peer is declared dead and the world aborts.
	// 0 means 10 seconds.
	ReconnectWindow time.Duration
	// BackoffBase / BackoffMax shape the reconnect dial backoff: the delay
	// starts at BackoffBase and doubles (with deterministic jitter) up to
	// BackoffMax. 0 means 20ms / 1s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxReplay caps the per-link replay buffer (unacknowledged sent
	// frames) under RetryTransient. A sender that exceeds it while the
	// link is up blocks until the peer's acks prune the buffer (flow
	// control); if no ack arrives within ReconnectWindow — or the link is
	// down when the cap is hit — the world aborts rather than growing the
	// buffer without bound. 0 means 64 MB.
	MaxReplay int64

	// Compress enables frame-level flate compression on this rank's
	// outgoing data frames (wire v3): a payload that shrinks under flate is
	// sent compressed, flagged by the compressedFlag bit on the op byte.
	// Compression is a per-frame, per-sender decision — receivers always
	// accept both forms, so ranks with different Compress settings
	// interoperate. The CRC-32C covers the compressed bytes (compress-
	// then-CRC) and the replay buffer stores the encoded frame, so fault
	// recovery replays exactly what was first sent.
	Compress bool

	// WrapConn, when non-nil, wraps every established mesh connection —
	// the fault-injection hook (internal/faultinject). It is applied after
	// the connection handshake, so injected faults target steady-state
	// frames, not the bootstrap.
	WrapConn func(peer int, c net.Conn) net.Conn
}

func (c TCPConfig) withDefaults() TCPConfig {
	if c.Deadline <= 0 {
		c.Deadline = 10 * time.Second
	}
	if c.BootstrapTimeout <= 0 {
		c.BootstrapTimeout = 30 * time.Second
	}
	if c.ReconnectWindow <= 0 {
		c.ReconnectWindow = 10 * time.Second
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 20 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = time.Second
	}
	if c.MaxReplay <= 0 {
		c.MaxReplay = 64 << 20
	}
	return c
}

func (c TCPConfig) validate() error {
	if c.Size < 1 {
		return fmt.Errorf("transport: invalid world size %d", c.Size)
	}
	if c.Rank < 0 || c.Rank >= c.Size {
		return fmt.Errorf("transport: rank %d out of range [0,%d)", c.Rank, c.Size)
	}
	if c.Addr == "" {
		return fmt.Errorf("transport: TCPConfig.Addr is required")
	}
	return nil
}

// writeChunk is the unit of a frame write for deadline purposes: the write
// deadline is re-armed before every chunk, so a slow-but-alive peer that
// keeps draining bytes never times out, while a peer that cannot accept one
// chunk within Deadline is declared failed. (A single whole-frame deadline
// would misdeclare a live peer dead on any Exchange payload larger than
// bandwidth*Deadline.)
const writeChunk = 128 << 10

// ackEvery is how many data frames a receiver lets accumulate before
// acknowledging them (OpAck), bounding the sender's replay buffer. Large
// frames reach the sender's MaxReplay byte cap long before ackEvery frames
// accumulate, so maybeAck also acks once the unacknowledged bytes pass a
// quarter of MaxReplay — whichever threshold trips first.
const ackEvery = 32

// TCP is the multi-process transport: this process hosts exactly one rank
// and a full mesh of TCP connections carries frames to every peer. Create
// it with NewTCP (or ListenTCP + Bootstrap.Accept on rank 0 when the
// bootstrap port is dynamic).
//
// Under Policy RetryTransient the mesh is self-healing: each side of a
// failed link closes it (so the other side notices), the higher rank
// re-dials the lower rank's listener with capped exponential backoff, the
// two sides exchange OpResume frames carrying how many data frames each has
// received, and the sender replays everything newer from its replay buffer.
// TCP's in-order delivery plus the cumulative frame counts make the resume
// idempotent: no frame is delivered twice or dropped, so the collective
// sequence numbers (and with them the SPMD order) survive any number of
// reconnects.
type TCP struct {
	cfg   TCPConfig
	rank  int
	size  int
	peers []*tcpPeer // peers[rank] == nil

	addrs []string     // mesh address table (reconnect targets); set before start
	ln    net.Listener // persistent listener for re-accepts (RetryTransient only)

	// Multiplexing channels (wire v4): frames demux to the channel named by
	// their Job header field. Channel 0 is the default — the TCP used
	// directly as a Transport/Endpoint is its own channel-0 view, so
	// single-job worlds never see the indirection. chmu guards chans; ch0 is
	// immutable after construction.
	ch0   *tcpChan
	chmu  sync.Mutex
	chans map[uint32]*tcpChan
	// chAborts records every locally-originated channel abort (job → cause).
	// Abort frames are control frames — never acked, never replayed — so a
	// link fault can swallow one; install re-asserts these on every fresh
	// connection to make job aborts durable. Guarded by chmu.
	chAborts map[uint32][]byte

	started atomic.Bool // mesh is up; link failures become recoverable

	mu       sync.Mutex
	abortErr error
	closing  bool

	readers sync.WaitGroup

	linkFailures   atomic.Uint64
	reconnects     atomic.Uint64
	dialRetries    atomic.Uint64
	replayedFrames atomic.Uint64
	replayedBytes  atomic.Uint64
}

// tcpPeer is one mesh link with serialized, deadline-bounded writes and
// (under RetryTransient) a replay buffer for reconnect recovery.
type tcpPeer struct {
	t    *TCP
	rank int

	// wmu serializes writers and guards the connection state: conn, gen,
	// down, recovering. It is held across chunked frame writes, so readers
	// must never block on it (acks use TryLock).
	wmu        sync.Mutex
	conn       net.Conn
	gen        int // connection generation; bumped by every install
	down       bool
	downSince  time.Time
	recovering bool
	// readerDone is closed when the current generation's readLoop exits;
	// replaced by install alongside conn/gen. Guarded by wmu.
	readerDone chan struct{}

	// hdr is the header scratch for the zero-copy write path (headers and
	// bare-header ack frames are built here instead of a fresh allocation),
	// and vec/bufs back the net.Buffers writev of header+payload. All three
	// are guarded by wmu.
	hdr  [4 + frameHeaderLen]byte
	vec  [2][]byte
	bufs net.Buffers

	// rmu guards the replay ledger. It is only ever held briefly (no I/O),
	// so the ack path can take it without risking the distributed deadlock
	// that blocking readers on wmu would cause.
	rmu         sync.Mutex
	sentSeq     uint64   // data frames accepted for sending on this link
	ackedSeq    uint64   // data frames the peer confirmed (prefix of sentSeq)
	replay      [][]byte // encoded frames (ackedSeq, sentSeq], RetryTransient only
	replayBytes int64
	// replaying marks a reconnect replay in flight: install's snapshot
	// aliases the ledger's buffers, so pruneReplayLocked must not recycle
	// them to the frame pool while it is set.
	replaying bool

	recvSeq      atomic.Uint64 // data frames delivered from this peer
	recvBytes    atomic.Uint64 // encoded bytes of those frames (sender-side accounting mirror)
	lastAck      atomic.Uint64 // recvSeq value of the last OpAck we sent
	lastAckBytes atomic.Uint64 // recvBytes value of the last OpAck we sent

	bmu sync.Mutex
	bye bool // peer announced clean shutdown; EOF is not a death
}

func (p *tcpPeer) sawBye() bool {
	p.bmu.Lock()
	defer p.bmu.Unlock()
	return p.bye
}

func (p *tcpPeer) markBye() {
	p.bmu.Lock()
	p.bye = true
	p.bmu.Unlock()
}

// writeConnChunks writes buf to conn, re-arming the write deadline before
// every chunk so progress extends the deadline (see writeChunk).
func writeConnChunks(conn net.Conn, buf []byte, deadline time.Duration) error {
	for len(buf) > 0 {
		n := len(buf)
		if n > writeChunk {
			n = writeChunk
		}
		if err := conn.SetWriteDeadline(time.Now().Add(deadline)); err != nil {
			return err
		}
		if _, err := conn.Write(buf[:n]); err != nil {
			return err
		}
		buf = buf[n:]
	}
	return nil
}

// beginFrameRaw announces a frame boundary to a fault-injecting conn
// wrapper. op must be the BASE opcode (CompressedFlag masked off — the
// injector's data-frame detection matches opcodes exactly) and size the
// frame's true encoded length, compressed payload included, so corruption
// and cut offsets land on real wire bytes.
func beginFrameRaw(conn net.Conn, op byte, size int) error {
	if fm, ok := conn.(FrameMarker); ok {
		return fm.BeginFrame(op, size)
	}
	return nil
}

// isData reports whether op is a data frame — counted, acknowledged, and
// replayed across reconnects. Control frames (abort, bye, acks, resumes)
// are link-local and never replayed.
func isData(op byte) bool { return op == OpP2P || op == OpExchange }

// writeConnVectored writes a frame as header+payload without gathering them
// into one buffer first: a single writev covers the header and the first
// payload chunk, the rest goes through writeConnChunks. The deadline is
// re-armed per chunk exactly as writeConnChunks does. Caller holds wmu
// (p.vec/p.bufs are write-path scratch).
func (p *tcpPeer) writeConnVectored(conn net.Conn, hdr, payload []byte, deadline time.Duration) error {
	n := len(payload)
	if n > writeChunk {
		n = writeChunk
	}
	if err := conn.SetWriteDeadline(time.Now().Add(deadline)); err != nil {
		return err
	}
	p.vec[0] = hdr
	p.bufs = p.vec[:1]
	if n > 0 {
		p.vec[1] = payload[:n:n]
		p.bufs = p.vec[:2]
	}
	_, err := p.bufs.WriteTo(conn)
	p.vec[0], p.vec[1], p.bufs = nil, nil, nil
	if err != nil {
		return err
	}
	return writeConnChunks(conn, payload[n:], deadline)
}

// writeFrame sends one frame on the link. Under RetryTransient a data frame
// is first appended to the replay buffer, so a write failure is not an
// error: the link is marked down, recovery starts, and the frame reaches
// the peer via replay. Under AbortOnFailure any failure is returned.
//
// The hot path is allocation-conscious: the payload is written straight from
// the caller's buffer via writev (no gather copy), compression scratch and
// replay entries come from the size-classed frame pool, and the header is
// built in per-peer scratch.
func (p *tcpPeer) writeFrame(f *Frame) error {
	t := p.t
	retry := t.cfg.Policy == RetryTransient && t.started.Load()

	// Sender-side per-frame compression decision (wire v3): only data
	// frames, only when the payload actually shrinks. scratch holds the
	// pooled compressed payload until the frame is sent or copied into the
	// replay ledger.
	op, payload := f.Op, f.Data
	var scratch []byte
	if t.cfg.Compress && isData(op) && len(payload) >= compressMinSize {
		out, ok := compressPayload(getBuf(4+len(payload)), payload)
		if ok {
			op |= CompressedFlag
			payload = out
			scratch = out
		} else {
			putBuf(out)
		}
	}
	defer func() {
		if scratch != nil {
			putBuf(scratch)
		}
	}()

	var buf []byte
	if retry && isData(f.Op) {
		// Owned encoded copy: may outlive the caller's Data. The replay
		// ledger owns buf from the append below until pruneReplayLocked
		// recycles it.
		buf = appendFrameHeaderRaw(getBuf(4+frameHeaderLen+len(payload)), op, f.Src, f.Job, f.Tag, f.Seq, f.Time, payload)
		buf = append(buf, payload...)
	}

	p.wmu.Lock()
	defer p.wmu.Unlock()
	if buf != nil {
		p.rmu.Lock()
		p.sentSeq++
		p.replay = append(p.replay, buf)
		p.replayBytes += int64(len(buf))
		over := p.replayOverLocked()
		p.rmu.Unlock()
		if over {
			if err := p.waitReplayRoom(); err != nil {
				return err
			}
		}
	}
	if p.down || p.conn == nil {
		if retry {
			return nil // data is in the replay buffer; control frames are best-effort
		}
		return fmt.Errorf("transport: connection to rank %d is down", p.rank)
	}
	err := beginFrameRaw(p.conn, f.Op, frameHeaderLen+len(payload))
	if err == nil {
		if buf != nil {
			err = writeConnChunks(p.conn, buf, t.cfg.Deadline)
		} else {
			hdr := appendFrameHeaderRaw(p.hdr[:0], op, f.Src, f.Job, f.Tag, f.Seq, f.Time, payload)
			err = p.writeConnVectored(p.conn, hdr, payload, t.cfg.Deadline)
		}
	}
	if err != nil {
		if retry {
			t.linkDownLocked(p, p.gen, err)
			return nil // recovery replays the frame
		}
		return err
	}
	return nil
}

// replayOverLocked reports whether the replay buffer is over the byte cap.
// A single pending frame is exempt: it has to be held for replay whatever
// its size, and capping it would turn one large Exchange payload into an
// abort. Caller holds p.rmu.
func (p *tcpPeer) replayOverLocked() bool {
	return p.replayBytes > p.t.cfg.MaxReplay && len(p.replay) > 1
}

// waitReplayRoom blocks a writer whose replay buffer passed MaxReplay until
// the peer's cumulative acks prune it back under the cap: on a healthy link
// acks keep arriving (the reader processes them under rmu alone), so this is
// flow control for a sender that outruns the ack round-trip, not a failure.
// A link that is down delivers no acks and cannot recover while the writer
// holds wmu, so that case fails immediately; a link that dies mid-wait fails
// when ReconnectWindow passes without room — the same bound a failed
// reconnect has. Called with wmu held.
func (p *tcpPeer) waitReplayRoom() error {
	t := p.t
	deadline := time.Now().Add(t.cfg.ReconnectWindow)
	for {
		p.rmu.Lock()
		over := p.replayOverLocked()
		bytes := p.replayBytes
		p.rmu.Unlock()
		if !over {
			return nil
		}
		if err := t.abortError(); err != nil {
			return err
		}
		if p.down || p.conn == nil {
			return fmt.Errorf("transport: replay buffer for rank %d exceeds %d bytes (%d unacknowledged) while the link is down",
				p.rank, t.cfg.MaxReplay, bytes)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("transport: replay buffer for rank %d exceeds %d bytes (%d unacknowledged) and no ack arrived within %v",
				p.rank, t.cfg.MaxReplay, bytes, t.cfg.ReconnectWindow)
		}
		// Holding wmu starves the reader's maybeAck for this link (it only
		// TryLocks), so flush any ack we owe the peer ourselves — two ranks
		// mid-large-transfer would otherwise each park here waiting for acks
		// the other side can no longer send.
		if n := p.recvSeq.Load(); n > p.lastAck.Load() {
			if err := p.writeAckLocked(n); err == nil {
				p.lastAck.Store(n)
				p.lastAckBytes.Store(p.recvBytes.Load())
			} else {
				// The reader cannot declare the link down while we hold wmu;
				// do it here so the next loop iteration fails fast instead of
				// spinning out the whole window on a dead conn.
				t.linkDownLocked(p, p.gen, err)
			}
		}
		time.Sleep(time.Millisecond)
	}
}

// exchQueue buffers one peer's collective contributions in arrival order.
// TCP preserves per-connection ordering (and replay preserves it across
// reconnects) and both sides follow the SPMD contract, so the head frame's
// sequence number must match the local call counter — a mismatch is a
// protocol violation.
type exchQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	q       []*Frame
	aborted bool
	abortEr error
}

func newExchQueue() *exchQueue {
	e := &exchQueue{}
	e.cond = sync.NewCond(&e.mu)
	return e
}

func (e *exchQueue) push(f *Frame) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.aborted {
		return
	}
	e.q = append(e.q, f)
	e.cond.Broadcast()
}

func (e *exchQueue) pop(wantSeq uint64) (*Frame, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.q) == 0 && !e.aborted {
		e.cond.Wait()
	}
	if e.aborted {
		return nil, e.abortEr
	}
	f := e.q[0]
	e.q = e.q[1:]
	if f.Seq != wantSeq {
		return nil, fmt.Errorf("%w: rank %d sent collective #%d where #%d was expected (SPMD order violated)",
			ErrAborted, f.Src, f.Seq, wantSeq)
	}
	return f, nil
}

func (e *exchQueue) abort(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.aborted {
		e.aborted = true
		e.abortEr = err
		e.q = nil
		e.cond.Broadcast()
	}
}

// tcpChan is one multiplexing channel of the mesh (wire v4): an independent
// job's view of the world, with its own point-to-point mailbox, collective
// queues and sequence counter, and its own abort state. All channels share
// the physical links — frames carry the channel id in the Job header field
// and the reader demuxes on it — so the link-level machinery (replay
// ledger, cumulative acks, reconnect recovery) is channel-agnostic: a
// reconnect replays every channel's frames in their original link order and
// the exactly-once guarantee holds per channel for free.
//
// Channel 0 is the default/control channel: TCP's own Transport/Endpoint
// methods are that channel, and an abort on it poisons the whole mesh. A
// non-zero channel's Abort poisons only that channel, on every process —
// the job-failure isolation the multi-tenant job service builds on.
type tcpChan struct {
	t   *TCP
	job uint32

	mbox *mailbox     // incoming point-to-point messages
	exq  []*exchQueue // per-source collective contributions; exq[rank] == nil
	seq  uint64       // this channel's collective call counter (owning goroutine only)

	mu       sync.Mutex
	abortErr error
}

func newTCPChan(t *TCP, job uint32) *tcpChan {
	c := &tcpChan{
		t:    t,
		job:  job,
		mbox: newMailbox(),
		exq:  make([]*exchQueue, t.size),
	}
	for i := range c.exq {
		if i != t.rank {
			c.exq[i] = newExchQueue()
		}
	}
	return c
}

// chanFor returns the channel for job, creating it on first use. Creation is
// get-or-create from both directions: Open may run before or after the
// first frame for the channel arrives (the reader creates it too, so early
// frames queue instead of dropping). A mesh-wide poison is inherited at
// creation, so a channel opened on a dead mesh is born poisoned.
func (t *TCP) chanFor(job uint32) *tcpChan {
	if job == 0 {
		return t.ch0
	}
	t.chmu.Lock()
	defer t.chmu.Unlock()
	c := t.chans[job]
	if c == nil {
		c = newTCPChan(t, job)
		if err := t.abortError(); err != nil {
			c.poison(err)
		}
		t.chans[job] = c
	}
	return c
}

// Open implements Mux: the Transport view of one multiplexing channel.
// Opening the same job twice returns the same channel. Channel 0 is the
// mesh's own default channel (t itself delegates to it).
func (t *TCP) Open(job uint32) (Transport, error) {
	if err := t.abortError(); err != nil {
		return nil, err
	}
	if t.isClosing() {
		return nil, fmt.Errorf("transport: world is closed")
	}
	return t.chanFor(job), nil
}

// Err implements ErrReporter: the mesh-wide abort cause, nil while the mesh
// is healthy. Job-channel aborts do not poison the mesh and are not
// reported here — use the channel view's own Err.
func (t *TCP) Err() error { return t.abortError() }

// abortError returns the channel's poison, falling back to the mesh's.
func (c *tcpChan) abortError() error {
	c.mu.Lock()
	err := c.abortErr
	c.mu.Unlock()
	if err != nil {
		return err
	}
	return c.t.abortError()
}

// poison fails the channel's local pending and subsequent operations,
// without notifying peers.
func (c *tcpChan) poison(err error) bool {
	c.mu.Lock()
	if c.abortErr != nil {
		c.mu.Unlock()
		return false
	}
	c.abortErr = err
	c.mu.Unlock()
	c.mbox.abort(err)
	for _, q := range c.exq {
		if q != nil {
			q.abort(err)
		}
	}
	return true
}

// Abort poisons the channel and broadcasts the cause to every peer's view
// of it. On channel 0 this is the whole-mesh abort; on a job channel only
// that job fails — running jobs on other channels are untouched.
func (c *tcpChan) Abort(err error) {
	if c.job == 0 {
		c.t.Abort(err)
		return
	}
	if !c.poison(err) {
		return
	}
	cause := []byte(err.Error())
	c.t.chmu.Lock()
	if c.t.chAborts == nil {
		c.t.chAborts = make(map[uint32][]byte)
	}
	c.t.chAborts[c.job] = cause
	c.t.chmu.Unlock()
	f := &Frame{Op: OpAbort, Src: uint32(c.t.rank), Job: c.job, Data: cause}
	for _, p := range c.t.peers {
		if p != nil {
			p.writeFrame(f) // best effort now; install re-asserts on reconnect
		}
	}
}

// A channel is a full Transport/Endpoint view of the mesh, sharing the
// links and their fault machinery.
func (c *tcpChan) Size() int              { return c.t.size }
func (c *tcpChan) Epoch() uint64          { return c.t.cfg.Epoch }
func (c *tcpChan) LocalRanks() []int      { return []int{c.t.rank} }
func (c *tcpChan) Wall() bool             { return true }
func (c *tcpChan) Rank() int              { return c.t.rank }
func (c *tcpChan) Policy() FaultPolicy    { return c.t.Policy() }
func (c *tcpChan) FaultStats() FaultStats { return c.t.FaultStats() }
func (c *tcpChan) Recycle(b []byte)       { c.t.Recycle(b) }
func (c *tcpChan) Err() error             { return c.abortError() }

func (c *tcpChan) Endpoint(rank int) Endpoint {
	if rank != c.t.rank {
		panic(fmt.Sprintf("transport: rank %d is not local to this process (hosting %d)", rank, c.t.rank))
	}
	return c
}

// Close deregisters the channel locally: no wire traffic, no effect on
// peers or other channels. Frames still in flight for the job re-create the
// channel on arrival (get-or-create), where they sit unread until the id is
// reused — harmless for monotonically assigned job ids. Closing channel 0
// is a no-op; close the mesh with TCP.Close.
func (c *tcpChan) Close() error {
	if c.job == 0 {
		return nil
	}
	t := c.t
	t.chmu.Lock()
	if t.chans[c.job] == c {
		delete(t.chans, c.job)
	}
	t.chmu.Unlock()
	return nil
}

// Send implements Endpoint on this channel. A dead link fails the mesh, not
// just the channel: physical transport failure is world-scoped.
func (c *tcpChan) Send(dst, tag int, data []byte, now float64) error {
	t := c.t
	if err := c.abortError(); err != nil {
		return err
	}
	if dst < 0 || dst >= t.size {
		return fmt.Errorf("transport: send to rank %d of %d", dst, t.size)
	}
	if dst == t.rank {
		return c.mbox.put(Message{Src: t.rank, Tag: tag, Data: append([]byte(nil), data...), Time: now})
	}
	f := &Frame{Op: OpP2P, Src: uint32(t.rank), Job: c.job, Tag: int32(tag), Time: now, Data: data}
	if err := t.peers[dst].writeFrame(f); err != nil {
		err = fmt.Errorf("%w: write to rank %d: %v", ErrAborted, dst, err)
		t.Abort(err)
		return err
	}
	return nil
}

// Recv implements Endpoint on this channel.
func (c *tcpChan) Recv(src, tag int) (Message, error) {
	return c.mbox.get(src, tag)
}

// TryRecv implements Endpoint on this channel.
func (c *tcpChan) TryRecv(src, tag int) (Message, bool, error) {
	return c.mbox.tryGet(src, tag)
}

// Exchange implements Endpoint on this channel: scatter this rank's
// contributions over the mesh, then gather one contribution per peer for
// the same collective call. The SPMD contract holds per channel — each
// channel counts its own collective calls, so concurrent jobs on different
// channels need no cross-job ordering. A protocol violation aborts only
// this channel.
func (c *tcpChan) Exchange(send [][]byte, now float64) ([][]byte, float64, error) {
	t := c.t
	if err := c.abortError(); err != nil {
		return nil, 0, err
	}
	if send != nil && len(send) != t.size {
		return nil, 0, fmt.Errorf("transport: exchange send has %d entries, world size is %d", len(send), t.size)
	}
	seq := c.seq
	c.seq++
	for dst := 0; dst < t.size; dst++ {
		if dst == t.rank {
			continue
		}
		var payload []byte
		if send != nil {
			payload = send[dst]
		}
		f := &Frame{Op: OpExchange, Src: uint32(t.rank), Job: c.job, Seq: seq, Time: now, Data: payload}
		if err := t.peers[dst].writeFrame(f); err != nil {
			err = fmt.Errorf("%w: exchange write to rank %d: %v", ErrAborted, dst, err)
			t.Abort(err)
			return nil, 0, err
		}
	}
	recv := make([][]byte, t.size)
	if send != nil {
		recv[t.rank] = append(getBuf(len(send[t.rank])), send[t.rank]...)
	}
	tmax := now
	for src := 0; src < t.size; src++ {
		if src == t.rank {
			continue
		}
		f, err := c.exq[src].pop(seq)
		if err != nil {
			// A protocol violation is ours to announce; a poisoned queue
			// already carries the abort cause.
			if c.abortError() == nil {
				c.Abort(err)
			}
			return nil, 0, err
		}
		recv[src] = f.Data
		if f.Time > tmax {
			tmax = f.Time
		}
	}
	return recv, tmax, nil
}

// NewTCP attaches this process to a multi-process world: rank 0 listens on
// cfg.Addr and completes the bootstrap, every other rank dials it. NewTCP
// returns only once the full mesh is established and all ranks have passed
// an initial barrier, so a successful return means the whole world is up.
func NewTCP(cfg TCPConfig) (*TCP, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Rank == 0 {
		b, err := ListenTCP(cfg)
		if err != nil {
			return nil, err
		}
		return b.Accept()
	}
	return dialTCP(cfg)
}

func newTCPBase(cfg TCPConfig) *TCP {
	t := &TCP{
		cfg:   cfg,
		rank:  cfg.Rank,
		size:  cfg.Size,
		peers: make([]*tcpPeer, cfg.Size),
		chans: make(map[uint32]*tcpChan),
	}
	t.ch0 = newTCPChan(t, 0)
	t.chans[0] = t.ch0
	return t
}

func (t *TCP) addPeer(rank int, conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	if t.cfg.WrapConn != nil {
		conn = t.cfg.WrapConn(rank, conn)
	}
	t.peers[rank] = &tcpPeer{
		t:          t,
		rank:       rank,
		conn:       conn,
		gen:        1,
		readerDone: make(chan struct{}),
	}
}

// start launches the per-connection reader goroutines (and, under
// RetryTransient, the persistent re-accept loop) and runs the initial
// barrier that confirms every rank's mesh is complete.
func (t *TCP) start() (*TCP, error) {
	if t.cfg.Policy == RetryTransient && t.ln != nil {
		if tl, ok := t.ln.(*net.TCPListener); ok {
			tl.SetDeadline(time.Time{}) // clear the bootstrap deadline
		}
		t.readers.Add(1)
		go t.acceptLoop()
	} else if t.ln != nil {
		t.ln.Close()
		t.ln = nil
	}
	for _, p := range t.peers {
		if p != nil {
			t.readers.Add(1)
			go t.readLoop(p, p.conn, p.gen, p.readerDone)
		}
	}
	t.started.Store(true)
	if _, _, err := t.Exchange(nil, 0); err != nil {
		t.Close()
		return nil, fmt.Errorf("transport: initial barrier: %w", err)
	}
	return t, nil
}

// Bootstrap is rank 0's half-open world: the listener is bound (so the
// bootstrap address, including a dynamically chosen port, is known) but the
// workers have not joined yet. Complete it with Accept.
type Bootstrap struct {
	cfg TCPConfig
	ln  net.Listener
}

// ListenTCP binds rank 0's bootstrap listener. cfg.Rank must be 0.
func ListenTCP(cfg TCPConfig) (*Bootstrap, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Rank != 0 {
		return nil, fmt.Errorf("transport: ListenTCP on rank %d (only rank 0 listens)", cfg.Rank)
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("transport: bootstrap listen on %s: %w", cfg.Addr, err)
	}
	return &Bootstrap{cfg: cfg, ln: ln}, nil
}

// Addr returns the bound bootstrap address workers must dial.
func (b *Bootstrap) Addr() string { return b.ln.Addr().String() }

// Close abandons a bootstrap whose world will never be completed, releasing
// its listener. Only for bootstraps that are not going to be Accept-ed
// (Accept owns the listener's lifecycle once called).
func (b *Bootstrap) Close() error { return b.ln.Close() }

// Accept waits for every worker to register, distributes the address table,
// and returns rank 0's transport once the whole world is up. Under
// RetryTransient the listener stays open for the life of the transport to
// accept reconnecting peers; otherwise it is closed.
func (b *Bootstrap) Accept() (*TCP, error) {
	t := newTCPBase(b.cfg)
	t.ln = b.ln
	deadline := time.Now().Add(b.cfg.BootstrapTimeout)
	if tl, ok := b.ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}
	addrs := make([]string, b.cfg.Size)
	addrs[0] = b.Addr()
	fail := func(err error) (*TCP, error) {
		b.ln.Close()
		t.closeConns()
		return nil, err
	}
	for joined := 1; joined < b.cfg.Size; {
		conn, err := b.ln.Accept()
		if err != nil {
			return fail(fmt.Errorf("transport: bootstrap accept (%d of %d ranks joined): %w", joined, b.cfg.Size, err))
		}
		rank, err := b.admit(t, conn, addrs)
		if err != nil {
			conn.Close()
			return fail(err)
		}
		if rank > 0 {
			joined++
		}
	}
	// Everyone registered; hand each worker the full table so workers can
	// mesh among themselves.
	t.addrs = addrs
	table := encodeTable(addrs)
	for rank, p := range t.peers {
		if p == nil {
			continue
		}
		if err := p.writeFrame(&Frame{Op: OpTable, Src: 0, Data: table}); err != nil {
			return fail(fmt.Errorf("transport: sending address table to rank %d: %w", rank, err))
		}
	}
	return t.start()
}

// admit validates one bootstrap connection and registers the worker. It
// returns the worker's rank, or 0 for a connection that was rejected softly.
func (b *Bootstrap) admit(t *TCP, conn net.Conn, addrs []string) (int, error) {
	conn.SetDeadline(time.Now().Add(b.cfg.Deadline))
	h, err := readHello(conn)
	if err != nil {
		return 0, fmt.Errorf("transport: bootstrap handshake: %w", err)
	}
	if h.Size != b.cfg.Size {
		return 0, fmt.Errorf("transport: rank %d joined with world size %d, want %d", h.Rank, h.Size, b.cfg.Size)
	}
	if h.Epoch != b.cfg.Epoch {
		// A straggler from another mesh incarnation must not poison this
		// epoch's bootstrap: drop the connection (the dialer sees EOF in
		// place of a hello reply and gives up) and keep accepting.
		conn.Close()
		return 0, nil
	}
	if h.Rank <= 0 || h.Rank >= b.cfg.Size {
		return 0, fmt.Errorf("transport: bootstrap join from invalid rank %d", h.Rank)
	}
	if t.peers[h.Rank] != nil {
		return 0, fmt.Errorf("transport: rank %d joined twice", h.Rank)
	}
	if h.Addr == "" {
		return 0, fmt.Errorf("transport: rank %d advertised no mesh address", h.Rank)
	}
	if err := writeHello(conn, hello{Rank: 0, Size: b.cfg.Size, Epoch: b.cfg.Epoch}); err != nil {
		return 0, fmt.Errorf("transport: bootstrap handshake reply to rank %d: %w", h.Rank, err)
	}
	conn.SetDeadline(time.Time{})
	t.addPeer(h.Rank, conn)
	addrs[h.Rank] = h.Addr
	return h.Rank, nil
}

// dialTCP is the worker side: dial rank 0, advertise a mesh listener, wait
// for the address table, then complete the mesh (dial every lower worker
// rank, accept every higher one).
func dialTCP(cfg TCPConfig) (*TCP, error) {
	t := newTCPBase(cfg)
	deadline := time.Now().Add(cfg.BootstrapTimeout)

	conn0, err := dialRetry(cfg.Addr, deadline)
	if err != nil {
		return nil, fmt.Errorf("transport: rank %d dialing bootstrap %s: %w", cfg.Rank, cfg.Addr, err)
	}

	// The mesh listener binds the interface that reaches rank 0, so the
	// advertised address is routable for every peer that can reach rank 0.
	host, _, err := net.SplitHostPort(conn0.LocalAddr().String())
	if err != nil {
		conn0.Close()
		return nil, fmt.Errorf("transport: rank %d local address: %w", cfg.Rank, err)
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		conn0.Close()
		return nil, fmt.Errorf("transport: rank %d mesh listen: %w", cfg.Rank, err)
	}
	t.ln = ln
	fail := func(err error) (*TCP, error) {
		ln.Close()
		t.closeConns()
		return nil, err
	}
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}

	conn0.SetDeadline(time.Now().Add(cfg.Deadline))
	if err := writeHello(conn0, hello{Rank: cfg.Rank, Size: cfg.Size, Epoch: cfg.Epoch, Addr: ln.Addr().String()}); err != nil {
		conn0.Close()
		return fail(fmt.Errorf("transport: rank %d bootstrap handshake: %w", cfg.Rank, err))
	}
	h, err := readHello(conn0)
	if err != nil {
		conn0.Close()
		return fail(fmt.Errorf("transport: rank %d bootstrap handshake reply: %w", cfg.Rank, err))
	}
	if h.Rank != 0 || h.Size != cfg.Size || h.Epoch != cfg.Epoch {
		conn0.Close()
		return fail(fmt.Errorf("transport: rank %d bootstrap reply from rank %d size %d epoch %d, want rank 0 size %d epoch %d",
			cfg.Rank, h.Rank, h.Size, h.Epoch, cfg.Size, cfg.Epoch))
	}
	// The table may take as long as the slowest rank's join, not one
	// write: bound it by the bootstrap deadline.
	conn0.SetDeadline(deadline)
	tf, err := ReadFrame(conn0)
	if err != nil {
		conn0.Close()
		return fail(fmt.Errorf("transport: rank %d reading address table: %w", cfg.Rank, err))
	}
	if tf.Op != OpTable {
		conn0.Close()
		return fail(fmt.Errorf("transport: rank %d expected address table, got op %d", cfg.Rank, tf.Op))
	}
	addrs, err := decodeTable(tf.Data)
	if err != nil || len(addrs) != cfg.Size {
		conn0.Close()
		return fail(fmt.Errorf("transport: rank %d bad address table (%d entries): %v", cfg.Rank, len(addrs), err))
	}
	conn0.SetDeadline(time.Time{})
	t.addrs = addrs
	t.addPeer(0, conn0)

	// Mesh: dial workers below, accept workers above.
	for r := 1; r < cfg.Rank; r++ {
		conn, err := dialRetry(addrs[r], deadline)
		if err != nil {
			return fail(fmt.Errorf("transport: rank %d dialing rank %d at %s: %w", cfg.Rank, r, addrs[r], err))
		}
		conn.SetDeadline(time.Now().Add(cfg.Deadline))
		if err := writeHello(conn, hello{Rank: cfg.Rank, Size: cfg.Size, Epoch: cfg.Epoch}); err == nil {
			h, err = readHello(conn)
			if err == nil && (h.Rank != r || h.Size != cfg.Size || h.Epoch != cfg.Epoch) {
				err = fmt.Errorf("transport: mesh reply from rank %d size %d epoch %d, want rank %d epoch %d", h.Rank, h.Size, h.Epoch, r, cfg.Epoch)
			}
		}
		if err != nil {
			conn.Close()
			return fail(fmt.Errorf("transport: rank %d mesh handshake with rank %d: %w", cfg.Rank, r, err))
		}
		conn.SetDeadline(time.Time{})
		t.addPeer(r, conn)
	}
	for accepted := cfg.Rank + 1; accepted < cfg.Size; accepted++ {
		conn, err := ln.Accept()
		if err != nil {
			return fail(fmt.Errorf("transport: rank %d mesh accept: %w", cfg.Rank, err))
		}
		conn.SetDeadline(time.Now().Add(cfg.Deadline))
		h, err := readHello(conn)
		if err == nil {
			switch {
			case h.Size != cfg.Size:
				err = fmt.Errorf("world size %d, want %d", h.Size, cfg.Size)
			case h.Epoch != cfg.Epoch:
				err = fmt.Errorf("stale epoch %d, want %d", h.Epoch, cfg.Epoch)
			case h.Rank <= cfg.Rank || h.Rank >= cfg.Size:
				err = fmt.Errorf("unexpected mesh dial from rank %d", h.Rank)
			case t.peers[h.Rank] != nil:
				err = fmt.Errorf("rank %d connected twice", h.Rank)
			default:
				err = writeHello(conn, hello{Rank: cfg.Rank, Size: cfg.Size, Epoch: cfg.Epoch})
			}
		}
		if err != nil {
			conn.Close()
			return fail(fmt.Errorf("transport: rank %d mesh handshake: %w", cfg.Rank, err))
		}
		conn.SetDeadline(time.Time{})
		t.addPeer(h.Rank, conn)
	}
	return t.start()
}

// dialRetry dials addr until it succeeds or the deadline passes, retrying
// while the listener may not be up yet.
func dialRetry(addr string, deadline time.Time) (net.Conn, error) {
	var lastErr error
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			if lastErr == nil {
				lastErr = fmt.Errorf("timed out")
			}
			return nil, lastErr
		}
		d := net.Dialer{Timeout: remain}
		conn, err := d.Dial("tcp", addr)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		time.Sleep(50 * time.Millisecond)
	}
}

// Size returns the world size.
func (t *TCP) Size() int { return t.size }

// Epoch returns the mesh incarnation this transport belongs to (0 for
// fixed-size worlds); see TCPConfig.Epoch and the EpochReporter interface.
func (t *TCP) Epoch() uint64 { return t.cfg.Epoch }

// LocalRanks returns this process's single rank.
func (t *TCP) LocalRanks() []int { return []int{t.rank} }

// Endpoint returns the local rank's endpoint.
func (t *TCP) Endpoint(rank int) Endpoint {
	if rank != t.rank {
		panic(fmt.Sprintf("transport: rank %d is not local to this process (hosting %d)", rank, t.rank))
	}
	return t
}

// Wall reports true: TCP operations take real time.
func (t *TCP) Wall() bool { return true }

// Rank returns the local rank.
func (t *TCP) Rank() int { return t.rank }

// Policy returns the configured fault policy.
func (t *TCP) Policy() FaultPolicy { return t.cfg.Policy }

// FaultStats returns this transport's failure and recovery counters.
func (t *TCP) FaultStats() FaultStats {
	return FaultStats{
		LinkFailures:   t.linkFailures.Load(),
		Reconnects:     t.reconnects.Load(),
		DialRetries:    t.dialRetries.Load(),
		ReplayedFrames: t.replayedFrames.Load(),
		ReplayedBytes:  t.replayedBytes.Load(),
	}
}

func (t *TCP) abortError() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.abortErr
}

// poison fails all local pending and subsequent operations — on every
// channel — with err, without notifying peers. It also stops accepting
// reconnects. Channels created afterwards inherit the poison in chanFor.
func (t *TCP) poison(err error) bool {
	t.mu.Lock()
	if t.abortErr != nil {
		t.mu.Unlock()
		return false
	}
	t.abortErr = err
	ln := t.ln
	t.mu.Unlock()
	if ln != nil && t.cfg.Policy == RetryTransient {
		ln.Close()
	}
	t.chmu.Lock()
	chans := make([]*tcpChan, 0, len(t.chans))
	for _, c := range t.chans {
		chans = append(chans, c)
	}
	t.chmu.Unlock()
	for _, c := range chans {
		c.poison(err)
	}
	return true
}

// Abort poisons the local rank and broadcasts the cause to every peer, so
// their pending operations fail with ErrAborted instead of hanging.
func (t *TCP) Abort(err error) {
	if !t.poison(err) {
		return
	}
	f := &Frame{Op: OpAbort, Src: uint32(t.rank), Data: []byte(err.Error())}
	for _, p := range t.peers {
		if p != nil {
			p.writeFrame(f) // best effort; the peer also sees EOF when we close
		}
	}
}

// Sever simulates this rank's sudden death (fault injection): local
// operations are poisoned and every connection and listener is torn down
// with no Bye and no abort broadcast, exactly what peers observe when the
// process is killed.
func (t *TCP) Sever(cause error) {
	t.poison(cause)
	if t.ln != nil {
		t.ln.Close()
	}
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		p.wmu.Lock()
		if p.conn != nil {
			p.conn.Close()
		}
		p.wmu.Unlock()
	}
}

// linkDown declares one connection generation failed. Caller must hold
// p.wmu. Stale generations (a racing writer and reader both reporting the
// same failure, or a failure on an already-replaced conn) are ignored. The
// conn is closed so the other side notices too, and recovery starts: the
// higher rank re-dials, the lower rank waits for the re-dial, and whichever
// side's window expires first aborts the world.
func (t *TCP) linkDownLocked(p *tcpPeer, gen int, cause error) {
	if p.gen != gen || p.down {
		return
	}
	p.down = true
	p.downSince = time.Now()
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
	t.linkFailures.Add(1)
	if !p.recovering {
		p.recovering = true
		t.readers.Add(1)
		if t.rank > p.rank {
			go t.redialLoop(p, cause)
		} else {
			go t.watchLink(p, cause)
		}
	}
}

func (t *TCP) linkDown(p *tcpPeer, gen int, cause error) {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	t.linkDownLocked(p, gen, cause)
}

// splitmix64 is the deterministic jitter source for reconnect backoff.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// redialLoop re-establishes a failed link from the dialing side (the higher
// rank) with capped exponential backoff and deterministic jitter. If the
// peer stays unreachable past the reconnect window, the world aborts.
func (t *TCP) redialLoop(p *tcpPeer, cause error) {
	defer t.readers.Done()
	p.wmu.Lock()
	deadline := p.downSince.Add(t.cfg.ReconnectWindow)
	p.wmu.Unlock()
	backoff := t.cfg.BackoffBase
	for attempt := 0; ; attempt++ {
		if t.abortError() != nil || t.isClosing() {
			return
		}
		if time.Now().After(deadline) {
			t.Abort(fmt.Errorf("%w: rank %d unreachable for %v: %v", ErrAborted, p.rank, t.cfg.ReconnectWindow, cause))
			return
		}
		if err := t.redialOnce(p); err == nil {
			return
		}
		t.dialRetries.Add(1)
		jitter := time.Duration(splitmix64(uint64(t.rank)<<32|uint64(p.rank)<<16|uint64(attempt)) % uint64(backoff/2+1))
		time.Sleep(backoff + jitter)
		backoff *= 2
		if backoff > t.cfg.BackoffMax {
			backoff = t.cfg.BackoffMax
		}
	}
}

// redialOnce performs one reconnect attempt: dial, hello handshake, resume
// exchange, then install. The dialer writes its resume first; the acceptor
// reads it and replies — a fixed order, so neither side can deadlock.
func (t *TCP) redialOnce(p *tcpPeer) error {
	conn, err := net.DialTimeout("tcp", t.addrs[p.rank], t.cfg.Deadline)
	if err != nil {
		return err
	}
	conn.SetDeadline(time.Now().Add(t.cfg.Deadline))
	if err := writeHello(conn, hello{Rank: t.rank, Size: t.size, Epoch: t.cfg.Epoch}); err != nil {
		conn.Close()
		return err
	}
	h, err := readHello(conn)
	if err != nil {
		conn.Close()
		return err
	}
	if h.Rank != p.rank || h.Size != t.size || h.Epoch != t.cfg.Epoch {
		conn.Close()
		return fmt.Errorf("transport: reconnect reply from rank %d size %d epoch %d, want rank %d epoch %d", h.Rank, h.Size, h.Epoch, p.rank, t.cfg.Epoch)
	}
	// The previous generation's reader must be fully drained before the
	// resume snapshot, or frames it is still delivering arrive twice.
	p.quiesce()
	if err := WriteFrame(conn, &Frame{Op: OpResume, Src: uint32(t.rank), Seq: p.recvSeq.Load()}); err != nil {
		conn.Close()
		return err
	}
	rf, err := ReadFrame(conn)
	if err != nil || rf.Op != OpResume {
		conn.Close()
		return fmt.Errorf("transport: reconnect resume from rank %d: op=%v err=%v", p.rank, rf, err)
	}
	conn.SetDeadline(time.Time{})
	return t.install(p, conn, rf.Seq)
}

// watchLink is the accepting side's recovery: wait for the peer (the higher
// rank) to re-dial within the reconnect window, aborting the world if it
// never does. The actual re-establishment happens in handleReaccept.
func (t *TCP) watchLink(p *tcpPeer, cause error) {
	defer t.readers.Done()
	p.wmu.Lock()
	deadline := p.downSince.Add(t.cfg.ReconnectWindow)
	p.wmu.Unlock()
	ticker := time.NewTicker(25 * time.Millisecond)
	defer ticker.Stop()
	for range ticker.C {
		if t.abortError() != nil || t.isClosing() {
			return
		}
		p.wmu.Lock()
		down := p.down
		p.wmu.Unlock()
		if !down {
			return
		}
		if time.Now().After(deadline) {
			t.Abort(fmt.Errorf("%w: rank %d did not reconnect within %v: %v", ErrAborted, p.rank, t.cfg.ReconnectWindow, cause))
			return
		}
	}
}

// acceptLoop accepts reconnecting peers for the life of the transport
// (RetryTransient only). It exits when the listener is closed (abort or
// Close).
func (t *TCP) acceptLoop() {
	defer t.readers.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.readers.Add(1) // safe: our own count keeps the group non-zero
		go t.handleReaccept(conn)
	}
}

// handleReaccept validates one incoming reconnect (acceptor side: the lower
// rank) and re-establishes the link.
func (t *TCP) handleReaccept(conn net.Conn) {
	defer t.readers.Done()
	if t.abortError() != nil || t.isClosing() {
		conn.Close()
		return
	}
	conn.SetDeadline(time.Now().Add(t.cfg.Deadline))
	h, err := readHello(conn)
	if err != nil || h.Size != t.size || h.Epoch != t.cfg.Epoch || h.Rank <= t.rank || h.Rank >= t.size || t.peers[h.Rank] == nil {
		conn.Close()
		return
	}
	p := t.peers[h.Rank]
	if err := writeHello(conn, hello{Rank: t.rank, Size: t.size, Epoch: t.cfg.Epoch}); err != nil {
		conn.Close()
		return
	}
	rf, err := ReadFrame(conn)
	if err != nil || rf.Op != OpResume {
		conn.Close()
		return
	}
	// An incoming reconnect may replace a conn this side still believes
	// healthy: quiesce its reader before the resume snapshot, or frames it
	// is still delivering arrive twice via the peer's replay.
	p.quiesce()
	if err := WriteFrame(conn, &Frame{Op: OpResume, Src: uint32(t.rank), Seq: p.recvSeq.Load()}); err != nil {
		conn.Close()
		return
	}
	conn.SetDeadline(time.Time{})
	t.install(p, conn, rf.Seq)
}

// quiesce retires the peer's current connection generation: close the conn
// (if any) and wait for that generation's readLoop to drain its buffer and
// exit. Both reconnect paths call it before snapshotting recvSeq for the
// OpResume handshake — an old reader still delivering frames buffered in its
// bufio.Reader would otherwise increment recvSeq after the snapshot, making
// the peer replay frames that were in fact delivered, and the duplicates
// would break the exactly-once guarantee (spurious SPMD-order aborts for
// collectives, silent double delivery for p2p). Frames the close discards
// before the old reader consumed them are safe: they were never counted, so
// the resume asks the peer to replay them.
func (p *tcpPeer) quiesce() {
	p.wmu.Lock()
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
	done := p.readerDone
	p.wmu.Unlock()
	// Wait without wmu: the exiting reader may need it (linkDown).
	if done != nil {
		<-done
	}
}

// install finishes a reconnect on either side: prune the replay buffer to
// what the peer confirmed receiving (theirRecv is an implicit cumulative
// ack), replay everything newer in order, then swap the connection in and
// start its reader. An incoming reconnect always replaces the current
// connection, even if this side has not yet noticed the old one die.
func (t *TCP) install(p *tcpPeer, conn net.Conn, theirRecv uint64) error {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	if t.cfg.WrapConn != nil {
		conn = t.cfg.WrapConn(p.rank, conn)
	}
	p.wmu.Lock()
	defer p.wmu.Unlock()
	if t.abortError() != nil || t.isClosing() {
		conn.Close()
		return fmt.Errorf("transport: world is down")
	}
	p.rmu.Lock()
	if theirRecv < p.ackedSeq || theirRecv > p.sentSeq {
		p.rmu.Unlock()
		conn.Close()
		err := fmt.Errorf("%w: rank %d resumed at frame %d outside (%d, %d] — replay horizon lost",
			ErrAborted, p.rank, theirRecv, p.ackedSeq, p.sentSeq)
		t.Abort(err)
		return err
	}
	p.pruneReplayLocked(theirRecv)
	pending := append([][]byte(nil), p.replay...)
	// The snapshot aliases the ledger's buffers: block pool recycling until
	// the replay below is done with them (an ack arriving mid-replay may
	// prune entries the loop is still writing).
	p.replaying = len(pending) > 0
	p.rmu.Unlock()

	// Swap the connection in and start its reader BEFORE replaying: both
	// sides of the link replay at the same time, and if neither read while
	// writing, two replays larger than the socket buffers would deadlock.
	// The link stays marked down until the replay finishes, so regular
	// writers (who need wmu anyway) cannot interleave with it.
	if p.conn != nil {
		p.conn.Close()
	}
	p.conn = conn
	p.gen++
	gen := p.gen
	p.readerDone = make(chan struct{})
	t.readers.Add(1)
	go t.readLoop(p, conn, gen, p.readerDone)

	fail := func(err error) error {
		conn.Close()
		p.conn = nil
		p.doneReplaying()
		// If this side had not yet declared the link down (an incoming
		// reconnect replaced a conn we still believed healthy), declare
		// it now so the reconnect window is enforced.
		if !p.down {
			p.down = true
			p.downSince = time.Now()
			t.linkFailures.Add(1)
		}
		if !p.recovering {
			p.recovering = true
			t.readers.Add(1)
			if t.rank > p.rank {
				go t.redialLoop(p, err)
			} else {
				go t.watchLink(p, err)
			}
		}
		return err
	}

	for _, buf := range pending {
		// Op is the first header byte after the length prefix (flag bits
		// masked for the marker), and the prefix itself is the true
		// header+data size — the frame marker must see the real length, not
		// a bare-header placeholder.
		err := beginFrameRaw(conn, buf[4]&^CompressedFlag, int(binary.BigEndian.Uint32(buf)))
		if err == nil {
			err = writeConnChunks(conn, buf, t.cfg.Deadline)
		}
		if err != nil {
			return fail(fmt.Errorf("transport: replay to rank %d: %w", p.rank, err))
		}
		t.replayedFrames.Add(1)
		t.replayedBytes.Add(uint64(len(buf)))
	}
	p.doneReplaying()

	// Re-assert locally-originated channel aborts. An abort is a control
	// frame — never acked, never replayed — so the fault that forced this
	// reconnect may have swallowed one, and a peer that missed it would wait
	// on the dead job forever. Poisoning an already-poisoned channel is a
	// no-op, so duplicates are free.
	t.chmu.Lock()
	aborts := make(map[uint32][]byte, len(t.chAborts))
	for job, cause := range t.chAborts {
		aborts[job] = cause
	}
	t.chmu.Unlock()
	for job, cause := range aborts {
		hdr := appendFrameHeaderRaw(p.hdr[:0], OpAbort, uint32(t.rank), job, 0, 0, 0, cause)
		err := beginFrameRaw(conn, OpAbort, frameHeaderLen+len(cause))
		if err == nil {
			err = p.writeConnVectored(conn, hdr, cause, t.cfg.Deadline)
		}
		if err != nil {
			return fail(fmt.Errorf("transport: re-assert abort of job %d to rank %d: %w", job, p.rank, err))
		}
	}

	p.down = false
	p.recovering = false
	t.reconnects.Add(1)
	return nil
}

// doneReplaying re-enables pool recycling of pruned replay entries after
// install's replay loop no longer aliases the ledger.
func (p *tcpPeer) doneReplaying() {
	p.rmu.Lock()
	p.replaying = false
	p.rmu.Unlock()
}

// pruneReplayLocked drops replay entries the peer confirmed, recycling their
// buffers to the frame pool. Recycling is safe against in-flight writes: a
// cumulative ack only ever covers frames the peer fully received, so a frame
// still being written cannot be pruned — except during a reconnect replay,
// whose snapshot aliases the ledger, so recycling pauses while p.replaying
// is set. Caller holds p.rmu. upTo is a cumulative data-frame count (never
// decreases).
func (p *tcpPeer) pruneReplayLocked(upTo uint64) {
	if upTo <= p.ackedSeq {
		return
	}
	drop := int(upTo - p.ackedSeq)
	if drop > len(p.replay) {
		drop = len(p.replay)
	}
	for _, b := range p.replay[:drop] {
		p.replayBytes -= int64(len(b))
		if !p.replaying {
			putBuf(b)
		}
	}
	n := copy(p.replay, p.replay[drop:])
	for i := n; i < len(p.replay); i++ {
		p.replay[i] = nil // drop tail refs so recycled buffers are not pinned
	}
	p.replay = p.replay[:n]
	p.ackedSeq = upTo
}

// handleAck processes a peer's cumulative OpAck.
func (p *tcpPeer) handleAck(upTo uint64) {
	p.rmu.Lock()
	p.pruneReplayLocked(upTo)
	p.rmu.Unlock()
}

// maybeAck sends a cumulative ack once enough unacknowledged data frames —
// by count (ackEvery) or by encoded bytes (a quarter of the sender's
// MaxReplay cap, so large frames are acknowledged long before the sender's
// replay buffer fills) — have arrived. It runs on the reader goroutine and
// must never block on the write lock (a reader parked on wmu while the
// local writer is stalled on a peer whose reader is symmetrically parked
// would distribute-deadlock), so it uses TryLock and simply retries at the
// next frame when the writer is busy. Ack loss is harmless: the counts are
// cumulative.
func (t *TCP) maybeAck(p *tcpPeer) {
	n := p.recvSeq.Load()
	b := p.recvBytes.Load()
	if n-p.lastAck.Load() < ackEvery && b-p.lastAckBytes.Load() < uint64(t.cfg.MaxReplay/4) {
		return
	}
	if !p.wmu.TryLock() {
		return
	}
	defer p.wmu.Unlock()
	if p.down || p.conn == nil {
		return
	}
	if p.writeAckLocked(n) == nil {
		p.lastAck.Store(n)
		p.lastAckBytes.Store(b)
	}
	// On error: the reader or writer on this conn notices the failure; the
	// ack retries after the reconnect.
}

// writeAckLocked sends a cumulative OpAck for the first n data frames,
// building the bare-header frame in the peer's header scratch (acks are on
// the per-frame hot path under RetryTransient, so they must not allocate).
// Caller holds wmu with a live conn.
func (p *tcpPeer) writeAckLocked(n uint64) error {
	buf := appendFrameHeaderRaw(p.hdr[:0], OpAck, uint32(p.t.rank), 0, 0, n, 0, nil)
	if err := beginFrameRaw(p.conn, OpAck, frameHeaderLen); err != nil {
		return err
	}
	return writeConnChunks(p.conn, buf, p.t.cfg.Deadline)
}

// readFramePooled is ReadFrame with the body drawn from the frame pool
// instead of a fresh allocation: the receive path is per-frame hot, and the
// consumer hands data buffers back via Recycle once the payload is copied
// out. Bodies above the poolable range keep readBody's chunked growth (a
// lying length prefix must not allocate its claim up front); poolable sizes
// can be trusted whole, since the pool class bounds the allocation anyway.
// The pooled body is recycled here whenever the frame does not alias it
// (bare-header frames and compressed payloads, which inflate into a fresh
// buffer).
func readFramePooled(r io.Reader) (*Frame, error) {
	var pre [4]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(pre[:]))
	if n < frameHeaderLen {
		return nil, fmt.Errorf("%w: length %d below header size %d", ErrBadFrame, n, frameHeaderLen)
	}
	if n > MaxFrameSize {
		return nil, fmt.Errorf("%w: length %d exceeds limit %d", ErrBadFrame, n, MaxFrameSize)
	}
	if n > 1<<maxBufBits {
		body, err := readBody(r, n)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, fmt.Errorf("%w: truncated frame body: %v", ErrBadFrame, err)
		}
		return parseFrameBody(body)
	}
	body := getBuf(n)[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		putBuf(body)
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("%w: truncated frame body: %v", ErrBadFrame, err)
	}
	f, err := parseFrameBody(body)
	if err != nil {
		putBuf(body)
		return nil, err
	}
	if len(f.Data) == 0 || &f.Data[0] != &body[frameHeaderLen] {
		putBuf(body)
	}
	return f, nil
}

// Recycle returns a payload buffer delivered by Recv or Exchange to the
// frame pool. Optional: an un-recycled buffer is simply garbage. The caller
// must not touch the buffer afterwards.
func (t *TCP) Recycle(b []byte) {
	if cap(b) > 0 {
		putBuf(b)
	}
}

// readLoop dispatches one connection generation's incoming frames until
// EOF, a decode failure, or abort. A connection failing before the peer
// announced a clean shutdown means the link failed: under AbortOnFailure
// the whole world aborts (a killed worker becomes ErrAborted everywhere
// instead of a hang); under RetryTransient the link enters recovery and
// this reader retires — install starts a new one for the next generation.
func (t *TCP) readLoop(p *tcpPeer, conn net.Conn, gen int, done chan struct{}) {
	defer t.readers.Done()
	defer close(done) // quiesce waits on this before a resume snapshot
	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		f, err := readFramePooled(br)
		if err != nil {
			if p.sawBye() || t.isClosing() {
				return
			}
			if t.cfg.Policy == RetryTransient && t.started.Load() && t.abortError() == nil {
				t.linkDown(p, gen, fmt.Errorf("read from rank %d: %v", p.rank, err))
				return
			}
			t.Abort(fmt.Errorf("%w: connection to rank %d lost: %v", ErrAborted, p.rank, err))
			return
		}
		switch f.Op {
		case OpP2P:
			p.recvSeq.Add(1)
			p.recvBytes.Add(uint64(f.WireLen)) // encoded size, mirroring the sender's replay-byte ledger
			t.chanFor(f.Job).mbox.put(Message{Src: p.rank, Tag: int(f.Tag), Data: f.Data, Time: f.Time})
			if t.cfg.Policy == RetryTransient {
				t.maybeAck(p)
			}
		case OpExchange:
			p.recvSeq.Add(1)
			p.recvBytes.Add(uint64(f.WireLen))
			t.chanFor(f.Job).exq[p.rank].push(f)
			if t.cfg.Policy == RetryTransient {
				t.maybeAck(p)
			}
		case OpAck:
			p.handleAck(f.Seq)
		case OpAbort:
			// A channel-0 abort poisons the whole mesh; a job abort poisons
			// only that job's channel — other jobs keep running.
			cause := fmt.Errorf("%w: rank %d: %s", ErrAborted, p.rank, f.Data)
			if f.Job == 0 {
				t.poison(cause)
			} else {
				t.chanFor(f.Job).poison(cause)
			}
		case OpBye:
			p.markBye()
		default:
			t.Abort(fmt.Errorf("%w: rank %d sent unexpected op %d", ErrAborted, p.rank, f.Op))
			return
		}
	}
}

func (t *TCP) isClosing() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closing
}

// Send implements Endpoint on the default channel. Under AbortOnFailure a
// write that cannot make progress within the connection deadline aborts the
// world; under RetryTransient it triggers reconnect and replay instead.
func (t *TCP) Send(dst, tag int, data []byte, now float64) error {
	return t.ch0.Send(dst, tag, data, now)
}

// Recv implements Endpoint on the default channel.
func (t *TCP) Recv(src, tag int) (Message, error) {
	return t.ch0.Recv(src, tag)
}

// TryRecv implements Endpoint on the default channel.
func (t *TCP) TryRecv(src, tag int) (Message, bool, error) {
	return t.ch0.TryRecv(src, tag)
}

// Exchange implements Endpoint on the default channel: scatter this rank's
// contributions over the mesh, then gather one contribution per peer for
// the same collective call.
func (t *TCP) Exchange(send [][]byte, now float64) ([][]byte, float64, error) {
	return t.ch0.Exchange(send, now)
}

// Close announces a clean shutdown to every peer and tears the mesh down.
// Call it only after the local rank has finished communicating (after
// World.Run); peers that are still mid-operation with this rank would
// otherwise see the close as a death.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closing {
		t.mu.Unlock()
		return nil
	}
	t.closing = true
	aborted := t.abortErr != nil
	t.mu.Unlock()

	if t.ln != nil {
		t.ln.Close()
	}
	bye := &Frame{Op: OpBye, Src: uint32(t.rank)}
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		if !aborted {
			p.writeFrame(bye) // best effort
		}
		p.wmu.Lock()
		if p.conn != nil {
			p.conn.Close()
		}
		p.wmu.Unlock()
	}
	t.readers.Wait()
	return nil
}

// closeConns tears down whatever connections a failed bootstrap left.
func (t *TCP) closeConns() {
	for _, p := range t.peers {
		if p != nil && p.conn != nil {
			p.conn.Close()
		}
	}
}
