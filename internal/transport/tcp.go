package transport

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCPConfig describes one rank's attachment to a multi-process world.
type TCPConfig struct {
	// Addr is rank 0's bootstrap address: rank 0 listens on it, every other
	// rank dials it. For rank 0 a port of 0 picks a free port (read it back
	// with Bootstrap.Addr before starting the workers).
	Addr string
	// Rank is this process's rank in [0, Size).
	Rank int
	// Size is the world size (total processes).
	Size int
	// Deadline bounds every connection write (and the per-connection
	// handshake): a peer that cannot make progress for this long is treated
	// as dead and the world aborts. 0 means 10 seconds.
	Deadline time.Duration
	// BootstrapTimeout bounds mesh establishment (dial retries, accepts,
	// the address table). 0 means 30 seconds.
	BootstrapTimeout time.Duration
}

func (c TCPConfig) withDefaults() TCPConfig {
	if c.Deadline <= 0 {
		c.Deadline = 10 * time.Second
	}
	if c.BootstrapTimeout <= 0 {
		c.BootstrapTimeout = 30 * time.Second
	}
	return c
}

func (c TCPConfig) validate() error {
	if c.Size < 1 {
		return fmt.Errorf("transport: invalid world size %d", c.Size)
	}
	if c.Rank < 0 || c.Rank >= c.Size {
		return fmt.Errorf("transport: rank %d out of range [0,%d)", c.Rank, c.Size)
	}
	if c.Addr == "" {
		return fmt.Errorf("transport: TCPConfig.Addr is required")
	}
	return nil
}

// TCP is the multi-process transport: this process hosts exactly one rank
// and a full mesh of TCP connections carries frames to every peer. Create
// it with NewTCP (or ListenTCP + Bootstrap.Accept on rank 0 when the
// bootstrap port is dynamic).
type TCP struct {
	cfg   TCPConfig
	rank  int
	size  int
	peers []*tcpPeer // peers[rank] == nil

	mbox *mailbox     // incoming point-to-point messages
	exq  []*exchQueue // per-source collective contributions; exq[rank] == nil
	seq  uint64       // this rank's collective call counter (owning goroutine only)

	mu       sync.Mutex
	abortErr error
	closing  bool

	readers sync.WaitGroup
}

// tcpPeer is one mesh connection with serialized, deadline-bounded writes.
type tcpPeer struct {
	rank int
	conn net.Conn

	wmu      sync.Mutex
	bw       *bufio.Writer
	deadline time.Duration

	mu  sync.Mutex
	bye bool // peer announced clean shutdown; EOF is not a death
}

func (p *tcpPeer) writeFrame(f *Frame) error {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	if err := p.conn.SetWriteDeadline(time.Now().Add(p.deadline)); err != nil {
		return err
	}
	if err := WriteFrame(p.bw, f); err != nil {
		return err
	}
	return p.bw.Flush()
}

func (p *tcpPeer) sawBye() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bye
}

func (p *tcpPeer) markBye() {
	p.mu.Lock()
	p.bye = true
	p.mu.Unlock()
}

// exchQueue buffers one peer's collective contributions in arrival order.
// TCP preserves per-connection ordering and both sides follow the SPMD
// contract, so the head frame's sequence number must match the local call
// counter — a mismatch is a protocol violation.
type exchQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	q       []*Frame
	aborted bool
	abortEr error
}

func newExchQueue() *exchQueue {
	e := &exchQueue{}
	e.cond = sync.NewCond(&e.mu)
	return e
}

func (e *exchQueue) push(f *Frame) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.aborted {
		return
	}
	e.q = append(e.q, f)
	e.cond.Broadcast()
}

func (e *exchQueue) pop(wantSeq uint64) (*Frame, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.q) == 0 && !e.aborted {
		e.cond.Wait()
	}
	if e.aborted {
		return nil, e.abortEr
	}
	f := e.q[0]
	e.q = e.q[1:]
	if f.Seq != wantSeq {
		return nil, fmt.Errorf("%w: rank %d sent collective #%d where #%d was expected (SPMD order violated)",
			ErrAborted, f.Src, f.Seq, wantSeq)
	}
	return f, nil
}

func (e *exchQueue) abort(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.aborted {
		e.aborted = true
		e.abortEr = err
		e.q = nil
		e.cond.Broadcast()
	}
}

// NewTCP attaches this process to a multi-process world: rank 0 listens on
// cfg.Addr and completes the bootstrap, every other rank dials it. NewTCP
// returns only once the full mesh is established and all ranks have passed
// an initial barrier, so a successful return means the whole world is up.
func NewTCP(cfg TCPConfig) (*TCP, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Rank == 0 {
		b, err := ListenTCP(cfg)
		if err != nil {
			return nil, err
		}
		return b.Accept()
	}
	return dialTCP(cfg)
}

func newTCPBase(cfg TCPConfig) *TCP {
	t := &TCP{
		cfg:   cfg,
		rank:  cfg.Rank,
		size:  cfg.Size,
		peers: make([]*tcpPeer, cfg.Size),
		mbox:  newMailbox(),
		exq:   make([]*exchQueue, cfg.Size),
	}
	for i := range t.exq {
		if i != t.rank {
			t.exq[i] = newExchQueue()
		}
	}
	return t
}

func (t *TCP) addPeer(rank int, conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	t.peers[rank] = &tcpPeer{
		rank:     rank,
		conn:     conn,
		bw:       bufio.NewWriterSize(conn, 64<<10),
		deadline: t.cfg.Deadline,
	}
}

// start launches the per-connection reader goroutines and runs the initial
// barrier that confirms every rank's mesh is complete.
func (t *TCP) start() (*TCP, error) {
	for _, p := range t.peers {
		if p != nil {
			t.readers.Add(1)
			go t.readLoop(p)
		}
	}
	if _, _, err := t.Exchange(nil, 0); err != nil {
		t.Close()
		return nil, fmt.Errorf("transport: initial barrier: %w", err)
	}
	return t, nil
}

// Bootstrap is rank 0's half-open world: the listener is bound (so the
// bootstrap address, including a dynamically chosen port, is known) but the
// workers have not joined yet. Complete it with Accept.
type Bootstrap struct {
	cfg TCPConfig
	ln  net.Listener
}

// ListenTCP binds rank 0's bootstrap listener. cfg.Rank must be 0.
func ListenTCP(cfg TCPConfig) (*Bootstrap, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Rank != 0 {
		return nil, fmt.Errorf("transport: ListenTCP on rank %d (only rank 0 listens)", cfg.Rank)
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("transport: bootstrap listen on %s: %w", cfg.Addr, err)
	}
	return &Bootstrap{cfg: cfg, ln: ln}, nil
}

// Addr returns the bound bootstrap address workers must dial.
func (b *Bootstrap) Addr() string { return b.ln.Addr().String() }

// Accept waits for every worker to register, distributes the address table,
// and returns rank 0's transport once the whole world is up.
func (b *Bootstrap) Accept() (*TCP, error) {
	defer b.ln.Close()
	t := newTCPBase(b.cfg)
	deadline := time.Now().Add(b.cfg.BootstrapTimeout)
	if tl, ok := b.ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}
	addrs := make([]string, b.cfg.Size)
	addrs[0] = b.Addr()
	for joined := 1; joined < b.cfg.Size; {
		conn, err := b.ln.Accept()
		if err != nil {
			t.closeConns()
			return nil, fmt.Errorf("transport: bootstrap accept (%d of %d ranks joined): %w", joined, b.cfg.Size, err)
		}
		rank, err := b.admit(t, conn, addrs)
		if err != nil {
			conn.Close()
			t.closeConns()
			return nil, err
		}
		if rank > 0 {
			joined++
		}
	}
	// Everyone registered; hand each worker the full table so workers can
	// mesh among themselves.
	table := encodeTable(addrs)
	for rank, p := range t.peers {
		if p == nil {
			continue
		}
		if err := p.writeFrame(&Frame{Op: OpTable, Src: 0, Data: table}); err != nil {
			t.closeConns()
			return nil, fmt.Errorf("transport: sending address table to rank %d: %w", rank, err)
		}
	}
	return t.start()
}

// admit validates one bootstrap connection and registers the worker. It
// returns the worker's rank, or 0 for a connection that was rejected softly.
func (b *Bootstrap) admit(t *TCP, conn net.Conn, addrs []string) (int, error) {
	conn.SetDeadline(time.Now().Add(b.cfg.Deadline))
	h, err := readHello(conn)
	if err != nil {
		return 0, fmt.Errorf("transport: bootstrap handshake: %w", err)
	}
	if h.Size != b.cfg.Size {
		return 0, fmt.Errorf("transport: rank %d joined with world size %d, want %d", h.Rank, h.Size, b.cfg.Size)
	}
	if h.Rank <= 0 || h.Rank >= b.cfg.Size {
		return 0, fmt.Errorf("transport: bootstrap join from invalid rank %d", h.Rank)
	}
	if t.peers[h.Rank] != nil {
		return 0, fmt.Errorf("transport: rank %d joined twice", h.Rank)
	}
	if h.Addr == "" {
		return 0, fmt.Errorf("transport: rank %d advertised no mesh address", h.Rank)
	}
	if err := writeHello(conn, hello{Rank: 0, Size: b.cfg.Size}); err != nil {
		return 0, fmt.Errorf("transport: bootstrap handshake reply to rank %d: %w", h.Rank, err)
	}
	conn.SetDeadline(time.Time{})
	t.addPeer(h.Rank, conn)
	addrs[h.Rank] = h.Addr
	return h.Rank, nil
}

// dialTCP is the worker side: dial rank 0, advertise a mesh listener, wait
// for the address table, then complete the mesh (dial every lower worker
// rank, accept every higher one).
func dialTCP(cfg TCPConfig) (*TCP, error) {
	t := newTCPBase(cfg)
	deadline := time.Now().Add(cfg.BootstrapTimeout)

	conn0, err := dialRetry(cfg.Addr, deadline)
	if err != nil {
		return nil, fmt.Errorf("transport: rank %d dialing bootstrap %s: %w", cfg.Rank, cfg.Addr, err)
	}

	// The mesh listener binds the interface that reaches rank 0, so the
	// advertised address is routable for every peer that can reach rank 0.
	host, _, err := net.SplitHostPort(conn0.LocalAddr().String())
	if err != nil {
		conn0.Close()
		return nil, fmt.Errorf("transport: rank %d local address: %w", cfg.Rank, err)
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		conn0.Close()
		return nil, fmt.Errorf("transport: rank %d mesh listen: %w", cfg.Rank, err)
	}
	defer ln.Close()
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}

	conn0.SetDeadline(time.Now().Add(cfg.Deadline))
	if err := writeHello(conn0, hello{Rank: cfg.Rank, Size: cfg.Size, Addr: ln.Addr().String()}); err != nil {
		conn0.Close()
		return nil, fmt.Errorf("transport: rank %d bootstrap handshake: %w", cfg.Rank, err)
	}
	h, err := readHello(conn0)
	if err != nil {
		conn0.Close()
		return nil, fmt.Errorf("transport: rank %d bootstrap handshake reply: %w", cfg.Rank, err)
	}
	if h.Rank != 0 || h.Size != cfg.Size {
		conn0.Close()
		return nil, fmt.Errorf("transport: rank %d bootstrap reply from rank %d size %d, want rank 0 size %d",
			cfg.Rank, h.Rank, h.Size, cfg.Size)
	}
	// The table may take as long as the slowest rank's join, not one
	// write: bound it by the bootstrap deadline.
	conn0.SetDeadline(deadline)
	tf, err := ReadFrame(conn0)
	if err != nil {
		conn0.Close()
		return nil, fmt.Errorf("transport: rank %d reading address table: %w", cfg.Rank, err)
	}
	if tf.Op != OpTable {
		conn0.Close()
		return nil, fmt.Errorf("transport: rank %d expected address table, got op %d", cfg.Rank, tf.Op)
	}
	addrs, err := decodeTable(tf.Data)
	if err != nil || len(addrs) != cfg.Size {
		conn0.Close()
		return nil, fmt.Errorf("transport: rank %d bad address table (%d entries): %v", cfg.Rank, len(addrs), err)
	}
	conn0.SetDeadline(time.Time{})
	t.addPeer(0, conn0)

	// Mesh: dial workers below, accept workers above.
	for r := 1; r < cfg.Rank; r++ {
		conn, err := dialRetry(addrs[r], deadline)
		if err != nil {
			t.closeConns()
			return nil, fmt.Errorf("transport: rank %d dialing rank %d at %s: %w", cfg.Rank, r, addrs[r], err)
		}
		conn.SetDeadline(time.Now().Add(cfg.Deadline))
		if err := writeHello(conn, hello{Rank: cfg.Rank, Size: cfg.Size}); err == nil {
			h, err = readHello(conn)
			if err == nil && (h.Rank != r || h.Size != cfg.Size) {
				err = fmt.Errorf("transport: mesh reply from rank %d size %d, want rank %d", h.Rank, h.Size, r)
			}
		}
		if err != nil {
			conn.Close()
			t.closeConns()
			return nil, fmt.Errorf("transport: rank %d mesh handshake with rank %d: %w", cfg.Rank, r, err)
		}
		conn.SetDeadline(time.Time{})
		t.addPeer(r, conn)
	}
	for accepted := cfg.Rank + 1; accepted < cfg.Size; accepted++ {
		conn, err := ln.Accept()
		if err != nil {
			t.closeConns()
			return nil, fmt.Errorf("transport: rank %d mesh accept: %w", cfg.Rank, err)
		}
		conn.SetDeadline(time.Now().Add(cfg.Deadline))
		h, err := readHello(conn)
		if err == nil {
			switch {
			case h.Size != cfg.Size:
				err = fmt.Errorf("world size %d, want %d", h.Size, cfg.Size)
			case h.Rank <= cfg.Rank || h.Rank >= cfg.Size:
				err = fmt.Errorf("unexpected mesh dial from rank %d", h.Rank)
			case t.peers[h.Rank] != nil:
				err = fmt.Errorf("rank %d connected twice", h.Rank)
			default:
				err = writeHello(conn, hello{Rank: cfg.Rank, Size: cfg.Size})
			}
		}
		if err != nil {
			conn.Close()
			t.closeConns()
			return nil, fmt.Errorf("transport: rank %d mesh handshake: %w", cfg.Rank, err)
		}
		conn.SetDeadline(time.Time{})
		t.addPeer(h.Rank, conn)
	}
	return t.start()
}

// dialRetry dials addr until it succeeds or the deadline passes, retrying
// while the listener may not be up yet.
func dialRetry(addr string, deadline time.Time) (net.Conn, error) {
	var lastErr error
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			if lastErr == nil {
				lastErr = fmt.Errorf("timed out")
			}
			return nil, lastErr
		}
		d := net.Dialer{Timeout: remain}
		conn, err := d.Dial("tcp", addr)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		time.Sleep(50 * time.Millisecond)
	}
}

// Size returns the world size.
func (t *TCP) Size() int { return t.size }

// LocalRanks returns this process's single rank.
func (t *TCP) LocalRanks() []int { return []int{t.rank} }

// Endpoint returns the local rank's endpoint.
func (t *TCP) Endpoint(rank int) Endpoint {
	if rank != t.rank {
		panic(fmt.Sprintf("transport: rank %d is not local to this process (hosting %d)", rank, t.rank))
	}
	return t
}

// Wall reports true: TCP operations take real time.
func (t *TCP) Wall() bool { return true }

// Rank returns the local rank.
func (t *TCP) Rank() int { return t.rank }

func (t *TCP) abortError() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.abortErr
}

// poison fails all local pending and subsequent operations with err,
// without notifying peers.
func (t *TCP) poison(err error) bool {
	t.mu.Lock()
	if t.abortErr != nil {
		t.mu.Unlock()
		return false
	}
	t.abortErr = err
	t.mu.Unlock()
	t.mbox.abort(err)
	for _, q := range t.exq {
		if q != nil {
			q.abort(err)
		}
	}
	return true
}

// Abort poisons the local rank and broadcasts the cause to every peer, so
// their pending operations fail with ErrAborted instead of hanging.
func (t *TCP) Abort(err error) {
	if !t.poison(err) {
		return
	}
	f := &Frame{Op: OpAbort, Src: uint32(t.rank), Data: []byte(err.Error())}
	for _, p := range t.peers {
		if p != nil {
			p.writeFrame(f) // best effort; the peer also sees EOF when we close
		}
	}
}

// readLoop dispatches one connection's incoming frames until EOF or abort.
// A connection failing before the peer announced a clean shutdown means the
// peer died: the whole local world aborts (and Abort tells the remaining
// peers), which is what turns a killed worker into ErrAborted everywhere
// instead of a hang.
func (t *TCP) readLoop(p *tcpPeer) {
	defer t.readers.Done()
	br := bufio.NewReaderSize(p.conn, 64<<10)
	for {
		f, err := ReadFrame(br)
		if err != nil {
			if p.sawBye() || t.isClosing() {
				return
			}
			t.Abort(fmt.Errorf("%w: connection to rank %d lost: %v", ErrAborted, p.rank, err))
			return
		}
		switch f.Op {
		case OpP2P:
			t.mbox.put(Message{Src: p.rank, Tag: int(f.Tag), Data: f.Data, Time: f.Time})
		case OpExchange:
			t.exq[p.rank].push(f)
		case OpAbort:
			t.poison(fmt.Errorf("%w: rank %d: %s", ErrAborted, p.rank, f.Data))
		case OpBye:
			p.markBye()
		default:
			t.Abort(fmt.Errorf("%w: rank %d sent unexpected op %d", ErrAborted, p.rank, f.Op))
			return
		}
	}
}

func (t *TCP) isClosing() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closing
}

// Send implements Endpoint. A write that cannot complete within the
// connection deadline aborts the world.
func (t *TCP) Send(dst, tag int, data []byte, now float64) error {
	if err := t.abortError(); err != nil {
		return err
	}
	if dst < 0 || dst >= t.size {
		return fmt.Errorf("transport: send to rank %d of %d", dst, t.size)
	}
	if dst == t.rank {
		return t.mbox.put(Message{Src: t.rank, Tag: tag, Data: append([]byte(nil), data...), Time: now})
	}
	f := &Frame{Op: OpP2P, Src: uint32(t.rank), Tag: int32(tag), Time: now, Data: data}
	if err := t.peers[dst].writeFrame(f); err != nil {
		err = fmt.Errorf("%w: write to rank %d: %v", ErrAborted, dst, err)
		t.Abort(err)
		return err
	}
	return nil
}

// Recv implements Endpoint.
func (t *TCP) Recv(src, tag int) (Message, error) {
	return t.mbox.get(src, tag)
}

// TryRecv implements Endpoint.
func (t *TCP) TryRecv(src, tag int) (Message, bool, error) {
	return t.mbox.tryGet(src, tag)
}

// Exchange implements Endpoint: scatter this rank's contributions over the
// mesh, then gather one contribution per peer for the same collective call.
func (t *TCP) Exchange(send [][]byte, now float64) ([][]byte, float64, error) {
	if err := t.abortError(); err != nil {
		return nil, 0, err
	}
	if send != nil && len(send) != t.size {
		return nil, 0, fmt.Errorf("transport: exchange send has %d entries, world size is %d", len(send), t.size)
	}
	seq := t.seq
	t.seq++
	for dst := 0; dst < t.size; dst++ {
		if dst == t.rank {
			continue
		}
		var payload []byte
		if send != nil {
			payload = send[dst]
		}
		f := &Frame{Op: OpExchange, Src: uint32(t.rank), Seq: seq, Time: now, Data: payload}
		if err := t.peers[dst].writeFrame(f); err != nil {
			err = fmt.Errorf("%w: exchange write to rank %d: %v", ErrAborted, dst, err)
			t.Abort(err)
			return nil, 0, err
		}
	}
	recv := make([][]byte, t.size)
	if send != nil {
		recv[t.rank] = append([]byte(nil), send[t.rank]...)
	}
	tmax := now
	for src := 0; src < t.size; src++ {
		if src == t.rank {
			continue
		}
		f, err := t.exq[src].pop(seq)
		if err != nil {
			// A protocol violation is ours to announce; a poisoned queue
			// already carries the abort cause.
			if t.abortError() == nil {
				t.Abort(err)
			}
			return nil, 0, err
		}
		recv[src] = f.Data
		if f.Time > tmax {
			tmax = f.Time
		}
	}
	return recv, tmax, nil
}

// Close announces a clean shutdown to every peer and tears the mesh down.
// Call it only after the local rank has finished communicating (after
// World.Run); peers that are still mid-operation with this rank would
// otherwise see the close as a death.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closing {
		t.mu.Unlock()
		return nil
	}
	t.closing = true
	aborted := t.abortErr != nil
	t.mu.Unlock()

	bye := &Frame{Op: OpBye, Src: uint32(t.rank)}
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		if !aborted {
			p.writeFrame(bye) // best effort
		}
		p.conn.Close()
	}
	t.readers.Wait()
	return nil
}

// closeConns tears down whatever connections a failed bootstrap left.
func (t *TCP) closeConns() {
	for _, p := range t.peers {
		if p != nil {
			p.conn.Close()
		}
	}
}
