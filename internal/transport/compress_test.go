package transport

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCompressPayloadRoundTrip pins the compressed-payload envelope:
// [u32 rawLen][deflate stream], lossless, and refused when it does not
// shrink the payload.
func TestCompressPayloadRoundTrip(t *testing.T) {
	cases := [][]byte{
		bytes.Repeat([]byte("wordcount shuffles compress well "), 64),
		bytes.Repeat([]byte{0}, compressMinSize),
		[]byte("short but repetitive repetitive repetitive repetitive repetitive repetitive repetitive repetitive repetitive"),
	}
	for i, data := range cases {
		comp, ok := compressPayload(nil, data)
		if !ok {
			t.Fatalf("case %d: %d redundant bytes did not compress", i, len(data))
		}
		if len(comp) >= len(data) {
			t.Fatalf("case %d: compressed %d -> %d", i, len(data), len(comp))
		}
		raw, err := decompressPayload(comp)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !bytes.Equal(raw, data) {
			t.Fatalf("case %d: round trip mismatch", i)
		}
	}
	// Incompressible input (already-deflated bytes) must report !ok so the
	// sender keeps the raw payload.
	pre, _ := compressPayload(nil, bytes.Repeat([]byte("abc"), 2000))
	if _, ok := compressPayload(nil, pre[4:]); ok {
		t.Fatal("deflate output claimed to compress further")
	}
}

// TestTCPCompressedExchange is the basic smoke: a Compress=on mesh moving
// compressible and incompressible payloads delivers both intact (the latter
// travel uncompressed via the per-frame fallback).
func TestTCPCompressedExchange(t *testing.T) {
	const size = 2
	trs := startMeshCfg(t, size, func(rank int, cfg *TCPConfig) {
		cfg.Compress = true
	})
	incompressible := make([]byte, 4096)
	s := uint64(1)
	for i := range incompressible {
		s = s*6364136223846793005 + 1442695040888963407
		incompressible[i] = byte(s >> 56)
	}
	payloads := [][]byte{
		bytes.Repeat([]byte("compress me "), 512),
		incompressible,
		[]byte("tiny"), // below compressMinSize: always raw
	}
	var wg sync.WaitGroup
	errs := make([]error, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep := trs[r].Endpoint(r)
			for round, p := range payloads {
				send := make([][]byte, size)
				for dst := range send {
					send[dst] = p
				}
				recv, _, err := ep.Exchange(send, 0)
				if err != nil {
					errs[r] = fmt.Errorf("round %d: %w", round, err)
					return
				}
				for src := range recv {
					if !bytes.Equal(recv[src], p) {
						errs[r] = fmt.Errorf("round %d: payload from %d damaged", round, src)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// TestTCPReconnectReplaysCompressedFrames is the compressed twin of
// TestTCPReconnectReplaysFrames: the only link of a Compress=on two-rank
// world is cut mid-frame, twice. The transport must reconnect and replay the
// missed frames — which sit in the replay ledger in their ENCODED
// (compressed) form — and every round must still deliver exactly-once: the
// per-round payload check catches duplicates and losses alike, because
// frames on one link are ordered and any replay error shifts the sequence.
func TestTCPReconnectReplaysCompressedFrames(t *testing.T) {
	const size = 2
	cuts := int32(2)
	trs := startMeshCfg(t, size, func(rank int, cfg *TCPConfig) {
		cfg.Policy = RetryTransient
		cfg.ReconnectWindow = 5 * time.Second
		cfg.BackoffBase = 5 * time.Millisecond
		cfg.Compress = true
		if rank == 0 {
			cfg.WrapConn = func(peer int, c net.Conn) net.Conn {
				return &cutConn{Conn: c, trigger: 10, cuts: &cuts}
			}
		}
	})
	const rounds = 40
	var wg sync.WaitGroup
	errs := make([]error, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep := trs[r].Endpoint(r)
			for round := 0; round < rounds; round++ {
				send := make([][]byte, size)
				for dst := range send {
					// Repetitive payload: compresses, so the replay ledger
					// holds compressed frames.
					send[dst] = bytes.Repeat([]byte{byte(r), byte(round)}, 512)
				}
				recv, _, err := ep.Exchange(send, 0)
				if err != nil {
					errs[r] = fmt.Errorf("round %d: %w", round, err)
					return
				}
				for src := range recv {
					if want := bytes.Repeat([]byte{byte(src), byte(round)}, 512); !bytes.Equal(recv[src], want) {
						errs[r] = fmt.Errorf("round %d: bad payload from %d", round, src)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	total := FaultStats{}
	for _, tr := range trs {
		s := tr.FaultStats()
		total.LinkFailures += s.LinkFailures
		total.Reconnects += s.Reconnects
		total.ReplayedFrames += s.ReplayedFrames
		total.ReplayedBytes += s.ReplayedBytes
	}
	if total.LinkFailures == 0 || total.Reconnects == 0 || total.ReplayedFrames == 0 {
		t.Fatalf("no recovery recorded: %+v", total)
	}
	if total.ReplayedBytes == 0 {
		t.Fatalf("replayed %d frames but 0 bytes: %+v", total.ReplayedFrames, total)
	}
	if atomic.LoadInt32(&cuts) > 0 {
		t.Fatalf("fault budget not exhausted: %d cuts left", cuts)
	}
	t.Logf("fault stats: %+v", total)
}
