package transport

import (
	"strings"
	"testing"
	"time"
)

// recyclePanics runs fn and reports the panic message of the pool misuse
// panic it is expected to raise, or "" if it returned normally.
func recyclePanics(fn func()) (msg string) {
	defer func() {
		if r := recover(); r != nil {
			msg, _ = r.(string)
		}
	}()
	fn()
	return ""
}

// TestDebugPoolCatchesDoubleRecycle pins the misuse tracker's core promise:
// returning the same buffer to the pool twice panics at the second putBuf —
// the call site of the bug — instead of silently handing one backing array
// to two future owners.
func TestDebugPoolCatchesDoubleRecycle(t *testing.T) {
	DebugPool(true)
	defer DebugPool(false)
	b := getBuf(128)
	putBuf(b)
	msg := recyclePanics(func() { putBuf(b) })
	if !strings.Contains(msg, "recycled twice") {
		t.Fatalf("second putBuf: panic %q, want a recycled-twice panic", msg)
	}
	// The tracker survives the panic in a consistent state: the buffer is
	// held once, and getting it back out works.
	if held := DebugPoolHeld(); held != 1 {
		t.Fatalf("tracker holds %d buffers after double put, want 1", held)
	}
}

// TestDebugPoolAcceptsInterleavedReuse is the negative control: the legal
// get → put → get → put cycle of one buffer never trips the tracker.
func TestDebugPoolAcceptsInterleavedReuse(t *testing.T) {
	DebugPool(true)
	defer DebugPool(false)
	for i := 0; i < 3; i++ {
		b := getBuf(256)
		b = append(b, make([]byte, 200)...)
		if msg := recyclePanics(func() { putBuf(b) }); msg != "" {
			t.Fatalf("cycle %d: legal putBuf panicked: %s", i, msg)
		}
	}
}

// TestCommDoubleRecycleCaught lifts the double-recycle check to the public
// surface the runtime uses: a received message's payload handed back through
// Transport.Recycle twice must panic under DebugPool, proving misuse by a
// Comm.Recycle caller is caught, not silently corrupting.
func TestCommDoubleRecycleCaught(t *testing.T) {
	trs := startMesh(t, 2)
	payload := make([]byte, 512)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := trs[0].Send(1, 7, payload, 0); err != nil {
		t.Fatal(err)
	}
	m, err := trs[1].Recv(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	DebugPool(true)
	defer DebugPool(false)
	if msg := recyclePanics(func() { trs[1].Recycle(m.Data) }); msg != "" {
		t.Fatalf("first Recycle panicked: %s", msg)
	}
	msg := recyclePanics(func() { trs[1].Recycle(m.Data) })
	if !strings.Contains(msg, "recycled twice") {
		t.Fatalf("second Recycle: panic %q, want a recycled-twice panic", msg)
	}
}

// TestReplaySnapshotBlocksRecycle pins the reconnect-replay aliasing rule: a
// replay-ledger entry pruned by an ack that lands while install is still
// replaying a snapshot of the ledger must NOT return to the pool — the
// snapshot aliases its backing array, and recycling it would let a
// concurrent writeFrame scribble over bytes mid-write to the peer. After the
// replay finishes (doneReplaying), pruning recycles normally again.
func TestReplaySnapshotBlocksRecycle(t *testing.T) {
	DebugPool(true)
	defer DebugPool(false)

	mk := func(fill byte) []byte {
		b := getBuf(128)
		for i := 0; i < 100; i++ {
			b = append(b, fill)
		}
		return b
	}
	b1, b2 := mk(1), mk(2)
	p := &tcpPeer{}
	p.replay = [][]byte{b1, b2}
	p.replayBytes = int64(len(b1) + len(b2))
	p.sentSeq = 2

	// A reconnect snapshots the ledger (install sets replaying while the
	// snapshot is alive); an ack for the first frame arrives mid-replay.
	p.rmu.Lock()
	p.replaying = true
	p.pruneReplayLocked(1)
	p.rmu.Unlock()
	if held := DebugPoolHeld(); held != 0 {
		t.Fatalf("pruned entry recycled during replay: pool holds %d tracked buffers, want 0", held)
	}
	if len(p.replay) != 1 {
		t.Fatalf("ledger holds %d entries after prune, want 1", len(p.replay))
	}
	// b1 is now owned by nobody but the snapshot — it leaks to the GC, so
	// writing through the snapshot cannot race a future pool owner.
	if b1[0] != 1 {
		t.Fatal("snapshot bytes changed by pruning")
	}

	// Replay done: pruning recycles again.
	p.doneReplaying()
	p.rmu.Lock()
	p.pruneReplayLocked(2)
	p.rmu.Unlock()
	if held := DebugPoolHeld(); held != 1 {
		t.Fatalf("pool holds %d tracked buffers after post-replay prune, want 1 (b2 recycled)", held)
	}
	_ = b2
}

// TestReplayPruneAfterReconnectEndToEnd drives the same rule through a real
// link: force a reconnect while traffic is in flight and verify the world
// keeps its exactly-once delivery with the debug tracker armed — any
// double-recycle or snapshot-aliasing bug in the replay path panics the test
// instead of corrupting frames.
func TestReplayPruneAfterReconnectEndToEnd(t *testing.T) {
	DebugPool(true)
	defer DebugPool(false)
	trs := startMeshCfg(t, 2, func(rank int, cfg *TCPConfig) {
		cfg.Policy = RetryTransient
		cfg.BackoffBase = 5 * time.Millisecond
	})
	// Rounds of traffic with a mid-stream link cut: frames queued behind the
	// cut replay on reconnect, acks prune the ledger, and every pooled
	// buffer must move through get/put exactly once.
	for round := 0; round < 3; round++ {
		if round == 1 {
			trs[0].peers[1].wmu.Lock()
			if c := trs[0].peers[1].conn; c != nil {
				c.Close()
			}
			trs[0].peers[1].wmu.Unlock()
		}
		payload := make([]byte, 2048)
		for i := range payload {
			payload[i] = byte(round)
		}
		if err := trs[0].Send(1, round, payload, 0); err != nil {
			t.Fatalf("round %d send: %v", round, err)
		}
		m, err := trs[1].Recv(0, round)
		if err != nil {
			t.Fatalf("round %d recv: %v", round, err)
		}
		if len(m.Data) != 2048 || m.Data[0] != byte(round) {
			t.Fatalf("round %d: corrupt payload (%d bytes, first %d)", round, len(m.Data), m.Data[0])
		}
		trs[1].Recycle(m.Data)
	}
}
