package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Wire format. Every connection starts with a fixed-size handshake in each
// direction (magic, protocol version, world size, rank, advertised listen
// address), after which the stream is a sequence of length-prefixed frames:
//
//	[u32 length][u8 op][u32 src][u32 job][i32 tag][u64 seq][f64 time][u32 crc][payload]
//
// length counts everything after itself (header + payload), all integers are
// big-endian, and time is an IEEE-754 bit pattern. src names the sending
// rank, job is the multiplexing channel the frame belongs to (0 is the
// default/control channel; see Mux), tag is the point-to-point tag (OpP2P
// only), seq is the collective sequence number (OpExchange; both sides of a
// channel count their collective calls, so a mismatch means the SPMD
// contract was broken) or the link-level cumulative frame count
// (OpResume/OpAck). crc is the CRC-32C of the header fields after length
// plus the payload: supercomputer interconnects corrupt bytes, TCP's 16-bit
// checksum misses some of them, and an undetected flip would silently break
// the byte-identical-output guarantee. Any burst error of 32 bits or fewer —
// in particular any single corrupted byte — is guaranteed to be detected and
// surfaces as ErrBadFrame, which the fault-tolerant transport treats as a
// link failure (reconnect + replay) rather than delivering bad data.
const (
	// Magic identifies a Mimir transport connection ("MIMR").
	Magic = 0x4D494D52
	// Version is the wire protocol version; both sides must match exactly.
	// Version 2 added the per-frame CRC-32C and the OpResume/OpAck link
	// recovery ops. Version 3 added optional frame-level flate compression:
	// a frame whose op byte carries CompressedFlag holds a deflated payload
	// (see compress.go). Compression is sender-side and per-frame, so mixed
	// Compress settings interoperate; the CRC is computed over the
	// compressed bytes (compress-then-CRC), keeping replay and corruption
	// detection on the exact wire bytes. Version 4 added the job field: a
	// channel id that lets independent jobs multiplex one standing mesh
	// (frame demux by job; see Mux). Version 5 added the epoch field to the
	// handshake: elastic membership rebuilds the mesh under a new epoch
	// number on every world change, and both sides of a connection must
	// agree on it exactly — a straggler from an earlier incarnation is
	// rejected at the handshake, so its frames can never reach a newer
	// world (see TCPConfig.Epoch).
	Version = 5

	// frameHeaderLen is the encoded size of op+src+job+tag+seq+time+crc.
	frameHeaderLen = 1 + 4 + 4 + 4 + 8 + 8 + 4
	// HeaderLen is the frame header size after the length prefix, exported
	// for fault-injection tooling that corrupts frames at byte granularity.
	HeaderLen = frameHeaderLen
	// MaxFrameSize bounds length so corrupted or hostile length prefixes
	// cannot trigger huge allocations.
	MaxFrameSize = 1 << 30
)

// crcTab is the Castagnoli table (hardware-accelerated on amd64/arm64).
var crcTab = crc32.MakeTable(crc32.Castagnoli)

// Frame operations.
const (
	// OpP2P carries one tagged point-to-point message.
	OpP2P byte = 1
	// OpExchange carries this rank's contribution to collective call seq.
	OpExchange byte = 2
	// OpAbort poisons the receiver's world; the payload is the cause.
	OpAbort byte = 3
	// OpBye announces a clean shutdown: the subsequent EOF on this
	// connection is not a peer death.
	OpBye byte = 4
	// OpTable is the bootstrap address table rank 0 sends each worker.
	OpTable byte = 5
	// OpResume is the reconnect handshake: Seq is the cumulative count of
	// data frames (OpP2P/OpExchange) the sender has received on this link,
	// telling the peer where to resume its replay.
	OpResume byte = 6
	// OpAck acknowledges receipt of the first Seq data frames on this link,
	// letting the sender prune its replay buffer.
	OpAck byte = 7

	opMax = OpAck
)

// ErrBadFrame is wrapped by every frame decoding failure.
var ErrBadFrame = errors.New("transport: bad frame")

// Frame is one wire message.
type Frame struct {
	Op   byte // base opcode; CompressedFlag is stripped during decode
	Src  uint32
	Job  uint32 // multiplexing channel (0 = default/control channel)
	Tag  int32
	Seq  uint64
	Time float64
	Data []byte
	// WireLen is the frame's encoded size on the wire (length prefix +
	// header + possibly-compressed payload), set by decoding. It is the
	// receiver-side mirror of the sender's replay-byte accounting, which
	// counts encoded bytes, so the two stay comparable when compression
	// makes len(Data) differ from the wire size.
	WireLen int
}

// appendFrameHeaderRaw appends the length prefix and header for a frame with
// the given wire op byte (which may carry CompressedFlag) and payload, whose
// bytes are NOT appended.
func appendFrameHeaderRaw(dst []byte, op byte, src, job uint32, tag int32, seq uint64, t float64, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(frameHeaderLen+len(payload)))
	start := len(dst)
	dst = append(dst, op)
	dst = binary.BigEndian.AppendUint32(dst, src)
	dst = binary.BigEndian.AppendUint32(dst, job)
	dst = binary.BigEndian.AppendUint32(dst, uint32(tag))
	dst = binary.BigEndian.AppendUint64(dst, seq)
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(t))
	crc := crc32.Update(0, crcTab, dst[start:])
	crc = crc32.Update(crc, crcTab, payload)
	return binary.BigEndian.AppendUint32(dst, crc)
}

// appendFrameHeader appends the length prefix and header of f (for a payload
// of len(f.Data), whose bytes are NOT appended) to dst.
func appendFrameHeader(dst []byte, f *Frame) []byte {
	return appendFrameHeaderRaw(dst, f.Op, f.Src, f.Job, f.Tag, f.Seq, f.Time, f.Data)
}

// AppendFrame appends the encoding of f to dst and returns the result.
func AppendFrame(dst []byte, f *Frame) []byte {
	dst = appendFrameHeader(dst, f)
	return append(dst, f.Data...)
}

// DecodeFrame decodes one frame from the front of b, returning it and the
// number of bytes consumed. Truncated or corrupted input yields an error
// wrapping ErrBadFrame, never a panic.
func DecodeFrame(b []byte) (*Frame, int, error) {
	if len(b) < 4 {
		return nil, 0, fmt.Errorf("%w: truncated length prefix (%d bytes)", ErrBadFrame, len(b))
	}
	n := binary.BigEndian.Uint32(b)
	if n < frameHeaderLen {
		return nil, 0, fmt.Errorf("%w: length %d below header size %d", ErrBadFrame, n, frameHeaderLen)
	}
	if n > MaxFrameSize {
		return nil, 0, fmt.Errorf("%w: length %d exceeds limit %d", ErrBadFrame, n, MaxFrameSize)
	}
	if len(b) < 4+int(n) {
		return nil, 0, fmt.Errorf("%w: truncated frame (%d of %d bytes)", ErrBadFrame, len(b)-4, n)
	}
	f, err := parseFrameBody(b[4 : 4+int(n)])
	if err != nil {
		return nil, 0, err
	}
	return f, 4 + int(n), nil
}

// ReadFrame reads one frame from r.
func ReadFrame(r io.Reader) (*Frame, error) {
	var pre [4]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(pre[:])
	if n < frameHeaderLen {
		return nil, fmt.Errorf("%w: length %d below header size %d", ErrBadFrame, n, frameHeaderLen)
	}
	if n > MaxFrameSize {
		return nil, fmt.Errorf("%w: length %d exceeds limit %d", ErrBadFrame, n, MaxFrameSize)
	}
	body, err := readBody(r, int(n))
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("%w: truncated frame body: %v", ErrBadFrame, err)
	}
	return parseFrameBody(body)
}

// readBody reads an n-byte frame body without trusting n for the initial
// allocation: a corrupted or hostile length prefix must not make the
// receiver allocate gigabytes before the stream proves it actually has the
// bytes, so memory grows chunk by chunk with the data.
func readBody(r io.Reader, n int) ([]byte, error) {
	const chunk = 1 << 20
	if n <= chunk {
		b := make([]byte, n)
		_, err := io.ReadFull(r, b)
		return b, err
	}
	b := make([]byte, chunk)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	for len(b) < n {
		take := n - len(b)
		if take > chunk {
			take = chunk
		}
		start := len(b)
		b = append(b, make([]byte, take)...)
		if _, err := io.ReadFull(r, b[start:]); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// parseFrameBody decodes the post-length portion of a frame. body is owned
// by the caller and an uncompressed payload is aliased, not copied (ReadFrame
// passes a fresh buffer; DecodeFrame documents aliasing via the consumed
// count); a compressed payload is inflated into a fresh buffer. The CRC is
// checked before anything else — over the wire bytes, compressed or not — so
// corruption never reaches the inflater.
func parseFrameBody(body []byte) (*Frame, error) {
	const crcOff = frameHeaderLen - 4
	want := binary.BigEndian.Uint32(body[crcOff:])
	got := crc32.Update(0, crcTab, body[:crcOff])
	got = crc32.Update(got, crcTab, body[frameHeaderLen:])
	if got != want {
		return nil, fmt.Errorf("%w: crc mismatch (got %#x want %#x, %d bytes)", ErrBadFrame, got, want, len(body))
	}
	raw := body[0]
	f := &Frame{
		Op:      raw &^ CompressedFlag,
		Src:     binary.BigEndian.Uint32(body[1:]),
		Job:     binary.BigEndian.Uint32(body[5:]),
		Tag:     int32(binary.BigEndian.Uint32(body[9:])),
		Seq:     binary.BigEndian.Uint64(body[13:]),
		Time:    math.Float64frombits(binary.BigEndian.Uint64(body[21:])),
		WireLen: 4 + len(body),
	}
	if f.Op == 0 || f.Op > opMax {
		return nil, fmt.Errorf("%w: unknown op %d", ErrBadFrame, f.Op)
	}
	if len(body) > frameHeaderLen {
		f.Data = body[frameHeaderLen:]
	}
	if raw&CompressedFlag != 0 {
		data, err := decompressPayload(f.Data)
		if err != nil {
			return nil, err
		}
		f.Data = data
	}
	return f, nil
}

// WriteFrame writes f to w (typically a buffered writer; the caller
// flushes).
func WriteFrame(w io.Writer, f *Frame) error {
	buf := appendFrameHeader(make([]byte, 0, 4+frameHeaderLen), f)
	if _, err := w.Write(buf); err != nil {
		return err
	}
	if len(f.Data) > 0 {
		if _, err := w.Write(f.Data); err != nil {
			return err
		}
	}
	return nil
}

// hello is the per-connection handshake. The dialer sends its hello first,
// the acceptor validates it and replies with its own. Addr is the dialer's
// advertised mesh listener ("" on mesh connections, where the listener is
// already known). Epoch names the mesh incarnation the sender belongs to
// (0 for fixed-size worlds that never resize); the receiver rejects any
// mismatch, so frames from a stale epoch are transitively rejected — they
// can only arrive over a connection whose handshake already failed.
type hello struct {
	Rank, Size int
	Epoch      uint64
	Addr       string
}

const maxHelloAddr = 1 << 10

func writeHello(w io.Writer, h hello) error {
	if len(h.Addr) > maxHelloAddr {
		return fmt.Errorf("transport: advertised address of %d bytes exceeds %d", len(h.Addr), maxHelloAddr)
	}
	buf := make([]byte, 0, 23+len(h.Addr))
	buf = binary.BigEndian.AppendUint32(buf, Magic)
	buf = append(buf, Version)
	buf = binary.BigEndian.AppendUint32(buf, uint32(h.Rank))
	buf = binary.BigEndian.AppendUint32(buf, uint32(h.Size))
	buf = binary.BigEndian.AppendUint64(buf, h.Epoch)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(h.Addr)))
	buf = append(buf, h.Addr...)
	_, err := w.Write(buf)
	return err
}

func readHello(r io.Reader) (hello, error) {
	var fixed [23]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return hello{}, fmt.Errorf("transport: handshake read: %w", err)
	}
	if m := binary.BigEndian.Uint32(fixed[:]); m != Magic {
		return hello{}, fmt.Errorf("transport: bad magic %#x (want %#x)", m, Magic)
	}
	if v := fixed[4]; v != Version {
		return hello{}, fmt.Errorf("transport: protocol version %d, want %d", v, Version)
	}
	h := hello{
		Rank:  int(binary.BigEndian.Uint32(fixed[5:])),
		Size:  int(binary.BigEndian.Uint32(fixed[9:])),
		Epoch: binary.BigEndian.Uint64(fixed[13:]),
	}
	alen := int(binary.BigEndian.Uint16(fixed[21:]))
	if alen > maxHelloAddr {
		return hello{}, fmt.Errorf("transport: advertised address of %d bytes exceeds %d", alen, maxHelloAddr)
	}
	if alen > 0 {
		addr := make([]byte, alen)
		if _, err := io.ReadFull(r, addr); err != nil {
			return hello{}, fmt.Errorf("transport: handshake address read: %w", err)
		}
		h.Addr = string(addr)
	}
	return h, nil
}

// encodeTable packs the bootstrap address table into an OpTable payload:
// u32 count, then per address u16 length + bytes.
func encodeTable(addrs []string) []byte {
	buf := binary.BigEndian.AppendUint32(nil, uint32(len(addrs)))
	for _, a := range addrs {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(a)))
		buf = append(buf, a...)
	}
	return buf
}

func decodeTable(b []byte) ([]string, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: truncated address table", ErrBadFrame)
	}
	n := int(binary.BigEndian.Uint32(b))
	if n > 1<<20 {
		return nil, fmt.Errorf("%w: address table of %d entries", ErrBadFrame, n)
	}
	b = b[4:]
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 2 {
			return nil, fmt.Errorf("%w: truncated address table entry %d", ErrBadFrame, i)
		}
		alen := int(binary.BigEndian.Uint16(b))
		b = b[2:]
		if len(b) < alen {
			return nil, fmt.Errorf("%w: truncated address %d (%d of %d bytes)", ErrBadFrame, i, len(b), alen)
		}
		addrs = append(addrs, string(b[:alen]))
		b = b[alen:]
	}
	return addrs, nil
}
