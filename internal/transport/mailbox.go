package transport

import "sync"

// AnySource and AnyTag are the Recv wildcards, mirroring MPI_ANY_SOURCE and
// MPI_ANY_TAG. internal/mpi re-exports them.
const (
	AnySource = -1
	AnyTag    = -1
)

// mailbox is one rank's unbounded incoming-message queue with (src, tag)
// matching in arrival order. Both transports use it: the local transport
// puts from the sending rank's goroutine, the TCP transport from the
// per-connection reader goroutines.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []Message
	aborted bool
	abortEr error
}

func newMailbox() *mailbox {
	b := &mailbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) abort(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.aborted {
		b.aborted = true
		b.abortEr = err
		b.cond.Broadcast()
	}
}

func (b *mailbox) put(m Message) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		return b.abortEr
	}
	b.queue = append(b.queue, m)
	b.cond.Broadcast()
	return nil
}

func (b *mailbox) get(src, tag int) (Message, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if b.aborted {
			return Message{}, b.abortEr
		}
		for i, m := range b.queue {
			if (src == AnySource || m.Src == src) && (tag == AnyTag || m.Tag == tag) {
				b.queue = append(b.queue[:i], b.queue[i+1:]...)
				return m, nil
			}
		}
		b.cond.Wait()
	}
}

// tryGet is the non-blocking variant of get.
func (b *mailbox) tryGet(src, tag int) (Message, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		return Message{}, false, b.abortEr
	}
	for i, m := range b.queue {
		if (src == AnySource || m.Src == src) && (tag == AnyTag || m.Tag == tag) {
			b.queue = append(b.queue[:i], b.queue[i+1:]...)
			return m, true, nil
		}
	}
	return Message{}, false, nil
}
