package transport

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Size-classed buffer pool for the frame write path. Replay entries and
// compression scratch are the only steady-state allocations per frame; both
// recycle here, so the send path settles to a handful of fixed-size heap
// objects per frame (pool bookkeeping) instead of a fresh frame-sized copy.
//
// Lifecycle rules:
//   - getBuf(n) returns a zero-length slice with capacity ≥ n. The caller
//     owns it exclusively until putBuf.
//   - putBuf(b) recycles by capacity class. Buffers whose append outgrew
//     their class land in the next class up; off-range capacities are
//     dropped for the GC.
//   - A buffer handed to the replay ledger is owned by the ledger and only
//     recycled by pruneReplayLocked — and never while a reconnect is
//     replaying a snapshot of the ledger (tcpPeer.replaying), since the
//     snapshot aliases the same backing arrays.
const (
	minBufBits = 6  // 64 B
	maxBufBits = 22 // 4 MiB; larger buffers are not pooled
)

var bufPools [maxBufBits - minBufBits + 1]sync.Pool

// Pool misuse detection. The lifecycle rules above are enforced by
// convention on the hot path (a tracking map per get/put would defeat the
// point of pooling), but misuse is catastrophic and silent: recycling one
// buffer twice hands the same backing array to two owners, and the
// corruption surfaces far from the bug. DebugPool turns on a tracker that
// panics at the misuse site instead — putBuf of a buffer the pool already
// holds, or of one it never issued and cannot account for. Tests covering
// the pooled-buffer lifecycle (double Recycle, reconnect-replay aliasing)
// enable it; production leaves the single atomic load per call.
var (
	poolDebug       atomic.Bool
	poolDebugMu     sync.Mutex
	poolDebugPooled map[*byte]bool // backing array → currently held by the pool
)

// DebugPool enables or disables pool misuse tracking (tests only). Enabling
// resets the tracker; buffers issued before enabling are treated as unknown
// and accepted back without complaint (their backing arrays are simply
// adopted).
func DebugPool(on bool) {
	poolDebugMu.Lock()
	poolDebugPooled = make(map[*byte]bool)
	poolDebugMu.Unlock()
	poolDebug.Store(on)
}

// DebugPoolHeld reports how many distinct tracked buffers the pool currently
// holds (tests only).
func DebugPoolHeld() int {
	poolDebugMu.Lock()
	defer poolDebugMu.Unlock()
	n := 0
	for _, held := range poolDebugPooled {
		if held {
			n++
		}
	}
	return n
}

// bufKey identifies a buffer by its backing array. Capacity is always
// non-zero for pooled buffers, so the first element of the full-capacity
// slice is a stable identity even for zero-length handles.
func bufKey(b []byte) *byte { return &b[:1][0] }

func debugTrackGet(b []byte) {
	if cap(b) == 0 {
		return
	}
	poolDebugMu.Lock()
	poolDebugPooled[bufKey(b)] = false
	poolDebugMu.Unlock()
}

func debugTrackPut(b []byte) {
	poolDebugMu.Lock()
	defer poolDebugMu.Unlock()
	k := bufKey(b)
	if poolDebugPooled[k] {
		panic(fmt.Sprintf("transport: buffer recycled twice (cap %d): already held by the pool", cap(b)))
	}
	poolDebugPooled[k] = true
}

// bufClass returns the pool index whose buffers have capacity ≥ n, or -1
// when n is above the poolable range.
func bufClass(n int) int {
	if n > 1<<maxBufBits {
		return -1
	}
	c := bits.Len(uint(n-1)) - minBufBits
	if n <= 1<<minBufBits {
		c = 0
	}
	return c
}

func getBuf(n int) []byte {
	c := bufClass(n)
	if c < 0 {
		return make([]byte, 0, n)
	}
	var b []byte
	if v := bufPools[c].Get(); v != nil {
		b = v.([]byte)[:0]
	} else {
		b = make([]byte, 0, 1<<(minBufBits+uint(c)))
	}
	if poolDebug.Load() {
		debugTrackGet(b)
	}
	return b
}

func putBuf(b []byte) {
	n := cap(b)
	if n < 1<<minBufBits || n > 1<<maxBufBits {
		return
	}
	if poolDebug.Load() {
		debugTrackPut(b)
	}
	// File by the class the capacity fully covers, so a later getBuf for
	// that class is guaranteed to fit.
	c := bits.Len(uint(n)) - 1 - minBufBits
	bufPools[c].Put(b[:0:n])
}
