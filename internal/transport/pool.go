package transport

import (
	"math/bits"
	"sync"
)

// Size-classed buffer pool for the frame write path. Replay entries and
// compression scratch are the only steady-state allocations per frame; both
// recycle here, so the send path settles to a handful of fixed-size heap
// objects per frame (pool bookkeeping) instead of a fresh frame-sized copy.
//
// Lifecycle rules:
//   - getBuf(n) returns a zero-length slice with capacity ≥ n. The caller
//     owns it exclusively until putBuf.
//   - putBuf(b) recycles by capacity class. Buffers whose append outgrew
//     their class land in the next class up; off-range capacities are
//     dropped for the GC.
//   - A buffer handed to the replay ledger is owned by the ledger and only
//     recycled by pruneReplayLocked — and never while a reconnect is
//     replaying a snapshot of the ledger (tcpPeer.replaying), since the
//     snapshot aliases the same backing arrays.
const (
	minBufBits = 6  // 64 B
	maxBufBits = 22 // 4 MiB; larger buffers are not pooled
)

var bufPools [maxBufBits - minBufBits + 1]sync.Pool

// bufClass returns the pool index whose buffers have capacity ≥ n, or -1
// when n is above the poolable range.
func bufClass(n int) int {
	if n > 1<<maxBufBits {
		return -1
	}
	c := bits.Len(uint(n-1)) - minBufBits
	if n <= 1<<minBufBits {
		c = 0
	}
	return c
}

func getBuf(n int) []byte {
	c := bufClass(n)
	if c < 0 {
		return make([]byte, 0, n)
	}
	if v := bufPools[c].Get(); v != nil {
		return v.([]byte)[:0]
	}
	return make([]byte, 0, 1<<(minBufBits+uint(c)))
}

func putBuf(b []byte) {
	n := cap(b)
	if n < 1<<minBufBits || n > 1<<maxBufBits {
		return
	}
	// File by the class the capacity fully covers, so a later getBuf for
	// that class is guaranteed to fit.
	c := bits.Len(uint(n)) - 1 - minBufBits
	bufPools[c].Put(b[:0:n])
}
