package transport

import (
	"fmt"
	"sync"
)

// Local is the in-process transport: every rank is a goroutine in this
// process and byte movement is memory copying. Collective exchanges go
// through a generation-counted rendezvous, which is also what synchronizes
// the ranks' simulated clocks (the runtime reads tmax from Exchange).
//
// Like TCP, Local is a Mux: Open returns per-job channel views with
// independent mailboxes, rendezvous, and abort state, mirroring the TCP
// frame demux so job-service code and conformance scenarios behave
// identically on both transports. The Local used directly is channel 0.
type Local struct {
	size int

	ch0   *localChan
	chmu  sync.Mutex
	chans map[uint32]*localChan

	mu       sync.Mutex
	abortErr error
}

// NewLocal creates an in-process transport for size ranks.
func NewLocal(size int) *Local {
	if size < 1 {
		panic(fmt.Sprintf("transport: invalid world size %d", size))
	}
	l := &Local{
		size:  size,
		chans: make(map[uint32]*localChan),
	}
	l.ch0 = newLocalChan(l, 0)
	l.chans[0] = l.ch0
	return l
}

// localChan is one multiplexing channel of the in-process world: its own
// rendezvous and per-rank mailboxes, so concurrent jobs synchronize
// independently. All ranks live in this process, so a local poison is
// already world-visible for the channel — no broadcast needed.
type localChan struct {
	l     *Local
	job   uint32
	rv    *rendezvous
	boxes []*mailbox

	mu       sync.Mutex
	abortErr error
}

func newLocalChan(l *Local, job uint32) *localChan {
	c := &localChan{
		l:     l,
		job:   job,
		rv:    newRendezvous(l.size),
		boxes: make([]*mailbox, l.size),
	}
	for i := range c.boxes {
		c.boxes[i] = newMailbox()
	}
	return c
}

// chanFor returns the channel for job, creating it on first use (mirroring
// TCP.chanFor: a world-wide poison is inherited at creation).
func (l *Local) chanFor(job uint32) *localChan {
	if job == 0 {
		return l.ch0
	}
	l.chmu.Lock()
	defer l.chmu.Unlock()
	c := l.chans[job]
	if c == nil {
		c = newLocalChan(l, job)
		if err := l.Err(); err != nil {
			c.poison(err)
		}
		l.chans[job] = c
	}
	return c
}

// Open implements Mux: the Transport view of one multiplexing channel.
func (l *Local) Open(job uint32) (Transport, error) {
	if err := l.Err(); err != nil {
		return nil, err
	}
	return l.chanFor(job), nil
}

// Err implements ErrReporter: the world-wide abort cause, nil while
// healthy.
func (l *Local) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.abortErr
}

// Size returns the number of ranks.
func (l *Local) Size() int { return l.size }

// LocalRanks returns all ranks: the local transport hosts the whole world.
func (l *Local) LocalRanks() []int {
	ranks := make([]int, l.size)
	for i := range ranks {
		ranks[i] = i
	}
	return ranks
}

// Endpoint returns the endpoint of the given rank on the default channel.
func (l *Local) Endpoint(rank int) Endpoint {
	return l.ch0.Endpoint(rank)
}

// Abort poisons all pending and subsequent operations — on every channel —
// with err.
func (l *Local) Abort(err error) {
	l.mu.Lock()
	if l.abortErr != nil {
		l.mu.Unlock()
		return
	}
	l.abortErr = err
	l.mu.Unlock()
	l.chmu.Lock()
	chans := make([]*localChan, 0, len(l.chans))
	for _, c := range l.chans {
		chans = append(chans, c)
	}
	l.chmu.Unlock()
	for _, c := range chans {
		c.poison(err)
	}
}

// Wall reports false: the local transport runs in simulated time.
func (l *Local) Wall() bool { return false }

// Close is a no-op for the in-process transport.
func (l *Local) Close() error { return nil }

// poison fails the channel's pending and subsequent operations.
func (c *localChan) poison(err error) {
	c.mu.Lock()
	if c.abortErr != nil {
		c.mu.Unlock()
		return
	}
	c.abortErr = err
	c.mu.Unlock()
	c.rv.abort(err)
	for _, b := range c.boxes {
		b.abort(err)
	}
}

// Size returns the number of ranks.
func (c *localChan) Size() int { return c.l.size }

// LocalRanks returns all ranks, like the world's.
func (c *localChan) LocalRanks() []int { return c.l.LocalRanks() }

// Endpoint returns the endpoint of the given rank on this channel.
func (c *localChan) Endpoint(rank int) Endpoint {
	if rank < 0 || rank >= c.l.size {
		panic(fmt.Sprintf("transport: rank %d out of range [0,%d)", rank, c.l.size))
	}
	return &localEndpoint{c: c, rank: rank}
}

// Abort poisons this channel only — on channel 0, the whole world
// (matching TCP's channel semantics).
func (c *localChan) Abort(err error) {
	if c.job == 0 {
		c.l.Abort(err)
		return
	}
	c.poison(err)
}

// Wall reports false: simulated time.
func (c *localChan) Wall() bool { return false }

// Err implements ErrReporter for the channel: its own poison, falling back
// to the world's.
func (c *localChan) Err() error {
	c.mu.Lock()
	err := c.abortErr
	c.mu.Unlock()
	if err != nil {
		return err
	}
	return c.l.Err()
}

// Close deregisters the channel (channel 0 is a no-op, like TCP).
func (c *localChan) Close() error {
	if c.job == 0 {
		return nil
	}
	c.l.chmu.Lock()
	if c.l.chans[c.job] == c {
		delete(c.l.chans, c.job)
	}
	c.l.chmu.Unlock()
	return nil
}

type localEndpoint struct {
	c    *localChan
	rank int
}

func (e *localEndpoint) Rank() int { return e.rank }

func (e *localEndpoint) Send(dst, tag int, data []byte, now float64) error {
	if dst < 0 || dst >= e.c.l.size {
		return fmt.Errorf("transport: send to rank %d of %d", dst, e.c.l.size)
	}
	return e.c.boxes[dst].put(Message{
		Src:  e.rank,
		Tag:  tag,
		Data: append([]byte(nil), data...),
		Time: now,
	})
}

func (e *localEndpoint) Recv(src, tag int) (Message, error) {
	return e.c.boxes[e.rank].get(src, tag)
}

func (e *localEndpoint) TryRecv(src, tag int) (Message, bool, error) {
	return e.c.boxes[e.rank].tryGet(src, tag)
}

func (e *localEndpoint) Exchange(send [][]byte, now float64) ([][]byte, float64, error) {
	if send != nil && len(send) != e.c.l.size {
		return nil, 0, fmt.Errorf("transport: exchange send has %d entries, world size is %d", len(send), e.c.l.size)
	}
	recv := make([][]byte, e.c.l.size)
	tmax, err := e.c.rv.exchange(e.rank, now, send, func(slots []contribution) {
		for src := 0; src < e.c.l.size; src++ {
			theirs := slots[src].send
			if theirs == nil {
				continue
			}
			recv[src] = append([]byte(nil), theirs[e.rank]...)
		}
	})
	if err != nil {
		return nil, 0, err
	}
	return recv, tmax, nil
}

// contribution is what a rank deposits at a collective rendezvous: its
// clock time (for synchronization) and its per-destination send buffers.
type contribution struct {
	t    float64
	send [][]byte
}

// rendezvous implements a reusable, generation-counted barrier with a
// per-rank slot array for data exchange. All ranks call exchange in the same
// order (the SPMD contract), so a single slot array double-gated by two
// barrier phases is sufficient:
//
//	phase A: every rank deposits its contribution, then waits;
//	         (all slots are now complete and frozen)
//	read:    every rank reads whatever slots it needs;
//	phase B: every rank waits again, after which slots may be overwritten.
//
// The second phase is what lets callers reuse their send buffers as soon as
// exchange returns: nobody leaves before every rank has copied what it needs.
type rendezvous struct {
	mu      sync.Mutex
	cond    *sync.Cond
	size    int
	arrived int
	gen     uint64
	slots   []contribution
	aborted bool
	abortEr error
}

func newRendezvous(size int) *rendezvous {
	r := &rendezvous{size: size, slots: make([]contribution, size)}
	r.cond = sync.NewCond(&r.mu)
	return r
}

func (r *rendezvous) abort(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.aborted {
		r.aborted = true
		r.abortEr = err
		r.cond.Broadcast()
	}
}

// arrive blocks until all ranks have arrived (one barrier phase).
func (r *rendezvous) arrive() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.aborted {
		return r.abortEr
	}
	gen := r.gen
	r.arrived++
	if r.arrived == r.size {
		r.arrived = 0
		r.gen++
		r.cond.Broadcast()
		return nil
	}
	for r.gen == gen && !r.aborted {
		r.cond.Wait()
	}
	// A generation advance means every rank arrived and this phase
	// completed — even if another rank aborted the world immediately
	// afterwards. Only report the abort when the phase itself can no
	// longer complete.
	if r.gen == gen && r.aborted {
		return r.abortEr
	}
	return nil
}

// exchange deposits this rank's contribution, waits for everyone, invokes
// read with the complete frozen slot array, then waits again so slots can be
// reused. It returns the maximum clock time across all contributions, which
// the runtime uses to synchronize simulated clocks.
func (r *rendezvous) exchange(rank int, now float64, send [][]byte, read func(slots []contribution)) (tmax float64, err error) {
	r.mu.Lock()
	if r.aborted {
		err := r.abortEr
		r.mu.Unlock()
		return 0, err
	}
	r.slots[rank] = contribution{t: now, send: send}
	r.mu.Unlock()

	if err := r.arrive(); err != nil {
		return 0, err
	}
	for _, s := range r.slots {
		if s.t > tmax {
			tmax = s.t
		}
	}
	if read != nil {
		read(r.slots)
	}
	if err := r.arrive(); err != nil {
		return 0, err
	}
	return tmax, nil
}
