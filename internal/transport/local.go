package transport

import (
	"fmt"
	"sync"
)

// Local is the in-process transport: every rank is a goroutine in this
// process and byte movement is memory copying. Collective exchanges go
// through a generation-counted rendezvous, which is also what synchronizes
// the ranks' simulated clocks (the runtime reads tmax from Exchange).
type Local struct {
	size  int
	rv    *rendezvous
	boxes []*mailbox

	abortOnce sync.Once
}

// NewLocal creates an in-process transport for size ranks.
func NewLocal(size int) *Local {
	if size < 1 {
		panic(fmt.Sprintf("transport: invalid world size %d", size))
	}
	l := &Local{
		size:  size,
		rv:    newRendezvous(size),
		boxes: make([]*mailbox, size),
	}
	for i := range l.boxes {
		l.boxes[i] = newMailbox()
	}
	return l
}

// Size returns the number of ranks.
func (l *Local) Size() int { return l.size }

// LocalRanks returns all ranks: the local transport hosts the whole world.
func (l *Local) LocalRanks() []int {
	ranks := make([]int, l.size)
	for i := range ranks {
		ranks[i] = i
	}
	return ranks
}

// Endpoint returns the endpoint of the given rank.
func (l *Local) Endpoint(rank int) Endpoint {
	if rank < 0 || rank >= l.size {
		panic(fmt.Sprintf("transport: rank %d out of range [0,%d)", rank, l.size))
	}
	return &localEndpoint{l: l, rank: rank}
}

// Abort poisons all pending and subsequent operations with err.
func (l *Local) Abort(err error) {
	l.abortOnce.Do(func() {
		l.rv.abort(err)
		for _, b := range l.boxes {
			b.abort(err)
		}
	})
}

// Wall reports false: the local transport runs in simulated time.
func (l *Local) Wall() bool { return false }

// Close is a no-op for the in-process transport.
func (l *Local) Close() error { return nil }

type localEndpoint struct {
	l    *Local
	rank int
}

func (e *localEndpoint) Rank() int { return e.rank }

func (e *localEndpoint) Send(dst, tag int, data []byte, now float64) error {
	if dst < 0 || dst >= e.l.size {
		return fmt.Errorf("transport: send to rank %d of %d", dst, e.l.size)
	}
	return e.l.boxes[dst].put(Message{
		Src:  e.rank,
		Tag:  tag,
		Data: append([]byte(nil), data...),
		Time: now,
	})
}

func (e *localEndpoint) Recv(src, tag int) (Message, error) {
	return e.l.boxes[e.rank].get(src, tag)
}

func (e *localEndpoint) TryRecv(src, tag int) (Message, bool, error) {
	return e.l.boxes[e.rank].tryGet(src, tag)
}

func (e *localEndpoint) Exchange(send [][]byte, now float64) ([][]byte, float64, error) {
	if send != nil && len(send) != e.l.size {
		return nil, 0, fmt.Errorf("transport: exchange send has %d entries, world size is %d", len(send), e.l.size)
	}
	recv := make([][]byte, e.l.size)
	tmax, err := e.l.rv.exchange(e.rank, now, send, func(slots []contribution) {
		for src := 0; src < e.l.size; src++ {
			theirs := slots[src].send
			if theirs == nil {
				continue
			}
			recv[src] = append([]byte(nil), theirs[e.rank]...)
		}
	})
	if err != nil {
		return nil, 0, err
	}
	return recv, tmax, nil
}

// contribution is what a rank deposits at a collective rendezvous: its
// clock time (for synchronization) and its per-destination send buffers.
type contribution struct {
	t    float64
	send [][]byte
}

// rendezvous implements a reusable, generation-counted barrier with a
// per-rank slot array for data exchange. All ranks call exchange in the same
// order (the SPMD contract), so a single slot array double-gated by two
// barrier phases is sufficient:
//
//	phase A: every rank deposits its contribution, then waits;
//	         (all slots are now complete and frozen)
//	read:    every rank reads whatever slots it needs;
//	phase B: every rank waits again, after which slots may be overwritten.
//
// The second phase is what lets callers reuse their send buffers as soon as
// exchange returns: nobody leaves before every rank has copied what it needs.
type rendezvous struct {
	mu      sync.Mutex
	cond    *sync.Cond
	size    int
	arrived int
	gen     uint64
	slots   []contribution
	aborted bool
	abortEr error
}

func newRendezvous(size int) *rendezvous {
	r := &rendezvous{size: size, slots: make([]contribution, size)}
	r.cond = sync.NewCond(&r.mu)
	return r
}

func (r *rendezvous) abort(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.aborted {
		r.aborted = true
		r.abortEr = err
		r.cond.Broadcast()
	}
}

// arrive blocks until all ranks have arrived (one barrier phase).
func (r *rendezvous) arrive() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.aborted {
		return r.abortEr
	}
	gen := r.gen
	r.arrived++
	if r.arrived == r.size {
		r.arrived = 0
		r.gen++
		r.cond.Broadcast()
		return nil
	}
	for r.gen == gen && !r.aborted {
		r.cond.Wait()
	}
	// A generation advance means every rank arrived and this phase
	// completed — even if another rank aborted the world immediately
	// afterwards. Only report the abort when the phase itself can no
	// longer complete.
	if r.gen == gen && r.aborted {
		return r.abortEr
	}
	return nil
}

// exchange deposits this rank's contribution, waits for everyone, invokes
// read with the complete frozen slot array, then waits again so slots can be
// reused. It returns the maximum clock time across all contributions, which
// the runtime uses to synchronize simulated clocks.
func (r *rendezvous) exchange(rank int, now float64, send [][]byte, read func(slots []contribution)) (tmax float64, err error) {
	r.mu.Lock()
	if r.aborted {
		err := r.abortEr
		r.mu.Unlock()
		return 0, err
	}
	r.slots[rank] = contribution{t: now, send: send}
	r.mu.Unlock()

	if err := r.arrive(); err != nil {
		return 0, err
	}
	for _, s := range r.slots {
		if s.t > tmax {
			tmax = s.t
		}
	}
	if read != nil {
		read(r.slots)
	}
	if err := r.arrive(); err != nil {
		return 0, err
	}
	return tmax, nil
}
