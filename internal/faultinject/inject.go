package faultinject

import (
	"fmt"
	"net"
	"sync"
	"time"

	"mimir/internal/transport"
)

// Stats counts the faults an Injector actually fired.
type Stats struct {
	Resets, Corruptions, Partials, Delays, Kills uint64
}

// Injector is one process's view of a Spec: it acts out the scheduled
// events whose rank matches (or target all ranks), plus the seeded chaos.
// One Injector serves all of the process's links and lives across
// reconnects, so one-shot events stay one-shot even though the underlying
// connections are replaced.
type Injector struct {
	spec Spec
	rank int

	mu    sync.Mutex
	fired map[[2]int]bool // {event index, peer} → already fired
	wraps map[int]int     // peer → times wrapped (seeds successive conns)
	stats Stats
}

// New builds rank's injector for spec.
func New(spec Spec, rank int) *Injector {
	return &Injector{
		spec:  spec.withDefaults(),
		rank:  rank,
		fired: make(map[[2]int]bool),
		wraps: make(map[int]int),
	}
}

// Spec returns the schedule this injector acts out.
func (in *Injector) Spec() Spec { return in.spec }

// Stats returns the faults fired so far.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// WrapConn is the transport.TCPConfig.WrapConn hook: it wraps one mesh
// connection to the given peer with the fault schedule.
func (in *Injector) WrapConn(peer int, c net.Conn) net.Conn {
	in.mu.Lock()
	wrap := in.wraps[peer]
	in.wraps[peer]++
	in.mu.Unlock()
	rng := splitmix(in.spec.Seed ^ 0x66617565) // "faue"
	rng = splitmix(rng + uint64(in.rank))
	rng = splitmix(rng + uint64(peer)<<20 + uint64(wrap))
	return &faultConn{Conn: c, in: in, peer: peer, rng: rng, corruptAt: -1}
}

// nextFault consumes the schedule for one outgoing data frame on the link
// to peer: frame is the link's 0-based data-frame index (data frames only,
// so acknowledgements do not shift the schedule). It returns the fault to
// apply, if any.
func (in *Injector) nextFault(peer int, frame uint64, rng *uint64) (Kind, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, ev := range in.spec.Events {
		if ev.Rank != AllRanks && ev.Rank != in.rank {
			continue
		}
		if ev.Frame != frame || in.fired[[2]int{i, peer}] {
			continue
		}
		in.fired[[2]int{i, peer}] = true
		in.count(ev.Kind)
		return ev.Kind, true
	}
	if in.spec.Chaos > 0 {
		*rng = splitmix(*rng)
		if float64(*rng>>11)/(1<<53) < in.spec.Chaos {
			*rng = splitmix(*rng)
			kind := Kind(*rng % 4)
			in.count(kind)
			return kind, true
		}
	}
	return 0, false
}

func (in *Injector) count(k Kind) {
	switch k {
	case Reset:
		in.stats.Resets++
	case Corrupt:
		in.stats.Corruptions++
	case Partial:
		in.stats.Partials++
	case Delay:
		in.stats.Delays++
	}
}

// errInjected wraps every failure the injector manufactures, so transport
// logs distinguish injected faults from real ones.
func errInjected(kind Kind, peer int) error {
	return fmt.Errorf("faultinject: injected %s on link to rank %d", kind, peer)
}

// faultConn wraps one mesh connection. The transport serializes writes per
// connection (and calls BeginFrame from the writing goroutine), so the
// frame-tracking fields need no locking; reads pass straight through —
// write-side corruption is observed by the receiving peer's CRC check.
type faultConn struct {
	net.Conn
	in   *Injector
	peer int
	rng  uint64

	frames    uint64 // data frames begun on this connection's link
	frameOff  int    // bytes of the current frame written so far
	corruptAt int    // frame offset of the byte to flip, -1 if none
	partialAt int    // frame offset after which to cut the connection, -1 if none
	closed    bool
}

var _ transport.FrameMarker = (*faultConn)(nil)

// BeginFrame consumes the schedule for the frame about to be written.
// Scheduled events fire only on data frames (so the schedule is independent
// of acknowledgement timing); chaos may hit any frame.
func (c *faultConn) BeginFrame(op byte, size int) error {
	c.frameOff = 0
	c.corruptAt = -1
	c.partialAt = -1
	data := op == transport.OpP2P || op == transport.OpExchange
	frame := c.frames
	if data {
		// The schedule indexes data frames per connection (indices restart
		// after a reconnect); the injector's one-shot map keeps an event
		// from firing twice on the same link either way.
		c.frames++
	}
	if !data {
		return nil
	}
	kind, ok := c.in.nextFault(c.peer, frame, &c.rng)
	if !ok {
		return nil
	}
	switch kind {
	case Reset:
		c.closed = true
		c.Conn.Close()
		return errInjected(Reset, c.peer)
	case Delay:
		time.Sleep(c.in.spec.Delay)
	case Corrupt:
		// Never the 4-byte length prefix: the CRC guarantees detection of
		// any single flipped byte after it, but a corrupted length desyncs
		// the stream in ways only the read deadline would catch.
		total := 4 + size
		if total > 5 {
			c.rng = splitmix(c.rng)
			c.corruptAt = 4 + int(c.rng%uint64(total-4))
		}
	case Partial:
		c.rng = splitmix(c.rng)
		c.partialAt = 1 + int(c.rng%uint64((4+size+1)/2))
	}
	return nil
}

func (c *faultConn) Write(b []byte) (int, error) {
	if c.closed {
		return 0, errInjected(Reset, c.peer)
	}
	if c.partialAt >= 0 && c.frameOff+len(b) > c.partialAt {
		keep := c.partialAt - c.frameOff
		if keep > 0 {
			c.Conn.Write(b[:keep])
		}
		c.closed = true
		c.Conn.Close()
		return keep, errInjected(Partial, c.peer)
	}
	if c.corruptAt >= 0 && c.corruptAt >= c.frameOff && c.corruptAt < c.frameOff+len(b) {
		mut := append([]byte(nil), b...)
		mut[c.corruptAt-c.frameOff] ^= 0x5A
		c.corruptAt = -1
		n, err := c.Conn.Write(mut)
		c.frameOff += n
		return n, err
	}
	n, err := c.Conn.Write(b)
	c.frameOff += n
	return n, err
}

// splitmix is the splitmix64 step: deterministic, seedable, stdlib-free.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
