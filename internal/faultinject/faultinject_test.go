package faultinject

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"mimir/internal/transport"
)

func TestParseSpecRoundTrip(t *testing.T) {
	cases := []string{
		"",
		"seed:42",
		"seed:42,kill:rank2@round3",
		"seed:42,kill:rank2@round3,reset:all@frame2",
		"seed:7,chaos:0.01",
		"corrupt:rank1@frame5,partial:rank0@frame3,delay:rank2@frame1",
		"delay:25ms,delay:all@frame0",
	}
	for _, s := range cases {
		spec, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s, err)
		}
		again, err := ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("ParseSpec(%q -> %q): %v", s, spec.String(), err)
		}
		if spec.String() != again.String() {
			t.Fatalf("%q: %q does not round-trip (got %q)", s, spec.String(), again.String())
		}
	}
	spec, err := ParseSpec(" seed:9 , reset:rank1@frame0 ")
	if err != nil || spec.Seed != 9 || len(spec.Events) != 1 {
		t.Fatalf("whitespace spec: %+v, %v", spec, err)
	}
	if spec.Events[0] != (Event{Kind: Reset, Rank: 1, Frame: 0}) {
		t.Fatalf("event = %+v", spec.Events[0])
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, s := range []string{
		"bogus",
		"frob:rank1@frame2",
		"seed:x",
		"chaos:1.5",
		"chaos:-1",
		"delay:0s",
		"kill:all@round2",
		"kill:rank1@frame2",
		"reset:rank1@round2",
		"reset:rankX@frame2",
		"reset:rank1",
	} {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) succeeded", s)
		}
	}
}

// pipeFrames sets up a wrapped pipe and a decoder on the far end.
func pipeFrames(t *testing.T, in *Injector, peer int) (net.Conn, <-chan error) {
	t.Helper()
	client, server := net.Pipe()
	t.Cleanup(func() { client.Close(); server.Close() })
	wrapped := in.WrapConn(peer, client)
	errs := make(chan error, 64)
	go func() {
		for {
			_, err := transport.ReadFrame(server)
			errs <- err
			if err != nil {
				return
			}
		}
	}()
	return wrapped, errs
}

// sendFrame mimics the transport's write path: BeginFrame, then the encoded
// bytes.
func sendFrame(conn net.Conn, f *transport.Frame) error {
	if fm, ok := conn.(transport.FrameMarker); ok {
		if err := fm.BeginFrame(f.Op, transport.HeaderLen+len(f.Data)); err != nil {
			return err
		}
	}
	buf := transport.AppendFrame(nil, f)
	_, err := conn.Write(buf)
	return err
}

func TestInjectedReset(t *testing.T) {
	spec, err := ParseSpec("reset:rank0@frame1")
	if err != nil {
		t.Fatal(err)
	}
	in := New(spec, 0)
	conn, errs := pipeFrames(t, in, 1)
	f := &transport.Frame{Op: transport.OpP2P, Src: 0, Data: []byte("ok")}
	if err := sendFrame(conn, f); err != nil {
		t.Fatalf("frame 0: %v", err)
	}
	if err := <-errs; err != nil {
		t.Fatalf("receiving frame 0: %v", err)
	}
	if err := sendFrame(conn, f); err == nil {
		t.Fatal("frame 1 was not reset")
	}
	if err := <-errs; err == nil {
		t.Fatal("receiver did not observe the reset")
	}
	if s := in.Stats(); s.Resets != 1 {
		t.Fatalf("stats = %+v, want 1 reset", s)
	}
	// The event is one-shot: a second injector pass on a new conn for the
	// same peer must not fire it again.
	conn2, errs2 := pipeFrames(t, in, 1)
	for i := 0; i < 4; i++ {
		if err := sendFrame(conn2, f); err != nil {
			t.Fatalf("post-reset frame %d: %v", i, err)
		}
		if err := <-errs2; err != nil {
			t.Fatalf("post-reset recv %d: %v", i, err)
		}
	}
}

func TestInjectedCorruptionCaughtByCRC(t *testing.T) {
	spec, err := ParseSpec("seed:3,corrupt:rank0@frame0")
	if err != nil {
		t.Fatal(err)
	}
	in := New(spec, 0)
	conn, errs := pipeFrames(t, in, 2)
	f := &transport.Frame{Op: transport.OpExchange, Src: 0, Seq: 5, Data: []byte("payload bytes")}
	if err := sendFrame(conn, f); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := <-errs; !errors.Is(err, transport.ErrBadFrame) {
		t.Fatalf("corrupted frame decoded to err=%v, want ErrBadFrame", err)
	}
	if s := in.Stats(); s.Corruptions != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestInjectedPartialWrite(t *testing.T) {
	spec, err := ParseSpec("seed:8,partial:all@frame2")
	if err != nil {
		t.Fatal(err)
	}
	in := New(spec, 1)
	conn, errs := pipeFrames(t, in, 0)
	f := &transport.Frame{Op: transport.OpP2P, Src: 1, Data: []byte("some payload here")}
	for i := 0; i < 2; i++ {
		if err := sendFrame(conn, f); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if err := <-errs; err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
	}
	if err := sendFrame(conn, f); err == nil {
		t.Fatal("partial write reported success")
	}
	if err := <-errs; err == nil {
		t.Fatal("receiver decoded a partial frame")
	}
}

func TestInjectedDelay(t *testing.T) {
	spec, err := ParseSpec("delay:30ms,delay:rank0@frame0")
	if err != nil {
		t.Fatal(err)
	}
	in := New(spec, 0)
	conn, errs := pipeFrames(t, in, 1)
	start := time.Now()
	if err := sendFrame(conn, &transport.Frame{Op: transport.OpP2P, Src: 0}); err != nil {
		t.Fatal(err)
	}
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("frame arrived after %v, want >= 30ms", d)
	}
}

// TestChaosDeterminism drives two injectors with the same seed through the
// same frame sequence and requires identical fault decisions.
func TestChaosDeterminism(t *testing.T) {
	spec, err := ParseSpec("seed:99,chaos:0.3")
	if err != nil {
		t.Fatal(err)
	}
	run := func() []string {
		in := New(spec, 0)
		var got []string
		for peer := 1; peer <= 2; peer++ {
			conn := in.WrapConn(peer, nopConn{})
			fc := conn.(*faultConn)
			for frame := 0; frame < 50; frame++ {
				kind, ok := in.nextFault(peer, uint64(frame), &fc.rng)
				if ok {
					got = append(got, kind.String())
				} else {
					got = append(got, "-")
				}
			}
		}
		return got
	}
	a, b := run(), run()
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("chaos schedule is not deterministic:\n%v\n%v", a, b)
	}
	fired := 0
	for _, k := range a {
		if k != "-" {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("chaos 0.3 fired %d of %d frames", fired, len(a))
	}
}

type nopConn struct{ net.Conn }

func (nopConn) Write(b []byte) (int, error) { return len(b), nil }
func (nopConn) Close() error                { return nil }

// TestKillDecorator kills rank 1 of a local world at round 2 and checks the
// dying rank gets the injected cause while the survivor sees ErrAborted.
func TestKillDecorator(t *testing.T) {
	spec, err := ParseSpec("kill:rank1@round2")
	if err != nil {
		t.Fatal(err)
	}
	in := New(spec, 1)
	tr := in.Wrap(transport.NewLocal(2))
	errs := make([]error, 2)
	done := make(chan int, 2)
	for r := 0; r < 2; r++ {
		go func(r int) {
			ep := tr.Endpoint(r)
			for round := 0; ; round++ {
				if _, _, err := ep.Exchange(nil, 0); err != nil {
					errs[r] = err
					done <- r
					return
				}
			}
		}(r)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("kill did not terminate the world")
		}
	}
	for r, err := range errs {
		if !errors.Is(err, transport.ErrAborted) {
			t.Fatalf("rank %d: %v, want ErrAborted", r, err)
		}
	}
	if !strings.Contains(errs[1].Error(), "killed rank 1") {
		t.Fatalf("dying rank's error: %v", errs[1])
	}
	if s := in.Stats(); s.Kills != 1 {
		t.Fatalf("stats = %+v", s)
	}
}
