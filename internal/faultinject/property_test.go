package faultinject_test

// The end-to-end property of the fail-recover transport: under ANY
// randomized fault schedule, a distributed WordCount either completes with
// output byte-identical to the fault-free run, or every rank surfaces
// ErrAborted — and it never hangs or panics. quick.Check draws the seeds;
// every schedule is reconstructible from its seed alone, so a failure here
// replays locally from the logged seed.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"mimir/internal/driver"
	"mimir/internal/faultinject"
	"mimir/internal/mpi"
	"mimir/internal/simtime"
	"mimir/internal/transport"
	"mimir/internal/workloads"
)

const propRanks = 3

var propConfig = driver.WordCountConfig{
	Dist:       workloads.Uniform,
	TotalBytes: 1 << 16,
	Seed:       5,
	Hint:       true,
	PR:         true,
}

// specFromSeed derives a complete random fault schedule from one seed:
// background chaos, one or two scheduled wire events, and (one time in
// three) a process kill.
func specFromSeed(seed uint64) faultinject.Spec {
	x := seed
	next := func() uint64 {
		x += 0x9E3779B97F4A7C15
		z := (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	spec := faultinject.Spec{
		Seed:  seed,
		Chaos: 0.001 + float64(next()%20)/1000, // 0.1% .. 2% per frame
		Delay: time.Millisecond,
	}
	kinds := []faultinject.Kind{faultinject.Reset, faultinject.Corrupt, faultinject.Partial, faultinject.Delay}
	for i := uint64(0); i <= next()%2; i++ {
		rank := int(next()%(propRanks+1)) - 1 // AllRanks .. propRanks-1
		spec.Events = append(spec.Events, faultinject.Event{
			Kind:  kinds[next()%4],
			Rank:  rank,
			Frame: next() % 4,
		})
	}
	if next()%3 == 0 {
		// A round beyond the job's collective count means the kill never
		// fires — the success path under chaos is exercised too.
		spec.Kills = []faultinject.Kill{{Rank: int(next() % propRanks), Round: next() % 12}}
	}
	return spec
}

// faultedMesh builds an in-process TCP mesh (real loopback sockets) where
// every rank plays its part of the schedule: wire faults via WrapConn,
// kills via the Wrap decorator.
func faultedMesh(spec faultinject.Spec) ([]transport.Transport, error) {
	injs := make([]*faultinject.Injector, propRanks)
	for r := range injs {
		injs[r] = faultinject.New(spec, r)
	}
	cfg := func(rank int, addr string) transport.TCPConfig {
		return transport.TCPConfig{
			Addr: addr, Rank: rank, Size: propRanks,
			Policy:           transport.RetryTransient,
			BootstrapTimeout: 30 * time.Second,
			ReconnectWindow:  700 * time.Millisecond,
			BackoffBase:      5 * time.Millisecond,
			WrapConn:         injs[rank].WrapConn,
		}
	}
	b, err := transport.ListenTCP(cfg(0, "127.0.0.1:0"))
	if err != nil {
		return nil, err
	}
	trs := make([]transport.Transport, propRanks)
	errs := make([]error, propRanks)
	var wg sync.WaitGroup
	for r := 1; r < propRanks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr, err := transport.NewTCP(cfg(r, b.Addr()))
			if err != nil {
				errs[r] = err
				return
			}
			trs[r] = injs[r].Wrap(tr)
		}(r)
	}
	tr0, err := b.Accept()
	if err != nil {
		errs[0] = err
	} else {
		trs[0] = injs[0].Wrap(tr0)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, tr := range trs {
				if tr != nil {
					tr.Close()
				}
			}
			return nil, err
		}
	}
	return trs, nil
}

// TestWordCountUnderRandomFaults is the property test. Each seed becomes a
// fault schedule; the faulted multi-transport run must either match the
// fault-free reference byte-for-byte or abort everywhere — bounded by a
// watchdog, so a hang is a failure, not a timeout.
func TestWordCountUnderRandomFaults(t *testing.T) {
	ref, err := driver.WordCount(mpi.NewWorld(mpi.Config{
		Size: propRanks,
		Net:  simtime.NetworkModel{Alpha: 1e-7, Beta: 1e9},
	}), propConfig, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) == 0 {
		t.Fatal("reference run produced no output")
	}

	count := 6
	if testing.Short() {
		count = 2
	}
	property := func(seed uint64) bool {
		spec := specFromSeed(seed)
		t.Logf("seed %d: spec %q", seed, spec.String())
		if err := runFaultedWordCount(spec, ref); err != nil {
			t.Errorf("seed %d (spec %q): %v", seed, spec.String(), err)
			return false
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: count,
		Rand:     rand.New(rand.NewSource(0x6d696d69)), // deterministic seed stream
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

func runFaultedWordCount(spec faultinject.Spec, ref []byte) error {
	trs, err := faultedMesh(spec)
	if err != nil {
		return fmt.Errorf("mesh bootstrap: %v", err)
	}
	outs := make([][]byte, propRanks)
	errs := make([]error, propRanks)
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for r := range trs {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				world := mpi.NewWorld(mpi.Config{Transport: trs[r]})
				outs[r], errs[r] = driver.WordCount(world, propConfig, nil)
				world.Close()
			}(r)
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		// Leak the stuck goroutines rather than wait forever; the test
		// fails loudly either way.
		return errors.New("world hung under the fault schedule")
	}
	failed := 0
	for r, err := range errs {
		if err == nil {
			continue
		}
		failed++
		if !errors.Is(err, transport.ErrAborted) {
			return fmt.Errorf("rank %d failed with %v, want ErrAborted or success", r, err)
		}
	}
	if failed == 0 && !bytes.Equal(outs[0], ref) {
		return fmt.Errorf("completed run not byte-identical to fault-free reference: %d vs %d bytes", len(outs[0]), len(ref))
	}
	return nil
}
