package faultinject

import (
	"fmt"
	"sync"

	"mimir/internal/transport"
)

// Severer is implemented by transports that can simulate this process's
// sudden death: tear down every connection with no farewell and no abort
// broadcast, which is exactly what peers observe when the process is
// killed. transport.TCP implements it.
type Severer interface {
	Sever(cause error)
}

// Wrap decorates a transport with the injector's kill schedule: when a
// local rank with a scheduled kill reaches the scheduled collective round,
// the transport is severed (or, lacking a Severer, aborted) and the rank's
// call fails with an ErrAborted-wrapped cause. Wire-level events need no
// decorator — they ride in through TCPConfig.WrapConn.
func (in *Injector) Wrap(inner transport.Transport) transport.Transport {
	return &killTransport{inner: inner, in: in, eps: make(map[int]*killEndpoint)}
}

type killTransport struct {
	inner transport.Transport
	in    *Injector

	mu  sync.Mutex
	eps map[int]*killEndpoint
}

func (k *killTransport) Size() int         { return k.inner.Size() }
func (k *killTransport) LocalRanks() []int { return k.inner.LocalRanks() }
func (k *killTransport) Wall() bool        { return k.inner.Wall() }
func (k *killTransport) Abort(err error)   { k.inner.Abort(err) }
func (k *killTransport) Close() error      { return k.inner.Close() }

// Open forwards to the inner transport's Mux and wraps the returned channel
// view, so a kill schedule fires on job channels too (the round counter is
// per channel view, matching the per-channel collective sequence). A
// channel view has no Severer, so a kill on it aborts the channel — the
// job, not the mesh — which is exactly the blast radius a job-level fault
// should have.
func (k *killTransport) Open(job uint32) (transport.Transport, error) {
	m, ok := k.inner.(transport.Mux)
	if !ok {
		return nil, fmt.Errorf("faultinject: transport %T is not a Mux", k.inner)
	}
	ch, err := m.Open(job)
	if err != nil {
		return nil, err
	}
	return k.in.Wrap(ch), nil
}

// Err forwards the inner transport's abort cause.
func (k *killTransport) Err() error {
	if r, ok := k.inner.(transport.ErrReporter); ok {
		return r.Err()
	}
	return nil
}

// FaultStats forwards the inner transport's recovery counters, so the
// runtime's metrics see through the decorator.
func (k *killTransport) FaultStats() transport.FaultStats {
	if r, ok := k.inner.(transport.FaultReporter); ok {
		return r.FaultStats()
	}
	return transport.FaultStats{}
}

// Policy forwards the inner transport's fault policy.
func (k *killTransport) Policy() transport.FaultPolicy {
	if r, ok := k.inner.(transport.PolicyReporter); ok {
		return r.Policy()
	}
	return transport.AbortOnFailure
}

// Endpoint returns a stable wrapper per rank: the kill schedule counts the
// rank's collective rounds, so the counter must survive repeated Endpoint
// calls.
func (k *killTransport) Endpoint(rank int) transport.Endpoint {
	k.mu.Lock()
	defer k.mu.Unlock()
	ep, ok := k.eps[rank]
	if !ok {
		ep = &killEndpoint{Endpoint: k.inner.Endpoint(rank), k: k}
		k.eps[rank] = ep
	}
	return ep
}

// killEndpoint counts one rank's Exchange calls (its collective rounds) and
// dies on schedule. Like every Endpoint it is owned by a single goroutine,
// so the round counter needs no lock.
type killEndpoint struct {
	transport.Endpoint
	k     *killTransport
	round uint64
}

func (e *killEndpoint) Exchange(send [][]byte, now float64) ([][]byte, float64, error) {
	round := e.round
	e.round++
	for _, kill := range e.k.in.spec.Kills {
		if kill.Rank != e.Rank() || kill.Round != round {
			continue
		}
		e.k.in.mu.Lock()
		fired := e.k.in.fired[[2]int{-1 - int(kill.Round), kill.Rank}]
		if !fired {
			e.k.in.fired[[2]int{-1 - int(kill.Round), kill.Rank}] = true
			e.k.in.stats.Kills++
		}
		e.k.in.mu.Unlock()
		cause := fmt.Errorf("%w: fault injection killed rank %d at round %d", transport.ErrAborted, kill.Rank, round)
		if s, ok := e.k.inner.(Severer); ok {
			s.Sever(cause)
		} else {
			e.k.inner.Abort(cause)
		}
		return nil, 0, cause
	}
	return e.Endpoint.Exchange(send, now)
}
