package faultinject

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"runtime"
	"testing"

	"mimir/internal/transport"
)

// FuzzCompressedWire is FuzzFaultedWire for wire v3's compressed frames: the
// frame is encoded with the compression bit set (deflated payload behind a
// raw-length prefix, CRC over the COMPRESSED bytes), then damaged exactly the
// way the injector damages streams — truncation at every offset and
// single-byte corruption at every offset. Every outcome must be a clean
// error (ErrBadFrame for post-length corruption, since the CRC covers the
// wire bytes); never a panic, a hang, or a silent misdecode into different
// payload bytes.
func FuzzCompressedWire(f *testing.F) {
	f.Add(uint32(1), int32(-1), uint64(7), []byte("the quick brown fox jumps over the lazy dog, repeatedly and compressibly: "), byte(0x5A), 8)
	f.Add(uint32(3), int32(0), uint64(1<<40), bytes.Repeat([]byte{0xAB, 0xCD}, 400), byte(0x01), 1)
	f.Add(uint32(0), int32(9), uint64(0), bytes.Repeat([]byte("wordcount "), 64), byte(0x80), 3)
	f.Fuzz(func(t *testing.T, src uint32, tag int32, seq uint64, seedData []byte, mask byte, reps int) {
		if mask == 0 {
			mask = 0xFF
		}
		// Grow redundancy so the payload actually compresses; cap the size to
		// keep the per-offset loops fast.
		if reps < 1 {
			reps = 1
		}
		data := bytes.Repeat(seedData, 1+reps%8)
		if len(data) > 4096 {
			data = data[:4096]
		}
		valid := &transport.Frame{Op: transport.OpP2P, Src: src, Tag: tag, Seq: seq, Data: data}
		enc, compressed := transport.AppendFrameCompressed(nil, valid)
		got, _, err := transport.DecodeFrame(enc)
		if err != nil {
			t.Fatalf("valid compressed frame rejected: %v", err)
		}
		if !bytes.Equal(got.Data, data) {
			t.Fatalf("round trip mismatch: %d bytes in, %d out", len(data), len(got.Data))
		}

		// Truncation at every offset: always an error, never a hang or panic.
		for cut := 0; cut < len(enc); cut++ {
			if _, _, err := transport.DecodeFrame(enc[:cut]); err == nil {
				t.Fatalf("truncation to %d of %d bytes decoded", cut, len(enc))
			}
			if _, err := transport.ReadFrame(bytes.NewReader(enc[:cut])); err == nil {
				t.Fatalf("ReadFrame of %d-byte truncation succeeded", cut)
			}
		}

		// Corruption at every offset. CRC-32C is computed over the encoded
		// (compressed) bytes, so any single-byte flip past the length prefix
		// is detected BEFORE the deflate stream is even opened — corrupt
		// compressed input can never reach the decompressor.
		mut := make([]byte, len(enc))
		for off := 0; off < len(enc); off++ {
			copy(mut, enc)
			mut[off] ^= mask
			f2, _, err := transport.DecodeFrame(mut)
			if off >= 4 {
				if !errors.Is(err, transport.ErrBadFrame) {
					t.Fatalf("corruption at offset %d (mask %#x) decoded to %+v, err %v", off, mask, f2, err)
				}
			} else if err == nil && !bytes.Equal(f2.Data, data) {
				// A flipped length prefix that still frames a CRC-valid region
				// can only be the original frame; anything else must error.
				t.Fatalf("length-prefix corruption at %d misdecoded", off)
			}
			transport.ReadFrame(bytes.NewReader(mut)) // must not panic
		}

		// A lying raw-length prefix inside an otherwise CRC-valid frame: take
		// the compressed payload, inflate the declared raw size to the
		// maximum, re-frame with a fresh CRC (modeling a malicious peer rather
		// than line noise) and require a clean error without the declared
		// allocation.
		if compressed {
			tampered := tamperRawLen(enc, 1<<30)
			f3, _, err := transport.DecodeFrame(tampered)
			if err == nil {
				t.Fatalf("lying raw length decoded to %d bytes", len(f3.Data))
			}
		}
	})
}

// tamperRawLen rewrites a compressed frame's declared raw length and
// recomputes the frame CRC (Castagnoli over the header fields after the
// length prefix plus the payload, exactly as wire.go does), so only the
// decompressor itself can catch the lie.
func tamperRawLen(enc []byte, rawLen uint32) []byte {
	out := append([]byte(nil), enc...)
	body := out[4:]
	binary.BigEndian.PutUint32(body[transport.HeaderLen:], rawLen)
	tab := crc32.MakeTable(crc32.Castagnoli)
	crc := crc32.Update(0, tab, body[:transport.HeaderLen-4])
	crc = crc32.Update(crc, tab, body[transport.HeaderLen:])
	binary.BigEndian.PutUint32(body[transport.HeaderLen-4:], crc)
	return out
}

// TestCompressedLyingLengthBoundedAllocation pins the decompressor's chunked
// growth: a CRC-valid compressed frame whose raw-length prefix claims ~1 GB
// but whose deflate stream holds only a few bytes must fail with a bounded
// allocation, never the claimed gigabyte.
func TestCompressedLyingLengthBoundedAllocation(t *testing.T) {
	f := &transport.Frame{Op: transport.OpP2P, Src: 1, Tag: 2, Seq: 3,
		Data: bytes.Repeat([]byte("abcdefgh"), 64)}
	enc, ok := transport.AppendFrameCompressed(nil, f)
	if !ok {
		t.Fatal("512 repeated bytes did not compress")
	}
	tampered := tamperRawLen(enc, 1<<29)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if _, _, err := transport.DecodeFrame(tampered); err == nil {
		t.Fatal("lying raw length decoded")
	}
	runtime.ReadMemStats(&after)
	// The decompressor grows its output in bounded chunks and stops at the
	// real end of the deflate stream; far below the declared 512 MiB.
	if grown := after.TotalAlloc - before.TotalAlloc; grown > 64<<20 {
		t.Fatalf("lying length allocated %d bytes", grown)
	}
	// Streamed byte-by-byte it must fail the same way.
	if _, err := transport.ReadFrame(io.LimitReader(bytes.NewReader(tampered), int64(len(tampered)))); err == nil {
		t.Fatal("lying frame decoded from stream")
	}
}
