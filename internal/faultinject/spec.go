// Package faultinject applies a deterministic, seed-driven fault schedule
// to a transport: connection resets, partial writes, byte-level corruption,
// delays, and one-shot process kills, at chosen frame and collective-round
// boundaries. The same Spec on the same workload produces the same faults,
// so a chaos failure found in CI replays locally from nothing but the seed
// string.
//
// A Spec is shared by every rank of the world (it travels to worker
// processes as a flag / environment string); each process builds its own
// Injector from the Spec and its rank, and the Injector decides which
// scheduled events that rank acts out. Wire-level faults hook into the TCP
// transport through TCPConfig.WrapConn; process kills hook into any
// transport through the Wrap decorator.
package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind is a wire-level fault kind.
type Kind int

const (
	// Reset closes the connection instead of writing the frame.
	Reset Kind = iota
	// Corrupt flips one byte of the frame (never the length prefix, whose
	// corruption the CRC cannot guarantee to catch — see wire.go; the CRC
	// detects any single corrupted byte after it).
	Corrupt
	// Partial writes roughly half of the frame, then closes the connection.
	Partial
	// Delay sleeps for the Spec's Delay before writing the frame.
	Delay
)

var kindNames = map[Kind]string{Reset: "reset", Corrupt: "corrupt", Partial: "partial", Delay: "delay"}

func (k Kind) String() string { return kindNames[k] }

// AllRanks as an Event or Kill rank means every rank acts the event out.
const AllRanks = -1

// Event schedules one wire-level fault: rank Rank (or every rank) applies
// Kind to the Frame-th data frame (0-based, counted per link) it writes on
// each of its links. Each event fires at most once per link.
type Event struct {
	Kind  Kind
	Rank  int
	Frame uint64
}

// Kill schedules a one-shot process death: rank Rank severs all its
// connections in place of its Round-th collective call (0-based, counted
// from the first Exchange after the world is up).
type Kill struct {
	Rank  int
	Round uint64
}

// Spec is a complete fault schedule.
type Spec struct {
	// Seed drives the deterministic jitter and the chaos mode.
	Seed uint64
	// Chaos, when positive, is a per-frame probability of a random fault
	// (kind picked by the seeded generator) on top of the scheduled Events.
	Chaos float64
	// Delay is the duration of Delay faults. 0 means 5ms.
	Delay time.Duration
	// Events are the scheduled wire-level faults.
	Events []Event
	// Kills are the scheduled process deaths.
	Kills []Kill
}

func (s Spec) withDefaults() Spec {
	if s.Delay <= 0 {
		s.Delay = 5 * time.Millisecond
	}
	return s
}

// Empty reports whether the spec schedules nothing at all.
func (s Spec) Empty() bool {
	return s.Chaos == 0 && len(s.Events) == 0 && len(s.Kills) == 0
}

// String renders the spec in the grammar ParseSpec accepts.
func (s Spec) String() string {
	var parts []string
	if s.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed:%d", s.Seed))
	}
	if s.Chaos > 0 {
		parts = append(parts, fmt.Sprintf("chaos:%g", s.Chaos))
	}
	if s.Delay > 0 && s.Delay != 5*time.Millisecond {
		parts = append(parts, fmt.Sprintf("delay:%s", s.Delay))
	}
	for _, e := range s.Events {
		parts = append(parts, fmt.Sprintf("%s:%s@frame%d", e.Kind, rankName(e.Rank), e.Frame))
	}
	for _, k := range s.Kills {
		parts = append(parts, fmt.Sprintf("kill:%s@round%d", rankName(k.Rank), k.Round))
	}
	return strings.Join(parts, ",")
}

func rankName(r int) string {
	if r == AllRanks {
		return "all"
	}
	return "rank" + strconv.Itoa(r)
}

// ParseSpec parses the -faults flag grammar: comma-separated entries, each
// one of
//
//	seed:N                       — generator seed
//	chaos:P                      — per-frame random fault probability
//	delay:DUR                    — duration of delay faults (e.g. 5ms)
//	reset|corrupt|partial|delay:rankR@frameF — scheduled wire fault
//	kill:rankR@roundN            — scheduled process death
//
// where rankR is rankN or "all" (kills require a specific rank). Example:
//
//	seed:42,kill:rank2@round3,reset:all@frame2
//
// The empty string parses to the empty Spec.
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	s = strings.TrimSpace(s)
	if s == "" {
		return spec, nil
	}
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		key, val, ok := strings.Cut(entry, ":")
		if !ok {
			return Spec{}, fmt.Errorf("faultinject: %q is not key:value", entry)
		}
		switch {
		case key == "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("faultinject: bad seed %q: %v", val, err)
			}
			spec.Seed = n
		case key == "chaos":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return Spec{}, fmt.Errorf("faultinject: chaos probability %q not in [0,1]", val)
			}
			spec.Chaos = p
		case key == "delay" && !strings.Contains(val, "@"):
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return Spec{}, fmt.Errorf("faultinject: bad delay duration %q", val)
			}
			spec.Delay = d
		case key == "kill":
			rank, at, err := parseTarget(val, "round")
			if err != nil {
				return Spec{}, err
			}
			if rank == AllRanks {
				return Spec{}, fmt.Errorf("faultinject: kill:%s — killing all ranks needs a specific rank", val)
			}
			spec.Kills = append(spec.Kills, Kill{Rank: rank, Round: at})
		default:
			var kind Kind
			found := false
			for k, name := range kindNames {
				if name == key {
					kind, found = k, true
					break
				}
			}
			if !found {
				return Spec{}, fmt.Errorf("faultinject: unknown fault %q (want seed, chaos, delay, reset, corrupt, partial, or kill)", key)
			}
			rank, at, err := parseTarget(val, "frame")
			if err != nil {
				return Spec{}, err
			}
			spec.Events = append(spec.Events, Event{Kind: kind, Rank: rank, Frame: at})
		}
	}
	// A canonical order makes the schedule independent of entry order.
	sort.SliceStable(spec.Events, func(i, j int) bool {
		a, b := spec.Events[i], spec.Events[j]
		if a.Frame != b.Frame {
			return a.Frame < b.Frame
		}
		return a.Kind < b.Kind
	})
	sort.SliceStable(spec.Kills, func(i, j int) bool { return spec.Kills[i].Round < spec.Kills[j].Round })
	return spec, nil
}

// parseTarget parses "rankR@frameF" / "all@roundN" style positions.
func parseTarget(val, posWord string) (rank int, at uint64, err error) {
	target, pos, ok := strings.Cut(val, "@")
	if !ok {
		return 0, 0, fmt.Errorf("faultinject: %q is missing @%sN", val, posWord)
	}
	switch {
	case target == "all":
		rank = AllRanks
	case strings.HasPrefix(target, "rank"):
		n, perr := strconv.Atoi(target[len("rank"):])
		if perr != nil || n < 0 {
			return 0, 0, fmt.Errorf("faultinject: bad rank %q", target)
		}
		rank = n
	default:
		return 0, 0, fmt.Errorf("faultinject: bad target %q (want rankN or all)", target)
	}
	if !strings.HasPrefix(pos, posWord) {
		return 0, 0, fmt.Errorf("faultinject: bad position %q (want %sN)", pos, posWord)
	}
	at, err = strconv.ParseUint(pos[len(posWord):], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("faultinject: bad position %q: %v", pos, err)
	}
	return rank, at, nil
}
