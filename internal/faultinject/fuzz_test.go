package faultinject

import (
	"bytes"
	"errors"
	"io"
	"runtime"
	"testing"

	"mimir/internal/transport"
)

// FuzzFaultedWire feeds the wire decoder the exact damage the injector
// deals: truncation at every byte offset and single-byte corruption at
// every byte offset. Truncated frames must error; corruption after the
// length prefix must surface as ErrBadFrame (the CRC-32C guarantee for any
// single-byte flip); corruption of the length prefix itself may decode to
// anything except a panic or an unbounded allocation.
func FuzzFaultedWire(f *testing.F) {
	f.Add(byte(transport.OpP2P), uint32(1), int32(-1), uint64(7), []byte("hello world"), byte(0x5A))
	f.Add(byte(transport.OpExchange), uint32(3), int32(0), uint64(1<<40), []byte{}, byte(0x01))
	f.Add(byte(transport.OpResume), uint32(0), int32(9), uint64(0), bytes.Repeat([]byte{0xAB}, 300), byte(0x80))
	f.Add(byte(transport.OpAck), uint32(2), int32(-5), uint64(12345), []byte{0, 0, 0, 0, 0xFF}, byte(0xFF))
	f.Fuzz(func(t *testing.T, op byte, src uint32, tag int32, seq uint64, data []byte, mask byte) {
		if len(data) > 2048 {
			data = data[:2048] // keep the per-offset loops fast
		}
		if mask == 0 {
			mask = 0xFF // a zero mask is no corruption at all
		}
		valid := &transport.Frame{Op: op%transport.OpAck + 1, Src: src, Tag: tag, Seq: seq, Data: data}
		enc := transport.AppendFrame(nil, valid)
		if _, _, err := transport.DecodeFrame(enc); err != nil {
			t.Fatalf("valid frame rejected: %v", err)
		}

		// Truncation at every offset: always an error, never a panic, and
		// ReadFrame must not hang waiting for more.
		for cut := 0; cut < len(enc); cut++ {
			if _, _, err := transport.DecodeFrame(enc[:cut]); err == nil {
				t.Fatalf("truncation to %d of %d bytes decoded", cut, len(enc))
			}
			if _, err := transport.ReadFrame(bytes.NewReader(enc[:cut])); err == nil {
				t.Fatalf("ReadFrame of %d-byte truncation succeeded", cut)
			}
		}

		// Corruption at every offset.
		mut := make([]byte, len(enc))
		for off := 0; off < len(enc); off++ {
			copy(mut, enc)
			mut[off] ^= mask
			f2, _, err := transport.DecodeFrame(mut)
			if off >= 4 {
				// Post-length corruption: a single flipped byte is a burst
				// error of <= 8 bits, which the frame CRC always detects.
				if !errors.Is(err, transport.ErrBadFrame) {
					t.Fatalf("corruption at offset %d (mask %#x) decoded to %+v, err %v", off, mask, f2, err)
				}
			}
			// Length-prefix corruption (offsets 0-3) may truncate-error,
			// CRC-error, or — if the flipped length still frames a valid
			// CRC'd region — even decode; it must simply never panic.
			transport.ReadFrame(bytes.NewReader(mut))
		}

		// A corrupted length prefix claiming a huge frame must error on the
		// missing bytes without allocating the claimed size up front.
		huge := append([]byte{0x3F, 0xFF, 0xFF, 0xFF}, enc[4:]...)
		res := testing.AllocsPerRun(1, func() {
			if _, err := transport.ReadFrame(bytes.NewReader(huge)); err == nil {
				t.Fatal("huge claimed length decoded")
			}
		})
		_ = res // alloc count is noisy; the bound is asserted below via io.Pipe
		// Same stream fed byte-by-byte: the reader must fail as soon as the
		// bytes run out, proving it reads incrementally.
		if _, err := transport.ReadFrame(io.LimitReader(bytes.NewReader(huge), int64(len(huge)))); err == nil {
			t.Fatal("huge frame decoded from short stream")
		}
	})
}

// TestReadFrameBoundedAllocation pins the incremental body read: a frame
// claiming ~1 GB backed by only a few real bytes must fail having allocated
// no more than one read chunk, not the claimed size.
func TestReadFrameBoundedAllocation(t *testing.T) {
	header := []byte{0x3B, 0x9A, 0xCA, 0x00} // claims ~1e9 bytes
	stream := append(header, bytes.Repeat([]byte{1}, 64)...)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if _, err := transport.ReadFrame(bytes.NewReader(stream)); err == nil {
		t.Fatal("decoded")
	}
	runtime.ReadMemStats(&after)
	if grown := after.TotalAlloc - before.TotalAlloc; grown > 64<<20 {
		t.Fatalf("ReadFrame allocated %d bytes for a 68-byte stream", grown)
	}
}
