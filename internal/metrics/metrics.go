// Package metrics aggregates per-rank observations (phase times, buffer
// sizes, counters) into distribution summaries — the min / mean / max view
// that exposes load imbalance, which is the paper's recurring failure mode.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// Summary collects named samples from many ranks concurrently.
type Summary struct {
	mu     sync.Mutex
	series map[string]*Series
	order  []string
}

// Series is the aggregate of one named quantity.
type Series struct {
	Name  string
	Count int
	Sum   float64
	Min   float64
	Max   float64
}

// Mean returns the average sample, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Imbalance returns max/mean — 1.0 means perfectly balanced ranks; the
// paper's skewed workloads show large values here.
func (s *Series) Imbalance() float64 {
	m := s.Mean()
	if m == 0 {
		return 1
	}
	return s.Max / m
}

// NewSummary returns an empty summary.
func NewSummary() *Summary {
	return &Summary{series: make(map[string]*Series)}
}

// Add records one sample of the named quantity. Safe for concurrent use by
// all ranks.
func (m *Summary) Add(name string, v float64) {
	if math.IsNaN(v) {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.series[name]
	if !ok {
		s = &Series{Name: name, Min: math.Inf(1), Max: math.Inf(-1)}
		m.series[name] = s
		m.order = append(m.order, name)
	}
	s.Count++
	s.Sum += v
	if v < s.Min {
		s.Min = v
	}
	if v > s.Max {
		s.Max = v
	}
}

// Get returns the series with the given name, or nil.
func (m *Summary) Get(name string) *Series {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.series[name]
}

// Names returns the series names in first-Add order.
func (m *Summary) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.order...)
}

// Render prints an aligned table of all series.
func (m *Summary) Render(w io.Writer) {
	m.mu.Lock()
	names := append([]string(nil), m.order...)
	m.mu.Unlock()
	fmt.Fprintf(w, "%-24s %8s %12s %12s %12s %8s\n", "metric", "ranks", "min", "mean", "max", "max/avg")
	for _, n := range names {
		s := m.Get(n)
		fmt.Fprintf(w, "%-24s %8d %12.4g %12.4g %12.4g %8.2f\n",
			s.Name, s.Count, s.Min, s.Mean(), s.Max, s.Imbalance())
	}
}

// seriesJSON is the wire form of one Series: the stored aggregate plus the
// derived mean and imbalance, so consumers need no recomputation.
type seriesJSON struct {
	Name      string  `json:"name"`
	Count     int     `json:"count"`
	Sum       float64 `json:"sum"`
	Min       float64 `json:"min"`
	Mean      float64 `json:"mean"`
	Max       float64 `json:"max"`
	Imbalance float64 `json:"imbalance"`
}

// WriteJSON emits the summary as one JSON object, {"series": [...]}, with
// series in first-Add order — the machine-readable counterpart of Render for
// harnesses that collect per-rank distributions from many runs or processes.
func (m *Summary) WriteJSON(w io.Writer) error {
	m.mu.Lock()
	names := append([]string(nil), m.order...)
	m.mu.Unlock()
	out := struct {
		Series []seriesJSON `json:"series"`
	}{Series: make([]seriesJSON, 0, len(names))}
	for _, n := range names {
		s := m.Get(n)
		out.Series = append(out.Series, seriesJSON{
			Name:      s.Name,
			Count:     s.Count,
			Sum:       s.Sum,
			Min:       s.Min,
			Mean:      s.Mean(),
			Max:       s.Max,
			Imbalance: s.Imbalance(),
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// MergeJSON folds a WriteJSON document — typically another process's ranks,
// gathered at rank 0 — into m: counts and sums add, mins and maxes combine,
// so the merged summary is exactly what one process observing every rank
// would have recorded. New series keep first-seen order.
func (m *Summary) MergeJSON(r io.Reader) error {
	var in struct {
		Series []seriesJSON `json:"series"`
	}
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, sj := range in.Series {
		s, ok := m.series[sj.Name]
		if !ok {
			s = &Series{Name: sj.Name, Min: math.Inf(1), Max: math.Inf(-1)}
			m.series[sj.Name] = s
			m.order = append(m.order, sj.Name)
		}
		s.Count += sj.Count
		s.Sum += sj.Sum
		if sj.Count > 0 {
			if sj.Min < s.Min {
				s.Min = sj.Min
			}
			if sj.Max > s.Max {
				s.Max = sj.Max
			}
		}
	}
	return nil
}

// Sorted returns all series ordered by name (stable output for tests).
func (m *Summary) Sorted() []*Series {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Series, 0, len(m.series))
	for _, s := range m.series {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
