package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	m := NewSummary()
	for _, v := range []float64{1, 2, 3, 10} {
		m.Add("time", v)
	}
	s := m.Get("time")
	if s == nil {
		t.Fatal("series missing")
	}
	if s.Count != 4 || s.Min != 1 || s.Max != 10 || s.Sum != 16 {
		t.Errorf("series = %+v", s)
	}
	if s.Mean() != 4 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Imbalance() != 2.5 {
		t.Errorf("Imbalance = %v, want 2.5", s.Imbalance())
	}
}

func TestSummaryEmptyAndNaN(t *testing.T) {
	m := NewSummary()
	if m.Get("nope") != nil {
		t.Error("Get on empty summary")
	}
	m.Add("x", math.NaN()) // ignored
	if m.Get("x") != nil {
		t.Error("NaN created a series")
	}
	var s Series
	if s.Mean() != 0 || s.Imbalance() != 1 {
		t.Error("zero-series accessors wrong")
	}
}

func TestSummaryOrderAndRender(t *testing.T) {
	m := NewSummary()
	m.Add("b-second", 1)
	m.Add("a-first", 2)
	m.Add("b-second", 3)
	if names := m.Names(); len(names) != 2 || names[0] != "b-second" {
		t.Errorf("Names = %v (want first-Add order)", names)
	}
	if sorted := m.Sorted(); sorted[0].Name != "a-first" {
		t.Errorf("Sorted[0] = %s", sorted[0].Name)
	}
	var sb strings.Builder
	m.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "b-second") || !strings.Contains(out, "max/avg") {
		t.Errorf("render:\n%s", out)
	}
}

func TestSummaryConcurrent(t *testing.T) {
	m := NewSummary()
	var wg sync.WaitGroup
	for r := 0; r < 16; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				m.Add("phase", float64(r))
			}
		}(r)
	}
	wg.Wait()
	s := m.Get("phase")
	if s.Count != 1600 || s.Min != 0 || s.Max != 15 {
		t.Errorf("series = %+v", s)
	}
}

// Property: Min <= Mean <= Max and Sum = Count * Mean for any sample set.
func TestSummaryInvariantsProperty(t *testing.T) {
	f := func(vals []float64) bool {
		m := NewSummary()
		n := 0
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Keep magnitudes realistic; summing near-max float64 values
			// overflows, which is out of scope for timing metrics.
			v = math.Mod(v, 1e9)
			m.Add("s", v)
			n++
		}
		if n == 0 {
			return true
		}
		s := m.Get("s")
		return s.Count == n && s.Min <= s.Mean()+1e-9 && s.Mean() <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWriteJSON(t *testing.T) {
	m := NewSummary()
	m.Add("map-sec", 1.5)
	m.Add("map-sec", 2.5)
	m.Add("shuffled-bytes", 100)
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Series []struct {
			Name      string  `json:"name"`
			Count     int     `json:"count"`
			Sum       float64 `json:"sum"`
			Min       float64 `json:"min"`
			Mean      float64 `json:"mean"`
			Max       float64 `json:"max"`
			Imbalance float64 `json:"imbalance"`
		} `json:"series"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if len(got.Series) != 2 {
		t.Fatalf("got %d series, want 2", len(got.Series))
	}
	// First-Add order is preserved.
	s := got.Series[0]
	if s.Name != "map-sec" || s.Count != 2 || s.Sum != 4 || s.Min != 1.5 || s.Mean != 2 || s.Max != 2.5 || s.Imbalance != 1.25 {
		t.Fatalf("map-sec series wrong: %+v", s)
	}
	if got.Series[1].Name != "shuffled-bytes" || got.Series[1].Count != 1 {
		t.Fatalf("second series wrong: %+v", got.Series[1])
	}

	// An empty summary emits an empty (but valid, non-null) series list.
	buf.Reset()
	if err := NewSummary().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != `{"series":[]}` {
		t.Fatalf("empty summary: %s", buf.String())
	}
}
