package platform

import "testing"

func TestPresetsPreserveRatios(t *testing.T) {
	// The paper's ratios must survive the 1024x scaling.
	comet := Comet()
	if got := comet.NodeMemory / int64(comet.PageSize); got != 2048 {
		t.Errorf("Comet node/page ratio = %d, want 2048 (128 GB / 64 MB)", got)
	}
	if got := comet.MaxPageSize / comet.PageSize; got != 8 {
		t.Errorf("Comet max/default page ratio = %d, want 8 (512/64)", got)
	}
	mira := Mira()
	if got := mira.NodeMemory / int64(mira.PageSize); got != 256 {
		t.Errorf("Mira node/page ratio = %d, want 256 (16 GB / 64 MB)", got)
	}
	if got := mira.MaxPageSize / mira.PageSize; got != 2 {
		t.Errorf("Mira max/default page ratio = %d, want 2 (128/64)", got)
	}
}

func TestCores(t *testing.T) {
	if got := Comet().CoresPerNode; got != 24 {
		t.Errorf("Comet cores = %d, want 24", got)
	}
	if got := Mira().CoresPerNode; got != 16 {
		t.Errorf("Mira cores = %d, want 16", got)
	}
}

func TestSharers(t *testing.T) {
	comet := Comet()
	if got := comet.Sharers(1); got != 24 {
		t.Errorf("Comet Sharers(1) = %d, want 24", got)
	}
	if got := comet.Sharers(64); got != 64*24 {
		t.Errorf("Comet Sharers(64) = %d, want %d", got, 64*24)
	}
	mira := Mira()
	if got := mira.Sharers(1); got != 16 {
		t.Errorf("Mira Sharers(1) = %d, want 16", got)
	}
	// Beyond the forwarding ratio, contention per forwarding node saturates.
	if got := mira.Sharers(1024); got != 128*16 {
		t.Errorf("Mira Sharers(1024) = %d, want %d", got, 128*16)
	}
}

func TestSharersMinimum(t *testing.T) {
	p := &Platform{CoresPerNode: 0, IOForwardRatio: 1}
	if got := p.Sharers(0); got != 1 {
		t.Errorf("Sharers floor = %d, want 1", got)
	}
}

func TestMiraSlowerThanComet(t *testing.T) {
	c, m := Comet(), Mira()
	if m.MapCostPerByte <= c.MapCostPerByte {
		t.Error("Mira per-byte map cost should exceed Comet's (A2 vs Xeon)")
	}
	if m.NodeMemory >= c.NodeMemory {
		t.Error("Mira node memory should be smaller than Comet's")
	}
}

func TestFSFactories(t *testing.T) {
	p := Comet()
	in := p.InputFSFor(2)
	sp := p.SpillFSFor(2)
	if in == nil || sp == nil {
		t.Fatal("nil fs")
	}
}
