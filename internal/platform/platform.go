// Package platform models the two evaluation machines of the paper — the
// XSEDE Comet cluster (2x Intel Xeon E5-2680v3, 24 cores and 128 GB per
// node, FDR InfiniBand, Lustre) and the IBM BG/Q Mira (16 PowerPC A2 cores
// and 16 GB per node, 5D torus, GPFS behind 1:128 I/O forwarding nodes).
//
// All byte quantities are scaled down by Scale (1024x) so the paper's
// 256 MB - 64 GB experiments run on a laptop in seconds: the paper's 64 MB
// page becomes 64 KiB, Comet's 128 GB node becomes 128 MiB, and a "1G"
// dataset becomes 1 MiB. Every ratio that drives the paper's results
// (dataset/page, dataset/node-memory, buffer/page) is preserved exactly.
//
// The cost constants are *effective* values calibrated so that simulated
// execution times of scaled workloads land in the ranges the paper reports
// for the full-size workloads (e.g. WordCount on a "1G" dataset on one Comet
// node takes a few simulated seconds, and the out-of-core cliff of Figure 1
// reaches three orders of magnitude). They are not microarchitectural
// measurements.
package platform

import (
	"mimir/internal/core"
	"mimir/internal/pfs"
	"mimir/internal/simtime"
)

// Scale is the factor by which all dataset, page, buffer, and node-memory
// sizes are divided relative to the paper.
const Scale = 1024

// Platform describes one evaluation machine.
type Platform struct {
	Name string
	// CoresPerNode is the number of MPI ranks placed per node (the paper
	// runs one rank per core).
	CoresPerNode int
	// NodeMemory is the usable memory per node in scaled bytes.
	NodeMemory int64
	// PageSize is the default buffer page size in scaled bytes (the paper's
	// 64 MB default for both frameworks).
	PageSize int
	// MaxPageSize is the largest MR-MPI page size the node supports (512 MB
	// on Comet, 128 MB on Mira in the paper), scaled.
	MaxPageSize int
	// Net is the interconnect cost model.
	Net simtime.NetworkModel
	// InputFS models streaming reads of input datasets from the parallel
	// file system.
	InputFS pfs.Config
	// SpillFS models MR-MPI's out-of-core page traffic: small, latency-bound
	// writes and re-reads that achieve far lower effective bandwidth than
	// streaming input reads. This is what produces Figure 1's cliff.
	SpillFS pfs.Config
	// IOForwardRatio is the compute-to-I/O-forwarding-node ratio (128 on
	// Mira, 1 on Comet where every node mounts Lustre directly).
	IOForwardRatio int

	// Compute cost constants, in effective seconds.
	MapCostPerByte    float64 // user map processing per input byte
	KVCostPerByte     float64 // per intermediate KV byte handled (hash, copy, insert)
	PerRecordCost     float64 // fixed per-KV overhead
	ReduceCostPerByte float64 // convert + user reduce per intermediate byte
}

// KiB and MiB are scaled-size helpers: in paper terms, MiB reads as "GB".
const (
	KiB = 1 << 10
	MiB = 1 << 20
)

// Comet returns the model of SDSC's Comet cluster.
func Comet() *Platform {
	return &Platform{
		Name:         "Comet",
		CoresPerNode: 24,
		NodeMemory:   128 * MiB, // 128 GB
		PageSize:     64 * KiB,  // 64 MB
		MaxPageSize:  512 * KiB, // 512 MB
		Net:          simtime.NetworkModel{Alpha: 5e-6, Beta: 6e6},
		InputFS:      pfs.Config{Bandwidth: 2e6, Latency: 1e-4},
		SpillFS:      pfs.Config{Bandwidth: 2e5, Latency: 2e-3},

		IOForwardRatio:    1,
		MapCostPerByte:    2.0e-5,
		KVCostPerByte:     1.0e-5,
		PerRecordCost:     2.0e-7,
		ReduceCostPerByte: 1.0e-5,
	}
}

// Mira returns the model of Argonne's Mira BG/Q system. The PowerPC A2
// cores are far slower than Comet's Xeons, the node has only 16 GB, and all
// I/O funnels through forwarding nodes shared by 128 compute nodes.
func Mira() *Platform {
	return &Platform{
		Name:         "Mira",
		CoresPerNode: 16,
		NodeMemory:   16 * MiB,  // 16 GB
		PageSize:     64 * KiB,  // 64 MB
		MaxPageSize:  128 * KiB, // 128 MB
		Net:          simtime.NetworkModel{Alpha: 3e-6, Beta: 1.8e6},
		InputFS:      pfs.Config{Bandwidth: 8e5, Latency: 5e-4},
		SpillFS:      pfs.Config{Bandwidth: 2e4, Latency: 1e-2},

		IOForwardRatio:    128,
		MapCostPerByte:    2.0e-4,
		KVCostPerByte:     1.0e-4,
		PerRecordCost:     2.0e-6,
		ReduceCostPerByte: 1.0e-4,
	}
}

// Laptop returns a small unconstrained platform for examples and unit tests:
// generous memory, negligible network and I/O costs.
func Laptop() *Platform {
	return &Platform{
		Name:           "Laptop",
		CoresPerNode:   4,
		NodeMemory:     0, // unlimited
		PageSize:       64 * KiB,
		MaxPageSize:    512 * KiB,
		Net:            simtime.NetworkModel{Alpha: 1e-7, Beta: 1e9},
		InputFS:        pfs.Config{Bandwidth: 1e9},
		SpillFS:        pfs.Config{Bandwidth: 1e8},
		IOForwardRatio: 1,

		MapCostPerByte:    1e-9,
		KVCostPerByte:     1e-9,
		PerRecordCost:     1e-9,
		ReduceCostPerByte: 1e-9,
	}
}

// Costs returns the platform's compute cost constants in the form the
// engines consume.
func (p *Platform) Costs() core.Costs {
	return core.Costs{
		MapPerByte:    p.MapCostPerByte,
		KVPerByte:     p.KVCostPerByte,
		PerRecord:     p.PerRecordCost,
		ReducePerByte: p.ReduceCostPerByte,
	}
}

// Sharers returns the pfs contention divisor for a job running on the given
// number of nodes: on Comet every rank in the job shares the Lustre
// bandwidth; on Mira contention is bounded by the ranks funneling through
// one I/O forwarding node (128 nodes per forwarding node).
func (p *Platform) Sharers(nodes int) int {
	n := nodes
	if p.IOForwardRatio > 1 && n > p.IOForwardRatio {
		n = p.IOForwardRatio
	}
	s := n * p.CoresPerNode
	if s < 1 {
		s = 1
	}
	return s
}

// InputFSFor returns an input file system configured for a job on the given
// number of nodes. Streaming input reads see per-client bandwidth (Lustre
// and GPFS stripe across servers, so aggregate read bandwidth grows with
// the client count); only the spill path is modeled as contended.
func (p *Platform) InputFSFor(nodes int) *pfs.FS {
	cfg := p.InputFS
	cfg.Sharers = 1
	return pfs.New(cfg)
}

// SpillFSFor returns a spill file system configured for a job on the given
// number of nodes.
func (p *Platform) SpillFSFor(nodes int) *pfs.FS {
	cfg := p.SpillFS
	cfg.Sharers = p.Sharers(nodes)
	return pfs.New(cfg)
}
