package mpi

import (
	"errors"
	"fmt"
	"testing"
)

func TestIsendIrecv(t *testing.T) {
	w := testWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			req := c.Isend(1, 5, []byte("async"))
			_, _, _, err := req.Wait()
			return err
		}
		req := c.Irecv(0, 5)
		data, src, tag, err := req.Wait()
		if err != nil {
			return err
		}
		if string(data) != "async" || src != 0 || tag != 5 {
			return fmt.Errorf("Irecv got %q src=%d tag=%d", data, src, tag)
		}
		// A second Wait returns the same result.
		data2, _, _, err := req.Wait()
		if err != nil || string(data2) != "async" {
			return fmt.Errorf("re-Wait = %q, %v", data2, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIrecvTest(t *testing.T) {
	w := testWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			// Rank 1 sends only after the barrier, so the first Test (before
			// our barrier) cannot observe a message.
			req := c.Irecv(1, 3)
			done, err := req.Test()
			if err != nil {
				return err
			}
			if done {
				return errors.New("Test reported done before any send")
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			// Poll until the message lands.
			for {
				done, err := req.Test()
				if err != nil {
					return err
				}
				if done {
					break
				}
			}
			data, _, _, err := req.Wait()
			if err != nil {
				return err
			}
			if string(data) != "polled" {
				return fmt.Errorf("polled recv = %q", data)
			}
			return nil
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		return c.Send(0, 3, []byte("polled"))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitAll(t *testing.T) {
	const p = 4
	w := testWorld(p)
	err := w.Run(func(c *Comm) error {
		var reqs []*Request
		for dst := 0; dst < p; dst++ {
			if dst != c.Rank() {
				reqs = append(reqs, c.Isend(dst, c.Rank(), []byte{byte(c.Rank())}))
			}
		}
		for src := 0; src < p; src++ {
			if src != c.Rank() {
				reqs = append(reqs, c.Irecv(src, src))
			}
		}
		return WaitAll(reqs...)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterv(t *testing.T) {
	const p = 3
	w := testWorld(p)
	err := w.Run(func(c *Comm) error {
		var bufs [][]byte
		if c.Rank() == 1 {
			bufs = [][]byte{[]byte("zero"), []byte("one"), []byte("two")}
		}
		got, err := c.Scatterv(bufs, 1)
		if err != nil {
			return err
		}
		want := []string{"zero", "one", "two"}[c.Rank()]
		if string(got) != want {
			return fmt.Errorf("rank %d got %q, want %q", c.Rank(), got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScattervValidation(t *testing.T) {
	w := testWorld(1)
	err := w.Run(func(c *Comm) error {
		if _, err := c.Scatterv(nil, 9); err == nil {
			return errors.New("bad root accepted")
		}
		if _, err := c.Scatterv([][]byte{{1}, {2}}, 0); err == nil {
			return errors.New("wrong buffer count accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatterInt64(t *testing.T) {
	const p = 4
	w := testWorld(p)
	err := w.Run(func(c *Comm) error {
		// Every rank contributes [r, r, r, r]; element i reduced with sum is
		// 0+1+2+3 = 6 for every i, so each rank receives 6.
		vals := make([]int64, p)
		for i := range vals {
			vals[i] = int64(c.Rank())
		}
		got, err := c.ReduceScatterInt64(vals, OpSum)
		if err != nil {
			return err
		}
		if got != 6 {
			return fmt.Errorf("rank %d got %d, want 6", c.Rank(), got)
		}
		if _, err := c.ReduceScatterInt64([]int64{1}, OpSum); err == nil {
			return errors.New("wrong-length vector accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExscanInt64(t *testing.T) {
	const p = 5
	w := testWorld(p)
	err := w.Run(func(c *Comm) error {
		got, err := c.ExscanInt64(int64(c.Rank()+1), OpSum)
		if err != nil {
			return err
		}
		// Exclusive prefix sums of 1,2,3,4,5: 0,1,3,6,10.
		want := []int64{0, 1, 3, 6, 10}[c.Rank()]
		if got != want {
			return fmt.Errorf("rank %d exscan = %d, want %d", c.Rank(), got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIrecvAbort(t *testing.T) {
	w := testWorld(2)
	boom := errors.New("boom")
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return boom
		}
		req := c.Irecv(0, 0)
		_, _, _, err := req.Wait()
		if !errors.Is(err, ErrAborted) {
			return fmt.Errorf("Wait after abort = %v", err)
		}
		done, err := req.Test()
		if !done || !errors.Is(err, ErrAborted) {
			return fmt.Errorf("Test after abort = %v, %v", done, err)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatal(err)
	}
}
