package mpi

import (
	"mimir/internal/simtime"
	"mimir/internal/transport"
)

// AnySource and AnyTag are wildcards for Recv, mirroring MPI_ANY_SOURCE and
// MPI_ANY_TAG.
const (
	AnySource = transport.AnySource
	AnyTag    = transport.AnyTag
)

// Send delivers a copy of data to rank dst with the given tag. Send is
// buffered (it does not wait for a matching Recv), like an eager-protocol
// MPI_Send.
func (c *Comm) Send(dst, tag int, data []byte) error {
	ck := c.Clock()
	if c.world.wall {
		t0 := ck.Now()
		if err := c.ep.Send(dst, tag, data, t0); err != nil {
			return err
		}
		ck.ObserveSpan(ck.Now()-t0, simtime.Comm)
	} else {
		ck.Advance(c.world.net.PointToPoint(len(data)), simtime.Comm)
		if err := c.ep.Send(dst, tag, data, ck.Now()); err != nil {
			return err
		}
	}
	c.world.trace(c.rank, "send", len(data))
	return nil
}

// Recv blocks until a message matching (src, tag) arrives and returns its
// payload together with the actual source and tag. Use AnySource / AnyTag as
// wildcards. The receiver's simulated clock is advanced to at least the
// message's network arrival time; a wall clock records the blocking span as
// Comm time.
func (c *Comm) Recv(src, tag int) (data []byte, actualSrc, actualTag int, err error) {
	ck := c.Clock()
	t0 := ck.Now()
	m, err := c.ep.Recv(src, tag)
	if err != nil {
		return nil, 0, 0, err
	}
	if c.world.wall {
		ck.ObserveSpan(ck.Now()-t0, simtime.Comm)
	} else {
		ck.SyncTo(m.Time)
	}
	c.world.trace(c.rank, "recv", len(m.Data))
	return m.Data, m.Src, m.Tag, nil
}
