package mpi

import (
	"sync"

	"mimir/internal/simtime"
)

// AnySource and AnyTag are wildcards for Recv, mirroring MPI_ANY_SOURCE and
// MPI_ANY_TAG.
const (
	AnySource = -1
	AnyTag    = -1
)

type message struct {
	src, tag int
	data     []byte
	// t is the sender's simulated completion time; the receiver's clock
	// cannot observe the message before it.
	t float64
}

// mailbox is one rank's unbounded incoming-message queue with (src, tag)
// matching in arrival order.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []message
	aborted bool
	abortEr error
}

func newMailbox() *mailbox {
	b := &mailbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) abort(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.aborted {
		b.aborted = true
		b.abortEr = err
		b.cond.Broadcast()
	}
}

func (b *mailbox) put(m message) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		return b.abortEr
	}
	b.queue = append(b.queue, m)
	b.cond.Broadcast()
	return nil
}

func (b *mailbox) get(src, tag int) (message, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if b.aborted {
			return message{}, b.abortEr
		}
		for i, m := range b.queue {
			if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
				b.queue = append(b.queue[:i], b.queue[i+1:]...)
				return m, nil
			}
		}
		b.cond.Wait()
	}
}

// Send delivers a copy of data to rank dst with the given tag. Send is
// buffered (it does not wait for a matching Recv), like an eager-protocol
// MPI_Send.
func (c *Comm) Send(dst, tag int, data []byte) error {
	cost := c.world.net.PointToPoint(len(data))
	c.Clock().Advance(cost, simtime.Comm)
	c.world.trace(c.rank, "send", len(data))
	return c.world.boxes[dst].put(message{
		src:  c.rank,
		tag:  tag,
		data: append([]byte(nil), data...),
		t:    c.Clock().Now(),
	})
}

// Recv blocks until a message matching (src, tag) arrives and returns its
// payload together with the actual source and tag. Use AnySource / AnyTag as
// wildcards. The receiver's simulated clock is advanced to at least the
// message's network arrival time.
func (c *Comm) Recv(src, tag int) (data []byte, actualSrc, actualTag int, err error) {
	m, err := c.world.boxes[c.rank].get(src, tag)
	if err != nil {
		return nil, 0, 0, err
	}
	c.Clock().SyncTo(m.t)
	c.world.trace(c.rank, "recv", len(m.data))
	return m.data, m.src, m.tag, nil
}
