package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"

	"mimir/internal/simtime"
)

func testWorld(size int) *World {
	return NewWorld(Config{Size: size, Net: simtime.NetworkModel{Alpha: 1e-6, Beta: 1e9}})
}

func TestWorldSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewWorld(size=0) did not panic")
		}
	}()
	NewWorld(Config{Size: 0})
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	w := testWorld(4)
	err := w.Run(func(c *Comm) error {
		// Ranks do different amounts of "work" before the barrier.
		c.Clock().Advance(float64(c.Rank()), simtime.Compute)
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Clock().Now() < 3.0 {
			return fmt.Errorf("rank %d clock %v after barrier, want >= 3", c.Rank(), c.Clock().Now())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallvExchange(t *testing.T) {
	const p = 5
	w := testWorld(p)
	err := w.Run(func(c *Comm) error {
		send := make([][]byte, p)
		for dst := 0; dst < p; dst++ {
			send[dst] = []byte(fmt.Sprintf("from%d-to%d", c.Rank(), dst))
		}
		recv, err := c.Alltoallv(send)
		if err != nil {
			return err
		}
		for src := 0; src < p; src++ {
			want := fmt.Sprintf("from%d-to%d", src, c.Rank())
			if string(recv[src]) != want {
				return fmt.Errorf("rank %d: recv[%d] = %q, want %q", c.Rank(), src, recv[src], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallvNilAndEmpty(t *testing.T) {
	w := testWorld(3)
	err := w.Run(func(c *Comm) error {
		send := make([][]byte, 3) // all nil
		recv, err := c.Alltoallv(send)
		if err != nil {
			return err
		}
		for i, b := range recv {
			if len(b) != 0 {
				return fmt.Errorf("recv[%d] = %q, want empty", i, b)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallvWrongLength(t *testing.T) {
	w := testWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			_, err := c.Alltoallv(make([][]byte, 1))
			if err == nil {
				return errors.New("Alltoallv accepted wrong-length send")
			}
			c.Abort(err)
			return nil
		}
		// Rank 1 would block forever; the abort from rank 0 must release it.
		_, err := c.Alltoallv(make([][]byte, 2))
		if !errors.Is(err, ErrAborted) {
			return fmt.Errorf("rank 1 got %v, want ErrAborted", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: Alltoallv conserves data — the multiset of (src, dst, payload)
// triples sent equals the multiset received, for random payload shapes.
func TestAlltoallvConservationProperty(t *testing.T) {
	f := func(seed uint32) bool {
		p := int(seed%6) + 2
		w := testWorld(p)
		sent := make([][]string, p)
		received := make([][]string, p)
		err := w.Run(func(c *Comm) error {
			send := make([][]byte, p)
			for dst := 0; dst < p; dst++ {
				n := int((seed * uint32(c.Rank()*31+dst*7+1)) % 64)
				payload := bytes.Repeat([]byte{byte(c.Rank()), byte(dst)}, n)
				send[dst] = payload
				sent[c.Rank()] = append(sent[c.Rank()], fmt.Sprintf("%d>%d:%x", c.Rank(), dst, payload))
			}
			recv, err := c.Alltoallv(send)
			if err != nil {
				return err
			}
			for src := 0; src < p; src++ {
				received[c.Rank()] = append(received[c.Rank()], fmt.Sprintf("%d>%d:%x", src, c.Rank(), recv[src]))
			}
			return nil
		})
		if err != nil {
			return false
		}
		var all1, all2 []string
		for r := 0; r < p; r++ {
			all1 = append(all1, sent[r]...)
			all2 = append(all2, received[r]...)
		}
		sort.Strings(all1)
		sort.Strings(all2)
		if len(all1) != len(all2) {
			return false
		}
		for i := range all1 {
			if all1[i] != all2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestAllreduceInt64(t *testing.T) {
	const p = 6
	w := testWorld(p)
	err := w.Run(func(c *Comm) error {
		r := int64(c.Rank())
		vals := []int64{r, -r, 10 + r}
		got, err := c.AllreduceInt64(vals, OpSum)
		if err != nil {
			return err
		}
		want := []int64{15, -15, 75} // sum over ranks 0..5
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("sum[%d] = %d, want %d", i, got[i], want[i])
			}
		}
		gotMax, err := c.AllreduceInt64([]int64{r}, OpMax)
		if err != nil {
			return err
		}
		if gotMax[0] != 5 {
			return fmt.Errorf("max = %d, want 5", gotMax[0])
		}
		gotMin, err := c.AllreduceInt64([]int64{r}, OpMin)
		if err != nil {
			return err
		}
		if gotMin[0] != 0 {
			return fmt.Errorf("min = %d, want 0", gotMin[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	const p = 4
	w := testWorld(p)
	err := w.Run(func(c *Comm) error {
		ints, err := c.AllgatherInt64(int64(c.Rank() * 100))
		if err != nil {
			return err
		}
		for i := 0; i < p; i++ {
			if ints[i] != int64(i*100) {
				return fmt.Errorf("AllgatherInt64[%d] = %d, want %d", i, ints[i], i*100)
			}
		}
		bufs, err := c.Allgatherv([]byte(fmt.Sprintf("rank%d", c.Rank())))
		if err != nil {
			return err
		}
		for i := 0; i < p; i++ {
			if string(bufs[i]) != fmt.Sprintf("rank%d", i) {
				return fmt.Errorf("Allgatherv[%d] = %q", i, bufs[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastAndGatherv(t *testing.T) {
	const p = 4
	w := testWorld(p)
	err := w.Run(func(c *Comm) error {
		var payload []byte
		if c.Rank() == 2 {
			payload = []byte("broadcast-me")
		}
		got, err := c.Bcast(payload, 2)
		if err != nil {
			return err
		}
		if string(got) != "broadcast-me" {
			return fmt.Errorf("rank %d Bcast got %q", c.Rank(), got)
		}
		all, err := c.Gatherv([]byte{byte(c.Rank())}, 0)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for i := 0; i < p; i++ {
				if len(all[i]) != 1 || all[i][0] != byte(i) {
					return fmt.Errorf("Gatherv[%d] = %v", i, all[i])
				}
			}
		} else if all != nil {
			return fmt.Errorf("rank %d got non-nil Gatherv result", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastBadRoot(t *testing.T) {
	w := testWorld(1)
	err := w.Run(func(c *Comm) error {
		if _, err := c.Bcast(nil, 5); err == nil {
			return errors.New("Bcast accepted out-of-range root")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecv(t *testing.T) {
	w := testWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 7, []byte("hello")); err != nil {
				return err
			}
			if err := c.Send(1, 9, []byte("world")); err != nil {
				return err
			}
			return nil
		}
		// Receive out of order by tag.
		data, src, tag, err := c.Recv(0, 9)
		if err != nil {
			return err
		}
		if string(data) != "world" || src != 0 || tag != 9 {
			return fmt.Errorf("Recv(0,9) = %q src=%d tag=%d", data, src, tag)
		}
		data, _, _, err = c.Recv(AnySource, AnyTag)
		if err != nil {
			return err
		}
		if string(data) != "hello" {
			return fmt.Errorf("Recv(any,any) = %q, want hello", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvClockCausality(t *testing.T) {
	w := testWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Clock().Advance(5, simtime.Compute)
			return c.Send(1, 0, []byte("x"))
		}
		_, _, _, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if c.Clock().Now() < 5 {
			return fmt.Errorf("receiver clock %v, want >= 5 (message causality)", c.Clock().Now())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesError(t *testing.T) {
	w := testWorld(4)
	boom := errors.New("boom")
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 2 {
			return boom
		}
		// Other ranks block in a barrier; the abort must release them.
		err := c.Barrier()
		if !errors.Is(err, ErrAborted) {
			return fmt.Errorf("rank %d barrier returned %v, want ErrAborted", c.Rank(), err)
		}
		return err
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run returned %v, want the original boom error", err)
	}
}

func TestAbortReleasesRecv(t *testing.T) {
	w := testWorld(2)
	boom := errors.New("boom")
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return boom
		}
		_, _, _, err := c.Recv(0, 0)
		if !errors.Is(err, ErrAborted) {
			return fmt.Errorf("Recv returned %v, want ErrAborted", err)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run returned %v, want boom", err)
	}
}

func TestCollectivesAfterAbortFail(t *testing.T) {
	w := testWorld(1)
	sentinel := errors.New("sentinel")
	_ = w.Run(func(c *Comm) error {
		c.Abort(sentinel)
		if err := c.Barrier(); !errors.Is(err, ErrAborted) {
			return fmt.Errorf("Barrier after abort: %v", err)
		}
		if _, err := c.Alltoallv(make([][]byte, 1)); !errors.Is(err, ErrAborted) {
			return fmt.Errorf("Alltoallv after abort: %v", err)
		}
		return nil
	})
}

func TestManySequentialCollectives(t *testing.T) {
	// Stress the generation-counted rendezvous reuse.
	const p = 8
	w := testWorld(p)
	var rounds int64
	err := w.Run(func(c *Comm) error {
		for i := 0; i < 200; i++ {
			v, err := c.AllreduceInt64([]int64{1}, OpSum)
			if err != nil {
				return err
			}
			if v[0] != p {
				return fmt.Errorf("round %d: sum = %d, want %d", i, v[0], p)
			}
			atomic.AddInt64(&rounds, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 200*p {
		t.Fatalf("completed %d rank-rounds, want %d", rounds, 200*p)
	}
}

func TestMaxTime(t *testing.T) {
	w := testWorld(3)
	err := w.Run(func(c *Comm) error {
		c.Clock().Advance(float64(c.Rank()+1), simtime.Compute)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.MaxTime(); got != 3 {
		t.Fatalf("MaxTime = %v, want 3", got)
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{OpSum: "sum", OpMax: "max", OpMin: "min", Op(9): "Op(9)"} {
		if got := op.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(op), got, want)
		}
	}
}
