package mpi

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"
)

// TestAbortUnblocksEverythingWithoutLeaks is the abort-robustness regression
// test: a failing rank must unblock peers parked in tagged point-to-point
// receives and in collective rendezvous, and the whole world's goroutines
// must be gone afterwards — an abort that strands even one rank goroutine
// leaks a goroutine per run and eventually a whole iterative job.
func TestAbortUnblocksEverythingWithoutLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	const iters = 20
	for iter := 0; iter < iters; iter++ {
		w := testWorld(8)
		rankErrs := make([]error, 8)
		err := w.Run(func(c *Comm) error {
			var err error
			switch c.Rank() {
			case 0:
				// The failing rank: everyone else is (or will be) parked.
				err = fmt.Errorf("rank 0 failed on purpose (iter %d)", iter)
			case 1, 2:
				// Parked in a tagged p2p receive no one will ever match.
				_, _, _, err = c.Recv(5, 1234)
			case 3:
				// Parked in a wildcard receive.
				_, _, _, err = c.Recv(AnySource, AnyTag)
			case 4:
				// Parked waiting on a posted nonblocking receive.
				_, _, _, err = c.Irecv(6, 77).Wait()
			default:
				// Parked in collective rendezvous (never completes: ranks
				// 0-4 do not join).
				err = c.Barrier()
			}
			rankErrs[c.Rank()] = err
			return err
		})
		if err == nil || errors.Is(err, ErrAborted) {
			t.Fatalf("iter %d: Run returned %v, want the original rank-0 error", iter, err)
		}
		for r := 1; r < 8; r++ {
			if !errors.Is(rankErrs[r], ErrAborted) {
				t.Fatalf("iter %d: rank %d returned %v, want ErrAborted", iter, r, rankErrs[r])
			}
		}
	}

	// All rank goroutines must have exited. Allow the scheduler a moment to
	// reap them and tolerate a little test-framework noise.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after %d aborted worlds\n%s",
				before, runtime.NumGoroutine(), iters, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAbortDuringMixedTraffic aborts while ranks are mid-conversation in a
// mixture of sends, receives, and collectives; no call may hang and every
// surviving rank must see ErrAborted.
func TestAbortDuringMixedTraffic(t *testing.T) {
	for iter := 0; iter < 10; iter++ {
		w := testWorld(6)
		err := w.Run(func(c *Comm) error {
			for round := 0; ; round++ {
				if c.Rank() == 0 && round == 3 {
					return fmt.Errorf("deliberate failure")
				}
				if err := c.Send((c.Rank()+1)%c.Size(), round, []byte("ping")); err != nil {
					return err
				}
				if _, _, _, err := c.Recv((c.Rank()+c.Size()-1)%c.Size(), round); err != nil {
					return err
				}
				if _, err := c.AllreduceInt64([]int64{int64(round)}, OpSum); err != nil {
					return err
				}
			}
		})
		if err == nil {
			t.Fatal("expected an error")
		}
	}
}
