package mpi

import (
	"encoding/binary"
	"fmt"
)

// exchange runs one collective byte exchange on this rank's endpoint and
// settles the clock: a simulated clock synchronizes to the slowest
// participant and charges simCost(recv), a wall clock records the measured
// blocking span. send[i] is delivered to rank i (nil send contributes
// nothing, a pure barrier); the returned buffers are owned by the caller.
func (c *Comm) exchange(send [][]byte, simCost func(recv [][]byte) float64) ([][]byte, error) {
	t0 := c.Clock().Now()
	recv, tmax, err := c.ep.Exchange(send, t0)
	if err != nil {
		return nil, err
	}
	var cost float64
	if !c.world.wall {
		cost = simCost(recv)
	}
	c.settle(t0, tmax, cost)
	return recv, nil
}

// fanOut builds a send array delivering the same buffer to every rank.
func (c *Comm) fanOut(b []byte) [][]byte {
	send := make([][]byte, c.world.size)
	for i := range send {
		send[i] = b
	}
	return send
}

// Barrier blocks until all ranks have entered it and synchronizes simulated
// clocks to the latest participant plus the barrier cost.
func (c *Comm) Barrier() error {
	_, err := c.exchange(nil, func([][]byte) float64 {
		return c.world.net.Barrier(c.world.size)
	})
	if err != nil {
		return err
	}
	c.world.trace(c.rank, "barrier", 0)
	return nil
}

// Alltoallv exchanges variable-sized byte buffers with every rank: send[i]
// goes to rank i, and the returned slice holds recv[i] received from rank i.
// send must have length Size. The returned buffers are copies owned by the
// caller, so send buffers may be reused immediately. A nil entry is
// delivered as an empty buffer.
func (c *Comm) Alltoallv(send [][]byte) ([][]byte, error) {
	if len(send) != c.world.size {
		return nil, fmt.Errorf("mpi: Alltoallv send has %d entries, world size is %d", len(send), c.world.size)
	}
	var sendBytes int
	for _, b := range send {
		sendBytes += len(b)
	}
	recv, err := c.exchange(send, func(recv [][]byte) float64 {
		var recvBytes int
		for _, b := range recv {
			recvBytes += len(b)
		}
		return c.world.net.Alltoallv(c.world.size, sendBytes, recvBytes)
	})
	if err != nil {
		return nil, err
	}
	c.world.trace(c.rank, "alltoallv", sendBytes)
	return recv, nil
}

// Op identifies a reduction operator.
type Op int

// Supported reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
)

// String returns the operator name.
func (o Op) String() string {
	switch o {
	case OpSum:
		return "sum"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

func (o Op) apply(a, b int64) int64 {
	switch o {
	case OpSum:
		return a + b
	case OpMax:
		if b > a {
			return b
		}
		return a
	case OpMin:
		if b < a {
			return b
		}
		return a
	}
	panic("mpi: unknown op")
}

// encodeInt64s packs a vector as big-endian bytes for the wire.
func encodeInt64s(vals []int64) []byte {
	buf := make([]byte, 0, 8*len(vals))
	for _, v := range vals {
		buf = binary.BigEndian.AppendUint64(buf, uint64(v))
	}
	return buf
}

func decodeInt64s(b []byte) []int64 {
	vals := make([]int64, len(b)/8)
	for i := range vals {
		vals[i] = int64(binary.BigEndian.Uint64(b[8*i:]))
	}
	return vals
}

// AllreduceInt64 element-wise reduces vals across all ranks with op and
// returns the reduced vector on every rank. All ranks must pass vectors of
// the same length.
func (c *Comm) AllreduceInt64(vals []int64, op Op) ([]int64, error) {
	recv, err := c.exchange(c.fanOut(encodeInt64s(vals)), func([][]byte) float64 {
		return c.world.net.Reduction(c.world.size, 8*len(vals))
	})
	if err != nil {
		return nil, err
	}
	out := append([]int64(nil), vals...)
	for src, b := range recv {
		if src == c.rank {
			continue
		}
		theirs := decodeInt64s(b)
		if len(theirs) != len(out) {
			panic(fmt.Sprintf("mpi: Allreduce length mismatch: rank %d has %d, rank %d has %d",
				c.rank, len(out), src, len(theirs)))
		}
		for i, v := range theirs {
			out[i] = op.apply(out[i], v)
		}
	}
	c.world.trace(c.rank, "allreduce", 8*len(vals))
	return out, nil
}

// AllgatherInt64 gathers one int64 from every rank; result[i] is rank i's
// value, identical on all ranks.
func (c *Comm) AllgatherInt64(v int64) ([]int64, error) {
	recv, err := c.exchange(c.fanOut(encodeInt64s([]int64{v})), func([][]byte) float64 {
		return c.world.net.Reduction(c.world.size, 8*c.world.size)
	})
	if err != nil {
		return nil, err
	}
	out := make([]int64, c.world.size)
	for src, b := range recv {
		out[src] = int64(binary.BigEndian.Uint64(b))
	}
	c.world.trace(c.rank, "allgather", 8)
	return out, nil
}

// Allgatherv gathers a byte buffer from every rank; result[i] is a copy of
// rank i's buffer, identical on all ranks.
func (c *Comm) Allgatherv(b []byte) ([][]byte, error) {
	out, err := c.exchange(c.fanOut(b), func(recv [][]byte) float64 {
		var total int
		for _, r := range recv {
			total += len(r)
		}
		return c.world.net.Reduction(c.world.size, total)
	})
	if err != nil {
		return nil, err
	}
	c.world.trace(c.rank, "allgatherv", len(b))
	return out, nil
}

// Bcast broadcasts root's buffer to all ranks; every rank (including root)
// receives a copy. Non-root ranks pass their own b, which is ignored.
func (c *Comm) Bcast(b []byte, root int) ([]byte, error) {
	if root < 0 || root >= c.world.size {
		return nil, fmt.Errorf("mpi: Bcast root %d out of range", root)
	}
	var send [][]byte
	if c.rank == root {
		send = c.fanOut(b)
	}
	recv, err := c.exchange(send, func(recv [][]byte) float64 {
		return c.world.net.Reduction(c.world.size, len(recv[root]))
	})
	if err != nil {
		return nil, err
	}
	out := recv[root]
	if out == nil {
		out = []byte{}
	}
	c.world.trace(c.rank, "bcast", len(out))
	return out, nil
}

// Gatherv gathers every rank's buffer at root. On root the result has one
// copied buffer per rank; on other ranks it is nil.
func (c *Comm) Gatherv(b []byte, root int) ([][]byte, error) {
	if root < 0 || root >= c.world.size {
		return nil, fmt.Errorf("mpi: Gatherv root %d out of range", root)
	}
	send := make([][]byte, c.world.size)
	if b == nil {
		b = []byte{}
	}
	send[root] = b
	recv, err := c.exchange(send, func(recv [][]byte) float64 {
		if c.rank != root {
			// Non-root ranks receive nothing; they only pay the latency term.
			return c.world.net.Reduction(c.world.size, 0)
		}
		var total int
		for _, r := range recv {
			total += len(r)
		}
		return c.world.net.Reduction(c.world.size, total)
	})
	if err != nil {
		return nil, err
	}
	if c.rank != root {
		return nil, nil
	}
	return recv, nil
}
