package mpi

import (
	"fmt"

	"mimir/internal/simtime"
)

// Barrier blocks until all ranks have entered it and synchronizes simulated
// clocks to the latest participant plus the barrier cost.
func (c *Comm) Barrier() error {
	tmax, err := c.world.rv.exchange(c.rank, c.Clock().Now(), nil, nil)
	if err != nil {
		return err
	}
	c.Clock().SyncTo(tmax)
	c.Clock().Advance(c.world.net.Barrier(c.world.size), simtime.Comm)
	c.world.trace(c.rank, "barrier", 0)
	return nil
}

// Alltoallv exchanges variable-sized byte buffers with every rank: send[i]
// goes to rank i, and the returned slice holds recv[i] received from rank i.
// send must have length Size. The returned buffers are copies owned by the
// caller, so send buffers may be reused immediately. A nil entry is
// delivered as an empty buffer.
func (c *Comm) Alltoallv(send [][]byte) ([][]byte, error) {
	if len(send) != c.world.size {
		return nil, fmt.Errorf("mpi: Alltoallv send has %d entries, world size is %d", len(send), c.world.size)
	}
	recv := make([][]byte, c.world.size)
	var sendBytes, recvBytes int
	for _, b := range send {
		sendBytes += len(b)
	}
	tmax, err := c.world.rv.exchange(c.rank, c.Clock().Now(), send, func(slots []contribution) {
		for src := 0; src < c.world.size; src++ {
			theirs := slots[src].data.([][]byte)
			buf := theirs[c.rank]
			recv[src] = append([]byte(nil), buf...)
			recvBytes += len(buf)
		}
	})
	if err != nil {
		return nil, err
	}
	c.Clock().SyncTo(tmax)
	c.Clock().Advance(c.world.net.Alltoallv(c.world.size, sendBytes, recvBytes), simtime.Comm)
	c.world.trace(c.rank, "alltoallv", sendBytes)
	return recv, nil
}

// Op identifies a reduction operator.
type Op int

// Supported reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
)

// String returns the operator name.
func (o Op) String() string {
	switch o {
	case OpSum:
		return "sum"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

func (o Op) apply(a, b int64) int64 {
	switch o {
	case OpSum:
		return a + b
	case OpMax:
		if b > a {
			return b
		}
		return a
	case OpMin:
		if b < a {
			return b
		}
		return a
	}
	panic("mpi: unknown op")
}

// AllreduceInt64 element-wise reduces vals across all ranks with op and
// returns the reduced vector on every rank. All ranks must pass vectors of
// the same length.
func (c *Comm) AllreduceInt64(vals []int64, op Op) ([]int64, error) {
	out := append([]int64(nil), vals...)
	tmax, err := c.world.rv.exchange(c.rank, c.Clock().Now(), vals, func(slots []contribution) {
		for src, s := range slots {
			if src == c.rank {
				continue
			}
			theirs := s.data.([]int64)
			if len(theirs) != len(out) {
				panic(fmt.Sprintf("mpi: Allreduce length mismatch: rank %d has %d, rank %d has %d",
					c.rank, len(out), src, len(theirs)))
			}
			for i, v := range theirs {
				out[i] = op.apply(out[i], v)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	c.Clock().SyncTo(tmax)
	c.Clock().Advance(c.world.net.Reduction(c.world.size, 8*len(vals)), simtime.Comm)
	c.world.trace(c.rank, "allreduce", 8*len(vals))
	return out, nil
}

// AllgatherInt64 gathers one int64 from every rank; result[i] is rank i's
// value, identical on all ranks.
func (c *Comm) AllgatherInt64(v int64) ([]int64, error) {
	out := make([]int64, c.world.size)
	tmax, err := c.world.rv.exchange(c.rank, c.Clock().Now(), v, func(slots []contribution) {
		for src, s := range slots {
			out[src] = s.data.(int64)
		}
	})
	if err != nil {
		return nil, err
	}
	c.Clock().SyncTo(tmax)
	c.Clock().Advance(c.world.net.Reduction(c.world.size, 8*c.world.size), simtime.Comm)
	c.world.trace(c.rank, "allgather", 8)
	return out, nil
}

// Allgatherv gathers a byte buffer from every rank; result[i] is a copy of
// rank i's buffer, identical on all ranks.
func (c *Comm) Allgatherv(b []byte) ([][]byte, error) {
	out := make([][]byte, c.world.size)
	var total int
	tmax, err := c.world.rv.exchange(c.rank, c.Clock().Now(), b, func(slots []contribution) {
		for src, s := range slots {
			theirs := s.data.([]byte)
			out[src] = append([]byte(nil), theirs...)
			total += len(theirs)
		}
	})
	if err != nil {
		return nil, err
	}
	c.Clock().SyncTo(tmax)
	c.Clock().Advance(c.world.net.Reduction(c.world.size, total), simtime.Comm)
	c.world.trace(c.rank, "allgatherv", len(b))
	return out, nil
}

// Bcast broadcasts root's buffer to all ranks; every rank (including root)
// receives a copy. Non-root ranks pass their own b, which is ignored.
func (c *Comm) Bcast(b []byte, root int) ([]byte, error) {
	if root < 0 || root >= c.world.size {
		return nil, fmt.Errorf("mpi: Bcast root %d out of range", root)
	}
	var out []byte
	var n int
	tmax, err := c.world.rv.exchange(c.rank, c.Clock().Now(), b, func(slots []contribution) {
		theirs := slots[root].data.([]byte)
		out = append([]byte(nil), theirs...)
		n = len(theirs)
	})
	if err != nil {
		return nil, err
	}
	c.Clock().SyncTo(tmax)
	c.Clock().Advance(c.world.net.Reduction(c.world.size, n), simtime.Comm)
	c.world.trace(c.rank, "bcast", n)
	return out, nil
}

// Gatherv gathers every rank's buffer at root. On root the result has one
// copied buffer per rank; on other ranks it is nil.
func (c *Comm) Gatherv(b []byte, root int) ([][]byte, error) {
	if root < 0 || root >= c.world.size {
		return nil, fmt.Errorf("mpi: Gatherv root %d out of range", root)
	}
	var out [][]byte
	var total int
	tmax, err := c.world.rv.exchange(c.rank, c.Clock().Now(), b, func(slots []contribution) {
		if c.rank != root {
			return
		}
		out = make([][]byte, c.world.size)
		for src, s := range slots {
			theirs := s.data.([]byte)
			out[src] = append([]byte(nil), theirs...)
			total += len(theirs)
		}
	})
	if err != nil {
		return nil, err
	}
	c.Clock().SyncTo(tmax)
	c.Clock().Advance(c.world.net.Reduction(c.world.size, total), simtime.Comm)
	return out, nil
}
