package mpi

import (
	"fmt"
	"io"
	"sync"
)

// Event describes one communication operation for tracing, in the spirit of
// the MPI profiling interface: which rank did what, how many payload bytes
// moved, and at what simulated time the operation completed.
type Event struct {
	Rank    int
	Op      string // "barrier", "alltoallv", "allreduce", "send", "recv", ...
	Bytes   int    // payload bytes this rank contributed
	SimTime float64
}

// Tracer receives events. Implementations must be safe for concurrent use
// by all ranks; see NewLogTracer for a ready-made one.
type Tracer func(Event)

// SetTracer installs a tracer on the world (nil disables tracing). Install
// it before Run; the runtime invokes it synchronously from rank goroutines.
func (w *World) SetTracer(t Tracer) { w.tracer = t }

func (w *World) trace(rank int, op string, bytes int) {
	if w.tracer != nil {
		w.tracer(Event{Rank: rank, Op: op, Bytes: bytes, SimTime: w.clocks[rank].Now()})
	}
}

// NewLogTracer returns a Tracer that writes one line per event to w,
// serialized with an internal lock.
func NewLogTracer(w io.Writer) Tracer {
	var mu sync.Mutex
	return func(ev Event) {
		mu.Lock()
		defer mu.Unlock()
		fmt.Fprintf(w, "t=%.6f rank=%d op=%s bytes=%d\n", ev.SimTime, ev.Rank, ev.Op, ev.Bytes)
	}
}

// CountingTracer tallies events per operation, for tests and quick
// diagnostics.
type CountingTracer struct {
	mu     sync.Mutex
	counts map[string]int
	bytes  map[string]int64
}

// NewCountingTracer returns an empty counting tracer.
func NewCountingTracer() *CountingTracer {
	return &CountingTracer{counts: map[string]int{}, bytes: map[string]int64{}}
}

// Trace is the Tracer function to install.
func (c *CountingTracer) Trace(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counts[ev.Op]++
	c.bytes[ev.Op] += int64(ev.Bytes)
}

// Count returns the number of events of the given op.
func (c *CountingTracer) Count(op string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[op]
}

// Bytes returns the payload bytes traced for the given op.
func (c *CountingTracer) Bytes(op string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes[op]
}
