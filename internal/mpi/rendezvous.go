package mpi

import "sync"

// contribution is what a rank deposits at a collective rendezvous: its
// simulated clock time (for synchronization) and an operation-specific
// payload.
type contribution struct {
	t    float64
	data any
}

// rendezvous implements a reusable, generation-counted barrier with a
// per-rank slot array for data exchange. All ranks call exchange in the same
// order (the SPMD contract), so a single slot array double-gated by two
// barrier phases is sufficient:
//
//	phase A: every rank deposits its contribution, then waits;
//	         (all slots are now complete and frozen)
//	read:    every rank reads whatever slots it needs;
//	phase B: every rank waits again, after which slots may be overwritten.
type rendezvous struct {
	mu      sync.Mutex
	cond    *sync.Cond
	size    int
	arrived int
	gen     uint64
	slots   []contribution
	aborted bool
	abortEr error
}

func newRendezvous(size int) *rendezvous {
	r := &rendezvous{size: size, slots: make([]contribution, size)}
	r.cond = sync.NewCond(&r.mu)
	return r
}

func (r *rendezvous) abort(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.aborted {
		r.aborted = true
		r.abortEr = err
		r.cond.Broadcast()
	}
}

// arrive blocks until all ranks have arrived (one barrier phase).
func (r *rendezvous) arrive() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.aborted {
		return r.abortEr
	}
	gen := r.gen
	r.arrived++
	if r.arrived == r.size {
		r.arrived = 0
		r.gen++
		r.cond.Broadcast()
		return nil
	}
	for r.gen == gen && !r.aborted {
		r.cond.Wait()
	}
	// A generation advance means every rank arrived and this phase
	// completed — even if another rank aborted the world immediately
	// afterwards. Only report the abort when the phase itself can no
	// longer complete.
	if r.gen == gen && r.aborted {
		return r.abortEr
	}
	return nil
}

// exchange deposits this rank's contribution, waits for everyone, invokes
// read with the complete frozen slot array, then waits again so slots can be
// reused. It returns the maximum clock time across all contributions, which
// the caller uses to synchronize its simulated clock.
func (r *rendezvous) exchange(rank int, now float64, data any, read func(slots []contribution)) (tmax float64, err error) {
	r.mu.Lock()
	if r.aborted {
		err := r.abortEr
		r.mu.Unlock()
		return 0, err
	}
	r.slots[rank] = contribution{t: now, data: data}
	r.mu.Unlock()

	if err := r.arrive(); err != nil {
		return 0, err
	}
	for _, s := range r.slots {
		if s.t > tmax {
			tmax = s.t
		}
	}
	if read != nil {
		read(r.slots)
	}
	if err := r.arrive(); err != nil {
		return 0, err
	}
	return tmax, nil
}
