package mpi

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"mimir/internal/simtime"
)

func TestIalltoallvExchange(t *testing.T) {
	const p = 5
	w := testWorld(p)
	err := w.Run(func(c *Comm) error {
		send := make([][]byte, p)
		for dst := 0; dst < p; dst++ {
			send[dst] = []byte(fmt.Sprintf("from%d-to%d", c.Rank(), dst))
		}
		req := c.Ialltoallv(send)
		// Send buffers may be reused as soon as the post returns.
		for dst := range send {
			for i := range send[dst] {
				send[dst][i] = 'x'
			}
		}
		recv, err := req.Wait()
		if err != nil {
			return err
		}
		for src := 0; src < p; src++ {
			want := fmt.Sprintf("from%d-to%d", src, c.Rank())
			if string(recv[src]) != want {
				return fmt.Errorf("rank %d: recv[%d] = %q, want %q", c.Rank(), src, recv[src], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIalltoallvMatchesBlockingWhenNoCompute(t *testing.T) {
	// With no computation between post and wait, the nonblocking exchange
	// must charge exactly what the blocking one does.
	const p = 4
	payload := func() [][]byte {
		send := make([][]byte, p)
		for i := range send {
			send[i] = []byte("0123456789")
		}
		return send
	}
	var blocking, nonblocking float64
	w := testWorld(p)
	err := w.Run(func(c *Comm) error {
		if _, err := c.Alltoallv(payload()); err != nil {
			return err
		}
		if c.Rank() == 0 {
			blocking = c.Clock().Now()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	w = testWorld(p)
	err = w.Run(func(c *Comm) error {
		req := c.Ialltoallv(payload())
		if _, err := req.Wait(); err != nil {
			return err
		}
		if req.OverlapSaved() != 0 {
			return fmt.Errorf("rank %d saved %v with no compute, want 0", c.Rank(), req.OverlapSaved())
		}
		if c.Rank() == 0 {
			nonblocking = c.Clock().Now()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(blocking-nonblocking) > 1e-12 {
		t.Errorf("idle Ialltoallv time %v != blocking Alltoallv time %v", nonblocking, blocking)
	}
}

func TestIalltoallvOverlapsCompute(t *testing.T) {
	// Compute between post and wait longer than the comm window: the wait
	// is free, the full window is saved, and Test reports completion once
	// the clock passes the background finish time.
	const p = 4
	w := testWorld(p)
	err := w.Run(func(c *Comm) error {
		send := make([][]byte, p)
		for i := range send {
			send[i] = make([]byte, 1000)
		}
		req := c.Ialltoallv(send)
		if req.Test() {
			return errors.New("request complete immediately after post")
		}
		c.Clock().Advance(1.0, simtime.Compute) // far longer than the net cost
		if !req.Test() {
			return errors.New("request not complete after covering compute")
		}
		before := c.Clock().Now()
		if _, err := req.Wait(); err != nil {
			return err
		}
		if c.Clock().Now() != before {
			return fmt.Errorf("overlapped Wait advanced the clock %v -> %v", before, c.Clock().Now())
		}
		if req.OverlapSaved() <= 0 {
			return errors.New("no overlap saving recorded")
		}
		// Wait is idempotent: a second call charges nothing more.
		if _, err := req.Wait(); err != nil {
			return err
		}
		if c.Clock().Now() != before {
			return errors.New("second Wait advanced the clock")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIalltoallvWrongLength(t *testing.T) {
	w := testWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			req := c.Ialltoallv(make([][]byte, 1))
			if _, err := req.Wait(); err == nil {
				return errors.New("Ialltoallv accepted wrong-length send")
			} else {
				c.Abort(err)
			}
			return nil
		}
		// Rank 1 would block forever; the abort from rank 0 must release it.
		req := c.Ialltoallv(make([][]byte, 2))
		if _, err := req.Wait(); !errors.Is(err, ErrAborted) {
			return fmt.Errorf("rank 1 got %v, want ErrAborted", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
