package mpi

import (
	"errors"
	"fmt"
	"testing"

	"mimir/internal/simtime"
)

func TestSingleRankCollectives(t *testing.T) {
	// Degenerate world of one rank: every collective must still work.
	w := testWorld(1)
	err := w.Run(func(c *Comm) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		recv, err := c.Alltoallv([][]byte{[]byte("self")})
		if err != nil {
			return err
		}
		if string(recv[0]) != "self" {
			return fmt.Errorf("self exchange = %q", recv[0])
		}
		sum, err := c.AllreduceInt64([]int64{7}, OpSum)
		if err != nil {
			return err
		}
		if sum[0] != 7 {
			return fmt.Errorf("self allreduce = %d", sum[0])
		}
		b, err := c.Bcast([]byte("x"), 0)
		if err != nil || string(b) != "x" {
			return fmt.Errorf("self bcast = %q, %v", b, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfSendRecv(t *testing.T) {
	w := testWorld(1)
	err := w.Run(func(c *Comm) error {
		if err := c.Send(0, 1, []byte("loop")); err != nil {
			return err
		}
		data, src, tag, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if string(data) != "loop" || src != 0 || tag != 1 {
			return fmt.Errorf("self recv = %q src=%d tag=%d", data, src, tag)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInterleavedP2PAndCollectives(t *testing.T) {
	// Point-to-point traffic in flight must not disturb collectives.
	const p = 4
	w := testWorld(p)
	err := w.Run(func(c *Comm) error {
		next := (c.Rank() + 1) % p
		for i := 0; i < 20; i++ {
			if err := c.Send(next, i, []byte{byte(i)}); err != nil {
				return err
			}
			sum, err := c.AllreduceInt64([]int64{1}, OpSum)
			if err != nil {
				return err
			}
			if sum[0] != p {
				return fmt.Errorf("round %d: sum=%d", i, sum[0])
			}
			data, _, tag, err := c.Recv(AnySource, i)
			if err != nil {
				return err
			}
			if tag != i || data[0] != byte(i) {
				return fmt.Errorf("round %d: tag=%d data=%v", i, tag, data)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestManyRanksBarrierStorm(t *testing.T) {
	// A wide world exercising the generation barrier under contention.
	const p = 64
	w := testWorld(p)
	err := w.Run(func(c *Comm) error {
		for i := 0; i < 50; i++ {
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallvLargePayloads(t *testing.T) {
	const p = 3
	w := testWorld(p)
	err := w.Run(func(c *Comm) error {
		send := make([][]byte, p)
		for dst := range send {
			send[dst] = make([]byte, 1<<20)
			for i := range send[dst] {
				send[dst][i] = byte(c.Rank()*31 + dst*7 + i)
			}
		}
		recv, err := c.Alltoallv(send)
		if err != nil {
			return err
		}
		for src := range recv {
			if len(recv[src]) != 1<<20 {
				return fmt.Errorf("recv[%d] len %d", src, len(recv[src]))
			}
			// Spot check contents.
			for _, i := range []int{0, 12345, 1<<20 - 1} {
				want := byte(src*31 + c.Rank()*7 + i)
				if recv[src][i] != want {
					return fmt.Errorf("recv[%d][%d] = %d, want %d", src, i, recv[src][i], want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvBufferIsolation(t *testing.T) {
	// Buffers returned by Alltoallv must be private copies: mutating a
	// received buffer must not affect other ranks or later rounds.
	const p = 2
	w := testWorld(p)
	err := w.Run(func(c *Comm) error {
		mine := []byte{1, 2, 3}
		for round := 0; round < 3; round++ {
			recv, err := c.Alltoallv([][]byte{mine, mine})
			if err != nil {
				return err
			}
			for i := range recv {
				for j := range recv[i] {
					recv[i][j] = 0xEE // scribble
				}
			}
			if mine[0] != 1 || mine[1] != 2 || mine[2] != 3 {
				return errors.New("send buffer corrupted by receiver scribbling")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestClockAdvancesMonotonically(t *testing.T) {
	w := testWorld(3)
	err := w.Run(func(c *Comm) error {
		prev := c.Clock().Now()
		ops := []func() error{
			func() error { return c.Barrier() },
			func() error { _, err := c.AllreduceInt64([]int64{1}, OpMax); return err },
			func() error { _, err := c.Alltoallv(make([][]byte, 3)); return err },
			func() error { _, err := c.Allgatherv([]byte("x")); return err },
		}
		for i, op := range ops {
			if err := op(); err != nil {
				return err
			}
			now := c.Clock().Now()
			if now < prev {
				return fmt.Errorf("op %d moved clock backward: %v -> %v", i, prev, now)
			}
			prev = now
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAbortAfterCompletedCollective(t *testing.T) {
	// Regression: if a rank completes the last arrival of a collective and
	// aborts immediately afterwards, the other participants' already-
	// completed collective must still return success — only operations that
	// can no longer complete may report ErrAborted.
	for iter := 0; iter < 200; iter++ {
		w := testWorld(3)
		boom := errors.New("boom")
		err := w.Run(func(c *Comm) error {
			if _, err := c.AllreduceInt64([]int64{1}, OpSum); err != nil {
				return fmt.Errorf("completed collective reported %w", err)
			}
			if c.Rank() == 2 {
				return boom // abort right after the collective
			}
			// Ranks 0 and 1 do only local work afterwards.
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("iter %d: err = %v, want only the injected abort", iter, err)
		}
	}
}

func TestNetAccessor(t *testing.T) {
	net := simtime.NetworkModel{Alpha: 3e-6, Beta: 2e9}
	w := NewWorld(Config{Size: 1, Net: net})
	err := w.Run(func(c *Comm) error {
		if c.Net() != net {
			return errors.New("Net() mismatch")
		}
		if c.Rank() != 0 || c.Size() != 1 {
			return errors.New("Rank/Size mismatch")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
