// Package mpi is an in-process, MPI-like message-passing runtime. It is the
// substitute for MPICH in this reproduction (Go has no mature MPI bindings):
// ranks are goroutines inside one OS process, collectives have true MPI
// semantics (all ranks participate, data is exchanged, the call
// synchronizes), and every operation charges simulated network time from an
// alpha-beta cost model to the calling rank's clock. Collective calls
// synchronize the participants' simulated clocks to the maximum, so barrier
// waits caused by load imbalance show up in measured execution time just as
// they do on a real machine.
//
// The runtime supports the subset of MPI that MapReduce engines need:
// Barrier, Alltoallv, Allreduce, Allgather(v), Bcast, Gather(v), and
// tagged point-to-point Send/Recv.
package mpi

import (
	"errors"
	"fmt"
	"sync"

	"mimir/internal/simtime"
)

// ErrAborted is returned from every pending and subsequent operation after
// any rank aborts the world (typically because a rank's function returned an
// error, e.g. out-of-memory).
var ErrAborted = errors.New("mpi: world aborted")

// Config describes a world.
type Config struct {
	// Size is the number of ranks. Must be >= 1.
	Size int
	// Net is the network cost model used to charge simulated time.
	Net simtime.NetworkModel
}

// World is a set of ranks that can communicate. Create one with NewWorld and
// execute an SPMD function on all ranks with Run.
type World struct {
	size   int
	net    simtime.NetworkModel
	clocks []*simtime.Clock
	rv     *rendezvous
	boxes  []*mailbox

	abortOnce sync.Once
	abortErr  error

	tracer Tracer
}

// NewWorld creates a world with cfg.Size ranks.
func NewWorld(cfg Config) *World {
	if cfg.Size < 1 {
		panic(fmt.Sprintf("mpi: invalid world size %d", cfg.Size))
	}
	w := &World{
		size:   cfg.Size,
		net:    cfg.Net,
		clocks: make([]*simtime.Clock, cfg.Size),
		boxes:  make([]*mailbox, cfg.Size),
	}
	for i := range w.clocks {
		w.clocks[i] = simtime.NewClock()
		w.boxes[i] = newMailbox()
	}
	w.rv = newRendezvous(cfg.Size)
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Clock returns the simulated clock of the given rank. Read it only after
// Run returns (or from the owning rank).
func (w *World) Clock(rank int) *simtime.Clock { return w.clocks[rank] }

// MaxTime returns the maximum simulated time across all ranks; this is the
// job execution time the experiment harness reports.
func (w *World) MaxTime() float64 {
	var max float64
	for _, c := range w.clocks {
		if c.Now() > max {
			max = c.Now()
		}
	}
	return max
}

// Run executes f once per rank, each on its own goroutine, and waits for all
// of them. If any rank returns a non-nil error the world is aborted: every
// rank blocked in (or later entering) a communication call gets ErrAborted.
// Run returns the first original (non-ErrAborted) error, or nil.
func (w *World) Run(f func(*Comm) error) error {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			err := f(&Comm{world: w, rank: rank})
			if err != nil {
				w.abort(err)
			}
			errs[rank] = err
		}(r)
	}
	wg.Wait()
	// Prefer a root-cause error over the ErrAborted echoes from other ranks.
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrAborted) {
			return err
		}
		if first == nil {
			first = err
		}
	}
	return first
}

// abort terminates all communication in the world with the given cause.
func (w *World) abort(cause error) {
	w.abortOnce.Do(func() {
		w.abortErr = fmt.Errorf("%w: %v", ErrAborted, cause)
		w.rv.abort(w.abortErr)
		for _, b := range w.boxes {
			b.abort(w.abortErr)
		}
	})
}

// Comm is one rank's handle to the world. A Comm is used by exactly one
// goroutine (the rank's) and is not safe for sharing.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.world.size }

// Clock returns this rank's simulated clock. Engines charge compute and I/O
// time to it; the runtime charges communication time.
func (c *Comm) Clock() *simtime.Clock { return c.world.clocks[c.rank] }

// Net returns the world's network model.
func (c *Comm) Net() simtime.NetworkModel { return c.world.net }

// Abort terminates the world with the given cause; all communication calls
// on all ranks return ErrAborted from now on.
func (c *Comm) Abort(cause error) { c.world.abort(cause) }
