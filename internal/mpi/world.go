// Package mpi is an MPI-like message-passing runtime. It is the substitute
// for MPICH in this reproduction (Go has no mature MPI bindings):
// collectives have true MPI semantics (all ranks participate, data is
// exchanged, the call synchronizes) and byte movement is delegated to a
// pluggable transport (internal/transport).
//
// With the default in-process transport, ranks are goroutines inside one OS
// process and every operation charges simulated network time from an
// alpha-beta cost model to the calling rank's clock; collective calls
// synchronize the participants' simulated clocks to the maximum, so barrier
// waits caused by load imbalance show up in measured execution time just as
// they do on a real machine. With the TCP transport, each rank is its own
// OS process, byte movement is real, and the ranks' clocks run on wall
// time — the same metrics, fed by the hardware instead of the model.
//
// The runtime supports the subset of MPI that MapReduce engines need:
// Barrier, Alltoallv, Allreduce, Allgather(v), Bcast, Gather(v), and
// tagged point-to-point Send/Recv.
package mpi

import (
	"errors"
	"fmt"
	"sync"

	"mimir/internal/simtime"
	"mimir/internal/transport"
)

// ErrAborted is returned from every pending and subsequent operation after
// any rank aborts the world (typically because a rank's function returned an
// error, e.g. out-of-memory). With the TCP transport it is also what every
// surviving rank gets when a peer process dies.
var ErrAborted = transport.ErrAborted

// FaultPolicy selects fail-stop or fail-recover behavior for transport
// faults; see transport.FaultPolicy. It is configured where the transport
// is built (transport.TCPConfig.Policy) and surfaced here so runtime users
// can ask a world how it will behave.
type FaultPolicy = transport.FaultPolicy

// Fault policies, re-exported for runtime users.
const (
	AbortOnFailure = transport.AbortOnFailure
	RetryTransient = transport.RetryTransient
)

// FaultStats counts a transport's failure and recovery activity; see
// transport.FaultStats.
type FaultStats = transport.FaultStats

// Config describes a world.
type Config struct {
	// Size is the number of ranks. Must be >= 1 when Transport is nil;
	// otherwise it must be zero or match the transport's world size.
	Size int
	// Net is the network cost model used to charge simulated time (unused
	// by wall-clock transports).
	Net simtime.NetworkModel
	// Transport optionally supplies the byte-movement layer. nil means the
	// in-process transport with Size ranks.
	Transport transport.Transport
}

// World is a set of ranks that can communicate. Create one with NewWorld and
// execute an SPMD function on all local ranks with Run.
type World struct {
	tr     transport.Transport
	size   int
	wall   bool
	net    simtime.NetworkModel
	clocks []*simtime.Clock // indexed by rank; nil for ranks in other processes
	local  []int

	abortOnce sync.Once

	tracer Tracer
}

// NewWorld creates a world over cfg.Transport (default: in-process with
// cfg.Size ranks).
func NewWorld(cfg Config) *World {
	tr := cfg.Transport
	if tr == nil {
		if cfg.Size < 1 {
			panic(fmt.Sprintf("mpi: invalid world size %d", cfg.Size))
		}
		tr = transport.NewLocal(cfg.Size)
	} else if cfg.Size != 0 && cfg.Size != tr.Size() {
		panic(fmt.Sprintf("mpi: Config.Size %d does not match transport world size %d", cfg.Size, tr.Size()))
	}
	w := &World{
		tr:     tr,
		size:   tr.Size(),
		wall:   tr.Wall(),
		net:    cfg.Net,
		clocks: make([]*simtime.Clock, tr.Size()),
		local:  tr.LocalRanks(),
	}
	for _, r := range w.local {
		if w.wall {
			w.clocks[r] = simtime.NewWallClock()
		} else {
			w.clocks[r] = simtime.NewClock()
		}
	}
	return w
}

// Size returns the number of ranks across all processes.
func (w *World) Size() int { return w.size }

// LocalRanks returns the ranks hosted by this process (all of them for the
// in-process transport, exactly one for TCP).
func (w *World) LocalRanks() []int { return append([]int(nil), w.local...) }

// Clock returns the clock of the given rank, or nil for a rank hosted by
// another process. Read it only after Run returns (or from the owning rank).
func (w *World) Clock(rank int) *simtime.Clock { return w.clocks[rank] }

// MaxTime returns the maximum time across this process's ranks — simulated
// job execution time for the in-process transport (what the experiment
// harness reports), wall-clock seconds for TCP.
func (w *World) MaxTime() float64 {
	var max float64
	for _, c := range w.clocks {
		if c != nil && c.Now() > max {
			max = c.Now()
		}
	}
	return max
}

// Run executes f once per local rank, each on its own goroutine, and waits
// for all of them. If any rank returns a non-nil error the world is aborted:
// every rank blocked in (or later entering) a communication call — on every
// process — gets ErrAborted. Run returns the first original (non-ErrAborted)
// error hosted by this process, or nil; with the TCP transport, a remote
// failure surfaces here as ErrAborted and the root cause on the process
// that failed.
func (w *World) Run(f func(*Comm) error) error {
	errs := make([]error, len(w.local))
	var wg sync.WaitGroup
	for i, r := range w.local {
		wg.Add(1)
		go func(i, rank int) {
			defer wg.Done()
			err := f(&Comm{world: w, rank: rank, ep: w.tr.Endpoint(rank)})
			if err != nil {
				w.abort(err)
			}
			errs[i] = err
		}(i, r)
	}
	wg.Wait()
	// Prefer a root-cause error over the ErrAborted echoes from other ranks.
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrAborted) {
			return err
		}
		if first == nil {
			first = err
		}
	}
	return first
}

// Close releases the transport (for TCP: announces a clean shutdown and
// closes the mesh). Call it when done with the world, after Run.
func (w *World) Close() error { return w.tr.Close() }

// FaultStats reports the transport's failure/recovery counters. ok is false
// for transports that do not track faults (e.g. the in-process transport).
// Safe to call concurrently with Run; the counters are monotonic.
func (w *World) FaultStats() (FaultStats, bool) {
	if fr, yes := w.tr.(transport.FaultReporter); yes {
		return fr.FaultStats(), true
	}
	return FaultStats{}, false
}

// FaultPolicy reports how the transport reacts to link faults. Transports
// without a configurable policy (e.g. in-process) report AbortOnFailure,
// which matches their behavior: any failure poisons the world.
func (w *World) FaultPolicy() FaultPolicy {
	if pr, ok := w.tr.(transport.PolicyReporter); ok {
		return pr.Policy()
	}
	return AbortOnFailure
}

// Epoch reports the mesh incarnation the world's transport belongs to
// (internal/membership): 0 for fixed worlds and transports without epoch
// tracking. A job service stamps each job's result with the epoch it ran
// on, so clients can tell which world-size incarnation produced it.
func (w *World) Epoch() uint64 {
	if er, ok := w.tr.(transport.EpochReporter); ok {
		return er.Epoch()
	}
	return 0
}

// abort terminates all communication in the world with the given cause.
func (w *World) abort(cause error) {
	w.abortOnce.Do(func() {
		if errors.Is(cause, ErrAborted) {
			// Already an abort (an echo from another rank, or a transport
			// failure that aborted in place): propagate as-is.
			w.tr.Abort(cause)
			return
		}
		w.tr.Abort(fmt.Errorf("%w: %v", ErrAborted, cause))
	})
}

// Comm is one rank's handle to the world. A Comm is used by exactly one
// goroutine (the rank's) and is not safe for sharing.
type Comm struct {
	world *World
	rank  int
	ep    transport.Endpoint
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.world.size }

// Clock returns this rank's clock. Engines charge compute and I/O time to
// it; the runtime charges communication time (simulated or measured,
// depending on the transport).
func (c *Comm) Clock() *simtime.Clock { return c.world.clocks[c.rank] }

// Net returns the world's network model.
func (c *Comm) Net() simtime.NetworkModel { return c.world.net }

// Abort terminates the world with the given cause; all communication calls
// on all ranks (on every process) return ErrAborted from now on.
func (c *Comm) Abort(cause error) { c.world.abort(cause) }

// bufRecycler is the optional transport hook for returning received payload
// buffers to the transport's frame pool once the consumer has copied them
// out (the TCP transport implements it; in-process transports, whose receive
// buffers are plain garbage, do not).
type bufRecycler interface {
	Recycle(b []byte)
}

// Recycle hands the payload buffers of a completed Alltoallv/Ialltoallv
// receive back to the transport. Purely an optimization: buffers from
// transports without a pool are left to the GC. The caller must not touch
// the buffers afterwards — use it only once every slice of the receive set
// has been fully consumed.
func (c *Comm) Recycle(bufs [][]byte) {
	r, ok := c.ep.(bufRecycler)
	if !ok {
		return
	}
	for _, b := range bufs {
		if len(b) > 0 {
			r.Recycle(b)
		}
	}
}

// settle finishes a blocking communication operation on this rank's clock:
// a simulated clock synchronizes to the collective maximum and charges the
// alpha-beta cost, a wall clock records the measured span as Comm time.
func (c *Comm) settle(t0, tmax, simCost float64) {
	ck := c.Clock()
	if c.world.wall {
		ck.ObserveSpan(ck.Now()-t0, simtime.Comm)
		return
	}
	ck.SyncTo(tmax)
	ck.Advance(simCost, simtime.Comm)
}
