package mpi

import (
	"fmt"

	"mimir/internal/simtime"
)

// AlltoallvRequest tracks an in-flight nonblocking all-to-all exchange
// started with Ialltoallv. The data transfer itself happens at post time
// (ranks rendezvous exactly as in the blocking Alltoallv, so send buffers
// may be reused as soon as Ialltoallv returns), but no simulated time is
// charged until Wait: the communication window runs in the background while
// the rank keeps computing, and Wait settles the clock at
// max(compute, comm) for the overlapped window instead of their sum.
type AlltoallvRequest struct {
	clock *simtime.Clock
	// postedAt is the rank's simulated time at the Ialltoallv call;
	// completeAt is when the exchange finishes in the background
	// (max participant post time plus the alpha-beta network cost).
	postedAt   float64
	completeAt float64
	recv       [][]byte
	saved      float64
	done       bool
	err        error
}

// Ialltoallv starts a nonblocking variable-sized all-to-all exchange:
// send[i] goes to rank i, and the request's Wait returns recv with recv[i]
// received from rank i. send must have length Size. Like the blocking
// Alltoallv, the returned buffers are copies and send buffers may be reused
// as soon as Ialltoallv returns. All ranks must post matching collectives
// in the same order; the rank blocks (in real time, not simulated time)
// until every rank has posted.
//
// Errors are deferred to Wait so callers can treat post+wait as one
// fallible operation.
func (c *Comm) Ialltoallv(send [][]byte) *AlltoallvRequest {
	req := &AlltoallvRequest{clock: c.Clock()}
	if len(send) != c.world.size {
		req.done = true
		req.err = fmt.Errorf("mpi: Ialltoallv send has %d entries, world size is %d", len(send), c.world.size)
		return req
	}
	recv := make([][]byte, c.world.size)
	var sendBytes, recvBytes int
	for _, b := range send {
		sendBytes += len(b)
	}
	tmax, err := c.world.rv.exchange(c.rank, c.Clock().Now(), send, func(slots []contribution) {
		for src := 0; src < c.world.size; src++ {
			theirs := slots[src].data.([][]byte)
			buf := theirs[c.rank]
			recv[src] = append([]byte(nil), buf...)
			recvBytes += len(buf)
		}
	})
	if err != nil {
		req.done = true
		req.err = err
		return req
	}
	req.postedAt = c.Clock().Now()
	// The exchange cannot start before the last participant posts, and then
	// occupies the network for the usual alpha-beta cost — but in the
	// background, concurrent with whatever this rank computes next.
	req.completeAt = tmax + c.world.net.Alltoallv(c.world.size, sendBytes, recvBytes)
	req.recv = recv
	c.world.trace(c.rank, "ialltoallv", sendBytes)
	return req
}

// Wait completes the exchange and returns the received buffers. The rank's
// clock jumps to the background completion time if computation did not
// already cover it; calling Wait again returns the same result without
// charging more time.
func (r *AlltoallvRequest) Wait() ([][]byte, error) {
	if !r.done {
		r.done = true
		if r.err == nil {
			r.saved = r.clock.FinishOverlap(r.postedAt, r.completeAt)
		}
	}
	return r.recv, r.err
}

// Test reports whether the exchange has completed in simulated time, i.e.
// whether a Wait now would not advance the clock. It does not complete the
// request.
func (r *AlltoallvRequest) Test() bool {
	return r.done || r.clock.Now() >= r.completeAt
}

// OverlapSaved returns the simulated seconds that overlapping saved
// relative to a blocking exchange at the post point. It is zero until Wait
// and zero when no computation overlapped the communication window.
func (r *AlltoallvRequest) OverlapSaved() float64 { return r.saved }
