package mpi

import (
	"fmt"

	"mimir/internal/simtime"
)

// AlltoallvRequest tracks an in-flight nonblocking all-to-all exchange
// started with Ialltoallv. The data transfer itself happens at post time
// (ranks rendezvous exactly as in the blocking Alltoallv, so send buffers
// may be reused as soon as Ialltoallv returns), but no simulated time is
// charged until Wait: the communication window runs in the background while
// the rank keeps computing, and Wait settles the clock at
// max(compute, comm) for the overlapped window instead of their sum.
//
// On a wall-clock (TCP) transport the exchange blocks for real at post time
// and Wait charges nothing further: whatever overlap the hardware achieved
// is already in the clock, so OverlapSaved reports zero rather than a
// modeled saving.
type AlltoallvRequest struct {
	clock *simtime.Clock
	// postedAt is the rank's simulated time at the Ialltoallv call;
	// completeAt is when the exchange finishes in the background
	// (max participant post time plus the alpha-beta network cost).
	postedAt   float64
	completeAt float64
	recv       [][]byte
	saved      float64
	done       bool
	err        error
}

// Ialltoallv starts a nonblocking variable-sized all-to-all exchange:
// send[i] goes to rank i, and the request's Wait returns recv with recv[i]
// received from rank i. send must have length Size. Like the blocking
// Alltoallv, the returned buffers are copies and send buffers may be reused
// as soon as Ialltoallv returns. All ranks must post matching collectives
// in the same order; the rank blocks (in real time, not simulated time)
// until every rank has posted.
//
// Errors are deferred to Wait so callers can treat post+wait as one
// fallible operation.
func (c *Comm) Ialltoallv(send [][]byte) *AlltoallvRequest {
	req := &AlltoallvRequest{clock: c.Clock()}
	if len(send) != c.world.size {
		req.done = true
		req.err = fmt.Errorf("mpi: Ialltoallv send has %d entries, world size is %d", len(send), c.world.size)
		return req
	}
	var sendBytes int
	for _, b := range send {
		sendBytes += len(b)
	}
	t0 := c.Clock().Now()
	recv, tmax, err := c.ep.Exchange(send, t0)
	if err != nil {
		req.done = true
		req.err = err
		return req
	}
	if c.world.wall {
		// The bytes moved while we blocked just now; the span is Comm time
		// and there is no background window left to overlap.
		c.Clock().ObserveSpan(c.Clock().Now()-t0, simtime.Comm)
		req.postedAt = c.Clock().Now()
		req.completeAt = req.postedAt
	} else {
		var recvBytes int
		for _, b := range recv {
			recvBytes += len(b)
		}
		req.postedAt = t0
		// The exchange cannot start before the last participant posts, and
		// then occupies the network for the usual alpha-beta cost — but in
		// the background, concurrent with whatever this rank computes next.
		req.completeAt = tmax + c.world.net.Alltoallv(c.world.size, sendBytes, recvBytes)
	}
	req.recv = recv
	c.world.trace(c.rank, "ialltoallv", sendBytes)
	return req
}

// Wait completes the exchange and returns the received buffers. The rank's
// clock jumps to the background completion time if computation did not
// already cover it; calling Wait again returns the same result without
// charging more time.
func (r *AlltoallvRequest) Wait() ([][]byte, error) {
	if !r.done {
		r.done = true
		if r.err == nil {
			r.saved = r.clock.FinishOverlap(r.postedAt, r.completeAt)
		}
	}
	return r.recv, r.err
}

// Test reports whether the exchange has completed in simulated time, i.e.
// whether a Wait now would not advance the clock. It does not complete the
// request.
func (r *AlltoallvRequest) Test() bool {
	return r.done || r.clock.Now() >= r.completeAt
}

// OverlapSaved returns the simulated seconds that overlapping saved
// relative to a blocking exchange at the post point. It is zero until Wait
// and zero when no computation overlapped the communication window.
func (r *AlltoallvRequest) OverlapSaved() float64 { return r.saved }
