package mpi

import "fmt"

// Request is a handle to a pending nonblocking operation, in the spirit of
// MPI_Request. Complete it with Wait (blocking) or poll it with Test.
type Request struct {
	comm *Comm
	// recv parameters (nil comm in done state).
	src, tag int
	isRecv   bool
	done     bool
	// results
	data      []byte
	actualSrc int
	actualTag int
	err       error
}

// Isend starts a nonblocking send. The runtime's sends are eager and
// buffered, so the operation completes immediately; the Request exists for
// API symmetry with Irecv and completes trivially.
func (c *Comm) Isend(dst, tag int, data []byte) *Request {
	err := c.Send(dst, tag, data)
	return &Request{comm: c, done: true, err: err}
}

// Irecv posts a nonblocking receive for a message matching (src, tag);
// wildcards AnySource / AnyTag apply. The message is claimed at Wait or at
// the first successful Test.
func (c *Comm) Irecv(src, tag int) *Request {
	return &Request{comm: c, src: src, tag: tag, isRecv: true}
}

// Wait blocks until the operation completes and returns its payload (nil
// for sends) with the actual source and tag.
func (r *Request) Wait() (data []byte, src, tag int, err error) {
	if r.done {
		return r.data, r.actualSrc, r.actualTag, r.err
	}
	r.data, r.actualSrc, r.actualTag, r.err = r.comm.Recv(r.src, r.tag)
	r.done = true
	return r.data, r.actualSrc, r.actualTag, r.err
}

// Test completes the operation if a matching message has already arrived
// and reports whether the request is now done. A completed request's
// results are read with Wait (which returns immediately).
func (r *Request) Test() (completed bool, err error) {
	if r.done {
		return true, r.err
	}
	m, ok, err := r.comm.ep.TryRecv(r.src, r.tag)
	if err != nil {
		r.done = true
		r.err = err
		return true, err
	}
	if !ok {
		return false, nil
	}
	if !r.comm.world.wall {
		r.comm.Clock().SyncTo(m.Time)
	}
	r.data, r.actualSrc, r.actualTag = m.Data, m.Src, m.Tag
	r.done = true
	return true, nil
}

// WaitAll completes every request, returning the first error encountered.
func WaitAll(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if _, _, _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Scatterv distributes root's per-rank buffers: rank i receives a copy of
// bufs[i]. Non-root ranks pass nil bufs.
func (c *Comm) Scatterv(bufs [][]byte, root int) ([]byte, error) {
	if root < 0 || root >= c.world.size {
		return nil, fmt.Errorf("mpi: Scatterv root %d out of range", root)
	}
	if c.rank == root && len(bufs) != c.world.size {
		return nil, fmt.Errorf("mpi: Scatterv root has %d buffers, world size is %d", len(bufs), c.world.size)
	}
	var send [][]byte
	if c.rank == root {
		send = bufs
	}
	recv, err := c.exchange(send, func(recv [][]byte) float64 {
		return c.world.net.Reduction(c.world.size, len(recv[root]))
	})
	if err != nil {
		return nil, err
	}
	return recv[root], nil
}

// ReduceScatterInt64 element-wise reduces a vector of length Size across all
// ranks and returns element i to rank i — the MPI_Reduce_scatter_block
// pattern used to size Alltoallv exchanges.
func (c *Comm) ReduceScatterInt64(vals []int64, op Op) (int64, error) {
	if len(vals) != c.world.size {
		return 0, fmt.Errorf("mpi: ReduceScatter vector has %d entries, world size is %d", len(vals), c.world.size)
	}
	full, err := c.AllreduceInt64(vals, op)
	if err != nil {
		return 0, err
	}
	return full[c.rank], nil
}

// ExscanInt64 returns the exclusive prefix reduction of v over ranks
// 0..rank-1 (0 on rank 0 for OpSum) — handy for computing global output
// offsets.
func (c *Comm) ExscanInt64(v int64, op Op) (int64, error) {
	all, err := c.AllgatherInt64(v)
	if err != nil {
		return 0, err
	}
	if c.rank == 0 {
		return 0, nil
	}
	acc := all[0]
	for i := 1; i < c.rank; i++ {
		acc = op.apply(acc, all[i])
	}
	return acc, nil
}
