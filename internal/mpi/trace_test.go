package mpi

import (
	"strings"
	"testing"
)

func TestCountingTracer(t *testing.T) {
	const p = 3
	w := testWorld(p)
	ct := NewCountingTracer()
	w.SetTracer(ct.Trace)
	err := w.Run(func(c *Comm) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		send := make([][]byte, p)
		send[(c.Rank()+1)%p] = []byte("xx")
		if _, err := c.Alltoallv(send); err != nil {
			return err
		}
		if _, err := c.AllreduceInt64([]int64{1}, OpSum); err != nil {
			return err
		}
		if c.Rank() == 0 {
			return c.Send(1, 0, []byte("hello"))
		}
		if c.Rank() == 1 {
			_, _, _, err := c.Recv(0, 0)
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ct.Count("barrier"); got != p {
		t.Errorf("barrier events = %d, want %d", got, p)
	}
	if got := ct.Count("alltoallv"); got != p {
		t.Errorf("alltoallv events = %d, want %d", got, p)
	}
	if got := ct.Bytes("alltoallv"); got != int64(2*p) {
		t.Errorf("alltoallv bytes = %d, want %d", got, 2*p)
	}
	if ct.Count("send") != 1 || ct.Count("recv") != 1 {
		t.Errorf("p2p events = %d/%d, want 1/1", ct.Count("send"), ct.Count("recv"))
	}
	if got := ct.Bytes("send"); got != 5 {
		t.Errorf("send bytes = %d, want 5", got)
	}
}

func TestLogTracer(t *testing.T) {
	var sb strings.Builder
	w := testWorld(2)
	w.SetTracer(NewLogTracer(&sb))
	err := w.Run(func(c *Comm) error { return c.Barrier() })
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "op=barrier") || strings.Count(out, "\n") != 2 {
		t.Errorf("log tracer output:\n%s", out)
	}
}

func TestNoTracerIsFree(t *testing.T) {
	// The default (no tracer) path must not panic or allocate trace events.
	w := testWorld(2)
	err := w.Run(func(c *Comm) error { return c.Barrier() })
	if err != nil {
		t.Fatal(err)
	}
}
