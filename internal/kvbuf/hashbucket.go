package kvbuf

import (
	"bytes"
	"fmt"

	"mimir/internal/mem"
)

// bucketEntryBytes is the accounting charge per hash-bucket entry (hash,
// refs, lengths, chain link).
const bucketEntryBytes = 40

// Bucket is the hash bucket used by the KV compression and partial
// reduction optimizations: it holds one KV per unique key and merges
// incoming duplicates via a user callback. Key/value bytes live in
// arena-charged pages; the entry table and chain heads are charged to the
// arena as estimates of their in-memory size, so enabling a combiner
// *costs* memory up front and only pays off past a compression-ratio
// threshold — a trade-off the paper calls out explicitly.
type Bucket struct {
	arena   *mem.Arena
	room    PageStore // optional eviction hook for arena charges
	data    *pagedBuf
	entries []bucketEntry
	heads   []int32
	// garbage counts dead value bytes left behind by size-changing updates.
	garbage int64
	// headCharged is the arena charge currently held for the heads table.
	headCharged int64
}

type bucketEntry struct {
	hash   uint64
	keyRef ref
	valRef ref
	keyLen int32
	valLen int32
	next   int32
}

const initialHeads = 64

// NewBucket creates an empty bucket whose storage pages come from arena.
func NewBucket(arena *mem.Arena, pageSize int) (*Bucket, error) {
	return NewBucketOn(nil, arena, pageSize)
}

// NewBucketOn creates a bucket whose arena charges are routed through a
// spill store's Reserve. The bucket itself never spills — it is
// random-access on every operation — but its growth can evict spillable
// container pages instead of failing, which keeps the out-of-core convert
// and combiner paths alive under pressure. A nil room is NewBucket.
func NewBucketOn(room PageStore, arena *mem.Arena, pageSize int) (*Bucket, error) {
	pb := newPagedBuf(arena, pageSize)
	pb.room = room
	b := &Bucket{arena: arena, room: room, data: pb}
	if err := b.setHeads(initialHeads); err != nil {
		return nil, err
	}
	return b, nil
}

// alloc charges n non-page bytes, evicting through the room store when one
// is attached. The matching release is always a plain Arena.Free.
func (b *Bucket) alloc(n int64) error {
	if b.room != nil {
		return b.room.Reserve(n)
	}
	return b.arena.Alloc(n)
}

func (b *Bucket) setHeads(n int) error {
	charge := int64(n) * 4
	if err := b.alloc(charge); err != nil {
		return err
	}
	if b.headCharged > 0 {
		b.arena.Free(b.headCharged)
	}
	b.headCharged = charge
	b.heads = make([]int32, n)
	for i := range b.heads {
		b.heads[i] = -1
	}
	for i := range b.entries {
		slot := b.entries[i].hash & uint64(n-1)
		b.entries[i].next = b.heads[slot]
		b.heads[slot] = int32(i)
	}
	return nil
}

// Len returns the number of unique keys.
func (b *Bucket) Len() int { return len(b.entries) }

// MemoryBytes returns the arena reservation attributable to the bucket.
func (b *Bucket) MemoryBytes() int64 {
	return b.data.reservedBytes() + int64(len(b.entries))*bucketEntryBytes + b.headCharged
}

// GarbageBytes returns dead bytes left by size-changing value updates.
func (b *Bucket) GarbageBytes() int64 { return b.garbage }

func (b *Bucket) find(h uint64, k []byte) int32 {
	for i := b.heads[h&uint64(len(b.heads)-1)]; i >= 0; i = b.entries[i].next {
		e := &b.entries[i]
		if e.hash == h && int(e.keyLen) == len(k) &&
			bytes.Equal(b.data.at(e.keyRef, int(e.keyLen)), k) {
			return i
		}
	}
	return -1
}

// Get returns the value stored for k. The slice aliases bucket memory.
func (b *Bucket) Get(k []byte) ([]byte, bool) {
	i := b.find(HashKey(k), k)
	if i < 0 {
		return nil, false
	}
	e := &b.entries[i]
	return b.data.at(e.valRef, int(e.valLen)), true
}

// Put inserts (k, v), replacing any existing value. Same-length replacement
// is done in place; a different length appends new storage and leaves the
// old bytes as garbage.
func (b *Bucket) Put(k, v []byte) error {
	h := HashKey(k)
	if i := b.find(h, k); i >= 0 {
		return b.replaceValue(&b.entries[i], v)
	}
	return b.insert(h, k, v)
}

// Upsert merges v into the entry for k: if k is absent, (k, v) is inserted;
// otherwise merge(existing, v) produces the replacement value. This is the
// paper's combiner protocol — "the partial-reduction callback is called,
// which reduces these two KVs into a single KV. The existing KV in the hash
// bucket then is replaced with the reduced version."
func (b *Bucket) Upsert(k, v []byte, merge func(existing, incoming []byte) ([]byte, error)) error {
	h := HashKey(k)
	i := b.find(h, k)
	if i < 0 {
		return b.insert(h, k, v)
	}
	e := &b.entries[i]
	merged, err := merge(b.data.at(e.valRef, int(e.valLen)), v)
	if err != nil {
		return err
	}
	return b.replaceValue(e, merged)
}

func (b *Bucket) replaceValue(e *bucketEntry, v []byte) error {
	if len(v) == int(e.valLen) {
		copy(b.data.at(e.valRef, int(e.valLen)), v)
		return nil
	}
	r, err := b.data.append(v)
	if err != nil {
		return err
	}
	b.garbage += int64(e.valLen)
	e.valRef = r
	e.valLen = int32(len(v))
	return nil
}

func (b *Bucket) insert(h uint64, k, v []byte) error {
	if len(b.entries) >= 2*len(b.heads) {
		if err := b.setHeads(2 * len(b.heads)); err != nil {
			return err
		}
	}
	if err := b.alloc(bucketEntryBytes); err != nil {
		return err
	}
	kr, err := b.data.append(k)
	if err != nil {
		b.arena.Free(bucketEntryBytes)
		return err
	}
	vr, err := b.data.append(v)
	if err != nil {
		b.arena.Free(bucketEntryBytes)
		return err
	}
	slot := h & uint64(len(b.heads)-1)
	b.entries = append(b.entries, bucketEntry{
		hash: h, keyRef: kr, valRef: vr,
		keyLen: int32(len(k)), valLen: int32(len(v)),
		next: b.heads[slot],
	})
	b.heads[slot] = int32(len(b.entries) - 1)
	return nil
}

// Entry returns the i'th entry in insertion order (0 <= i < Len). The
// slices alias bucket memory. It is the random-access counterpart of Scan,
// used by the sharded bucket's ordered merge.
func (b *Bucket) Entry(i int) (k, v []byte) {
	e := &b.entries[i]
	return b.data.at(e.keyRef, int(e.keyLen)), b.data.at(e.valRef, int(e.valLen))
}

// Scan calls fn for every (key, value) in insertion order, making iteration
// deterministic. Slices alias bucket memory.
func (b *Bucket) Scan(fn func(k, v []byte) error) error {
	for i := range b.entries {
		e := &b.entries[i]
		if err := fn(b.data.at(e.keyRef, int(e.keyLen)), b.data.at(e.valRef, int(e.valLen))); err != nil {
			return err
		}
	}
	return nil
}

// Free releases all storage back to the arena.
func (b *Bucket) Free() {
	b.data.free()
	b.arena.Free(int64(len(b.entries)) * bucketEntryBytes)
	if b.headCharged > 0 {
		b.arena.Free(b.headCharged)
		b.headCharged = 0
	}
	b.entries = nil
	b.heads = nil
	b.garbage = 0
}

// String summarizes the bucket for debugging.
func (b *Bucket) String() string {
	return fmt.Sprintf("Bucket{keys=%d mem=%dB garbage=%dB}", b.Len(), b.MemoryBytes(), b.garbage)
}
