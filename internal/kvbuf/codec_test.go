package kvbuf

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodedSizeDefaultHeader(t *testing.T) {
	// The paper: "we add an eight-byte header (two integers), containing the
	// lengths of the key and value, before the actual data of the KV."
	h := DefaultHint()
	if got := h.EncodedSize([]byte("word"), []byte("12345678")); got != 8+4+8 {
		t.Errorf("EncodedSize = %d, want 20 (8-byte header + data)", got)
	}
}

func TestEncodedSizeWithHints(t *testing.T) {
	// WordCount's hint: key is a NUL-free string, value a fixed 8-byte count.
	h := Hint{Key: StrZ(), Val: Fixed(8)}
	if got := h.EncodedSize([]byte("word"), []byte("12345678")); got != 5+8 {
		t.Errorf("EncodedSize = %d, want 13 (strz key + fixed value, no headers)", got)
	}
	// Fully fixed graph KV: 8-byte vertex, 8-byte parent.
	h2 := Hint{Key: Fixed(8), Val: Fixed(8)}
	if got := h2.EncodedSize(make([]byte, 8), make([]byte, 8)); got != 16 {
		t.Errorf("EncodedSize = %d, want 16", got)
	}
}

func roundTrip(t *testing.T, h Hint, k, v []byte) {
	t.Helper()
	enc, err := h.Encode(nil, k, v)
	if err != nil {
		t.Fatalf("Encode(%q,%q): %v", k, v, err)
	}
	if len(enc) != h.EncodedSize(k, v) {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(enc), h.EncodedSize(k, v))
	}
	gk, gv, n, err := h.Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if n != len(enc) {
		t.Fatalf("Decode consumed %d of %d", n, len(enc))
	}
	if !bytes.Equal(gk, k) || !bytes.Equal(gv, v) {
		t.Fatalf("round trip (%q,%q) -> (%q,%q)", k, v, gk, gv)
	}
}

func TestRoundTripAllModes(t *testing.T) {
	hints := []Hint{
		DefaultHint(),
		{Key: StrZ(), Val: Varlen()},
		{Key: StrZ(), Val: Fixed(8)},
		{Key: Fixed(3), Val: Fixed(8)},
		{Key: Varlen(), Val: StrZ()},
		{Key: StrZ(), Val: StrZ()},
		{Key: Fixed(3), Val: Varlen()},
	}
	for _, h := range hints {
		k := []byte("abc")
		v := []byte("12345678")
		if h.Val.kind == kindStrZ || h.Val.IsVarlen() {
			v = []byte("hello")
		}
		if h.Val.kind == kindFixed {
			v = []byte("12345678")
		}
		roundTrip(t, h, k, v)
	}
}

func TestRoundTripEmpty(t *testing.T) {
	roundTrip(t, DefaultHint(), []byte{}, []byte{})
	roundTrip(t, Hint{Key: StrZ(), Val: StrZ()}, []byte{}, []byte{})
}

func TestHintViolations(t *testing.T) {
	h := Hint{Key: StrZ(), Val: Fixed(4)}
	if _, err := h.Encode(nil, []byte("a\x00b"), []byte("1234")); err == nil {
		t.Error("Encode accepted NUL inside a strz key")
	}
	if _, err := h.Encode(nil, []byte("ok"), []byte("123")); err == nil {
		t.Error("Encode accepted wrong-length fixed value")
	}
}

func TestDecodeTruncated(t *testing.T) {
	h := DefaultHint()
	enc, err := h.Encode(nil, []byte("key"), []byte("value"))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(enc); cut++ {
		if _, _, _, err := h.Decode(enc[:cut]); err == nil {
			t.Errorf("Decode of %d/%d bytes succeeded", cut, len(enc))
		}
	}
}

func TestDecodeUnterminatedStrz(t *testing.T) {
	h := Hint{Key: StrZ(), Val: StrZ()}
	if _, _, _, err := h.Decode([]byte("no-nul-here")); err == nil ||
		!strings.Contains(err.Error(), "unterminated") {
		t.Errorf("Decode unterminated = %v", err)
	}
}

func TestFixedZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Fixed(0) did not panic")
		}
	}()
	Fixed(0)
}

func TestLenModeString(t *testing.T) {
	if Varlen().String() != "varlen" || Fixed(8).String() != "fixed(8)" || StrZ().String() != "strz" {
		t.Error("LenMode.String mismatch")
	}
}

// Property: round trip under every hint mode combination for random data.
func TestRoundTripProperty(t *testing.T) {
	f := func(k, v []byte, mode uint8) bool {
		var h Hint
		switch mode % 4 {
		case 0:
			h = DefaultHint()
		case 1:
			h = Hint{Key: StrZ(), Val: Varlen()}
			k = bytes.ReplaceAll(k, []byte{0}, []byte{1})
		case 2:
			h = Hint{Key: Varlen(), Val: StrZ()}
			v = bytes.ReplaceAll(v, []byte{0}, []byte{1})
		case 3:
			if len(k) == 0 {
				k = []byte{42}
			}
			h = Hint{Key: Fixed(len(k)), Val: Varlen()}
		}
		enc, err := h.Encode(nil, k, v)
		if err != nil {
			return false
		}
		gk, gv, n, err := h.Decode(enc)
		return err == nil && n == len(enc) && bytes.Equal(gk, k) && bytes.Equal(gv, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: decoding a concatenated stream recovers each KV in order.
func TestStreamDecodeProperty(t *testing.T) {
	f := func(pairs [][2][]byte) bool {
		h := DefaultHint()
		var stream []byte
		for _, p := range pairs {
			var err error
			stream, err = h.Encode(stream, p[0], p[1])
			if err != nil {
				return false
			}
		}
		i, pos := 0, 0
		for pos < len(stream) {
			k, v, n, err := h.Decode(stream[pos:])
			if err != nil || i >= len(pairs) {
				return false
			}
			if !bytes.Equal(k, pairs[i][0]) || !bytes.Equal(v, pairs[i][1]) {
				return false
			}
			pos += n
			i++
		}
		return i == len(pairs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHashKeyStability(t *testing.T) {
	// FNV-1a 64 known-answer test.
	if got := HashKey(nil); got != 14695981039346656037 {
		t.Errorf("HashKey(nil) = %d", got)
	}
	if got := HashKey([]byte("a")); got != 12638187200555641996 {
		t.Errorf("HashKey(a) = %d", got)
	}
	if HashKey([]byte("ab")) == HashKey([]byte("ba")) {
		t.Error("suspicious collision")
	}
}

func TestEncodeHeaderLayout(t *testing.T) {
	h := DefaultHint()
	enc, err := h.Encode(nil, []byte("k"), []byte("vv"))
	if err != nil {
		t.Fatal(err)
	}
	if binary.LittleEndian.Uint32(enc[0:]) != 1 || binary.LittleEndian.Uint32(enc[4:]) != 2 {
		t.Errorf("header = % x, want klen=1 vlen=2", enc[:8])
	}
	if string(enc[8:]) != "kvv" {
		t.Errorf("payload = %q", enc[8:])
	}
}
