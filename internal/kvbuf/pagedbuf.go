package kvbuf

import (
	"fmt"

	"mimir/internal/mem"
)

// pagedBuf is an append-only byte store built from fixed-size arena pages.
// Records never straddle page boundaries: an append that does not fit in the
// current page's remainder opens a new page, and a record larger than the
// page size gets a dedicated oversized page. This mirrors how the paper's
// containers "gradually allocate more memory to store the data" in
// fixed-size units to avoid fragmentation.
type pagedBuf struct {
	arena    *mem.Arena
	pageSize int
	pages    []*mem.Page
}

// ref addresses a byte range inside a pagedBuf: page index in the high 32
// bits, offset in the low 32.
type ref uint64

func makeRef(page, off int) ref { return ref(uint64(page)<<32 | uint64(uint32(off))) }

func (r ref) page() int { return int(r >> 32) }
func (r ref) off() int  { return int(uint32(r)) }

func newPagedBuf(arena *mem.Arena, pageSize int) *pagedBuf {
	if pageSize <= 0 {
		panic(fmt.Sprintf("kvbuf: invalid page size %d", pageSize))
	}
	return &pagedBuf{arena: arena, pageSize: pageSize}
}

// reserve allocates n contiguous bytes and returns their ref. The bytes are
// zeroed and can be filled in place via at().
func (pb *pagedBuf) reserve(n int) (ref, error) {
	if n > pb.pageSize {
		// Oversized record: dedicated page.
		p, err := pb.arena.NewPage(n)
		if err != nil {
			return 0, err
		}
		p.Used = n
		pb.pages = append(pb.pages, p)
		return makeRef(len(pb.pages)-1, 0), nil
	}
	if len(pb.pages) == 0 || pb.pages[len(pb.pages)-1].Remaining() < n {
		p, err := pb.arena.NewPage(pb.pageSize)
		if err != nil {
			return 0, err
		}
		pb.pages = append(pb.pages, p)
	}
	p := pb.pages[len(pb.pages)-1]
	off := p.Used
	p.Used += n
	return makeRef(len(pb.pages)-1, off), nil
}

// append copies b into the buffer and returns its ref.
func (pb *pagedBuf) append(b []byte) (ref, error) {
	r, err := pb.reserve(len(b))
	if err != nil {
		return 0, err
	}
	copy(pb.at(r, len(b)), b)
	return r, nil
}

// at returns the n bytes addressed by r.
func (pb *pagedBuf) at(r ref, n int) []byte {
	p := pb.pages[r.page()]
	return p.Buf[r.off() : r.off()+n]
}

// usedBytes returns the meaningful bytes stored (sum of page Used).
func (pb *pagedBuf) usedBytes() int64 {
	var n int64
	for _, p := range pb.pages {
		n += int64(p.Used)
	}
	return n
}

// reservedBytes returns the arena reservation held (sum of page sizes).
func (pb *pagedBuf) reservedBytes() int64 {
	var n int64
	for _, p := range pb.pages {
		n += int64(len(p.Buf))
	}
	return n
}

// free releases all pages back to the arena.
func (pb *pagedBuf) free() {
	for _, p := range pb.pages {
		p.Release()
	}
	pb.pages = nil
}
