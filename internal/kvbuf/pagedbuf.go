package kvbuf

import (
	"fmt"

	"mimir/internal/mem"
)

// pagedBuf is an append-only byte store built from fixed-size arena pages.
// Records never straddle page boundaries: an append that does not fit in the
// current page's remainder opens a new page, and a record larger than the
// page size gets a dedicated oversized page. This mirrors how the paper's
// containers "gradually allocate more memory to store the data" in
// fixed-size units to avoid fragmentation.
//
// With a PageStore attached, pages are registered for out-of-core eviction:
// the buffer seals the previous page whenever it opens a new one (the last
// page is the append head and must stay resident), and readers access
// sealed pages only through pinPage/unpinPage so the store can restore
// evicted pages on demand.
type pagedBuf struct {
	arena    *mem.Arena
	pageSize int
	pages    []*mem.Page
	store    PageStore // nil = purely in-memory
	ids      []PageID  // store registration per page (store mode only)
	// room, when set (and store is not), keeps the pages resident but
	// routes their arena charges through the store's Reserve so growth can
	// evict spillable pages for room. Hash buckets use this: they are
	// random-access on every operation and cannot spill themselves, yet
	// must not starve just because cold container pages fill the arena.
	room PageStore
}

// ref addresses a byte range inside a pagedBuf: page index in the high 32
// bits, offset in the low 32.
type ref uint64

func makeRef(page, off int) ref { return ref(uint64(page)<<32 | uint64(uint32(off))) }

func (r ref) page() int { return int(r >> 32) }
func (r ref) off() int  { return int(uint32(r)) }

func newPagedBuf(arena *mem.Arena, pageSize int) *pagedBuf {
	return newStorePagedBuf(nil, arena, pageSize)
}

func newStorePagedBuf(store PageStore, arena *mem.Arena, pageSize int) *pagedBuf {
	if pageSize <= 0 {
		panic(fmt.Sprintf("kvbuf: invalid page size %d", pageSize))
	}
	return &pagedBuf{arena: arena, pageSize: pageSize, store: store}
}

// newPage opens a new page of the given size, sealing the previous append
// head so it becomes evictable.
func (pb *pagedBuf) newPage(size int) (*mem.Page, error) {
	if pb.store == nil {
		var p *mem.Page
		if pb.room != nil {
			if err := pb.room.Reserve(int64(size)); err != nil {
				return nil, err
			}
			p = pb.arena.AdoptPage(size)
		} else {
			var err error
			p, err = pb.arena.NewPage(size)
			if err != nil {
				return nil, err
			}
		}
		pb.pages = append(pb.pages, p)
		return p, nil
	}
	id, p, err := pb.store.NewPage(size)
	if err != nil {
		return nil, err
	}
	if n := len(pb.pages); n > 0 {
		pb.store.Seal(pb.ids[n-1])
	}
	pb.pages = append(pb.pages, p)
	pb.ids = append(pb.ids, id)
	return p, nil
}

// reserve allocates n contiguous bytes and returns their ref. The bytes
// hold arbitrary stale data (pages are pooled) and must be fully written
// via at() before reading. The returned range is always
// on the last (unsealed, resident) page, so the caller may write it without
// pinning — but must do so before the next reserve.
func (pb *pagedBuf) reserve(n int) (ref, error) {
	if n > pb.pageSize {
		// Oversized record: dedicated page.
		p, err := pb.newPage(n)
		if err != nil {
			return 0, err
		}
		p.Used = n
		return makeRef(len(pb.pages)-1, 0), nil
	}
	if len(pb.pages) == 0 || pb.pages[len(pb.pages)-1].Remaining() < n {
		if _, err := pb.newPage(pb.pageSize); err != nil {
			return 0, err
		}
	}
	p := pb.pages[len(pb.pages)-1]
	off := p.Used
	p.Used += n
	return makeRef(len(pb.pages)-1, off), nil
}

// append copies b into the buffer and returns its ref.
func (pb *pagedBuf) append(b []byte) (ref, error) {
	r, err := pb.reserve(len(b))
	if err != nil {
		return 0, err
	}
	copy(pb.at(r, len(b)), b)
	return r, nil
}

// at returns the n bytes addressed by r. In store mode it is valid only for
// the append head (the last page) or a page the caller holds pinned.
func (pb *pagedBuf) at(r ref, n int) []byte {
	p := pb.pages[r.page()]
	return p.Buf[r.off() : r.off()+n]
}

// headRoom returns the free bytes left in the append head page, or 0 when
// there is no head (the next reserve opens a fresh page).
func (pb *pagedBuf) headRoom() int {
	if len(pb.pages) == 0 {
		return 0
	}
	return pb.pages[len(pb.pages)-1].Remaining()
}

// numPages returns the page count.
func (pb *pagedBuf) numPages() int { return len(pb.pages) }

// pinPage makes page i resident and protected from eviction, returning it.
// Pair with unpinPage. Without a store this is a plain lookup.
func (pb *pagedBuf) pinPage(i int) (*mem.Page, error) {
	if pb.store == nil {
		return pb.pages[i], nil
	}
	return pb.store.Pin(pb.ids[i])
}

func (pb *pagedBuf) unpinPage(i int) {
	if pb.store != nil {
		pb.store.Unpin(pb.ids[i])
	}
}

// markDirty flags a (pinned) page whose bytes were modified after sealing,
// so a stale spill copy is never trusted.
func (pb *pagedBuf) markDirty(i int) {
	if pb.store != nil {
		pb.store.MarkDirty(pb.ids[i])
	}
}

// freePage releases page i (used by Drain to return memory early).
func (pb *pagedBuf) freePage(i int) {
	if pb.store != nil {
		pb.store.Free(pb.ids[i])
		return
	}
	pb.pages[i].Release()
}

// reserveMeta charges n non-page bytes to the arena, routing through the
// store (which can evict for room) when one is attached.
func (pb *pagedBuf) reserveMeta(n int64) error {
	if pb.store != nil {
		return pb.store.Reserve(n)
	}
	if pb.room != nil {
		return pb.room.Reserve(n)
	}
	return pb.arena.Alloc(n)
}

// clear forgets all pages without releasing them (Drain releases them one
// by one via freePage).
func (pb *pagedBuf) clear() {
	pb.pages = nil
	pb.ids = nil
}

// usedBytes returns the meaningful bytes stored (sum of page Used — which
// survives eviction, so this counts spilled data too).
func (pb *pagedBuf) usedBytes() int64 {
	var n int64
	for _, p := range pb.pages {
		n += int64(p.Used)
	}
	return n
}

// reservedBytes returns the arena reservation held (sum of resident page
// sizes; evicted pages hold no reservation).
func (pb *pagedBuf) reservedBytes() int64 {
	var n int64
	for _, p := range pb.pages {
		n += int64(len(p.Buf))
	}
	return n
}

// free releases all pages back to the arena (and the spill file).
func (pb *pagedBuf) free() {
	for i := range pb.pages {
		pb.freePage(i)
	}
	pb.clear()
}
