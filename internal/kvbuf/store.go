package kvbuf

import "mimir/internal/mem"

// PageID identifies a page registered with a PageStore.
type PageID int32

// PageStore is the out-of-core hook the containers talk to. When a KVC or
// KMVC is created "on" a store (NewKVCOn / NewKMVCOn), every data page is
// registered with it and the store may evict sealed, unpinned pages to the
// parallel file system to stay under a memory watermark, restoring them on
// Pin. internal/spill provides the implementation; the interface lives
// here so kvbuf has no dependency on the spill machinery (or the PFS) and
// a nil store means today's purely in-memory behavior.
//
// The contract the containers rely on:
//
//   - NewPage returns a *mem.Page whose identity is stable for the life of
//     the registration: eviction drops only Page.Buf, and Pin brings the
//     same Page back resident. Page.Used survives eviction.
//   - A page is evictable only once Seal is called on it and only while
//     its pin count is zero. Containers seal a page when they open the
//     next one, so the append head is always safe to write without a pin.
//   - Pin restores the page if needed and increments its pin count; every
//     Pin is paired with exactly one Unpin. Writes to a pinned page that
//     already hit the file must be announced with MarkDirty, or eviction
//     may drop them in favor of the stale spill copy.
//   - Free releases the page (and any spill copy) permanently.
//
// All methods are called from the owning rank's goroutine only; stores
// need no internal locking beyond what the arena and PFS already do.
type PageStore interface {
	// NewPage allocates and registers a page of the given size, evicting
	// cold pages first if the arena is past its watermark.
	NewPage(size int) (PageID, *mem.Page, error)
	// Pin makes the page resident (restoring it from the spill file if
	// evicted) and protects it from eviction until Unpin.
	Pin(id PageID) (*mem.Page, error)
	// Unpin releases one pin.
	Unpin(id PageID)
	// Seal marks the page complete: its Used bytes are final (in-place
	// value scatter via MarkDirty aside) and it becomes an eviction
	// candidate.
	Seal(id PageID)
	// MarkDirty records that a pinned page's bytes changed since they were
	// last spilled, forcing a rewrite on the next eviction.
	MarkDirty(id PageID)
	// Free unregisters the page, releasing its memory and spill copy.
	Free(id PageID)
	// Reserve charges n non-page bytes (container metadata) to the arena,
	// evicting pages to make room if necessary. Callers release the bytes
	// with a plain Arena.Free.
	Reserve(n int64) error
}
