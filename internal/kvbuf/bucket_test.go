package kvbuf

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"mimir/internal/mem"
)

func sumMerge(existing, incoming []byte) ([]byte, error) {
	binary.LittleEndian.PutUint64(existing,
		binary.LittleEndian.Uint64(existing)+binary.LittleEndian.Uint64(incoming))
	return existing, nil
}

func u64(n uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, n)
	return b
}

func TestBucketPutGet(t *testing.T) {
	a := mem.NewArena(0)
	b, err := NewBucket(a, 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if v, ok := b.Get([]byte("k1")); !ok || string(v) != "v1" {
		t.Errorf("Get(k1) = %q,%v", v, ok)
	}
	if _, ok := b.Get([]byte("absent")); ok {
		t.Error("Get(absent) found something")
	}
	// Same-length replace happens in place (no garbage).
	if err := b.Put([]byte("k1"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if v, _ := b.Get([]byte("k1")); string(v) != "v2" {
		t.Errorf("Get after replace = %q", v)
	}
	if b.GarbageBytes() != 0 {
		t.Errorf("garbage = %d after in-place replace", b.GarbageBytes())
	}
	// Different-length replace leaves garbage.
	if err := b.Put([]byte("k1"), []byte("longer-value")); err != nil {
		t.Fatal(err)
	}
	if b.GarbageBytes() != 2 {
		t.Errorf("garbage = %d, want 2", b.GarbageBytes())
	}
	if b.Len() != 1 {
		t.Errorf("Len = %d, want 1", b.Len())
	}
}

func TestBucketUpsertCombines(t *testing.T) {
	a := mem.NewArena(0)
	b, err := NewBucket(a, 256)
	if err != nil {
		t.Fatal(err)
	}
	// WordCount-style combining: repeated keys sum their counts.
	words := []string{"the", "quick", "the", "fox", "the", "quick"}
	for _, w := range words {
		if err := b.Upsert([]byte(w), u64(1), sumMerge); err != nil {
			t.Fatal(err)
		}
	}
	if b.Len() != 3 {
		t.Errorf("Len = %d, want 3 unique words", b.Len())
	}
	want := map[string]uint64{"the": 3, "quick": 2, "fox": 1}
	for w, n := range want {
		v, ok := b.Get([]byte(w))
		if !ok || binary.LittleEndian.Uint64(v) != n {
			t.Errorf("Get(%s) = %v,%v want %d", w, v, ok, n)
		}
	}
}

func TestBucketScanInsertionOrder(t *testing.T) {
	a := mem.NewArena(0)
	b, err := NewBucket(a, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := b.Put([]byte(fmt.Sprintf("key-%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	err = b.Scan(func(k, v []byte) error {
		if want := fmt.Sprintf("key-%03d", i); string(k) != want {
			return fmt.Errorf("scan[%d] = %q, want %q", i, k, want)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != 200 {
		t.Errorf("scanned %d entries, want 200 (growth must preserve order)", i)
	}
}

func TestBucketGrowthKeepsEntries(t *testing.T) {
	a := mem.NewArena(0)
	b, err := NewBucket(a, 1024)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000 // forces many head-table doublings
	for i := 0; i < n; i++ {
		if err := b.Upsert(u64(uint64(i)), u64(uint64(i)), sumMerge); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		v, ok := b.Get(u64(uint64(i)))
		if !ok || binary.LittleEndian.Uint64(v) != uint64(i) {
			t.Fatalf("entry %d lost after growth", i)
		}
	}
}

func TestBucketMemoryAccounting(t *testing.T) {
	a := mem.NewArena(0)
	b, err := NewBucket(a, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := b.Put([]byte(fmt.Sprintf("key%d", i)), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	if a.Used() != b.MemoryBytes() {
		t.Errorf("arena used %d != bucket MemoryBytes %d", a.Used(), b.MemoryBytes())
	}
	b.Free()
	if a.Used() != 0 {
		t.Errorf("arena used %d after Free, want 0", a.Used())
	}
}

func TestBucketOOM(t *testing.T) {
	a := mem.NewArena(600)
	b, err := NewBucket(a, 128)
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := 0; i < 1000 && lastErr == nil; i++ {
		lastErr = b.Put([]byte(fmt.Sprintf("key%d", i)), []byte("value"))
	}
	if !errors.Is(lastErr, mem.ErrNoMemory) {
		t.Fatalf("expected ErrNoMemory, got %v", lastErr)
	}
	b.Free()
	if a.Used() != 0 {
		t.Errorf("arena used %d after OOM + Free", a.Used())
	}
}

func TestBucketUpsertMergeError(t *testing.T) {
	a := mem.NewArena(0)
	b, _ := NewBucket(a, 256)
	boom := errors.New("merge failed")
	if err := b.Upsert([]byte("k"), []byte("v"), nil); err != nil {
		t.Fatal(err) // nil merge never called on first insert
	}
	err := b.Upsert([]byte("k"), []byte("v"), func(_, _ []byte) ([]byte, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Errorf("Upsert merge error = %v", err)
	}
}

// Property: the bucket behaves exactly like a map under Upsert-with-sum for
// arbitrary key sequences.
func TestBucketMatchesMapProperty(t *testing.T) {
	f := func(keys []uint8) bool {
		a := mem.NewArena(0)
		b, err := NewBucket(a, 256)
		if err != nil {
			return false
		}
		ref := map[string]uint64{}
		for _, kb := range keys {
			k := []byte{kb}
			ref[string(k)]++
			if err := b.Upsert(k, u64(1), sumMerge); err != nil {
				return false
			}
		}
		if b.Len() != len(ref) {
			return false
		}
		got := map[string]uint64{}
		_ = b.Scan(func(k, v []byte) error {
			got[string(k)] = binary.LittleEndian.Uint64(v)
			return nil
		})
		if len(got) != len(ref) {
			return false
		}
		for k, n := range ref {
			if got[k] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestConvertGroupsValues(t *testing.T) {
	a := mem.NewArena(0)
	in := NewKVC(a, 256, DefaultHint())
	pairs := [][2]string{
		{"b", "1"}, {"a", "x"}, {"b", "22"}, {"c", "zz"}, {"a", "yy"}, {"b", "3"},
	}
	for _, p := range pairs {
		if err := in.Append([]byte(p[0]), []byte(p[1])); err != nil {
			t.Fatal(err)
		}
	}
	out, err := Convert(in, a, 256, DefaultHint())
	if err != nil {
		t.Fatal(err)
	}
	defer out.Free()
	got := map[string][]string{}
	var order []string
	err = out.Scan(func(key []byte, vals *ValueIter) error {
		order = append(order, string(key))
		for v, ok := vals.Next(); ok; v, ok = vals.Next() {
			got[string(key)] = append(got[string(key)], string(v))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]string{"a": {"x", "yy"}, "b": {"1", "22", "3"}, "c": {"zz"}}
	for k, vs := range want {
		if fmt.Sprint(got[k]) != fmt.Sprint(vs) {
			t.Errorf("key %q: got %v, want %v", k, got[k], vs)
		}
	}
	// First-appearance order.
	if fmt.Sprint(order) != "[b a c]" {
		t.Errorf("key order = %v, want [b a c]", order)
	}
	// The input was drained: only the KMVC (plus its metadata) remains.
	if a.Used() != out.ReservedBytes() {
		t.Errorf("arena used %d != KMVC reservation %d (input must be drained, index freed)",
			a.Used(), out.ReservedBytes())
	}
}

// Property: Convert(in) groups exactly like a reference map grouping, for
// random multisets of KVs, under both default and hinted encodings.
func TestConvertMatchesReferenceProperty(t *testing.T) {
	f := func(seed uint16) bool {
		a := mem.NewArena(0)
		hint := DefaultHint()
		if seed%2 == 1 {
			hint = Hint{Key: StrZ(), Val: Fixed(8)}
		}
		in := NewKVC(a, 512, hint)
		ref := map[string][]string{}
		n := int(seed%50) + 1
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("k%d", (i*7+int(seed))%10)
			v := u64(uint64(i))
			if hint.Val.IsVarlen() {
				v = []byte(fmt.Sprintf("v%d", i))
			}
			if err := in.Append([]byte(k), v); err != nil {
				return false
			}
			ref[k] = append(ref[k], string(v))
		}
		out, err := Convert(in, a, 512, hint)
		if err != nil {
			return false
		}
		defer out.Free()
		if out.NumKMV() != len(ref) {
			return false
		}
		ok := true
		_ = out.Scan(func(key []byte, vals *ValueIter) error {
			var vs []string
			for v, more := vals.Next(); more; v, more = vals.Next() {
				vs = append(vs, string(v))
			}
			want := ref[string(key)]
			sort.Strings(vs)
			sorted := append([]string(nil), want...)
			sort.Strings(sorted)
			if !bytes.Equal([]byte(fmt.Sprint(vs)), []byte(fmt.Sprint(sorted))) {
				ok = false
			}
			return nil
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestConvertEmptyInput(t *testing.T) {
	a := mem.NewArena(0)
	in := NewKVC(a, 256, DefaultHint())
	out, err := Convert(in, a, 256, DefaultHint())
	if err != nil {
		t.Fatal(err)
	}
	if out.NumKMV() != 0 {
		t.Errorf("NumKMV = %d for empty input", out.NumKMV())
	}
	out.Free()
	if a.Used() != 0 {
		t.Error("leak on empty convert")
	}
}

func TestConvertOOM(t *testing.T) {
	// Arena large enough for the input but not for input + index + output.
	a := mem.NewArena(4096)
	in := NewKVC(a, 512, DefaultHint())
	for i := 0; i < 100; i++ {
		if err := in.Append([]byte(fmt.Sprintf("key-%03d", i)), []byte("valuevalue")); err != nil {
			t.Fatalf("setup append %d: %v", i, err)
		}
	}
	_, err := Convert(in, a, 512, DefaultHint())
	if !errors.Is(err, mem.ErrNoMemory) {
		t.Fatalf("Convert = %v, want ErrNoMemory", err)
	}
}
