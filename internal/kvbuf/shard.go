package kvbuf

import (
	"fmt"

	"mimir/internal/mem"
)

// ShardedBucket partitions a Bucket's key space across independent shard
// buckets so concurrent workers can upsert disjoint shards without locks,
// while Scan replays the entries in exactly the insertion order a single
// serial Bucket would have produced. The contract that makes this work:
//
//   - a key always belongs to the shard ShardOf(k), and only that shard's
//     owning worker may Upsert it;
//   - every Upsert is tagged with the key's global sequence number — the
//     position in the serial KV stream of the KV that caused it;
//   - each shard remembers the sequence at which each of its keys first
//     appeared, and Scan merges the shards by that sequence.
//
// Because every worker walks the same KV stream in order (skipping keys of
// other shards), per-shard sequences are strictly increasing and the merge
// is a simple minimum-front scan. The sequence tables live in plain Go
// memory (8 bytes per unique key), deliberately outside the arena: they are
// scaffolding of the execution mode, not job data, and vanish with the
// bucket.
//
// Distinct shards may be operated concurrently; operations on one shard
// must be serialized by its owner. Scan and Get require all writers to have
// finished (synchronize via the worker join).
type ShardedBucket struct {
	shards []*Bucket
	seqs   [][]uint64 // per shard: first-appearance seq of entry i
}

// NewShardedBucket creates a bucket sharded nshards ways. The shards never
// spill and are not routed through a PageStore: sharded operation is the
// purely in-memory execution mode (the spill store serializes access and
// would defeat it).
func NewShardedBucket(arena *mem.Arena, pageSize, nshards int) (*ShardedBucket, error) {
	if nshards < 1 {
		return nil, fmt.Errorf("kvbuf: sharded bucket needs >= 1 shards, got %d", nshards)
	}
	b := &ShardedBucket{
		shards: make([]*Bucket, nshards),
		seqs:   make([][]uint64, nshards),
	}
	for i := range b.shards {
		s, err := NewBucket(arena, pageSize)
		if err != nil {
			b.Free()
			return nil, err
		}
		b.shards[i] = s
	}
	return b, nil
}

// NumShards returns the shard count.
func (b *ShardedBucket) NumShards() int { return len(b.shards) }

// ShardOf returns the shard owning key k. It reuses the key hash that
// routes KVs to ranks, so sharding adds no new hash pass.
func (b *ShardedBucket) ShardOf(k []byte) int {
	return int(HashKey(k) % uint64(len(b.shards)))
}

// Upsert merges (k, v) into shard (which must equal ShardOf(k)), recording
// seq if the key is new. Only the shard's owning worker may call this.
func (b *ShardedBucket) Upsert(shard int, seq uint64, k, v []byte, merge func(existing, incoming []byte) ([]byte, error)) error {
	s := b.shards[shard]
	before := s.Len()
	if err := s.Upsert(k, v, merge); err != nil {
		return err
	}
	if s.Len() > before {
		b.seqs[shard] = append(b.seqs[shard], seq)
	}
	return nil
}

// Get returns the value stored for k. The slice aliases bucket memory.
func (b *ShardedBucket) Get(k []byte) ([]byte, bool) {
	return b.shards[b.ShardOf(k)].Get(k)
}

// Len returns the number of unique keys across all shards.
func (b *ShardedBucket) Len() int {
	n := 0
	for _, s := range b.shards {
		n += s.Len()
	}
	return n
}

// MemoryBytes returns the arena reservation attributable to the bucket.
func (b *ShardedBucket) MemoryBytes() int64 {
	var n int64
	for _, s := range b.shards {
		if s != nil {
			n += s.MemoryBytes()
		}
	}
	return n
}

// Scan calls fn for every (key, value) in global first-appearance order —
// the insertion order a single serial Bucket fed the same KV stream would
// have — by merging the shards on their recorded sequences. Slices alias
// bucket memory.
func (b *ShardedBucket) Scan(fn func(k, v []byte) error) error {
	cur := make([]int, len(b.shards))
	remaining := b.Len()
	for ; remaining > 0; remaining-- {
		best := -1
		var bestSeq uint64
		for s := range b.shards {
			if cur[s] >= len(b.seqs[s]) {
				continue
			}
			if seq := b.seqs[s][cur[s]]; best < 0 || seq < bestSeq {
				best, bestSeq = s, seq
			}
		}
		if best < 0 {
			return fmt.Errorf("kvbuf: sharded bucket scan lost entries (%d unscanned)", remaining)
		}
		k, v := b.shards[best].Entry(cur[best])
		cur[best]++
		if err := fn(k, v); err != nil {
			return err
		}
	}
	return nil
}

// Free releases all shards back to the arena.
func (b *ShardedBucket) Free() {
	for i, s := range b.shards {
		if s != nil {
			s.Free()
			b.shards[i] = nil
		}
	}
	b.seqs = nil
}

// String summarizes the bucket for debugging.
func (b *ShardedBucket) String() string {
	return fmt.Sprintf("ShardedBucket{shards=%d keys=%d mem=%dB}", len(b.shards), b.Len(), b.MemoryBytes())
}
