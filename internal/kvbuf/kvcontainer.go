package kvbuf

import (
	"fmt"

	"mimir/internal/mem"
)

// KVC is the paper's KV container: an opaque object managing a collection of
// encoded KVs in one or more fixed-size buffer pages. Pages are allocated
// from the node arena as KVs are inserted and can be freed as the data is
// consumed (Drain), which is the core of Mimir's memory efficiency.
type KVC struct {
	buf  *pagedBuf
	hint Hint
	nkv  int64
}

// NewKVC creates an empty container whose pages come from arena. hint
// selects the KV encoding (see Hint).
func NewKVC(arena *mem.Arena, pageSize int, hint Hint) *KVC {
	return NewKVCOn(nil, arena, pageSize, hint)
}

// NewKVCOn creates a container whose pages are registered with a PageStore
// for out-of-core eviction (see PageStore). A nil store is NewKVC.
func NewKVCOn(store PageStore, arena *mem.Arena, pageSize int, hint Hint) *KVC {
	return &KVC{buf: newStorePagedBuf(store, arena, pageSize), hint: hint}
}

// Hint returns the container's encoding hint.
func (c *KVC) Hint() Hint { return c.hint }

// Append encodes and stores one KV.
func (c *KVC) Append(k, v []byte) error {
	// Validate hints before reserving so a rejected KV leaves no hole.
	if err := c.hint.Key.check("key", k); err != nil {
		return err
	}
	if err := c.hint.Val.check("value", v); err != nil {
		return err
	}
	n := c.hint.EncodedSize(k, v)
	r, err := c.buf.reserve(n)
	if err != nil {
		return err
	}
	dst := c.buf.at(r, n)
	enc, err := c.hint.Encode(dst[:0], k, v)
	if err != nil {
		return err
	}
	if len(enc) != n {
		panic(fmt.Sprintf("kvbuf: encoded size %d != computed size %d", len(enc), n))
	}
	c.nkv++
	return nil
}

// AppendChunk parses a buffer of concatenated encoded KVs (e.g. one rank's
// portion of an Alltoallv receive buffer) and appends each KV. It returns
// the number of KVs appended.
//
// The chunk is already in this container's encoding, so instead of a
// decode/re-encode round trip per KV it measures the maximal run of whole
// KVs that fits the head page's remainder and moves the run with one copy
// (fixed/fixed hints skip even the measuring — runs split by division).
// Runs never straddle a page boundary and the per-KV fallback handles page
// rolls and oversized records, so the resulting page layout is byte-for-byte
// identical to appending each KV individually.
func (c *KVC) AppendChunk(chunk []byte) (int, error) {
	count := 0
	pos := 0
	fixed, isFixed := c.hint.FixedSize()
	for pos < len(chunk) {
		room := c.buf.headRoom()
		if room == 0 {
			room = c.buf.pageSize // the next reserve opens a fresh page
		}
		runBytes, runKVs := 0, 0
		if isFixed {
			n := room / fixed
			if rem := (len(chunk) - pos) / fixed; n > rem {
				n = rem
			}
			runKVs, runBytes = n, n*fixed
		} else {
			for pos+runBytes < len(chunk) {
				n, err := c.hint.Measure(chunk[pos+runBytes:])
				if err != nil || runBytes+n > room {
					break // commit the valid prefix first; errors re-surface below
				}
				runBytes += n
				runKVs++
			}
		}
		if runKVs > 0 {
			r, err := c.buf.reserve(runBytes)
			if err != nil {
				return count, err
			}
			copy(c.buf.at(r, runBytes), chunk[pos:pos+runBytes])
			c.nkv += int64(runKVs)
			count += runKVs
			pos += runBytes
			continue
		}
		// No whole KV fits the head remainder (page roll or oversized
		// record), or the next KV is malformed: one per-KV append replicates
		// the slow path's layout and errors exactly.
		k, v, n, err := c.hint.Decode(chunk[pos:])
		if err != nil {
			return count, fmt.Errorf("kvbuf: bad chunk at offset %d: %w", pos, err)
		}
		if err := c.Append(k, v); err != nil {
			return count, err
		}
		pos += n
		count++
	}
	return count, nil
}

// NumKV returns the number of stored KVs.
func (c *KVC) NumKV() int64 { return c.nkv }

// Bytes returns the encoded payload bytes stored.
func (c *KVC) Bytes() int64 { return c.buf.usedBytes() }

// ReservedBytes returns the arena reservation currently held by the
// container's pages.
func (c *KVC) ReservedBytes() int64 { return c.buf.reservedBytes() }

// Scan calls fn for every stored KV in insertion order. The key and value
// slices alias container memory and are valid only during the call. Each
// page is pinned for the duration of its scan, so spilled pages stream
// back one at a time (plus the store's prefetch window), never all at once.
func (c *KVC) Scan(fn func(k, v []byte) error) error {
	for i := 0; i < c.buf.numPages(); i++ {
		p, err := c.buf.pinPage(i)
		if err != nil {
			return err
		}
		err = c.scanPage(p, fn)
		c.buf.unpinPage(i)
		if err != nil {
			return err
		}
	}
	return nil
}

// Drain is Scan that releases each page back to the arena immediately after
// its KVs are consumed — "when the data is read (consumed), the KVC frees
// buffers that are no longer needed". The container is empty afterwards,
// even on error.
func (c *KVC) Drain(fn func(k, v []byte) error) error {
	n := c.buf.numPages()
	c.nkv = 0
	var firstErr error
	for i := 0; i < n; i++ {
		if firstErr == nil {
			p, err := c.buf.pinPage(i)
			if err != nil {
				firstErr = err
			} else {
				err = c.scanPage(p, fn)
				c.buf.unpinPage(i)
				if err != nil {
					firstErr = err
				}
			}
		}
		c.buf.freePage(i)
	}
	c.buf.clear()
	return firstErr
}

func (c *KVC) scanPage(p *mem.Page, fn func(k, v []byte) error) error {
	data := p.Data()
	for pos := 0; pos < len(data); {
		k, v, n, err := c.hint.Decode(data[pos:])
		if err != nil {
			return fmt.Errorf("kvbuf: corrupt container page at %d: %w", pos, err)
		}
		if err := fn(k, v); err != nil {
			return err
		}
		pos += n
	}
	return nil
}

// Free releases all pages back to the arena.
func (c *KVC) Free() {
	c.buf.free()
	c.nkv = 0
}
