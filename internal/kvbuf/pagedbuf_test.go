package kvbuf

import (
	"bytes"
	"testing"
	"testing/quick"

	"mimir/internal/mem"
)

func TestPagedBufRefsStable(t *testing.T) {
	a := mem.NewArena(0)
	pb := newPagedBuf(a, 64)
	var refs []ref
	var want [][]byte
	for i := 0; i < 200; i++ {
		b := bytes.Repeat([]byte{byte(i)}, i%50+1)
		r, err := pb.append(b)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, r)
		want = append(want, b)
	}
	// All earlier refs must still resolve after later growth.
	for i, r := range refs {
		if !bytes.Equal(pb.at(r, len(want[i])), want[i]) {
			t.Fatalf("ref %d corrupted", i)
		}
	}
	if pb.usedBytes() > pb.reservedBytes() {
		t.Errorf("used %d > reserved %d", pb.usedBytes(), pb.reservedBytes())
	}
	pb.free()
	if a.Used() != 0 {
		t.Errorf("arena used %d after free", a.Used())
	}
}

func TestPagedBufOversized(t *testing.T) {
	a := mem.NewArena(0)
	pb := newPagedBuf(a, 16)
	big := bytes.Repeat([]byte{7}, 500)
	r, err := pb.append(big)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pb.at(r, 500), big) {
		t.Error("oversized record corrupted")
	}
	// The oversized page is charged exactly, not rounded to pageSize.
	if a.Used() != 500+0 && a.Used() != 500 {
		t.Errorf("arena used %d, want 500", a.Used())
	}
	pb.free()
}

func TestPagedBufInvalidPageSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("pageSize 0 did not panic")
		}
	}()
	newPagedBuf(mem.NewArena(0), 0)
}

// Property: appends never alias each other — writing one record never
// alters another — across random record sizes.
func TestPagedBufIsolationProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		a := mem.NewArena(0)
		pb := newPagedBuf(a, 32)
		type entry struct {
			r ref
			b []byte
		}
		var entries []entry
		for i, s := range sizes {
			n := int(s)%60 + 1
			b := bytes.Repeat([]byte{byte(i + 1)}, n)
			r, err := pb.append(b)
			if err != nil {
				return false
			}
			entries = append(entries, entry{r, b})
		}
		for _, e := range entries {
			if !bytes.Equal(pb.at(e.r, len(e.b)), e.b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: reserve gives non-overlapping, writable regions.
func TestPagedBufReserveProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		a := mem.NewArena(0)
		pb := newPagedBuf(a, 48)
		var refs []ref
		var lens []int
		for _, s := range sizes {
			n := int(s)%40 + 1
			r, err := pb.reserve(n)
			if err != nil {
				return false
			}
			// Fill the region with a marker derived from its index.
			marker := byte(len(refs) + 1)
			buf := pb.at(r, n)
			for i := range buf {
				buf[i] = marker
			}
			refs = append(refs, r)
			lens = append(lens, n)
		}
		for i, r := range refs {
			buf := pb.at(r, lens[i])
			for _, b := range buf {
				if b != byte(i+1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBucketStringer(t *testing.T) {
	a := mem.NewArena(0)
	b, err := NewBucket(a, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Free()
	if err := b.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	s := b.String()
	if !bytes.Contains([]byte(s), []byte("keys=1")) {
		t.Errorf("String() = %q", s)
	}
}
