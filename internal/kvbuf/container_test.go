package kvbuf

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"mimir/internal/mem"
)

func TestKVCAppendScan(t *testing.T) {
	a := mem.NewArena(0)
	c := NewKVC(a, 64, DefaultHint())
	want := [][2]string{{"apple", "1"}, {"banana", "22"}, {"cherry", "333"}}
	for _, p := range want {
		if err := c.Append([]byte(p[0]), []byte(p[1])); err != nil {
			t.Fatal(err)
		}
	}
	if c.NumKV() != 3 {
		t.Errorf("NumKV = %d, want 3", c.NumKV())
	}
	var got [][2]string
	if err := c.Scan(func(k, v []byte) error {
		got = append(got, [2]string{string(k), string(v)})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Scan[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestKVCGrowsByPages(t *testing.T) {
	a := mem.NewArena(0)
	c := NewKVC(a, 32, DefaultHint())
	for i := 0; i < 100; i++ {
		if err := c.Append([]byte(fmt.Sprintf("key%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if a.Used() < c.Bytes() {
		t.Errorf("arena charge %d below payload %d", a.Used(), c.Bytes())
	}
	if c.ReservedBytes()%32 != 0 {
		t.Errorf("reservation %d not in page units", c.ReservedBytes())
	}
	c.Free()
	if a.Used() != 0 {
		t.Errorf("arena used %d after Free, want 0", a.Used())
	}
}

func TestKVCOversizedRecord(t *testing.T) {
	a := mem.NewArena(0)
	c := NewKVC(a, 16, DefaultHint())
	big := bytes.Repeat([]byte("x"), 100)
	if err := c.Append([]byte("k"), big); err != nil {
		t.Fatal(err)
	}
	found := false
	if err := c.Scan(func(k, v []byte) error {
		found = bytes.Equal(v, big)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Error("oversized record lost")
	}
}

func TestKVCDrainFreesPages(t *testing.T) {
	a := mem.NewArena(0)
	c := NewKVC(a, 64, DefaultHint())
	for i := 0; i < 50; i++ {
		if err := c.Append([]byte(fmt.Sprintf("key%02d", i)), []byte("val")); err != nil {
			t.Fatal(err)
		}
	}
	before := a.Used()
	if before == 0 {
		t.Fatal("no arena charge before drain")
	}
	n := 0
	if err := c.Drain(func(k, v []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Errorf("drained %d KVs, want 50", n)
	}
	if a.Used() != 0 {
		t.Errorf("arena used %d after Drain, want 0", a.Used())
	}
	if c.NumKV() != 0 {
		t.Errorf("NumKV = %d after Drain", c.NumKV())
	}
}

func TestKVCDrainErrorStillFrees(t *testing.T) {
	a := mem.NewArena(0)
	c := NewKVC(a, 64, DefaultHint())
	for i := 0; i < 50; i++ {
		if err := c.Append([]byte(fmt.Sprintf("key%02d", i)), []byte("val")); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("boom")
	err := c.Drain(func(k, v []byte) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("Drain error = %v", err)
	}
	if a.Used() != 0 {
		t.Errorf("arena used %d after failed Drain, want 0 (pages must not leak)", a.Used())
	}
}

func TestKVCAppendChunk(t *testing.T) {
	h := Hint{Key: StrZ(), Val: Fixed(2)}
	var chunk []byte
	var err error
	for i := 0; i < 5; i++ {
		chunk, err = h.Encode(chunk, []byte(fmt.Sprintf("k%d", i)), []byte{byte(i), 0xFF})
		if err != nil {
			t.Fatal(err)
		}
	}
	a := mem.NewArena(0)
	c := NewKVC(a, 64, h)
	n, err := c.AppendChunk(chunk)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 || c.NumKV() != 5 {
		t.Errorf("AppendChunk = %d (NumKV %d), want 5", n, c.NumKV())
	}
	if _, err := c.AppendChunk([]byte{1, 2}); err == nil {
		t.Error("AppendChunk accepted garbage")
	}
}

func TestKVCHintRejection(t *testing.T) {
	a := mem.NewArena(0)
	c := NewKVC(a, 64, Hint{Key: StrZ(), Val: Fixed(8)})
	if err := c.Append([]byte("ok"), []byte("short")); err == nil {
		t.Error("Append accepted hint-violating value")
	}
	if c.NumKV() != 0 || c.Bytes() != 0 {
		t.Error("failed Append left residue")
	}
}

func TestKVCOOM(t *testing.T) {
	a := mem.NewArena(100)
	c := NewKVC(a, 64, DefaultHint())
	var err error
	for i := 0; i < 100 && err == nil; i++ {
		err = c.Append([]byte("some-key-data"), []byte("some-value"))
	}
	if !errors.Is(err, mem.ErrNoMemory) {
		t.Fatalf("expected ErrNoMemory, got %v", err)
	}
	c.Free()
	if a.Used() != 0 {
		t.Error("leak after OOM + Free")
	}
}

// Property: KV-hint encodings always use no more container bytes than the
// default encoding for the same data (the Fig 7 saving).
func TestHintNeverLargerProperty(t *testing.T) {
	f := func(words []string) bool {
		def := DefaultHint()
		hinted := Hint{Key: StrZ(), Val: Fixed(8)}
		var defBytes, hintBytes int
		val := make([]byte, 8)
		for _, w := range words {
			k := []byte(w)
			if bytes.IndexByte(k, 0) >= 0 {
				continue
			}
			defBytes += def.EncodedSize(k, val)
			hintBytes += hinted.EncodedSize(k, val)
		}
		return hintBytes <= defBytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKMVCBuildAndScan(t *testing.T) {
	a := mem.NewArena(0)
	c := NewKMVC(a, 128, DefaultHint())
	id0, err := c.NewRecord([]byte("fruit"), 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	id1, err := c.NewRecord([]byte("veg"), 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []struct {
		id int
		v  string
	}{{id0, "apple"}, {id1, "carrot"}, {id0, "banana"}} {
		if err := c.AppendValue(step.id, []byte(step.v)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	err = c.Scan(func(key []byte, vals *ValueIter) error {
		var vs []string
		for v, ok := vals.Next(); ok; v, ok = vals.Next() {
			vs = append(vs, string(v))
		}
		got = append(got, fmt.Sprintf("%s=%v(len %d)", key, vs, vals.Len()))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"fruit=[apple banana](len 2)", "veg=[carrot](len 1)"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Scan = %v, want %v", got, want)
	}
	c.Free()
	if a.Used() != 0 {
		t.Error("arena leak after KMVC Free")
	}
}

func TestKMVCIncompleteScanFails(t *testing.T) {
	a := mem.NewArena(0)
	c := NewKMVC(a, 128, DefaultHint())
	if _, err := c.NewRecord([]byte("k"), 2, 4); err != nil {
		t.Fatal(err)
	}
	if err := c.Scan(func([]byte, *ValueIter) error { return nil }); err == nil {
		t.Error("Scan of incomplete record succeeded")
	}
}

func TestKMVCOverfillRejected(t *testing.T) {
	a := mem.NewArena(0)
	c := NewKMVC(a, 128, DefaultHint())
	id, err := c.NewRecord([]byte("k"), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AppendValue(id, []byte("xx")); err != nil {
		t.Fatal(err)
	}
	if err := c.AppendValue(id, []byte("y")); err == nil {
		t.Error("AppendValue beyond declared count succeeded")
	}
	if err := c.AppendValue(99, []byte("y")); err == nil {
		t.Error("AppendValue with bad id succeeded")
	}
}

func TestKMVCFixedValueLayoutSaves(t *testing.T) {
	a1 := mem.NewArena(0)
	a2 := mem.NewArena(0)
	varc := NewKMVC(a1, 1<<20, DefaultHint())
	fixc := NewKMVC(a2, 1<<20, Hint{Key: Varlen(), Val: Fixed(8)})
	v := make([]byte, 8)
	id1, _ := varc.NewRecord([]byte("key"), 100, 800)
	id2, _ := fixc.NewRecord([]byte("key"), 100, 800)
	for i := 0; i < 100; i++ {
		if err := varc.AppendValue(id1, v); err != nil {
			t.Fatal(err)
		}
		if err := fixc.AppendValue(id2, v); err != nil {
			t.Fatal(err)
		}
	}
	if fixc.Bytes() >= varc.Bytes() {
		t.Errorf("fixed-value KMV (%d B) not smaller than varlen (%d B)", fixc.Bytes(), varc.Bytes())
	}
}

func TestValueIterReset(t *testing.T) {
	a := mem.NewArena(0)
	c := NewKMVC(a, 128, Hint{Key: Varlen(), Val: StrZ()})
	id, err := c.NewRecord([]byte("k"), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AppendValue(id, []byte("ab")); err != nil {
		t.Fatal(err)
	}
	if err := c.AppendValue(id, []byte("cd")); err != nil {
		t.Fatal(err)
	}
	err = c.Scan(func(key []byte, vals *ValueIter) error {
		for pass := 0; pass < 2; pass++ {
			var n int
			for _, ok := vals.Next(); ok; _, ok = vals.Next() {
				n++
			}
			if n != 2 {
				return fmt.Errorf("pass %d saw %d values", pass, n)
			}
			vals.Reset()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
