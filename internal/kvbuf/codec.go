// Package kvbuf implements the key-value machinery shared by both engines:
// the KV wire format with its optional KV-hint encodings (Section III-C3 of
// the paper), paged KV containers (KVC) and KMV containers (KMVC) whose
// pages are charged to a node memory arena (Section III-B), the combiner
// hash bucket used by KV compression and partial reduction (Sections
// III-C1/C2), and the two-pass KV-to-KMV convert algorithm (Section III-A).
package kvbuf

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// lenKind selects how the length of a key or value is represented.
type lenKind uint8

const (
	kindVarlen lenKind = iota // 4-byte length header before the data
	kindFixed                 // fixed, known length; no header
	kindStrZ                  // NUL-terminated string; no header
)

// LenMode describes the length encoding of one side (key or value) of a KV.
// The paper's default stores an explicit length for both sides ("an
// eight-byte header (two integers)"); the KV-hint optimization replaces a
// side's header with a fixed length, or with NUL termination for strings
// (the paper's reserved length of -1).
type LenMode struct {
	kind lenKind
	n    int
}

// Varlen is the default mode: a 4-byte length header precedes the data.
func Varlen() LenMode { return LenMode{kind: kindVarlen} }

// Fixed declares that every datum on this side is exactly n bytes, so no
// header is stored. n must be positive.
func Fixed(n int) LenMode {
	if n <= 0 {
		panic(fmt.Sprintf("kvbuf: Fixed length must be positive, got %d", n))
	}
	return LenMode{kind: kindFixed, n: n}
}

// StrZ declares that every datum on this side is a string without interior
// NUL bytes; it is stored NUL-terminated and its length is recomputed with
// the equivalent of strlen instead of being stored.
func StrZ() LenMode { return LenMode{kind: kindStrZ} }

// IsVarlen reports whether the mode stores an explicit length header.
func (m LenMode) IsVarlen() bool { return m.kind == kindVarlen }

// String returns a human-readable description of the mode.
func (m LenMode) String() string {
	switch m.kind {
	case kindVarlen:
		return "varlen"
	case kindFixed:
		return fmt.Sprintf("fixed(%d)", m.n)
	case kindStrZ:
		return "strz"
	}
	return "invalid"
}

// headerSize returns the per-datum header bytes this mode adds.
func (m LenMode) headerSize() int {
	if m.kind == kindVarlen {
		return 4
	}
	return 0
}

// dataSize returns the stored size of a datum of length n under this mode
// (excluding the header).
func (m LenMode) dataSize(n int) int {
	if m.kind == kindStrZ {
		return n + 1 // trailing NUL
	}
	return n
}

// check validates that b is encodable under the mode.
func (m LenMode) check(what string, b []byte) error {
	switch m.kind {
	case kindFixed:
		if len(b) != m.n {
			return fmt.Errorf("kvbuf: %s length %d violates fixed-length hint %d", what, len(b), m.n)
		}
	case kindStrZ:
		if bytes.IndexByte(b, 0) >= 0 {
			return fmt.Errorf("kvbuf: %s contains a NUL byte, violating the string hint", what)
		}
	}
	return nil
}

// Hint is the KV-hint setting for a container: the length modes of keys and
// values. The zero value is NOT valid; use DefaultHint or construct one
// explicitly.
type Hint struct {
	Key, Val LenMode
}

// DefaultHint is the paper's default encoding: explicit 4-byte length
// headers for both key and value (8 bytes of header per KV).
func DefaultHint() Hint { return Hint{Key: Varlen(), Val: Varlen()} }

// EncodedSize returns the number of bytes Encode will produce for (k, v).
func (h Hint) EncodedSize(k, v []byte) int {
	return h.Key.headerSize() + h.Val.headerSize() + h.Key.dataSize(len(k)) + h.Val.dataSize(len(v))
}

// Encode appends the KV encoding of (k, v) to dst and returns the extended
// slice. Layout: [klen?][vlen?][key(+NUL?)][value(+NUL?)], headers present
// only for varlen sides — matching the paper's description of the header
// preceding the actual data.
func (h Hint) Encode(dst []byte, k, v []byte) ([]byte, error) {
	if err := h.Key.check("key", k); err != nil {
		return dst, err
	}
	if err := h.Val.check("value", v); err != nil {
		return dst, err
	}
	if h.Key.IsVarlen() {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(k)))
	}
	if h.Val.IsVarlen() {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v)))
	}
	dst = append(dst, k...)
	if h.Key.kind == kindStrZ {
		dst = append(dst, 0)
	}
	dst = append(dst, v...)
	if h.Val.kind == kindStrZ {
		dst = append(dst, 0)
	}
	return dst, nil
}

// Decode reads one KV from the front of buf, returning the key and value as
// subslices of buf (no copying) and the total number of bytes consumed.
func (h Hint) Decode(buf []byte) (k, v []byte, n int, err error) {
	pos := 0
	klen, vlen := -1, -1
	if h.Key.IsVarlen() {
		if pos+4 > len(buf) {
			return nil, nil, 0, fmt.Errorf("kvbuf: truncated key header")
		}
		klen = int(binary.LittleEndian.Uint32(buf[pos:]))
		pos += 4
	} else if h.Key.kind == kindFixed {
		klen = h.Key.n
	}
	if h.Val.IsVarlen() {
		if pos+4 > len(buf) {
			return nil, nil, 0, fmt.Errorf("kvbuf: truncated value header")
		}
		vlen = int(binary.LittleEndian.Uint32(buf[pos:]))
		pos += 4
	} else if h.Val.kind == kindFixed {
		vlen = h.Val.n
	}
	// Key bytes.
	if klen < 0 { // strz: recompute the length, the paper's strlen
		i := bytes.IndexByte(buf[pos:], 0)
		if i < 0 {
			return nil, nil, 0, fmt.Errorf("kvbuf: unterminated string key")
		}
		k = buf[pos : pos+i]
		pos += i + 1
	} else {
		if pos+klen > len(buf) {
			return nil, nil, 0, fmt.Errorf("kvbuf: truncated key (%d bytes at %d of %d)", klen, pos, len(buf))
		}
		k = buf[pos : pos+klen]
		pos += klen
	}
	// Value bytes.
	if vlen < 0 {
		i := bytes.IndexByte(buf[pos:], 0)
		if i < 0 {
			return nil, nil, 0, fmt.Errorf("kvbuf: unterminated string value")
		}
		v = buf[pos : pos+i]
		pos += i + 1
	} else {
		if pos+vlen > len(buf) {
			return nil, nil, 0, fmt.Errorf("kvbuf: truncated value (%d bytes at %d of %d)", vlen, pos, len(buf))
		}
		v = buf[pos : pos+vlen]
		pos += vlen
	}
	return k, v, pos, nil
}

// Measure returns the number of bytes the first KV in buf occupies, with
// exactly Decode's validation and errors, but without materializing the key
// or value. It is the scan half of the AppendChunk fast path: whole runs of
// measured KVs can then be moved with one copy instead of a decode/encode
// round trip per KV.
func (h Hint) Measure(buf []byte) (int, error) {
	pos := 0
	klen, vlen := -1, -1
	if h.Key.IsVarlen() {
		if pos+4 > len(buf) {
			return 0, fmt.Errorf("kvbuf: truncated key header")
		}
		klen = int(binary.LittleEndian.Uint32(buf[pos:]))
		pos += 4
	} else if h.Key.kind == kindFixed {
		klen = h.Key.n
	}
	if h.Val.IsVarlen() {
		if pos+4 > len(buf) {
			return 0, fmt.Errorf("kvbuf: truncated value header")
		}
		vlen = int(binary.LittleEndian.Uint32(buf[pos:]))
		pos += 4
	} else if h.Val.kind == kindFixed {
		vlen = h.Val.n
	}
	if klen < 0 { // strz: find the NUL, the paper's strlen
		i := bytes.IndexByte(buf[pos:], 0)
		if i < 0 {
			return 0, fmt.Errorf("kvbuf: unterminated string key")
		}
		pos += i + 1
	} else {
		if pos+klen > len(buf) {
			return 0, fmt.Errorf("kvbuf: truncated key (%d bytes at %d of %d)", klen, pos, len(buf))
		}
		pos += klen
	}
	if vlen < 0 {
		i := bytes.IndexByte(buf[pos:], 0)
		if i < 0 {
			return 0, fmt.Errorf("kvbuf: unterminated string value")
		}
		pos += i + 1
	} else {
		if pos+vlen > len(buf) {
			return 0, fmt.Errorf("kvbuf: truncated value (%d bytes at %d of %d)", vlen, pos, len(buf))
		}
		pos += vlen
	}
	return pos, nil
}

// FixedSize returns the constant encoded size of every KV under this hint
// when both sides are fixed-length, and ok=false otherwise. Fixed/fixed
// containers need no per-KV scan at all: chunk runs split by division.
func (h Hint) FixedSize() (int, bool) {
	if h.Key.kind == kindFixed && h.Val.kind == kindFixed {
		return h.Key.n + h.Val.n, true
	}
	return 0, false
}

// HashKey returns the 64-bit FNV-1a hash of k, used to partition KVs across
// ranks and to index combiner buckets.
func HashKey(k []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range k {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}
