package kvbuf

import (
	"bytes"
	"fmt"
	"testing"

	"mimir/internal/mem"
)

// shardMerge is the merge used by the shard determinism tests: same-length
// pairs are folded byte-wise (exercising the bucket's in-place replacement),
// different lengths concatenate (exercising relocation + garbage).
func shardMerge(existing, incoming []byte) ([]byte, error) {
	if len(existing) == len(incoming) {
		for i := range existing {
			existing[i] += incoming[i]
		}
		return existing, nil
	}
	merged := append(append([]byte{}, existing...), incoming...)
	if len(merged) > 32 {
		merged = merged[:32]
	}
	return merged, nil
}

// feedSharded replays stream into a sharded bucket exactly the way the
// engine's workers do: every worker walks the full stream with a global
// sequence counter and upserts only its own shard's keys.
func feedSharded(t testing.TB, sb *ShardedBucket, stream [][2][]byte) {
	t.Helper()
	for w := 0; w < sb.NumShards(); w++ {
		var seq uint64
		for _, kv := range stream {
			cur := seq
			seq++
			if sb.ShardOf(kv[0]) != w {
				continue
			}
			if err := sb.Upsert(w, cur, kv[0], kv[1], shardMerge); err != nil {
				t.Fatalf("sharded upsert(%q): %v", kv[0], err)
			}
		}
	}
}

func collectBucket(t testing.TB, scan func(func(k, v []byte) error) error) [][2]string {
	t.Helper()
	var out [][2]string
	if err := scan(func(k, v []byte) error {
		out = append(out, [2]string{string(k), string(v)})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestShardedBucketMatchesSerial pins the core contract: for any worker
// count, the sequence-merged scan equals a single serial bucket's insertion
// order, entry for entry and byte for byte.
func TestShardedBucketMatchesSerial(t *testing.T) {
	stream := make([][2][]byte, 0, 400)
	for i := 0; i < 400; i++ {
		k := []byte(fmt.Sprintf("key-%d", i%97))
		v := []byte(fmt.Sprintf("val-%d", i%13))
		stream = append(stream, [2][]byte{k, v})
	}

	arena := mem.NewArena(0)
	ref, err := NewBucket(arena, 512)
	if err != nil {
		t.Fatal(err)
	}
	for _, kv := range stream {
		if err := ref.Upsert(kv[0], kv[1], shardMerge); err != nil {
			t.Fatal(err)
		}
	}
	want := collectBucket(t, ref.Scan)

	for _, workers := range []int{1, 2, 3, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			sb, err := NewShardedBucket(arena, 512, workers)
			if err != nil {
				t.Fatal(err)
			}
			defer sb.Free()
			feedSharded(t, sb, stream)
			if sb.Len() != ref.Len() {
				t.Fatalf("sharded Len %d, serial %d", sb.Len(), ref.Len())
			}
			got := collectBucket(t, sb.Scan)
			if len(got) != len(want) {
				t.Fatalf("sharded scan yields %d entries, serial %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("entry %d: sharded (%q, %q), serial (%q, %q)",
						i, got[i][0], got[i][1], want[i][0], want[i][1])
				}
			}
			for _, kv := range stream[:50] {
				sv, ok := sb.Get(kv[0])
				rv, rok := ref.Get(kv[0])
				if ok != rok || !bytes.Equal(sv, rv) {
					t.Fatalf("Get(%q): sharded (%q, %v), serial (%q, %v)", kv[0], sv, ok, rv, rok)
				}
			}
		})
	}

	ref.Free()
	used := arena.Used()
	if used != 0 {
		t.Fatalf("arena holds %d bytes after Free (leak)", used)
	}
}

// TestConvertParallelMatchesSerial proves the sharded two-pass convert
// produces the identical KMV container as the serial algorithm — same
// record order, same per-record value order, same payload bytes — for
// several worker counts and page sizes.
func TestConvertParallelMatchesSerial(t *testing.T) {
	type rec struct {
		key  string
		vals []string
	}
	collect := func(kmv *KMVC) []rec {
		var out []rec
		if err := kmv.Scan(func(key []byte, vals *ValueIter) error {
			r := rec{key: string(key)}
			for v, ok := vals.Next(); ok; v, ok = vals.Next() {
				r.vals = append(r.vals, string(v))
			}
			out = append(out, r)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	build := func(arena *mem.Arena, pageSize int) *KVC {
		kvc := NewKVC(arena, pageSize, DefaultHint())
		for i := 0; i < 500; i++ {
			k := []byte(fmt.Sprintf("w%d", i%83))
			v := []byte(fmt.Sprintf("value-%d", i))
			if err := kvc.Append(k, v); err != nil {
				t.Fatal(err)
			}
		}
		return kvc
	}

	for _, pageSize := range []int{256, 4096} {
		arena := mem.NewArena(0)
		in := build(arena, pageSize)
		ref, err := Convert(in, arena, pageSize, DefaultHint())
		if err != nil {
			t.Fatal(err)
		}
		want := collect(ref)
		wantBytes := ref.Bytes()

		for _, workers := range []int{1, 2, 3, 8} {
			t.Run(fmt.Sprintf("page=%d/workers=%d", pageSize, workers), func(t *testing.T) {
				in := build(arena, pageSize)
				kmv, work, err := ConvertParallel(in, arena, pageSize, DefaultHint(), workers)
				if err != nil {
					t.Fatal(err)
				}
				defer kmv.Free()
				if len(work) != workers {
					t.Fatalf("work slice has %d entries, want %d", len(work), workers)
				}
				var total int64
				for _, wb := range work {
					total += wb
				}
				if total == 0 {
					t.Fatal("per-worker work accounting is empty")
				}
				if kmv.NumKMV() != ref.NumKMV() || kmv.Bytes() != wantBytes {
					t.Fatalf("parallel KMV: %d records / %d bytes, serial %d / %d",
						kmv.NumKMV(), kmv.Bytes(), ref.NumKMV(), wantBytes)
				}
				got := collect(kmv)
				for i := range want {
					if got[i].key != want[i].key {
						t.Fatalf("record %d key %q, serial %q", i, got[i].key, want[i].key)
					}
					for j := range want[i].vals {
						if got[i].vals[j] != want[i].vals[j] {
							t.Fatalf("record %d value %d: %q, serial %q", i, j, got[i].vals[j], want[i].vals[j])
						}
					}
				}
			})
		}
		ref.Free()
		if arena.Used() != 0 {
			t.Fatalf("page=%d: arena holds %d bytes (leak)", pageSize, arena.Used())
		}
	}
}

// FuzzShardMerge feeds arbitrary KV streams through the sharded bucket and
// the sharded convert, checking both against their serial references for
// exact ordering and KMV sizing.
func FuzzShardMerge(f *testing.F) {
	f.Add([]byte("the quick brown fox the lazy dog the end"), uint8(4))
	f.Add([]byte("aaaa bb c dddddd bb aaaa"), uint8(2))
	f.Add([]byte{1, 2, 3, 0, 255, 254, 0, 9, 17, 17, 17, 3, 3}, uint8(7))
	f.Add([]byte(""), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, rawWorkers uint8) {
		workers := int(rawWorkers)%8 + 1
		// Slice the fuzz input into a KV stream (keys 1..8 bytes, values
		// 0..8 bytes) — duplicates across the stream are what exercise the
		// merge order.
		var stream [][2][]byte
		for pos := 0; pos+2 <= len(data) && len(stream) < 64; {
			klen := int(data[pos]%8) + 1
			vlen := int(data[pos+1] % 8)
			pos += 2
			if pos+klen+vlen > len(data) {
				break
			}
			stream = append(stream, [2][]byte{
				append([]byte{}, data[pos:pos+klen]...),
				append([]byte{}, data[pos+klen:pos+klen+vlen]...),
			})
			pos += klen + vlen
		}

		arena := mem.NewArena(0)

		// Bucket order equivalence.
		ref, err := NewBucket(arena, 256)
		if err != nil {
			t.Fatal(err)
		}
		for _, kv := range stream {
			if err := ref.Upsert(kv[0], kv[1], shardMerge); err != nil {
				t.Fatal(err)
			}
		}
		sb, err := NewShardedBucket(arena, 256, workers)
		if err != nil {
			t.Fatal(err)
		}
		feedSharded(t, sb, stream)
		want := collectBucket(t, ref.Scan)
		got := collectBucket(t, sb.Scan)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: sharded scan yields %d entries, serial %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d entry %d: sharded (%q, %q), serial (%q, %q)",
					workers, i, got[i][0], got[i][1], want[i][0], want[i][1])
			}
		}
		ref.Free()
		sb.Free()

		// Convert equivalence: exact record order, value order, and sizing.
		hint := Hint{Key: Varlen(), Val: Varlen()}
		load := func() *KVC {
			kvc := NewKVC(arena, 256, hint)
			for _, kv := range stream {
				if err := kvc.Append(kv[0], kv[1]); err != nil {
					t.Fatal(err)
				}
			}
			return kvc
		}
		serial, err := Convert(load(), arena, 256, hint)
		if err != nil {
			t.Fatal(err)
		}
		parallel, _, err := ConvertParallel(load(), arena, 256, hint, workers)
		if err != nil {
			t.Fatal(err)
		}
		if parallel.NumKMV() != serial.NumKMV() || parallel.Bytes() != serial.Bytes() {
			t.Fatalf("workers=%d: parallel KMV %d records / %d bytes, serial %d / %d",
				workers, parallel.NumKMV(), parallel.Bytes(), serial.NumKMV(), serial.Bytes())
		}
		type entry struct{ key, vals string }
		flatten := func(c *KMVC) []entry {
			var out []entry
			if err := c.Scan(func(key []byte, vals *ValueIter) error {
				e := entry{key: string(key)}
				for v, ok := vals.Next(); ok; v, ok = vals.Next() {
					e.vals += fmt.Sprintf("%d:%q,", len(v), v)
				}
				out = append(out, e)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			return out
		}
		se, pe := flatten(serial), flatten(parallel)
		for i := range se {
			if se[i] != pe[i] {
				t.Fatalf("workers=%d KMV record %d: parallel %+v, serial %+v", workers, i, pe[i], se[i])
			}
		}
		serial.Free()
		parallel.Free()
		if arena.Used() != 0 {
			t.Fatalf("arena holds %d bytes after Free (leak)", arena.Used())
		}
	})
}
