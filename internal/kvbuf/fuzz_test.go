package kvbuf

import (
	"bytes"
	"testing"

	"mimir/internal/mem"
)

// fuzzHint maps a pair of mode bytes to a Hint, sanitizing (k, v) so they
// are legal under it: fixed sides are padded/truncated to the declared
// length, strz sides have NUL bytes replaced. Covers all nine combinations
// of varlen, Fixed, and StrZ (NullTerminated) on each side.
func fuzzHint(keyMode, valMode uint8, k, v []byte) (Hint, []byte, []byte) {
	side := func(mode uint8, b []byte) (LenMode, []byte) {
		switch mode % 3 {
		case 1:
			n := int(mode/3)%15 + 1
			fixed := make([]byte, n)
			copy(fixed, b)
			return Fixed(n), fixed
		case 2:
			return StrZ(), bytes.ReplaceAll(b, []byte{0}, []byte{1})
		}
		return Varlen(), b
	}
	km, k2 := side(keyMode, k)
	vm, v2 := side(valMode, v)
	return Hint{Key: km, Val: vm}, k2, v2
}

// FuzzCodecRoundTrip checks, for every hint mode combination, that
// (1) Encode→Decode is the identity and consumes exactly the encoded bytes,
// and (2) Decode never panics and never reports success with zero consumed
// bytes on arbitrary input (the invariant that keeps stream decoding from
// looping forever).
func FuzzCodecRoundTrip(f *testing.F) {
	// Seeds from the table tests: one per hint shape, plus raw junk.
	f.Add([]byte("abc"), []byte("12345678"), uint8(0), uint8(0))
	f.Add([]byte("word"), []byte("12345678"), uint8(2), uint8(0))
	f.Add([]byte("word"), []byte("12345678"), uint8(2), uint8(22)) // strz key, fixed(8) value
	f.Add([]byte("abc"), []byte("12345678"), uint8(7), uint8(22))  // fixed(3)/fixed(8)
	f.Add([]byte("hello"), []byte("world"), uint8(0), uint8(2))
	f.Add([]byte(""), []byte(""), uint8(2), uint8(2))
	f.Add([]byte("no-nul-here"), []byte{0xff, 0xfe}, uint8(1), uint8(5))
	f.Fuzz(func(t *testing.T, k, v []byte, keyMode, valMode uint8) {
		h, k, v := fuzzHint(keyMode, valMode, k, v)
		enc, err := h.Encode(nil, k, v)
		if err != nil {
			t.Fatalf("Encode(%q, %q) under %v/%v: %v", k, v, h.Key, h.Val, err)
		}
		if len(enc) != h.EncodedSize(k, v) {
			t.Fatalf("encoded %d bytes, EncodedSize says %d", len(enc), h.EncodedSize(k, v))
		}
		gk, gv, n, err := h.Decode(enc)
		if err != nil {
			t.Fatalf("Decode of own encoding failed: %v", err)
		}
		if n != len(enc) || !bytes.Equal(gk, k) || !bytes.Equal(gv, v) {
			t.Fatalf("round trip (%q, %q) -> (%q, %q), consumed %d/%d", k, v, gk, gv, n, len(enc))
		}

		// Adversarial decode: the raw fuzz input (plus the encoding) fed to
		// every decoder must either error or make progress — never panic,
		// never succeed consuming nothing.
		raw := append(append([]byte{}, k...), v...)
		for _, buf := range [][]byte{raw, enc[:len(enc)/2], append(enc, raw...)} {
			for km := uint8(0); km < 3; km++ {
				for vm := uint8(0); vm < 3; vm++ {
					dh, _, _ := fuzzHint(km, vm, nil, nil)
					if _, _, dn, derr := dh.Decode(buf); derr == nil && dn <= 0 {
						t.Fatalf("Decode under %v/%v consumed %d bytes without error", dh.Key, dh.Val, dn)
					}
				}
			}
		}
	})
}

// FuzzConvert drives the two-pass KV→KMV convert with arbitrary KV streams
// and hint modes: the KMV output must hold exactly the input multiset
// (grouped by key), and all arena memory must be returned after Free.
func FuzzConvert(f *testing.F) {
	f.Add([]byte("the quick brown fox the lazy dog the end"), uint8(0), uint8(0))
	f.Add([]byte("aaaa bb c dddddd bb aaaa"), uint8(2), uint8(0))
	f.Add([]byte{1, 2, 3, 0, 255, 254, 0, 9}, uint8(0), uint8(4))
	f.Add([]byte(""), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, keyMode, valMode uint8) {
		hint, _, _ := fuzzHint(keyMode, valMode, nil, nil)
		arena := mem.NewArena(0)
		kvc := NewKVC(arena, 256, hint)

		// Slice the fuzz input into KVs, sanitized for the hint.
		type kv struct{ k, v string }
		var want []kv
		for pos := 0; pos+2 <= len(data) && len(want) < 64; {
			klen := int(data[pos]%8) + 1
			vlen := int(data[pos+1] % 8)
			pos += 2
			if pos+klen+vlen > len(data) {
				break
			}
			_, k, v := fuzzHint(keyMode, valMode, data[pos:pos+klen], data[pos+klen:pos+klen+vlen])
			pos += klen + vlen
			if err := kvc.Append(k, v); err != nil {
				t.Fatalf("Append(%q, %q): %v", k, v, err)
			}
			want = append(want, kv{string(k), string(v)})
		}

		kmv, err := Convert(kvc, arena, 256, hint)
		if err != nil {
			t.Fatalf("Convert: %v", err)
		}
		got := map[kv]int{}
		total := 0
		err = kmv.Scan(func(key []byte, vals *ValueIter) error {
			for v, ok := vals.Next(); ok; v, ok = vals.Next() {
				got[kv{string(key), string(v)}]++
				total++
			}
			return nil
		})
		if err != nil {
			t.Fatalf("Scan: %v", err)
		}
		if total != len(want) {
			t.Fatalf("KMV holds %d values, inserted %d", total, len(want))
		}
		for _, w := range want {
			if got[w] <= 0 {
				t.Fatalf("KV (%q, %q) lost in convert", w.k, w.v)
			}
			got[w]--
		}
		kmv.Free()
		if arena.Used() != 0 {
			t.Fatalf("arena holds %d bytes after Free (leak)", arena.Used())
		}
	})
}
