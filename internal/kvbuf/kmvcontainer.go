package kvbuf

import (
	"encoding/binary"
	"fmt"

	"mimir/internal/mem"
)

// kmvMetaBytes is the accounting charge for one KMV record's bookkeeping
// entry (ref, sizes, cursor), mirroring the container's internal index cost.
const kmvMetaBytes = 32

// KMVC is the paper's KMV container: it stores <key, <value1, value2, ...>>
// lists in arena-charged pages. Records are laid out contiguously and sized
// exactly, which is what the two-pass convert algorithm enables.
//
// Record layout: [klen?][nvals][key(+NUL?)] [vlen? value (+NUL?)]* — length
// headers appear only for varlen sides, per the container's hint.
type KMVC struct {
	arena *mem.Arena
	buf   *pagedBuf
	hint  Hint
	recs  []kmvRec
}

type kmvRec struct {
	r      ref
	size   int // total record bytes
	keyLen int
	nvals  int
	// filling state
	cursor  int // next value write offset within the record
	written int // values written so far
}

// NewKMVC creates an empty KMV container.
func NewKMVC(arena *mem.Arena, pageSize int, hint Hint) *KMVC {
	return NewKMVCOn(nil, arena, pageSize, hint)
}

// NewKMVCOn creates a KMV container whose pages are registered with a
// PageStore for out-of-core eviction. A nil store is NewKMVC.
func NewKMVCOn(store PageStore, arena *mem.Arena, pageSize int, hint Hint) *KMVC {
	return &KMVC{arena: arena, buf: newStorePagedBuf(store, arena, pageSize), hint: hint}
}

// recordSize returns the exact encoded size of a KMV record for a key of
// klen bytes holding nvals values totalling valBytes raw bytes.
func (c *KMVC) recordSize(klen, nvals, valBytes int) int {
	n := c.hint.Key.headerSize() + 4 + c.hint.Key.dataSize(klen)
	n += nvals*c.hint.Val.headerSize() + valBytes
	if c.hint.Val.kind == kindStrZ {
		n += nvals // one NUL per value
	}
	return n
}

// NewRecord reserves a record for key with exactly nvals values totalling
// valBytes raw bytes, writes the header, and returns the record id used by
// AppendValue. This is pass one of the paper's convert: "the size of the
// KVs for each unique key is ... used to calculate the position of each KMV
// in the KMVC."
func (c *KMVC) NewRecord(key []byte, nvals, valBytes int) (int, error) {
	if err := c.hint.Key.check("key", key); err != nil {
		return 0, err
	}
	size := c.recordSize(len(key), nvals, valBytes)
	r, err := c.buf.reserve(size)
	if err != nil {
		return 0, err
	}
	if err := c.buf.reserveMeta(kmvMetaBytes); err != nil {
		return 0, err
	}
	buf := c.buf.at(r, size)
	pos := 0
	if c.hint.Key.IsVarlen() {
		binary.LittleEndian.PutUint32(buf[pos:], uint32(len(key)))
		pos += 4
	}
	binary.LittleEndian.PutUint32(buf[pos:], uint32(nvals))
	pos += 4
	pos += copy(buf[pos:], key)
	if c.hint.Key.kind == kindStrZ {
		buf[pos] = 0
		pos++
	}
	c.recs = append(c.recs, kmvRec{r: r, size: size, keyLen: len(key), nvals: nvals, cursor: pos})
	return len(c.recs) - 1, nil
}

// AppendValue writes the next value into record id (pass two of convert).
// The write lands on whatever page holds the record — typically a sealed
// one — so the page is pinned (restoring it if convert pass 2 finds it
// spilled) and marked dirty for the duration of the scatter.
func (c *KMVC) AppendValue(id int, v []byte) error {
	if id < 0 || id >= len(c.recs) {
		return fmt.Errorf("kvbuf: bad KMV record id %d", id)
	}
	rec := &c.recs[id]
	if rec.written >= rec.nvals {
		return fmt.Errorf("kvbuf: KMV record %d already holds its %d declared values", id, rec.nvals)
	}
	if err := c.hint.Val.check("value", v); err != nil {
		return err
	}
	if _, err := c.buf.pinPage(rec.r.page()); err != nil {
		return err
	}
	defer func() {
		c.buf.markDirty(rec.r.page())
		c.buf.unpinPage(rec.r.page())
	}()
	buf := c.buf.at(rec.r, rec.size)
	pos := rec.cursor
	need := c.hint.Val.headerSize() + c.hint.Val.dataSize(len(v))
	if pos+need > rec.size {
		return fmt.Errorf("kvbuf: KMV record %d overflow: value of %d bytes exceeds reserved space", id, len(v))
	}
	if c.hint.Val.IsVarlen() {
		binary.LittleEndian.PutUint32(buf[pos:], uint32(len(v)))
		pos += 4
	}
	pos += copy(buf[pos:], v)
	if c.hint.Val.kind == kindStrZ {
		buf[pos] = 0
		pos++
	}
	rec.cursor = pos
	rec.written++
	return nil
}

// NumKMV returns the number of records.
func (c *KMVC) NumKMV() int { return len(c.recs) }

// Bytes returns the payload bytes stored.
func (c *KMVC) Bytes() int64 { return c.buf.usedBytes() }

// ReservedBytes returns the arena reservation held (pages + metadata).
func (c *KMVC) ReservedBytes() int64 {
	return c.buf.reservedBytes() + int64(len(c.recs))*kmvMetaBytes
}

// Scan calls fn for every record in creation order with the key and an
// iterator over its values. Slices alias container memory.
func (c *KMVC) Scan(fn func(key []byte, vals *ValueIter) error) error {
	return c.ScanRange(0, len(c.recs), fn)
}

// ScanRange is Scan restricted to records [lo, hi), clamped to the record
// count. Without a PageStore attached, concurrent ScanRange calls over
// disjoint ranges are safe (pinning is a no-op and every read is confined
// to the range's records), which is what lets the reduce phase run record
// shards on a worker pool.
func (c *KMVC) ScanRange(lo, hi int, fn func(key []byte, vals *ValueIter) error) error {
	if lo < 0 {
		lo = 0
	}
	if hi > len(c.recs) {
		hi = len(c.recs)
	}
	for i := lo; i < hi; i++ {
		rec := &c.recs[i]
		if rec.written != rec.nvals {
			return fmt.Errorf("kvbuf: KMV record %d incomplete: %d of %d values", i, rec.written, rec.nvals)
		}
		// Records never straddle pages, so pinning the record's page keeps
		// the key and every value resident for the callback. Reduce thereby
		// streams spilled records back page by page.
		if _, err := c.buf.pinPage(rec.r.page()); err != nil {
			return err
		}
		buf := c.buf.at(rec.r, rec.size)
		pos := c.hint.Key.headerSize() + 4
		key := buf[pos : pos+rec.keyLen]
		pos += c.hint.Key.dataSize(rec.keyLen)
		it := &ValueIter{buf: buf[pos:], n: rec.nvals, mode: c.hint.Val}
		err := fn(key, it)
		c.buf.unpinPage(rec.r.page())
		if err != nil {
			return err
		}
	}
	return nil
}

// Free releases all pages and metadata back to the arena.
func (c *KMVC) Free() {
	c.buf.free()
	c.arena.Free(int64(len(c.recs)) * kmvMetaBytes)
	c.recs = nil
}

// NewValueIter returns an iterator over n values encoded back to back in
// buf under the given length mode. It is used by consumers that hold raw
// KMV bytes outside a KMVC (e.g. MR-MPI's page-based KMV store).
func NewValueIter(buf []byte, n int, mode LenMode) *ValueIter {
	return &ValueIter{buf: buf, n: n, mode: mode}
}

// ValueIter iterates the values of one KMV record.
type ValueIter struct {
	buf  []byte
	n    int
	mode LenMode
	pos  int
	i    int
}

// Len returns the total number of values.
func (it *ValueIter) Len() int { return it.n }

// Next returns the next value, or (nil, false) when exhausted. The slice
// aliases container memory.
func (it *ValueIter) Next() ([]byte, bool) {
	if it.i >= it.n {
		return nil, false
	}
	var v []byte
	switch it.mode.kind {
	case kindVarlen:
		vlen := int(binary.LittleEndian.Uint32(it.buf[it.pos:]))
		it.pos += 4
		v = it.buf[it.pos : it.pos+vlen]
		it.pos += vlen
	case kindFixed:
		v = it.buf[it.pos : it.pos+it.mode.n]
		it.pos += it.mode.n
	case kindStrZ:
		start := it.pos
		for it.buf[it.pos] != 0 {
			it.pos++
		}
		v = it.buf[start:it.pos]
		it.pos++ // NUL
	}
	it.i++
	return v, true
}

// Reset rewinds the iterator to the first value.
func (it *ValueIter) Reset() { it.pos, it.i = 0, 0 }
