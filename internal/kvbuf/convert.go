package kvbuf

import (
	"encoding/binary"
	"fmt"
	"sync"

	"mimir/internal/mem"
)

// Convert turns a KV container into a KMV container with the paper's
// two-pass algorithm (Section III-A):
//
//	pass 1: scan the KVs, gathering per-unique-key value count and total
//	        value bytes in a hash bucket, then reserve every KMV record at
//	        its exact final size and position;
//	pass 2: scan the KVs again, scattering each value into its record.
//
// The input container is drained during pass 2, releasing its pages as they
// are consumed, so peak memory is (input + index) during pass 1 and roughly
// max(input, output) + index during pass 2 — never input + output + slack
// as in MR-MPI's static page model.
func Convert(in *KVC, arena *mem.Arena, pageSize int, hint Hint) (*KMVC, error) {
	return ConvertOn(nil, in, arena, pageSize, hint)
}

// ConvertOn is Convert with the output KMVC's pages registered on a
// PageStore for out-of-core eviction. Both passes stream: pass 1 pins the
// (possibly spilled) input pages one at a time while reserving records,
// pass 2 drains the input while scattering values into pinned output
// pages, so residency never doubles even when both containers exceed the
// watermark. The per-key index bucket stays purely in-memory — it is
// random-access on every KV and must live in the arena headroom above the
// watermark.
func ConvertOn(store PageStore, in *KVC, arena *mem.Arena, pageSize int, hint Hint) (*KMVC, error) {
	// Pass 1: per-key statistics in a hash bucket. Values are fixed 12-byte
	// records: [count uint32][valBytes uint32][recID uint32].
	idx, err := NewBucketOn(store, arena, pageSize)
	if err != nil {
		return nil, err
	}
	defer idx.Free()

	var stat [12]byte
	err = in.Scan(func(k, v []byte) error {
		binary.LittleEndian.PutUint32(stat[0:], 1)
		binary.LittleEndian.PutUint32(stat[4:], uint32(len(v)))
		binary.LittleEndian.PutUint32(stat[8:], 0)
		return idx.Upsert(k, stat[:], func(existing, incoming []byte) ([]byte, error) {
			count := binary.LittleEndian.Uint32(existing[0:]) + 1
			vb := binary.LittleEndian.Uint32(existing[4:]) + binary.LittleEndian.Uint32(incoming[4:])
			binary.LittleEndian.PutUint32(existing[0:], count)
			binary.LittleEndian.PutUint32(existing[4:], vb)
			return existing, nil
		})
	})
	if err != nil {
		return nil, err
	}

	// Reserve all records in first-appearance order (deterministic output).
	out := NewKMVCOn(store, arena, pageSize, hint)
	err = idx.Scan(func(k, v []byte) error {
		count := int(binary.LittleEndian.Uint32(v[0:]))
		valBytes := int(binary.LittleEndian.Uint32(v[4:]))
		id, err := out.NewRecord(k, count, valBytes)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(v[8:], uint32(id))
		return nil
	})
	if err != nil {
		out.Free()
		return nil, err
	}

	// Pass 2: scatter values; drain the input as its pages are consumed.
	err = in.Drain(func(k, v []byte) error {
		sv, ok := idx.Get(k)
		if !ok {
			return fmt.Errorf("kvbuf: convert pass 2 found unindexed key %q", k)
		}
		return out.AppendValue(int(binary.LittleEndian.Uint32(sv[8:])), v)
	})
	if err != nil {
		out.Free()
		return nil, err
	}
	return out, nil
}

// ConvertParallel is Convert with both passes sharded across a worker pool.
// Keys are partitioned by hash into one shard per worker; every worker
// decodes the full input stream (a cheap sequential scan) and processes
// only its shard's KVs, so no two workers ever touch the same index entry
// or the same KMV record. The record reservation between the passes stays
// serial over the sharded index's sequence-merged scan, which reproduces
// the single-bucket first-appearance order — the output KMVC is therefore
// byte-identical to Convert's, record ids included.
//
// Pass 2 keeps Convert's drain property: each input page is released the
// moment every worker has scattered its shard's values out of it, so peak
// memory stays max(input, output) + index rather than their sum.
//
// The input container must not be registered on a PageStore (parallel
// container phases are the purely in-memory execution mode; the caller
// falls back to ConvertOn otherwise). The returned slice holds the per-
// worker key+value bytes processed, for max-over-workers time accounting.
func ConvertParallel(in *KVC, arena *mem.Arena, pageSize int, hint Hint, workers int) (*KMVC, []int64, error) {
	if workers < 1 {
		workers = 1
	}
	// Pass 1: per-key statistics, sharded. Same 12-byte stat records as the
	// serial pass: [count uint32][valBytes uint32][recID uint32].
	idx, err := NewShardedBucket(arena, pageSize, workers)
	if err != nil {
		return nil, nil, err
	}
	defer idx.Free()

	work := make([]int64, workers)
	if err := parallelShards(workers, func(w int) error {
		var stat [12]byte
		var seq uint64
		return in.Scan(func(k, v []byte) error {
			cur := seq
			seq++
			if idx.ShardOf(k) != w {
				return nil
			}
			work[w] += int64(len(k) + len(v))
			binary.LittleEndian.PutUint32(stat[0:], 1)
			binary.LittleEndian.PutUint32(stat[4:], uint32(len(v)))
			binary.LittleEndian.PutUint32(stat[8:], 0)
			return idx.Upsert(w, cur, k, stat[:], func(existing, incoming []byte) ([]byte, error) {
				count := binary.LittleEndian.Uint32(existing[0:]) + 1
				vb := binary.LittleEndian.Uint32(existing[4:]) + binary.LittleEndian.Uint32(incoming[4:])
				binary.LittleEndian.PutUint32(existing[0:], count)
				binary.LittleEndian.PutUint32(existing[4:], vb)
				return existing, nil
			})
		})
	}); err != nil {
		return nil, nil, err
	}

	// Reserve all records serially in merged first-appearance order.
	out := NewKMVC(arena, pageSize, hint)
	err = idx.Scan(func(k, v []byte) error {
		count := int(binary.LittleEndian.Uint32(v[0:]))
		valBytes := int(binary.LittleEndian.Uint32(v[4:]))
		id, err := out.NewRecord(k, count, valBytes)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(v[8:], uint32(id))
		return nil
	})
	if err != nil {
		out.Free()
		return nil, nil, err
	}

	// Pass 2: scatter values page by page. All workers finish a page before
	// it is freed, mirroring Drain's early release; the container is empty
	// afterwards, even on error.
	npages := in.buf.numPages()
	in.nkv = 0
	var firstErr error
	for i := 0; i < npages; i++ {
		if firstErr == nil {
			p, err := in.buf.pinPage(i)
			if err != nil {
				firstErr = err
			} else {
				err := parallelShards(workers, func(w int) error {
					return in.scanPage(p, func(k, v []byte) error {
						if idx.ShardOf(k) != w {
							return nil
						}
						sv, ok := idx.Get(k)
						if !ok {
							return fmt.Errorf("kvbuf: convert pass 2 found unindexed key %q", k)
						}
						return out.AppendValue(int(binary.LittleEndian.Uint32(sv[8:])), v)
					})
				})
				in.buf.unpinPage(i)
				if err != nil {
					firstErr = err
				}
			}
		}
		in.buf.freePage(i)
	}
	in.buf.clear()
	if firstErr != nil {
		out.Free()
		return nil, nil, firstErr
	}
	return out, work, nil
}

// parallelShards runs fn(w) for every shard worker concurrently and returns
// the lowest-numbered worker's error, so a multi-worker failure reports the
// same error on every run regardless of goroutine scheduling.
func parallelShards(workers int, fn func(w int) error) error {
	if workers == 1 {
		return fn(0)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = fn(w)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
