package kvbuf

import (
	"encoding/binary"
	"fmt"

	"mimir/internal/mem"
)

// Convert turns a KV container into a KMV container with the paper's
// two-pass algorithm (Section III-A):
//
//	pass 1: scan the KVs, gathering per-unique-key value count and total
//	        value bytes in a hash bucket, then reserve every KMV record at
//	        its exact final size and position;
//	pass 2: scan the KVs again, scattering each value into its record.
//
// The input container is drained during pass 2, releasing its pages as they
// are consumed, so peak memory is (input + index) during pass 1 and roughly
// max(input, output) + index during pass 2 — never input + output + slack
// as in MR-MPI's static page model.
func Convert(in *KVC, arena *mem.Arena, pageSize int, hint Hint) (*KMVC, error) {
	return ConvertOn(nil, in, arena, pageSize, hint)
}

// ConvertOn is Convert with the output KMVC's pages registered on a
// PageStore for out-of-core eviction. Both passes stream: pass 1 pins the
// (possibly spilled) input pages one at a time while reserving records,
// pass 2 drains the input while scattering values into pinned output
// pages, so residency never doubles even when both containers exceed the
// watermark. The per-key index bucket stays purely in-memory — it is
// random-access on every KV and must live in the arena headroom above the
// watermark.
func ConvertOn(store PageStore, in *KVC, arena *mem.Arena, pageSize int, hint Hint) (*KMVC, error) {
	// Pass 1: per-key statistics in a hash bucket. Values are fixed 12-byte
	// records: [count uint32][valBytes uint32][recID uint32].
	idx, err := NewBucketOn(store, arena, pageSize)
	if err != nil {
		return nil, err
	}
	defer idx.Free()

	var stat [12]byte
	err = in.Scan(func(k, v []byte) error {
		binary.LittleEndian.PutUint32(stat[0:], 1)
		binary.LittleEndian.PutUint32(stat[4:], uint32(len(v)))
		binary.LittleEndian.PutUint32(stat[8:], 0)
		return idx.Upsert(k, stat[:], func(existing, incoming []byte) ([]byte, error) {
			count := binary.LittleEndian.Uint32(existing[0:]) + 1
			vb := binary.LittleEndian.Uint32(existing[4:]) + binary.LittleEndian.Uint32(incoming[4:])
			binary.LittleEndian.PutUint32(existing[0:], count)
			binary.LittleEndian.PutUint32(existing[4:], vb)
			return existing, nil
		})
	})
	if err != nil {
		return nil, err
	}

	// Reserve all records in first-appearance order (deterministic output).
	out := NewKMVCOn(store, arena, pageSize, hint)
	err = idx.Scan(func(k, v []byte) error {
		count := int(binary.LittleEndian.Uint32(v[0:]))
		valBytes := int(binary.LittleEndian.Uint32(v[4:]))
		id, err := out.NewRecord(k, count, valBytes)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(v[8:], uint32(id))
		return nil
	})
	if err != nil {
		out.Free()
		return nil, err
	}

	// Pass 2: scatter values; drain the input as its pages are consumed.
	err = in.Drain(func(k, v []byte) error {
		sv, ok := idx.Get(k)
		if !ok {
			return fmt.Errorf("kvbuf: convert pass 2 found unindexed key %q", k)
		}
		return out.AppendValue(int(binary.LittleEndian.Uint32(sv[8:])), v)
	})
	if err != nil {
		out.Free()
		return nil, err
	}
	return out, nil
}
