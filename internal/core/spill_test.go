package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"mimir/internal/kvbuf"
	"mimir/internal/mem"
	"mimir/internal/mpi"
	"mimir/internal/pfs"
	"mimir/internal/spill"
)

// spillLines generates deterministic WordCount input: n lines, six words
// each, over a ~600-word vocabulary. The vocabulary is bounded so the
// convert index fits the arena headroom (as real vocabularies must fit
// real nodes), yet large enough that no single word's KMV record outgrows
// a page — an oversized record must be resident in full to reduce, which
// a 4-rank shared arena of a few dozen KiB cannot promise.
func spillLines(n int) []string {
	primes := [6]int{1, 7, 13, 29, 43, 71}
	lines := make([]string, n)
	for i := range lines {
		var w [6]string
		for j, p := range primes {
			w[j] = fmt.Sprintf("w%03d", (i*p+j)%600)
		}
		lines[i] = fmt.Sprintf("%s %s %s %s %s %s", w[0], w[1], w[2], w[3], w[4], w[5])
	}
	return lines
}

// runWCSpill is runWC with a bounded arena and configurable out-of-core
// policy, returning the run error instead of failing the test so callers
// can assert ErrNoMemory.
func runWCSpill(t *testing.T, p int, lines []string, capacity int64, modify func(*Config)) (map[string]uint64, Stats, error) {
	t.Helper()
	w := mpi.NewWorld(mpi.Config{Size: p, Net: testNet()})
	arena := mem.NewArena(capacity)
	spillFS := pfs.New(pfs.Config{Bandwidth: 1 << 30, Latency: 1e-4})
	group := spill.NewGroup() // ranks share the arena, so they share eviction
	var mu sync.Mutex
	got := map[string]uint64{}
	var stats Stats
	err := w.Run(func(c *mpi.Comm) error {
		cfg := Config{Arena: arena, PageSize: 1 << 10, CommBuf: 4 << 10,
			SpillFS: spillFS, SpillGroup: group}
		if modify != nil {
			modify(&cfg)
		}
		job := NewJob(c, cfg)
		var mine []Record
		for i, l := range lines {
			if i%p == c.Rank() {
				mine = append(mine, Record{Val: []byte(l)})
			}
		}
		out, err := job.Run(SliceInput(mine), wcMap, wcReduce)
		if err != nil {
			return err
		}
		defer out.Free()
		mu.Lock()
		defer mu.Unlock()
		stats.Spill.Add(out.Stats.Spill)
		return out.Scan(func(k, v []byte) error {
			got[string(k)] += BytesUint64(v)
			return nil
		})
	})
	if err != nil {
		return nil, stats, err
	}
	if used := arena.Used(); used != 0 {
		t.Fatalf("arena used %d after job, want 0 (buffer leak)", used)
	}
	return got, stats, nil
}

// TestSpillPoliciesMatchError is the subsystem's core acceptance check at
// unit scale: a dataset that fails with ErrNoMemory under OutOfCore: Error
// completes under both spill policies with the identical output multiset,
// while the arena never exceeds its capacity.
func TestSpillPoliciesMatchError(t *testing.T) {
	const p = 4
	const capacity = 96 << 10
	lines := spillLines(6000)

	want, _, err := runWCSpill(t, p, lines, 0, nil) // unlimited reference
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	_, _, err = runWCSpill(t, p, lines, capacity, nil) // Error policy, tight arena
	if err == nil {
		t.Fatalf("Error policy completed in a %d-byte arena; the dataset no longer exercises the out-of-core path", capacity)
	}
	if !errors.Is(err, mem.ErrNoMemory) {
		t.Fatalf("Error policy failed with %v, want ErrNoMemory", err)
	}

	for _, ooc := range []OutOfCore{SpillWhenNeeded, SpillAlways} {
		got, stats, err := runWCSpill(t, p, lines, capacity, func(cfg *Config) { cfg.OutOfCore = ooc })
		if err != nil {
			t.Fatalf("%v in a %d-byte arena: %v", ooc, capacity, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: %d unique words, want %d", ooc, len(got), len(want))
		}
		for w, n := range want {
			if got[w] != n {
				t.Fatalf("%v: count[%q] = %d, want %d", ooc, w, got[w], n)
			}
		}
		if stats.Spill.SpilledBytes == 0 {
			t.Fatalf("%v completed without spilling in a tight arena (stats %+v)", ooc, stats.Spill)
		}
		if stats.Spill.Restores == 0 {
			t.Fatalf("%v never restored a page (stats %+v)", ooc, stats.Spill)
		}
	}
}

// TestSpillNeverExceedsCapacity drives the spill path and checks the peak:
// the whole point of the watermark is that the node arena stays within its
// hard capacity while data many times its size flows through.
func TestSpillNeverExceedsCapacity(t *testing.T) {
	const capacity = 96 << 10
	w := mpi.NewWorld(mpi.Config{Size: 4, Net: testNet()})
	arena := mem.NewArena(capacity)
	spillFS := pfs.New(pfs.Config{})
	group := spill.NewGroup()
	lines := spillLines(6000)
	err := w.Run(func(c *mpi.Comm) error {
		job := NewJob(c, Config{
			Arena: arena, PageSize: 1 << 10, CommBuf: 4 << 10,
			SpillFS: spillFS, SpillGroup: group, OutOfCore: SpillWhenNeeded,
		})
		var mine []Record
		for i, l := range lines {
			if i%4 == c.Rank() {
				mine = append(mine, Record{Val: []byte(l)})
			}
		}
		out, err := job.Run(SliceInput(mine), wcMap, wcReduce)
		if err != nil {
			return err
		}
		out.Free()
		return nil
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	if peak := arena.Peak(); peak > capacity {
		t.Fatalf("arena peak %d exceeds capacity %d", peak, capacity)
	}
}

// TestSpillRequiresFS: the spill policies without a file system are a
// configuration error, reported before any work happens.
func TestSpillRequiresFS(t *testing.T) {
	w := mpi.NewWorld(mpi.Config{Size: 2, Net: testNet()})
	err := w.Run(func(c *mpi.Comm) error {
		job := NewJob(c, Config{Arena: mem.NewArena(0), OutOfCore: SpillWhenNeeded})
		_, err := job.Run(SliceInput(nil), wcMap, wcReduce)
		return err
	})
	if err == nil {
		t.Fatal("SpillWhenNeeded without SpillFS did not fail")
	}
}

// TestSpillWithOptimizations checks the spill path composes with the
// paper's optimization ladder (hint, combiner, partial reduction).
func TestSpillWithOptimizations(t *testing.T) {
	const p = 4
	const capacity = 96 << 10
	lines := spillLines(4000)
	want, _, err := runWCSpill(t, p, lines, 0, nil)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	mods := map[string]func(*Config){
		"hint": func(cfg *Config) {
			cfg.OutOfCore = SpillWhenNeeded
			cfg.Hint = kvbuf.Hint{Key: kvbuf.StrZ(), Val: kvbuf.Fixed(8)}
		},
		"combiner": func(cfg *Config) {
			cfg.OutOfCore = SpillWhenNeeded
			cfg.Combiner = wcCombine
			cfg.CombinerBudget = 8 << 10
		},
		"partial-reduce": func(cfg *Config) {
			cfg.OutOfCore = SpillWhenNeeded
			cfg.PartialReduce = wcCombine
		},
		"serial-aggregate": func(cfg *Config) {
			cfg.OutOfCore = SpillAlways
			cfg.SerialAggregate = true
		},
	}
	for name, mod := range mods {
		t.Run(name, func(t *testing.T) {
			got, _, err := runWCSpill(t, p, lines, capacity, mod)
			if err != nil {
				t.Fatalf("spill run with %s: %v", name, err)
			}
			checkWC(t, got, want)
		})
	}
}
