package core

import (
	"fmt"
	"sort"

	"mimir/internal/kvbuf"
	"mimir/internal/pfs"
	"mimir/internal/simtime"
)

// Output is the result of a Mimir job on one rank: a KV container holding
// the rank's share of the output, plus per-rank statistics. Free it when
// done, or feed it to the next stage of an iterative job with AsInput.
type Output struct {
	KVC   *kvbuf.KVC
	Stats Stats
}

// Free releases the output's memory back to the node arena.
func (o *Output) Free() {
	if o != nil && o.KVC != nil {
		o.KVC.Free()
	}
}

// Scan iterates the output KVs in insertion order.
func (o *Output) Scan(fn func(k, v []byte) error) error {
	return o.KVC.Scan(fn)
}

// NumKV returns the number of output KVs on this rank.
func (o *Output) NumKV() int64 { return o.KVC.NumKV() }

// AsInput adapts the output for use as the input of a subsequent MapReduce
// stage (the paper's "KVs from previous MapReduce operations for multistage
// jobs or iterative MapReduce jobs"). The output's memory is released page
// by page as the next stage's map consumes it.
func (o *Output) AsInput() Input {
	return func(emit func(rec Record) error) error {
		return o.KVC.Drain(func(k, v []byte) error {
			return emit(Record{Key: k, Val: v})
		})
	}
}

// Collect copies all output KVs into a sorted slice of pairs — a test and
// example convenience, not part of the data path.
func (o *Output) Collect() [][2]string {
	var pairs [][2]string
	_ = o.KVC.Scan(func(k, v []byte) error {
		pairs = append(pairs, [2]string{string(k), string(v)})
		return nil
	})
	sort.Slice(pairs, func(i, j int) bool { return pairs[i][0] < pairs[j][0] })
	return pairs
}

// Persist writes this rank's output KVs to the parallel file system as
// text lines "key<TAB>value-bytes-as-written\n" (keys and values are
// written raw; binary values should be formatted by a prior reduce). The
// write time is charged to clock; the paper's execution time runs "from
// reading input data to getting the final results".
func (o *Output) Persist(fs *pfs.FS, clock *simtime.Clock, name string) error {
	buf := make([]byte, 0, 64<<10)
	flush := func() {
		if len(buf) > 0 {
			fs.Append(clock, name, buf)
			buf = buf[:0]
		}
	}
	err := o.KVC.Scan(func(k, v []byte) error {
		buf = append(buf, k...)
		buf = append(buf, '\t')
		buf = append(buf, v...)
		buf = append(buf, '\n')
		if len(buf) >= 64<<10 {
			flush()
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("core: persisting output: %w", err)
	}
	flush()
	return nil
}

// SliceInput feeds a fixed set of records — used by tests and the in-situ
// example, where data arrives from a producer rather than the file system.
func SliceInput(recs []Record) Input {
	return func(emit func(rec Record) error) error {
		for _, r := range recs {
			if err := emit(r); err != nil {
				return err
			}
		}
		return nil
	}
}
