package core

import (
	"encoding/binary"
	"fmt"

	"mimir/internal/kvbuf"
	"mimir/internal/mem"
	"mimir/internal/mpi"
	"mimir/internal/partition"
	"mimir/internal/simtime"
	"mimir/internal/spill"
)

// Job is one Mimir MapReduce execution on one rank. Create it with NewJob
// and execute with Run. A Job is single-use.
type Job struct {
	comm *mpi.Comm
	cfg  Config

	// Send buffer state: nbuf sets of one partition per destination rank.
	// The serial aggregate uses a single set; the default overlapped
	// aggregate splits the same budget into two half-sized sets, posting a
	// full set nonblocking while the map keeps filling the other.
	sendBuf  *mem.Page
	nbuf     int
	active   int // index of the set the map is filling
	partSize int
	partOffs [][]int // per-set write offset within each partition
	// sendSlices is buildSend's reusable per-destination header array: both
	// exchange paths copy the send payloads at post time, so the array can
	// be repopulated every round instead of reallocated.
	sendSlices [][]byte
	// pending is the in-flight exchange of the inactive set (overlap only).
	pending   *mpi.AlltoallvRequest
	inputDone bool

	// destination of received KVs: either a KV container (core workflow) or
	// the partial-reduction bucket — sharded across the worker pool when
	// prParallel, single otherwise.
	recvKVC *kvbuf.KVC
	prBkt   *kvbuf.Bucket
	prShard *kvbuf.ShardedBucket
	// prSeq numbers received KVs across exchange rounds so the sharded
	// bucket's merged scan reproduces serial insertion order.
	prSeq uint64
	// cpsBkt is the KV compression bucket, when enabled.
	cpsBkt *kvbuf.Bucket

	// Partition planning state. asn is the job's key→rank assignment (nil
	// means legacy FNV-1a hashing). A planning partitioner stages early map
	// output in planStage until the plan runs; splitSeq numbers a split
	// key's emissions so they round-robin over the key's split set.
	asn         partition.Assignment
	planPending bool
	planStage   *kvbuf.KVC
	splitSeq    map[string]uint64

	// Per-phase parallel-time accumulators for the worker pool (max rule).
	parMap, parAggr, parConvert, parReduce parAcc

	// store is the rank's out-of-core page store (nil under OutOfCore:
	// Error). All KV/KMV container pages of this job register with it; it
	// outlives the job as long as the Output holds spilled pages, removing
	// its spill file when the last page is freed.
	store *spill.Store

	stats Stats
}

// PhaseTimes breaks a rank's simulated job time down by workflow phase.
// Because Mimir interleaves the map and aggregate phases, Map counts the
// time between exchanges and Aggregate the time inside them.
type PhaseTimes struct {
	Map, Aggregate, Convert, Reduce float64
}

// Total returns the summed phase time.
func (p PhaseTimes) Total() float64 { return p.Map + p.Aggregate + p.Convert + p.Reduce }

// Stats reports what one rank observed during a job.
type Stats struct {
	// Phases is the per-phase simulated time breakdown.
	Phases PhaseTimes
	// Rounds is the number of Alltoallv exchange rounds the aggregate phase
	// needed (the map suspends once per round, Section III-A).
	Rounds int
	// OverlapRounds counts rounds whose communication was at least partly
	// hidden behind map computation (overlapped aggregate only).
	OverlapRounds int
	// OverlapSavedSec is the simulated seconds this rank saved by
	// overlapping exchange rounds with computation, relative to the serial
	// schedule that blocks at every post.
	OverlapSavedSec float64
	// ShuffledBytes is the total intermediate bytes this rank sent.
	ShuffledBytes int64
	// MapOutKVs / MapOutBytes count the map's emitted KVs after optional KV
	// compression (what actually entered the send buffer).
	MapOutKVs   int64
	MapOutBytes int64
	// RecvKVs counts KVs received from the exchange.
	RecvKVs int64
	// OutputKVs counts final job output KVs on this rank.
	OutputKVs int64
	// RestoredFromCheckpoint reports that the map and aggregate phases were
	// skipped by resuming from a checkpoint.
	RestoredFromCheckpoint bool
	// Workers is the rank's worker-pool size (Config.Workers after
	// defaulting); ParEff is the measured per-phase parallel efficiency,
	// sum-over-workers / (Workers x max-over-workers) of the phase's
	// sharded compute — 1.0 for perfectly balanced shards, for serial
	// execution, and for phases that did no sharded work.
	Workers int
	ParEff  PhaseTimes
	// Spill reports the rank's out-of-core activity (zero under OutOfCore:
	// Error, and whenever the data fit under the watermark). Snapshot at
	// job end; pages the Output spills later are not included.
	Spill spill.Stats
}

// NewJob creates a job for this rank with the given configuration.
func NewJob(comm *mpi.Comm, cfg Config) *Job {
	cfg = cfg.withDefaults()
	if cfg.Arena == nil {
		panic("core: Config.Arena is required")
	}
	return &Job{comm: comm, cfg: cfg}
}

// Run executes the full Mimir workflow: map with interleaved aggregate,
// then convert + reduce (or partial reduction). reduceFn may be nil for
// map-only jobs, whose output is the post-shuffle KV set. All ranks must
// call Run collectively.
func (j *Job) Run(input Input, mapFn MapFunc, reduceFn ReduceFunc) (*Output, error) {
	if j.cfg.OutOfCore != Error {
		if j.cfg.SpillFS == nil {
			return nil, fmt.Errorf("core: OutOfCore %v requires Config.SpillFS", j.cfg.OutOfCore)
		}
		policy := spill.WhenNeeded
		if j.cfg.OutOfCore == SpillAlways {
			policy = spill.Always
		}
		j.store = spill.NewStore(spill.Config{
			Arena:     j.cfg.Arena,
			FS:        j.cfg.SpillFS,
			Clock:     j.comm.Clock(),
			Name:      fmt.Sprintf("mimir/rank%d", j.comm.Rank()),
			Policy:    policy,
			Watermark: j.cfg.SpillWatermark,
			Prefetch:  j.cfg.SpillPrefetch,
			Group:     j.cfg.SpillGroup,
		})
	}
	if err := j.comm.Barrier(); err != nil {
		return nil, err
	}
	// Fault tolerance: if every rank has a checkpoint, resume from it
	// instead of re-reading and re-shuffling the input. The decision is
	// collective so all ranks take the same path.
	restore := false
	if j.cfg.Checkpoint != nil {
		have := int64(0)
		if j.cfg.Checkpoint.FS.Size(j.cfg.Checkpoint.file(j.comm.Rank())) >= 16 {
			have = 1
		}
		all, err := j.comm.AllreduceInt64([]int64{have}, mpi.OpMin)
		if err != nil {
			return nil, err
		}
		restore = all[0] == 1
	}
	t0 := j.comm.Clock().Now()
	if restore {
		if err := j.restoreCheckpoint(); err != nil {
			j.cleanup()
			return nil, err
		}
	} else {
		if err := j.mapAggregate(input, mapFn); err != nil {
			j.cleanup()
			return nil, err
		}
		if j.cfg.Checkpoint != nil {
			if err := j.saveCheckpoint(); err != nil {
				j.cleanup()
				return nil, err
			}
		}
	}
	// Everything in the interleaved phase that was not inside an exchange
	// round is map time.
	j.stats.Phases.Map = j.comm.Clock().Now() - t0 - j.stats.Phases.Aggregate
	out, err := j.finish(reduceFn)
	if err != nil {
		j.cleanup()
		return nil, err
	}
	if err := j.comm.Barrier(); err != nil {
		out.Free()
		return nil, err
	}
	if j.store != nil {
		j.stats.Spill = j.store.Stats()
	}
	w := j.workers()
	j.stats.Workers = w
	j.stats.ParEff = PhaseTimes{
		Map:       j.parMap.eff(w),
		Aggregate: j.parAggr.eff(w),
		Convert:   j.parConvert.eff(w),
		Reduce:    j.parReduce.eff(w),
	}
	out.Stats = j.stats
	return out, nil
}

// cleanup releases intermediate buffers after a failed run so the node
// arena is left balanced (important when one arena serves many jobs).
func (j *Job) cleanup() {
	if j.recvKVC != nil {
		j.recvKVC.Free()
		j.recvKVC = nil
	}
	if j.prBkt != nil {
		j.prBkt.Free()
		j.prBkt = nil
	}
	if j.prShard != nil {
		j.prShard.Free()
		j.prShard = nil
	}
	if j.cpsBkt != nil {
		j.cpsBkt.Free()
		j.cpsBkt = nil
	}
	if j.planStage != nil {
		j.planStage.Free()
		j.planStage = nil
	}
}

// mapAggregate runs the interleaved map + aggregate phases (Figure 4).
func (j *Job) mapAggregate(input Input, mapFn MapFunc) error {
	p := j.comm.Size()
	// The serial aggregate keeps the paper's Section III-B layout: a send
	// buffer of CommBuf and an equal-sized receive buffer (2x CommBuf of
	// static memory). The overlapped aggregate instead fits its whole
	// static footprint — two send sets plus the receive set, each a third —
	// inside one CommBuf, halving the static comm memory while the smaller
	// rounds hide their latency behind the map.
	j.nbuf = 2
	denom := (j.nbuf + 1) * p
	if j.cfg.SerialAggregate {
		j.nbuf = 1
		denom = p
	}
	j.partSize = j.cfg.CommBuf / denom
	if j.partSize < MinPartition {
		j.partSize = MinPartition
	}
	setSize := j.partSize * p

	// The receive buffer can never overflow because no rank injects more
	// than one partition per destination per round, and at most one round's
	// data is resident (a round is always consumed before the next is
	// posted).
	var err error
	j.sendBuf, err = j.cfg.Arena.NewPage(j.nbuf * setSize)
	if err != nil {
		return fmt.Errorf("core: allocating send buffer: %w", err)
	}
	recvBuf, err := j.cfg.Arena.NewPage(setSize)
	if err != nil {
		j.sendBuf.Release()
		return fmt.Errorf("core: allocating receive buffer: %w", err)
	}
	defer func() {
		j.sendBuf.Release()
		j.sendBuf = nil
		recvBuf.Release()
	}()
	j.partOffs = make([][]int, j.nbuf)
	for s := range j.partOffs {
		j.partOffs[s] = make([]int, p)
	}
	j.active = 0

	// Destination of received KVs.
	if j.cfg.PartialReduce != nil {
		if j.prParallel() {
			j.prShard, err = kvbuf.NewShardedBucket(j.cfg.Arena, j.cfg.PageSize, j.workers())
		} else {
			j.prBkt, err = newBucketForJob(j)
		}
		if err != nil {
			return err
		}
	} else {
		j.recvKVC = newKVCForJob(j)
	}

	// Optional KV compression bucket (Section III-C2): map output is folded
	// here first; the aggregate is delayed until the map completes (or, with
	// a CombinerBudget, until the bucket outgrows its budget).
	if j.cfg.Combiner != nil {
		j.cpsBkt, err = newBucketForJob(j)
		if err != nil {
			return err
		}
	}

	// Resolve the partitioning strategy. A non-planning partitioner (hash,
	// func) yields its assignment immediately; a planning one (sample)
	// stages early map output in a KV container until enough is buffered to
	// sample, then plans on the job's collectives — which are every rank's
	// first collectives after startup, before any exchange, so the SPMD
	// collective order stays identical on all ranks.
	if j.cfg.Partitioner != nil {
		if j.cfg.Partitioner.NeedsPlan() {
			j.planPending = true
			j.planStage = newKVCForJob(j)
		} else if j.asn, err = j.cfg.Partitioner.Plan(j.comm, nil, false); err != nil {
			return err
		}
	}

	if j.workers() > 1 {
		// Worker-pool map: buffer input records, fan each batch out over
		// contiguous chunks, replay the staged output in worker order —
		// the emit sequence (and so every downstream byte) matches serial.
		batch := &recBatch{}
		err = input(func(rec Record) error {
			batch.add(rec)
			if batch.full() {
				return j.flushMapBatch(batch, mapFn)
			}
			return nil
		})
		if err == nil {
			err = j.flushMapBatch(batch, mapFn)
		}
	} else {
		emit := &mapEmitter{job: j}
		err = input(func(rec Record) error {
			j.charge(float64(len(rec.Key)+len(rec.Val))*j.cfg.Costs.MapPerByte, simtime.Compute)
			return mapFn(rec, emit)
		})
	}
	if err != nil {
		return err
	}

	// Drain the compression bucket into the send buffer.
	if j.cpsBkt != nil {
		if err := j.drainCombiner(); err != nil {
			return err
		}
		j.cpsBkt.Free()
		j.cpsBkt = nil
	}

	// A small job may finish its input without ever filling the plan
	// staging budget; plan now so the staged KVs flow into the exchange.
	if j.planPending {
		if err := j.runPlan(); err != nil {
			return err
		}
	}

	// Final rounds: keep exchanging until every rank agrees it has nothing
	// left to send.
	if j.cfg.SerialAggregate {
		for {
			allDone, err := j.exchange(true)
			if err != nil {
				return err
			}
			if allDone {
				break
			}
		}
		return nil
	}
	j.inputDone = true
	for {
		if j.pending != nil {
			allDone, err := j.completeRound()
			if err != nil {
				return err
			}
			if allDone {
				break
			}
		}
		if err := j.postRound(); err != nil {
			return err
		}
	}
	return nil
}

// mapEmitter routes map output into the compression bucket or directly into
// the partitioned send buffer.
type mapEmitter struct {
	job *Job
}

func (e *mapEmitter) Emit(k, v []byte) error {
	j := e.job
	j.charge(j.cfg.Costs.PerRecord+float64(len(k)+len(v))*j.cfg.Costs.KVPerByte, simtime.Compute)
	return j.emitMapped(k, v)
}

// emitMapped routes one map-output KV past the per-emit cost charge: the
// serial emitter charges the rank clock directly, the worker-pool path
// accumulates the same cost per worker and replays staged KVs through here.
func (j *Job) emitMapped(k, v []byte) error {
	if j.cpsBkt != nil {
		// KV compression "introduces extra computational overhead"
		// (Section III-C2): every emitted KV pays a second hash-and-merge
		// pass before it can reach the send buffer.
		j.charge(j.cfg.Costs.PerRecord+float64(len(k)+len(v))*j.cfg.Costs.KVPerByte, simtime.Compute)
		err := j.cpsBkt.Upsert(k, v, func(existing, incoming []byte) ([]byte, error) {
			return j.cfg.Combiner(k, existing, incoming)
		})
		if err != nil {
			return err
		}
		// Streaming compression: with a budget, spill the bucket into the
		// aggregate pipeline instead of letting it grow with the map. The
		// budget is floored at two pages — below that the bucket would
		// drain on every insert, defeating compression entirely.
		budget := j.cfg.CombinerBudget
		if budget > 0 && budget < int64(2*j.cfg.PageSize) {
			budget = int64(2 * j.cfg.PageSize)
		}
		if budget > 0 && j.cpsBkt.MemoryBytes() > budget {
			if err := j.drainCombiner(); err != nil {
				return err
			}
			j.cpsBkt.Free()
			j.cpsBkt, err = newBucketForJob(j)
			return err
		}
		return nil
	}
	return j.insertSend(k, v)
}

// drainCombiner moves every combined KV from the compression bucket into
// the partitioned send buffer (triggering exchange rounds as partitions
// fill).
func (j *Job) drainCombiner() error {
	return j.cpsBkt.Scan(func(k, v []byte) error {
		return j.insertSend(k, v)
	})
}

// insertSend places one encoded KV into the partition of its destination
// rank, suspending the map for an exchange round when the partition is full.
// While a plan is pending, KVs are staged in a container instead — no bytes
// may enter the send buffer before the assignment exists, or they would ride
// an exchange the planning collectives must precede.
func (j *Job) insertSend(k, v []byte) error {
	n := j.cfg.Hint.EncodedSize(k, v)
	if n > j.partSize {
		return fmt.Errorf("core: KV of %d bytes exceeds send partition of %d bytes", n, j.partSize)
	}
	if j.planPending {
		if err := j.planStage.Append(k, v); err != nil {
			return err
		}
		// Plan once a comm buffer's worth is staged: enough to sample, small
		// enough to keep staging memory bounded. Ranks reach this point at
		// different times; the collectives inside Plan block until all ranks
		// arrive (the slow ones plan at end of input), so this cannot
		// deadlock and the collective order stays identical everywhere.
		if j.planStage.Bytes() >= int64(j.cfg.CommBuf) {
			return j.runPlan()
		}
		return nil
	}
	dest, err := j.destFor(k)
	if err != nil {
		return err
	}
	if j.partOffs[j.active][dest]+n > j.partSize {
		if j.cfg.SerialAggregate {
			if _, err := j.exchange(false); err != nil {
				return err
			}
		} else if err := j.rotateRound(); err != nil {
			return err
		}
	}
	base := (j.active*j.comm.Size()+dest)*j.partSize + j.partOffs[j.active][dest]
	enc, err := j.cfg.Hint.Encode(j.sendBuf.Buf[base:base], k, v)
	if err != nil {
		return err
	}
	if len(enc) != n {
		panic("core: encode size mismatch")
	}
	j.partOffs[j.active][dest] += n
	j.stats.MapOutKVs++
	j.stats.MapOutBytes += int64(n)
	return nil
}

// destFor resolves one KV's destination rank under the job's assignment
// (legacy FNV-1a when none). Split keys advance a per-key sequence counter
// so their emissions round-robin over the split set; the counters live on
// the serial insert path (worker-pool output is replayed serially), so the
// sequence — and every routed byte — is deterministic.
func (j *Job) destFor(k []byte) (int, error) {
	if j.asn == nil {
		return int(kvbuf.HashKey(k) % uint64(j.comm.Size())), nil
	}
	var seq uint64
	if j.splitSeq != nil && j.asn.SplitWidth(k) > 1 {
		seq = j.splitSeq[string(k)]
		j.splitSeq[string(k)] = seq + 1
	}
	dest := j.asn.Dest(k, seq)
	if dest < 0 || dest >= j.comm.Size() {
		return 0, fmt.Errorf("core: partitioner returned rank %d of %d", dest, j.comm.Size())
	}
	return dest, nil
}

// runPlan executes a planning partitioner: stride-sample the staged map
// output, hand the sample to Plan (all-gather + broadcast on the job's
// collectives, charged to the aggregate phase like every other exchange),
// then drain the staged KVs through the now-routed insert path. Hot-key
// splitting is enabled only when the job partially reduces (the merge
// callback re-merges split partials) and does not checkpoint (checkpointed
// state must stay repartitionable by key alone).
func (j *Job) runPlan() error {
	tStart := j.comm.Clock().Now()
	defer func() {
		j.stats.Phases.Aggregate += j.comm.Clock().Now() - tStart
	}()
	j.planPending = false
	limit := partition.SampleKeysPerRank
	if sc, ok := j.cfg.Partitioner.(interface{ SampleCap() int }); ok && sc.SampleCap() > 0 {
		limit = sc.SampleCap()
	}
	total := int(j.planStage.NumKV())
	stride := 1
	if total > limit {
		stride = (total + limit - 1) / limit
	}
	var sample [][]byte
	var sampleBytes int
	i := 0
	err := j.planStage.Scan(func(k, _ []byte) error {
		if i%stride == 0 {
			sample = append(sample, append([]byte(nil), k...))
			sampleBytes += len(k)
		}
		i++
		return nil
	})
	if err != nil {
		return err
	}
	// Drawing the sample is a pass over the staged keys.
	j.charge(float64(sampleBytes)*j.cfg.Costs.KVPerByte, simtime.Compute)
	split := j.cfg.PartialReduce != nil && j.cfg.Checkpoint == nil
	if j.asn, err = j.cfg.Partitioner.Plan(j.comm, sample, split); err != nil {
		return err
	}
	if j.asn.Splits() {
		j.splitSeq = make(map[string]uint64)
	}
	stage := j.planStage
	j.planStage = nil
	if err := stage.Drain(j.insertSend); err != nil {
		stage.Free()
		return err
	}
	stage.Free()
	return nil
}

// exchange is one serial aggregate round: all ranks swap their send-buffer
// partitions with a blocking Alltoallv and fold the received KVs into their
// KV container (or partial-reduction bucket), then agree via Allreduce
// whether every rank has finished its input.
func (j *Job) exchange(done bool) (allDone bool, err error) {
	tStart := j.comm.Clock().Now()
	defer func() {
		j.stats.Phases.Aggregate += j.comm.Clock().Now() - tStart
	}()
	recv, err := j.comm.Alltoallv(j.buildSend())
	if err != nil {
		return false, err
	}
	if err := j.consumeRound(recv); err != nil {
		return false, err
	}
	j.comm.Recycle(recv) // consumeRound copied every chunk out

	flag := int64(0)
	if done {
		flag = 1
	}
	sum, err := j.comm.AllreduceInt64([]int64{flag}, mpi.OpSum)
	if err != nil {
		return false, err
	}
	return sum[0] == int64(j.comm.Size()), nil
}

// buildSend assembles the per-destination send slices from the active
// partition set, accounts the shuffled bytes, then resets the set's offsets
// and counts the round. The slices stay valid until the set is overwritten,
// which both exchange paths guarantee happens only after every rank has
// read them (the rendezvous copies at post time). That post-time copy also
// makes the header array itself reusable across rounds, so each round
// repopulates j.sendSlices instead of allocating.
func (j *Job) buildSend() [][]byte {
	p := j.comm.Size()
	if j.sendSlices == nil {
		j.sendSlices = make([][]byte, p)
	}
	send := j.sendSlices
	off := j.partOffs[j.active]
	for dest := 0; dest < p; dest++ {
		base := (j.active*p + dest) * j.partSize
		send[dest] = j.sendBuf.Buf[base : base+off[dest]]
		j.stats.ShuffledBytes += int64(off[dest])
	}
	for i := range off {
		off[i] = 0
	}
	j.stats.Rounds++
	return send
}

// consumeRound folds one round's received chunks into the KV container or
// partial-reduction bucket and charges the receive-side compute cost.
func (j *Job) consumeRound(recv [][]byte) error {
	if j.prShard != nil {
		return j.consumeRoundSharded(recv)
	}
	var recvBytes int
	for _, chunk := range recv {
		recvBytes += len(chunk)
		if err := j.consumeChunk(chunk); err != nil {
			return err
		}
	}
	j.charge(float64(recvBytes)*j.cfg.Costs.KVPerByte, simtime.Compute)
	return nil
}

// postRound starts a nonblocking exchange of the active partition set and
// swaps the map onto the spare set. No simulated time is charged here; the
// communication runs in the background until completeRound.
func (j *Job) postRound() error {
	send := j.buildSend()
	j.pending = j.comm.Ialltoallv(send)
	j.active = (j.active + 1) % j.nbuf
	return nil
}

// completeRound waits for the pending exchange, folds its KVs in, and runs
// the collective done vote. The done flag is raised only once this rank has
// read all its input and its active set holds nothing unsent, so data can
// never be stranded; every rank sees the same vote, so all ranks stop after
// the same round.
func (j *Job) completeRound() (allDone bool, err error) {
	tStart := j.comm.Clock().Now()
	defer func() {
		j.stats.Phases.Aggregate += j.comm.Clock().Now() - tStart
	}()
	req := j.pending
	j.pending = nil
	recv, err := req.Wait()
	if err != nil {
		return false, err
	}
	if saved := req.OverlapSaved(); saved > 0 {
		j.stats.OverlapRounds++
		j.stats.OverlapSavedSec += saved
	}
	if err := j.consumeRound(recv); err != nil {
		return false, err
	}
	j.comm.Recycle(recv) // consumeRound copied every chunk out

	flag := int64(0)
	if j.inputDone && j.activeEmpty() {
		flag = 1
	}
	sum, err := j.comm.AllreduceInt64([]int64{flag}, mpi.OpSum)
	if err != nil {
		return false, err
	}
	return sum[0] == int64(j.comm.Size()), nil
}

// rotateRound is the overlapped aggregate's buffer swap on the map path:
// retire the in-flight round if there is one, then post the now-full active
// set and continue mapping into the freed set. Every rank's collective
// sequence is therefore strictly alternating post, vote, post, vote — the
// SPMD ordering the rendezvous runtime requires.
func (j *Job) rotateRound() error {
	if j.pending != nil {
		if _, err := j.completeRound(); err != nil {
			return err
		}
	}
	return j.postRound()
}

// activeEmpty reports whether the active partition set holds no data.
func (j *Job) activeEmpty() bool {
	for _, o := range j.partOffs[j.active] {
		if o != 0 {
			return false
		}
	}
	return true
}

func (j *Job) consumeChunk(chunk []byte) error {
	if j.prBkt != nil {
		for pos := 0; pos < len(chunk); {
			k, v, n, err := j.cfg.Hint.Decode(chunk[pos:])
			if err != nil {
				return fmt.Errorf("core: bad received chunk: %w", err)
			}
			err = j.prBkt.Upsert(k, v, func(existing, incoming []byte) ([]byte, error) {
				return j.cfg.PartialReduce(k, existing, incoming)
			})
			if err != nil {
				return err
			}
			pos += n
			j.stats.RecvKVs++
		}
		return nil
	}
	n, err := j.recvKVC.AppendChunk(chunk)
	j.stats.RecvKVs += int64(n)
	return err
}

// finish runs the post-shuffle part of the workflow: partial-reduction
// output, map-only output, or convert + reduce (Figure 5).
func (j *Job) finish(reduceFn ReduceFunc) (*Output, error) {
	// Partial reduction replaced convert+reduce; the bucket holds the
	// final unique KVs.
	if j.prBkt != nil || j.prShard != nil {
		tReduce := j.comm.Clock().Now()
		defer func() {
			j.stats.Phases.Reduce = j.comm.Clock().Now() - tReduce
		}()
		// Split keys hold partials on several ranks; route them to the
		// key's home for re-merging via the partial-reduction callback.
		// The assignment is broadcast-identical, so every rank constructs
		// the merge (and runs its Alltoallv) iff any key is split.
		var merge *splitMerge
		if j.asn != nil && j.asn.Splits() {
			merge = newSplitMerge(j)
		}
		out := kvbuf.NewKVCOn(j.pageStore(), j.cfg.Arena, j.cfg.PageSize, j.cfg.Hint)
		err := j.prScan(func(k, v []byte) error {
			if merge != nil && j.asn.SplitWidth(k) > 1 {
				return merge.add(k, v)
			}
			j.charge(j.cfg.Costs.PerRecord+float64(len(k)+len(v))*j.cfg.Costs.ReducePerByte, simtime.Compute)
			return out.Append(k, v)
		})
		if j.prBkt != nil {
			j.prBkt.Free()
			j.prBkt = nil
		}
		if j.prShard != nil {
			j.prShard.Free()
			j.prShard = nil
		}
		if err == nil && merge != nil {
			err = merge.mergeAppend(out)
		}
		if err != nil {
			out.Free()
			return nil, err
		}
		j.stats.OutputKVs = out.NumKV()
		return &Output{KVC: out}, nil
	}

	// Map-only job: the aggregated KVs are the output.
	if reduceFn == nil {
		out := &Output{KVC: j.recvKVC}
		j.recvKVC = nil
		j.stats.OutputKVs = out.KVC.NumKV()
		return out, nil
	}

	// Convert (two passes, drains the input KVC) ...
	tConvert := j.comm.Clock().Now()
	var kmv *kvbuf.KMVC
	var err error
	if j.containersParallel() {
		var work []int64
		kmv, work, err = kvbuf.ConvertParallel(j.recvKVC, j.cfg.Arena, j.cfg.PageSize, j.cfg.Hint, j.workers())
		if err == nil {
			costs := make([]float64, len(work))
			for i, wb := range work {
				costs[i] = float64(wb) * j.cfg.Costs.ReducePerByte
			}
			j.charge(j.parConvert.add(costs), simtime.Compute)
		}
	} else {
		j.charge(float64(j.recvKVC.Bytes())*j.cfg.Costs.ReducePerByte, simtime.Compute)
		kmv, err = kvbuf.ConvertOn(j.pageStore(), j.recvKVC, j.cfg.Arena, j.cfg.PageSize, j.cfg.Hint)
	}
	if err != nil {
		return nil, err
	}
	j.recvKVC = nil
	defer kmv.Free()
	j.stats.Phases.Convert = j.comm.Clock().Now() - tConvert

	// ... then reduce.
	tReduce := j.comm.Clock().Now()
	defer func() {
		j.stats.Phases.Reduce = j.comm.Clock().Now() - tReduce
	}()
	out := kvbuf.NewKVCOn(j.pageStore(), j.cfg.Arena, j.cfg.PageSize, j.cfg.Hint)
	if j.containersParallel() {
		err = j.reduceParallel(kmv, reduceFn, out)
	} else {
		red := &outputEmitter{job: j, kvc: out}
		err = kmv.Scan(func(key []byte, vals *kvbuf.ValueIter) error {
			j.charge(j.cfg.Costs.PerRecord, simtime.Compute)
			return reduceFn(key, vals, red)
		})
	}
	if err != nil {
		out.Free()
		return nil, err
	}
	j.stats.OutputKVs = out.NumKV()
	return &Output{KVC: out}, nil
}

type outputEmitter struct {
	job *Job
	kvc *kvbuf.KVC
}

func (e *outputEmitter) Emit(k, v []byte) error {
	e.job.charge(e.job.cfg.Costs.PerRecord+float64(len(k)+len(v))*e.job.cfg.Costs.ReducePerByte, simtime.Compute)
	return e.kvc.Append(k, v)
}

func (j *Job) charge(seconds float64, kind simtime.Kind) {
	j.comm.Clock().Advance(seconds, kind)
}

func newKVCForJob(j *Job) *kvbuf.KVC {
	return kvbuf.NewKVCOn(j.pageStore(), j.cfg.Arena, j.cfg.PageSize, j.cfg.Hint)
}

// pageStore adapts the job's spill store to the kvbuf interface, keeping
// the interface value nil (not a typed nil) when spilling is off.
func (j *Job) pageStore() kvbuf.PageStore {
	if j.store == nil {
		return nil
	}
	return j.store
}

func newBucketForJob(j *Job) (*kvbuf.Bucket, error) {
	return kvbuf.NewBucketOn(j.pageStore(), j.cfg.Arena, j.cfg.PageSize)
}

// Uint64Bytes and BytesUint64 are small helpers for the ubiquitous 8-byte
// integer values of WordCount-style jobs.
func Uint64Bytes(n uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, n)
	return b
}

// BytesUint64 decodes an 8-byte little-endian value.
func BytesUint64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }
