// Package core implements Mimir, the paper's memory-efficient MapReduce
// engine over MPI (Section III). Its workflow has four phases — map,
// aggregate, convert, reduce — but unlike MR-MPI the aggregate and convert
// phases are implicit: the user-defined map inserts KVs directly into a
// per-destination-partitioned send buffer, and whenever a partition fills,
// the map is suspended and an Alltoallv round drains every rank's send
// buffer into dynamically grown KV containers. Optional optimizations are
// the paper's partial reduction (III-C1), KV compression (III-C2), and
// KV-hint (III-C3).
package core

import (
	"runtime"

	"mimir/internal/kvbuf"
	"mimir/internal/mem"
	"mimir/internal/partition"
	"mimir/internal/pfs"
	"mimir/internal/spill"
)

// Default buffer sizes: the paper's 64 MB page and 64 MB communication
// buffer, scaled 1024x.
const (
	DefaultPageSize = 64 << 10
	DefaultCommBuf  = 64 << 10
	// MinPartition is the floor on a send-buffer partition. The paper's
	// per-rank 64 MB buffer divided by up to 16,384 ranks still leaves 4 KB
	// partitions; under our 1024x size scaling the same division would fall
	// below a single KV, so partitions never shrink beneath this floor. All
	// benchmark KVs fit in 128 bytes (words are capped at ~20 characters).
	MinPartition = 128
)

// OutOfCore selects the engine's response to node memory pressure.
type OutOfCore int

const (
	// Error is the paper's Mimir: when the containers cannot grow, the job
	// fails with mem.ErrNoMemory (the missing data points in the paper's
	// figures). The default.
	Error OutOfCore = iota
	// SpillWhenNeeded evicts cold sealed container pages to Config.SpillFS
	// once arena usage passes the watermark, keeping the dynamic-paged
	// design but surviving datasets larger than memory — the analogue of
	// MR-MPI's spill-when-needed out-of-core mode.
	SpillWhenNeeded
	// SpillAlways additionally writes every container page out the moment
	// it is sealed, minimizing the resident footprint at maximal I/O cost —
	// the analogue of MR-MPI's spill-always mode.
	SpillAlways
)

// String returns the conventional name of the policy.
func (o OutOfCore) String() string {
	switch o {
	case SpillWhenNeeded:
		return "spill-when-needed"
	case SpillAlways:
		return "spill-always"
	}
	return "error"
}

// Emitter receives KVs produced by map and reduce callbacks.
type Emitter interface {
	// Emit stores one KV. The engine copies k and v before returning.
	Emit(k, v []byte) error
}

// Record is one input record. File and in-situ sources fill only Val (the
// record bytes); KV sources from a previous MapReduce stage fill both.
type Record struct {
	Key, Val []byte
}

// MapFunc is the user-defined map callback: it transforms one input record
// into any number of intermediate KVs.
type MapFunc func(rec Record, emit Emitter) error

// ReduceFunc is the user-defined reduce callback: it folds the value list of
// one unique key into any number of output KVs.
type ReduceFunc func(key []byte, vals *kvbuf.ValueIter, emit Emitter) error

// CombineFunc merges two values of the same key into one. It backs both the
// KV compression callback (applied in the map phase, before aggregate) and
// the partial-reduction callback (applied in place of convert+reduce). The
// returned slice may alias existing, which the engine updates in place when
// the length is unchanged.
type CombineFunc func(key, existing, incoming []byte) ([]byte, error)

// Input feeds a rank's share of the job input, one record at a time. Each
// rank gets its own Input closure; it typically wraps a workload generator
// that also charges simulated parallel-file-system read time.
type Input func(emit func(rec Record) error) error

// Costs are the effective per-operation compute costs charged to the
// simulated clock (see internal/platform for the calibrated machine
// presets). A zero Costs charges nothing, which is fine for tests.
type Costs struct {
	MapPerByte    float64 // per input byte passed to the map callback
	KVPerByte     float64 // per intermediate KV byte inserted, sent, or received
	PerRecord     float64 // fixed per-KV overhead
	ReducePerByte float64 // per byte processed by convert and reduce
}

// Config configures a Mimir job.
type Config struct {
	// Arena is the node memory pool all buffers are charged to. Required.
	Arena *mem.Arena
	// PageSize is the unit of data-buffer allocation (default 64 KiB,
	// standing in for the paper's 64 MB).
	PageSize int
	// CommBuf is the communication buffer budget. With the default
	// overlapped aggregate, the two send sets and the receive set all fit
	// inside this budget (a third each). With SerialAggregate it is the
	// paper's Section III-B layout: a send buffer of CommBuf plus an
	// equal-sized receive buffer, which Mimir's design guarantees is
	// sufficient.
	CommBuf int
	// Hint is the KV-hint encoding used for intermediate data.
	Hint kvbuf.Hint
	// Combiner, if set, enables the KV compression optimization: map output
	// is folded into a hash bucket and the aggregate phase is delayed until
	// the map completes, maximizing compression (Section III-C2).
	Combiner CombineFunc
	// PartialReduce, if set, replaces the convert and reduce phases: KVs are
	// folded into a hash bucket as they arrive from the network, so the full
	// KMV set never needs to be resident (Section III-C1). The job's
	// ReduceFunc is not used when PartialReduce is set.
	PartialReduce CombineFunc
	// CombinerBudget bounds the KV compression bucket's memory in bytes.
	// The paper's implementation delays the aggregate until the whole map
	// output is compressed (its acknowledged third shortcoming, "we hope to
	// improve it in a future version of Mimir"); with a budget, the bucket
	// is drained into the send buffer and restarted whenever it outgrows
	// the budget, interleaving compression with aggregation. Zero keeps the
	// paper's delayed behavior; positive values are floored at two pages.
	CombinerBudget int64
	// Checkpoint, if set, persists each rank's post-aggregate state to the
	// parallel file system and lets an identically configured re-run resume
	// from it, skipping input, map, and aggregate (fault tolerance in the
	// style of the authors' FT-MRMPI).
	Checkpoint *Checkpoint
	// SerialAggregate disables communication/computation overlap in the
	// aggregate phase. By default the send buffer is split into two
	// half-sized partition sets and exchanges are posted nonblocking
	// (Ialltoallv): the map keeps filling the spare set while the posted one
	// drains in the background, so an overlapped round costs
	// max(compute, comm) instead of their sum. Setting SerialAggregate
	// restores the paper's blocking single-buffer exchange.
	SerialAggregate bool
	// OutOfCore selects the response to memory pressure (see OutOfCore).
	// The non-default policies require SpillFS and register every KV/KMV
	// container page with a per-rank spill.Store; communication buffers and
	// hash buckets never spill and live in the arena headroom above the
	// watermark.
	OutOfCore OutOfCore
	// SpillFS is the parallel file system that receives evicted pages.
	// Required when OutOfCore is not Error.
	SpillFS *pfs.FS
	// SpillWatermark overrides the eviction watermark as a fraction of
	// arena capacity (default spill.DefaultWatermark).
	SpillWatermark float64
	// SpillPrefetch overrides the sequential readahead depth of container
	// scans over spilled pages (default spill.DefaultPrefetch; negative
	// disables).
	SpillPrefetch int
	// SpillGroup coordinates eviction across the ranks that share this
	// rank's Arena: a rank under memory pressure may then evict another
	// rank's cold pages, resolving pressure node-wide instead of failing
	// while peers sit on cold data. All ranks sharing an Arena should pass
	// the same group. Optional; nil confines eviction to the rank's own
	// pages.
	SpillGroup *spill.Group
	// Workers is the rank's intra-process worker pool size: the map phase,
	// both convert passes, partial reduction, and reduce shard their work
	// across this many goroutines, while every result — output bytes, page
	// layout, exchange rounds, checkpoint files — stays byte-identical to a
	// serial run. 1 is the serial path; 0 (the default) uses
	// runtime.GOMAXPROCS(0), the hybrid MPI+threads layout of one process
	// per node spanning its cores. Simulated time charges the slowest
	// worker per phase (the max rule, like the overlap window), so Workers
	// also models intra-node parallelism in the cost model. With Workers >
	// 1 the map and reduce callbacks and any Combiner/PartialReduce/
	// Partitioner functions must be safe for concurrent calls (pure
	// functions, as all paper workloads are). Container-phase sharding
	// engages only for purely in-memory jobs (OutOfCore: Error); under a
	// spill policy the store serializes container access and only the map
	// fan-out applies.
	Workers int
	// Partitioner overrides the strategy that assigns keys to ranks ("Users
	// can provide alternative hash functions that suit their needs"). Nil
	// uses FNV-1a hashing of the key bytes (partition.HashPartitioner);
	// partition.Func adapts a plain key→rank function; a planning
	// partitioner such as partition.SamplePartitioner stages early map
	// output, samples it, and plans weighted range boundaries on the job's
	// collectives before the first exchange. Destinations must be in
	// [0, nranks) and identical on every rank.
	Partitioner partition.Partitioner
	// Costs are the simulated compute costs.
	Costs Costs
}

func (c Config) withDefaults() Config {
	if c.PageSize <= 0 {
		c.PageSize = DefaultPageSize
	}
	if c.CommBuf <= 0 {
		c.CommBuf = DefaultCommBuf
	}
	zero := kvbuf.Hint{}
	if c.Hint == zero {
		c.Hint = kvbuf.DefaultHint()
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}
