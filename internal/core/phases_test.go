package core

import (
	"math"
	"testing"

	"mimir/internal/mem"
	"mimir/internal/mpi"
	"mimir/internal/simtime"
)

func TestPhaseTimesBreakdown(t *testing.T) {
	// With nonzero costs, every phase must report time and the breakdown
	// must roughly cover the rank's total simulated time.
	w := mpi.NewWorld(mpi.Config{Size: 2, Net: simtime.NetworkModel{Alpha: 1e-6, Beta: 1e8}})
	arena := mem.NewArena(0)
	costs := Costs{MapPerByte: 1e-6, KVPerByte: 1e-6, PerRecord: 1e-7, ReducePerByte: 1e-6}
	lines := make([]Record, 32)
	for i := range lines {
		lines[i] = Record{Val: []byte(testText[i%len(testText)])}
	}
	phases := make([]PhaseTimes, 2)
	times := make([]float64, 2)
	err := w.Run(func(c *mpi.Comm) error {
		out, err := NewJob(c, Config{Arena: arena, Costs: costs}).Run(SliceInput(lines), wcMap, wcReduce)
		if err != nil {
			return err
		}
		defer out.Free()
		phases[c.Rank()] = out.Stats.Phases
		times[c.Rank()] = c.Clock().Now()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, p := range phases {
		if p.Map <= 0 || p.Aggregate <= 0 || p.Convert <= 0 || p.Reduce <= 0 {
			t.Errorf("rank %d: phase missing time: %+v", r, p)
		}
		// The breakdown plus barrier overheads should account for the total.
		if p.Total() > times[r] {
			t.Errorf("rank %d: phases %.6f exceed total %.6f", r, p.Total(), times[r])
		}
		if p.Total() < 0.5*times[r] {
			t.Errorf("rank %d: phases %.6f cover too little of total %.6f", r, p.Total(), times[r])
		}
	}
}

func TestPhaseTimesPartialReduce(t *testing.T) {
	// With partial reduction there is no convert phase; reduce still
	// reports the bucket-drain time.
	w := mpi.NewWorld(mpi.Config{Size: 2, Net: simtime.NetworkModel{Alpha: 1e-6, Beta: 1e8}})
	arena := mem.NewArena(0)
	costs := Costs{MapPerByte: 1e-6, KVPerByte: 1e-6, PerRecord: 1e-7, ReducePerByte: 1e-6}
	err := w.Run(func(c *mpi.Comm) error {
		out, err := NewJob(c, Config{Arena: arena, Costs: costs, PartialReduce: wcCombine}).
			Run(SliceInput([]Record{{Val: []byte(testText[c.Rank()])}}), wcMap, nil)
		if err != nil {
			return err
		}
		defer out.Free()
		p := out.Stats.Phases
		if p.Convert != 0 {
			t.Errorf("convert time %v with partial reduction, want 0", p.Convert)
		}
		if p.Reduce <= 0 {
			t.Errorf("reduce time %v, want > 0", p.Reduce)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPhaseTimesZeroCosts(t *testing.T) {
	// With zero costs and a near-free network the breakdown is ~zero but
	// must not be negative or NaN.
	got := runWC(t, 2, testText, nil)
	if len(got) == 0 {
		t.Fatal("no output")
	}
	// runWC already checks results; this test guards the arithmetic.
	w := mpi.NewWorld(mpi.Config{Size: 1, Net: testNet()})
	arena := mem.NewArena(0)
	err := w.Run(func(c *mpi.Comm) error {
		out, err := NewJob(c, Config{Arena: arena}).Run(SliceInput([]Record{{Val: []byte("a b")}}), wcMap, wcReduce)
		if err != nil {
			return err
		}
		defer out.Free()
		p := out.Stats.Phases
		for _, v := range []float64{p.Map, p.Aggregate, p.Convert, p.Reduce} {
			if v < 0 || math.IsNaN(v) {
				t.Errorf("bad phase time %v in %+v", v, p)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
