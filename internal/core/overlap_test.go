package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"mimir/internal/kvbuf"
	"mimir/internal/mem"
	"mimir/internal/mpi"
	"mimir/internal/simtime"
)

// Property: the overlapped aggregate (default) and the serial aggregate
// (SerialAggregate) produce the identical KV multiset across rank counts,
// comm-buffer sizes, and the hint/pr/cps optimization ladder. This is the
// guarantee that lets the nonblocking exchange be on by default.
func TestOverlapSerialEquivalenceProperty(t *testing.T) {
	ladder := []struct {
		name string
		mod  func(*Config)
	}{
		{"base", func(*Config) {}},
		{"hint", func(cfg *Config) {
			cfg.Hint = kvbuf.Hint{Key: kvbuf.StrZ(), Val: kvbuf.Fixed(8)}
		}},
		{"pr", func(cfg *Config) { cfg.PartialReduce = wcCombine }},
		{"cps", func(cfg *Config) { cfg.Combiner = wcCombine }},
		{"full", func(cfg *Config) {
			cfg.Hint = kvbuf.Hint{Key: kvbuf.StrZ(), Val: kvbuf.Fixed(8)}
			cfg.PartialReduce = wcCombine
			cfg.Combiner = wcCombine
		}},
	}
	f := func(seed uint16) bool {
		nLines := int(seed%12) + 4
		lines := make([]string, nLines)
		for i := range lines {
			var sb strings.Builder
			for j := 0; j <= int(seed%20)+3; j++ {
				fmt.Fprintf(&sb, "word%d ", (int(seed)+7*i+j)%13)
			}
			lines[i] = sb.String()
		}
		want := refWordCount(lines)
		for _, p := range []int{1, 4, 24} {
			for _, commBuf := range []int{4 * MinPartition, DefaultCommBuf} {
				for _, step := range ladder {
					for _, serial := range []bool{false, true} {
						got := runWC(t, p, lines, func(cfg *Config) {
							cfg.CommBuf = commBuf
							cfg.SerialAggregate = serial
							step.mod(cfg)
						})
						if len(got) != len(want) {
							t.Logf("p=%d commbuf=%d %s serial=%v: %d unique words, want %d",
								p, commBuf, step.name, serial, len(got), len(want))
							return false
						}
						for w, n := range want {
							if got[w] != n {
								t.Logf("p=%d commbuf=%d %s serial=%v: count[%q]=%d, want %d",
									p, commBuf, step.name, serial, w, got[w], n)
								return false
							}
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3}); err != nil {
		t.Error(err)
	}
}

// timedWC runs a multi-round WordCount with realistic compute and network
// costs and returns the simulated job time plus the summed overlap stats.
func timedWC(t *testing.T, serial bool) (simT float64, overlapRounds int, savedSec float64) {
	t.Helper()
	lines := make([]string, 96)
	for i := range lines {
		lines[i] = fmt.Sprintf("alpha beta gamma delta word%d epsilon zeta eta theta filler%d", i%11, i%5)
	}
	// A bandwidth-dominated network (small alpha, low beta): the overlap
	// win scales with the bytes it hides, while the extra rounds of the
	// smaller double-buffered partitions cost only latency.
	const p = 4
	w := mpi.NewWorld(mpi.Config{Size: p, Net: simtime.NetworkModel{Alpha: 1e-7, Beta: 5e6}})
	arena := mem.NewArena(0)
	var mu sync.Mutex
	err := w.Run(func(c *mpi.Comm) error {
		job := NewJob(c, Config{
			Arena:           arena,
			CommBuf:         12 * MinPartition,
			SerialAggregate: serial,
			// Pin the serial worker path: the overlap-vs-serial comparison
			// below asserts on exact simulated times, which the pool's
			// max-rule accounting would shift on multi-core hosts.
			Workers: 1,
			Costs:   Costs{MapPerByte: 1e-7, KVPerByte: 3e-7, PerRecord: 1e-6, ReducePerByte: 1e-7},
		})
		var mine []Record
		for i, l := range lines {
			if i%p == c.Rank() {
				mine = append(mine, Record{Val: []byte(l)})
			}
		}
		out, err := job.Run(SliceInput(mine), wcMap, wcReduce)
		if err != nil {
			return err
		}
		defer out.Free()
		mu.Lock()
		overlapRounds += out.Stats.OverlapRounds
		savedSec += out.Stats.OverlapSavedSec
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return w.MaxTime(), overlapRounds, savedSec
}

// TestOverlapSavesSimTime pins the tentpole's point: with compute and
// network costs charged, the overlapped aggregate finishes the same job in
// less simulated time than the serial aggregate, and the stats say why.
func TestOverlapSavesSimTime(t *testing.T) {
	serialT, serialRounds, serialSaved := timedWC(t, true)
	if serialRounds != 0 || serialSaved != 0 {
		t.Errorf("serial run reported overlap stats: rounds=%d saved=%v", serialRounds, serialSaved)
	}
	overlapT, overlapRounds, overlapSaved := timedWC(t, false)
	if overlapRounds == 0 {
		t.Error("overlapped run hid no rounds (OverlapRounds = 0)")
	}
	if overlapSaved <= 0 {
		t.Error("overlapped run saved no simulated time (OverlapSavedSec = 0)")
	}
	if overlapT >= serialT {
		t.Errorf("overlapped job time %.6f s not below serial %.6f s", overlapT, serialT)
	}
	t.Logf("serial %.6f s, overlapped %.6f s (%.1f%% faster, %d rounds hidden, %.6f s saved per-rank sum)",
		serialT, overlapT, 100*(1-overlapT/serialT), overlapRounds, overlapSaved)
}
