package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"mimir/internal/mem"
	"mimir/internal/mpi"
	"mimir/internal/partition"
)

// skewedLines builds a corpus where one word carries roughly frac of all
// occurrences — the zipf-hot shape the sample partitioner exists for.
func skewedLines(n int, frac float64) []string {
	lines := make([]string, n)
	hotPerLine := int(frac * 8 / (1 - frac))
	for i := range lines {
		words := make([]string, 0, 8+hotPerLine)
		for h := 0; h < hotPerLine; h++ {
			words = append(words, "the")
		}
		for w := 0; w < 8; w++ {
			words = append(words, fmt.Sprintf("w%03d", (i*8+w)%200))
		}
		lines[i] = strings.Join(words, " ")
	}
	return lines
}

func TestSamplePartitionerWordCount(t *testing.T) {
	// The sample-planned run must produce exactly the hash run's merged
	// counts, across the core workflow variants.
	lines := skewedLines(96, 0.5)
	want := refWordCount(lines)
	for _, tc := range []struct {
		name string
		mod  func(*Config)
	}{
		{"plain", nil},
		{"pr", func(cfg *Config) { cfg.PartialReduce = wcCombine }},
		{"cps", func(cfg *Config) { cfg.Combiner = wcCombine }},
		{"serial-aggregate", func(cfg *Config) { cfg.SerialAggregate = true }},
		{"workers", func(cfg *Config) { cfg.Workers = 4; cfg.PartialReduce = wcCombine }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := runWC(t, 4, lines, func(cfg *Config) {
				cfg.Partitioner = &partition.SamplePartitioner{}
				if tc.mod != nil {
					tc.mod(cfg)
				}
			})
			checkWC(t, got, want)
		})
	}
}

func TestSamplePartitionerSplitsHotKey(t *testing.T) {
	// With partial reduction the planner may split the hot key over several
	// ranks; the partials must re-merge to exactly the unsplit totals, and
	// the split machinery must actually have engaged.
	lines := skewedLines(96, 0.6)
	const p = 4
	w := mpi.NewWorld(mpi.Config{Size: p, Net: testNet()})
	arena := mem.NewArena(0)
	var mu sync.Mutex
	got := map[string]uint64{}
	splitSeen := false
	err := w.Run(func(c *mpi.Comm) error {
		job := NewJob(c, Config{
			Arena:         arena,
			Partitioner:   &partition.SamplePartitioner{},
			PartialReduce: wcCombine,
		})
		var mine []Record
		for i, l := range lines {
			if i%p == c.Rank() {
				mine = append(mine, Record{Val: []byte(l)})
			}
		}
		out, err := job.Run(SliceInput(mine), wcMap, wcReduce)
		if err != nil {
			return err
		}
		defer out.Free()
		mu.Lock()
		defer mu.Unlock()
		if job.asn != nil && job.asn.Splits() {
			splitSeen = true
		}
		return out.Scan(func(k, v []byte) error {
			got[string(k)] += BytesUint64(v)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	checkWC(t, got, refWordCount(lines))
	if !splitSeen {
		t.Fatal("60%-hot key was not split — split+re-merge path untested")
	}
}

func TestSamplePartitionerNoSplitWithCheckpoint(t *testing.T) {
	// Checkpointed jobs must plan without splitting so checkpointed keys
	// stay whole per rank (RepartitionCheckpoint's contract).
	lines := skewedLines(48, 0.6)
	fs := ckptFS()
	const p = 2
	w := mpi.NewWorld(mpi.Config{Size: p, Net: testNet()})
	arena := mem.NewArena(0)
	var mu sync.Mutex
	got := map[string]uint64{}
	err := w.Run(func(c *mpi.Comm) error {
		job := NewJob(c, Config{
			Arena:         arena,
			Partitioner:   &partition.SamplePartitioner{},
			PartialReduce: wcCombine,
			Checkpoint:    &Checkpoint{FS: fs, Name: "sample-nosplit"},
		})
		var mine []Record
		for i, l := range lines {
			if i%p == c.Rank() {
				mine = append(mine, Record{Val: []byte(l)})
			}
		}
		out, err := job.Run(SliceInput(mine), wcMap, wcReduce)
		if err != nil {
			return err
		}
		defer out.Free()
		mu.Lock()
		defer mu.Unlock()
		if job.asn != nil && job.asn.Splits() {
			return fmt.Errorf("checkpointed job split a key")
		}
		return out.Scan(func(k, v []byte) error {
			got[string(k)] += BytesUint64(v)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	checkWC(t, got, refWordCount(lines))
}

func TestSamplePartitionerBalancesSkew(t *testing.T) {
	// The point of the exercise: under a hot key, the sample plan's max
	// per-rank receive load must be well under the hash plan's.
	lines := skewedLines(128, 0.5)
	loads := func(part partition.Partitioner) []int64 {
		const p = 4
		w := mpi.NewWorld(mpi.Config{Size: p, Net: testNet()})
		arena := mem.NewArena(0)
		recv := make([]int64, p)
		err := w.Run(func(c *mpi.Comm) error {
			job := NewJob(c, Config{Arena: arena, Partitioner: part, PartialReduce: wcCombine})
			var mine []Record
			for i, l := range lines {
				if i%p == c.Rank() {
					mine = append(mine, Record{Val: []byte(l)})
				}
			}
			out, err := job.Run(SliceInput(mine), wcMap, wcReduce)
			if err != nil {
				return err
			}
			defer out.Free()
			recv[c.Rank()] = out.Stats.RecvKVs
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return recv
	}
	maxOf := func(xs []int64) int64 {
		var m int64
		for _, x := range xs {
			if x > m {
				m = x
			}
		}
		return m
	}
	hashMax := maxOf(loads(partition.HashPartitioner{}))
	sampleMax := maxOf(loads(&partition.SamplePartitioner{}))
	if float64(sampleMax) > 0.8*float64(hashMax) {
		t.Errorf("sample max recv %d not well under hash max recv %d", sampleMax, hashMax)
	}
}
