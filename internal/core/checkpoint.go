package core

import (
	"encoding/binary"
	"fmt"

	"mimir/internal/kvbuf"
	"mimir/internal/pfs"
)

// Checkpoint enables post-shuffle checkpointing to the parallel file
// system, in the spirit of the authors' FT-MRMPI work (the paper's cited
// fix for MR-MPI's "inability to handle system faults"). When configured,
// Run writes each rank's aggregated intermediate data to the file system
// right after the map+aggregate phases — the part of the job that consumed
// the input and the network — and a re-executed job with the same
// checkpoint name resumes from that state, skipping input, map, and
// aggregate entirely.
type Checkpoint struct {
	// FS is the file system checkpoints are written to. Required.
	FS *pfs.FS
	// Name identifies the job; a restarted job must use the same name (and
	// the same world size and Hint).
	Name string
}

// ckptMagic guards against reading garbage or a different job's layout.
const ckptMagic = 0x4d494d4952434b31 // "MIMIRCK1"

func (c *Checkpoint) file(rank int) string {
	return fmt.Sprintf("ckpt/%s/rank%d", c.Name, rank)
}

// Exists reports whether a complete checkpoint is present for every rank of
// a world of the given size.
func (c *Checkpoint) Exists(size int) bool {
	for r := 0; r < size; r++ {
		if c.FS.Size(c.file(r)) < 16 {
			return false
		}
	}
	return true
}

// Remove deletes the checkpoint files of a world of the given size.
func (c *Checkpoint) Remove(size int) {
	for r := 0; r < size; r++ {
		c.FS.Remove(c.file(r))
	}
}

// saveCheckpoint writes this rank's post-aggregate state: every KV of the
// receive container (or partial-reduction bucket), re-encoded under the
// job's hint, preceded by a magic/count header.
func (j *Job) saveCheckpoint() error {
	ck := j.cfg.Checkpoint
	name := ck.file(j.comm.Rank())
	ck.FS.Remove(name)

	var header [16]byte
	binary.LittleEndian.PutUint64(header[0:], ckptMagic)
	var count uint64
	scan := func(fn func(k, v []byte) error) error {
		if j.prBkt != nil || j.prShard != nil {
			return j.prScan(fn)
		}
		return j.recvKVC.Scan(fn)
	}
	// First pass to count (cheap; data is in memory).
	if err := scan(func(k, v []byte) error { count++; return nil }); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(header[8:], count)
	ck.FS.Append(j.comm.Clock(), name, header[:])

	buf := make([]byte, 0, DefaultPageSize)
	err := scan(func(k, v []byte) error {
		var err error
		buf, err = j.cfg.Hint.Encode(buf, k, v)
		if err != nil {
			return err
		}
		if len(buf) >= DefaultPageSize {
			ck.FS.Append(j.comm.Clock(), name, buf)
			buf = buf[:0]
		}
		return nil
	})
	if err != nil {
		return err
	}
	if len(buf) > 0 {
		ck.FS.Append(j.comm.Clock(), name, buf)
	}
	return nil
}

// restoreCheckpoint loads this rank's post-aggregate state into the receive
// container or partial-reduction bucket.
func (j *Job) restoreCheckpoint() error {
	ck := j.cfg.Checkpoint
	data, err := ck.FS.ReadAll(j.comm.Clock(), ck.file(j.comm.Rank()))
	if err != nil {
		return fmt.Errorf("core: reading checkpoint: %w", err)
	}
	if len(data) < 16 || binary.LittleEndian.Uint64(data) != ckptMagic {
		return fmt.Errorf("core: checkpoint %q is corrupt", ck.file(j.comm.Rank()))
	}
	want := binary.LittleEndian.Uint64(data[8:])
	payload := data[16:]

	var got uint64
	if j.cfg.PartialReduce != nil {
		var put func(k, v []byte) error
		if j.prParallel() {
			// Restore into the sharded form so finish takes the same path as
			// a live run; sequence numbers follow checkpoint order, which is
			// the serial insertion order the checkpoint was scanned in.
			j.prShard, err = kvbuf.NewShardedBucket(j.cfg.Arena, j.cfg.PageSize, j.workers())
			if err != nil {
				return err
			}
			put = func(k, v []byte) error {
				cur := j.prSeq
				j.prSeq++
				// Checkpointed entries are unique per key; the merge never runs.
				return j.prShard.Upsert(j.prShard.ShardOf(k), cur, k, v,
					func(existing, incoming []byte) ([]byte, error) { return incoming, nil })
			}
		} else {
			j.prBkt, err = newBucketForJob(j)
			if err != nil {
				return err
			}
			// Checkpointed bucket entries are already unique per key.
			put = j.prBkt.Put
		}
		for pos := 0; pos < len(payload); {
			k, v, n, err := j.cfg.Hint.Decode(payload[pos:])
			if err != nil {
				return fmt.Errorf("core: corrupt checkpoint record: %w", err)
			}
			if err := put(k, v); err != nil {
				return err
			}
			pos += n
			got++
		}
	} else {
		j.recvKVC = newKVCForJob(j)
		n, err := j.recvKVC.AppendChunk(payload)
		if err != nil {
			return fmt.Errorf("core: corrupt checkpoint payload: %w", err)
		}
		got = uint64(n)
	}
	if got != want {
		return fmt.Errorf("core: checkpoint %q holds %d records, header says %d",
			ck.file(j.comm.Rank()), got, want)
	}
	j.stats.RecvKVs = int64(got)
	j.stats.RestoredFromCheckpoint = true
	return nil
}
