package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"mimir/internal/kvbuf"
	"mimir/internal/mem"
	"mimir/internal/mpi"
	"mimir/internal/pfs"
)

func ckptFS() *pfs.FS { return pfs.New(pfs.Config{Bandwidth: 1e9, Latency: 1e-6}) }

// runCkptWC runs WordCount with a checkpoint and reports the merged counts
// plus whether any rank restored and whether the map ran.
func runCkptWC(t *testing.T, fs *pfs.FS, name string, failReduce bool,
	modify func(*Config)) (counts map[string]uint64, restored, mapped bool, err error) {
	t.Helper()
	const p = 3
	w := mpi.NewWorld(mpi.Config{Size: p, Net: testNet()})
	arena := mem.NewArena(0)
	var mu sync.Mutex
	counts = map[string]uint64{}
	err = w.Run(func(c *mpi.Comm) error {
		cfg := Config{Arena: arena, Checkpoint: &Checkpoint{FS: fs, Name: name}}
		if modify != nil {
			modify(&cfg)
		}
		var mine []Record
		for i, l := range testText {
			if i%p == c.Rank() {
				mine = append(mine, Record{Val: []byte(l)})
			}
		}
		trackedMap := func(rec Record, emit Emitter) error {
			mu.Lock()
			mapped = true
			mu.Unlock()
			return wcMap(rec, emit)
		}
		reduce := wcReduce
		if failReduce {
			reduce = func([]byte, *kvbuf.ValueIter, Emitter) error {
				return errors.New("injected reduce failure")
			}
		}
		out, err := NewJob(c, cfg).Run(SliceInput(mine), trackedMap, reduce)
		if err != nil {
			return err
		}
		defer out.Free()
		mu.Lock()
		defer mu.Unlock()
		if out.Stats.RestoredFromCheckpoint {
			restored = true
		}
		return out.Scan(func(k, v []byte) error {
			counts[string(k)] += BytesUint64(v)
			return nil
		})
	})
	if arena.Used() != 0 {
		t.Fatalf("arena used %d after checkpointed job", arena.Used())
	}
	return counts, restored, mapped, err
}

func TestCheckpointWriteAndRestore(t *testing.T) {
	fs := ckptFS()
	want := refWordCount(testText)

	// First run: maps, checkpoints, completes.
	got1, restored, mapped, err := runCkptWC(t, fs, "job1", false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if restored || !mapped {
		t.Fatalf("first run: restored=%v mapped=%v", restored, mapped)
	}
	checkWC(t, got1, want)

	// Second run with the same name: must restore, skip the map, and
	// produce identical output.
	got2, restored, mapped, err := runCkptWC(t, fs, "job1", false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !restored {
		t.Error("second run did not restore from checkpoint")
	}
	if mapped {
		t.Error("second run re-executed the map")
	}
	checkWC(t, got2, want)
}

func TestCheckpointRecoversFromReduceFailure(t *testing.T) {
	// The motivating scenario: the job fails after aggregate (here: a
	// reduce-side fault). Re-running resumes from the checkpoint without
	// re-reading input.
	fs := ckptFS()
	_, _, _, err := runCkptWC(t, fs, "job2", true, nil)
	if err == nil {
		t.Fatal("injected failure did not fail the job")
	}
	got, restored, mapped, err := runCkptWC(t, fs, "job2", false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !restored || mapped {
		t.Errorf("recovery run: restored=%v mapped=%v", restored, mapped)
	}
	checkWC(t, got, refWordCount(testText))
}

func TestCheckpointWithPartialReduce(t *testing.T) {
	fs := ckptFS()
	mod := func(cfg *Config) { cfg.PartialReduce = wcCombine }
	got1, _, _, err := runCkptWC(t, fs, "job3", false, mod)
	if err != nil {
		t.Fatal(err)
	}
	got2, restored, _, err := runCkptWC(t, fs, "job3", false, mod)
	if err != nil {
		t.Fatal(err)
	}
	if !restored {
		t.Error("pr run did not restore")
	}
	checkWC(t, got1, refWordCount(testText))
	checkWC(t, got2, refWordCount(testText))
}

func TestCheckpointWithHint(t *testing.T) {
	fs := ckptFS()
	mod := func(cfg *Config) { cfg.Hint = kvbuf.Hint{Key: kvbuf.StrZ(), Val: kvbuf.Fixed(8)} }
	if _, _, _, err := runCkptWC(t, fs, "job4", false, mod); err != nil {
		t.Fatal(err)
	}
	got, restored, _, err := runCkptWC(t, fs, "job4", false, mod)
	if err != nil {
		t.Fatal(err)
	}
	if !restored {
		t.Error("hinted run did not restore")
	}
	checkWC(t, got, refWordCount(testText))
}

func TestCheckpointExistsAndRemove(t *testing.T) {
	fs := ckptFS()
	ck := &Checkpoint{FS: fs, Name: "job5"}
	if ck.Exists(3) {
		t.Error("Exists before any run")
	}
	if _, _, _, err := runCkptWC(t, fs, "job5", false, nil); err != nil {
		t.Fatal(err)
	}
	if !ck.Exists(3) {
		t.Error("checkpoint missing after run")
	}
	ck.Remove(3)
	if ck.Exists(3) {
		t.Error("checkpoint survived Remove")
	}
	// After removal, a re-run maps again.
	_, restored, mapped, err := runCkptWC(t, fs, "job5", false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if restored || !mapped {
		t.Errorf("after Remove: restored=%v mapped=%v", restored, mapped)
	}
}

func TestCheckpointCorruptDetected(t *testing.T) {
	fs := ckptFS()
	if _, _, _, err := runCkptWC(t, fs, "job6", false, nil); err != nil {
		t.Fatal(err)
	}
	// Corrupt rank 1's file (keep it large enough to pass the size probe).
	name := fmt.Sprintf("ckpt/%s/rank%d", "job6", 1)
	fs.Remove(name)
	fs.Append(nil, name, make([]byte, 64))
	_, _, _, err := runCkptWC(t, fs, "job6", false, nil)
	if err == nil {
		t.Fatal("corrupt checkpoint restored silently")
	}
}

func TestCheckpointPartialSetIgnored(t *testing.T) {
	// A checkpoint present on only some ranks must be ignored collectively.
	fs := ckptFS()
	fs.Append(nil, "ckpt/job7/rank0", make([]byte, 64))
	_, restored, mapped, err := runCkptWC(t, fs, "job7", false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if restored || !mapped {
		t.Errorf("partial checkpoint: restored=%v mapped=%v", restored, mapped)
	}
}
