package core

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"mimir/internal/mem"
	"mimir/internal/mpi"
	"mimir/internal/pfs"
	"mimir/internal/simtime"
)

func writeLines(fs *pfs.FS, name string, lines []string) {
	fs.Append(nil, name, []byte(strings.Join(lines, "\n")+"\n"))
}

func TestFileInputSplitsAtLineBoundaries(t *testing.T) {
	fs := pfs.New(pfs.Config{Bandwidth: 1e9})
	lines := make([]string, 100)
	for i := range lines {
		lines[i] = fmt.Sprintf("line-%03d with some padding %s", i, strings.Repeat("x", i%23))
	}
	writeLines(fs, "input.txt", lines)

	for _, nranks := range []int{1, 2, 3, 7, 100, 250} {
		var got []string
		for rank := 0; rank < nranks; rank++ {
			in := FileInput(fs, simtime.NewClock(), "input.txt", rank, nranks)
			err := in(func(rec Record) error {
				got = append(got, string(rec.Val))
				return nil
			})
			if err != nil {
				t.Fatalf("nranks=%d rank=%d: %v", nranks, rank, err)
			}
		}
		if len(got) != len(lines) {
			t.Fatalf("nranks=%d: got %d lines, want %d", nranks, len(got), len(lines))
		}
		for i := range lines {
			if got[i] != lines[i] {
				t.Fatalf("nranks=%d: line %d = %q, want %q", nranks, i, got[i], lines[i])
			}
		}
	}
}

// Property: every line is delivered exactly once for random line lengths
// and rank counts.
func TestFileInputExactlyOnceProperty(t *testing.T) {
	f := func(seed uint16) bool {
		fs := pfs.New(pfs.Config{Bandwidth: 1e9})
		n := int(seed%60) + 1
		lines := make([]string, n)
		for i := range lines {
			lines[i] = fmt.Sprintf("%d:%s", i, strings.Repeat("a", (i*int(seed)+3)%40))
		}
		writeLines(fs, "f", lines)
		nranks := int(seed%9) + 1
		seen := map[string]int{}
		for rank := 0; rank < nranks; rank++ {
			err := FileInput(fs, nil, "f", rank, nranks)(func(rec Record) error {
				seen[string(rec.Val)]++
				return nil
			})
			if err != nil {
				return false
			}
		}
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFileInputMissingAndEmpty(t *testing.T) {
	fs := pfs.New(pfs.Config{})
	// Missing file: treated as empty.
	err := FileInput(fs, nil, "missing", 0, 2)(func(Record) error {
		t.Fatal("emitted from missing file")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// File with only newlines: no records.
	fs.Append(nil, "nl", []byte("\n\n\n"))
	n := 0
	if err := FileInput(fs, nil, "nl", 0, 1)(func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("emitted %d records from newline-only file", n)
	}
}

func TestFileInputNoTrailingNewline(t *testing.T) {
	fs := pfs.New(pfs.Config{})
	fs.Append(nil, "f", []byte("first\nsecond\nlast-no-newline"))
	var got []string
	for rank := 0; rank < 2; rank++ {
		err := FileInput(fs, nil, "f", rank, 2)(func(rec Record) error {
			got = append(got, string(rec.Val))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"first", "second", "last-no-newline"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestMultiFileInput(t *testing.T) {
	fs := pfs.New(pfs.Config{})
	writeLines(fs, "a", []string{"a1", "a2"})
	writeLines(fs, "b", []string{"b1"})
	var got []string
	for rank := 0; rank < 3; rank++ {
		err := MultiFileInput(fs, nil, []string{"a", "b"}, rank, 3)(func(rec Record) error {
			got = append(got, string(rec.Val))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 3 {
		t.Errorf("got %v, want 3 lines", got)
	}
}

func TestFileInputChargesIO(t *testing.T) {
	fs := pfs.New(pfs.Config{Bandwidth: 1e3})
	writeLines(fs, "f", []string{"hello world"})
	clock := simtime.NewClock()
	if err := FileInput(fs, clock, "f", 0, 1)(func(Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if clock.Spent(simtime.IO) == 0 {
		t.Error("file input charged no IO time")
	}
}

func TestEndToEndFileWordCountWithPersist(t *testing.T) {
	// Full pipeline: dataset file on the PFS -> FileInput -> WordCount ->
	// Persist output back to the PFS.
	fs := pfs.New(pfs.Config{Bandwidth: 1e9})
	writeLines(fs, "corpus", testText)
	const p = 3
	w := mpi.NewWorld(mpi.Config{Size: p, Net: testNet()})
	arena := mem.NewArena(0)
	err := w.Run(func(c *mpi.Comm) error {
		in := FileInput(fs, c.Clock(), "corpus", c.Rank(), p)
		out, err := NewJob(c, Config{Arena: arena}).Run(in, wcMap, wcReduce)
		if err != nil {
			return err
		}
		defer out.Free()
		return out.Persist(fs, c.Clock(), fmt.Sprintf("out/part-%d", c.Rank()))
	})
	if err != nil {
		t.Fatal(err)
	}
	// Re-read the persisted output and compare against the reference.
	got := map[string]bool{}
	var totalLines int
	for r := 0; r < p; r++ {
		data, err := fs.ReadAll(nil, fmt.Sprintf("out/part-%d", r))
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
			if line == "" {
				continue
			}
			word, _, ok := strings.Cut(line, "\t")
			if !ok {
				t.Fatalf("bad output line %q", line)
			}
			got[word] = true
			totalLines++
		}
	}
	want := refWordCount(testText)
	if totalLines != len(want) || len(got) != len(want) {
		t.Errorf("persisted %d lines / %d words, want %d", totalLines, len(got), len(want))
	}
}
