package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"mimir/internal/mem"
	"mimir/internal/mpi"
	"mimir/internal/partition"
)

func TestCustomPartitioner(t *testing.T) {
	// Route every key to rank 0 regardless of hash; all output must land
	// there and the result must be unchanged.
	const p = 4
	w := mpi.NewWorld(mpi.Config{Size: p, Net: testNet()})
	arena := mem.NewArena(0)
	var mu sync.Mutex
	got := map[string]uint64{}
	perRank := make([]int64, p)
	err := w.Run(func(c *mpi.Comm) error {
		job := NewJob(c, Config{
			Arena:       arena,
			Partitioner: partition.Func(func(key []byte, nranks int) int { return 0 }),
		})
		var mine []Record
		for i, l := range testText {
			if i%p == c.Rank() {
				mine = append(mine, Record{Val: []byte(l)})
			}
		}
		out, err := job.Run(SliceInput(mine), wcMap, wcReduce)
		if err != nil {
			return err
		}
		defer out.Free()
		mu.Lock()
		defer mu.Unlock()
		perRank[c.Rank()] = out.NumKV()
		return out.Scan(func(k, v []byte) error {
			got[string(k)] += BytesUint64(v)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	checkWC(t, got, refWordCount(testText))
	for r := 1; r < p; r++ {
		if perRank[r] != 0 {
			t.Errorf("rank %d got %d KVs despite all-to-rank-0 partitioner", r, perRank[r])
		}
	}
	if perRank[0] == 0 {
		t.Error("rank 0 got no output")
	}
}

func TestPartitionerOutOfRange(t *testing.T) {
	w := mpi.NewWorld(mpi.Config{Size: 1, Net: testNet()})
	arena := mem.NewArena(0)
	err := w.Run(func(c *mpi.Comm) error {
		job := NewJob(c, Config{
			Arena:       arena,
			Partitioner: partition.Func(func(key []byte, nranks int) int { return nranks }),
		})
		_, err := job.Run(SliceInput([]Record{{Val: []byte("x")}}), wcMap, wcReduce)
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "partitioner returned") {
		t.Fatalf("err = %v, want partitioner range rejection", err)
	}
}

func TestStreamingCompressionCorrect(t *testing.T) {
	// A tiny CombinerBudget forces many drain/reset cycles; results and
	// totals must match the unbudgeted run.
	lines := make([]string, 64)
	for i := range lines {
		lines[i] = fmt.Sprintf("alpha beta gamma delta-%d epsilon-%d", i%7, i%13)
	}
	for _, budget := range []int64{0, 512, 4096} {
		got := runWC(t, 3, lines, func(cfg *Config) {
			cfg.Combiner = wcCombine
			cfg.CombinerBudget = budget
		})
		checkWC(t, got, refWordCount(lines))
	}
}

func TestStreamingCompressionBoundsBucket(t *testing.T) {
	// With a budget, peak memory must be lower than the delayed-compression
	// default on all-distinct keys. A map-only job isolates the bucket: in
	// delayed mode the full bucket is still resident while the drain fills
	// the receive-side container; in streaming mode the bucket stays small.
	lines := make([]string, 2048)
	for i := range lines {
		lines[i] = fmt.Sprintf("unique-word-%04d another-%04d third-%04d", i, i+10000, i+20000)
	}
	peak := func(budget int64) int64 {
		w := mpi.NewWorld(mpi.Config{Size: 2, Net: testNet()})
		arena := mem.NewArena(0)
		err := w.Run(func(c *mpi.Comm) error {
			cfg := Config{Arena: arena, Combiner: wcCombine, CombinerBudget: budget,
				CommBuf: 4 << 10, PageSize: 2 << 10}
			var mine []Record
			for i, l := range lines {
				if i%2 == c.Rank() {
					mine = append(mine, Record{Val: []byte(l)})
				}
			}
			out, err := NewJob(c, cfg).Run(SliceInput(mine), wcMap, nil)
			if err != nil {
				return err
			}
			out.Free()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return arena.Peak()
	}
	delayed := peak(0)
	streaming := peak(16 << 10)
	if float64(streaming) >= 0.8*float64(delayed) {
		t.Errorf("streaming cps peak %d not well below delayed %d", streaming, delayed)
	}
}

func TestFailedJobLeavesArenaBalanced(t *testing.T) {
	// A shared arena must return to its pre-job level after OOM failures,
	// across all workflow variants.
	for _, mod := range []func(*Config){
		nil,
		func(cfg *Config) { cfg.Combiner = wcCombine },
		func(cfg *Config) { cfg.PartialReduce = wcCombine },
	} {
		arena := mem.NewArena(24 << 10)
		w := mpi.NewWorld(mpi.Config{Size: 2, Net: testNet()})
		lines := make([]string, 200)
		for i := range lines {
			lines[i] = fmt.Sprintf("word-%d word-%d word-%d filler filler", i, i*2, i*3)
		}
		err := w.Run(func(c *mpi.Comm) error {
			cfg := Config{Arena: arena, CommBuf: 4 << 10, PageSize: 2 << 10}
			if mod != nil {
				mod(&cfg)
			}
			var mine []Record
			for i, l := range lines {
				if i%2 == c.Rank() {
					mine = append(mine, Record{Val: []byte(l)})
				}
			}
			out, err := NewJob(c, cfg).Run(SliceInput(mine), wcMap, wcReduce)
			if err == nil {
				out.Free()
			}
			return err
		})
		if !errors.Is(err, mem.ErrNoMemory) {
			t.Fatalf("expected OOM, got %v", err)
		}
		if used := arena.Used(); used != 0 {
			t.Errorf("arena used %d after failed job, want 0", used)
		}
	}
}
