package core

// Intra-rank worker-pool execution (Config.Workers). Concurrency here obeys
// one rule: workers may reorder *work*, never *results*. Every parallel
// phase shards its input deterministically, stages its effects privately,
// and replays them in worker order, so the bytes any observer sees — send
// partitions, exchange rounds, containers, checkpoints, output pages — are
// identical to the serial schedule's. Simulated time charges the slowest
// worker per phase (the max rule, mirroring the overlap window's
// max(compute, comm)), and sum/(W·max) is reported as the phase's parallel
// efficiency.

import (
	"fmt"
	"sync"

	"mimir/internal/kvbuf"
	"mimir/internal/simtime"
)

// workers returns the rank's configured pool size (>= 1 after defaults).
func (j *Job) workers() int { return j.cfg.Workers }

// containersParallel reports whether container phases (partial reduction,
// convert, reduce) shard across the pool. The spill store is the rank's one
// non-thread-safe shared dependency — its lock is a no-op without a spill
// group and it charges the rank clock from whichever goroutine calls it —
// so container sharding engages only for purely in-memory jobs. The map
// fan-out never touches the store and stays on for every policy; output is
// byte-identical either way.
func (j *Job) containersParallel() bool {
	return j.workers() > 1 && j.store == nil
}

// prParallel reports whether the partial-reduction bucket is sharded.
func (j *Job) prParallel() bool {
	return j.cfg.PartialReduce != nil && j.containersParallel()
}

// parallelDo runs fn(w) for w in [0, workers) concurrently and returns the
// lowest-numbered worker's error, so a multi-worker failure reports the
// same error on every run regardless of goroutine scheduling.
func parallelDo(workers int, fn func(w int) error) error {
	if workers == 1 {
		return fn(0)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = fn(w)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// parAcc accumulates one phase's per-worker compute so the rank can charge
// max-over-workers wall time while reporting sum/(W·max) efficiency.
type parAcc struct{ sum, max float64 }

// add folds one fan-out's per-worker costs in and returns the chargeable
// (slowest-worker) cost.
func (a *parAcc) add(costs []float64) float64 {
	var m float64
	for _, c := range costs {
		a.sum += c
		if c > m {
			m = c
		}
	}
	a.max += m
	return m
}

// eff returns the accumulated parallel efficiency for a pool of the given
// size: 1 for perfectly balanced work (or no work / serial execution),
// 1/workers for fully serialized work.
func (a parAcc) eff(workers int) float64 {
	if a.max <= 0 || workers <= 1 {
		return 1
	}
	return a.sum / (float64(workers) * a.max)
}

// Map batching: input records are buffered (bytes copied — the input may
// reuse its buffers between emits) until a batch is worth fanning out. The
// bounds keep the uncharged Go-memory staging small relative to a page
// while giving each worker enough records to amortize the join.
const (
	mapBatchRecords = 512
	mapBatchBytes   = 256 << 10
)

// recSpan locates one (key, value) pair inside a staging buffer: the key
// starts at off, the value follows it.
type recSpan struct{ off, klen, vlen int }

// recBatch is the shared input-record buffer the map fan-out consumes.
type recBatch struct {
	buf   []byte
	spans []recSpan
}

func (b *recBatch) add(rec Record) {
	off := len(b.buf)
	b.buf = append(b.buf, rec.Key...)
	b.buf = append(b.buf, rec.Val...)
	b.spans = append(b.spans, recSpan{off, len(rec.Key), len(rec.Val)})
}

func (b *recBatch) full() bool {
	return len(b.spans) >= mapBatchRecords || len(b.buf) >= mapBatchBytes
}

func (b *recBatch) reset() {
	b.buf = b.buf[:0]
	b.spans = b.spans[:0]
}

// at reconstructs span sp's record, preserving nil-ness for empty sides so
// a batched map callback sees exactly what a serial one would.
func (b *recBatch) at(sp recSpan) (k, v []byte) {
	if sp.klen > 0 {
		k = b.buf[sp.off : sp.off+sp.klen]
	}
	if sp.vlen > 0 {
		v = b.buf[sp.off+sp.klen : sp.off+sp.klen+sp.vlen]
	}
	return k, v
}

// stagedKVs is one worker's private map-output staging. Emitted KVs land in
// plain Go memory — scaffolding bounded by the batch size, deliberately not
// arena-charged — and are replayed through the serial emit path in worker
// order, which equals original record order because workers own contiguous
// record chunks.
type stagedKVs struct {
	costs *Costs
	buf   []byte
	spans []recSpan
	cost  float64
}

func (s *stagedKVs) Emit(k, v []byte) error {
	s.cost += s.costs.PerRecord + float64(len(k)+len(v))*s.costs.KVPerByte
	off := len(s.buf)
	s.buf = append(s.buf, k...)
	s.buf = append(s.buf, v...)
	s.spans = append(s.spans, recSpan{off, len(k), len(v)})
	return nil
}

// flushMapBatch fans the batched records out over the pool: each worker
// runs mapFn over a contiguous chunk into private staging, accumulating the
// map and per-emit compute its records cost; the rank then charges the
// slowest worker and replays the staged KVs in worker order through
// emitMapped — the same byte sequence, combiner folds, and exchange-round
// schedule a serial map would produce.
func (j *Job) flushMapBatch(b *recBatch, mapFn MapFunc) error {
	n := len(b.spans)
	if n == 0 {
		return nil
	}
	w := j.workers()
	if w > n {
		w = n
	}
	stages := make([]*stagedKVs, w)
	costs := make([]float64, w)
	err := parallelDo(w, func(i int) error {
		st := &stagedKVs{costs: &j.cfg.Costs}
		stages[i] = st
		for _, sp := range b.spans[n*i/w : n*(i+1)/w] {
			k, v := b.at(sp)
			st.cost += float64(sp.klen+sp.vlen) * j.cfg.Costs.MapPerByte
			if err := mapFn(Record{Key: k, Val: v}, st); err != nil {
				return err
			}
		}
		return nil
	})
	for i, st := range stages {
		if st != nil {
			costs[i] = st.cost
		}
	}
	j.charge(j.parMap.add(costs), simtime.Compute)
	if err != nil {
		return err
	}
	for _, st := range stages {
		for _, sp := range st.spans {
			k := st.buf[sp.off : sp.off+sp.klen]
			v := st.buf[sp.off+sp.klen : sp.off+sp.klen+sp.vlen]
			if err := j.emitMapped(k, v); err != nil {
				return err
			}
		}
	}
	b.reset()
	return nil
}

// prScan walks the partial-reduction result in serial insertion order,
// whichever bucket form holds it.
func (j *Job) prScan(fn func(k, v []byte) error) error {
	if j.prShard != nil {
		return j.prShard.Scan(fn)
	}
	return j.prBkt.Scan(fn)
}

// consumeRoundSharded folds one exchange round's received chunks into the
// sharded partial-reduction bucket on the pool. Every worker decodes the
// full round (chunks are read-only and Decode returns aliases into them)
// and upserts only its own shard's keys, tagging each KV with its global
// arrival sequence — continued across rounds via prSeq — so the merged
// scan reproduces the serial bucket's insertion order exactly.
func (j *Job) consumeRoundSharded(recv [][]byte) error {
	w := j.workers()
	costs := make([]float64, w)
	var total uint64
	err := parallelDo(w, func(i int) error {
		seq := j.prSeq
		for _, chunk := range recv {
			for pos := 0; pos < len(chunk); {
				k, v, n, err := j.cfg.Hint.Decode(chunk[pos:])
				if err != nil {
					return fmt.Errorf("core: bad received chunk: %w", err)
				}
				pos += n
				cur := seq
				seq++
				if j.prShard.ShardOf(k) != i {
					continue
				}
				costs[i] += float64(n) * j.cfg.Costs.KVPerByte
				err = j.prShard.Upsert(i, cur, k, v, func(existing, incoming []byte) ([]byte, error) {
					return j.cfg.PartialReduce(k, existing, incoming)
				})
				if err != nil {
					return err
				}
			}
		}
		if i == 0 {
			total = seq - j.prSeq
		}
		return nil
	})
	j.charge(j.parAggr.add(costs), simtime.Compute)
	if err != nil {
		return err
	}
	j.prSeq += total
	j.stats.RecvKVs += int64(total)
	return nil
}

// reduceBatchRecords bounds how many KMV records one reduce fan-out covers,
// which in turn bounds the transient arena footprint of the per-worker
// staging containers (at most one batch's output plus a partial page per
// worker is alive beyond the final output at any moment).
const reduceBatchRecords = 1024

// stagedReduceEmitter is one reduce worker's private output staging: an
// ordinary arena-charged KV container, drained into the job output in
// worker order after the batch joins.
type stagedReduceEmitter struct {
	costs *Costs
	kvc   *kvbuf.KVC
	cost  *float64
}

func (e *stagedReduceEmitter) Emit(k, v []byte) error {
	*e.cost += e.costs.PerRecord + float64(len(k)+len(v))*e.costs.ReducePerByte
	return e.kvc.Append(k, v)
}

// reduceParallel runs reduceFn over contiguous KMV record ranges on the
// pool. Records partition by index, so value iterators never race; staging
// drains into out in worker order, reproducing the serial append sequence —
// and therefore the exact output page layout — batch by batch.
func (j *Job) reduceParallel(kmv *kvbuf.KMVC, reduceFn ReduceFunc, out *kvbuf.KVC) error {
	n := kmv.NumKMV()
	for lo := 0; lo < n; lo += reduceBatchRecords {
		cnt := n - lo
		if cnt > reduceBatchRecords {
			cnt = reduceBatchRecords
		}
		w := j.workers()
		if w > cnt {
			w = cnt
		}
		stages := make([]*kvbuf.KVC, w)
		costs := make([]float64, w)
		err := parallelDo(w, func(i int) error {
			st := kvbuf.NewKVC(j.cfg.Arena, j.cfg.PageSize, j.cfg.Hint)
			stages[i] = st
			em := &stagedReduceEmitter{costs: &j.cfg.Costs, kvc: st, cost: &costs[i]}
			return kmv.ScanRange(lo+cnt*i/w, lo+cnt*(i+1)/w, func(key []byte, vals *kvbuf.ValueIter) error {
				costs[i] += j.cfg.Costs.PerRecord
				return reduceFn(key, vals, em)
			})
		})
		j.charge(j.parReduce.add(costs), simtime.Compute)
		if err != nil {
			for _, st := range stages {
				if st != nil {
					st.Free()
				}
			}
			return err
		}
		for i, st := range stages {
			drainErr := st.Drain(func(k, v []byte) error {
				return out.Append(k, v)
			})
			if drainErr != nil {
				for _, rest := range stages[i:] {
					rest.Free()
				}
				return drainErr
			}
		}
	}
	return nil
}
