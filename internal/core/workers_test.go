package core

// The worker-pool determinism battery: Config.Workers may reorder work but
// never results, so every test here compares raw output bytes — not
// multisets — between a serial run and pool runs across worker counts,
// page sizes, out-of-core policies, and the optimization ladder.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"mimir/internal/kvbuf"
	"mimir/internal/mem"
	"mimir/internal/mpi"
	"mimir/internal/pfs"
	"mimir/internal/spill"
)

// wcReduceText is wcReduce with a decimal-text sum, so persisted golden
// output is printable.
func wcReduceText(key []byte, vals *kvbuf.ValueIter, emit Emitter) error {
	var sum uint64
	for v, ok := vals.Next(); ok; v, ok = vals.Next() {
		sum += BytesUint64(v)
	}
	return emit.Emit(key, []byte(fmt.Sprintf("%d", sum)))
}

// rawOutput flattens one rank's output in Scan order into length-prefixed
// bytes: the byte-exact observable every determinism check compares.
func rawOutput(out *Output) ([]byte, error) {
	var buf []byte
	err := out.Scan(func(k, v []byte) error {
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(len(k)))
		binary.LittleEndian.PutUint32(hdr[4:], uint32(len(v)))
		buf = append(buf, hdr[:]...)
		buf = append(buf, k...)
		buf = append(buf, v...)
		return nil
	})
	return buf, err
}

// runWCRaw executes WordCount on p ranks over an arena of the given
// capacity (0 = unlimited) and returns each rank's raw output bytes plus
// its Stats. A spill file system and group are always wired in so modify
// can flip OutOfCore freely. Job errors are returned, not fataled, so
// property tests can require error parity between serial and parallel.
func runWCRaw(t testing.TB, p int, lines []string, capacity int64, modify func(*Config)) ([][]byte, []Stats, error) {
	t.Helper()
	w := mpi.NewWorld(mpi.Config{Size: p, Net: testNet()})
	arena := mem.NewArena(capacity)
	spillFS := pfs.New(pfs.Config{Bandwidth: 1 << 30, Latency: 1e-4})
	group := spill.NewGroup()
	outs := make([][]byte, p)
	stats := make([]Stats, p)
	err := w.Run(func(c *mpi.Comm) error {
		cfg := Config{Arena: arena, Workers: 1, SpillFS: spillFS, SpillGroup: group}
		if modify != nil {
			modify(&cfg)
		}
		job := NewJob(c, cfg)
		var mine []Record
		for i, l := range lines {
			if i%p == c.Rank() {
				mine = append(mine, Record{Val: []byte(l)})
			}
		}
		out, err := job.Run(SliceInput(mine), wcMap, wcReduce)
		if err != nil {
			return err
		}
		defer out.Free()
		raw, err := rawOutput(out)
		if err != nil {
			return err
		}
		outs[c.Rank()] = raw
		stats[c.Rank()] = out.Stats
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	if used := arena.Used(); used != 0 {
		t.Fatalf("arena used %d after job, want 0 (buffer leak)", used)
	}
	return outs, stats, nil
}

// propLines generates seeded WordCount input with a bounded vocabulary and
// occasional empty/long lines.
func propLines(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	lines := make([]string, n)
	for i := range lines {
		words := rng.Intn(12)
		var b []byte
		for j := 0; j < words; j++ {
			if j > 0 {
				b = append(b, ' ')
			}
			b = append(b, fmt.Sprintf("w%03d", rng.Intn(200))...)
		}
		lines[i] = string(b)
	}
	return lines
}

// TestParallelMatchesSerialProperty is the tentpole property: for random
// seeds x worker counts {2,3,8} x page sizes x out-of-core policies x the
// optimization ladder, the pool run's output bytes equal the serial run's
// on every rank. Runs under -race, which also proofs the fan-outs against
// data races.
func TestParallelMatchesSerialProperty(t *testing.T) {
	const p = 4
	workerCounts := []int{1, 2, 3, 8}
	pageSizes := []int{512, 1 << 10, 4 << 10}
	policies := []OutOfCore{Error, SpillWhenNeeded, SpillAlways}
	modes := []func(*Config){
		nil,
		func(cfg *Config) { cfg.PartialReduce = wcCombine },
		func(cfg *Config) { cfg.Combiner = wcCombine; cfg.CombinerBudget = 8 << 10 },
		func(cfg *Config) {
			cfg.Hint = kvbuf.Hint{Key: kvbuf.StrZ(), Val: kvbuf.Fixed(8)}
			cfg.PartialReduce = wcCombine
			cfg.SerialAggregate = true
		},
	}

	f := func(seed int64, wsel, psel, osel, msel uint8) bool {
		workers := workerCounts[int(wsel)%len(workerCounts)]
		pageSize := pageSizes[int(psel)%len(pageSizes)]
		policy := policies[int(osel)%len(policies)]
		mode := modes[int(msel)%len(modes)]
		// Spill policies get a bounded arena so eviction actually happens;
		// Error keeps it unlimited so the run cannot fail.
		var capacity int64
		if policy != Error {
			capacity = 192 << 10
		}
		lines := propLines(seed, 400)
		apply := func(w int) func(*Config) {
			return func(cfg *Config) {
				cfg.PageSize = pageSize
				cfg.CommBuf = 4 << 10
				cfg.OutOfCore = policy
				if mode != nil {
					mode(cfg)
				}
				cfg.Workers = w
			}
		}
		want, _, wantErr := runWCRaw(t, p, lines, capacity, apply(1))
		got, stats, gotErr := runWCRaw(t, p, lines, capacity, apply(workers))
		if (wantErr == nil) != (gotErr == nil) {
			t.Logf("seed=%d workers=%d page=%d policy=%v mode=%d: serial err %v, parallel err %v",
				seed, workers, pageSize, policy, msel%4, wantErr, gotErr)
			return false
		}
		if wantErr != nil {
			return true
		}
		for r := range want {
			if !bytes.Equal(got[r], want[r]) {
				t.Logf("seed=%d workers=%d page=%d policy=%v mode=%d: rank %d output diverges (%d vs %d bytes)",
					seed, workers, pageSize, policy, msel%4, r, len(got[r]), len(want[r]))
				return false
			}
		}
		for r, st := range stats {
			if st.Workers != workers {
				t.Logf("rank %d Stats.Workers = %d, want %d", r, st.Workers, workers)
				return false
			}
			for _, eff := range []float64{st.ParEff.Map, st.ParEff.Aggregate, st.ParEff.Convert, st.ParEff.Reduce} {
				if eff <= 0 || eff > 1+1e-9 {
					t.Logf("rank %d ParEff out of range: %+v", r, st.ParEff)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 24}); err != nil {
		t.Error(err)
	}
}

// TestWorkersGoldenOutputOrder pins the exact Output iteration and Persist
// byte stream of a pool run. The literal below was produced by the serial
// path; a pool run must reproduce it byte for byte, so any future change
// that reorders parallel output — however plausibly — fails loudly here.
func TestWorkersGoldenOutputOrder(t *testing.T) {
	const golden = "== rank 0 ==\n" +
		"the\t5\nquick\t1\nfox\t2\njumps\t1\npack\t1\nbox\t1\njugs\t1\nbarks\t1\n" +
		"and\t1\nboxing\t1\n" +
		"== rank 1 ==\n" +
		"brown\t1\nover\t1\nlazy\t1\ndog\t2\nmy\t1\nwith\t1\nfive\t2\ndozen\t1\n" +
		"liquor\t1\nruns\t1\nwizards\t1\njump\t1\nquickly\t1\n"

	for _, workers := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const p = 2
			w := mpi.NewWorld(mpi.Config{Size: p, Net: testNet()})
			arena := mem.NewArena(0)
			outFS := pfs.New(pfs.Config{Bandwidth: 1 << 30, Latency: 1e-4})
			var mu sync.Mutex
			persisted := make([]string, p)
			err := w.Run(func(c *mpi.Comm) error {
				job := NewJob(c, Config{Arena: arena, PageSize: 512, Workers: workers})
				var mine []Record
				for i, l := range testText {
					if i%p == c.Rank() {
						mine = append(mine, Record{Val: []byte(l)})
					}
				}
				out, err := job.Run(SliceInput(mine), wcMap, wcReduceText)
				if err != nil {
					return err
				}
				defer out.Free()
				name := fmt.Sprintf("out/rank%d", c.Rank())
				if err := out.Persist(outFS, c.Clock(), name); err != nil {
					return err
				}
				data, err := outFS.ReadAll(c.Clock(), name)
				if err != nil {
					return err
				}
				mu.Lock()
				defer mu.Unlock()
				persisted[c.Rank()] = string(data)
				return nil
			})
			if err != nil {
				t.Fatalf("world: %v", err)
			}
			var got string
			for r, s := range persisted {
				got += fmt.Sprintf("== rank %d ==\n%s", r, s)
			}
			if got != golden {
				t.Fatalf("persisted output diverges from golden:\ngot:\n%s\nwant:\n%s", got, golden)
			}
		})
	}
}

// TestWorkersSpillCheckpointResume drives the full durability stack under
// the pool: a spill-always job with checkpointing runs twice — the second
// run restores from the checkpoint — at Workers 1 and 8, and all four runs
// must produce identical output bytes.
func TestWorkersSpillCheckpointResume(t *testing.T) {
	const p = 4
	const capacity = 192 << 10
	lines := spillLines(3000)

	run := func(workers int, ck *Checkpoint) ([][]byte, []Stats, error) {
		return runWCRaw(t, p, lines, capacity, func(cfg *Config) {
			cfg.PageSize = 1 << 10
			cfg.CommBuf = 4 << 10
			cfg.OutOfCore = SpillAlways
			cfg.Checkpoint = ck
			cfg.Workers = workers
		})
	}

	want, _, err := run(1, &Checkpoint{FS: pfs.New(pfs.Config{}), Name: "serial"})
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}

	ckFS := pfs.New(pfs.Config{})
	ck := &Checkpoint{FS: ckFS, Name: "pool"}
	first, stats, err := run(8, ck)
	if err != nil {
		t.Fatalf("pool run: %v", err)
	}
	if stats[0].RestoredFromCheckpoint {
		t.Fatal("first pool run claims to have restored from a checkpoint")
	}
	if !ck.Exists(p) {
		t.Fatal("first pool run left no checkpoint")
	}
	second, stats, err := run(8, ck)
	if err != nil {
		t.Fatalf("pool resume run: %v", err)
	}
	for r := range want {
		if !bytes.Equal(first[r], want[r]) {
			t.Errorf("rank %d: pool output diverges from serial (%d vs %d bytes)", r, len(first[r]), len(want[r]))
		}
		if !bytes.Equal(second[r], want[r]) {
			t.Errorf("rank %d: pool resume output diverges from serial (%d vs %d bytes)", r, len(second[r]), len(want[r]))
		}
		if !stats[r].RestoredFromCheckpoint {
			t.Errorf("rank %d did not restore from the checkpoint", r)
		}
	}
}

// TestWorkersCheckpointPartialReduce covers the sharded-bucket checkpoint
// round trip: a partial-reduction job at Workers=8 saves its (sharded)
// post-aggregate state, and the resumed run — which restores into the
// sharded form — matches the serial run's bytes.
func TestWorkersCheckpointPartialReduce(t *testing.T) {
	const p = 4
	lines := propLines(7, 500)

	run := func(workers int, ck *Checkpoint) ([][]byte, []Stats, error) {
		return runWCRaw(t, p, lines, 0, func(cfg *Config) {
			cfg.PageSize = 1 << 10
			cfg.PartialReduce = wcCombine
			cfg.Checkpoint = ck
			cfg.Workers = workers
		})
	}

	want, _, err := run(1, &Checkpoint{FS: pfs.New(pfs.Config{}), Name: "serial"})
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	ck := &Checkpoint{FS: pfs.New(pfs.Config{}), Name: "pr"}
	first, _, err := run(8, ck)
	if err != nil {
		t.Fatalf("pool run: %v", err)
	}
	second, stats, err := run(8, ck)
	if err != nil {
		t.Fatalf("pool resume run: %v", err)
	}
	for r := range want {
		if !bytes.Equal(first[r], want[r]) {
			t.Errorf("rank %d: pool PR output diverges from serial", r)
		}
		if !bytes.Equal(second[r], want[r]) {
			t.Errorf("rank %d: restored PR output diverges from serial", r)
		}
		if !stats[r].RestoredFromCheckpoint {
			t.Errorf("rank %d did not restore from the checkpoint", r)
		}
	}
}

// TestWorkersSimtimeMaxRule checks the cost model: with nonzero costs, a
// pool run's simulated time is no longer than serial (max over workers
// never exceeds the sum), phase efficiencies land in (0, 1], and at 8
// workers the map phase shows a real speedup over serial.
func TestWorkersSimtimeMaxRule(t *testing.T) {
	const p = 2
	lines := propLines(3, 600)
	costs := Costs{MapPerByte: 1e-7, KVPerByte: 3e-7, PerRecord: 1e-6, ReducePerByte: 1e-7}

	phase := func(workers int) (PhaseTimes, PhaseTimes) {
		_, stats, err := runWCRaw(t, p, lines, 0, func(cfg *Config) {
			cfg.Costs = costs
			cfg.Workers = workers
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return stats[0].Phases, stats[0].ParEff
	}

	serial, _ := phase(1)
	par, eff := phase(8)
	if par.Map >= serial.Map {
		t.Errorf("map phase at 8 workers took %.6fs, serial %.6fs — no speedup", par.Map, serial.Map)
	}
	if par.Total() > serial.Total()+1e-9 {
		t.Errorf("pool total %.6fs exceeds serial %.6fs", par.Total(), serial.Total())
	}
	if eff.Map <= 0 || eff.Map > 1 {
		t.Errorf("map efficiency %.3f out of (0, 1]", eff.Map)
	}
	if speedup := serial.Map / par.Map; speedup < 2 {
		t.Errorf("map speedup at 8 workers is %.2fx, want >= 2x", speedup)
	}
}

// TestWorkersDefault pins the Config default: 0 resolves to GOMAXPROCS and
// 1 stays serial.
func TestWorkersDefault(t *testing.T) {
	if got := (Config{}).withDefaults().Workers; got < 1 {
		t.Fatalf("defaulted Workers = %d, want >= 1", got)
	}
	if got := (Config{Workers: 1}).withDefaults().Workers; got != 1 {
		t.Fatalf("Workers: 1 resolved to %d", got)
	}
	if got := (Config{Workers: 6}).withDefaults().Workers; got != 6 {
		t.Fatalf("Workers: 6 resolved to %d", got)
	}
}
