package core

import (
	"fmt"
	"sort"

	"mimir/internal/simtime"
)

// splitMerge re-merges the partials of hot-split keys. A split key's KVs
// fanned out over several ranks during the aggregate, so after partial
// reduction each rank in the split set holds one partial per split key.
// Every rank routes its partials to the key's home rank — Dest(key, 0) —
// over one extra Alltoallv, and the home folds them together with the same
// commutative partial-reduction callback, so the final unique-key output is
// byte-identical (after canonical re-sort) to a run that never split.
type splitMerge struct {
	j    *Job
	send [][]byte          // encoded partials bound for each key's home rank
	own  map[string][]byte // partials homed on this rank, keyed by key bytes
	keys []string          // insertion-ordered home keys (sorted before output)
}

func newSplitMerge(j *Job) *splitMerge {
	return &splitMerge{
		j:    j,
		send: make([][]byte, j.comm.Size()),
		own:  make(map[string][]byte),
	}
}

// add routes one split-key partial: kept locally when this rank is the
// key's home, otherwise encoded into the home's send slice. Each rank's
// partial-reduction bucket holds at most one partial per key, so add sees
// every split key at most once per rank.
func (m *splitMerge) add(k, v []byte) error {
	j := m.j
	home := j.asn.Dest(k, 0)
	if home < 0 || home >= j.comm.Size() {
		return fmt.Errorf("core: split home rank %d of %d", home, j.comm.Size())
	}
	if home == j.comm.Rank() {
		ks := string(k)
		if _, dup := m.own[ks]; !dup {
			m.keys = append(m.keys, ks)
		}
		m.own[ks] = append([]byte(nil), v...)
		return nil
	}
	var err error
	m.send[home], err = j.cfg.Hint.Encode(m.send[home], k, v)
	return err
}

// mergeAppend exchanges the routed partials, folds arrivals into this
// rank's own partials via the partial-reduction callback, and appends the
// merged split keys to out in sorted key order (deterministic regardless of
// arrival interleaving). Runs on every rank whenever the assignment splits
// at all — the Alltoallv is collective.
func (m *splitMerge) mergeAppend(out interface{ Append(k, v []byte) error }) error {
	j := m.j
	recv, err := j.comm.Alltoallv(m.send)
	if err != nil {
		return err
	}
	var recvBytes int
	for src := 0; src < len(recv); src++ { // src-ascending: deterministic fold order
		chunk := recv[src]
		recvBytes += len(chunk)
		for pos := 0; pos < len(chunk); {
			k, v, n, err := j.cfg.Hint.Decode(chunk[pos:])
			if err != nil {
				return fmt.Errorf("core: bad split-merge chunk: %w", err)
			}
			ks := string(k)
			if existing, ok := m.own[ks]; ok {
				merged, err := j.cfg.PartialReduce(k, existing, v)
				if err != nil {
					return err
				}
				// The callback may return a slice aliasing either input;
				// keep an owned copy.
				m.own[ks] = append(m.own[ks][:0:0], merged...)
			} else {
				m.keys = append(m.keys, ks)
				m.own[ks] = append([]byte(nil), v...)
			}
			pos += n
		}
	}
	j.comm.Recycle(recv)
	j.charge(float64(recvBytes)*j.cfg.Costs.ReducePerByte, simtime.Compute)
	sort.Strings(m.keys)
	for _, ks := range m.keys {
		v := m.own[ks]
		j.charge(j.cfg.Costs.PerRecord+float64(len(ks)+len(v))*j.cfg.Costs.ReducePerByte, simtime.Compute)
		if err := out.Append([]byte(ks), v); err != nil {
			return err
		}
	}
	return nil
}
