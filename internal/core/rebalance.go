package core

import (
	"encoding/binary"
	"fmt"

	"mimir/internal/kvbuf"
	"mimir/internal/pfs"
	"mimir/internal/simtime"
)

// Checkpoint repartitioning is the storage half of elastic membership
// (internal/membership): a checkpoint written by an N-rank world is reshaped
// into a checkpoint an M-rank world can restore, by streaming every record
// through the partition function at the new size. Restore then proceeds
// exactly as if the M-rank world had written the checkpoint itself — the
// per-rank files carry the same magic/count header and Hint encoding
// saveCheckpoint produces, so the restore path needs no changes and keys
// stay whole (each key lives entirely on one rank before and after, because
// aggregation already made keys unique per rank).

// RepartitionStats reports what a checkpoint rebalance did, for the
// membership event log and BENCH_membership.
type RepartitionStats struct {
	// OldSize / NewSize are the world sizes before and after.
	OldSize, NewSize int
	// Records is the total KV count across all ranks (conserved).
	Records int64
	// BytesIn is the total encoded payload read (headers excluded).
	BytesIn int64
	// BytesMoved is the encoded size of the records whose rank assignment
	// changed — the data the rebalance actually shipped. Records that hash
	// to the same rank at both sizes contribute nothing.
	BytesMoved int64
}

// RepartitionCheckpoint rewrites checkpoint name from oldSize per-rank files
// to newSize per-rank files under the same name, rehashing every key with
// the engine's default partitioner (kvbuf.HashKey mod size — jobs routed by
// a custom non-planning Config.Partitioner must pass the equivalent key→rank
// function as part; nil means the default). Planning partitioners never
// checkpoint split state: the engine plans with splitting disabled whenever
// Config.Checkpoint is set, so checkpointed keys always live whole on one
// rank and remain repartitionable by key alone.
// New payloads are staged under temporary names and validated against the
// per-rank record-count headers before any old file is overwritten, so a
// corrupt or truncated source checkpoint is detected before it is damaged.
// A no-op resize (oldSize == newSize) still validates and rewrites, keeping
// the caller's logic uniform.
func RepartitionCheckpoint(fs *pfs.FS, clock *simtime.Clock, ck Checkpoint, hint kvbuf.Hint, oldSize, newSize int, part func(key []byte, nranks int) int) (RepartitionStats, error) {
	st := RepartitionStats{OldSize: oldSize, NewSize: newSize}
	if fs == nil {
		fs = ck.FS
	}
	if fs == nil {
		return st, fmt.Errorf("core: repartition checkpoint %q: no file system", ck.Name)
	}
	if oldSize < 1 || newSize < 1 {
		return st, fmt.Errorf("core: repartition checkpoint %q: invalid sizes %d -> %d", ck.Name, oldSize, newSize)
	}
	if part == nil {
		part = func(key []byte, nranks int) int { return int(kvbuf.HashKey(key) % uint64(nranks)) }
	}
	stage := func(rank int) string { return fmt.Sprintf("ckpt/%s/stage%d", ck.Name, rank) }

	// Stream every old rank file into newSize staged buffers, flushing to
	// the staged files page by page so memory stays bounded by
	// newSize * DefaultPageSize regardless of checkpoint size.
	bufs := make([][]byte, newSize)
	counts := make([]uint64, newSize)
	for r := range bufs {
		fs.Remove(stage(r))
		bufs[r] = make([]byte, 0, DefaultPageSize)
	}
	flush := func(r int, force bool) {
		if len(bufs[r]) >= DefaultPageSize || (force && len(bufs[r]) > 0) {
			fs.Append(clock, stage(r), bufs[r])
			bufs[r] = bufs[r][:0]
		}
	}
	fail := func(err error) (RepartitionStats, error) {
		for r := 0; r < newSize; r++ {
			fs.Remove(stage(r))
		}
		return st, err
	}
	for r := 0; r < oldSize; r++ {
		data, err := fs.ReadAll(clock, ck.file(r))
		if err != nil {
			return fail(fmt.Errorf("core: repartition checkpoint %q: reading rank %d: %w", ck.Name, r, err))
		}
		if len(data) < 16 || binary.LittleEndian.Uint64(data) != ckptMagic {
			return fail(fmt.Errorf("core: repartition checkpoint %q: rank %d file is corrupt", ck.Name, r))
		}
		want := binary.LittleEndian.Uint64(data[8:])
		payload := data[16:]
		st.BytesIn += int64(len(payload))
		var got uint64
		for pos := 0; pos < len(payload); {
			k, _, n, err := hint.Decode(payload[pos:])
			if err != nil {
				return fail(fmt.Errorf("core: repartition checkpoint %q: corrupt record on rank %d: %w", ck.Name, r, err))
			}
			dest := part(k, newSize)
			if dest < 0 || dest >= newSize {
				return fail(fmt.Errorf("core: repartition checkpoint %q: partitioner sent key to rank %d of %d", ck.Name, dest, newSize))
			}
			// The record's encoding is identical at any world size: move
			// the already-encoded bytes verbatim.
			bufs[dest] = append(bufs[dest], payload[pos:pos+n]...)
			counts[dest]++
			if r != dest {
				// Moved = the record was not already resident on its
				// destination rank; same-rank records ship nothing.
				st.BytesMoved += int64(n)
			}
			flush(dest, false)
			pos += n
			got++
		}
		if got != want {
			return fail(fmt.Errorf("core: repartition checkpoint %q: rank %d holds %d records, header says %d", ck.Name, r, got, want))
		}
		st.Records += int64(got)
	}
	for r := 0; r < newSize; r++ {
		flush(r, true)
	}

	// Staged payloads are complete; write the final files (header first,
	// then the staged payload), then drop the stages and any old rank files
	// beyond the new size.
	for r := 0; r < newSize; r++ {
		payload, err := fs.ReadAll(clock, stage(r))
		if err != nil && fs.Size(stage(r)) > 0 {
			return fail(fmt.Errorf("core: repartition checkpoint %q: reading stage %d: %w", ck.Name, r, err))
		}
		var header [16]byte
		binary.LittleEndian.PutUint64(header[0:], ckptMagic)
		binary.LittleEndian.PutUint64(header[8:], counts[r])
		fs.Remove(ck.file(r))
		fs.Append(clock, ck.file(r), header[:])
		if len(payload) > 0 {
			fs.Append(clock, ck.file(r), payload)
		}
		fs.Remove(stage(r))
	}
	for r := newSize; r < oldSize; r++ {
		fs.Remove(ck.file(r))
	}
	return st, nil
}
