package core

import (
	"fmt"

	"mimir/internal/pfs"
	"mimir/internal/simtime"
)

// The paper's three input sources: "files from disk, KVs from previous
// MapReduce operations for multistage jobs or iterative MapReduce jobs, and
// sources other than MapReduce jobs (e.g., in situ analytics workflows)".
// Output.AsInput covers the second and any closure the third; FileInput
// implements the first against the simulated parallel file system.

// FileInput reads this rank's share of a text file stored on the parallel
// file system. The file is split into nranks contiguous byte ranges whose
// boundaries are advanced to the next newline, so every rank sees whole
// records and no record is seen twice — the standard MapReduce file
// splitter. Each emitted record is one line (without the newline); reads
// are charged to clock.
func FileInput(fs *pfs.FS, clock *simtime.Clock, name string, rank, nranks int) Input {
	return func(emit func(rec Record) error) error {
		size := fs.Size(name)
		if size == 0 {
			return nil
		}
		chunk := size / int64(nranks)
		start := chunk * int64(rank)
		end := start + chunk
		if rank == nranks-1 {
			end = size
		}
		// Advance the start boundary past the line the previous rank owns.
		// A zero start needs no adjustment (and can only emit for one rank:
		// with tiny files every non-final rank's range is empty).
		if rank > 0 && start > 0 {
			adj, err := nextNewline(fs, clock, name, start-1, size)
			if err != nil {
				return err
			}
			start = adj
		}
		// Extend the end boundary to finish the last line we started.
		if rank < nranks-1 && end > 0 {
			adj, err := nextNewline(fs, clock, name, end-1, size)
			if err != nil {
				return err
			}
			end = adj
		}
		if start >= end {
			return nil
		}
		data, err := fs.ReadAt(clock, name, start, end-start)
		if err != nil {
			return fmt.Errorf("core: reading input split: %w", err)
		}
		lineStart := 0
		for i := 0; i <= len(data); i++ {
			if i == len(data) || data[i] == '\n' {
				if i > lineStart {
					if err := emit(Record{Val: data[lineStart:i]}); err != nil {
						return err
					}
				}
				lineStart = i + 1
			}
		}
		return nil
	}
}

// nextNewline returns the offset one past the first newline at or after
// off, or the file size if none remains. It probes in small windows, the
// way a splitter seeks without reading the whole file.
func nextNewline(fs *pfs.FS, clock *simtime.Clock, name string, off, size int64) (int64, error) {
	const window = 4096
	for off < size {
		n := int64(window)
		if off+n > size {
			n = size - off
		}
		buf, err := fs.ReadAt(clock, name, off, n)
		if err != nil {
			return 0, err
		}
		for i, b := range buf {
			if b == '\n' {
				return off + int64(i) + 1, nil
			}
		}
		off += n
	}
	return size, nil
}

// MultiFileInput concatenates the per-rank splits of several files, reading
// them in order — the "one directory of input files" case.
func MultiFileInput(fs *pfs.FS, clock *simtime.Clock, names []string, rank, nranks int) Input {
	return func(emit func(rec Record) error) error {
		for _, name := range names {
			if err := FileInput(fs, clock, name, rank, nranks)(emit); err != nil {
				return err
			}
		}
		return nil
	}
}
