package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"mimir/internal/kvbuf"
	"mimir/internal/mem"
	"mimir/internal/mpi"
	"mimir/internal/simtime"
)

func testNet() simtime.NetworkModel { return simtime.NetworkModel{Alpha: 1e-7, Beta: 1e9} }

// wcMap splits a text record into words emitting (word, 1).
func wcMap(rec Record, emit Emitter) error {
	for _, w := range strings.Fields(string(rec.Val)) {
		if err := emit.Emit([]byte(w), Uint64Bytes(1)); err != nil {
			return err
		}
	}
	return nil
}

// wcReduce sums the counts of one word.
func wcReduce(key []byte, vals *kvbuf.ValueIter, emit Emitter) error {
	var sum uint64
	for v, ok := vals.Next(); ok; v, ok = vals.Next() {
		sum += BytesUint64(v)
	}
	return emit.Emit(key, Uint64Bytes(sum))
}

// wcCombine merges two counts (used as both Combiner and PartialReduce).
func wcCombine(_ []byte, existing, incoming []byte) ([]byte, error) {
	return Uint64Bytes(BytesUint64(existing) + BytesUint64(incoming)), nil
}

var testText = []string{
	"the quick brown fox jumps over the lazy dog",
	"the dog barks and the fox runs",
	"pack my box with five dozen liquor jugs",
	"the five boxing wizards jump quickly",
}

func refWordCount(lines []string) map[string]uint64 {
	ref := map[string]uint64{}
	for _, l := range lines {
		for _, w := range strings.Fields(l) {
			ref[w]++
		}
	}
	return ref
}

// runWC executes WordCount on p ranks under cfg-modifier and returns the
// merged result across ranks.
func runWC(t *testing.T, p int, lines []string, modify func(*Config)) map[string]uint64 {
	t.Helper()
	w := mpi.NewWorld(mpi.Config{Size: p, Net: testNet()})
	arena := mem.NewArena(0)
	var mu sync.Mutex
	got := map[string]uint64{}
	err := w.Run(func(c *mpi.Comm) error {
		cfg := Config{Arena: arena}
		if modify != nil {
			modify(&cfg)
		}
		job := NewJob(c, cfg)
		// Stripe lines across ranks.
		var mine []Record
		for i, l := range lines {
			if i%p == c.Rank() {
				mine = append(mine, Record{Val: []byte(l)})
			}
		}
		out, err := job.Run(SliceInput(mine), wcMap, wcReduce)
		if err != nil {
			return err
		}
		defer out.Free()
		mu.Lock()
		defer mu.Unlock()
		return out.Scan(func(k, v []byte) error {
			got[string(k)] += BytesUint64(v)
			return nil
		})
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	if used := arena.Used(); used != 0 {
		t.Fatalf("arena used %d after job, want 0 (buffer leak)", used)
	}
	return got
}

func checkWC(t *testing.T, got, want map[string]uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("got %d unique words, want %d", len(got), len(want))
	}
	for w, n := range want {
		if got[w] != n {
			t.Errorf("count[%q] = %d, want %d", w, got[w], n)
		}
	}
}

func TestWordCountBaseline(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7} {
		t.Run(fmt.Sprintf("ranks=%d", p), func(t *testing.T) {
			checkWC(t, runWC(t, p, testText, nil), refWordCount(testText))
		})
	}
}

func TestWordCountWithHint(t *testing.T) {
	got := runWC(t, 3, testText, func(cfg *Config) {
		cfg.Hint = kvbuf.Hint{Key: kvbuf.StrZ(), Val: kvbuf.Fixed(8)}
	})
	checkWC(t, got, refWordCount(testText))
}

func TestWordCountWithPartialReduce(t *testing.T) {
	got := runWC(t, 3, testText, func(cfg *Config) { cfg.PartialReduce = wcCombine })
	checkWC(t, got, refWordCount(testText))
}

func TestWordCountWithCompression(t *testing.T) {
	got := runWC(t, 3, testText, func(cfg *Config) { cfg.Combiner = wcCombine })
	checkWC(t, got, refWordCount(testText))
}

func TestWordCountFullLadder(t *testing.T) {
	got := runWC(t, 4, testText, func(cfg *Config) {
		cfg.Hint = kvbuf.Hint{Key: kvbuf.StrZ(), Val: kvbuf.Fixed(8)}
		cfg.PartialReduce = wcCombine
		cfg.Combiner = wcCombine
	})
	checkWC(t, got, refWordCount(testText))
}

func TestManyExchangeRounds(t *testing.T) {
	// A tiny comm buffer forces the map to suspend for many aggregate
	// rounds; results must be unaffected and rounds must exceed one.
	lines := make([]string, 64)
	for i := range lines {
		lines[i] = fmt.Sprintf("word%d common filler text line number %d", i%10, i)
	}
	w := mpi.NewWorld(mpi.Config{Size: 4, Net: testNet()})
	arena := mem.NewArena(0)
	var mu sync.Mutex
	got := map[string]uint64{}
	maxRounds := 0
	err := w.Run(func(c *mpi.Comm) error {
		job := NewJob(c, Config{Arena: arena, CommBuf: 4 * MinPartition})
		var mine []Record
		for i, l := range lines {
			if i%4 == c.Rank() {
				mine = append(mine, Record{Val: []byte(l)})
			}
		}
		out, err := job.Run(SliceInput(mine), wcMap, wcReduce)
		if err != nil {
			return err
		}
		defer out.Free()
		mu.Lock()
		defer mu.Unlock()
		if out.Stats.Rounds > maxRounds {
			maxRounds = out.Stats.Rounds
		}
		return out.Scan(func(k, v []byte) error {
			got[string(k)] += BytesUint64(v)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	checkWC(t, got, refWordCount(lines))
	if maxRounds < 2 {
		t.Errorf("rounds = %d, want >= 2 (map should have been suspended)", maxRounds)
	}
}

func TestMapOnlyJob(t *testing.T) {
	// Without a reduce callback, the job output is the post-shuffle KV set;
	// every KV with the same key must land on the same rank.
	const p = 4
	w := mpi.NewWorld(mpi.Config{Size: p, Net: testNet()})
	arena := mem.NewArena(0)
	owner := make(map[string]int)
	var mu sync.Mutex
	err := w.Run(func(c *mpi.Comm) error {
		job := NewJob(c, Config{Arena: arena})
		in := SliceInput([]Record{{Val: []byte("alpha beta gamma delta alpha beta")}})
		out, err := job.Run(in, wcMap, nil)
		if err != nil {
			return err
		}
		defer out.Free()
		mu.Lock()
		defer mu.Unlock()
		return out.Scan(func(k, v []byte) error {
			if prev, ok := owner[string(k)]; ok && prev != c.Rank() {
				return fmt.Errorf("key %q on ranks %d and %d", k, prev, c.Rank())
			}
			owner[string(k)] = c.Rank()
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(owner) != 4 {
		t.Errorf("unique keys = %d, want 4", len(owner))
	}
}

func TestIterativeTwoStage(t *testing.T) {
	// Stage 1: WordCount. Stage 2: histogram the counts (count-of-counts),
	// consuming stage 1's output via AsInput.
	const p = 3
	w := mpi.NewWorld(mpi.Config{Size: p, Net: testNet()})
	arena := mem.NewArena(0)
	var mu sync.Mutex
	hist := map[string]uint64{}
	err := w.Run(func(c *mpi.Comm) error {
		var mine []Record
		for i, l := range testText {
			if i%p == c.Rank() {
				mine = append(mine, Record{Val: []byte(l)})
			}
		}
		out1, err := NewJob(c, Config{Arena: arena}).Run(SliceInput(mine), wcMap, wcReduce)
		if err != nil {
			return err
		}
		histMap := func(rec Record, emit Emitter) error {
			// key: the count value; value: 1 occurrence.
			return emit.Emit(rec.Val, Uint64Bytes(1))
		}
		out2, err := NewJob(c, Config{Arena: arena}).Run(out1.AsInput(), histMap, wcReduce)
		if err != nil {
			return err
		}
		defer out2.Free()
		mu.Lock()
		defer mu.Unlock()
		return out2.Scan(func(k, v []byte) error {
			hist[fmt.Sprint(BytesUint64(k))] += BytesUint64(v)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := map[string]uint64{}
	for _, n := range refWordCount(testText) {
		ref[fmt.Sprint(n)]++
	}
	if len(hist) != len(ref) {
		t.Fatalf("histogram = %v, want %v", hist, ref)
	}
	for k, n := range ref {
		if hist[k] != n {
			t.Errorf("hist[%s] = %d, want %d", k, hist[k], n)
		}
	}
	if arena.Used() != 0 {
		t.Errorf("arena used %d after two stages", arena.Used())
	}
}

func TestOOMPropagates(t *testing.T) {
	// An arena too small for the communication buffers must fail cleanly on
	// every rank.
	w := mpi.NewWorld(mpi.Config{Size: 2, Net: testNet()})
	arena := mem.NewArena(1024) // < 2 * CommBuf
	err := w.Run(func(c *mpi.Comm) error {
		_, err := NewJob(c, Config{Arena: arena}).Run(
			SliceInput([]Record{{Val: []byte("a b c")}}), wcMap, wcReduce)
		return err
	})
	if err == nil || !errors.Is(err, mem.ErrNoMemory) {
		t.Fatalf("err = %v, want ErrNoMemory", err)
	}
}

func TestMapErrorPropagates(t *testing.T) {
	w := mpi.NewWorld(mpi.Config{Size: 2, Net: testNet()})
	arena := mem.NewArena(0)
	boom := errors.New("map failed")
	err := w.Run(func(c *mpi.Comm) error {
		_, err := NewJob(c, Config{Arena: arena}).Run(
			SliceInput([]Record{{Val: []byte("x")}}),
			func(Record, Emitter) error { return boom },
			wcReduce)
		return err
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestReduceErrorPropagates(t *testing.T) {
	w := mpi.NewWorld(mpi.Config{Size: 2, Net: testNet()})
	arena := mem.NewArena(0)
	boom := errors.New("reduce failed")
	err := w.Run(func(c *mpi.Comm) error {
		_, err := NewJob(c, Config{Arena: arena}).Run(
			SliceInput([]Record{{Val: []byte("x y z")}}),
			wcMap,
			func([]byte, *kvbuf.ValueIter, Emitter) error { return boom })
		return err
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestOversizedKVRejected(t *testing.T) {
	w := mpi.NewWorld(mpi.Config{Size: 1, Net: testNet()})
	arena := mem.NewArena(0)
	err := w.Run(func(c *mpi.Comm) error {
		job := NewJob(c, Config{Arena: arena, CommBuf: MinPartition})
		big := bytes.Repeat([]byte("x"), 2*MinPartition)
		_, err := job.Run(SliceInput([]Record{{Val: big}}),
			func(rec Record, emit Emitter) error { return emit.Emit(rec.Val, nil) },
			nil)
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "exceeds send partition") {
		t.Fatalf("err = %v, want partition-overflow rejection", err)
	}
}

func TestCompressionReducesShuffledBytes(t *testing.T) {
	// Highly repetitive data: compression must cut shuffled bytes sharply.
	lines := make([]string, 32)
	for i := range lines {
		lines[i] = strings.Repeat("same words repeated constantly ", 4)
	}
	shuffled := func(modify func(*Config)) int64 {
		w := mpi.NewWorld(mpi.Config{Size: 2, Net: testNet()})
		arena := mem.NewArena(0)
		var mu sync.Mutex
		var total int64
		err := w.Run(func(c *mpi.Comm) error {
			cfg := Config{Arena: arena}
			if modify != nil {
				modify(&cfg)
			}
			var mine []Record
			for i, l := range lines {
				if i%2 == c.Rank() {
					mine = append(mine, Record{Val: []byte(l)})
				}
			}
			out, err := NewJob(c, cfg).Run(SliceInput(mine), wcMap, wcReduce)
			if err != nil {
				return err
			}
			defer out.Free()
			mu.Lock()
			total += out.Stats.ShuffledBytes
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return total
	}
	base := shuffled(nil)
	cps := shuffled(func(cfg *Config) { cfg.Combiner = wcCombine })
	if cps*4 > base {
		t.Errorf("compressed shuffle %d not << baseline %d", cps, base)
	}
}

func TestHintReducesMapOutBytes(t *testing.T) {
	// The Fig 7 effect: the 8-byte header disappears under the hint.
	run := func(hint kvbuf.Hint) int64 {
		var total int64
		w := mpi.NewWorld(mpi.Config{Size: 2, Net: testNet()})
		arena := mem.NewArena(0)
		var mu sync.Mutex
		err := w.Run(func(c *mpi.Comm) error {
			out, err := NewJob(c, Config{Arena: arena, Hint: hint}).Run(
				SliceInput([]Record{{Val: []byte(testText[c.Rank()])}}), wcMap, wcReduce)
			if err != nil {
				return err
			}
			defer out.Free()
			mu.Lock()
			total += out.Stats.MapOutBytes
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return total
	}
	def := run(kvbuf.DefaultHint())
	hinted := run(kvbuf.Hint{Key: kvbuf.StrZ(), Val: kvbuf.Fixed(8)})
	if hinted >= def {
		t.Errorf("hinted bytes %d >= default %d", hinted, def)
	}
}

// Property: the WordCount result is identical across rank counts, page
// sizes, and the full optimization ladder.
func TestResultInvariance(t *testing.T) {
	f := func(seed uint16) bool {
		// Build a small random corpus.
		nLines := int(seed%8) + 1
		lines := make([]string, nLines)
		for i := range lines {
			var sb strings.Builder
			for j := 0; j < int(seed%16)+1; j++ {
				fmt.Fprintf(&sb, "w%d ", (int(seed)+i*j)%7)
			}
			lines[i] = sb.String()
		}
		want := refWordCount(lines)
		configs := []func(*Config){
			nil,
			func(cfg *Config) { cfg.PageSize = 128 },
			func(cfg *Config) { cfg.Combiner = wcCombine },
			func(cfg *Config) { cfg.PartialReduce = wcCombine },
			func(cfg *Config) {
				cfg.Hint = kvbuf.Hint{Key: kvbuf.StrZ(), Val: kvbuf.Fixed(8)}
				cfg.Combiner = wcCombine
				cfg.PartialReduce = wcCombine
			},
		}
		for _, p := range []int{1, 3} {
			for _, mod := range configs {
				got := runWC(t, p, lines, mod)
				if len(got) != len(want) {
					return false
				}
				for w, n := range want {
					if got[w] != n {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestStatsPopulated(t *testing.T) {
	w := mpi.NewWorld(mpi.Config{Size: 2, Net: testNet()})
	arena := mem.NewArena(0)
	err := w.Run(func(c *mpi.Comm) error {
		out, err := NewJob(c, Config{Arena: arena}).Run(
			SliceInput([]Record{{Val: []byte(testText[c.Rank()])}}), wcMap, wcReduce)
		if err != nil {
			return err
		}
		defer out.Free()
		s := out.Stats
		if s.Rounds < 1 || s.MapOutKVs == 0 || s.MapOutBytes == 0 {
			return fmt.Errorf("stats not populated: %+v", s)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewJobRequiresArena(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewJob without arena did not panic")
		}
	}()
	NewJob(nil, Config{})
}
