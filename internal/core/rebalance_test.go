package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"mimir/internal/kvbuf"
	"mimir/internal/mem"
	"mimir/internal/mpi"
	"mimir/internal/partition"
	"mimir/internal/pfs"
)

// The rebalancer's primitive contract: a checkpoint written by an N-rank
// world, repartitioned to M ranks, restores on an M-rank world with output
// identical to never having resized at all.

// runCkptWCAt is runCkptWC generalized over world size: runs WordCount on a
// size-rank world under the given checkpoint name and returns merged counts
// plus the restored flag.
func runCkptWCAt(t *testing.T, fs *pfs.FS, name string, size int,
	modify func(*Config)) (counts map[string]uint64, restored bool, err error) {
	t.Helper()
	w := mpi.NewWorld(mpi.Config{Size: size, Net: testNet()})
	arena := mem.NewArena(0)
	var mu sync.Mutex
	counts = map[string]uint64{}
	err = w.Run(func(c *mpi.Comm) error {
		cfg := Config{Arena: arena, Checkpoint: &Checkpoint{FS: fs, Name: name}}
		if modify != nil {
			modify(&cfg)
		}
		var mine []Record
		for i, l := range testText {
			if i%size == c.Rank() {
				mine = append(mine, Record{Val: []byte(l)})
			}
		}
		out, err := NewJob(c, cfg).Run(SliceInput(mine), wcMap, wcReduce)
		if err != nil {
			return err
		}
		defer out.Free()
		mu.Lock()
		defer mu.Unlock()
		if out.Stats.RestoredFromCheckpoint {
			restored = true
		}
		return out.Scan(func(k, v []byte) error {
			counts[string(k)] += BytesUint64(v)
			return nil
		})
	})
	return counts, restored, err
}

func TestRepartitionCheckpointRestoreAtNewSize(t *testing.T) {
	want := refWordCount(testText)
	for _, tc := range []struct{ from, to int }{
		{3, 5}, // grow
		{5, 2}, // shrink
		{4, 4}, // no-op resize still round-trips
		{3, 1}, // collapse to a single rank
		{1, 4}, // expand from a single rank
	} {
		t.Run(fmt.Sprintf("%dto%d", tc.from, tc.to), func(t *testing.T) {
			fs := ckptFS()
			name := fmt.Sprintf("resize-%d-%d", tc.from, tc.to)
			ck := Checkpoint{FS: fs, Name: name}
			// Seed: an N-rank run writes the checkpoint.
			got, restored, err := runCkptWCAt(t, fs, name, tc.from, nil)
			if err != nil {
				t.Fatal(err)
			}
			if restored {
				t.Fatal("seed run claims to have restored")
			}
			checkWC(t, got, want)

			st, err := RepartitionCheckpoint(fs, nil, ck, kvbuf.DefaultHint(), tc.from, tc.to, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !ck.Exists(tc.to) {
				t.Fatal("repartitioned checkpoint incomplete at new size")
			}
			if tc.to < tc.from && fs.Size(fmt.Sprintf("ckpt/%s/rank%d", name, tc.to)) > 0 {
				t.Fatal("old rank file beyond the new size survived")
			}

			// Every record landed on the rank the engine's partitioner
			// would send it to at the new size — restore-time placement is
			// exactly live-shuffle placement.
			var records int64
			for r := 0; r < tc.to; r++ {
				data, err := fs.ReadAll(nil, fmt.Sprintf("ckpt/%s/rank%d", name, r))
				if err != nil {
					t.Fatal(err)
				}
				if binary.LittleEndian.Uint64(data) != ckptMagic {
					t.Fatalf("rank %d: bad magic after repartition", r)
				}
				payload := data[16:]
				for pos := 0; pos < len(payload); {
					k, _, n, err := kvbuf.DefaultHint().Decode(payload[pos:])
					if err != nil {
						t.Fatalf("rank %d: corrupt record after repartition: %v", r, err)
					}
					if dest := int(kvbuf.HashKey(k) % uint64(tc.to)); dest != r {
						t.Fatalf("key %q on rank %d, partitioner says %d", k, r, dest)
					}
					pos += n
					records++
				}
			}
			if records != st.Records {
				t.Fatalf("stats.Records = %d, files hold %d", st.Records, records)
			}
			if st.OldSize != tc.from || st.NewSize != tc.to {
				t.Fatalf("stats sizes %d->%d, want %d->%d", st.OldSize, st.NewSize, tc.from, tc.to)
			}
			if tc.from == tc.to && st.BytesMoved != 0 {
				t.Fatalf("no-op resize moved %d bytes", st.BytesMoved)
			}

			// Restore on the new world size: byte-identical merged output.
			got2, restored2, err := runCkptWCAt(t, fs, name, tc.to, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !restored2 {
				t.Fatal("resized world did not restore from the repartitioned checkpoint")
			}
			checkWC(t, got2, want)
		})
	}
}

func TestRepartitionCheckpointHintAndPR(t *testing.T) {
	// The rebalancer must honor the job's Hint (records are re-encoded
	// verbatim, not re-interpreted) and compose with partial reduction.
	hint := kvbuf.Hint{Key: kvbuf.StrZ(), Val: kvbuf.Fixed(8)}
	mod := func(cfg *Config) {
		cfg.Hint = hint
		cfg.PartialReduce = wcCombine
	}
	fs := ckptFS()
	ck := Checkpoint{FS: fs, Name: "resize-hint"}
	want := refWordCount(testText)
	if got, _, err := runCkptWCAt(t, fs, ck.Name, 3, mod); err != nil {
		t.Fatal(err)
	} else {
		checkWC(t, got, want)
	}
	if _, err := RepartitionCheckpoint(fs, nil, ck, hint, 3, 5, nil); err != nil {
		t.Fatal(err)
	}
	got, restored, err := runCkptWCAt(t, fs, ck.Name, 5, mod)
	if err != nil {
		t.Fatal(err)
	}
	if !restored {
		t.Fatal("hinted PR world did not restore after repartition")
	}
	checkWC(t, got, want)
}

func TestRepartitionCheckpointCustomPartitioner(t *testing.T) {
	// A job with a custom partitioner must rebalance under the same one.
	everythingToLast := func(key []byte, nranks int) int { return nranks - 1 }
	fs := ckptFS()
	ck := Checkpoint{FS: fs, Name: "resize-part"}
	if _, _, err := runCkptWCAt(t, fs, ck.Name, 2, func(cfg *Config) { cfg.Partitioner = partition.Func(everythingToLast) }); err != nil {
		t.Fatal(err)
	}
	st, err := RepartitionCheckpoint(fs, nil, ck, kvbuf.DefaultHint(), 2, 3, everythingToLast)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records == 0 {
		t.Fatal("no records repartitioned")
	}
	data, err := fs.ReadAll(nil, "ckpt/resize-part/rank2")
	if err != nil {
		t.Fatal(err)
	}
	if n := binary.LittleEndian.Uint64(data[8:]); int64(n) != st.Records {
		t.Fatalf("custom partitioner: rank 2 holds %d of %d records, want all", n, st.Records)
	}
}

func TestRepartitionCheckpointRejectsCorruption(t *testing.T) {
	fs := ckptFS()
	ck := Checkpoint{FS: fs, Name: "resize-bad"}
	if _, _, err := runCkptWCAt(t, fs, ck.Name, 2, nil); err != nil {
		t.Fatal(err)
	}
	// Snapshot rank 0's file, corrupt rank 1's, and verify the rebalance
	// fails without touching the intact source files.
	before, err := fs.ReadAll(nil, "ckpt/resize-bad/rank0")
	if err != nil {
		t.Fatal(err)
	}
	fs.Remove("ckpt/resize-bad/rank1")
	fs.Append(nil, "ckpt/resize-bad/rank1", make([]byte, 64))
	if _, err := RepartitionCheckpoint(fs, nil, ck, kvbuf.DefaultHint(), 2, 4, nil); err == nil {
		t.Fatal("corrupt source checkpoint repartitioned silently")
	}
	after, err := fs.ReadAll(nil, "ckpt/resize-bad/rank0")
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("failed repartition modified an intact source file")
	}
}
