package jobsvc

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"strconv"
	"sync"
	"time"

	"mimir/internal/membership"
	"mimir/internal/transport"
)

// Environment variables an elastic daemon worker reads in addition to the
// MIMIR_TCP_* world attachment: the admin address it rejoins through after a
// fault, and the member credential it authenticates with.
const (
	EnvAdmin       = "MIMIR_ADMIN"
	EnvMember      = "MIMIR_MEMBER"
	EnvMemberToken = "MIMIR_MEMBER_TOKEN"
)

// WorkerOptions configures a worker rank's control loop.
type WorkerOptions struct {
	// Exit, when non-nil, implements the Spec.Crash hook by terminating the
	// process (daemon workers pass os.Exit). When nil a scripted crash
	// aborts the mesh instead — the observable consequence a process death
	// would have had — so in-process meshes exercise the same recovery
	// path.
	Exit func(code int)
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// RunWorker is a worker rank's life with one mesh incarnation: a control
// loop on channel 0 of the standing mesh. Every announced job starts on its
// own goroutine and its own transport channel, so any number of jobs
// multiplex the one mesh concurrently. It returns when the incarnation
// ends: (nil, nil) after a clean shutdown or retire directive, a non-nil
// Remesh after a graceful resize directive (the worker's seat in the next
// incarnation), or (nil, err) once the mesh can no longer be served. Either
// way all running jobs have finished first. The caller still owns tr and
// should Close it.
func RunWorker(tr transport.Transport, rank int, opts WorkerOptions) (*Remesh, error) {
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ep := tr.Endpoint(rank)
	var jobs sync.WaitGroup
	defer jobs.Wait()
	for {
		m, err := ep.Recv(0, ctrlTag)
		if err != nil {
			return nil, fmt.Errorf("jobsvc: rank %d control channel: %w", rank, err)
		}
		var c ctrlMsg
		uerr := json.Unmarshal(m.Data, &c)
		if r, ok := tr.(interface{ Recycle([]byte) }); ok && len(m.Data) > 0 {
			r.Recycle(m.Data)
		}
		if uerr != nil {
			return nil, fmt.Errorf("jobsvc: rank %d bad control message: %v", rank, uerr)
		}
		switch c.Op {
		case opStart:
			if c.Spec == nil {
				return nil, fmt.Errorf("jobsvc: rank %d start without a spec", rank)
			}
			jobs.Add(1)
			go func(id uint32, spec Spec) {
				defer jobs.Done()
				if _, _, err := execJob(tr, id, spec, opts.Exit, nil); err != nil {
					// Rank 0 observed the same failure through the job's
					// channel and reports it to the submitter; here it is
					// only worth a log line.
					logf("jobsvc: rank %d job %d: %v", rank, id, err)
				}
			}(c.Job, *c.Spec)
		case opShutdown:
			logf("jobsvc: rank %d shutting down", rank)
			return nil, nil
		case opRetire:
			logf("jobsvc: rank %d retired", rank)
			return nil, nil
		case opRemesh:
			if c.Remesh == nil {
				return nil, fmt.Errorf("jobsvc: rank %d remesh without a seat", rank)
			}
			// The epoch barrier: running jobs finish on the incarnation they
			// started on before the worker moves to the next one.
			jobs.Wait()
			logf("jobsvc: rank %d remeshing to rank %d of %d (epoch %d)",
				rank, c.Remesh.Rank, c.Remesh.Size, c.Remesh.Epoch)
			return c.Remesh, nil
		default:
			return nil, fmt.Errorf("jobsvc: rank %d unknown control op %q", rank, c.Op)
		}
	}
}

// RunWorkerLoop is an elastic daemon worker's whole life: it joins the mesh
// incarnation described by cfg, serves it with RunWorker, and follows the
// service across epochs — remesh directives carry it to the next
// incarnation directly, and when an incarnation dies under it (a crash
// transition) it rejoins through the admin socket with its member
// credential (EnvAdmin/EnvMember/EnvMemberToken). Returns nil when the
// worker is cleanly shut down or retired.
func RunWorkerLoop(cfg transport.TCPConfig, opts WorkerOptions) error {
	member, _ := strconv.ParseUint(os.Getenv(EnvMember), 10, 64)
	return workerEpochs(cfg, os.Getenv(EnvAdmin), membership.MemberID(member), os.Getenv(EnvMemberToken), opts)
}

// JoinDaemon turns this process into an external elastic worker: it asks
// the daemon at admin for a seat with a join token (mimirctl join-token),
// waits out the transition that seats it, and then serves the mesh exactly
// like a forked daemon worker — following resizes, rejoining after faults —
// until it is retired or the daemon shuts down.
func JoinDaemon(admin, token string, topts transport.Options, opts WorkerOptions) error {
	ev, err := adminRequest(admin, Request{Op: "join", Token: token, Addr: "external"}, 3*time.Minute)
	if err != nil {
		return fmt.Errorf("jobsvc: join via %s: %w", admin, err)
	}
	if ev.Event != EvJoined || ev.Remesh == nil || ev.Member == 0 {
		return fmt.Errorf("jobsvc: join via %s answered with %q: %s", admin, ev.Event, ev.Error)
	}
	cfg := topts.TCPConfig(ev.Remesh.Addr, ev.Remesh.Rank, ev.Remesh.Size)
	cfg.Epoch = ev.Remesh.Epoch
	if opts.Logf != nil {
		opts.Logf("jobsvc: joined as member %d, rank %d of %d (epoch %d)",
			ev.Member, ev.Remesh.Rank, ev.Remesh.Size, ev.Remesh.Epoch)
	}
	return workerEpochs(cfg, admin, ev.Member, ev.Token, opts)
}

// workerEpochs drives RunWorker across incarnations. A worker without a
// rejoin credential (admin == "" or no member identity) lives and dies with
// its first incarnation, like the pre-elastic daemon did.
func workerEpochs(cfg transport.TCPConfig, admin string, member membership.MemberID, token string, opts WorkerOptions) error {
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	// rejoin asks the admin socket where this member's seat went. It
	// returns false (done) when the member is retired or has no credential.
	rejoin := func(cause error) (bool, error) {
		if admin == "" || member == 0 || token == "" {
			return false, cause
		}
		rm, err := rejoinAttach(admin, member, token)
		if err != nil {
			return false, fmt.Errorf("jobsvc: member %d lost the mesh (%v) and could not rejoin: %w", member, cause, err)
		}
		if rm == nil {
			logf("jobsvc: member %d retired", member)
			return false, nil
		}
		cfg.Addr, cfg.Rank, cfg.Size, cfg.Epoch = rm.Addr, rm.Rank, rm.Size, rm.Epoch
		return true, nil
	}
	const maxConsecutiveFailures = 5
	failures := 0
	for {
		tr, err := transport.NewTCP(cfg)
		if err != nil {
			// The incarnation we were headed for never came up (a failed
			// transition attempt): ask the admin socket for the current one.
			failures++
			if failures >= maxConsecutiveFailures {
				return fmt.Errorf("jobsvc: member %d: %d consecutive attach failures, last: %w", member, failures, err)
			}
			again, err2 := rejoin(err)
			if !again {
				return err2
			}
			continue
		}
		failures = 0
		rm, err := RunWorker(tr, cfg.Rank, opts)
		tr.Close()
		switch {
		case rm != nil:
			cfg.Addr, cfg.Rank, cfg.Size, cfg.Epoch = rm.Addr, rm.Rank, rm.Size, rm.Epoch
		case err == nil:
			return nil
		default:
			again, err2 := rejoin(err)
			if !again {
				return err2
			}
		}
	}
}

// adminRequest performs one request/one reply on the admin socket.
func adminRequest(admin string, req Request, deadline time.Duration) (Event, error) {
	conn, err := net.DialTimeout("tcp", admin, 10*time.Second)
	if err != nil {
		return Event{}, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(deadline))
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		return Event{}, err
	}
	var ev Event
	if err := json.NewDecoder(conn).Decode(&ev); err != nil {
		return Event{}, err
	}
	return ev, nil
}

// rejoinAttach asks the daemon where member's seat is now. It retries
// transient failures (the server itself may be mid-transition); a retire
// answer returns (nil, nil).
func rejoinAttach(admin string, member membership.MemberID, token string) (*Remesh, error) {
	var lastErr error
	for attempt := 0; attempt < 8; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * 250 * time.Millisecond)
		}
		ev, err := adminRequest(admin, Request{Op: "rejoin", Member: member, Token: token}, 2*time.Minute)
		if err != nil {
			lastErr = err
			continue
		}
		switch ev.Event {
		case EvRetired:
			return nil, nil
		case EvRemesh:
			if ev.Remesh != nil {
				return ev.Remesh, nil
			}
			lastErr = fmt.Errorf("jobsvc: remesh reply without a seat")
		case EvError:
			// A rejected credential will not improve with retries.
			return nil, fmt.Errorf("jobsvc: rejoin refused: %s", ev.Error)
		default:
			lastErr = fmt.Errorf("jobsvc: rejoin answered with %q", ev.Event)
		}
	}
	return nil, lastErr
}
