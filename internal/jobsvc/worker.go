package jobsvc

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"mimir/internal/transport"
)

// WorkerOptions configures a worker rank's control loop.
type WorkerOptions struct {
	// Exit, when non-nil, implements the Spec.Crash hook by terminating the
	// process (daemon workers pass os.Exit). When nil a scripted crash
	// aborts the mesh instead — the observable consequence a process death
	// would have had — so in-process meshes exercise the same recovery
	// path.
	Exit func(code int)
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// RunWorker is a worker rank's life with the job service: a control loop on
// channel 0 of the standing mesh. Every announced job starts on its own
// goroutine and its own transport channel, so any number of jobs multiplex
// the one mesh concurrently. Returns nil after a clean shutdown ctrl
// message, or the mesh's death once it can no longer be served; either way
// all running jobs have finished first. The caller still owns tr and should
// Close it.
func RunWorker(tr transport.Transport, rank int, opts WorkerOptions) error {
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ep := tr.Endpoint(rank)
	var jobs sync.WaitGroup
	defer jobs.Wait()
	for {
		m, err := ep.Recv(0, ctrlTag)
		if err != nil {
			return fmt.Errorf("jobsvc: rank %d control channel: %w", rank, err)
		}
		var c ctrlMsg
		uerr := json.Unmarshal(m.Data, &c)
		if r, ok := tr.(interface{ Recycle([]byte) }); ok && len(m.Data) > 0 {
			r.Recycle(m.Data)
		}
		if uerr != nil {
			return fmt.Errorf("jobsvc: rank %d bad control message: %v", rank, uerr)
		}
		switch c.Op {
		case opStart:
			if c.Spec == nil {
				return fmt.Errorf("jobsvc: rank %d start without a spec", rank)
			}
			jobs.Add(1)
			go func(id uint32, spec Spec) {
				defer jobs.Done()
				if _, _, err := execJob(tr, id, spec, opts.Exit); err != nil {
					// Rank 0 observed the same failure through the job's
					// channel and reports it to the submitter; here it is
					// only worth a log line.
					logf("jobsvc: rank %d job %d: %v", rank, id, err)
				}
			}(c.Job, *c.Spec)
		case opShutdown:
			logf("jobsvc: rank %d shutting down", rank)
			return nil
		default:
			return fmt.Errorf("jobsvc: rank %d unknown control op %q", rank, c.Op)
		}
	}
}

// LocalMesh returns a MeshFactory hosting all ranks in this process on the
// in-process transport. There are no worker loops: the server's own
// execJob runs every rank, exactly as driver jobs do on in-process worlds.
// This is the fast path for tests and for a single-node daemon without
// process isolation.
func LocalMesh(size int) MeshFactory {
	return func() (Mesh, error) {
		if size < 1 {
			return Mesh{}, fmt.Errorf("jobsvc: invalid mesh size %d", size)
		}
		tr := transport.NewLocal(size)
		return Mesh{Transport: tr, Close: func() {
			tr.Abort(fmt.Errorf("%w: jobsvc: mesh closed", transport.ErrAborted))
			tr.Close()
		}}, nil
	}
}

// SpawnMesh returns a MeshFactory that makes this process rank 0 of a
// size-rank TCP mesh and forks size-1 copies of this binary as daemon
// workers (transport.SpawnLocal semantics: the copies must detect the
// MIMIR_TCP_* environment and call RunWorker). Close tears the incarnation
// down and reaps the children, killing any that outlive the mesh by more
// than a grace period.
func SpawnMesh(size int, opts transport.SpawnOptions) MeshFactory {
	return func() (Mesh, error) {
		tr, children, err := transport.SpawnLocalOpts(size, opts)
		if err != nil {
			return Mesh{}, err
		}
		return Mesh{Transport: tr, Close: func() {
			tr.Close()
			done := make(chan struct{})
			go func() {
				children.Wait()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(15 * time.Second):
				children.Kill()
				<-done
			}
		}}, nil
	}
}
