package jobsvc

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"mimir/internal/driver"
	"mimir/internal/membership"
	"mimir/internal/metrics"
	"mimir/internal/mpi"
	"mimir/internal/simtime"
	"mimir/internal/transport"
	"mimir/internal/workloads"
)

const testRanks = 4

// reference computes the solo ground truth for spec: the same WordCount on a
// fresh in-process world of the mesh's size.
func reference(t *testing.T, spec Spec) []byte {
	t.Helper()
	spec.normalize()
	cfg, err := spec.config(testRanks)
	if err != nil {
		t.Fatal(err)
	}
	world := mpi.NewWorld(mpi.Config{Size: testRanks, Net: simtime.NetworkModel{Alpha: 1e-7, Beta: 1e9}})
	out, err := driver.WordCount(world, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("reference run produced no output")
	}
	return out
}

func testSpec(seed uint64) Spec {
	return Spec{Bytes: 1 << 16, Seed: seed, Hint: true, PR: true}
}

// tcpMesh is a MeshFactory building an in-process TCP mesh: one *TCP per
// rank over real loopback sockets, with worker ranks running RunWorker
// control loops on their own goroutines — the full daemon control plane
// without forking processes. Every incarnation is rebuilt from scratch at
// the spec's size and epoch (goroutine workers are free, like LocalMesh).
func tcpMesh(size int) MeshFactory {
	return NewMeshFactory(size, membership.KindLocal, func(spec MeshSpec) (Mesh, error) {
		n := spec.Size
		if n == 0 {
			n = size
		}
		cfg := func(rank int, addr string) transport.TCPConfig {
			return transport.TCPConfig{
				Addr: addr, Rank: rank, Size: n, Epoch: spec.Epoch,
				BootstrapTimeout: 30 * time.Second,
			}
		}
		b, err := transport.ListenTCP(cfg(0, "127.0.0.1:0"))
		if err != nil {
			return Mesh{}, err
		}
		trs := make([]transport.Transport, n)
		errs := make([]error, n)
		var bwg sync.WaitGroup
		for r := 1; r < n; r++ {
			bwg.Add(1)
			go func(r int) {
				defer bwg.Done()
				trs[r], errs[r] = transport.NewTCP(cfg(r, b.Addr()))
			}(r)
		}
		trs[0], errs[0] = b.Accept()
		bwg.Wait()
		for _, err := range errs {
			if err != nil {
				return Mesh{}, err
			}
		}
		var wwg sync.WaitGroup
		for r := 1; r < n; r++ {
			wwg.Add(1)
			go func(r int) {
				defer wwg.Done()
				// Remesh directives and mesh death both end the incarnation;
				// either way this goroutine is done and Close reaps it.
				RunWorker(trs[r], r, WorkerOptions{})
				trs[r].Close()
			}(r)
		}
		return Mesh{Transport: trs[0], Close: func() {
			// Abort propagates to the worker ranks' transports, unblocking
			// their control loops; a plain Close would leave them parked in
			// recv forever (nobody sends shutdown directives to a mesh that
			// is being replaced).
			trs[0].Abort(fmt.Errorf("%w: jobsvc: mesh closed", transport.ErrAborted))
			trs[0].Close()
			wwg.Wait()
		}}, nil
	})
}

func newTestServer(t *testing.T, factory MeshFactory, memBytes int64) *Server {
	t.Helper()
	s, err := NewServer(Config{Mesh: factory, MemBytes: memBytes, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

// drain consumes a job's event stream to settlement, asserting the
// per-job order queued → running → done|error, and returns the final event.
func drain(t *testing.T, events <-chan Event) Event {
	t.Helper()
	var seen []string
	var last Event
	timeout := time.After(60 * time.Second)
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				want := []string{EvQueued, EvRunning, EvDone}
				if last.Event == EvError {
					want[2] = EvError
				}
				if strings.Join(seen, ",") != strings.Join(want, ",") {
					t.Fatalf("event order %v, want %v", seen, want)
				}
				return last
			}
			seen = append(seen, ev.Event)
			last = ev
		case <-timeout:
			t.Fatalf("job events stalled after %v", seen)
		}
	}
}

// TestServerRunsJobOnLocalMesh is the smallest end-to-end check: one job
// through the queue produces the solo run's bytes and a full metrics
// distribution.
func TestServerRunsJobOnLocalMesh(t *testing.T) {
	spec := testSpec(3)
	want := reference(t, spec)
	s := newTestServer(t, LocalMesh(testRanks), 0)
	_, events, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := drain(t, events)
	if final.Event != EvDone {
		t.Fatalf("job settled as %s: %s", final.Event, final.Error)
	}
	if !bytes.Equal([]byte(final.Output), want) {
		t.Fatalf("daemon output differs from solo run: %d vs %d bytes", len(final.Output), len(want))
	}
	sum := metrics.NewSummary()
	if err := sum.MergeJSON(bytes.NewReader(final.Metrics)); err != nil {
		t.Fatalf("metrics payload: %v", err)
	}
	if rs := sum.Get("rank-sec"); rs == nil || rs.Count != testRanks {
		t.Fatalf("metrics distribution does not cover all ranks: %+v", rs)
	}
	if s.Respawns() != 0 {
		t.Fatalf("healthy run respawned the mesh %d times", s.Respawns())
	}
}

// TestServerConcurrentSubmissions is the multi-tenant acceptance test on the
// in-process mesh: 20 jobs from 4 concurrent clients through the real admin
// socket, every output byte-identical to its solo run, zero respawns.
func TestServerConcurrentSubmissions(t *testing.T) {
	const clients, jobsPerClient = 4, 5
	specs := make([]Spec, clients*jobsPerClient)
	refs := make([][]byte, len(specs))
	for i := range specs {
		specs[i] = testSpec(uint64(100 + i))
		specs[i].MemBytes = 16 << 20
		refs[i] = reference(t, specs[i])
	}
	s := newTestServer(t, LocalMesh(testRanks), 256<<20)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()

	var wg sync.WaitGroup
	errs := make([]error, len(specs))
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := Dial(ln.Addr().String())
			for k := 0; k < jobsPerClient; k++ {
				i := c*jobsPerClient + k
				res, err := cl.Submit(specs[i], nil)
				if err != nil {
					errs[i] = err
					continue
				}
				if !bytes.Equal(res.Output, refs[i]) {
					errs[i] = fmt.Errorf("job %d output differs from its solo run: %d vs %d bytes",
						res.Job, len(res.Output), len(refs[i]))
				}
			}
		}(c)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("submission %d: %v", i, err)
		}
	}
	st, err := Dial(ln.Addr().String()).Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Respawns != 0 {
		t.Fatalf("healthy service respawned the mesh %d times", st.Respawns)
	}
	if len(st.Jobs) != len(specs) {
		t.Fatalf("status lists %d jobs, want %d", len(st.Jobs), len(specs))
	}
	for _, js := range st.Jobs {
		if js.State != StateDone {
			t.Errorf("job %d settled as %s: %s", js.Job, js.State, js.Error)
		}
	}
	if err := Dial(ln.Addr().String()).Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

// TestServerAdmissionQueuesNotAborts pins the admission contract: a job
// whose memory floor does not fit alongside the running set waits in the
// queue and runs after the memory frees — it is neither rejected nor
// started into guaranteed OOM.
func TestServerAdmissionQueuesNotAborts(t *testing.T) {
	const cap = 32 << 20
	s := newTestServer(t, LocalMesh(testRanks), cap)

	hog := testSpec(1)
	hog.MemBytes = cap // admits alone, blocks everything behind it
	second := testSpec(2)
	second.MemBytes = cap

	_, hogEvents, err := s.Submit(hog)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the hog runs so the second job's admission really collides.
	for ev := range hogEvents {
		if ev.Event == EvRunning {
			break
		}
	}
	_, secondEvents, err := s.Submit(second)
	if err != nil {
		t.Fatal(err)
	}
	// The server settles a job — final event buffered on its stream — and
	// frees its memory floor in one critical section; only then can the
	// scheduler admit the head of the queue and emit its running event. So
	// at the moment the second job's running event is observed, the hog's
	// done event must already be waiting on its stream.
	sawRunning := false
	for ev := range secondEvents {
		switch ev.Event {
		case EvRunning:
			sawRunning = true
			select {
			case hev, ok := <-hogEvents:
				if !ok || hev.Event != EvDone {
					t.Fatalf("hog stream at second job's admission: %+v (open=%v), want %s", hev, ok, EvDone)
				}
			default:
				t.Fatal("second job admitted before the hog settled and freed its floor")
			}
		case EvError:
			t.Fatalf("queued job failed instead of waiting: %s", ev.Error)
		}
	}
	if !sawRunning {
		t.Fatal("second job settled without ever reporting running")
	}
	for range hogEvents {
		// drained; the stream closes right after its final event
	}

	// A floor that can never fit is refused up front, not queued forever.
	impossible := testSpec(3)
	impossible.MemBytes = cap + 1
	if _, _, err := s.Submit(impossible); err == nil {
		t.Fatal("a job floor above the arena capacity was accepted")
	}
}

// TestServerCrashRespawnsMesh drives the fatal-fault path on the in-process
// mesh: a scripted rank crash fails the running job with a clean error, the
// server rebuilds the mesh exactly once, and the next job runs correctly on
// the new incarnation.
func TestServerCrashRespawnsMesh(t *testing.T) {
	for _, mesh := range []struct {
		name    string
		factory MeshFactory
	}{
		{"local", LocalMesh(testRanks)},
		{"tcp", tcpMesh(testRanks)},
	} {
		t.Run(mesh.name, func(t *testing.T) {
			s := newTestServer(t, mesh.factory, 0)

			crash := testSpec(7)
			crash.Crash = 2
			_, events, err := s.Submit(crash)
			if err != nil {
				t.Fatal(err)
			}
			final := drain(t, events)
			if final.Event != EvError {
				t.Fatalf("crashed job settled as %s", final.Event)
			}
			if !strings.Contains(final.Error, "aborted") && !strings.Contains(final.Error, "crash") {
				t.Fatalf("crash error is not clean: %q", final.Error)
			}

			deadline := time.Now().Add(30 * time.Second)
			for s.Respawns() != 1 {
				if time.Now().After(deadline) {
					t.Fatalf("mesh not respawned (respawns = %d)", s.Respawns())
				}
				time.Sleep(10 * time.Millisecond)
			}

			after := testSpec(8)
			want := reference(t, after)
			_, events, err = s.Submit(after)
			if err != nil {
				t.Fatal(err)
			}
			final = drain(t, events)
			if final.Event != EvDone {
				t.Fatalf("job on respawned mesh settled as %s: %s", final.Event, final.Error)
			}
			if !bytes.Equal([]byte(final.Output), want) {
				t.Fatal("output on the respawned mesh differs from the solo run")
			}
			if s.Respawns() != 1 {
				t.Fatalf("respawns = %d after recovery, want exactly 1", s.Respawns())
			}
		})
	}
}

// TestServerTCPMeshConcurrentJobs runs the full control plane — start
// broadcasts, per-job channels over real sockets, metrics gathers — with
// interleaved jobs on the in-process TCP mesh.
func TestServerTCPMeshConcurrentJobs(t *testing.T) {
	const jobs = 6
	s := newTestServer(t, tcpMesh(testRanks), 0)
	specs := make([]Spec, jobs)
	refs := make([][]byte, jobs)
	for i := range specs {
		specs[i] = testSpec(uint64(500 + i))
		refs[i] = reference(t, specs[i])
	}
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, events, err := s.Submit(specs[i])
			if err != nil {
				t.Errorf("job %d: %v", i, err)
				return
			}
			final := drain(t, events)
			if final.Event != EvDone {
				t.Errorf("job %d settled as %s: %s", i, final.Event, final.Error)
				return
			}
			if !bytes.Equal([]byte(final.Output), refs[i]) {
				t.Errorf("job %d output differs from its solo run", i)
			}
			sum := metrics.NewSummary()
			if err := sum.MergeJSON(bytes.NewReader(final.Metrics)); err != nil {
				t.Errorf("job %d metrics: %v", i, err)
			} else if rs := sum.Get("rank-sec"); rs == nil || rs.Count != testRanks {
				t.Errorf("job %d metrics cover %+v ranks, want %d", i, rs, testRanks)
			}
		}(i)
	}
	wg.Wait()
	if s.Respawns() != 0 {
		t.Fatalf("healthy concurrent jobs respawned the mesh %d times", s.Respawns())
	}
}

// TestSpecValidation pins the submit-time rejections.
func TestSpecValidation(t *testing.T) {
	s := newTestServer(t, LocalMesh(testRanks), 0)
	negSkew := -0.5
	bad := []Spec{
		{Dist: "zipf"},
		{MemBytes: -1},
		{Crash: testRanks}, // out of range
		{Zipf: &negSkew},
		{Contention: 1.5},
		{Partitioner: "range"},
		{Job: "sorting"},                            // unknown kind
		{Job: "pagerank", CrashRound: 2},            // crash_round without a crash rank
		{Crash: 2, CrashRound: 2},                   // wordcount has no rounds
		{Job: "terasort", Crash: 2, CrashRound: 2},  // single-stage job has no rounds
		{Job: "pagerank", Crash: 2, CrashRound: -1}, // negative round
		{Job: "pagerank", Checkpoint: "pr"},         // checkpoint is wordcount-only
	}
	for _, spec := range bad {
		if _, _, err := s.Submit(spec); err == nil {
			t.Errorf("spec %+v accepted, want rejection", spec)
		}
	}
	var _ = workloads.Uniform // keep the import honest if specs change
}

// jobReference computes the solo ground truth for a non-wordcount spec: the
// same driver job on a fresh in-process world of the mesh's size.
func jobReference(t *testing.T, spec Spec) []byte {
	t.Helper()
	world := mpi.NewWorld(mpi.Config{Size: testRanks, Net: simtime.NetworkModel{Alpha: 1e-7, Beta: 1e9}})
	out, err := driver.RunJob(world, spec.jobConfig(testRanks), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("reference run produced no output")
	}
	return out
}

// mrcSpecs is one small spec per multi-round job kind, every optimization
// the kind supports switched on.
func mrcSpecs() []Spec {
	return []Spec{
		{Job: driver.JobTeraSort, Rows: 1 << 11, Seed: 4, Hint: true},
		{Job: driver.JobPageRank, Scale: 7, Seed: 4, Hint: true, PR: true},
		{Job: driver.JobKMeans, Points: 1 << 10, K: 4, Dims: 2, Seed: 4, Hint: true, PR: true},
		{Job: driver.JobBFS, Scale: 7, Seed: 4, Hint: true},
	}
}

// TestServerRunsMRCJobs submits every multi-round job kind through the full
// service path — queue, start broadcast, per-job mux channel, metrics gather
// — and holds each output against its solo run.
func TestServerRunsMRCJobs(t *testing.T) {
	s := newTestServer(t, tcpMesh(testRanks), 0)
	for _, spec := range mrcSpecs() {
		spec := spec
		t.Run(spec.Job, func(t *testing.T) {
			want := jobReference(t, spec)
			_, events, err := s.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			final := drain(t, events)
			if final.Event != EvDone {
				t.Fatalf("job settled as %s: %s", final.Event, final.Error)
			}
			if !bytes.Equal([]byte(final.Output), want) {
				t.Fatalf("daemon output differs from solo run: %d vs %d bytes", len(final.Output), len(want))
			}
			sum := metrics.NewSummary()
			if err := sum.MergeJSON(bytes.NewReader(final.Metrics)); err != nil {
				t.Fatal(err)
			} else if rs := sum.Get("rank-sec"); rs == nil || rs.Count != testRanks {
				t.Fatalf("metrics cover %+v ranks, want %d", rs, testRanks)
			}
		})
	}
	if s.Respawns() != 0 {
		t.Fatalf("healthy MRC jobs respawned the mesh %d times", s.Respawns())
	}
}

// TestServerMidIterationCrash kills a rank between PageRank rounds — after
// round CrashRound-1's exchange has been shuffled and reduced, not at job
// start — and checks the service's fault story holds mid-iteration: only the
// faulted job fails, the mesh respawns exactly once, and the clean resubmit
// on the new incarnation is byte-identical to the solo run.
func TestServerMidIterationCrash(t *testing.T) {
	for _, mesh := range []struct {
		name    string
		factory MeshFactory
	}{
		{"local", LocalMesh(testRanks)},
		{"tcp", tcpMesh(testRanks)},
	} {
		t.Run(mesh.name, func(t *testing.T) {
			spec := mrcSpecs()[1] // pagerank: iterates well past round 3
			want := jobReference(t, spec)
			s := newTestServer(t, mesh.factory, 0)

			crash := spec
			crash.Crash = 2
			crash.CrashRound = 3
			_, events, err := s.Submit(crash)
			if err != nil {
				t.Fatal(err)
			}
			final := drain(t, events)
			if final.Event != EvError {
				t.Fatalf("mid-iteration crash settled as %s", final.Event)
			}
			if !strings.Contains(final.Error, "aborted") && !strings.Contains(final.Error, "crash") {
				t.Fatalf("crash error is not clean: %q", final.Error)
			}
			t.Logf("crashed as intended: %s", final.Error)

			deadline := time.Now().Add(30 * time.Second)
			for s.Respawns() != 1 {
				if time.Now().After(deadline) {
					t.Fatalf("mesh not respawned (respawns = %d)", s.Respawns())
				}
				time.Sleep(10 * time.Millisecond)
			}

			_, events, err = s.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			final = drain(t, events)
			if final.Event != EvDone {
				t.Fatalf("job on respawned mesh settled as %s: %s", final.Event, final.Error)
			}
			if !bytes.Equal([]byte(final.Output), want) {
				t.Fatal("output on the respawned mesh differs from the solo run")
			}
		})
	}
}

// TestServerZipfSamplePartitionerJob runs a zipf-skewed, sample-partitioned
// job through the full service path (queue, mux channel, collectives on the
// job channel) and checks its output matches both the solo run and a
// hash-partitioned job over the same corpus.
func TestServerZipfSamplePartitionerJob(t *testing.T) {
	skew := 1.1
	spec := Spec{Bytes: 1 << 16, Seed: 21, Hint: true, PR: true,
		Zipf: &skew, Contention: 0.1, Partitioner: "sample"}
	want := reference(t, spec)
	hashSpec := spec
	hashSpec.Partitioner = "hash"
	hashWant := reference(t, hashSpec)
	if !bytes.Equal(want, hashWant) {
		t.Fatal("sample and hash solo runs disagree on canonical output")
	}
	s := newTestServer(t, LocalMesh(testRanks), 0)
	_, events, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := drain(t, events)
	if final.Event != EvDone {
		t.Fatalf("job settled as %s: %s", final.Event, final.Error)
	}
	if !bytes.Equal([]byte(final.Output), want) {
		t.Fatalf("daemon output differs from solo run: %d vs %d bytes", len(final.Output), len(want))
	}
}
