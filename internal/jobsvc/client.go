package jobsvc

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"

	"mimir/internal/membership"
)

// Client is a thin submitter for the admin front door. Each operation dials
// its own connection, so one Client is safe for concurrent use and survives
// daemon restarts.
type Client struct {
	// Addr is the daemon's admin address.
	Addr string
	// Timeout bounds the dial (0 = 10s). Running jobs stream for as long as
	// they run; only connection establishment is bounded.
	Timeout time.Duration
}

// Dial returns a client for the daemon at addr.
func Dial(addr string) *Client { return &Client{Addr: addr} }

// Result is a finished job as seen by its submitter.
type Result struct {
	Job uint32
	// Output is the gathered job output ("word count\n" lines, sorted).
	Output []byte
	// Metrics is the merged per-rank distribution summary
	// (metrics.Summary.WriteJSON form) the daemon streamed back.
	Metrics json.RawMessage
	// Epoch and Size identify the mesh incarnation the job ran on; output
	// is byte-identical per (spec, Size) whatever resizes happened around
	// the run.
	Epoch uint64
	Size  int
}

func (c *Client) dial() (net.Conn, error) {
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	return net.DialTimeout("tcp", c.Addr, timeout)
}

func (c *Client) request(req Request) (net.Conn, *json.Decoder, error) {
	conn, err := c.dial()
	if err != nil {
		return nil, nil, err
	}
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		conn.Close()
		return nil, nil, err
	}
	return conn, json.NewDecoder(conn), nil
}

// Submit runs spec on the daemon and blocks until the job settles. Every
// event the daemon streams — queued, running, and the final one — is also
// handed to onEvent when non-nil, so callers can surface progress.
func (c *Client) Submit(spec Spec, onEvent func(Event)) (*Result, error) {
	conn, dec, err := c.request(Request{Op: "submit", Spec: &spec})
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	var job uint32
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("jobsvc: event stream for job %d broke: %w", job, err)
		}
		if ev.Job != 0 {
			job = ev.Job
		}
		if onEvent != nil {
			onEvent(ev)
		}
		switch ev.Event {
		case EvDone:
			return &Result{Job: ev.Job, Output: []byte(ev.Output), Metrics: ev.Metrics,
				Epoch: ev.Epoch, Size: ev.Size}, nil
		case EvError:
			if ev.Job == 0 {
				return nil, errors.New(ev.Error) // rejected before it was a job
			}
			return nil, fmt.Errorf("jobsvc: job %d failed: %s", ev.Job, ev.Error)
		}
	}
}

// Status fetches the daemon-wide view.
func (c *Client) Status() (*Status, error) {
	conn, dec, err := c.request(Request{Op: "status"})
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	var ev Event
	if err := dec.Decode(&ev); err != nil {
		return nil, err
	}
	if ev.Event != EvStatus || ev.Status == nil {
		return nil, fmt.Errorf("jobsvc: status request answered with %q: %s", ev.Event, ev.Error)
	}
	return ev.Status, nil
}

// one reads one non-stream admin op's single reply.
func (c *Client) one(req Request, want string) (Event, error) {
	conn, dec, err := c.request(req)
	if err != nil {
		return Event{}, err
	}
	defer conn.Close()
	var ev Event
	if err := dec.Decode(&ev); err != nil {
		return Event{}, err
	}
	if ev.Event != want {
		return Event{}, fmt.Errorf("jobsvc: %s answered with %q: %s", req.Op, ev.Event, ev.Error)
	}
	return ev, nil
}

// Resize grows or shrinks the daemon's mesh to size ranks without
// restarting it, blocking through the epoch barrier. Returns the committed
// membership view.
func (c *Client) Resize(size int) (*membership.View, error) {
	ev, err := c.one(Request{Op: "resize", Size: size}, EvResized)
	if err != nil {
		return nil, err
	}
	return ev.View, nil
}

// Members fetches the committed membership view and the full event history.
func (c *Client) Members() (*membership.View, []membership.Event, error) {
	ev, err := c.one(Request{Op: "members"}, EvMembers)
	if err != nil {
		return nil, nil, err
	}
	return ev.View, ev.History, nil
}

// JoinToken mints a generic join token external workers present to join.
func (c *Client) JoinToken() (string, error) {
	ev, err := c.one(Request{Op: "join-token"}, EvToken)
	if err != nil {
		return "", err
	}
	return ev.Token, nil
}

// Leave retires one member at the next epoch barrier, shrinking the mesh by
// one, and returns the committed view.
func (c *Client) Leave(member membership.MemberID) (*membership.View, error) {
	ev, err := c.one(Request{Op: "leave", Member: member}, EvResized)
	if err != nil {
		return nil, err
	}
	return ev.View, nil
}

// Shutdown asks the daemon to drain and exit, blocking until it confirms.
func (c *Client) Shutdown() error {
	conn, dec, err := c.request(Request{Op: "shutdown"})
	if err != nil {
		return err
	}
	defer conn.Close()
	var ev Event
	if err := dec.Decode(&ev); err != nil {
		return err
	}
	if ev.Event != EvOK {
		return fmt.Errorf("jobsvc: shutdown answered with %q: %s", ev.Event, ev.Error)
	}
	return nil
}
